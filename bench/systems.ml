(* Registry of benchmark systems behind uniform map/queue interfaces.

   Every builder creates the system over its own simulated NVM region
   (with the default latency model, so persistence instrumentation
   costs real time) and returns closures plus a [stop] that shuts down
   background machinery.  Thread id conventions: workers use
   0..threads-1; background helpers use higher slots. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

type map_inst = {
  mname : string;
  mget : tid:int -> string -> string option;
  mput : tid:int -> string -> string -> unit;
  mrem : tid:int -> string -> unit;
  msync : tid:int -> unit; (* durability barrier where supported *)
  mstop : unit -> unit;
}

type queue_inst = {
  qname : string;
  qenq : tid:int -> string -> unit;
  qdeq : tid:int -> string option;
  qsync : tid:int -> unit;
  qstop : unit -> unit;
}

(* Regions carrying a persistency checker (MONTAGE_PCHECK=1/strict in
   the environment), collected so the end of the run can print one
   lint/violation report per benchmarked system. *)
let checked_regions : (string option * Nvm.Region.t) list ref = ref []

let region ~capacity ~threads =
  let r = Nvm.Region.create ~max_threads:(threads + 4) ~capacity () in
  (match Cfg.default.Cfg.pcheck with
  | Cfg.Pcheck_off -> ()
  | Cfg.Pcheck_record | Cfg.Pcheck_enforce ->
      let mode =
        if Cfg.default.Cfg.pcheck = Cfg.Pcheck_enforce then Nvm.Pcheck.Enforce else Nvm.Pcheck.Record
      in
      ignore (Nvm.Region.enable_pcheck ~mode r);
      checked_regions := (None, r) :: !checked_regions);
  r

(* Print the persistency report of every checked region that actually
   found something, plus an aggregate line.  Quiet when the checker is
   off (the default fast path). *)
let report_pcheck () =
  let checked = List.rev !checked_regions in
  if checked <> [] then begin
    let viols = ref 0 and lints = ref 0 in
    List.iter
      (fun (label, r) ->
        match Nvm.Region.checker r with
        | None -> ()
        | Some c ->
            viols := !viols + List.length (Nvm.Pcheck.violations c);
            lints := !lints + Nvm.Pcheck.lint_total c;
            if Nvm.Pcheck.violations c <> [] || Nvm.Pcheck.lint_total c > 0 then
              Benchlib.Report.pcheck_summary ?label r)
      checked;
    Printf.printf "\n=== pcheck: %d regions checked, %d violations, %d lints ===\n%!"
      (List.length checked) !viols !lints
  end

(* Write-back accounting, aggregated across every Montage system the
   run builds.  Stats are harvested into these totals when a system
   stops (after its final drain) rather than by retaining regions — a
   full sweep builds hundreds of multi-GB regions that must stay
   collectible. *)
type wb_totals = {
  mutable systems : int;
  mutable writebacks : int;
  mutable fences : int;
  mutable ranges : int;
  mutable lines_in : int;
  mutable lines_out : int;
}

let wb_totals = { systems = 0; writebacks = 0; fences = 0; ranges = 0; lines_in = 0; lines_out = 0 }

let note_region_stats r =
  let s = Nvm.Region.stats r in
  wb_totals.systems <- wb_totals.systems + 1;
  wb_totals.writebacks <- wb_totals.writebacks + s.Nvm.Region.writebacks;
  wb_totals.fences <- wb_totals.fences + s.Nvm.Region.fences;
  wb_totals.ranges <- wb_totals.ranges + s.Nvm.Region.coalesce_ranges;
  wb_totals.lines_in <- wb_totals.lines_in + s.Nvm.Region.coalesce_lines_in;
  wb_totals.lines_out <- wb_totals.lines_out + s.Nvm.Region.coalesce_lines_out

(* Payload-mirror accounting, same lifecycle as [wb_totals]: DRAM-hit /
   NVM-miss counters and charged media read lines are harvested when a
   Montage system stops. *)
type mirror_totals = {
  mutable m_systems : int;
  mutable m_hits : int;
  mutable m_misses : int;
  mutable m_evictions : int;
  mutable m_lines_read : int;
}

let mirror_totals = { m_systems = 0; m_hits = 0; m_misses = 0; m_evictions = 0; m_lines_read = 0 }

let note_mirror_stats esys r =
  let s = E.mirror_stats esys in
  let rs = Nvm.Region.stats r in
  mirror_totals.m_systems <- mirror_totals.m_systems + 1;
  mirror_totals.m_hits <- mirror_totals.m_hits + s.E.hits;
  mirror_totals.m_misses <- mirror_totals.m_misses + s.E.misses;
  mirror_totals.m_evictions <- mirror_totals.m_evictions + s.E.evictions;
  mirror_totals.m_lines_read <- mirror_totals.m_lines_read + rs.Nvm.Region.lines_read

let report_mirror () =
  let t = mirror_totals in
  if t.m_systems > 0 then begin
    let reads = t.m_hits + t.m_misses in
    let rate = if reads = 0 then 0.0 else 100.0 *. float_of_int t.m_hits /. float_of_int reads in
    Printf.printf
      "\n\
       === payload mirrors: %d Montage systems, %d DRAM hits / %d NVM misses (%.1f%% hit rate), \
       %d evictions, %d media lines read ===\n\
       %!"
      t.m_systems t.m_hits t.m_misses rate t.m_evictions t.m_lines_read
  end

let report_coalescing () =
  if wb_totals.systems > 0 then begin
    Benchlib.Report.heading
      (Printf.sprintf "write-back totals across %d Montage system instances" wb_totals.systems);
    Benchlib.Report.writeback_line ~label:"aggregate" ~writebacks:wb_totals.writebacks
      ~fences:wb_totals.fences ~ranges:wb_totals.ranges ~lines_in:wb_totals.lines_in
      ~lines_out:wb_totals.lines_out
  end

(* Netserve front-end accounting, same lifecycle as [wb_totals]: each
   benchmarked server contributes its lifetime connection/command/byte
   counters and drain timings when it shuts down. *)
type net_totals = {
  mutable n_servers : int;
  mutable n_conns : int;
  mutable n_cmds : int;
  mutable n_bytes_in : int;
  mutable n_bytes_out : int;
  mutable n_forced : int;
  mutable n_drain_s : float;
  mutable n_sync_s : float;
}

let net_totals =
  {
    n_servers = 0;
    n_conns = 0;
    n_cmds = 0;
    n_bytes_in = 0;
    n_bytes_out = 0;
    n_forced = 0;
    n_drain_s = 0.0;
    n_sync_s = 0.0;
  }

let note_netserve t (d : Netserve.drain_stats) =
  let conns, bytes_in, bytes_out, cmds = Netserve.totals t in
  net_totals.n_servers <- net_totals.n_servers + 1;
  net_totals.n_conns <- net_totals.n_conns + conns;
  net_totals.n_cmds <- net_totals.n_cmds + cmds;
  net_totals.n_bytes_in <- net_totals.n_bytes_in + bytes_in;
  net_totals.n_bytes_out <- net_totals.n_bytes_out + bytes_out;
  net_totals.n_forced <- net_totals.n_forced + d.Netserve.forced_closes;
  net_totals.n_drain_s <- net_totals.n_drain_s +. d.Netserve.drain_s;
  net_totals.n_sync_s <- net_totals.n_sync_s +. d.Netserve.sync_s

let report_netserve () =
  let t = net_totals in
  if t.n_servers > 0 then
    Printf.printf
      "\n\
       === netserve: %d servers, %d connections, %d commands, %.1f MB in / %.1f MB out, %d \
       forced closes, %.3fs drain + %.3fs sync total ===\n\
       %!"
      t.n_servers t.n_conns t.n_cmds
      (float_of_int t.n_bytes_in /. 1e6)
      (float_of_int t.n_bytes_out /. 1e6)
      t.n_forced t.n_drain_s t.n_sync_s

(* Spawn a 10 ms ticker domain calling [tick] until stopped — the
   pacing Dalí's periodic persistence needs. *)
let ticker ?(period = 0.01) tick =
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Unix.sleepf period;
          if not (Atomic.get stop) then tick ()
        done)
  in
  fun () ->
    Atomic.set stop true;
    Domain.join d

let no_sync ~tid:_ = ()
let no_stop () = ()

(* Leak registry: every system with a background domain registers its
   stop function; a figure that dies mid-point (e.g. allocator
   exhaustion caught by the harness) would otherwise leave an advancer
   domain ticking forever, polluting every later measurement. *)
let live_stops : (int, unit -> unit) Hashtbl.t = Hashtbl.create 16
let stop_ids = Atomic.make 0

let guarded_stop stop =
  let id = Atomic.fetch_and_add stop_ids 1 in
  Hashtbl.replace live_stops id stop;
  fun () ->
    if Hashtbl.mem live_stops id then begin
      Hashtbl.remove live_stops id;
      stop ()
    end

let stop_leaked () =
  let pending = Hashtbl.fold (fun id f acc -> (id, f) :: acc) live_stops [] in
  List.iter
    (fun (id, f) ->
      Hashtbl.remove live_stops id;
      f ())
    pending

(* ---- map systems ---- *)

let montage_map ?(name = "Montage") ?(cfg_mod = fun c -> c) ~capacity ~threads ~buckets () =
  let r = region ~capacity ~threads in
  let cfg = cfg_mod { Cfg.default with max_threads = threads + 1 } in
  let esys = E.create ~config:cfg r in
  let m = Pstructs.Mhashmap.create ~buckets esys in
  {
    mname = name;
    mget = (fun ~tid k -> Pstructs.Mhashmap.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Pstructs.Mhashmap.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Pstructs.Mhashmap.remove m ~tid k));
    msync = (fun ~tid -> E.sync esys ~tid);
    mstop =
      guarded_stop (fun () ->
          E.stop_background esys;
          note_mirror_stats esys r;
          note_region_stats r);
  }

let montage_t_map ~capacity ~threads ~buckets () =
  montage_map ~name:"Montage (T)" ~cfg_mod:(fun c -> { c with persist = false; auto_advance = false })
    ~capacity ~threads ~buckets ()

(* MHAMT: the snapshot-capable persistent HAMT behind the same closure
   interface, so the YCSB figure can row it next to the hashmap. *)
let mhamt_map ?(name = "MHAMT") ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let esys = E.create ~config:{ Cfg.default with max_threads = threads + 1 } r in
  let m = Pstructs.Mhamt.create esys in
  {
    mname = name;
    mget = (fun ~tid k -> Pstructs.Mhamt.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Pstructs.Mhamt.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Pstructs.Mhamt.remove m ~tid k));
    msync = (fun ~tid -> E.sync esys ~tid);
    mstop =
      guarded_stop (fun () ->
          E.stop_background esys;
          note_mirror_stats esys r;
          note_region_stats r);
  }

(* Scan-while-writing instances: [zscan] performs one consistent full
   scan of the structure and returns the number of bindings it saw.
   MHAMT pins an O(1) snapshot and folds it; the hashmap's consistent
   listing is [to_alist], its closest equivalent. *)
type scan_inst = {
  zname : string;
  zput : tid:int -> string -> string -> unit;
  zscan : tid:int -> int;
  zstop : unit -> unit;
}

let mhamt_scan ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let esys = E.create ~config:{ Cfg.default with max_threads = threads + 1 } r in
  let m = Pstructs.Mhamt.create esys in
  {
    zname = "MHAMT";
    zput = (fun ~tid k v -> ignore (Pstructs.Mhamt.put m ~tid k v));
    zscan =
      (fun ~tid ->
        let v = Pstructs.Mhamt.snapshot m in
        let n = Pstructs.Mhamt.View.fold v ~tid (fun acc _ _ -> acc + 1) 0 in
        Pstructs.Mhamt.release m v ~tid;
        n);
    zstop =
      guarded_stop (fun () ->
          E.stop_background esys;
          note_mirror_stats esys r;
          note_region_stats r);
  }

let mhashmap_scan ~capacity ~threads ~buckets () =
  let r = region ~capacity ~threads in
  let esys = E.create ~config:{ Cfg.default with max_threads = threads + 1 } r in
  let m = Pstructs.Mhashmap.create ~buckets esys in
  {
    zname = "Mhashmap";
    zput = (fun ~tid k v -> ignore (Pstructs.Mhashmap.put m ~tid k v));
    zscan = (fun ~tid -> List.length (Pstructs.Mhashmap.to_alist m ~tid));
    zstop =
      guarded_stop (fun () ->
          E.stop_background esys;
          note_mirror_stats esys r;
          note_region_stats r);
  }

let dram_map ~buckets () =
  let m = Baselines.Transient_map.create ~buckets Baselines.Transient_map.Dram in
  {
    mname = "DRAM (T)";
    mget = (fun ~tid k -> Baselines.Transient_map.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Baselines.Transient_map.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Transient_map.remove m ~tid k));
    msync = no_sync;
    mstop = no_stop;
  }

let nvm_t_map ~capacity ~threads ~buckets () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let m = Baselines.Transient_map.create ~buckets (Baselines.Transient_map.Nvm pm) in
  {
    mname = "NVM (T)";
    mget = (fun ~tid k -> Baselines.Transient_map.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Baselines.Transient_map.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Transient_map.remove m ~tid k));
    msync = no_sync;
    mstop = no_stop;
  }

let soft_map ~capacity ~threads ~buckets () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let m = Baselines.Soft_map.create ~buckets pm in
  {
    mname = "SOFT";
    mget = (fun ~tid k -> Baselines.Soft_map.get m ~tid k);
    (* SOFT has no atomic update: benchmark semantics are insert/remove *)
    mput = (fun ~tid k v -> ignore (Baselines.Soft_map.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Soft_map.remove m ~tid k));
    msync = no_sync;
    mstop = no_stop;
  }

let dali_map ~capacity ~threads () =
  let r = region ~capacity ~threads in
  ignore threads;
  let pm = Baselines.Pmem.create r in
  (* Dalí's bucket heads live in the root area: capped bucket count.
     No background persister: workers pay for the periodic flushes. *)
  let m = Baselines.Dali_map.create ~buckets:4096 pm in
  {
    mname = "Dali";
    mget = (fun ~tid k -> Baselines.Dali_map.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Baselines.Dali_map.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Dali_map.remove m ~tid k));
    msync = (fun ~tid -> Baselines.Dali_map.persist_all m ~tid);
    mstop = no_stop;
  }

let nvtraverse_map ~capacity ~threads ~buckets () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let m = Baselines.Nvtraverse_map.create ~buckets pm in
  {
    mname = "NVTraverse";
    mget = (fun ~tid k -> Baselines.Nvtraverse_map.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Baselines.Nvtraverse_map.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Nvtraverse_map.remove m ~tid k));
    msync = no_sync;
    mstop = no_stop;
  }

let mod_map ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let m = Baselines.Mod_structs.Map.create ~buckets:4096 pm in
  {
    mname = "MOD";
    mget = (fun ~tid k -> Baselines.Mod_structs.Map.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Baselines.Mod_structs.Map.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Mod_structs.Map.remove m ~tid k));
    msync = no_sync;
    mstop = no_stop;
  }

let pronto_map ~mode ~capacity ~threads ~buckets () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let name = match mode with Baselines.Pronto.Sync -> "Pronto-Sync" | Full -> "Pronto-Full" in
  let p = Baselines.Pronto.create ~buckets ~threads:(threads + 2) ~mode pm in
  {
    mname = name;
    mget = (fun ~tid k -> Baselines.Pronto.get p ~tid k);
    mput = (fun ~tid k v -> ignore (Baselines.Pronto.put p ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Pronto.remove p ~tid k));
    msync = no_sync;
    mstop = no_stop;
  }

let mnemosyne_map ~capacity ~threads ~preload () =
  let r = region ~capacity ~threads in
  let words = max (1 lsl 18) (preload * 8) in
  let stm = Baselines.Mnemosyne.create ~words ~threads:(threads + 2) r in
  let m = Baselines.Mnemosyne.Map.create ~buckets:4096 stm in
  {
    mname = "Mnemosyne";
    mget = (fun ~tid k -> Baselines.Mnemosyne.Map.get m ~tid k);
    mput = (fun ~tid k v -> ignore (Baselines.Mnemosyne.Map.put m ~tid k v));
    mrem = (fun ~tid k -> ignore (Baselines.Mnemosyne.Map.remove m ~tid k));
    msync = no_sync;
    mstop = no_stop;
  }

(* Region sizing: enough blocks for the live set plus epoch-delayed
   reclamation churn. *)
let map_capacity ~preload ~value_size =
  let block = 64 * ((value_size / 64) + 2) in
  max (1 lsl 26) (preload * block * 6)

let all_map_systems ~threads ~preload ~value_size : (string * (unit -> map_inst)) list =
  let capacity = map_capacity ~preload ~value_size in
  let buckets = 1 lsl 15 in
  [
    ("DRAM (T)", fun () -> dram_map ~buckets ());
    ("NVM (T)", fun () -> nvm_t_map ~capacity ~threads ~buckets ());
    ("Montage (T)", fun () -> montage_t_map ~capacity ~threads ~buckets ());
    ("Montage", fun () -> montage_map ~capacity ~threads ~buckets ());
    ("SOFT", fun () -> soft_map ~capacity ~threads ~buckets ());
    ("NVTraverse", fun () -> nvtraverse_map ~capacity ~threads ~buckets ());
    ("Dali", fun () -> dali_map ~capacity ~threads ());
    ("MOD", fun () -> mod_map ~capacity ~threads ());
    ("Pronto-Full", fun () -> pronto_map ~mode:Baselines.Pronto.Full ~capacity ~threads ~buckets ());
    ("Pronto-Sync", fun () -> pronto_map ~mode:Baselines.Pronto.Sync ~capacity ~threads ~buckets ());
    ("Mnemosyne", fun () -> mnemosyne_map ~capacity ~threads ~preload ());
  ]

(* ---- queue systems ---- *)

let montage_queue ?(name = "Montage") ?(cfg_mod = fun c -> c) ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let cfg = cfg_mod { Cfg.default with max_threads = threads + 1 } in
  let esys = E.create ~config:cfg r in
  let q = Pstructs.Mqueue.create esys in
  {
    qname = name;
    qenq = (fun ~tid v -> Pstructs.Mqueue.enqueue q ~tid v);
    qdeq = (fun ~tid -> Pstructs.Mqueue.dequeue q ~tid);
    qsync = (fun ~tid -> E.sync esys ~tid);
    qstop =
      guarded_stop (fun () ->
          E.stop_background esys;
          note_mirror_stats esys r;
          note_region_stats r);
  }

let montage_t_queue ~capacity ~threads () =
  montage_queue ~name:"Montage (T)"
    ~cfg_mod:(fun c -> { c with persist = false; auto_advance = false })
    ~capacity ~threads ()

let dram_queue () =
  let q = Baselines.Transient_queue.create Baselines.Transient_queue.Dram in
  {
    qname = "DRAM (T)";
    qenq = (fun ~tid v -> Baselines.Transient_queue.enqueue q ~tid v);
    qdeq = (fun ~tid -> Baselines.Transient_queue.dequeue q ~tid);
    qsync = no_sync;
    qstop = no_stop;
  }

let nvm_t_queue ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let q = Baselines.Transient_queue.create (Baselines.Transient_queue.Nvm pm) in
  {
    qname = "NVM (T)";
    qenq = (fun ~tid v -> Baselines.Transient_queue.enqueue q ~tid v);
    qdeq = (fun ~tid -> Baselines.Transient_queue.dequeue q ~tid);
    qsync = no_sync;
    qstop = no_stop;
  }

let friedman_queue ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let q = Baselines.Friedman_queue.create pm in
  {
    qname = "Friedman";
    qenq = (fun ~tid v -> Baselines.Friedman_queue.enqueue q ~tid v);
    qdeq = (fun ~tid -> Baselines.Friedman_queue.dequeue q ~tid);
    qsync = no_sync;
    qstop = no_stop;
  }

let mod_queue ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let q = Baselines.Mod_structs.Queue.create pm in
  {
    qname = "MOD";
    qenq = (fun ~tid v -> Baselines.Mod_structs.Queue.enqueue q ~tid v);
    qdeq = (fun ~tid -> Baselines.Mod_structs.Queue.dequeue q ~tid);
    qsync = no_sync;
    qstop = no_stop;
  }

(* Pronto queue: a transient queue persisted through the semantic op
   log — the map hosted by the logger stays empty; only the logging
   cost (Pronto's entire critical-path overhead) is charged. *)
let pronto_queue ~mode ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let pm = Baselines.Pmem.create r in
  let name = match mode with Baselines.Pronto.Sync -> "Pronto-Sync" | Full -> "Pronto-Full" in
  let p = Baselines.Pronto.create ~buckets:64 ~threads:(threads + 2) ~mode pm in
  let q = Baselines.Transient_queue.create Baselines.Transient_queue.Dram in
  {
    qname = name;
    qenq =
      (fun ~tid v ->
        Baselines.Transient_queue.enqueue q ~tid v;
        Baselines.Pronto.log_op p ~tid ~opcode:Baselines.Pronto.opcode_put ~key:"" ~value:v);
    qdeq =
      (fun ~tid ->
        let r = Baselines.Transient_queue.dequeue q ~tid in
        if r <> None then
          Baselines.Pronto.log_op p ~tid ~opcode:Baselines.Pronto.opcode_remove ~key:"" ~value:"";
        r);
    qsync = no_sync;
    qstop = no_stop;
  }

let mnemosyne_queue ~capacity ~threads () =
  let r = region ~capacity ~threads in
  let stm = Baselines.Mnemosyne.create ~words:(1 lsl 20) ~threads:(threads + 2) r in
  let q = Baselines.Mnemosyne.Queue.create stm in
  {
    qname = "Mnemosyne";
    qenq = (fun ~tid v -> Baselines.Mnemosyne.Queue.enqueue q ~tid v);
    qdeq = (fun ~tid -> Baselines.Mnemosyne.Queue.dequeue q ~tid);
    qsync = no_sync;
    qstop = no_stop;
  }

let queue_capacity ~value_size = max (1 lsl 26) (value_size * 200_000)

let all_queue_systems ~threads ~value_size : (string * (unit -> queue_inst)) list =
  let capacity = queue_capacity ~value_size in
  [
    ("DRAM (T)", fun () -> dram_queue ());
    ("NVM (T)", fun () -> nvm_t_queue ~capacity ~threads ());
    ("Montage (T)", fun () -> montage_t_queue ~capacity ~threads ());
    ("Montage", fun () -> montage_queue ~capacity ~threads ());
    ("Friedman", fun () -> friedman_queue ~capacity ~threads ());
    ("MOD", fun () -> mod_queue ~capacity ~threads ());
    ("Pronto-Full", fun () -> pronto_queue ~mode:Baselines.Pronto.Full ~capacity ~threads ());
    ("Pronto-Sync", fun () -> pronto_queue ~mode:Baselines.Pronto.Sync ~capacity ~threads ());
    ("Mnemosyne", fun () -> mnemosyne_queue ~capacity ~threads ());
  ]
