(* Bechamel micro-latency suite: one Test.make per figure/table, each
   measuring the core operation that dominates that experiment.  The
   throughput tables in Figures.* regenerate the paper's series; these
   OLS-fitted per-operation latencies cross-check them (1/latency ≈
   single-thread throughput) with a statistically careful estimator. *)

open Bechamel
open Toolkit

module Cfg = Montage.Config

let key_of i = Printf.sprintf "%032d" i
let value = String.init 1024 (fun i -> Char.chr (65 + (i mod 26)))

let capacity = Systems.map_capacity ~preload:4096 ~value_size:1024

(* Each test owns its system; a counter cycles the key space. *)
let map_op_test ~name (sys : Systems.map_inst) =
  for i = 0 to 4095 do
    sys.Systems.mput ~tid:0 (key_of i) value
  done;
  let counter = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr counter;
         let k = key_of (!counter land 8191) in
         if !counter land 1 = 0 then sys.Systems.mput ~tid:0 k value
         else sys.Systems.mrem ~tid:0 k))

let queue_op_test ~name (sys : Systems.queue_inst) =
  for i = 0 to 255 do
    sys.Systems.qenq ~tid:0 (key_of i)
  done;
  let flip = ref false in
  Test.make ~name
    (Staged.stage (fun () ->
         flip := not !flip;
         if !flip then sys.Systems.qenq ~tid:0 value else ignore (sys.Systems.qdeq ~tid:0)))

let tests () =
  [
    (* Fig. 4/7a: Montage hashmap update path *)
    map_op_test ~name:"fig4/7a montage map update"
      (Systems.montage_map ~cfg_mod:(fun c -> { c with Cfg.auto_advance = false }) ~capacity ~threads:1 ~buckets:4096 ());
    (* Fig. 5/6: Montage queue *)
    queue_op_test ~name:"fig5/6 montage queue"
      (Systems.montage_queue ~cfg_mod:(fun c -> { c with Cfg.auto_advance = false }) ~capacity ~threads:1 ());
    (* Fig. 6: strict persistent queue for contrast *)
    queue_op_test ~name:"fig6 friedman queue"
      (Systems.friedman_queue ~capacity ~threads:1 ());
    (* Fig. 7b: Montage read path *)
    (let sys = Systems.montage_map ~cfg_mod:(fun c -> { c with Cfg.auto_advance = false }) ~capacity ~threads:1 ~buckets:4096 () in
     for i = 0 to 4095 do
       sys.Systems.mput ~tid:0 (key_of i) value
     done;
     let counter = ref 0 in
     Test.make ~name:"fig7b montage map get"
       (Staged.stage (fun () ->
            incr counter;
            ignore (sys.Systems.mget ~tid:0 (key_of (!counter land 4095))))));
    (* Fig. 8: payload-size extremes on the map *)
    map_op_test ~name:"fig8 dali map update" (Systems.dali_map ~capacity ~threads:1 ());
    (* Fig. 9: the sync operation itself *)
    (let sys = Systems.montage_map ~cfg_mod:(fun c -> { c with Cfg.auto_advance = false }) ~capacity ~threads:1 ~buckets:4096 () in
     Test.make ~name:"fig9 montage sync" (Staged.stage (fun () -> sys.Systems.msync ~tid:0)));
    (* Fig. 10: memcached-style set through the store layer *)
    (let inner = Systems.montage_map ~cfg_mod:(fun c -> { c with Cfg.auto_advance = false }) ~capacity ~threads:1 ~buckets:4096 () in
     let backend =
       Kvstore.Store.backend
         ~get:(fun ~tid k -> inner.Systems.mget ~tid k)
         ~put:(fun ~tid k v ->
           inner.Systems.mput ~tid k v;
           None)
         ~remove:(fun ~tid k ->
           inner.Systems.mrem ~tid k;
           None)
         ()
     in
     let store = Kvstore.Store.create backend in
     let counter = ref 0 in
     Test.make ~name:"fig10 memcached set"
       (Staged.stage (fun () ->
            incr counter;
            Kvstore.Store.set store ~tid:0 (key_of (!counter land 4095)) value)));
    (* Fig. 11: Montage graph edge op *)
    (let r = Systems.region ~capacity ~threads:1 in
     let esys = Montage.Epoch_sys.create ~config:{ Cfg.default with max_threads = 2; auto_advance = false } r in
     let g = Pstructs.Mgraph.create ~capacity:4096 esys in
     for i = 0 to 1023 do
       ignore (Pstructs.Mgraph.add_vertex g ~tid:0 i "v")
     done;
     let counter = ref 0 in
     Test.make ~name:"fig11 graph add/remove edge"
       (Staged.stage (fun () ->
            incr counter;
            let u = !counter land 1023 and v = (!counter * 7) land 1023 in
            if u <> v then
              if !counter land 1 = 0 then ignore (Pstructs.Mgraph.add_edge g ~tid:0 u v "e")
              else ignore (Pstructs.Mgraph.remove_edge g ~tid:0 u v))));
  ]

let run () =
  Benchlib.Report.heading "Bechamel micro-latency cross-check (ns/op, OLS fit)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-32s %10.0f ns/op\n%!" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        results)
    (tests ())
