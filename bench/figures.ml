(* Regeneration of every figure and table in the paper's evaluation
   (§5.2 and §6).  Each function prints the paper's series for this
   machine's scale and records shape verdicts for the ordering claims
   the paper makes.  See EXPERIMENTS.md for the paper-vs-measured
   discussion. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let key_of i = Printf.sprintf "%032d" i

(* One benchmark point; a crashing system yields NaN instead of killing
   the suite, with the culprit named on stderr. *)
let guarded name f =
  try f ()
  with e ->
    Printf.eprintf "[bench] %s failed: %s\n%s%!" name (Printexc.to_string e)
      (Printexc.get_backtrace ());
    nan

let make_value n =
  (* distinct-ish contents, the size is what matters *)
  String.init n (fun i -> Char.chr (65 + ((i * 7) mod 26)))

(* ---- generic map workload (get:insert:remove mix) ---- *)

let preload_map (m : Systems.map_inst) ~preload ~value =
  for i = 0 to preload - 1 do
    m.mput ~tid:0 (key_of i) value
  done

let run_map_point ~(sys : Systems.map_inst) ~threads ~get_frac ~ins_frac ~keyspace ~value =
  let r =
    Benchlib.Runner.throughput ~threads ~duration_s:Env.duration_s (fun ~tid ~rng ->
        let x = Util.Xoshiro.float rng in
        let key = key_of (Util.Xoshiro.int rng keyspace) in
        if x < get_frac then ignore (sys.mget ~tid key)
        else if x < get_frac +. ins_frac then sys.mput ~tid key value
        else sys.mrem ~tid key)
  in
  r.Benchlib.Runner.ops_per_sec

(* measure one map system across the thread sweep *)
let sweep_map_system ~make ~get_frac ~ins_frac ~value =
  let keyspace = 2 * Env.preload in
  List.map
    (fun threads ->
      guarded "map system" (fun () ->
          let sys = make () in
          preload_map sys ~preload:Env.preload ~value;
          let v = run_map_point ~sys ~threads ~get_frac ~ins_frac ~keyspace ~value in
          sys.Systems.mstop ();
          v))
    Env.threads

(* ---- Figures 4 & 5: design-space exploration ---- *)

let epoch_lengths_ns = [ 100_000; 1_000_000; 10_000_000; 100_000_000 ]

let epoch_label ns =
  if ns >= 1_000_000_000 then Printf.sprintf "%ds" (ns / 1_000_000_000)
  else if ns >= 1_000_000 then Printf.sprintf "%dms" (ns / 1_000_000)
  else Printf.sprintf "%dus" (ns / 1_000)

let design_combos : (string * (Cfg.t -> Cfg.t)) list =
  [
    ("Buf=2", fun c -> { c with buffer_size = 2 });
    ("Buf=16", fun c -> { c with buffer_size = 16 });
    ("Buf=64", fun c -> { c with buffer_size = 64 });
    ("Buf=256", fun c -> { c with buffer_size = 256 });
    ("Buf=64+LocalFree", fun c -> { c with buffer_size = 64; reclaim = Cfg.Workers });
  ]

let design_references : (string * (Cfg.t -> Cfg.t)) list =
  [
    ("DirWB", fun c -> { c with writeback = Cfg.Direct });
    ("Montage(T)", fun c -> { c with persist = false; auto_advance = false });
    ("Buf=64+DirFree", fun c -> { c with buffer_size = 64; direct_free = true });
  ]

let fig4 () =
  Benchlib.Report.heading "Figure 4: design exploration — hashmap, 0:1:1 g:i:r (1 thread)";
  (* single worker: multi-domain points on a one-core host measure the
     scheduler, and long epochs need headroom for delayed reclamation *)
  let threads = 1 in
  let value = make_value Env.value_size in
  let keyspace = 2 * Env.preload in
  let capacity = 8 * Systems.map_capacity ~preload:Env.preload ~value_size:Env.value_size in
  let point cfg_mod =
    guarded "fig4 point" (fun () ->
        let sys = Systems.montage_map ~cfg_mod ~capacity ~threads ~buckets:(1 lsl 15) () in
        preload_map sys ~preload:Env.preload ~value;
        let v = run_map_point ~sys ~threads ~get_frac:0.0 ~ins_frac:0.5 ~keyspace ~value in
        sys.Systems.mstop ();
        v)
  in
  let rows =
    List.map
      (fun (label, base_mod) ->
        ( label,
          List.map
            (fun ns -> point (fun c -> { (base_mod c) with Cfg.epoch_length_ns = ns }))
            epoch_lengths_ns ))
      design_combos
    @ List.map
        (fun (label, base_mod) -> (label, [ point base_mod; nan; nan; nan ]))
        design_references
  in
  Benchlib.Report.table ~columns:(List.map epoch_label epoch_lengths_ns) ~rows ~unit_label:"ops/s" ();
  (let find name = List.assoc name rows in
   let buf64_10ms = List.nth (find "Buf=64") 2 in
   let dirwb = List.nth (find "DirWB") 0 in
   Benchlib.Report.check ~figure:"fig4"
     ~claim:"buffered write-back (Buf=64, 10ms) beats immediate write-back (DirWB)"
     (buf64_10ms > dirwb))

let fig5 () =
  Benchlib.Report.heading "Figure 5: design exploration — 1-thread queue, 1:1 enq:deq";
  let value = make_value Env.value_size in
  let capacity = Systems.queue_capacity ~value_size:Env.value_size in
  let point cfg_mod =
    guarded "fig5 point" (fun () ->
        let sys = Systems.montage_queue ~cfg_mod ~capacity ~threads:1 () in
        for i = 0 to 999 do
          sys.Systems.qenq ~tid:0 (key_of i)
        done;
        let r =
          Benchlib.Runner.throughput ~threads:1 ~duration_s:Env.duration_s (fun ~tid ~rng ->
              if Util.Xoshiro.bool rng then sys.Systems.qenq ~tid value
              else ignore (sys.Systems.qdeq ~tid))
        in
        sys.Systems.qstop ();
        r.Benchlib.Runner.ops_per_sec)
  in
  let rows =
    List.map
      (fun (label, base_mod) ->
        ( label,
          List.map
            (fun ns -> point (fun c -> { (base_mod c) with Cfg.epoch_length_ns = ns }))
            epoch_lengths_ns ))
      design_combos
    @ List.map
        (fun (label, base_mod) -> (label, [ point base_mod; nan; nan; nan ]))
        design_references
  in
  Benchlib.Report.table ~columns:(List.map epoch_label epoch_lengths_ns) ~rows ~unit_label:"ops/s" ();
  (let find name = List.assoc name rows in
   let buffered = List.nth (find "Buf=64") 2 and direct = List.nth (find "DirWB") 0 in
   Benchlib.Report.check ~figure:"fig5" ~claim:"buffering helps the single-threaded queue too"
     (buffered > direct))

(* ---- Figure 6: queue throughput vs threads ---- *)

let fig6 () =
  Benchlib.Report.heading "Figure 6: concurrent queues, 1:1 enqueue:dequeue";
  let value = make_value Env.value_size in
  let rows =
    List.map
      (fun (name, make) ->
        ( name,
          List.map
            (fun threads ->
              guarded name (fun () ->
                  let sys : Systems.queue_inst = make () in
                  for i = 0 to 999 do
                    sys.Systems.qenq ~tid:0 (key_of i)
                  done;
                  let r =
                    Benchlib.Runner.throughput ~threads ~duration_s:Env.duration_s
                      (fun ~tid ~rng ->
                        if Util.Xoshiro.bool rng then sys.Systems.qenq ~tid value
                        else ignore (sys.Systems.qdeq ~tid))
                  in
                  sys.Systems.qstop ();
                  r.Benchlib.Runner.ops_per_sec))
            Env.threads ))
      (Systems.all_queue_systems ~threads:Env.max_threads ~value_size:Env.value_size)
  in
  Benchlib.Report.table ~columns:(List.map string_of_int Env.threads) ~rows ~unit_label:"ops/s" ();
  (* claims are evaluated at 1 thread: with a single physical core,
     multi-domain points measure the OS scheduler, not the systems *)
  let at_one name = List.nth (List.assoc name rows) 0 in
  Benchlib.Report.check ~figure:"fig6"
    ~claim:"Montage at least matches Friedman's special-purpose queue (paper's 6x opens at scale)"
    (at_one "Montage" > 0.85 *. at_one "Friedman");
  Benchlib.Report.check ~figure:"fig6" ~claim:"Montage >> Pronto-Sync and Mnemosyne queues"
    (at_one "Montage" > 1.2 *. at_one "Pronto-Sync" && at_one "Montage" > 2.0 *. at_one "Mnemosyne");
  Benchlib.Report.check ~figure:"fig6" ~claim:"Montage within ~4x of DRAM (T)"
    (at_one "Montage" > at_one "DRAM (T)" /. 4.0)

(* ---- Figure 7: hashmap throughput vs threads ---- *)

let fig7 ~sub ~get_frac ~ins_frac ~claim_factors () =
  let mix_label =
    Printf.sprintf "%d:%d:%d get:insert:remove"
      (int_of_float (get_frac /. ((1.0 -. get_frac) /. 2.0) +. 0.5))
      1 1
  in
  ignore mix_label;
  Benchlib.Report.heading
    (Printf.sprintf "Figure 7%s: concurrent hashmaps (get=%.2f insert=%.2f remove=%.2f)" sub get_frac
       ins_frac
       (1.0 -. get_frac -. ins_frac));
  let value = make_value Env.value_size in
  let rows =
    List.map
      (fun (name, make) -> (name, sweep_map_system ~make ~get_frac ~ins_frac ~value))
      (Systems.all_map_systems ~threads:Env.max_threads ~preload:Env.preload ~value_size:Env.value_size)
  in
  Benchlib.Report.table ~columns:(List.map string_of_int Env.threads) ~rows ~unit_label:"ops/s" ();
  let at_one name = List.nth (List.assoc name rows) 0 in
  List.iter
    (fun (a, b, factor) ->
      Benchlib.Report.check ~figure:("fig7" ^ sub)
        ~claim:(Printf.sprintf "%s > %.1fx %s" a factor b)
        (at_one a > factor *. at_one b))
    claim_factors

let fig7a () =
  fig7 ~sub:"a" ~get_frac:0.0 ~ins_frac:0.5
    ~claim_factors:
      [
        ("Montage", "Dali", 1.0);
        ("Montage", "MOD", 1.0);
        ("Montage", "Pronto-Sync", 1.5);
        ("Montage", "Mnemosyne", 1.5);
      ]
    ()

let fig7b () =
  fig7 ~sub:"b" ~get_frac:0.9 ~ins_frac:0.05
    ~claim_factors:
      [ ("Montage", "MOD", 1.0); ("Montage", "Dali", 1.0); ("Montage", "Mnemosyne", 1.0) ]
    ()

(* ---- Figure 8: payload-size sweep, single-threaded ---- *)

let payload_sizes = [ 16; 64; 256; 1024; 4096 ]

let fig8a () =
  Benchlib.Report.heading "Figure 8a: single-threaded queues vs payload size";
  let rows_names = Systems.all_queue_systems ~threads:1 ~value_size:Env.value_size |> List.map fst in
  let rows =
    List.map
      (fun name ->
        ( name,
          List.map
            (fun size ->
              let make = List.assoc name (Systems.all_queue_systems ~threads:1 ~value_size:size) in
              let sys = make () in
              let value = make_value size in
              for i = 0 to 999 do
                sys.Systems.qenq ~tid:0 (key_of i)
              done;
              let r =
                Benchlib.Runner.throughput ~threads:1 ~duration_s:Env.duration_s (fun ~tid ~rng ->
                    if Util.Xoshiro.bool rng then sys.Systems.qenq ~tid value
                    else ignore (sys.Systems.qdeq ~tid))
              in
              sys.Systems.qstop ();
              r.Benchlib.Runner.ops_per_sec)
            payload_sizes ))
      rows_names
  in
  Benchlib.Report.table ~columns:(List.map string_of_int payload_sizes) ~rows ~unit_label:"ops/s" ();
  let at name i = List.nth (List.assoc name rows) i in
  Benchlib.Report.check ~figure:"fig8a" ~claim:"Montage beats strict persistent queues at every size"
    (List.for_all (fun i -> at "Montage" i > at "Pronto-Sync" i) [ 0; 2; 4 ])

let fig8b () =
  Benchlib.Report.heading "Figure 8b: single-threaded hashmap, 2:1:1 g:i:r, vs payload size";
  let keyspace = 2 * Env.preload in
  let rows_names =
    Systems.all_map_systems ~threads:1 ~preload:Env.preload ~value_size:Env.value_size |> List.map fst
  in
  let rows =
    List.map
      (fun name ->
        ( name,
          List.map
            (fun size ->
              let make =
                List.assoc name
                  (Systems.all_map_systems ~threads:1 ~preload:Env.preload ~value_size:size)
              in
              let sys = make () in
              let value = make_value size in
              preload_map sys ~preload:Env.preload ~value;
              let v = run_map_point ~sys ~threads:1 ~get_frac:0.5 ~ins_frac:0.25 ~keyspace ~value in
              sys.Systems.mstop ();
              v)
            payload_sizes ))
      rows_names
  in
  Benchlib.Report.table ~columns:(List.map string_of_int payload_sizes) ~rows ~unit_label:"ops/s" ();
  let at name i = List.nth (List.assoc name rows) i in
  Benchlib.Report.check ~figure:"fig8b" ~claim:"Montage leads general-purpose systems across sizes"
    (List.for_all (fun i -> at "Montage" i > at "Pronto-Sync" i && at "Montage" i > at "Mnemosyne" i)
       [ 0; 2; 4 ])

(* ---- Figure 9: sync frequency ---- *)

let fig9 () =
  Benchlib.Report.heading "Figure 9: hashmap with a sync every k operations (0:1:1)";
  let sync_intervals = [ 1; 10; 100; 1000; 10000 ] in
  let value = make_value Env.value_size in
  let keyspace = 2 * Env.preload in
  let threads = Env.max_threads in
  let capacity = Systems.map_capacity ~preload:Env.preload ~value_size:Env.value_size in
  let variants =
    [
      ("Montage (cb)", fun c -> c);
      ("Montage (dw)", fun c -> { c with Cfg.drain_on_end_op = true });
    ]
  in
  let rows =
    List.map
      (fun (name, cfg_mod) ->
        ( name,
          List.map
            (fun k ->
              let sys = Systems.montage_map ~cfg_mod ~capacity ~threads ~buckets:(1 lsl 15) () in
              preload_map sys ~preload:Env.preload ~value;
              let counters = Array.make (threads + 1) 0 in
              let r =
                Benchlib.Runner.throughput ~threads ~duration_s:Env.duration_s (fun ~tid ~rng ->
                    let x = Util.Xoshiro.float rng in
                    let key = key_of (Util.Xoshiro.int rng keyspace) in
                    if x < 0.5 then sys.Systems.mput ~tid key value else sys.Systems.mrem ~tid key;
                    counters.(tid) <- counters.(tid) + 1;
                    if counters.(tid) mod k = 0 then sys.Systems.msync ~tid)
              in
              sys.Systems.mstop ();
              r.Benchlib.Runner.ops_per_sec)
            sync_intervals ))
      variants
  in
  (* flat references *)
  let ref_row name make =
    let sys : Systems.map_inst = make () in
    preload_map sys ~preload:Env.preload ~value;
    let v = run_map_point ~sys ~threads ~get_frac:0.0 ~ins_frac:0.5 ~keyspace ~value in
    sys.Systems.mstop ();
    (name, List.map (fun _ -> v) sync_intervals)
  in
  let rows =
    rows
    @ [
        ref_row "NVM (T)" (fun () ->
            Systems.nvm_t_map ~capacity ~threads ~buckets:(1 lsl 15) ());
        ref_row "Montage (T)" (fun () ->
            Systems.montage_t_map ~capacity ~threads ~buckets:(1 lsl 15) ());
      ]
  in
  Benchlib.Report.table
    ~columns:(List.map (fun k -> "1/" ^ string_of_int k) sync_intervals)
    ~rows ~unit_label:"ops/s" ();
  let cb = List.assoc "Montage (cb)" rows in
  Benchlib.Report.check ~figure:"fig9" ~claim:"throughput recovers as syncs become rarer"
    (List.nth cb 4 > List.nth cb 0)

(* ---- Figure 10: memcached-style store under YCSB-A ---- *)

let fig10 () =
  Benchlib.Report.heading "Figure 10: memcached-like store, YCSB-A (50r/50u zipfian)";
  let records = Env.preload in
  let spec = Kvstore.Ycsb.workload_a ~records ~value_size:Env.value_size () in
  let capacity = Systems.map_capacity ~preload:records ~value_size:Env.value_size in
  let backends =
    [
      ("DRAM (T)", fun () -> Systems.dram_map ~buckets:(1 lsl 15) ());
      ("Montage (T)", fun () -> Systems.montage_t_map ~capacity ~threads:Env.max_threads ~buckets:(1 lsl 15) ());
      ("Montage", fun () -> Systems.montage_map ~capacity ~threads:Env.max_threads ~buckets:(1 lsl 15) ());
      ("MHAMT", fun () -> Systems.mhamt_map ~capacity:(4 * capacity) ~threads:Env.max_threads ());
    ]
  in
  let rows =
    List.map
      (fun (name, make) ->
        ( name,
          List.map
            (fun threads ->
              let sys : Systems.map_inst = make () in
              let backend =
                (* reference systems expose no atomic RMW; YCSB-A is
                   read/update only, so the get-then-put fallback is safe *)
                Kvstore.Store.backend
                  ~get:(fun ~tid k -> sys.Systems.mget ~tid k)
                  ~put:(fun ~tid k v ->
                    sys.Systems.mput ~tid k v;
                    None)
                  ~remove:(fun ~tid k ->
                    let old = sys.Systems.mget ~tid k in
                    sys.Systems.mrem ~tid k;
                    old)
                  ()
              in
              let store = Kvstore.Store.create backend in
              let wl = Kvstore.Ycsb.create spec in
              let load_rng = Util.Xoshiro.create 7 in
              Kvstore.Ycsb.load wl ~set:(fun k v -> Kvstore.Store.set store ~tid:0 k v) load_rng;
              let r =
                Benchlib.Runner.throughput ~threads ~duration_s:Env.duration_s (fun ~tid ~rng ->
                    Kvstore.Ycsb.execute wl ~tid store (Kvstore.Ycsb.next wl rng))
              in
              sys.Systems.mstop ();
              r.Benchlib.Runner.ops_per_sec)
            Env.threads ))
      backends
  in
  Benchlib.Report.table ~columns:(List.map string_of_int Env.threads) ~rows ~unit_label:"ops/s" ();
  let at_one name = List.nth (List.assoc name rows) 0 in
  Benchlib.Report.check ~figure:"fig10" ~claim:"persistent memcached within a small factor of DRAM (T)"
    (at_one "Montage" > at_one "DRAM (T)" /. 5.0)

(* ---- snapshot-while-writing: continuous scans vs concurrent writes ---- *)

(* One window per (system, writer count): [writers] domains overwrite
   preloaded keys flat-out while one extra domain takes a snapshot,
   folds it to completion, releases it, and repeats.  Reported rates
   come from shared counters over the runner's measured window, so the
   scan and write columns describe the same seconds.  Writers only
   overwrite (never insert or remove), so every consistent scan must
   see exactly [keyspace] bindings — the check that makes this a
   snapshot-isolation figure and not just a throughput race. *)
let snapshot_scan () =
  Benchlib.Report.heading
    "Snapshot-while-writing: continuous full scans vs concurrent overwrite load";
  let value = make_value Env.value_size in
  let keyspace = Env.preload in
  let capacity = 8 * Systems.map_capacity ~preload:keyspace ~value_size:Env.value_size in
  let systems =
    [
      ( "MHAMT",
        fun writers -> Systems.mhamt_scan ~capacity ~threads:(writers + 2) () );
      ( "Mhashmap",
        fun writers -> Systems.mhashmap_scan ~capacity ~threads:(writers + 2) ~buckets:(1 lsl 15) () );
    ]
  in
  let points =
    List.map
      (fun (name, make) ->
        ( name,
          List.map
            (fun writers ->
              (* tuple-typed point, so [guarded]'s nan doesn't fit: a
                 crash yields nan rates plus one poisoned scan so the
                 consistency check below fails loudly *)
              try
                  let sys : Systems.scan_inst = make writers in
                  for i = 0 to keyspace - 1 do
                    sys.Systems.zput ~tid:0 (key_of i) value
                  done;
                  let scans = Atomic.make 0 and writes = Atomic.make 0 in
                  let bad_scans = Atomic.make 0 in
                  let r =
                    Benchlib.Runner.throughput ~threads:(writers + 1) ~duration_s:Env.duration_s
                      (fun ~tid ~rng ->
                        if tid = writers then begin
                          (* scanner domain: one full consistent scan per op *)
                          let n = sys.Systems.zscan ~tid in
                          if n <> keyspace then Atomic.incr bad_scans;
                          Atomic.incr scans
                        end
                        else begin
                          let i = Util.Xoshiro.int rng keyspace in
                          sys.Systems.zput ~tid (key_of i) value;
                          Atomic.incr writes
                        end)
                  in
                  sys.Systems.zstop ();
                  let per_s c = float_of_int (Atomic.get c) /. r.Benchlib.Runner.seconds in
                  (per_s scans, per_s writes, Atomic.get bad_scans, Atomic.get scans)
              with e ->
                Printf.eprintf "[bench] snapshot %s w=%d failed: %s\n%s%!" name writers
                  (Printexc.to_string e)
                  (Printexc.get_backtrace ());
                (nan, nan, 1, 0))
            Env.threads ))
      systems
  in
  let col3 f = List.map (fun (n, ps) -> (n, List.map f ps)) points in
  Benchlib.Report.table
    ~columns:(List.map string_of_int Env.threads)
    ~rows:(col3 (fun (s, _, _, _) -> s))
    ~unit_label:"scans/s" ();
  Benchlib.Report.table
    ~columns:(List.map string_of_int Env.threads)
    ~rows:(col3 (fun (_, w, _, _) -> w))
    ~unit_label:"writes/s" ();
  let mhamt = List.assoc "MHAMT" points in
  let total f = List.fold_left (fun acc p -> acc + f p) 0 mhamt in
  Benchlib.Report.check ~figure:"snapshot"
    ~claim:"every MHAMT scan under write load saw the full consistent keyspace"
    (total (fun (_, _, bad, _) -> bad) = 0 && total (fun (_, _, _, n) -> n) > 0);
  let at_max f =
    let ps = List.nth mhamt (List.length mhamt - 1) in
    f ps
  in
  Benchlib.Report.check ~figure:"snapshot"
    ~claim:"scans and writes both make progress at the highest writer count"
    (at_max (fun (s, _, _, _) -> s) > 0.0 && at_max (fun (_, w, _, _) -> w) > 0.0)

(* ---- Figure 11: graph microbenchmark ---- *)

type graph_inst = {
  gname : string;
  g_add_edge : tid:int -> int -> int -> bool;
  g_remove_edge : tid:int -> int -> int -> bool;
  g_add_vertex : tid:int -> int -> bool;
  g_remove_vertex : tid:int -> int -> bool;
  g_stop : unit -> unit;
}

let graph_value = lazy (make_value 64) (* vertex/edge attributes *)

let montage_graph_inst ?(name = "Montage") ?(cfg_mod = fun c -> c) ~threads () =
  let attrs = Lazy.force graph_value in
  let capacity = max (1 lsl 27) (Env.graph_capacity * Env.graph_degree * 256) in
  let r = Systems.region ~capacity ~threads in
  let cfg = cfg_mod { Cfg.default with max_threads = threads + 1 } in
  let esys = E.create ~config:cfg r in
  let g = Pstructs.Mgraph.create ~capacity:Env.graph_capacity esys in
  ( {
      gname = name;
      g_add_edge = (fun ~tid u v -> Pstructs.Mgraph.add_edge g ~tid u v attrs);
      g_remove_edge = (fun ~tid u v -> Pstructs.Mgraph.remove_edge g ~tid u v);
      g_add_vertex = (fun ~tid i -> Pstructs.Mgraph.add_vertex g ~tid i attrs);
      g_remove_vertex = (fun ~tid i -> Pstructs.Mgraph.remove_vertex g ~tid i);
      g_stop = (fun () -> E.stop_background esys);
    },
    `Montage (esys, g, r) )

let dram_graph_inst () =
  let attrs = Lazy.force graph_value in
  let g = Baselines.Transient_graph.create ~capacity:Env.graph_capacity Baselines.Transient_graph.Dram in
  {
    gname = "DRAM (T)";
    g_add_edge = (fun ~tid u v -> Baselines.Transient_graph.add_edge g ~tid u v attrs);
    g_remove_edge = (fun ~tid u v -> Baselines.Transient_graph.remove_edge g ~tid u v);
    g_add_vertex = (fun ~tid i -> Baselines.Transient_graph.add_vertex g ~tid i attrs);
    g_remove_vertex = (fun ~tid i -> Baselines.Transient_graph.remove_vertex g ~tid i);
    g_stop = (fun () -> ());
  }

let preload_graph inst ~rng =
  let cap = Env.graph_capacity in
  for i = 0 to (cap / 2) - 1 do
    ignore (inst.g_add_vertex ~tid:0 i)
  done;
  for i = 0 to (cap / 2) - 1 do
    for _ = 1 to Env.graph_degree do
      let peer = Util.Xoshiro.int rng (cap / 2) in
      if peer <> i then ignore (inst.g_add_edge ~tid:0 i peer)
    done
  done

let fig11 () =
  Benchlib.Report.heading "Figure 11: graph microbenchmark (edge ops : vertex ops)";
  let ratios = [ ("4:1", 0.8); ("499:1", 0.998) ] in
  let systems =
    [
      ("DRAM (T)", fun _threads -> (dram_graph_inst (), `None));
      ( "Montage (T)",
        fun threads ->
          montage_graph_inst ~name:"Montage (T)"
            ~cfg_mod:(fun c -> { c with Cfg.persist = false; auto_advance = false })
            ~threads () );
      ("Montage", fun threads -> montage_graph_inst ~threads ());
    ]
  in
  List.iter
    (fun (rlabel, edge_frac) ->
      Printf.printf "-- edge:vertex = %s --\n" rlabel;
      let rows =
        List.map
          (fun (name, make) ->
            ( name,
              List.map
                (fun threads ->
                  let inst, _ = make threads in
                  preload_graph inst ~rng:(Util.Xoshiro.create 11);
                  let cap = Env.graph_capacity in
                  let r =
                    Benchlib.Runner.throughput ~threads ~duration_s:Env.duration_s
                      (fun ~tid ~rng ->
                        let x = Util.Xoshiro.float rng in
                        if x < edge_frac then begin
                          let u = Util.Xoshiro.int rng cap and v = Util.Xoshiro.int rng cap in
                          if Util.Xoshiro.bool rng then ignore (inst.g_add_edge ~tid u v)
                          else ignore (inst.g_remove_edge ~tid u v)
                        end
                        else begin
                          let i = Util.Xoshiro.int rng cap in
                          if Util.Xoshiro.bool rng then begin
                            if inst.g_add_vertex ~tid i then
                              for _ = 1 to Env.graph_degree do
                                ignore (inst.g_add_edge ~tid i (Util.Xoshiro.int rng cap))
                              done
                          end
                          else ignore (inst.g_remove_vertex ~tid i)
                        end)
                  in
                  inst.g_stop ();
                  r.Benchlib.Runner.ops_per_sec)
                Env.threads ))
          systems
      in
      Benchlib.Report.table ~columns:(List.map string_of_int Env.threads) ~rows ~unit_label:"ops/s" ();
      let at_one name = List.nth (List.assoc name rows) 0 in
      Benchlib.Report.check ~figure:"fig11"
        ~claim:(Printf.sprintf "persistent graph within a small factor of transient (%s mix)" rlabel)
        (at_one "Montage" > at_one "DRAM (T)" /. 4.0))
    ratios

(* ---- Figure 12: graph recovery vs parallel construction ---- *)

let fig12 () =
  Benchlib.Report.heading "Figure 12: power-law graph — parallel construction vs Montage recovery";
  let nv = Env.graph_capacity / 2 in
  let rng = Util.Xoshiro.create 2024 in
  (* power-law-ish edge list: endpoint = min of two uniforms, squared
     preference for low ids (RMAT-flavoured skew) *)
  let ne = nv * Env.graph_degree / 2 in
  let pick () =
    let a = Util.Xoshiro.int rng nv and b = Util.Xoshiro.int rng nv in
    min a b
  in
  let edges = Array.init ne (fun _ -> (pick (), Util.Xoshiro.int rng nv)) in
  let attrs = Lazy.force graph_value in
  (* construction time on a transient graph, k threads *)
  let construct_transient threads =
    let g = Baselines.Transient_graph.create ~capacity:Env.graph_capacity Baselines.Transient_graph.Dram in
    let _, seconds =
      Benchlib.Runner.time (fun () ->
          let dom k =
            Domain.spawn (fun () ->
                let lo = k * nv / threads and hi = (k + 1) * nv / threads in
                for i = lo to hi - 1 do
                  ignore (Baselines.Transient_graph.add_vertex g ~tid:k i attrs)
                done)
          in
          Array.init threads dom |> Array.iter Domain.join;
          let dome k =
            Domain.spawn (fun () ->
                let lo = k * ne / threads and hi = (k + 1) * ne / threads in
                for i = lo to hi - 1 do
                  let u, v = edges.(i) in
                  if u <> v then ignore (Baselines.Transient_graph.add_edge g ~tid:k u v attrs)
                done)
          in
          Array.init threads dome |> Array.iter Domain.join)
    in
    seconds
  in
  (* construction on a Montage graph with persistence elided = NVM (T) *)
  let construct_montage ~persist threads =
    let capacity = max (1 lsl 27) (Env.graph_capacity * Env.graph_degree * 256) in
    let r = Systems.region ~capacity ~threads in
    let cfg =
      if persist then { Cfg.default with max_threads = threads + 1 }
      else { Cfg.default with max_threads = threads + 1; persist = false; auto_advance = false }
    in
    let esys = E.create ~config:cfg r in
    let g = Pstructs.Mgraph.create ~capacity:Env.graph_capacity esys in
    let _, seconds =
      Benchlib.Runner.time (fun () ->
          let dom k =
            Domain.spawn (fun () ->
                let lo = k * nv / threads and hi = (k + 1) * nv / threads in
                for i = lo to hi - 1 do
                  ignore (Pstructs.Mgraph.add_vertex g ~tid:k i attrs)
                done)
          in
          Array.init threads dom |> Array.iter Domain.join;
          let dome k =
            Domain.spawn (fun () ->
                let lo = k * ne / threads and hi = (k + 1) * ne / threads in
                for i = lo to hi - 1 do
                  let u, v = edges.(i) in
                  if u <> v then ignore (Pstructs.Mgraph.add_edge g ~tid:k u v attrs)
                done)
          in
          Array.init threads dome |> Array.iter Domain.join)
    in
    (seconds, esys, r)
  in
  (* recovery time: build once with persistence, sync, crash, recover *)
  let recover_time threads =
    let _, esys, r = construct_montage ~persist:true 1 in
    E.sync esys ~tid:0;
    E.stop_background esys;
    Nvm.Region.crash r;
    let _, seconds =
      Benchlib.Runner.time (fun () ->
          (* small worker count: recovery itself parallelizes via
             Mgraph.recover's domains, not esys worker slots *)
          let esys2, payloads =
            E.recover ~config:{ Cfg.testing with max_threads = 3 } ~threads:(min threads 4) r
          in
          let g = Pstructs.Mgraph.recover ~capacity:Env.graph_capacity ~threads esys2 payloads in
          ignore g)
    in
    seconds
  in
  let rows =
    [
      ("DRAM (T) construct", List.map construct_transient Env.threads);
      ( "NVM (T) construct",
        List.map
          (fun threads ->
            let s, esys, _ = construct_montage ~persist:false threads in
            E.stop_background esys;
            s)
          Env.threads );
      ("Montage recover", List.map recover_time Env.threads);
    ]
  in
  Benchlib.Report.table
    ~fmt:(Printf.sprintf "%.3f")
    ~columns:(List.map string_of_int Env.threads)
    ~rows:(List.map (fun (n, vs) -> (n, vs)) rows)
    ~unit_label:"seconds" ();
  let recover1 = List.nth (List.assoc "Montage recover" rows) 0 in
  let construct1 = List.nth (List.assoc "NVM (T) construct" rows) 0 in
  Benchlib.Report.check ~figure:"fig12"
    ~claim:"recovery is competitive with parallel reconstruction"
    (recover1 < 3.0 *. construct1)

(* ---- ablations: design choices DESIGN.md calls out ---- *)

(* Montage supports both lock-based and nonblocking structures (§3.3):
   measure what the epoch-verified DCSS machinery costs relative to a
   plain lock at the same buffered-durability guarantee, and what the
   ordered (skip list) index costs relative to hashing. *)
let ablations () =
  Benchlib.Report.heading "Ablation: lock-based vs nonblocking Montage structures";
  let value = make_value 256 in
  let capacity = 1 lsl 27 in
  let point make_ops threads =
    guarded "ablation" (fun () ->
        let push, pop, stop = make_ops threads in
        for i = 0 to 999 do
          push ~tid:0 (key_of i)
        done;
        let r =
          Benchlib.Runner.throughput ~threads ~duration_s:Env.duration_s (fun ~tid ~rng ->
              if Util.Xoshiro.bool rng then push ~tid value else ignore (pop ~tid))
        in
        stop ();
        r.Benchlib.Runner.ops_per_sec)
  in
  let montage_esys threads =
    let r = Systems.region ~capacity ~threads in
    E.create ~config:{ Cfg.default with max_threads = threads + 1 } r
  in
  let mk_lock_stack threads =
    let esys = montage_esys threads in
    let s = Pstructs.Mstack.create esys in
    ( (fun ~tid v -> Pstructs.Mstack.push s ~tid v),
      (fun ~tid -> Pstructs.Mstack.pop s ~tid),
      fun () -> E.stop_background esys )
  in
  let mk_nb_stack threads =
    let esys = montage_esys threads in
    let s = Pstructs.Nb_stack.create esys in
    ( (fun ~tid v -> Pstructs.Nb_stack.push s ~tid v),
      (fun ~tid -> Pstructs.Nb_stack.pop s ~tid),
      fun () -> E.stop_background esys )
  in
  let mk_lock_queue threads =
    let esys = montage_esys threads in
    let q = Pstructs.Mqueue.create esys in
    ( (fun ~tid v -> Pstructs.Mqueue.enqueue q ~tid v),
      (fun ~tid -> Pstructs.Mqueue.dequeue q ~tid),
      fun () -> E.stop_background esys )
  in
  let mk_nb_queue threads =
    let esys = montage_esys threads in
    let q = Pstructs.Nb_queue.create esys in
    ( (fun ~tid v -> Pstructs.Nb_queue.enqueue q ~tid v),
      (fun ~tid -> Pstructs.Nb_queue.dequeue q ~tid),
      fun () -> E.stop_background esys )
  in
  let rows =
    [
      ("stack: single lock", List.map (point mk_lock_stack) Env.threads);
      ("stack: nonblocking DCSS", List.map (point mk_nb_stack) Env.threads);
      ("queue: single lock", List.map (point mk_lock_queue) Env.threads);
      ("queue: nonblocking DCSS", List.map (point mk_nb_queue) Env.threads);
    ]
  in
  Benchlib.Report.table ~columns:(List.map string_of_int Env.threads) ~rows ~unit_label:"ops/s" ();
  Benchlib.Report.heading "Ablation: hash index vs ordered (skip list) index";
  let map_point make_ops threads =
    guarded "ablation map" (fun () ->
        let put, get, remove, stop = make_ops threads in
        for i = 0 to 4999 do
          put ~tid:0 (key_of i) value
        done;
        let r =
          Benchlib.Runner.throughput ~threads ~duration_s:Env.duration_s (fun ~tid ~rng ->
              let key = key_of (Util.Xoshiro.int rng 10_000) in
              match Util.Xoshiro.int rng 4 with
              | 0 -> put ~tid key value
              | 1 -> remove ~tid key
              | _ -> get ~tid key)
        in
        stop ();
        r.Benchlib.Runner.ops_per_sec)
  in
  let mk_hash threads =
    let esys = montage_esys threads in
    let m = Pstructs.Mhashmap.create ~buckets:(1 lsl 14) esys in
    ( (fun ~tid k v -> ignore (Pstructs.Mhashmap.put m ~tid k v)),
      (fun ~tid k -> ignore (Pstructs.Mhashmap.get m ~tid k)),
      (fun ~tid k -> ignore (Pstructs.Mhashmap.remove m ~tid k)),
      fun () -> E.stop_background esys )
  in
  let mk_skip threads =
    let esys = montage_esys threads in
    let m = Pstructs.Mskiplist.create esys in
    ( (fun ~tid k v -> ignore (Pstructs.Mskiplist.put m ~tid k v)),
      (fun ~tid k -> ignore (Pstructs.Mskiplist.get m ~tid k)),
      (fun ~tid k -> ignore (Pstructs.Mskiplist.remove m ~tid k)),
      fun () -> E.stop_background esys )
  in
  let rows =
    [
      ("hashmap", List.map (map_point mk_hash) Env.threads);
      ("skiplist (ordered)", List.map (map_point mk_skip) Env.threads);
    ]
  in
  Benchlib.Report.table ~columns:(List.map string_of_int Env.threads) ~rows ~unit_label:"ops/s" ()

(* ---- §6.4 recovery-time table ---- *)

let recovery_table () =
  Benchlib.Report.heading "§6.4: hashmap recovery time vs data-set size";
  let value_size = 1024 in
  let value = make_value value_size in
  let thread_options = [ 1; min 4 Env.max_threads ] in
  let rows =
    List.map
      (fun mb ->
        let elements = mb * 1024 * 1024 / value_size in
        let capacity = Systems.map_capacity ~preload:elements ~value_size in
        let r = Systems.region ~capacity ~threads:4 in
        let esys = E.create ~config:{ Cfg.testing with max_threads = 6 } r in
        let m = Pstructs.Mhashmap.create ~buckets:(1 lsl 15) esys in
        for i = 0 to elements - 1 do
          ignore (Pstructs.Mhashmap.put m ~tid:0 (key_of i) value)
        done;
        E.sync esys ~tid:0;
        Nvm.Region.crash r;
        let times =
          List.map
            (fun threads ->
              (* recover the epoch system fresh each time from the same
                 image: recovery is idempotent on an unmodified image *)
              let _, seconds =
                Benchlib.Runner.time (fun () ->
                    let esys2, payloads =
                      E.recover ~config:{ Cfg.testing with max_threads = 6 } ~threads r
                    in
                    ignore (Pstructs.Mhashmap.recover ~buckets:(1 lsl 15) ~threads esys2 payloads))
              in
              seconds)
            thread_options
        in
        (Printf.sprintf "%d MB (%d items)" mb elements, times))
      Env.recovery_sizes_mb
  in
  Benchlib.Report.table
    ~fmt:(Printf.sprintf "%.3f")
    ~columns:(List.map (fun t -> Printf.sprintf "%dthr" t) thread_options)
    ~rows ~unit_label:"seconds" ();
  match rows with
  | (_, [ t1; tk ]) :: _ ->
      Benchlib.Report.check ~figure:"recovery"
        ~claim:"parallel recovery within 2.5x of sequential (1 core: no speedup possible)"
        (tk <= t1 *. 2.5)
  | _ -> ()

(* ---- write-back coalescing accounting ---- *)

(* Fixed-op-count, single-worker, manually ticked runs: the identical
   op sequence with the coalescer on vs off, compared by exact
   write-back and fence counts rather than a timed race.  The hashmap
   side leans on bursts of same-key rewrites (same-epoch in-place pset
   updates keep dirtying the same payload lines); the queue side on the
   enqueue-persist / dequeue-scrub overlap of a 1:1 mix.  Both must
   issue strictly fewer lines and fences with coalescing on. *)
let coalesce () =
  Benchlib.Report.heading "Write-back coalescing: lines and fences per op (fixed workload)";
  let ops = 20_000 in
  let fops = float_of_int ops in
  let value = make_value 64 in
  let mk_cfg on =
    {
      Cfg.default with
      max_threads = 1;
      auto_advance = false;
      coalesce_writebacks = on;
      drain_domains = 1;
    }
  in
  let finish r esys =
    E.sync esys ~tid:0;
    E.stop_background esys;
    Nvm.Region.stats r
  in
  let map_run on () =
    let r = Systems.region ~capacity:(1 lsl 26) ~threads:1 in
    let esys = E.create ~config:(mk_cfg on) r in
    let m = Pstructs.Mhashmap.create ~buckets:(1 lsl 10) esys in
    for i = 0 to ops - 1 do
      ignore (Pstructs.Mhashmap.put m ~tid:0 (key_of (i / 16 mod 512)) value);
      if i mod 1024 = 1023 then E.advance_epoch esys ~tid:0
    done;
    finish r esys
  in
  let queue_run on () =
    let r = Systems.region ~capacity:(1 lsl 26) ~threads:1 in
    let esys = E.create ~config:(mk_cfg on) r in
    let q = Pstructs.Mqueue.create esys in
    for i = 0 to ops - 1 do
      if i land 1 = 0 then Pstructs.Mqueue.enqueue q ~tid:0 value
      else ignore (Pstructs.Mqueue.dequeue q ~tid:0);
      if i mod 1024 = 1023 then E.advance_epoch esys ~tid:0
    done;
    finish r esys
  in
  let safe name f =
    try Some (f ())
    with e ->
      Printf.eprintf "[bench] coalesce %s failed: %s\n%!" name (Printexc.to_string e);
      None
  in
  let m_on = safe "hashmap on" (map_run true) in
  let m_off = safe "hashmap off" (map_run false) in
  let q_on = safe "queue on" (queue_run true) in
  let q_off = safe "queue off" (queue_run false) in
  let row name = function
    | None -> (name, [ nan; nan; nan ])
    | Some { Nvm.Region.writebacks; fences; coalesce_lines_in; coalesce_lines_out; _ } ->
        let dedup =
          if coalesce_lines_out = 0 then nan
          else float_of_int coalesce_lines_in /. float_of_int coalesce_lines_out
        in
        (name, [ float_of_int writebacks /. fops; float_of_int fences /. fops; dedup ])
  in
  Benchlib.Report.table
    ~fmt:(Printf.sprintf "%.3f")
    ~columns:[ "wb-lines/op"; "fences/op"; "dedup" ]
    ~rows:
      [
        row "hashmap: coalesce=on" m_on;
        row "hashmap: coalesce=off" m_off;
        row "queue: coalesce=on" q_on;
        row "queue: coalesce=off" q_off;
      ]
    ~unit_label:"per op" ();
  let strictly_lower what on off =
    match (on, off) with
    | ( Some { Nvm.Region.writebacks = wa; fences = fa; _ },
        Some { Nvm.Region.writebacks = wb; fences = fb; _ } ) ->
        Benchlib.Report.check ~figure:"coalesce"
          ~claim:(what ^ ": coalescing strictly reduces write-back lines and fences")
          (wa < wb && fa < fb)
    | _ ->
        Benchlib.Report.check ~figure:"coalesce" ~claim:(what ^ ": both runs completed") false
  in
  strictly_lower "hashmap" m_on m_off;
  strictly_lower "queue" q_on q_off;
  match m_on with
  | Some { Nvm.Region.coalesce_lines_in = li; coalesce_lines_out = lo; _ } ->
      Benchlib.Report.check ~figure:"coalesce"
        ~claim:"hashmap rewrite bursts dedup at least 2x at the coalescer" (lo > 0 && li >= 2 * lo)
  | None -> ()

(* ---- Netserve: the TCP front end under closed-loop load ---- *)

(* The §6.2 validation taken all the way to sockets: the memcached
   store behind the sharded netserve front end, driven by the
   closed-loop load generator over loopback.  Throughput vs worker
   count for the Montage backend against the same server on a
   transient (DRAM) map — the gap is the full buffered-persistence
   cost as a network client sees it — plus the latency percentiles at
   the widest sharding.  Each point builds a fresh server on an
   ephemeral port, preloads the keyspace, and shuts down gracefully
   (drain + epoch sync), feeding [Systems.report_netserve]. *)
let netserve_point ~backend ~workers =
  let value_size = 64 and keyspace = 2000 in
  let store, esys, r =
    match backend with
    | `Montage ->
        let capacity = 1 lsl 26 in
        let r = Systems.region ~capacity ~threads:workers in
        let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } r in
        let map = Pstructs.Mhashmap.create ~buckets:(1 lsl 12) esys in
        (Kvstore.Store.create (Kvstore.Store.of_mhashmap map), Some esys, Some r)
    | `Transient ->
        let m = Baselines.Transient_map.create ~buckets:(1 lsl 12) Baselines.Transient_map.Dram in
        (Kvstore.Store.create (Kvstore.Store.of_transient_map m), None, None)
  in
  let config = { Netserve.default_config with port = 0; workers; tick_s = 0.01 } in
  let t =
    match esys with
    | Some esys ->
        Netserve.start ~config
          ~sync:(fun ~tid -> E.sync esys ~tid)
          ~persisted_epoch:(fun () -> E.persisted_epoch esys)
          store
    | None -> Netserve.start ~config store
  in
  let lg =
    {
      Netserve.Loadgen.default_config with
      port = Netserve.port t;
      conns = max 4 (2 * workers);
      domains = 2;
      duration_s = Env.duration_s;
      pipeline = 8;
      value_size;
      keyspace;
      get_frac = 0.9;
      key_prefix = "ns";
    }
  in
  Netserve.Loadgen.preload ~config:lg ();
  let report = Netserve.Loadgen.run ~config:lg () in
  let d = Netserve.shutdown t in
  Systems.note_netserve t d;
  (match (esys, r) with
  | Some esys, Some r ->
      E.stop_background esys;
      Systems.note_region_stats r;
      Systems.note_mirror_stats esys r
  | _ -> ());
  report

let netserve () =
  Benchlib.Report.heading
    "Netserve: memcached TCP front end, closed-loop loadgen (90% get, 64 B values)";
  let worker_counts = Env.threads in
  let safe backend workers =
    try Some (netserve_point ~backend ~workers)
    with e ->
      Printf.eprintf "[bench] netserve %d workers failed: %s\n%!" workers (Printexc.to_string e);
      None
  in
  let points =
    List.map
      (fun (name, backend) ->
        (name, backend, List.map (fun w -> (w, safe backend w)) worker_counts))
      [ ("Montage", `Montage); ("Transient (DRAM)", `Transient) ]
  in
  let tput = function None -> nan | Some r -> r.Netserve.Loadgen.ops_per_sec in
  Benchlib.Report.table
    ~columns:(List.map (fun w -> Printf.sprintf "%dw" w) worker_counts)
    ~rows:(List.map (fun (name, _, pts) -> (name, List.map (fun (_, p) -> tput p) pts)) points)
    ~unit_label:"ops/s" ();
  (* latency at the widest sharding *)
  Benchlib.Report.table
    ~columns:[ "mean_us"; "p50_us"; "p95_us"; "p99_us" ]
    ~rows:
      (List.map
         (fun (name, _, pts) ->
           match List.rev pts with
           | (_, Some r) :: _ ->
               ( name,
                 [
                   r.Netserve.Loadgen.mean_us;
                   r.Netserve.Loadgen.p50_us;
                   r.Netserve.Loadgen.p95_us;
                   r.Netserve.Loadgen.p99_us;
                 ] )
           | _ -> (name, [ nan; nan; nan; nan ]))
         points)
    ~unit_label:(Printf.sprintf "latency at %d workers" (List.fold_left max 1 worker_counts))
    ();
  let montage_pts = match points with (_, _, pts) :: _ -> pts | [] -> [] in
  Benchlib.Report.check ~figure:"netserve"
    ~claim:"the Montage-backed server sustains non-zero throughput at every worker count"
    (montage_pts <> []
    && List.for_all
         (fun (_, p) -> match p with Some r -> r.Netserve.Loadgen.ops > 0 && r.Netserve.Loadgen.errors = 0 | None -> false)
         montage_pts);
  Benchlib.Report.check ~figure:"netserve"
    ~claim:"latency percentiles are ordered (p50 <= p95 <= p99) on the Montage backend"
    (match List.rev montage_pts with
    | (_, Some r) :: _ ->
        r.Netserve.Loadgen.p50_us <= r.Netserve.Loadgen.p95_us
        && r.Netserve.Loadgen.p95_us <= r.Netserve.Loadgen.p99_us
    | _ -> false)

(* ---- C10K: connection scaling and open-loop offered load ---- *)

(* Connection-census scaling for the readiness backends.  Each point
   starts a fresh 2-worker server, parks [census] idle connections in
   the pollers, runs a closed-loop burst over a small busy subset, and
   then round-trips a [version] command on every idle connection to
   prove the census is still being served.  Epoll should hold its 1K
   throughput at 10K+ idle connections (the kernel holds the interest
   set; waits cost O(ready)); select degrades and cannot track fd
   numbers past FD_SETSIZE at all.  Both ends of every connection live
   in this process, so the sweep is clamped to RLIMIT_NOFILE/2. *)

(* [ck_report] is [None] when the busy burst itself could not run —
   the select backend refuses fds past FD_SETSIZE, so at large censuses
   the burst connections land beyond the limit and get reset.  The
   point still carries the census/answered counts, which are the
   figure's real signal on that arm. *)
type c10k_point = {
  ck_requested : int;
  ck_established : int;
  ck_answered : int;
  ck_report : Netserve.Loadgen.report option;
}

let c10k_connect port =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let rec go attempt backoff =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Some fd
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK
            | Unix.EINTR | Unix.ETIMEDOUT ),
            _,
            _ )
      when attempt < 100 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (Unix.sleepf backoff
        [@montage.allow
          "R5: bounded connect backoff in the benchmark driver; client \
           tooling, not server code"]);
        go (attempt + 1) (Float.min 0.2 (backoff *. 2.0))
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        None
  in
  go 0 0.002

let c10k_census_point ~backend ~poller ~census =
  let workers = 2 in
  let store, esys, r =
    match backend with
    | `Montage ->
        let capacity = 1 lsl 26 in
        let r = Systems.region ~capacity ~threads:workers in
        let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } r in
        let map = Pstructs.Mhashmap.create ~buckets:(1 lsl 12) esys in
        (Kvstore.Store.create (Kvstore.Store.of_mhashmap map), Some esys, Some r)
    | `Transient ->
        let m = Baselines.Transient_map.create ~buckets:(1 lsl 12) Baselines.Transient_map.Dram in
        (Kvstore.Store.create (Kvstore.Store.of_transient_map m), None, None)
  in
  let config =
    {
      Netserve.default_config with
      port = 0;
      workers;
      poller = Some poller;
      max_conns = census + 128;
      backlog = 1024;
      idle_timeout_s = 0.0;
      tick_s = 0.01;
    }
  in
  let t =
    match esys with
    | Some esys ->
        Netserve.start ~config
          ~sync:(fun ~tid -> E.sync esys ~tid)
          ~persisted_epoch:(fun () -> E.persisted_epoch esys)
          store
    | None -> Netserve.start ~config store
  in
  let port = Netserve.port t in
  let idle = Array.init census (fun _ -> c10k_connect port) in
  let established = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 idle in
  let lg =
    {
      Netserve.Loadgen.default_config with
      port;
      conns = 16;
      domains = 2;
      duration_s = Env.duration_s;
      value_size = 64;
      keyspace = 2000;
      key_prefix = "ck";
    }
  in
  let report =
    try
      Netserve.Loadgen.preload ~config:lg ();
      Some (Netserve.Loadgen.run ~config:lg ())
    with Netserve.Loadgen.Connection_lost _ | Unix.Unix_error _ -> None
  in
  (* every idle connection must still answer after the burst *)
  let buf = Bytes.create 64 in
  Array.iter
    (function
      | None -> ()
      | Some fd -> (
          try
            Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
            ignore (Unix.write_substring fd "version\r\n" 0 9)
          with Unix.Unix_error _ -> ()))
    idle;
  let answered = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some fd ->
          let rec rd acc =
            if String.contains acc '\n' then acc
            else
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> acc
              | n -> rd (acc ^ Bytes.sub_string buf 0 n)
              | exception Unix.Unix_error _ -> acc
          in
          let reply = rd "" in
          if String.length reply >= 7 && String.sub reply 0 7 = "VERSION" then incr answered)
    idle;
  Array.iter
    (function None -> () | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())) idle;
  let d = Netserve.shutdown t in
  Systems.note_netserve t d;
  (match (esys, r) with
  | Some esys, Some r ->
      E.stop_background esys;
      Systems.note_region_stats r;
      Systems.note_mirror_stats esys r
  | _ -> ());
  { ck_requested = census; ck_established = established; ck_answered = !answered; ck_report = report }

let c10k () =
  Benchlib.Report.heading
    "C10K: mostly-idle connection census vs readiness backend (2 workers, 16 busy conns)";
  let soft = Netserve.Poller.raise_fd_limit 45_000 in
  let budget = max 64 ((soft - 512) / 2) in
  (* 400 sits under FD_SETSIZE even with client and server fds sharing
     one process, so the select arm gets one census it can fully hold *)
  let requested = [ 400; 1_000; 5_000; 10_000; 20_000 ] in
  let censuses = List.sort_uniq compare (List.map (fun c -> min c budget) requested) in
  if List.exists (fun c -> c > budget) requested then
    Printf.printf
      "note: RLIMIT_NOFILE soft limit %d caps the in-process census at %d connections\n%!" soft
      budget;
  let series =
    [
      ("Montage/epoll", `Montage, Netserve.Poller.Epoll);
      ("Transient/epoll", `Transient, Netserve.Poller.Epoll);
      ("Montage/select", `Montage, Netserve.Poller.Select);
    ]
  in
  let series =
    if Netserve.Poller.epoll_available then series
    else [ ("Montage/select", `Montage, Netserve.Poller.Select) ]
  in
  let points =
    List.map
      (fun (name, backend, poller) ->
        ( name,
          List.map
            (fun census ->
              try Some (c10k_census_point ~backend ~poller ~census)
              with e ->
                Printf.eprintf "[bench] c10k %s census=%d failed: %s\n%!" name census
                  (Printexc.to_string e);
                None)
            censuses ))
      series
  in
  let columns = List.map (fun c -> Printf.sprintf "%dc" c) censuses in
  let cell f = function None -> nan | Some p -> f p in
  let rcell f =
    cell (fun p -> match p.ck_report with Some r -> f r | None -> nan)
  in
  Benchlib.Report.table ~columns
    ~rows:
      (List.map
         (fun (name, pts) ->
           (name, List.map (rcell (fun r -> r.Netserve.Loadgen.ops_per_sec)) pts))
         points)
    ~unit_label:"busy-subset ops/s" ();
  Benchlib.Report.table ~columns
    ~rows:
      (List.map
         (fun (name, pts) ->
           (name, List.map (rcell (fun r -> r.Netserve.Loadgen.p99_us)) pts))
         points)
    ~unit_label:"busy-subset p99_us" ();
  Benchlib.Report.table ~columns
    ~rows:
      (List.map
         (fun (name, pts) -> (name, List.map (cell (fun p -> float_of_int p.ck_answered)) pts))
         points)
    ~unit_label:"idle conns still answering (of census)" ();
  (if Netserve.Poller.epoll_available then begin
     let epoll_pts = match points with (_, pts) :: _ -> List.filter_map Fun.id pts | [] -> [] in
     Benchlib.Report.check ~figure:"c10k"
       ~claim:"epoll serves the full idle census at every size (all connections answer)"
       (epoll_pts <> []
       && List.for_all
            (fun p -> p.ck_established = p.ck_requested && p.ck_answered = p.ck_requested)
            epoll_pts);
     (* anchored at the 1K census, the paper-style C10K comparison
        point (the 400-conn point exists for the select arm) *)
     let anchor = List.find_opt (fun p -> p.ck_requested >= 1_000) epoll_pts in
     (match (anchor, List.rev epoll_pts) with
     | Some first, last :: _ when first.ck_requested < last.ck_requested ->
         Benchlib.Report.check ~figure:"c10k"
           ~claim:
             (Printf.sprintf
                "epoll throughput at %d idle conns stays within 10%% of the %d-conn figure"
                last.ck_requested first.ck_requested)
           (match (first.ck_report, last.ck_report) with
           | Some fr, Some lr ->
               lr.Netserve.Loadgen.ops_per_sec >= 0.9 *. fr.Netserve.Loadgen.ops_per_sec
           | _ -> false)
     | _ -> Benchlib.Report.check ~figure:"c10k" ~claim:"epoll census sweep completed" false);
     let select_pts =
       List.concat_map
         (fun (name, pts) -> if name = "Montage/select" then List.filter_map Fun.id pts else [])
         points
     in
     Benchlib.Report.check ~figure:"c10k"
       ~claim:
         "select holds a sub-FD_SETSIZE census but drops idle conns past it; epoll holds both"
       (List.exists
          (fun p ->
            p.ck_requested < Netserve.Poller.select_fd_limit
            && p.ck_answered = p.ck_requested)
          select_pts
       && List.exists
            (fun p ->
              p.ck_requested >= Netserve.Poller.select_fd_limit
              && p.ck_answered < p.ck_requested)
            select_pts)
   end);
  (* ---- open loop: latency vs offered load ---- *)
  Benchlib.Report.heading "C10K: open-loop latency vs offered load (Montage, epoll when available)";
  let workers = 2 in
  let capacity = 1 lsl 26 in
  let r = Systems.region ~capacity ~threads:workers in
  let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } r in
  let map = Pstructs.Mhashmap.create ~buckets:(1 lsl 12) esys in
  let store = Kvstore.Store.create (Kvstore.Store.of_mhashmap map) in
  let config = { Netserve.default_config with port = 0; workers; tick_s = 0.01 } in
  let t =
    Netserve.start ~config
      ~sync:(fun ~tid -> E.sync esys ~tid)
      ~persisted_epoch:(fun () -> E.persisted_epoch esys)
      store
  in
  let lg =
    {
      Netserve.Loadgen.default_config with
      port = Netserve.port t;
      conns = 16;
      domains = 2;
      duration_s = Env.duration_s;
      value_size = 64;
      keyspace = 2000;
      key_prefix = "ol";
    }
  in
  Netserve.Loadgen.preload ~config:lg ();
  (* closed-loop capacity and its (coordinated-omission-blind) p99 *)
  let closed = Netserve.Loadgen.run ~config:lg () in
  let capacity_rate = closed.Netserve.Loadgen.ops_per_sec in
  let fractions = [ 0.5; 0.9; 1.5 ] in
  let open_pts =
    List.map
      (fun frac ->
        let rate = Float.max 1000.0 (frac *. capacity_rate) in
        try (frac, Some (Netserve.Loadgen.run_open ~config:lg ~grace_s:1.0 ~rate ()))
        with e ->
          Printf.eprintf "[bench] c10k open-loop %.1fx failed: %s\n%!" frac
            (Printexc.to_string e);
          (frac, None))
      fractions
  in
  let d = Netserve.shutdown t in
  Systems.note_netserve t d;
  E.stop_background esys;
  Systems.note_region_stats r;
  Benchlib.Report.table
    ~columns:[ "offered/s"; "achieved/s"; "p50_us"; "p99_us"; "abandoned" ]
    ~rows:
      (( Printf.sprintf "closed loop (capacity)",
         [ capacity_rate; capacity_rate; closed.Netserve.Loadgen.p50_us; closed.Netserve.Loadgen.p99_us; 0.0 ] )
      :: List.map
           (fun (frac, p) ->
             let label = Printf.sprintf "open %.1fx capacity" frac in
             match p with
             | Some (o : Netserve.Loadgen.open_report) ->
                 ( label,
                   [
                     o.Netserve.Loadgen.offered_rate;
                     o.Netserve.Loadgen.achieved_rate;
                     o.Netserve.Loadgen.o_p50_us;
                     o.Netserve.Loadgen.o_p99_us;
                     float_of_int o.Netserve.Loadgen.abandoned;
                   ] )
             | None -> (label, [ nan; nan; nan; nan; nan ]))
           open_pts)
    ~unit_label:"open vs closed loop" ();
  match List.assoc_opt 1.5 open_pts with
  | Some (Some o) ->
      Benchlib.Report.check ~figure:"c10k"
        ~claim:
          "open-loop p99 at 1.5x capacity exceeds the closed-loop p99 (queueing delay is charged \
           to latency)"
        (o.Netserve.Loadgen.o_p99_us > closed.Netserve.Loadgen.p99_us)
  | _ -> Benchlib.Report.check ~figure:"c10k" ~claim:"open-loop overload point completed" false

(* ---- Read path: volatile payload mirrors ---- *)

(* Fixed-op read-mostly mix (95% GET / 5% PUT over a uniform key
   cycle) with exact media-read counters, across Montage with mirrors,
   the same build with mirrors off, SOFT, and DRAM (T).  The headline
   claims: warm payload reads hit DRAM at least 90% of the time, and
   the charged NVM read lines per op drop at least 10x against the
   mirror-off build. *)
let readpath () =
  Benchlib.Report.heading "Read path: payload mirrors on a read-mostly mix (fixed workload)";
  let ops = 50_000 and keys = 1 lsl 10 in
  let fops = float_of_int ops in
  let value = make_value 64 in
  let montage_run mirror () =
    let cfg =
      { Cfg.default with max_threads = 1; auto_advance = false; payload_mirror = mirror }
    in
    let r = Systems.region ~capacity:(1 lsl 26) ~threads:1 in
    let esys = E.create ~config:cfg r in
    let m = Pstructs.Mhashmap.create ~buckets:(1 lsl 10) esys in
    for i = 0 to keys - 1 do
      ignore (Pstructs.Mhashmap.put m ~tid:0 (key_of i) value)
    done;
    E.advance_epoch esys ~tid:0;
    let base_reads = (Nvm.Region.stats r).Nvm.Region.lines_read in
    let base_m = E.mirror_stats esys in
    let t0 = Unix.gettimeofday () in
    for i = 0 to ops - 1 do
      let k = key_of (i * 7 mod keys) in
      if i mod 20 = 19 then ignore (Pstructs.Mhashmap.put m ~tid:0 k value)
      else ignore (Pstructs.Mhashmap.get m ~tid:0 k);
      if i mod 2048 = 2047 then E.advance_epoch esys ~tid:0
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let reads = (Nvm.Region.stats r).Nvm.Region.lines_read - base_reads in
    let ms = E.mirror_stats esys in
    let hits = ms.E.hits - base_m.E.hits and misses = ms.E.misses - base_m.E.misses in
    E.sync esys ~tid:0;
    E.stop_background esys;
    Systems.note_mirror_stats esys r;
    (fops /. dt, reads, hits, misses)
  in
  let soft_run () =
    let r = Systems.region ~capacity:(1 lsl 26) ~threads:1 in
    let pm = Baselines.Pmem.create r in
    let m = Baselines.Soft_map.create ~buckets:(1 lsl 10) pm in
    for i = 0 to keys - 1 do
      ignore (Baselines.Soft_map.put m ~tid:0 (key_of i) value)
    done;
    let base_reads = (Nvm.Region.stats r).Nvm.Region.lines_read in
    let t0 = Unix.gettimeofday () in
    for i = 0 to ops - 1 do
      let k = key_of (i * 7 mod keys) in
      if i mod 20 = 19 then ignore (Baselines.Soft_map.put m ~tid:0 k value)
      else ignore (Baselines.Soft_map.get m ~tid:0 k)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let reads = (Nvm.Region.stats r).Nvm.Region.lines_read - base_reads in
    (fops /. dt, reads, 0, 0)
  in
  let dram_run () =
    let m = Baselines.Transient_map.create ~buckets:(1 lsl 10) Baselines.Transient_map.Dram in
    for i = 0 to keys - 1 do
      ignore (Baselines.Transient_map.put m ~tid:0 (key_of i) value)
    done;
    let t0 = Unix.gettimeofday () in
    for i = 0 to ops - 1 do
      let k = key_of (i * 7 mod keys) in
      if i mod 20 = 19 then ignore (Baselines.Transient_map.put m ~tid:0 k value)
      else ignore (Baselines.Transient_map.get m ~tid:0 k)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (fops /. dt, -1, 0, 0)
  in
  let safe name f =
    try Some (f ())
    with e ->
      Printf.eprintf "[bench] readpath %s failed: %s\n%!" name (Printexc.to_string e);
      None
  in
  let on = safe "montage mirror=on" (montage_run true) in
  let off = safe "montage mirror=off" (montage_run false) in
  let soft = safe "soft" soft_run in
  let dram = safe "dram" dram_run in
  let row name = function
    | None -> (name, [ nan; nan; nan ])
    | Some (opsps, reads, hits, misses) ->
        let media = if reads < 0 then nan else float_of_int reads /. fops in
        let rate =
          if hits + misses = 0 then nan
          else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
        in
        (name, [ opsps; media; rate ])
  in
  Benchlib.Report.table
    ~columns:[ "ops/s"; "media-lines/op"; "hit %" ]
    ~rows:
      [
        row "Montage (mirror)" on;
        row "Montage (no mirror)" off;
        row "SOFT" soft;
        row "DRAM (T)" dram;
      ]
    ~unit_label:"read-mostly" ();
  (match on with
  | Some (_, _, hits, misses) ->
      Benchlib.Report.check ~figure:"readpath" ~claim:"mirrors serve >=90% of payload reads from DRAM"
        (hits + misses > 0 && float_of_int hits >= 0.9 *. float_of_int (hits + misses))
  | None -> Benchlib.Report.check ~figure:"readpath" ~claim:"mirror run completed" false);
  match (on, off) with
  | Some (_, reads_on, _, _), Some (_, reads_off, _, _) ->
      Benchlib.Report.check ~figure:"readpath"
        ~claim:"charged media read lines drop >=10x with mirrors on"
        (reads_off >= 10 * max 1 reads_on)
  | _ -> Benchlib.Report.check ~figure:"readpath" ~claim:"both Montage runs completed" false

(* ---- Cluster: consistent-hashing router over shard processes ---- *)

(* The cluster subsystem end to end, over real processes: N shard
   children (fresh execs of the montage CLI, each an unmodified
   netserve over its own region and epoch clock) behind the in-process
   consistent-hashing router.  Two panels: closed-loop throughput at
   the router vs shard count — cross-process scaling of the whole
   stack — and an availability timeline around a shard kill: one probe
   per shard per tick through the router, the victim SIGTERMed mid-run
   and supervised back.  Survivors must answer every tick, and the
   victim's keyspace must serve its preloaded value again — i.e. the
   restarted process recovered the heap image — after the rejoin.
   Skipped when the CLI binary is not next to this bench executable
   (e.g. a partial build). *)

let cluster_exe () =
  let root = Filename.dirname (Filename.dirname Sys.executable_name) in
  let exe = Filename.concat (Filename.concat root "bin") "montage_cli.exe" in
  if Sys.file_exists exe then Some exe else None

let cluster_free_port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, 0));
  let port = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> -1 in
  Unix.close fd;
  port

let cluster_shard_argv ~exe ~port ~heap_file =
  [|
    exe; "shard"; "montage";
    "--host"; "127.0.0.1";
    "--port"; string_of_int port;
    "--workers"; "2";
    "--capacity-mib"; "64";
    "--heap-file"; heap_file;
    "--poller"; "auto";
    "--drain-timeout"; "0.5";
  |]

(* Spawn [shards] children and a router, wait for ring convergence
   (ticking the supervisor so a child that dies on startup is
   respawned), run [f], tear everything down. *)
let with_cluster ~exe ~shards ~heap_dir f =
  let ports = Array.init shards (fun _ -> cluster_free_port ()) in
  let sup = Cluster.Supervisor.create () in
  let children =
    Array.init shards (fun i ->
        let heap_file =
          if heap_dir = "" then ""
          else Filename.concat heap_dir (Printf.sprintf "shard-%d.heap" i)
        in
        Cluster.Supervisor.add sup
          ~name:(Printf.sprintf "shard-%d" i)
          ~argv:(cluster_shard_argv ~exe ~port:ports.(i) ~heap_file))
  in
  let addrs =
    List.init shards (fun i ->
        { Cluster.Router.sid = i; shost = "127.0.0.1"; sport = ports.(i) })
  in
  let rconfig =
    { Cluster.Router.default_config with port = 0; tick_s = 0.01; probe_interval_s = 0.05 }
  in
  let r = Cluster.Router.start ~config:rconfig addrs in
  let tick_sup () = ignore (Cluster.Supervisor.tick sup) in
  let deadline = Netserve.Poller.mono_s () +. 30.0 in
  let rec converge () =
    tick_sup ();
    if Cluster.Router.wait_up r ~timeout_s:0.25 then true
    else if Netserve.Poller.mono_s () > deadline then false
    else converge ()
  in
  let up = converge () in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Router.stop r;
      Cluster.Supervisor.shutdown sup)
    (fun () ->
      f ~up ~router:r ~tick_sup ~children ~vnodes:rconfig.Cluster.Router.vnodes)

let cluster_throughput_point ~exe ~shards =
  with_cluster ~exe ~shards ~heap_dir:"" (fun ~up ~router ~tick_sup:_ ~children:_ ~vnodes:_ ->
      if not up then None
      else begin
        let lg =
          {
            Netserve.Loadgen.default_config with
            port = Cluster.Router.port router;
            conns = max 8 (4 * shards);
            domains = 2;
            duration_s = Env.duration_s;
            pipeline = 8;
            value_size = 64;
            keyspace = 2000;
            get_frac = 0.9;
            key_prefix = "cl";
          }
        in
        Netserve.Loadgen.preload ~config:lg ();
        Some (Netserve.Loadgen.run ~config:lg ())
      end)

type cluster_avail = {
  ca_timeline : bool array array;  (* [shard].(tick): probe served the value *)
  ca_stats : Cluster.Router.stats;
  ca_restarted : bool;
  ca_victim : int;
}

let cluster_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let cluster_availability ~exe =
  let shards = 3 and victim = 1 in
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench-cluster-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir tmp 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      for i = 0 to shards - 1 do
        try Sys.remove (Filename.concat tmp (Printf.sprintf "shard-%d.heap" i))
        with Sys_error _ -> ()
      done;
      try Unix.rmdir tmp with Unix.Unix_error _ -> ())
    (fun () ->
      with_cluster ~exe ~shards ~heap_dir:tmp
        (fun ~up ~router ~tick_sup ~children ~vnodes ->
          if not up then None
          else begin
            let rport = Cluster.Router.port router in
            let ring = Cluster.Ring.create ~vnodes (List.init shards Fun.id) in
            (* one probe key per shard *)
            let probe_key sid =
              let rec go i =
                let k = Printf.sprintf "avail-%d" i in
                if Cluster.Ring.lookup ring k = sid then k else go (i + 1)
              in
              go 0
            in
            let keys = Array.init shards probe_key in
            let fd = Unix.socket PF_INET SOCK_STREAM 0 in
            Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, rport));
            Unix.setsockopt_float fd SO_RCVTIMEO 10.0;
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let send s = ignore (Unix.write_substring fd s 0 (String.length s)) in
                (* a get reply ends with END; a down shard's keyspace
                   answers a single SERVER_ERROR line *)
                let recv_until fin =
                  let acc = Buffer.create 256 and chunk = Bytes.create 4096 in
                  (try
                     while not (fin (Buffer.contents acc)) do
                       let k = Unix.read fd chunk 0 (Bytes.length chunk) in
                       if k = 0 then raise Exit;
                       Buffer.add_subbytes acc chunk 0 k
                     done
                   with
                  | Exit
                  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                  -> ());
                  Buffer.contents acc
                in
                Array.iter
                  (fun k ->
                    let v = "durable-" ^ k in
                    send (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" k (String.length v) v);
                    ignore (recv_until (fun s -> cluster_contains s "\r\n")))
                  keys;
                let probe sid =
                  send (Printf.sprintf "get %s\r\n" keys.(sid));
                  let rep =
                    recv_until (fun s ->
                        cluster_contains s "END\r\n" || cluster_contains s "SERVER_ERROR")
                  in
                  cluster_contains rep ("durable-" ^ keys.(sid))
                  && cluster_contains rep "END\r\n"
                in
                let ticks = Array.init shards (fun _ -> ref []) in
                let tick_all () =
                  for sid = 0 to shards - 1 do
                    ticks.(sid) := probe sid :: !(ticks.(sid))
                  done
                in
                let sleep_tick () =
                  try
                    Unix.sleepf 0.03
                    [@montage.allow
                      "R5: bench driver pacing availability probes over the \
                       kill window; client tooling, not server code"]
                  with Unix.Unix_error (Unix.EINTR, _, _) -> ()
                in
                for _ = 1 to 10 do
                  tick_all ();
                  tick_sup ();
                  sleep_tick ()
                done;
                Cluster.Supervisor.signal children.(victim);
                (* the victim keeps serving through its shutdown drain,
                   so first probe until it actually goes dark, then
                   until the restarted process serves its recovered
                   value again; both waits bounded *)
                let last_victim () =
                  match !(ticks.(victim)) with ok :: _ -> ok | [] -> true
                in
                let deadline = Netserve.Poller.mono_s () +. 30.0 in
                while last_victim () && Netserve.Poller.mono_s () < deadline do
                  tick_all ();
                  tick_sup ();
                  sleep_tick ()
                done;
                while (not (last_victim ())) && Netserve.Poller.mono_s () < deadline do
                  tick_all ();
                  tick_sup ();
                  sleep_tick ()
                done;
                for _ = 1 to 5 do
                  tick_all ();
                  tick_sup ();
                  sleep_tick ()
                done;
                Some
                  {
                    ca_timeline =
                      Array.map (fun l -> Array.of_list (List.rev !l)) ticks;
                    ca_stats = Cluster.Router.stats router;
                    ca_restarted = Cluster.Supervisor.restarts children.(victim) >= 1;
                    ca_victim = victim;
                  })
          end))

(* Resample a tick row to at most 60 columns: '#' = every probe in the
   bucket served, '.' = at least one answered shard-down. *)
let cluster_render_row row =
  let n = Array.length row in
  if n = 0 then ""
  else begin
    let cols = min n 60 in
    String.init cols (fun c ->
        let lo = c * n / cols in
        let hi = max (lo + 1) ((c + 1) * n / cols) in
        let all_up = ref true in
        for i = lo to hi - 1 do
          if not row.(i) then all_up := false
        done;
        if !all_up then '#' else '.')
  end

let cluster () =
  Benchlib.Report.heading
    "Cluster: consistent-hashing router over independent shard processes";
  match cluster_exe () with
  | None ->
      Printf.printf "  (montage_cli.exe not found next to the bench binary; skipping)\n%!"
  | Some exe -> (
      let counts = [ 1; 2; 4 ] in
      let safe n =
        try cluster_throughput_point ~exe ~shards:n
        with e ->
          Printf.eprintf "[bench] cluster %d shard(s) failed: %s\n%!" n (Printexc.to_string e);
          None
      in
      let pts = List.map (fun n -> (n, safe n)) counts in
      let tput = function None -> nan | Some r -> r.Netserve.Loadgen.ops_per_sec in
      Benchlib.Report.table
        ~columns:(List.map (fun n -> Printf.sprintf "%dsh" n) counts)
        ~rows:[ ("Montage cluster", List.map (fun (_, p) -> tput p) pts) ]
        ~unit_label:"ops/s at the router, closed loop (90% get, 64 B)" ();
      Benchlib.Report.check ~figure:"cluster"
        ~claim:"the router sustains error-free closed-loop throughput at every shard count"
        (List.for_all
           (fun (_, p) ->
             match p with
             | Some r -> r.Netserve.Loadgen.ops > 0 && r.Netserve.Loadgen.errors = 0
             | None -> false)
           pts);
      match
        (try cluster_availability ~exe
         with e ->
           Printf.eprintf "[bench] cluster availability failed: %s\n%!" (Printexc.to_string e);
           None)
      with
      | None ->
          Benchlib.Report.check ~figure:"cluster" ~claim:"availability scenario completed" false
      | Some a ->
          Printf.printf "  availability around a SIGTERM of shard %d ('#' up, '.' down):\n" a.ca_victim;
          Array.iteri
            (fun sid row ->
              Printf.printf "    shard %d %s %s\n" sid
                (if sid = a.ca_victim then "[victim]" else "        ")
                (cluster_render_row row))
            a.ca_timeline;
          Printf.printf "    router: %d request(s), %d shard-down error(s), %d down(s), %d rejoin(s)\n%!"
            a.ca_stats.Cluster.Router.requests a.ca_stats.Cluster.Router.shard_down_errors
            a.ca_stats.Cluster.Router.downs a.ca_stats.Cluster.Router.rejoins;
          let survivors_clean = ref true in
          Array.iteri
            (fun sid row ->
              if sid <> a.ca_victim then
                Array.iter (fun ok -> if not ok then survivors_clean := false) row)
            a.ca_timeline;
          Benchlib.Report.check ~figure:"cluster"
            ~claim:"survivor shards answer every probe through the kill window" !survivors_clean;
          let vrow = a.ca_timeline.(a.ca_victim) in
          let went_down = Array.exists not vrow in
          let back_up = Array.length vrow > 0 && vrow.(Array.length vrow - 1) in
          Benchlib.Report.check ~figure:"cluster"
            ~claim:"the victim goes down, is restarted, and serves its recovered value"
            (went_down && back_up && a.ca_restarted);
          Benchlib.Report.check ~figure:"cluster"
            ~claim:"the router observed the down and the rejoin"
            (a.ca_stats.Cluster.Router.downs >= 1
            && a.ca_stats.Cluster.Router.rejoins >= 4))
