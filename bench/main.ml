(* Benchmark entry point: regenerates every table and figure from the
   paper's evaluation.  See bench/env.ml for scaling knobs; run a
   single figure with e.g. BENCH_ONLY=fig7a dune exec bench/main.exe. *)

let () =
  Printf.printf "Montage benchmark suite — %s scale\n" (if Env.full then "paper" else "scaled");
  Printf.printf
    "duration/point=%.1fs threads=[%s] preload=%d value=%dB (override via BENCH_* env vars)\n%!"
    Env.duration_s
    (String.concat "; " (List.map string_of_int Env.threads))
    Env.preload Env.value_size;
  let figures =
    [
      ("fig4", Figures.fig4);
      ("fig5", Figures.fig5);
      ("fig6", Figures.fig6);
      ("fig7a", Figures.fig7a);
      ("fig7b", Figures.fig7b);
      ("fig8a", Figures.fig8a);
      ("fig8b", Figures.fig8b);
      ("fig9", Figures.fig9);
      ("fig10", Figures.fig10);
      ("snapshot", Figures.snapshot_scan);
      ("fig11", Figures.fig11);
      ("fig12", Figures.fig12);
      ("recovery", Figures.recovery_table);
      ("ablation", Figures.ablations);
      ("coalesce", Figures.coalesce);
      ("readpath", Figures.readpath);
      ("netserve", Figures.netserve);
      ("c10k", Figures.c10k);
      ("cluster", Figures.cluster);
      ("bechamel", Bechamel_suite.run);
    ]
  in
  List.iter
    (fun (name, f) ->
      if Env.selected name then begin
        f ();
        (* stop any background domain a failed point left behind *)
        Systems.stop_leaked ()
      end)
    figures;
  Systems.report_coalescing ();
  Systems.report_mirror ();
  Systems.report_netserve ();
  Systems.report_pcheck ();
  Benchlib.Report.summary ()
