examples/social_graph.ml: Array List Montage Nvm Printf Pstructs String
