examples/persistent_kv.ml: Kvstore Montage Nvm Option Printf Pstructs Unix
