examples/social_graph.mli:
