examples/wire_session.ml: Kvstore List Montage Nvm Printf Pstructs String
