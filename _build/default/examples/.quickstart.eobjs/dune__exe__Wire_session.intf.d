examples/wire_session.mli:
