examples/quickstart.mli:
