examples/crash_torture.ml: Array Hashtbl List Montage Nvm Printf Pstructs Sys Util
