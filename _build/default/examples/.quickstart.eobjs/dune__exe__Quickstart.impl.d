examples/quickstart.ml: Array List Montage Nvm Printf Pstructs
