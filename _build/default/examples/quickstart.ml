(* Quickstart: the Montage API in five minutes.

       dune exec examples/quickstart.exe

   Creates a simulated persistent-memory region, builds a Montage
   hashmap on it, writes some data, crashes the machine, and recovers —
   demonstrating the buffered-durability contract: everything synced
   survives; work newer than two epochs is rolled back as a unit. *)

module E = Montage.Epoch_sys

let () =
  (* 1. A 64 MB simulated NVM region.  On real hardware this would be a
     DAX-mapped file; here it is a crash-faithful in-memory model. *)
  let region = Nvm.Region.create ~capacity:(64 * 1024 * 1024) ()

  (* 2. The epoch system: Montage's runtime.  The default configuration
     advances the epoch clock every 10 ms on a background domain. *)
  in
  let esys = E.create region in

  (* 3. A persistent hashmap.  Only the key/value payloads live in NVM;
     the bucket array and chains are ordinary OCaml data. *)
  let map = Pstructs.Mhashmap.create esys in

  Printf.printf "inserting three users...\n";
  ignore (Pstructs.Mhashmap.put map ~tid:0 "alice" "montage");
  ignore (Pstructs.Mhashmap.put map ~tid:0 "bob" "ralloc");
  ignore (Pstructs.Mhashmap.put map ~tid:0 "carol" "epochs");

  (* 4. sync = fsync: wait until everything above is crash-proof. *)
  E.sync esys ~tid:0;
  Printf.printf "synced: alice, bob, carol are now durable\n";

  (* 5. More work that we will NOT sync... *)
  ignore (Pstructs.Mhashmap.put map ~tid:0 "dave" "too-late");
  ignore (Pstructs.Mhashmap.remove map ~tid:0 "alice");
  Printf.printf "unsynced: inserted dave, removed alice\n";

  (* 6. Power failure. *)
  E.stop_background esys;
  Nvm.Region.crash region;
  Printf.printf "\n*** CRASH ***\n\n";

  (* 7. Recovery: Montage hands back the surviving payloads; the map
     rebuilds its transient index from them. *)
  let esys2, payloads = E.recover region in
  let map2 = Pstructs.Mhashmap.recover esys2 payloads in
  Printf.printf "recovered %d payloads\n" (Array.length payloads);
  List.iter
    (fun key ->
      match Pstructs.Mhashmap.get map2 ~tid:0 key with
      | Some v -> Printf.printf "  %-6s -> %s\n" key v
      | None -> Printf.printf "  %-6s -> (not present)\n" key)
    [ "alice"; "bob"; "carol"; "dave" ];
  Printf.printf
    "\nalice survived (her removal never persisted); dave is gone (his\n\
     insert never persisted): the recovered state is a consistent prefix.\n";
  E.stop_background esys2
