(* A persistent social graph (the paper's §6.3 generality demo).

       dune exec examples/social_graph.exe

   Vertices are users, edges are friendships with attributes.  Only the
   semantic payloads (user profiles, friendship records) live in NVM —
   the adjacency index is transient OCaml data, rebuilt in parallel on
   recovery.  The example runs a follower-recommendation query before
   and after a crash to show the structure is fully functional, not
   just a bag of bytes. *)

module E = Montage.Epoch_sys
module G = Pstructs.Mgraph

let users =
  [|
    "ada"; "turing"; "hopper"; "dijkstra"; "knuth"; "lamport"; "liskov"; "ritchie"; "backus";
    "mccarthy";
  |]

(* friends-of-friends who are not already friends *)
let recommendations g id =
  let direct = G.neighbors g id in
  List.concat_map (G.neighbors g) direct
  |> List.filter (fun peer -> peer <> id && not (List.mem peer direct))
  |> List.sort_uniq compare

let print_recs g who =
  let id = ref (-1) in
  Array.iteri (fun i name -> if name = who then id := i) users;
  let recs = recommendations g !id in
  Printf.printf "  %s might know: %s\n" who
    (if recs = [] then "(nobody)" else String.concat ", " (List.map (fun i -> users.(i)) recs))

let () =
  let region = Nvm.Region.create ~capacity:(32 * 1024 * 1024) () in
  let esys = E.create region in
  let g = G.create ~capacity:64 esys in

  Array.iteri
    (fun id name -> ignore (G.add_vertex g ~tid:0 id (Printf.sprintf "{name:%S}" name)))
    users;
  let friend a b = ignore (G.add_edge g ~tid:0 a b "friends-since:2021") in
  friend 0 1;
  friend 0 2;
  friend 1 3;
  friend 2 3;
  friend 3 4;
  friend 4 5;
  friend 5 6;
  friend 6 7;
  friend 2 8;
  friend 8 9;
  Printf.printf "built a social graph: %d users, %d friendships\n" (G.vertex_count g)
    (G.edge_count g);
  print_recs g "ada";
  print_recs g "dijkstra";

  E.sync esys ~tid:0;

  (* post-sync churn that will be rolled back *)
  ignore (G.remove_vertex g ~tid:0 3);
  ignore (G.add_edge g ~tid:0 0 9 "never-synced");
  Printf.printf "\nunsynced: dijkstra deleted, ada-mccarthy added\n";
  E.stop_background esys;
  Nvm.Region.crash region;
  Printf.printf "*** CRASH ***\n\n";

  let esys2, payloads = E.recover region in
  let g2 = G.recover ~capacity:64 ~threads:2 esys2 payloads in
  Printf.printf "recovered (2 parallel threads): %d users, %d friendships\n"
    (G.vertex_count g2) (G.edge_count g2);
  Printf.printf "  dijkstra back? %b; ada-mccarthy edge? %b\n" (G.has_vertex g2 3)
    (G.has_edge g2 0 9);
  print_recs g2 "ada";
  print_recs g2 "dijkstra";
  E.stop_background esys2
