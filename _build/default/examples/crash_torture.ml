(* Crash-torture: hammer a Montage map with random operations and
   adversarial crashes, verifying buffered durable linearizability
   after every recovery.

       dune exec examples/crash_torture.exe -- [rounds]

   Each round runs a random batch of put/remove/update against both the
   Montage map and a pure-OCaml model, snapshotting the model at every
   epoch boundary; then the machine crashes with randomized write-back
   completion (lines flushed-but-unfenced may or may not persist, dirty
   lines may be spontaneously evicted).  The recovered map must equal
   the model snapshot from two epochs before the crash — the paper's
   §4.2 guarantee — and then the torture continues on the *recovered*
   map, so corruption cannot hide across generations. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let cfg = { Cfg.testing with max_threads = 2 }

let key_of i = Printf.sprintf "key%03d" i

let () =
  let rounds = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 30 in
  let rng = Util.Xoshiro.create 0xFEED in
  let region = Nvm.Region.create ~capacity:(32 * 1024 * 1024) () in
  let esys = ref (E.create ~config:cfg region) in
  let map = ref (Pstructs.Mhashmap.create ~buckets:64 !esys) in
  (* model + per-epoch snapshots *)
  let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let snapshots : (int, (string * string) list) Hashtbl.t = Hashtbl.create 64 in
  let snapshot () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare
  in
  (* snapshots.(k) = abstract state at the END of epoch k; recorded at
     each tick, keyed by the epoch that just ended *)
  let record ~ended = Hashtbl.replace snapshots ended (snapshot ()) in
  record ~ended:(E.current_epoch !esys - 1);
  let total_ops = ref 0 in
  for round = 1 to rounds do
    (* a random batch with interleaved epoch ticks *)
    let batch = 20 + Util.Xoshiro.int rng 100 in
    for _ = 1 to batch do
      incr total_ops;
      let k = key_of (Util.Xoshiro.int rng 200) in
      (match Util.Xoshiro.int rng 3 with
      | 0 ->
          let v = Printf.sprintf "v%d" !total_ops in
          ignore (Pstructs.Mhashmap.put !map ~tid:0 k v);
          Hashtbl.replace model k v
      | 1 ->
          ignore (Pstructs.Mhashmap.remove !map ~tid:0 k);
          Hashtbl.remove model k
      | _ ->
          (match Pstructs.Mhashmap.get !map ~tid:0 k with
          | Some v -> assert (Hashtbl.find_opt model k = Some v)
          | None -> assert (Hashtbl.find_opt model k = None)));
      if Util.Xoshiro.int rng 20 = 0 then begin
        let ended = E.current_epoch !esys in
        E.advance_epoch !esys ~tid:1;
        record ~ended
      end
    done;
    (* adversarial crash: randomized completion of in-flight write-backs *)
    let crash_epoch = E.current_epoch !esys in
    Nvm.Region.crash ~persist_unfenced:(Util.Xoshiro.float rng) ~evict_dirty:(Util.Xoshiro.float rng)
      ~rng region;
    let esys2, payloads = E.recover ~config:cfg region in
    let map2 = Pstructs.Mhashmap.recover ~buckets:64 esys2 payloads in
    (* expected state: newest snapshot at epoch <= crash_epoch - 2 *)
    let expected = ref [] in
    for e = 1 to crash_epoch - 2 do
      match Hashtbl.find_opt snapshots e with Some s -> expected := s | None -> ()
    done;
    let recovered = List.sort compare (Pstructs.Mhashmap.to_alist map2 ~tid:0) in
    if recovered <> !expected then begin
      Printf.printf "ROUND %d: MISMATCH! recovered %d pairs, expected %d\n" round
        (List.length recovered) (List.length !expected);
      exit 1
    end;
    (* resume on the recovered state *)
    esys := esys2;
    map := map2;
    Hashtbl.reset model;
    List.iter (fun (k, v) -> Hashtbl.replace model k v) recovered;
    Hashtbl.reset snapshots;
    record ~ended:(E.current_epoch !esys - 1);
    Printf.printf "round %2d ok: crash@epoch %d, %d pairs recovered consistently\n%!" round
      crash_epoch (List.length recovered)
  done;
  Printf.printf "\n%d rounds, %d operations, every recovery was a consistent prefix.\n" rounds
    !total_ops
