(* A memcached wire-protocol session against the persistent store,
   crash included.

       dune exec examples/wire_session.exe

   Prints the client/server dialogue: a client speaks the memcached
   text protocol to a Montage-backed store, the machine dies, and the
   reconnected client finds every acknowledged key — byte-for-byte the
   same protocol replies a real memcached would give. *)

module E = Montage.Epoch_sys
module Store = Kvstore.Store
module P = Kvstore.Protocol

let show_dialogue conn lines =
  List.iter
    (fun line ->
      Printf.printf "C: %s\n" (String.trim line);
      List.iter
        (fun reply ->
          String.split_on_char '\n' (String.trim reply)
          |> List.iter (fun l -> Printf.printf "S: %s\n" (String.trim l)))
        (P.feed conn line))
    lines

let () =
  let region = Nvm.Region.create ~capacity:(64 * 1024 * 1024) () in
  let esys = E.create region in
  let map = Pstructs.Mhashmap.create esys in
  let store = Store.create (Store.of_mhashmap map) in
  let conn = P.create store ~tid:0 in

  print_endline "--- session 1 ---";
  show_dialogue conn
    [
      "set motd 0 0 26\r\nmontage: buffered, durable\r\n";
      "set counter 0 0 1\r\n0\r\n";
      "incr counter 7\r\n";
      "get motd\r\n";
    ];

  (* the server acknowledges durability (e.g. before replying to a
     client that asked for it): sync, then crash *)
  E.sync esys ~tid:0;
  show_dialogue conn [ "set ephemeral 0 0 9\r\ntoo-late!\r\n" ];
  E.stop_background esys;
  Nvm.Region.crash region;
  print_endline "\n--- power failure; server restarts ---\n";

  let esys2, payloads = E.recover region in
  let map2 = Pstructs.Mhashmap.recover esys2 payloads in
  let store2 = Store.create (Store.of_mhashmap map2) in
  let conn2 = P.create store2 ~tid:0 in
  print_endline "--- session 2 ---";
  show_dialogue conn2
    [ "get motd\r\n"; "incr counter 0\r\n"; "get ephemeral\r\n"; "stats\r\n" ];
  E.stop_background esys2
