(* Tests for the baseline systems: functional behaviour, persistence
   cost profiles, and (where implemented) recovery. *)

let make_region ?(capacity = 1 lsl 24) () =
  Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity ()

let make_pm ?capacity () =
  let region = make_region ?capacity () in
  (region, Baselines.Pmem.create region)

(* Carve the superblock for [size]'s class up front, so fence-counting
   tests don't see the one-time header persist. *)
let prewarm pm size =
  let off = Baselines.Pmem.alloc pm ~tid:0 ~size in
  Baselines.Pmem.free pm ~tid:0 off

(* ---- transient baselines ---- *)

let test_transient_map_dram () =
  let m = Baselines.Transient_map.create ~buckets:16 Baselines.Transient_map.Dram in
  Alcotest.(check (option string)) "put" None (Baselines.Transient_map.put m ~tid:0 "a" "1");
  Alcotest.(check (option string)) "get" (Some "1") (Baselines.Transient_map.get m ~tid:0 "a");
  Alcotest.(check (option string)) "update" (Some "1") (Baselines.Transient_map.put m ~tid:0 "a" "2");
  Alcotest.(check (option string)) "remove" (Some "2") (Baselines.Transient_map.remove m ~tid:0 "a");
  Alcotest.(check int) "size" 0 (Baselines.Transient_map.size m)

let test_transient_map_nvm_no_persistence_ops () =
  let region, pm = make_pm () in
  let m = Baselines.Transient_map.create ~buckets:16 (Baselines.Transient_map.Nvm pm) in
  prewarm pm 16;
  let s0 = Nvm.Region.stats region in
  ignore (Baselines.Transient_map.put m ~tid:0 "key" "value");
  Alcotest.(check (option string)) "roundtrip through NVM" (Some "value")
    (Baselines.Transient_map.get m ~tid:0 "key");
  ignore (Baselines.Transient_map.remove m ~tid:0 "key");
  let s1 = Nvm.Region.stats region in
  (* NVM (T) never flushes or fences on the data path *)
  Alcotest.(check int) "no fences" s0.Nvm.Region.fences s1.Nvm.Region.fences

let test_transient_queue () =
  let _, pm = make_pm () in
  List.iter
    (fun placement ->
      let q = Baselines.Transient_queue.create placement in
      Baselines.Transient_queue.enqueue q ~tid:0 "x";
      Baselines.Transient_queue.enqueue q ~tid:0 "y";
      Alcotest.(check (option string)) "fifo x" (Some "x") (Baselines.Transient_queue.dequeue q ~tid:0);
      Alcotest.(check (option string)) "fifo y" (Some "y") (Baselines.Transient_queue.dequeue q ~tid:0);
      Alcotest.(check (option string)) "empty" None (Baselines.Transient_queue.dequeue q ~tid:0))
    [ Baselines.Transient_queue.Dram; Baselines.Transient_queue.Nvm pm ]

(* ---- Friedman queue ---- *)

let test_friedman_fifo () =
  let _, pm = make_pm () in
  let q = Baselines.Friedman_queue.create pm in
  for i = 1 to 5 do
    Baselines.Friedman_queue.enqueue q ~tid:0 (string_of_int i)
  done;
  let order = List.init 5 (fun _ -> Option.get (Baselines.Friedman_queue.dequeue q ~tid:0)) in
  Alcotest.(check (list string)) "FIFO" [ "1"; "2"; "3"; "4"; "5" ] order;
  Alcotest.(check (option string)) "empty" None (Baselines.Friedman_queue.dequeue q ~tid:0)

let test_friedman_persists_every_op () =
  let region, pm = make_pm () in
  let q = Baselines.Friedman_queue.create pm in
  let s0 = Nvm.Region.stats region in
  Baselines.Friedman_queue.enqueue q ~tid:0 "durable";
  let s1 = Nvm.Region.stats region in
  (* strict durability: at least node persist + link persist *)
  Alcotest.(check bool) "enqueue fences" true (s1.Nvm.Region.fences - s0.Nvm.Region.fences >= 2);
  ignore (Baselines.Friedman_queue.dequeue q ~tid:0);
  let s2 = Nvm.Region.stats region in
  Alcotest.(check bool) "dequeue fences" true (s2.Nvm.Region.fences - s1.Nvm.Region.fences >= 1)

let test_friedman_crash_recovery () =
  let region, pm = make_pm () in
  let q = Baselines.Friedman_queue.create pm in
  for i = 1 to 6 do
    Baselines.Friedman_queue.enqueue q ~tid:0 (Printf.sprintf "v%d" i)
  done;
  ignore (Baselines.Friedman_queue.dequeue q ~tid:0);
  ignore (Baselines.Friedman_queue.dequeue q ~tid:0);
  Nvm.Region.crash region;
  let pm2 = Baselines.Pmem.create region in
  let q2 = Baselines.Friedman_queue.recover pm2 in
  let order = List.init 4 (fun _ -> Option.get (Baselines.Friedman_queue.dequeue q2 ~tid:0)) in
  Alcotest.(check (list string)) "survivors in order" [ "v3"; "v4"; "v5"; "v6" ] order

let test_friedman_concurrent () =
  let _, pm = make_pm () in
  let q = Baselines.Friedman_queue.create pm in
  let per = 200 in
  let producers =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Baselines.Friedman_queue.enqueue q ~tid (Printf.sprintf "%d-%d" tid i)
            done))
  in
  Array.iter Domain.join producers;
  let n = ref 0 in
  while Baselines.Friedman_queue.dequeue q ~tid:2 <> None do
    incr n
  done;
  Alcotest.(check int) "all delivered" (2 * per) !n

(* ---- Dalí ---- *)

let test_dali_basic () =
  let _, pm = make_pm () in
  let m = Baselines.Dali_map.create ~buckets:64 pm in
  Alcotest.(check (option string)) "put" None (Baselines.Dali_map.put m ~tid:0 "a" "1");
  Alcotest.(check (option string)) "get" (Some "1") (Baselines.Dali_map.get m ~tid:0 "a");
  Alcotest.(check (option string)) "same-size update" (Some "1") (Baselines.Dali_map.put m ~tid:0 "a" "2");
  Alcotest.(check (option string)) "longer update" (Some "2")
    (Baselines.Dali_map.put m ~tid:0 "a" "longer-value");
  Alcotest.(check (option string)) "read it" (Some "longer-value") (Baselines.Dali_map.get m ~tid:0 "a");
  Alcotest.(check (option string)) "remove" (Some "longer-value") (Baselines.Dali_map.remove m ~tid:0 "a");
  Alcotest.(check (option string)) "gone" None (Baselines.Dali_map.get m ~tid:0 "a")

let test_dali_buffered_no_fence_per_op () =
  let region, pm = make_pm () in
  let m = Baselines.Dali_map.create ~buckets:64 pm in
  prewarm pm 32;
  let s0 = Nvm.Region.stats region in
  for i = 0 to 49 do
    ignore (Baselines.Dali_map.put m ~tid:0 (string_of_int i) "v")
  done;
  let s1 = Nvm.Region.stats region in
  Alcotest.(check int) "no per-op fences" s0.Nvm.Region.fences s1.Nvm.Region.fences;
  Baselines.Dali_map.persist_all m ~tid:0;
  let s2 = Nvm.Region.stats region in
  Alcotest.(check bool) "periodic persist fences once" true (s2.Nvm.Region.fences = s1.Nvm.Region.fences + 1);
  Alcotest.(check bool) "and wrote the dirty data back" true
    (s2.Nvm.Region.writebacks - s1.Nvm.Region.writebacks >= 50)

let test_dali_many_keys () =
  let _, pm = make_pm () in
  let m = Baselines.Dali_map.create ~buckets:16 pm in
  for i = 0 to 199 do
    ignore (Baselines.Dali_map.put m ~tid:0 (Printf.sprintf "key%d" i) (Printf.sprintf "val%d" i))
  done;
  Alcotest.(check int) "size" 200 (Baselines.Dali_map.size m);
  let ok = ref true in
  for i = 0 to 199 do
    if Baselines.Dali_map.get m ~tid:0 (Printf.sprintf "key%d" i) <> Some (Printf.sprintf "val%d" i)
    then ok := false
  done;
  Alcotest.(check bool) "all present" true !ok

(* ---- SOFT ---- *)

let test_soft_insert_only_semantics () =
  let _, pm = make_pm () in
  let m = Baselines.Soft_map.create ~buckets:64 pm in
  Alcotest.(check bool) "insert" true (Baselines.Soft_map.put m ~tid:0 "k" "v1");
  Alcotest.(check bool) "no atomic update" false (Baselines.Soft_map.put m ~tid:0 "k" "v2");
  Alcotest.(check (option string)) "original value" (Some "v1") (Baselines.Soft_map.get m ~tid:0 "k");
  Alcotest.(check (option string)) "remove" (Some "v1") (Baselines.Soft_map.remove m ~tid:0 "k");
  Alcotest.(check bool) "reinsert after remove" true (Baselines.Soft_map.put m ~tid:0 "k" "v2")

let test_soft_strict_persistence_per_update () =
  let region, pm = make_pm () in
  let m = Baselines.Soft_map.create ~buckets:64 pm in
  let s0 = Nvm.Region.stats region in
  ignore (Baselines.Soft_map.put m ~tid:0 "k" "v");
  let s1 = Nvm.Region.stats region in
  Alcotest.(check bool) "insert fences" true (s1.Nvm.Region.fences > s0.Nvm.Region.fences);
  let f1 = s1.Nvm.Region.fences in
  ignore (Baselines.Soft_map.get m ~tid:0 "k");
  let s2 = Nvm.Region.stats region in
  Alcotest.(check int) "reads are NVM-free" f1 s2.Nvm.Region.fences

(* ---- NVTraverse ---- *)

let test_nvtraverse_basic () =
  let _, pm = make_pm () in
  let m = Baselines.Nvtraverse_map.create ~buckets:64 pm in
  Alcotest.(check (option string)) "put" None (Baselines.Nvtraverse_map.put m ~tid:0 "a" "1");
  Alcotest.(check (option string)) "get" (Some "1") (Baselines.Nvtraverse_map.get m ~tid:0 "a");
  Alcotest.(check (option string)) "update" (Some "1") (Baselines.Nvtraverse_map.put m ~tid:0 "a" "22");
  Alcotest.(check (option string)) "remove" (Some "22") (Baselines.Nvtraverse_map.remove m ~tid:0 "a")

let test_nvtraverse_reads_fence_too () =
  let region, pm = make_pm () in
  let m = Baselines.Nvtraverse_map.create ~buckets:64 pm in
  ignore (Baselines.Nvtraverse_map.put m ~tid:0 "k" "v");
  let s0 = Nvm.Region.stats region in
  ignore (Baselines.Nvtraverse_map.get m ~tid:0 "k");
  let s1 = Nvm.Region.stats region in
  Alcotest.(check bool) "read pays a fence" true (s1.Nvm.Region.fences > s0.Nvm.Region.fences)

(* ---- MOD ---- *)

let test_mod_queue_fifo () =
  let _, pm = make_pm () in
  let q = Baselines.Mod_structs.Queue.create pm in
  for i = 1 to 6 do
    Baselines.Mod_structs.Queue.enqueue q ~tid:0 (string_of_int i)
  done;
  Alcotest.(check int) "length" 6 (Baselines.Mod_structs.Queue.length q);
  let order = List.init 6 (fun _ -> Option.get (Baselines.Mod_structs.Queue.dequeue q ~tid:0)) in
  Alcotest.(check (list string)) "FIFO through reversal" [ "1"; "2"; "3"; "4"; "5"; "6" ] order;
  Alcotest.(check (option string)) "empty" None (Baselines.Mod_structs.Queue.dequeue q ~tid:0)

let test_mod_queue_interleaved () =
  let _, pm = make_pm () in
  let q = Baselines.Mod_structs.Queue.create pm in
  Baselines.Mod_structs.Queue.enqueue q ~tid:0 "a";
  Baselines.Mod_structs.Queue.enqueue q ~tid:0 "b";
  Alcotest.(check (option string)) "a" (Some "a") (Baselines.Mod_structs.Queue.dequeue q ~tid:0);
  Baselines.Mod_structs.Queue.enqueue q ~tid:0 "c";
  Alcotest.(check (option string)) "b" (Some "b") (Baselines.Mod_structs.Queue.dequeue q ~tid:0);
  Alcotest.(check (option string)) "c" (Some "c") (Baselines.Mod_structs.Queue.dequeue q ~tid:0)

let test_mod_queue_two_fences_per_enqueue () =
  let region, pm = make_pm () in
  let q = Baselines.Mod_structs.Queue.create pm in
  prewarm pm 16;
  let s0 = Nvm.Region.stats region in
  Baselines.Mod_structs.Queue.enqueue q ~tid:0 "x";
  let s1 = Nvm.Region.stats region in
  Alcotest.(check int) "two ordering points" 2 (s1.Nvm.Region.fences - s0.Nvm.Region.fences)

let test_mod_map_basic () =
  let _, pm = make_pm () in
  let m = Baselines.Mod_structs.Map.create ~buckets:16 pm in
  Alcotest.(check (option string)) "put" None (Baselines.Mod_structs.Map.put m ~tid:0 "a" "1");
  Alcotest.(check (option string)) "get" (Some "1") (Baselines.Mod_structs.Map.get m ~tid:0 "a");
  Alcotest.(check (option string)) "update" (Some "1") (Baselines.Mod_structs.Map.put m ~tid:0 "a" "2");
  Alcotest.(check (option string)) "get2" (Some "2") (Baselines.Mod_structs.Map.get m ~tid:0 "a");
  Alcotest.(check (option string)) "remove" (Some "2") (Baselines.Mod_structs.Map.remove m ~tid:0 "a");
  Alcotest.(check (option string)) "gone" None (Baselines.Mod_structs.Map.get m ~tid:0 "a")

let test_mod_map_many () =
  let _, pm = make_pm () in
  let m = Baselines.Mod_structs.Map.create ~buckets:64 pm in
  for i = 0 to 99 do
    ignore (Baselines.Mod_structs.Map.put m ~tid:0 (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i))
  done;
  Alcotest.(check int) "size" 100 (Baselines.Mod_structs.Map.size m);
  ignore (Baselines.Mod_structs.Map.remove m ~tid:0 "k50");
  Alcotest.(check (option string)) "removed" None (Baselines.Mod_structs.Map.get m ~tid:0 "k50");
  Alcotest.(check (option string)) "others intact" (Some "v51") (Baselines.Mod_structs.Map.get m ~tid:0 "k51")

(* ---- Pronto ---- *)

let test_pronto_sync_basic () =
  let region = make_region ~capacity:(1 lsl 26) () in
  let pm = Baselines.Pmem.create region in
  let p = Baselines.Pronto.create ~buckets:64 ~threads:2 ~mode:Baselines.Pronto.Sync pm in
  Alcotest.(check (option string)) "put" None (Baselines.Pronto.put p ~tid:0 "a" "1");
  Alcotest.(check (option string)) "get" (Some "1") (Baselines.Pronto.get p ~tid:0 "a");
  Alcotest.(check (option string)) "update" (Some "1") (Baselines.Pronto.put p ~tid:0 "a" "2");
  Alcotest.(check (option string)) "remove" (Some "2") (Baselines.Pronto.remove p ~tid:0 "a")

let test_pronto_sync_fences_per_op () =
  let region = make_region ~capacity:(1 lsl 26) () in
  let pm = Baselines.Pmem.create region in
  let p = Baselines.Pronto.create ~buckets:64 ~threads:2 ~mode:Baselines.Pronto.Sync pm in
  let s0 = Nvm.Region.stats region in
  ignore (Baselines.Pronto.put p ~tid:0 "k" "v");
  let s1 = Nvm.Region.stats region in
  Alcotest.(check bool) "log persisted synchronously" true (s1.Nvm.Region.fences > s0.Nvm.Region.fences)

let test_pronto_recovery_from_log () =
  let region = make_region ~capacity:(1 lsl 26) () in
  let pm = Baselines.Pmem.create region in
  let p = Baselines.Pronto.create ~buckets:64 ~threads:2 ~mode:Baselines.Pronto.Sync pm in
  for i = 0 to 19 do
    ignore (Baselines.Pronto.put p ~tid:0 (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i))
  done;
  ignore (Baselines.Pronto.remove p ~tid:0 "k5");
  ignore (Baselines.Pronto.put p ~tid:0 "k6" "updated");
  Nvm.Region.crash region;
  let pm2 = Baselines.Pmem.create region in
  let p2 = Baselines.Pronto.recover ~buckets:64 ~threads:2 ~mode:Baselines.Pronto.Sync pm2 in
  Alcotest.(check (option string)) "survives" (Some "v3") (Baselines.Pronto.get p2 ~tid:0 "k3");
  Alcotest.(check (option string)) "remove replayed" None (Baselines.Pronto.get p2 ~tid:0 "k5");
  Alcotest.(check (option string)) "update replayed" (Some "updated") (Baselines.Pronto.get p2 ~tid:0 "k6");
  Alcotest.(check int) "size" 19 (Baselines.Pronto.size p2)

let test_pronto_recovery_with_checkpoint () =
  let region = make_region ~capacity:(1 lsl 26) () in
  let pm = Baselines.Pmem.create region in
  let p = Baselines.Pronto.create ~buckets:64 ~threads:2 ~ckpt_every:10 ~mode:Baselines.Pronto.Sync pm in
  for i = 0 to 24 do
    ignore (Baselines.Pronto.put p ~tid:0 (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i))
  done;
  Nvm.Region.crash region;
  let pm2 = Baselines.Pmem.create region in
  let p2 = Baselines.Pronto.recover ~buckets:64 ~threads:2 ~mode:Baselines.Pronto.Sync pm2 in
  Alcotest.(check int) "checkpoint + log replay complete" 25 (Baselines.Pronto.size p2);
  Alcotest.(check (option string)) "spot check" (Some "v20") (Baselines.Pronto.get p2 ~tid:0 "k20")

let test_pronto_full_mode () =
  let region = make_region ~capacity:(1 lsl 26) () in
  let pm = Baselines.Pmem.create region in
  let p = Baselines.Pronto.create ~buckets:64 ~threads:2 ~mode:Baselines.Pronto.Full pm in
  for i = 0 to 9 do
    ignore (Baselines.Pronto.put p ~tid:0 (string_of_int i) "v")
  done;
  Alcotest.(check int) "all inserted" 10 (Baselines.Pronto.size p)

(* ---- Mnemosyne ---- *)

let test_mnemosyne_stm_basic () =
  let region = make_region ~capacity:(1 lsl 25) () in
  let stm = Baselines.Mnemosyne.create ~words:1024 ~threads:2 region in
  Baselines.Mnemosyne.atomically stm ~tid:0 (fun tx ->
      Baselines.Mnemosyne.tx_write stm tx 0 42;
      Baselines.Mnemosyne.tx_write stm tx 1 43);
  let v =
    Baselines.Mnemosyne.atomically stm ~tid:0 (fun tx ->
        Baselines.Mnemosyne.tx_read stm tx 0 + Baselines.Mnemosyne.tx_read stm tx 1)
  in
  Alcotest.(check int) "transactional read" 85 v

let test_mnemosyne_commit_persists_home () =
  let region = make_region ~capacity:(1 lsl 25) () in
  let stm = Baselines.Mnemosyne.create ~words:1024 ~threads:2 region in
  Baselines.Mnemosyne.atomically stm ~tid:0 (fun tx -> Baselines.Mnemosyne.tx_write stm tx 7 99);
  (* the home location (cell_base + 8*7) must be durable after commit *)
  Nvm.Region.crash region;
  Alcotest.(check int) "word durable in home slot" 99 (Nvm.Region.get_i64 region ~off:(65536 + 56))

let test_mnemosyne_two_fences_per_tx () =
  let region = make_region ~capacity:(1 lsl 25) () in
  let stm = Baselines.Mnemosyne.create ~words:1024 ~threads:2 region in
  let s0 = Nvm.Region.stats region in
  Baselines.Mnemosyne.atomically stm ~tid:0 (fun tx -> Baselines.Mnemosyne.tx_write stm tx 0 1);
  let s1 = Nvm.Region.stats region in
  Alcotest.(check int) "log fence + home fence" 2 (s1.Nvm.Region.fences - s0.Nvm.Region.fences)

let test_mnemosyne_conflict_aborts_and_retries () =
  let region = make_region ~capacity:(1 lsl 25) () in
  let stm = Baselines.Mnemosyne.create ~words:64 ~threads:4 region in
  let domains =
    Array.init 4 (fun tid ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Baselines.Mnemosyne.atomically stm ~tid (fun tx ->
                  let v = Baselines.Mnemosyne.tx_read stm tx 0 in
                  Baselines.Mnemosyne.tx_write stm tx 0 (v + 1))
            done))
  in
  Array.iter Domain.join domains;
  let v = Baselines.Mnemosyne.atomically stm ~tid:0 (fun tx -> Baselines.Mnemosyne.tx_read stm tx 0) in
  Alcotest.(check int) "atomic counter" 2000 v

let test_mnemosyne_map () =
  let region = make_region ~capacity:(1 lsl 25) () in
  let stm = Baselines.Mnemosyne.create ~words:(1 lsl 16) ~threads:2 region in
  let m = Baselines.Mnemosyne.Map.create ~buckets:64 stm in
  Alcotest.(check (option string)) "put" None (Baselines.Mnemosyne.Map.put m ~tid:0 "a" "1");
  Alcotest.(check (option string)) "get" (Some "1") (Baselines.Mnemosyne.Map.get m ~tid:0 "a");
  Alcotest.(check (option string)) "update" (Some "1") (Baselines.Mnemosyne.Map.put m ~tid:0 "a" "2");
  Alcotest.(check (option string)) "remove" (Some "2") (Baselines.Mnemosyne.Map.remove m ~tid:0 "a");
  Alcotest.(check (option string)) "gone" None (Baselines.Mnemosyne.Map.get m ~tid:0 "a");
  for i = 0 to 49 do
    ignore (Baselines.Mnemosyne.Map.put m ~tid:0 (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i))
  done;
  Alcotest.(check int) "bulk size" 50 (Baselines.Mnemosyne.Map.size m);
  Alcotest.(check (option string)) "bulk get" (Some "v31") (Baselines.Mnemosyne.Map.get m ~tid:0 "k31")

let () =
  Alcotest.run "baselines"
    [
      ( "transient",
        [
          Alcotest.test_case "DRAM map" `Quick test_transient_map_dram;
          Alcotest.test_case "NVM map no persistence" `Quick test_transient_map_nvm_no_persistence_ops;
          Alcotest.test_case "queues" `Quick test_transient_queue;
        ] );
      ( "friedman",
        [
          Alcotest.test_case "FIFO" `Quick test_friedman_fifo;
          Alcotest.test_case "persists every op" `Quick test_friedman_persists_every_op;
          Alcotest.test_case "crash recovery" `Quick test_friedman_crash_recovery;
          Alcotest.test_case "concurrent" `Quick test_friedman_concurrent;
        ] );
      ( "dali",
        [
          Alcotest.test_case "basic ops" `Quick test_dali_basic;
          Alcotest.test_case "buffered persistence" `Quick test_dali_buffered_no_fence_per_op;
          Alcotest.test_case "many keys" `Quick test_dali_many_keys;
        ] );
      ( "soft",
        [
          Alcotest.test_case "insert-only semantics" `Quick test_soft_insert_only_semantics;
          Alcotest.test_case "strict persistence" `Quick test_soft_strict_persistence_per_update;
        ] );
      ( "nvtraverse",
        [
          Alcotest.test_case "basic ops" `Quick test_nvtraverse_basic;
          Alcotest.test_case "reads fence" `Quick test_nvtraverse_reads_fence_too;
        ] );
      ( "mod",
        [
          Alcotest.test_case "queue FIFO" `Quick test_mod_queue_fifo;
          Alcotest.test_case "queue interleaved" `Quick test_mod_queue_interleaved;
          Alcotest.test_case "two fences per enqueue" `Quick test_mod_queue_two_fences_per_enqueue;
          Alcotest.test_case "map basic" `Quick test_mod_map_basic;
          Alcotest.test_case "map many" `Quick test_mod_map_many;
        ] );
      ( "pronto",
        [
          Alcotest.test_case "sync basic" `Quick test_pronto_sync_basic;
          Alcotest.test_case "sync fences per op" `Quick test_pronto_sync_fences_per_op;
          Alcotest.test_case "recovery from log" `Quick test_pronto_recovery_from_log;
          Alcotest.test_case "recovery with checkpoint" `Quick test_pronto_recovery_with_checkpoint;
          Alcotest.test_case "full mode" `Quick test_pronto_full_mode;
        ] );
      ( "mnemosyne",
        [
          Alcotest.test_case "stm basic" `Quick test_mnemosyne_stm_basic;
          Alcotest.test_case "commit persists home" `Quick test_mnemosyne_commit_persists_home;
          Alcotest.test_case "two fences per tx" `Quick test_mnemosyne_two_fences_per_tx;
          Alcotest.test_case "conflicts retry" `Quick test_mnemosyne_conflict_aborts_and_retries;
          Alcotest.test_case "map" `Quick test_mnemosyne_map;
        ] );
    ]
