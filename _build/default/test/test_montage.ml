(* Tests for the Montage epoch system: payload lifecycle, the two-epoch
   persistence rule, anti-payloads, sync, recovery, and the
   epoch-verified CAS primitives. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let testing_cfg = { Cfg.testing with max_threads = 4 }

let make ?(capacity = 1 lsl 22) ?(cfg = testing_cfg) () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity () in
  (region, E.create ~config:cfg region)

let bytes_of = Bytes.of_string
let string_of = Bytes.to_string

(* One full op creating a payload. *)
let insert esys v = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (bytes_of v))

(* Crash, recover, and return surviving payload contents sorted. *)
let crash_and_recover region =
  Nvm.Region.crash region;
  let esys, payloads = E.recover ~config:testing_cfg region in
  let contents =
    Array.to_list payloads |> List.map (fun p -> string_of (E.pget_unsafe esys p)) |> List.sort compare
  in
  (esys, payloads, contents)

(* ---- basic lifecycle ---- *)

let test_pnew_pget_roundtrip () =
  let _, esys = make () in
  let p = insert esys "payload-contents" in
  Alcotest.(check string) "get returns content" "payload-contents" (string_of (E.pget_unsafe esys p))

let test_mutation_requires_op () =
  let _, esys = make () in
  Alcotest.check_raises "pnew outside op rejected"
    (Invalid_argument "Montage: payload mutation outside BEGIN_OP/END_OP") (fun () ->
      ignore (E.pnew esys ~tid:0 (bytes_of "x")))

let test_set_in_same_epoch_is_in_place () =
  let _, esys = make () in
  E.with_op esys ~tid:0 (fun () ->
      let p = E.pnew esys ~tid:0 (bytes_of "aaaa") in
      let p' = E.pset esys ~tid:0 p (bytes_of "bbbb") in
      Alcotest.(check bool) "same handle" true (p == p');
      Alcotest.(check string) "updated" "bbbb" (string_of (E.pget esys ~tid:0 p')))

let test_set_across_epochs_copies () =
  let _, esys = make () in
  let p = insert esys "old-value" in
  E.advance_epoch esys ~tid:0;
  E.with_op esys ~tid:0 (fun () ->
      let p' = E.pset esys ~tid:0 p (bytes_of "new-value") in
      Alcotest.(check bool) "different handle" true (p != p');
      Alcotest.(check bool) "same uid" true (p.E.uid = p'.E.uid);
      Alcotest.(check string) "new content" "new-value" (string_of (E.pget esys ~tid:0 p')))

let test_stale_handle_detected_after_copy () =
  let _, esys = make () in
  let p = insert esys "v1" in
  E.advance_epoch esys ~tid:0;
  E.with_op esys ~tid:0 (fun () ->
      let _p' = E.pset esys ~tid:0 p (bytes_of "v2") in
      Alcotest.check_raises "old handle dead" Montage.Errors.Use_after_free (fun () ->
          ignore (E.pget esys ~tid:0 p)))

let test_old_see_new_raised () =
  let _, esys = make () in
  (* start an op, then advance the epoch from "another thread", then
     create a newer payload and let the stale op read it *)
  E.begin_op esys ~tid:0;
  E.advance_epoch esys ~tid:1;
  E.begin_op esys ~tid:1;
  let fresh = E.pnew esys ~tid:1 (bytes_of "newer") in
  Alcotest.check_raises "old op sees new payload" Montage.Errors.Old_see_new (fun () ->
      ignore (E.pget esys ~tid:0 fresh));
  E.end_op esys ~tid:1;
  E.end_op esys ~tid:0

let test_check_epoch_raises_after_advance () =
  let _, esys = make () in
  E.begin_op esys ~tid:0;
  E.check_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:1;
  Alcotest.check_raises "epoch changed" Montage.Errors.Epoch_changed (fun () ->
      E.check_epoch esys ~tid:0);
  E.end_op esys ~tid:0

(* ---- the two-epoch persistence rule (§3.2) ---- *)

let test_crash_same_epoch_loses_payload () =
  let region, esys = make () in
  let _ = insert esys "too-fresh" in
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "epoch e discarded" [] contents

let test_crash_one_epoch_later_still_loses () =
  let region, esys = make () in
  let _ = insert esys "one-tick" in
  E.advance_epoch esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "epoch e-1 discarded" [] contents

let test_crash_two_epochs_later_preserves () =
  let region, esys = make () in
  let _ = insert esys "durable-now" in
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "epoch e-2 preserved" [ "durable-now" ] contents

let test_sync_makes_latest_durable () =
  let region, esys = make () in
  let _ = insert esys "synced" in
  E.sync esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "sync persists immediately" [ "synced" ] contents

let test_prefix_consistency_across_epochs () =
  let region, esys = make () in
  let _ = insert esys "epoch-A" in
  E.advance_epoch esys ~tid:0;
  let _ = insert esys "epoch-B" in
  E.advance_epoch esys ~tid:0;
  let _ = insert esys "epoch-C" in
  (* crash in epoch C's epoch: A is ≤ e−2, B is e−1, C is e *)
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "only the old prefix survives" [ "epoch-A" ] contents

(* ---- updates vs crash cuts ---- *)

let test_update_not_yet_durable_keeps_old_version () =
  let region, esys = make () in
  let p = insert esys "version-1" in
  E.sync esys ~tid:0;
  E.with_op esys ~tid:0 (fun () -> ignore (E.pset esys ~tid:0 p (bytes_of "version-2")));
  (* the update happened in the current epoch: a crash must roll back *)
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "old version restored" [ "version-1" ] contents

let test_update_durable_after_sync () =
  let region, esys = make () in
  let p = insert esys "version-1" in
  E.sync esys ~tid:0;
  E.with_op esys ~tid:0 (fun () -> ignore (E.pset esys ~tid:0 p (bytes_of "version-2")));
  E.sync esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "new version wins" [ "version-2" ] contents

let test_many_updates_single_survivor () =
  let region, esys = make () in
  let p = ref (insert esys "v0") in
  for i = 1 to 10 do
    E.advance_epoch esys ~tid:0;
    E.with_op esys ~tid:0 (fun () -> p := E.pset esys ~tid:0 !p (bytes_of (Printf.sprintf "v%d" i)))
  done;
  E.sync esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "exactly the newest version" [ "v10" ] contents

(* ---- deletion and anti-payloads ---- *)

let test_delete_not_yet_durable_resurrects () =
  let region, esys = make () in
  let p = insert esys "deleted-too-late" in
  E.sync esys ~tid:0;
  E.with_op esys ~tid:0 (fun () -> E.pdelete esys ~tid:0 p);
  (* anti-payload is in the crash-discarded window: item comes back *)
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "delete rolled back" [ "deleted-too-late" ] contents

let test_delete_durable_after_sync () =
  let region, esys = make () in
  let p = insert esys "gone-for-good" in
  E.sync esys ~tid:0;
  E.with_op esys ~tid:0 (fun () -> E.pdelete esys ~tid:0 p);
  E.sync esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "anti-payload kills it" [] contents

let test_delete_same_epoch_alloc_invisible () =
  let region, esys = make () in
  E.with_op esys ~tid:0 (fun () ->
      let p = E.pnew esys ~tid:0 (bytes_of "blink") in
      E.pdelete esys ~tid:0 p);
  E.sync esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "create+delete in one epoch leaves nothing" [] contents

let test_delete_same_epoch_update () =
  let region, esys = make () in
  let p = insert esys "touch-then-kill" in
  E.sync esys ~tid:0;
  (* update (copies into current epoch), then delete in the same op *)
  E.with_op esys ~tid:0 (fun () ->
      let p' = E.pset esys ~tid:0 p (bytes_of "touched") in
      E.pdelete esys ~tid:0 p');
  E.sync esys ~tid:0;
  let _, _, contents = crash_and_recover region in
  Alcotest.(check (list string)) "in-place anti-payload wins" [] contents

let test_use_after_delete_detected () =
  let _, esys = make () in
  let p = insert esys "x" in
  E.with_op esys ~tid:0 (fun () -> E.pdelete esys ~tid:0 p);
  Alcotest.check_raises "deleted handle" Montage.Errors.Use_after_free (fun () ->
      ignore (E.pget_unsafe esys p))

let test_blocks_reclaimed_after_delete () =
  (* deleted payloads must eventually return to the allocator *)
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 20) () in
  let esys = E.create ~config:testing_cfg region in
  (* heap ≈ 1 MB − 64 KB; each 1 KB payload uses a 2 KB block (header
     pushes it over 1 KB); without reclamation ~450 inserts would
     exhaust it, so 3000 insert+delete rounds prove reuse *)
  for i = 0 to 2999 do
    let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (Bytes.make 1024 'x')) in
    E.with_op esys ~tid:0 (fun () -> E.pdelete esys ~tid:0 p);
    if i mod 10 = 0 then E.advance_epoch esys ~tid:0
  done;
  Alcotest.(check bool) "no heap exhaustion" true true

(* ---- recovery details ---- *)

let test_recovered_handles_are_usable () =
  let region, esys = make () in
  let _ = insert esys "reusable" in
  E.sync esys ~tid:0;
  let esys2, payloads, _ = crash_and_recover region in
  Alcotest.(check int) "one survivor" 1 (Array.length payloads);
  let p = payloads.(0) in
  (* mutate the recovered payload through the new epoch system *)
  E.with_op esys2 ~tid:0 (fun () -> ignore (E.pset esys2 ~tid:0 p (bytes_of "after-recovery")));
  E.sync esys2 ~tid:0;
  Nvm.Region.crash region;
  let esys3, payloads3 = E.recover ~config:testing_cfg region in
  Alcotest.(check int) "still one payload" 1 (Array.length payloads3);
  Alcotest.(check string) "second-generation update survived" "after-recovery"
    (string_of (E.pget_unsafe esys3 payloads3.(0)))

let test_uids_not_reused_after_recovery () =
  let region, esys = make () in
  let p = insert esys "a" in
  E.sync esys ~tid:0;
  let uid_before = p.E.uid in
  let esys2, _, _ = crash_and_recover region in
  let q = E.with_op esys2 ~tid:0 (fun () -> E.pnew esys2 ~tid:0 (bytes_of "b")) in
  Alcotest.(check bool) "fresh uid larger" true (q.E.uid > uid_before)

let test_double_crash_is_stable () =
  let region, esys = make () in
  let _ = insert esys "stable" in
  E.sync esys ~tid:0;
  let _, _, contents1 = crash_and_recover region in
  let _, _, contents2 = crash_and_recover region in
  Alcotest.(check (list string)) "first recovery" [ "stable" ] contents1;
  Alcotest.(check (list string)) "second recovery identical" [ "stable" ] contents2

let test_parallel_recovery_matches_sequential () =
  let region, esys = make ~capacity:(1 lsl 23) () in
  for i = 0 to 299 do
    ignore (insert esys (Printf.sprintf "p%03d" i))
  done;
  (* delete a third, update a third *)
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let _, seq_payloads = E.recover ~config:testing_cfg region in
  let seq =
    Array.to_list seq_payloads
    |> List.map (fun p -> p.E.uid)
    |> List.sort compare
  in
  (* recover the same image again, in parallel: identical survivors *)
  Nvm.Region.crash region;
  let esys3, par_payloads = E.recover ~config:testing_cfg ~threads:4 region in
  let par =
    Array.to_list par_payloads
    |> List.map (fun p -> p.E.uid)
    |> List.sort compare
  in
  Alcotest.(check int) "same survivor count" (List.length seq) (List.length par);
  Alcotest.(check bool) "same uids" true (seq = par);
  (* and the parallel-recovered system is fully functional *)
  let q = E.with_op esys3 ~tid:0 (fun () -> E.pnew esys3 ~tid:0 (bytes_of "fresh")) in
  Alcotest.(check string) "usable" "fresh" (string_of (E.pget_unsafe esys3 q))

let test_slices_partition () =
  let region, esys = make () in
  for i = 0 to 19 do
    ignore (insert esys (Printf.sprintf "p%02d" i))
  done;
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let _, payloads = E.recover ~config:testing_cfg region in
  let slices = E.slices payloads ~k:3 in
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 slices in
  Alcotest.(check int) "slices cover all" (Array.length payloads) total;
  Alcotest.(check int) "three slices" 3 (Array.length slices)

let test_montage_transient_mode () =
  (* Montage (T): everything works, nothing persists, no flushes *)
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 20) () in
  let esys = E.create ~config:{ Cfg.transient with max_threads = 4 } region in
  (* setup (clock init, superblock headers) may flush; operations must
     not.  Pre-warm the size class so the first pnew does not carve. *)
  let warm = Ralloc.alloc (E.allocator esys) ~tid:0 ~size:64 in
  Ralloc.free (E.allocator esys) ~tid:0 warm;
  let s0 = Nvm.Region.stats region in
  let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (bytes_of "fast")) in
  E.with_op esys ~tid:0 (fun () -> ignore (E.pset esys ~tid:0 p (bytes_of "path")));
  E.with_op esys ~tid:0 (fun () -> E.pdelete esys ~tid:0 p);
  let s1 = Nvm.Region.stats region in
  Alcotest.(check int) "no writebacks" s0.Nvm.Region.writebacks s1.Nvm.Region.writebacks;
  Alcotest.(check int) "no fences" s0.Nvm.Region.fences s1.Nvm.Region.fences

let test_direct_writeback_mode () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 20) () in
  let cfg = { testing_cfg with writeback = Cfg.Direct } in
  let esys = E.create ~config:cfg region in
  ignore (E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (bytes_of "now")));
  let s = Nvm.Region.stats region in
  Alcotest.(check bool) "payload flushed synchronously" true (s.Nvm.Region.fences >= 1)

let test_worker_reclamation_mode () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 20) () in
  let cfg = { testing_cfg with reclaim = Cfg.Workers } in
  let esys = E.create ~config:cfg region in
  for _ = 1 to 1500 do
    let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (Bytes.make 1024 'y')) in
    E.with_op esys ~tid:0 (fun () -> E.pdelete esys ~tid:0 p);
    E.advance_epoch esys ~tid:1
  done;
  Alcotest.(check bool) "workers reclaim their garbage" true true

(* ---- incremental write-back (buffer overflow) ---- *)

let test_buffer_overflow_incremental_writeback () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 22) () in
  let cfg = { testing_cfg with buffer_size = 4 } in
  let esys = E.create ~config:cfg region in
  (* create many payloads in one epoch: the 4-entry ring must spill *)
  E.with_op esys ~tid:0 (fun () ->
      for _ = 1 to 64 do
        ignore (E.pnew esys ~tid:0 (bytes_of "spill"))
      done);
  let s = Nvm.Region.stats region in
  Alcotest.(check bool) "spills wrote back early" true (s.Nvm.Region.writebacks > 0);
  (* and correctness still holds after the usual two advances *)
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  Nvm.Region.crash region;
  let _, payloads = E.recover ~config:cfg region in
  Alcotest.(check int) "all 64 survive" 64 (Array.length payloads)

(* ---- concurrent smoke test ---- *)

let test_concurrent_inserts_recover_cleanly () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 24) () in
  let esys = E.create ~config:testing_cfg region in
  let per_thread = 500 in
  let domains =
    Array.init 3 (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to per_thread do
              ignore
                (E.with_op esys ~tid (fun () ->
                     E.pnew esys ~tid (bytes_of (Printf.sprintf "t%d-%d" tid i))))
            done))
  in
  Array.iter Domain.join domains;
  E.sync esys ~tid:3;
  Nvm.Region.crash region;
  let _, payloads = E.recover ~config:testing_cfg region in
  Alcotest.(check int) "all inserts durable after sync" (3 * per_thread) (Array.length payloads)

(* ---- property: random op/crash interleavings are prefix-consistent ---- *)

(* Single-threaded model execution: maintain the expected surviving set
   per epoch boundary and compare against recovery at a random crash
   point.  This is the buffered-durable-linearizability contract in
   miniature: recovery must equal the model state at the end of epoch
   crash_epoch − 2. *)
let qcheck_prefix_consistency =
  QCheck.Test.make ~name:"recovery equals the two-epochs-ago model state" ~count:60
    QCheck.(pair small_int (list (int_range 0 5)))
    (fun (seed, script) ->
      QCheck.assume (List.length script > 0);
      let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 22) () in
      let esys = E.create ~config:testing_cfg region in
      let rng = Util.Xoshiro.create seed in
      (* model: per-epoch snapshots of the abstract set of strings *)
      let live : (string, E.pblk) Hashtbl.t = Hashtbl.create 16 in
      let snapshots = Hashtbl.create 16 in
      let snapshot () = Hashtbl.fold (fun k _ acc -> k :: acc) live [] |> List.sort compare in
      Hashtbl.replace snapshots (E.current_epoch esys) (snapshot ());
      let counter = ref 0 in
      List.iter
        (fun cmd ->
          (match cmd with
          | 0 | 1 | 2 ->
              (* insert *)
              incr counter;
              let v = Printf.sprintf "item-%d" !counter in
              let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (bytes_of v)) in
              Hashtbl.replace live v p
          | 3 ->
              (* delete a random live item *)
              let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
              if keys <> [] then begin
                let k = List.nth keys (Util.Xoshiro.int rng (List.length keys)) in
                let p = Hashtbl.find live k in
                E.with_op esys ~tid:0 (fun () -> E.pdelete esys ~tid:0 p);
                Hashtbl.remove live k
              end
          | 4 ->
              (* update a random live item (same abstract value set:
                 we rename to a fresh string to observe the change) *)
              let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
              if keys <> [] then begin
                let k = List.nth keys (Util.Xoshiro.int rng (List.length keys)) in
                let p = Hashtbl.find live k in
                incr counter;
                let v' = Printf.sprintf "item-%d" !counter in
                let p' = E.with_op esys ~tid:0 (fun () -> E.pset esys ~tid:0 p (bytes_of v')) in
                Hashtbl.remove live k;
                Hashtbl.replace live v' p'
              end
          | _ ->
              (* epoch tick *)
              E.advance_epoch esys ~tid:1);
          (* record the model state as of each epoch boundary *)
          Hashtbl.replace snapshots (E.current_epoch esys) (snapshot ()))
        script;
      let crash_epoch = E.current_epoch esys in
      Nvm.Region.crash region;
      let esys2, payloads = E.recover ~config:testing_cfg region in
      let recovered =
        Array.to_list payloads |> List.map (fun p -> string_of (E.pget_unsafe esys2 p)) |> List.sort compare
      in
      (* expected: the newest snapshot at an epoch ≤ crash_epoch − 2 *)
      let expected = ref [] in
      for e = 1 to crash_epoch - 2 do
        match Hashtbl.find_opt snapshots e with Some s -> expected := s | None -> ()
      done;
      recovered = !expected)

let () =
  Alcotest.run "montage"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "pnew/pget roundtrip" `Quick test_pnew_pget_roundtrip;
          Alcotest.test_case "mutation requires op" `Quick test_mutation_requires_op;
          Alcotest.test_case "same-epoch set in place" `Quick test_set_in_same_epoch_is_in_place;
          Alcotest.test_case "cross-epoch set copies" `Quick test_set_across_epochs_copies;
          Alcotest.test_case "stale handle detected" `Quick test_stale_handle_detected_after_copy;
          Alcotest.test_case "old-sees-new raised" `Quick test_old_see_new_raised;
          Alcotest.test_case "check_epoch raises" `Quick test_check_epoch_raises_after_advance;
        ] );
      ( "two-epoch rule",
        [
          Alcotest.test_case "crash in e loses" `Quick test_crash_same_epoch_loses_payload;
          Alcotest.test_case "crash in e+1 loses" `Quick test_crash_one_epoch_later_still_loses;
          Alcotest.test_case "crash in e+2 preserves" `Quick test_crash_two_epochs_later_preserves;
          Alcotest.test_case "sync forces durability" `Quick test_sync_makes_latest_durable;
          Alcotest.test_case "prefix consistency" `Quick test_prefix_consistency_across_epochs;
        ] );
      ( "updates",
        [
          Alcotest.test_case "unsynced update rolls back" `Quick test_update_not_yet_durable_keeps_old_version;
          Alcotest.test_case "synced update survives" `Quick test_update_durable_after_sync;
          Alcotest.test_case "many updates, one survivor" `Quick test_many_updates_single_survivor;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "unsynced delete resurrects" `Quick test_delete_not_yet_durable_resurrects;
          Alcotest.test_case "synced delete final" `Quick test_delete_durable_after_sync;
          Alcotest.test_case "same-epoch create+delete" `Quick test_delete_same_epoch_alloc_invisible;
          Alcotest.test_case "same-epoch update+delete" `Quick test_delete_same_epoch_update;
          Alcotest.test_case "use-after-delete detected" `Quick test_use_after_delete_detected;
          Alcotest.test_case "blocks reclaimed" `Quick test_blocks_reclaimed_after_delete;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recovered handles usable" `Quick test_recovered_handles_are_usable;
          Alcotest.test_case "uids not reused" `Quick test_uids_not_reused_after_recovery;
          Alcotest.test_case "double crash stable" `Quick test_double_crash_is_stable;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_recovery_matches_sequential;
          Alcotest.test_case "slices partition" `Quick test_slices_partition;
          QCheck_alcotest.to_alcotest qcheck_prefix_consistency;
        ] );
      ( "configurations",
        [
          Alcotest.test_case "Montage(T) elides persistence" `Quick test_montage_transient_mode;
          Alcotest.test_case "DirWB flushes synchronously" `Quick test_direct_writeback_mode;
          Alcotest.test_case "worker reclamation" `Quick test_worker_reclamation_mode;
          Alcotest.test_case "buffer overflow spills" `Quick test_buffer_overflow_incremental_writeback;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "parallel inserts recover" `Quick test_concurrent_inserts_recover_cleanly ] );
    ]
