(* Tests for the Ralloc-style persistent allocator. *)

let make ?(capacity = 1 lsl 22) () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity () in
  (region, Ralloc.create region ~heap_base:4096)

let test_size_classes () =
  Alcotest.(check int) "64 for 1" 64 Ralloc.Size_class.(size_of (index_of 1));
  Alcotest.(check int) "64 for 64" 64 Ralloc.Size_class.(size_of (index_of 64));
  Alcotest.(check int) "128 for 65" 128 Ralloc.Size_class.(size_of (index_of 65));
  Alcotest.(check int) "8192 for 8000" 8192 Ralloc.Size_class.(size_of (index_of 8000));
  Alcotest.check_raises "0 rejected" (Invalid_argument "Size_class.index_of: size 0 out of range")
    (fun () -> ignore (Ralloc.Size_class.index_of 0));
  Alcotest.check_raises "oversize rejected"
    (Invalid_argument "Size_class.index_of: size 9000 out of range") (fun () ->
      ignore (Ralloc.Size_class.index_of 9000))

let test_alloc_returns_distinct_blocks () =
  let _, a = make () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let off = Ralloc.alloc a ~tid:0 ~size:100 in
    Alcotest.(check bool) "fresh offset" false (Hashtbl.mem seen off);
    Hashtbl.replace seen off ()
  done

let test_blocks_are_line_aligned () =
  let _, a = make () in
  for _ = 1 to 100 do
    let off = Ralloc.alloc a ~tid:0 ~size:200 in
    Alcotest.(check int) "64-aligned" 0 (off mod 64)
  done

let test_free_and_reuse () =
  let _, a = make () in
  let off = Ralloc.alloc a ~tid:0 ~size:1000 in
  Ralloc.free a ~tid:0 off;
  let off' = Ralloc.alloc a ~tid:0 ~size:1000 in
  Alcotest.(check int) "thread cache reuses LIFO" off off'

let test_block_size_lookup () =
  let _, a = make () in
  let off = Ralloc.alloc a ~tid:0 ~size:100 in
  Alcotest.(check int) "class size" 128 (Ralloc.block_size a off);
  let off2 = Ralloc.alloc a ~tid:0 ~size:3000 in
  Alcotest.(check int) "class size 4096" 4096 (Ralloc.block_size a off2)

let test_cache_spill_and_refill () =
  let _, a = make () in
  (* exceed the per-thread cache (32) to force global-list traffic *)
  let offs = Array.init 200 (fun _ -> Ralloc.alloc a ~tid:0 ~size:64) in
  Array.iter (fun off -> Ralloc.free a ~tid:0 off) offs;
  let again = Array.init 200 (fun _ -> Ralloc.alloc a ~tid:0 ~size:64) in
  let distinct = Hashtbl.create 64 in
  Array.iter (fun o -> Hashtbl.replace distinct o ()) again;
  Alcotest.(check int) "no double allocation" 200 (Hashtbl.length distinct)

let test_out_of_memory () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:2 ~capacity:(1 lsl 18) () in
  let a = Ralloc.create region ~heap_base:0 in
  Alcotest.check_raises "heap exhaustion" Ralloc.Out_of_memory (fun () ->
      for _ = 1 to 100_000 do
        ignore (Ralloc.alloc a ~tid:0 ~size:8000)
      done)

let test_concurrent_alloc_no_duplicates () =
  let _, a = make ~capacity:(1 lsl 24) () in
  let n_threads = 4 and per_thread = 2000 in
  let results = Array.init n_threads (fun _ -> Array.make per_thread 0) in
  let domains =
    Array.init n_threads (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per_thread - 1 do
              results.(tid).(i) <- Ralloc.alloc a ~tid ~size:256
            done))
  in
  Array.iter Domain.join domains;
  let seen = Hashtbl.create 1024 in
  Array.iter (Array.iter (fun off -> Hashtbl.replace seen off ())) results;
  Alcotest.(check int) "all offsets distinct" (n_threads * per_thread) (Hashtbl.length seen)

let test_concurrent_alloc_free_churn () =
  let _, a = make ~capacity:(1 lsl 24) () in
  let n_threads = 4 in
  let domains =
    Array.init n_threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Util.Xoshiro.create (tid + 1) in
            let held = ref [] in
            for _ = 1 to 5000 do
              if Util.Xoshiro.bool rng || !held = [] then
                held := Ralloc.alloc a ~tid ~size:(64 + Util.Xoshiro.int rng 1000) :: !held
              else
                match !held with
                | off :: rest ->
                    Ralloc.free a ~tid off;
                    held := rest
                | [] -> ()
            done))
  in
  Array.iter Domain.join domains;
  (* liveness proxy: allocator still functional afterwards *)
  Alcotest.(check bool) "alloc still works" true (Ralloc.alloc a ~tid:0 ~size:64 >= 0)

let test_recovery_sweep_partitions_blocks () =
  let region, a = make () in
  let live = Hashtbl.create 16 in
  for i = 0 to 99 do
    let off = Ralloc.alloc a ~tid:0 ~size:100 in
    (* persist a recognizable marker so it survives the crash *)
    Nvm.Region.set_i64 region ~off i;
    Nvm.Region.persist region ~tid:0 ~off ~len:8;
    if i mod 2 = 0 then Hashtbl.replace live off ()
  done;
  Nvm.Region.crash region;
  let a2 = Ralloc.create region ~heap_base:4096 in
  Ralloc.recover a2 ~live:(Hashtbl.mem live);
  (* every subsequent allocation must avoid live blocks *)
  for _ = 1 to 2000 do
    let off = Ralloc.alloc a2 ~tid:0 ~size:100 in
    Alcotest.(check bool) "never hands out a live block" false (Hashtbl.mem live off)
  done

let test_recovery_preserves_superblock_classes () =
  let region, a = make () in
  let off_small = Ralloc.alloc a ~tid:0 ~size:64 in
  let off_big = Ralloc.alloc a ~tid:0 ~size:4096 in
  Nvm.Region.crash region;
  let a2 = Ralloc.create region ~heap_base:4096 in
  Ralloc.recover a2 ~live:(fun _ -> false);
  Alcotest.(check int) "small class rebound" 64 (Ralloc.block_size a2 off_small);
  Alcotest.(check int) "big class rebound" 4096 (Ralloc.block_size a2 off_big)

let test_iter_blocks_covers_allocations () =
  let _, a = make () in
  let offs = Array.init 50 (fun _ -> Ralloc.alloc a ~tid:0 ~size:512) in
  let seen = Hashtbl.create 64 in
  Ralloc.iter_blocks a (fun ~off ~size:_ -> Hashtbl.replace seen off ());
  Array.iter
    (fun off -> Alcotest.(check bool) "allocated block enumerated" true (Hashtbl.mem seen off))
    offs

let qcheck_free_list_push_pop =
  QCheck.Test.make ~name:"free list is LIFO-consistent and loses nothing" ~count:100
    QCheck.(list (int_range 0 1000))
    (fun picks ->
      let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:2 ~capacity:(1 lsl 18) () in
      let fl = Ralloc.Free_list.create () in
      (* an intrusive list cannot hold the same block twice; dedup while
         preserving push order *)
      let seen = Hashtbl.create 16 in
      let pushed =
        List.filter_map
          (fun p ->
            if Hashtbl.mem seen p then None
            else begin
              Hashtbl.replace seen p ();
              Some (p * 64)
            end)
          picks
      in
      List.iter (fun off -> Ralloc.Free_list.push region fl off) pushed;
      let popped = ref [] in
      let rec drain () =
        match Ralloc.Free_list.pop region fl with
        | Some off ->
            popped := off :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      (* LIFO: popping reverses, so the accumulated list matches *)
      !popped = pushed)

let () =
  Alcotest.run "ralloc"
    [
      ("size_class", [ Alcotest.test_case "boundaries" `Quick test_size_classes ]);
      ( "alloc",
        [
          Alcotest.test_case "distinct blocks" `Quick test_alloc_returns_distinct_blocks;
          Alcotest.test_case "line aligned" `Quick test_blocks_are_line_aligned;
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "block size lookup" `Quick test_block_size_lookup;
          Alcotest.test_case "cache spill/refill" `Quick test_cache_spill_and_refill;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "no duplicate allocations" `Quick test_concurrent_alloc_no_duplicates;
          Alcotest.test_case "alloc/free churn" `Quick test_concurrent_alloc_free_churn;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "sweep partitions blocks" `Quick test_recovery_sweep_partitions_blocks;
          Alcotest.test_case "superblock classes rebound" `Quick test_recovery_preserves_superblock_classes;
          Alcotest.test_case "iter covers allocations" `Quick test_iter_blocks_covers_allocations;
        ] );
      ("free_list", [ QCheck_alcotest.to_alcotest qcheck_free_list_push_pop ]);
    ]
