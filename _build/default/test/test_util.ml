(* Unit and property tests for the utility layer. *)

let test_xoshiro_deterministic () =
  let a = Util.Xoshiro.create 7 and b = Util.Xoshiro.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Xoshiro.next_int64 a) (Util.Xoshiro.next_int64 b)
  done

let test_xoshiro_split_independent () =
  let a = Util.Xoshiro.create 7 in
  let b = Util.Xoshiro.split a in
  let distinct = ref 0 in
  for _ = 1 to 64 do
    if Util.Xoshiro.next_int64 a <> Util.Xoshiro.next_int64 b then incr distinct
  done;
  Alcotest.(check bool) "streams diverge" true (!distinct > 60)

let test_xoshiro_bounds () =
  let rng = Util.Xoshiro.create 3 in
  for _ = 1 to 1000 do
    let v = Util.Xoshiro.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_xoshiro_float_range () =
  let rng = Util.Xoshiro.create 11 in
  for _ = 1 to 1000 do
    let f = Util.Xoshiro.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_zipf_range () =
  let rng = Util.Xoshiro.create 5 in
  let z = Util.Zipf.create 1000 in
  for _ = 1 to 10_000 do
    let v = Util.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 1000)
  done

let test_zipf_skew () =
  (* With theta = 0.99 and no scrambling, rank 0 should dominate. *)
  let rng = Util.Xoshiro.create 5 in
  let z = Util.Zipf.create ~scrambled:false 1000 in
  let counts = Array.make 1000 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Util.Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "head is hot" true (counts.(0) > n / 20);
  let tail = Array.fold_left ( + ) 0 (Array.sub counts 500 500) in
  Alcotest.(check bool) "tail is cold" true (tail < n / 4)

let test_zipf_scrambled_spreads () =
  let rng = Util.Xoshiro.create 5 in
  let z = Util.Zipf.create ~scrambled:true 1000 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 10_000 do
    Hashtbl.replace seen (Util.Zipf.sample z rng) ()
  done;
  Alcotest.(check bool) "many distinct keys" true (Hashtbl.length seen > 100)

let test_spin_lock_mutual_exclusion () =
  let lock = Util.Spin_lock.create () in
  let counter = ref 0 in
  let iters = 10_000 in
  let worker () =
    for _ = 1 to iters do
      Util.Spin_lock.with_lock lock (fun () -> incr counter)
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" (4 * iters) !counter

let test_spin_lock_exception_release () =
  let lock = Util.Spin_lock.create () in
  (try Util.Spin_lock.with_lock lock (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "released after exception" true (Util.Spin_lock.try_acquire lock);
  Util.Spin_lock.release lock

let test_padded_counters () =
  let c = Util.Padded.make_counters 8 in
  for i = 0 to 7 do
    Util.Padded.set c i i
  done;
  Util.Padded.incr c 3;
  Util.Padded.add c 5 10;
  Alcotest.(check int) "get 3" 4 (Util.Padded.get c 3);
  Alcotest.(check int) "get 5" 15 (Util.Padded.get c 5);
  Alcotest.(check int) "sum" (0 + 1 + 2 + 4 + 4 + 15 + 6 + 7) (Util.Padded.sum c)

let test_spin_wait_burns_time () =
  let t0 = Util.Spin_wait.now_ns () in
  Util.Spin_wait.ns 2_000_000;
  let elapsed = Int64.to_int (Int64.sub (Util.Spin_wait.now_ns ()) t0) in
  (* within a generous factor: calibration is approximate *)
  Alcotest.(check bool) "roughly 2ms burned" true (elapsed > 400_000 && elapsed < 40_000_000)

let test_histogram () =
  let h = Util.Histogram.create () in
  List.iter (Util.Histogram.record h) [ 1; 2; 4; 8; 1024; 1024 ];
  Alcotest.(check int) "count" 6 (Util.Histogram.count h);
  Alcotest.(check bool) "mean sane" true (Util.Histogram.mean_ns h > 300.0);
  Alcotest.(check bool) "p99 covers max bucket" true (Util.Histogram.quantile_ns h 0.99 >= 1024)

let test_histogram_merge () =
  let a = Util.Histogram.create () and b = Util.Histogram.create () in
  Util.Histogram.record a 10;
  Util.Histogram.record b 20;
  Util.Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 2 (Util.Histogram.count a)

let qcheck_zipf_always_in_range =
  QCheck.Test.make ~name:"zipf sample within [0, n)" ~count:200
    QCheck.(pair (int_range 1 5000) small_int)
    (fun (n, seed) ->
      let rng = Util.Xoshiro.create seed in
      let z = Util.Zipf.create n in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Util.Zipf.sample z rng in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let qcheck_xoshiro_int_bound =
  QCheck.Test.make ~name:"xoshiro int within bound" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Util.Xoshiro.create seed in
      let v = Util.Xoshiro.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "util"
    [
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "split independence" `Quick test_xoshiro_split_independent;
          Alcotest.test_case "int bounds" `Quick test_xoshiro_bounds;
          Alcotest.test_case "float range" `Quick test_xoshiro_float_range;
          QCheck_alcotest.to_alcotest qcheck_xoshiro_int_bound;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "scrambled spreads" `Quick test_zipf_scrambled_spreads;
          QCheck_alcotest.to_alcotest qcheck_zipf_always_in_range;
        ] );
      ( "spin_lock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_spin_lock_mutual_exclusion;
          Alcotest.test_case "exception releases" `Quick test_spin_lock_exception_release;
        ] );
      ("padded", [ Alcotest.test_case "counters" `Quick test_padded_counters ]);
      ("spin_wait", [ Alcotest.test_case "burns time" `Quick test_spin_wait_burns_time ]);
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
    ]
