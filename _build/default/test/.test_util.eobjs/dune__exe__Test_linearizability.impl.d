test/test_linearizability.ml: Alcotest Array Atomic Domain Lin_check List Montage Nvm Printf Pstructs Unix Util
