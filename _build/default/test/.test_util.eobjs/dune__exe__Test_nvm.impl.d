test/test_nvm.ml: Alcotest Hashtbl List Nvm QCheck QCheck_alcotest String Util
