test/test_pstructs.mli:
