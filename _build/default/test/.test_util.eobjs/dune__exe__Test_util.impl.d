test/test_util.ml: Alcotest Array Domain Hashtbl Int64 List QCheck QCheck_alcotest Util
