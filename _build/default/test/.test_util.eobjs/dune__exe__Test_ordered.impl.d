test/test_ordered.ml: Alcotest Array Atomic Domain Hashtbl List Montage Nvm Printf Pstructs QCheck QCheck_alcotest String Unix Util
