test/test_montage.ml: Alcotest Array Bytes Domain Hashtbl List Montage Nvm Printf QCheck QCheck_alcotest Ralloc Util
