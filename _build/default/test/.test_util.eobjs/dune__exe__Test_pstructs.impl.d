test/test_pstructs.ml: Alcotest Array Atomic Domain Hashtbl List Montage Nvm Option Printf Pstructs QCheck QCheck_alcotest Scanf String Unix Util
