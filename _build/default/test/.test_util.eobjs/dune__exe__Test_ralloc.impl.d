test/test_ralloc.ml: Alcotest Array Domain Hashtbl List Nvm QCheck QCheck_alcotest Ralloc Util
