test/test_kvstore.ml: Alcotest Array Baselines Domain Kvstore Montage Nvm Printf Pstructs String Util
