test/lin_check.ml: Array Atomic Bytes Hashtbl List
