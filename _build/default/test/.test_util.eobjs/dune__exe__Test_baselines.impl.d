test/test_baselines.ml: Alcotest Array Baselines Domain List Nvm Option Printf
