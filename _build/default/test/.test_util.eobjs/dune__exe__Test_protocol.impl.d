test/test_protocol.ml: Alcotest Baselines Kvstore Montage Nvm Printf Pstructs Scanf String
