test/test_everify.ml: Alcotest Array Atomic Domain Montage Nvm QCheck QCheck_alcotest Unix
