test/test_montage.mli:
