test/test_runtime.ml: Alcotest Atomic Domain List Montage Nvm QCheck QCheck_alcotest String Unix
