test/test_everify.mli:
