(* Tests for the simulated NVM region: store/load, write-back + fence
   semantics, crash behaviour, and injection modes. *)

let make_region ?(capacity = 1 lsl 16) () =
  Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity ()

let test_write_read_roundtrip () =
  let r = make_region () in
  Nvm.Region.write_string r ~off:100 "hello, montage";
  Alcotest.(check string) "roundtrip" "hello, montage" (Nvm.Region.read_string r ~off:100 ~len:14)

let test_scalar_accessors () =
  let r = make_region () in
  Nvm.Region.set_i64 r ~off:0 123456789;
  Nvm.Region.set_i32 r ~off:8 4242;
  Nvm.Region.set_u8 r ~off:12 77;
  Alcotest.(check int) "i64" 123456789 (Nvm.Region.get_i64 r ~off:0);
  Alcotest.(check int) "i32" 4242 (Nvm.Region.get_i32 r ~off:8);
  Alcotest.(check int) "u8" 77 (Nvm.Region.get_u8 r ~off:12)

let test_out_of_bounds_rejected () =
  let r = make_region ~capacity:1024 () in
  Alcotest.check_raises "write past end" (Invalid_argument "Region: access [1020, 1028) outside capacity 1024")
    (fun () -> Nvm.Region.set_i64 r ~off:1020 1)

let test_unflushed_lost_on_crash () =
  let r = make_region () in
  Nvm.Region.write_string r ~off:0 "will vanish";
  Nvm.Region.crash r;
  Alcotest.(check string) "zeroed after crash" (String.make 11 '\000')
    (Nvm.Region.read_string r ~off:0 ~len:11)

let test_flushed_unfenced_lost_by_default () =
  let r = make_region () in
  Nvm.Region.write_string r ~off:0 "no fence";
  Nvm.Region.writeback r ~tid:0 ~off:0 ~len:8;
  Nvm.Region.crash r;
  Alcotest.(check string) "lost without fence" (String.make 8 '\000')
    (Nvm.Region.read_string r ~off:0 ~len:8)

let test_persisted_survives_crash () =
  let r = make_region () in
  Nvm.Region.write_string r ~off:64 "durable!";
  Nvm.Region.persist r ~tid:0 ~off:64 ~len:8;
  Nvm.Region.write_string r ~off:256 "ephemeral";
  Nvm.Region.crash r;
  Alcotest.(check string) "fenced line survives" "durable!" (Nvm.Region.read_string r ~off:64 ~len:8);
  Alcotest.(check string) "unfenced line lost" (String.make 9 '\000')
    (Nvm.Region.read_string r ~off:256 ~len:9)

let test_fence_is_per_thread () =
  let r = make_region () in
  Nvm.Region.write_string r ~off:0 "thread0!";
  Nvm.Region.writeback r ~tid:0 ~off:0 ~len:8;
  (* thread 1 fences; thread 0's queue must remain pending *)
  Nvm.Region.sfence r ~tid:1;
  Nvm.Region.crash r;
  Alcotest.(check string) "other thread's fence does not commit" (String.make 8 '\000')
    (Nvm.Region.read_string r ~off:0 ~len:8)

let test_line_granular_persistence () =
  let r = make_region () in
  (* two values on the same 64 B line: persisting one persists both *)
  Nvm.Region.set_i64 r ~off:0 11;
  Nvm.Region.set_i64 r ~off:8 22;
  Nvm.Region.persist r ~tid:0 ~off:0 ~len:8;
  Nvm.Region.crash r;
  Alcotest.(check int) "same line rides along" 22 (Nvm.Region.get_i64 r ~off:8)

let test_crash_resets_queues () =
  let r = make_region () in
  Nvm.Region.write_string r ~off:0 "aaaa";
  Nvm.Region.writeback r ~tid:0 ~off:0 ~len:4;
  Nvm.Region.crash r;
  (* queue cleared: a fence now must not commit the pre-crash line *)
  Nvm.Region.write_string r ~off:128 "bbbb";
  Nvm.Region.sfence r ~tid:0;
  Nvm.Region.crash r;
  Alcotest.(check string) "pre-crash queue dropped" (String.make 4 '\000')
    (Nvm.Region.read_string r ~off:0 ~len:4)

let test_persist_unfenced_injection () =
  (* with persist_unfenced = 1.0, flushed-but-unfenced lines survive *)
  let r = make_region () in
  Nvm.Region.write_string r ~off:0 "clwbdone";
  Nvm.Region.writeback r ~tid:0 ~off:0 ~len:8;
  Nvm.Region.crash ~persist_unfenced:1.0 r;
  Alcotest.(check string) "completed clwb persisted" "clwbdone"
    (Nvm.Region.read_string r ~off:0 ~len:8)

let test_evict_dirty_injection () =
  (* with evict_dirty = 1.0, even never-flushed lines survive *)
  let r = make_region () in
  Nvm.Region.write_string r ~off:0 "evicted!";
  Nvm.Region.crash ~evict_dirty:1.0 r;
  Alcotest.(check string) "evicted line persisted" "evicted!"
    (Nvm.Region.read_string r ~off:0 ~len:8)

let test_transient_access_not_persisted () =
  let r = make_region () in
  Nvm.Region.transient_set_i64 r ~off:0 999;
  Alcotest.(check int) "visible in work" 999 (Nvm.Region.transient_get_i64 r ~off:0);
  (* even a full-line persist elsewhere must not commit it implicitly *)
  Nvm.Region.crash ~evict_dirty:1.0 r;
  Alcotest.(check int) "not dirty, so not evicted" 0 (Nvm.Region.transient_get_i64 r ~off:0)

let test_stats_counting () =
  let r = make_region () in
  Nvm.Region.write_string r ~off:0 "x";
  Nvm.Region.writeback r ~tid:0 ~off:0 ~len:1;
  Nvm.Region.writeback r ~tid:0 ~off:128 ~len:70 (* spans 2 lines *);
  Nvm.Region.sfence r ~tid:0;
  let s = Nvm.Region.stats r in
  Alcotest.(check int) "writebacks" 3 s.Nvm.Region.writebacks;
  Alcotest.(check int) "fences" 1 s.Nvm.Region.fences;
  Alcotest.(check int) "lines persisted" 3 s.Nvm.Region.lines_persisted

let test_queue_overflow_drains () =
  (* pushing more lines than the queue capacity must not lose data *)
  let r = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:2 ~capacity:(1 lsl 20) () in
  for i = 0 to 5000 do
    Nvm.Region.set_i64 r ~off:(i * 64) i;
    Nvm.Region.writeback r ~tid:0 ~off:(i * 64) ~len:8
  done;
  Nvm.Region.sfence r ~tid:0;
  Nvm.Region.crash r;
  let ok = ref true in
  for i = 0 to 5000 do
    if Nvm.Region.get_i64 r ~off:(i * 64) <> i then ok := false
  done;
  Alcotest.(check bool) "all 5001 lines durable" true !ok

let qcheck_crash_keeps_persisted_prefix =
  QCheck.Test.make ~name:"every fenced write survives any crash" ~count:100
    QCheck.(pair small_int (list (pair (int_range 0 200) (int_range 0 255))))
    (fun (seed, writes) ->
      let r = make_region () in
      let rng = Util.Xoshiro.create seed in
      (* a slot's fenced value is only guaranteed if no later unfenced
         write dirtied the line again (eviction may persist the newer
         value, as on real hardware) *)
      let fenced = Hashtbl.create 16 in
      List.iter
        (fun (slot, v) ->
          let off = slot * 64 in
          Nvm.Region.set_u8 r ~off v;
          if Util.Xoshiro.bool rng then begin
            Nvm.Region.persist r ~tid:0 ~off ~len:1;
            Hashtbl.replace fenced slot v
          end
          else Hashtbl.remove fenced slot)
        writes;
      Nvm.Region.crash ~persist_unfenced:0.5 ~evict_dirty:0.3 ~rng r;
      Hashtbl.fold (fun slot v acc -> acc && Nvm.Region.get_u8 r ~off:(slot * 64) = v) fenced true)

let () =
  Alcotest.run "nvm"
    [
      ( "data",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "scalar accessors" `Quick test_scalar_accessors;
          Alcotest.test_case "bounds checked" `Quick test_out_of_bounds_rejected;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "unflushed lost" `Quick test_unflushed_lost_on_crash;
          Alcotest.test_case "flushed-unfenced lost" `Quick test_flushed_unfenced_lost_by_default;
          Alcotest.test_case "persisted survives" `Quick test_persisted_survives_crash;
          Alcotest.test_case "fence is per-thread" `Quick test_fence_is_per_thread;
          Alcotest.test_case "line granularity" `Quick test_line_granular_persistence;
          Alcotest.test_case "crash resets queues" `Quick test_crash_resets_queues;
          Alcotest.test_case "queue overflow drains" `Quick test_queue_overflow_drains;
          QCheck_alcotest.to_alcotest qcheck_crash_keeps_persisted_prefix;
        ] );
      ( "injection",
        [
          Alcotest.test_case "persist unfenced" `Quick test_persist_unfenced_injection;
          Alcotest.test_case "evict dirty" `Quick test_evict_dirty_injection;
          Alcotest.test_case "transient bypass" `Quick test_transient_access_not_persisted;
        ] );
      ("stats", [ Alcotest.test_case "counting" `Quick test_stats_counting ]);
    ]
