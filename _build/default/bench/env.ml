(* Benchmark scaling knobs, settable from the environment.

   The paper ran 30 s per data point on an 80-hyperthread, 1.5 TB-NVM
   server; defaults here are scaled so the full suite finishes in a few
   minutes on a small container while preserving every comparison.

     BENCH_ONLY=fig7          run a single figure (fig4..fig12,
                              recovery, bechamel; comma-separated)
     BENCH_DURATION_MS=400    per-point measurement window
     BENCH_THREADS="1 2 4"    thread counts for scaling sweeps
     BENCH_PRELOAD=20000      map preload (paper: 500,000)
     BENCH_VALUE=1024         value size in bytes (paper: 1 KB)
     BENCH_FULL=1             paper-scale parameters (slow) *)

let getenv_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let full = Sys.getenv_opt "BENCH_FULL" = Some "1"

let duration_s = float_of_int (getenv_int "BENCH_DURATION_MS" (if full then 5000 else 400)) /. 1000.0

let threads =
  match Sys.getenv_opt "BENCH_THREADS" with
  | Some s -> String.split_on_char ' ' s |> List.filter (( <> ) "") |> List.map int_of_string
  | None -> if full then [ 1; 2; 4; 8; 16 ] else [ 1; 2; 4 ]

let max_threads = List.fold_left max 1 threads

let preload = getenv_int "BENCH_PRELOAD" (if full then 500_000 else 20_000)
let value_size = getenv_int "BENCH_VALUE" 1024

let only =
  match Sys.getenv_opt "BENCH_ONLY" with
  | None -> None
  | Some s -> Some (String.split_on_char ',' s)

let selected name = match only with None -> true | Some l -> List.mem name l

(* Graph-benchmark scale *)
let graph_capacity = getenv_int "BENCH_GRAPH_CAP" (if full then 1_000_000 else 20_000)
let graph_degree = getenv_int "BENCH_GRAPH_DEGREE" (if full then 32 else 8)

(* Recovery-table scale: dataset sizes in MB *)
let recovery_sizes_mb =
  match Sys.getenv_opt "BENCH_RECOVERY_MB" with
  | Some s -> String.split_on_char ' ' s |> List.filter (( <> ) "") |> List.map int_of_string
  | None -> if full then [ 1024; 4096 ] else [ 16; 64 ]
