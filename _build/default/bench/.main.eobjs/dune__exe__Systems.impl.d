bench/systems.ml: Atomic Baselines Domain Hashtbl List Montage Nvm Pstructs Unix
