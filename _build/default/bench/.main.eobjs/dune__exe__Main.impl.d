bench/main.ml: Bechamel_suite Benchlib Env Figures List Printf String Systems
