bench/bechamel_suite.ml: Analyze Bechamel Benchlib Benchmark Char Hashtbl Instance Kvstore List Measure Montage Printf Pstructs Staged String Systems Test Time Toolkit
