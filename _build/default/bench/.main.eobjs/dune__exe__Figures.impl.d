bench/figures.ml: Array Baselines Benchlib Char Domain Env Kvstore Lazy List Montage Nvm Printexc Printf Pstructs String Systems Util
