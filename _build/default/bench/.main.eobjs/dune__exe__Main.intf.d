bench/main.mli:
