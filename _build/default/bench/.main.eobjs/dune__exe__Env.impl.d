bench/env.ml: List String Sys
