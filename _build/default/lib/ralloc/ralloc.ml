(* Ralloc-style nonblocking persistent allocator (Cai et al., ISMM '20),
   adapted for Montage.

   The heap is carved into 64 KB superblocks.  A superblock is bound to
   one size class when first used; the binding is the *only* persistent
   allocator metadata (one header line per superblock, persisted once).
   Everything else — free lists, per-thread caches, the bump frontier —
   is transient and rebuilt after a crash by [recover], which sweeps the
   superblock headers and asks the client which blocks are live
   (Montage answers by reading payload headers and applying its
   epoch/uid rules).

   Allocation fast path: pop from the calling thread's cache; on miss,
   refill from the class's lock-free global list; on miss again, carve
   a fresh superblock.  No write-back or fence is ever issued on the
   alloc/free path, matching Ralloc's key property. *)

(* This module shares the library's name, so it is the library root;
   re-export the building blocks for clients and tests. *)
module Size_class = Size_class
module Free_list = Free_list

let superblock_size = 65536
let header_size = 64
let magic = 0x52414C43 (* "RALC" *)

type t = {
  region : Nvm.Region.t;
  heap_base : int;
  heap_end : int;
  bump : int Atomic.t; (* next unused superblock offset *)
  global : Free_list.t array; (* one per size class *)
  sb_class : int array; (* transient: class of each superblock, -1 if unused *)
  caches : int array array array; (* caches.(tid).(class) = offsets *)
  cache_len : int array array;
  cache_capacity : int;
  carve_lock : Util.Spin_lock.t;
}

let sb_index t off = (off - t.heap_base) / superblock_size

let create ?(cache_capacity = 32) region ~heap_base =
  let capacity = Nvm.Region.capacity region in
  let heap_base = (heap_base + superblock_size - 1) / superblock_size * superblock_size in
  if heap_base >= capacity then invalid_arg "Ralloc.create: heap_base beyond capacity";
  let heap_end = capacity / superblock_size * superblock_size in
  let max_threads = Nvm.Region.max_threads region in
  {
    region;
    heap_base;
    heap_end;
    bump = Atomic.make heap_base;
    global = Array.init Size_class.count (fun _ -> Free_list.create ());
    sb_class = Array.make ((heap_end - heap_base) / superblock_size) (-1);
    caches =
      Array.init max_threads (fun _ ->
          Array.init Size_class.count (fun _ -> Array.make cache_capacity 0));
    cache_len = Array.init max_threads (fun _ -> Array.make Size_class.count 0);
    cache_capacity;
    carve_lock = Util.Spin_lock.create ();
  }

exception Out_of_memory

(* Bind a fresh superblock to [cls], push its blocks on the global list,
   and persist the header so the recovery sweep can find it.  Carving is
   serialized by a lock so a crash leaves at most one claimed-but-
   headerless superblock (≤ 64 KB leaked, reclaimed on the next full
   sweep); this is a rare slow path — once per 64 KB of allocation. *)
let carve_superblock t ~tid cls =
  Util.Spin_lock.with_lock t.carve_lock (fun () ->
      let sb = Atomic.get t.bump in
      if sb >= t.heap_end then raise Out_of_memory;
      t.sb_class.(sb_index t sb) <- cls;
      Nvm.Region.set_i32 t.region ~off:sb magic;
      Nvm.Region.set_i32 t.region ~off:(sb + 4) cls;
      Nvm.Region.persist t.region ~tid ~off:sb ~len:8;
      Atomic.set t.bump (sb + superblock_size);
      let block_size = Size_class.size_of cls in
      let blocks = (superblock_size - header_size) / block_size in
      for i = blocks - 1 downto 0 do
        Free_list.push t.region t.global.(cls) (sb + header_size + (i * block_size))
      done)

let rec refill t ~tid cls =
  match Free_list.pop t.region t.global.(cls) with
  | Some off -> off
  | None ->
      carve_superblock t ~tid cls;
      refill t ~tid cls

let alloc t ~tid ~size =
  let cls = Size_class.index_of size in
  let cache = t.caches.(tid).(cls) in
  let n = t.cache_len.(tid).(cls) in
  if n > 0 then begin
    t.cache_len.(tid).(cls) <- n - 1;
    cache.(n - 1)
  end
  else refill t ~tid cls

let block_class t off =
  let cls = t.sb_class.(sb_index t off) in
  assert (cls >= 0);
  cls

let block_size t off = Size_class.size_of (block_class t off)

let free t ~tid off =
  let cls = block_class t off in
  let cache = t.caches.(tid).(cls) in
  let n = t.cache_len.(tid).(cls) in
  if n < t.cache_capacity then begin
    cache.(n) <- off;
    t.cache_len.(tid).(cls) <- n + 1
  end
  else begin
    (* cache full: spill half to the global list, keep the rest local *)
    let keep = t.cache_capacity / 2 in
    for i = keep to n - 1 do
      Free_list.push t.region t.global.(cls) cache.(i)
    done;
    cache.(keep) <- off;
    t.cache_len.(tid).(cls) <- keep + 1
  end

(* ---- recovery ---- *)

(* Enumerate the blocks of every [slices]-th bound superblock starting
   at superblock index [slice] — the unit of parallel recovery.  Order
   within a slice is address order. *)
let iter_blocks_slice t ~slice ~slices f =
  let off = ref (t.heap_base + (slice * superblock_size)) in
  let stride = slices * superblock_size in
  while !off < Atomic.get t.bump do
    let sb = !off in
    if Nvm.Region.get_i32 t.region ~off:sb = magic then begin
      let cls = Nvm.Region.get_i32 t.region ~off:(sb + 4) in
      if cls >= 0 && cls < Size_class.count then begin
        let block_size = Size_class.size_of cls in
        let blocks = (superblock_size - header_size) / block_size in
        for i = 0 to blocks - 1 do
          f ~off:(sb + header_size + (i * block_size)) ~size:block_size
        done
      end
    end;
    off := sb + stride
  done

(* Enumerate every block of every bound superblock, reading headers from
   the post-crash image.  Order is address order. *)
let iter_blocks t f = iter_blocks_slice t ~slice:0 ~slices:1 f

(* Post-crash recovery runs in two phases so the client can inspect the
   swept blocks between them (Montage's uid/epoch filtering needs a full
   pass over all payload headers before liveness can be decided):

   1. [rescan] rebinds superblocks from their media headers and resets
      all transient metadata; after it, [iter_blocks] is usable.
   2. [sweep ~live] walks every block and returns the dead ones to the
      free lists, consulting the client's liveness oracle.

   The rescan covers the whole heap range and tolerates a gap — a
   superblock claimed but whose header never persisted — by rebinding
   everything up to the last header found. *)
let rescan t =
  Array.fill t.sb_class 0 (Array.length t.sb_class) (-1);
  let frontier = ref t.heap_base in
  let sb = ref t.heap_base in
  while !sb < t.heap_end do
    if Nvm.Region.get_i32 t.region ~off:!sb = magic then begin
      let cls = Nvm.Region.get_i32 t.region ~off:(!sb + 4) in
      if cls >= 0 && cls < Size_class.count then begin
        t.sb_class.(sb_index t !sb) <- cls;
        frontier := !sb + superblock_size
      end
    end;
    sb := !sb + superblock_size
  done;
  Atomic.set t.bump !frontier;
  Array.iter (fun fl -> Atomic.set fl.Free_list.head 0) t.global;
  Array.iter (fun per_class -> Array.fill per_class 0 (Array.length per_class) 0) t.cache_len

let sweep_slice t ~slice ~slices ~live =
  iter_blocks_slice t ~slice ~slices (fun ~off ~size:_ ->
      if not (live off) then Free_list.push t.region t.global.(block_class t off) off)

let sweep t ~live = sweep_slice t ~slice:0 ~slices:1 ~live

let recover t ~live =
  rescan t;
  sweep t ~live

(* Diagnostics *)
let allocated_superblocks t = (Atomic.get t.bump - t.heap_base) / superblock_size

let free_blocks t cls = Free_list.length t.region t.global.(cls)
