(** Ralloc-style nonblocking persistent allocator (Cai et al.,
    ISMM '20), adapted for Montage.

    The heap is carved into 64 KB superblocks, each bound to one size
    class on first use; the binding is the only persistent allocator
    metadata.  Free lists, per-thread caches and the bump frontier are
    transient and rebuilt after a crash by the recovery sweep.  No
    write-back or fence is issued on the alloc/free fast path. *)

module Size_class : sig
  (** Segregated size classes, 64 B to 8 KB in powers of two; every
      class is a multiple of the 64 B line size. *)

  val classes : int array
  val count : int
  val max_size : int

  (** Smallest class index whose blocks fit [size] bytes.
      @raise Invalid_argument when [size <= 0 || size > max_size]. *)
  val index_of : int -> int

  val size_of : int -> int
end

module Free_list : sig
  (** Lock-free intrusive Treiber stack of block offsets; next pointers
      live in the free blocks' transient bytes, the head packs a
      version against ABA. *)

  type t = { head : int Atomic.t }

  val create : unit -> t
  val is_empty : t -> bool
  val push : Nvm.Region.t -> t -> int -> unit
  val pop : Nvm.Region.t -> t -> int option

  (** O(n); diagnostics only. *)
  val length : Nvm.Region.t -> t -> int
end

type t

exception Out_of_memory

val superblock_size : int

(** [create region ~heap_base] manages [heap_base, capacity) (rounded
    to superblocks).  [cache_capacity] bounds each per-thread cache. *)
val create : ?cache_capacity:int -> Nvm.Region.t -> heap_base:int -> t

(** Allocate a block of the size class covering [size]; returns its
    region offset.  Lock-free fast path (thread cache, then global
    list); carving a fresh superblock persists one header line.
    @raise Out_of_memory when the heap is exhausted. *)
val alloc : t -> tid:int -> size:int -> int

val free : t -> tid:int -> int -> unit

(** Size class of the block at [off] (from its superblock binding). *)
val block_size : t -> int -> int

(** {1 Recovery} *)

(** Rebind superblocks from their persistent headers and reset all
    transient metadata.  After it, {!iter_blocks} is usable; gaps
    (claimed superblocks whose header never persisted) are skipped. *)
val rescan : t -> unit

(** Walk every block of every bound superblock (address order),
    returning dead ones to the free lists per the [live] oracle. *)
val sweep : t -> live:(int -> bool) -> unit

(** Sweep one parallel-recovery slice; disjoint slices may run in
    concurrent domains (the free lists are lock-free). *)
val sweep_slice : t -> slice:int -> slices:int -> live:(int -> bool) -> unit

(** [rescan] then [sweep]. *)
val recover : t -> live:(int -> bool) -> unit

(** Enumerate every block of every bound superblock. *)
val iter_blocks : t -> (off:int -> size:int -> unit) -> unit

(** Enumerate the blocks of every [slices]-th superblock starting at
    index [slice] — the unit of parallel recovery (disjoint slices
    partition the heap). *)
val iter_blocks_slice : t -> slice:int -> slices:int -> (off:int -> size:int -> unit) -> unit

(** {1 Diagnostics} *)

val allocated_superblocks : t -> int
val free_blocks : t -> int -> int
