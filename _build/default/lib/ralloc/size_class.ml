(* Segregated size classes, 64 B to 8 KB in powers of two.

   Montage payloads in the paper's experiments range from 16 B values to
   4 KB values plus a small header, so eight classes suffice.  Each
   class is a multiple of the 64 B line size, which keeps every block
   line-aligned — a property the write-back machinery relies on. *)

let classes = [| 64; 128; 256; 512; 1024; 2048; 4096; 8192 |]
let count = Array.length classes
let max_size = classes.(count - 1)

(* Smallest class index whose blocks fit [size] bytes. *)
let index_of size =
  if size <= 0 || size > max_size then
    invalid_arg (Printf.sprintf "Size_class.index_of: size %d out of range" size);
  let rec find i = if classes.(i) >= size then i else find (i + 1) in
  find 0

let size_of idx = classes.(idx)
