lib/ralloc/ralloc.ml: Array Atomic Free_list Nvm Size_class Util
