lib/ralloc/free_list.ml: Atomic Nvm
