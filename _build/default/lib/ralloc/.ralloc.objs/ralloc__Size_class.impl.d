lib/ralloc/size_class.ml: Array Printf
