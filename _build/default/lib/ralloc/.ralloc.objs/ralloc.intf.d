lib/ralloc/ralloc.mli: Atomic Nvm
