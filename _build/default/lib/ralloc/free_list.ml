(* Lock-free intrusive free list (Treiber stack) of block offsets.

   The next pointer lives in the first 8 bytes of each free block's
   *working* copy — transient data, exactly as in Ralloc, where
   allocator metadata is never persisted and is rebuilt by the recovery
   sweep.  The head packs a 23-bit version with the 40-bit offset to
   defeat ABA:

       head = (version << 40) | (offset + 1)        (0 means empty)

   Offsets are +1-biased so that offset 0 is representable. *)

type t = { head : int Atomic.t }

let create () = { head = Atomic.make 0 }

let offset_bits = 40
let offset_mask = (1 lsl offset_bits) - 1

let pack ~version ~off = ((version land 0x7FFFFF) lsl offset_bits) lor ((off + 1) land offset_mask)
let unpack_off packed = (packed land offset_mask) - 1
let unpack_version packed = packed lsr offset_bits

let is_empty t = Atomic.get t.head land offset_mask = 0

let rec push region t off =
  let old = Atomic.get t.head in
  let next = unpack_off old in
  Nvm.Region.transient_set_i64 region ~off (next + 1);
  let fresh = pack ~version:(unpack_version old + 1) ~off in
  if not (Atomic.compare_and_set t.head old fresh) then push region t off

let rec pop region t =
  let old = Atomic.get t.head in
  let off = unpack_off old in
  if off < 0 then None
  else begin
    let next = Nvm.Region.transient_get_i64 region ~off - 1 in
    let fresh = pack ~version:(unpack_version old + 1) ~off:next in
    if Atomic.compare_and_set t.head old fresh then Some off else pop region t
  end

(* Number of blocks currently chained (O(n); diagnostics only). *)
let length region t =
  let rec count off acc =
    if off < 0 then acc else count (Nvm.Region.transient_get_i64 region ~off - 1) (acc + 1)
  in
  count (unpack_off (Atomic.get t.head)) 0
