(* Zipfian sampler following the YCSB core-workload generator
   (Gray et al.'s algorithm).  Sampling is O(1) after an O(n) zeta
   precomputation, and the distribution can optionally be scrambled with
   an FNV hash so that hot keys are scattered across the key space, as
   YCSB does. *)

type t = {
  items : int;
  theta : float;
  zetan : float;
  zeta2 : float;
  alpha : float;
  eta : float;
  scrambled : bool;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = 0.99) ?(scrambled = true) items =
  if items <= 0 then invalid_arg "Zipf.create: items must be positive";
  let zetan = zeta items theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int items) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { items; theta; zetan; zeta2; alpha; eta; scrambled }

let fnv_hash64 v =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  let v = ref (Int64.of_int v) in
  for _ = 0 to 7 do
    let octet = Int64.logand !v 0xFFL in
    h := Int64.mul (Int64.logxor !h octet) prime;
    v := Int64.shift_right_logical !v 8
  done;
  (* shift by 2 so the result fits OCaml's 63-bit int non-negatively *)
  Int64.to_int (Int64.shift_right_logical !h 2)

let sample t rng =
  let u = Xoshiro.float rng in
  let uz = u *. t.zetan in
  let rank =
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
    else
      int_of_float
        (float_of_int t.items
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
  in
  let rank = if rank >= t.items then t.items - 1 else rank in
  if t.scrambled then fnv_hash64 rank mod t.items else rank

(* Uniform sampler with the same interface, for mixed workloads. *)
let uniform items rng = Xoshiro.int rng items
