(* Log-scale latency histogram: 64 power-of-two buckets of nanoseconds.
   Single-writer; benchmark threads keep one each and merge at the end. *)

type t = { buckets : int array; mutable count : int; mutable sum : int }

let create () = { buckets = Array.make 64 0; count = 0; sum = 0 }

let bucket_of ns =
  if ns <= 0 then 0
  else
    let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
    min 63 (log2 ns 0)

let record t ns =
  t.buckets.(bucket_of ns) <- t.buckets.(bucket_of ns) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + ns

let merge_into ~dst src =
  Array.iteri (fun i v -> dst.buckets.(i) <- dst.buckets.(i) + v) src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum

let count t = t.count
let mean_ns t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Upper bound of the bucket containing the q-quantile (q in [0,1]). *)
let quantile_ns t q =
  if t.count = 0 then 0
  else begin
    let target = int_of_float (q *. float_of_int t.count) in
    let seen = ref 0 and result = ref 0 in
    (try
       for i = 0 to 63 do
         seen := !seen + t.buckets.(i);
         if !seen > target then begin
           result := 1 lsl i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end
