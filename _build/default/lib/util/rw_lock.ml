(* Reader-writer lock built on a mutex and condition variable.

   Like Spin_lock, this blocks rather than spins: with more domains
   than cores, a spinning writer starves the readers it is waiting out.
   Writer preference is not enforced — at benchmark read/write ratios
   this is immaterial. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable readers : int; (* -1 = writer holds it *)
}

let create () = { mutex = Mutex.create (); cond = Condition.create (); readers = 0 }

let read_acquire t =
  Mutex.lock t.mutex;
  while t.readers < 0 do
    Condition.wait t.cond t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_release t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let write_acquire t =
  Mutex.lock t.mutex;
  while t.readers <> 0 do
    Condition.wait t.cond t.mutex
  done;
  t.readers <- -1;
  Mutex.unlock t.mutex

let write_release t =
  Mutex.lock t.mutex;
  t.readers <- 0;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let with_read t f =
  read_acquire t;
  match f () with
  | v ->
      read_release t;
      v
  | exception e ->
      read_release t;
      raise e

let with_write t f =
  write_acquire t;
  match f () with
  | v ->
      write_release t;
      v
  | exception e ->
      write_release t;
      raise e
