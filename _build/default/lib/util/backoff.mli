(** Spin-then-yield backoff for wait loops: a short [Domain.cpu_relax]
    phase, then microsecond sleeps that actually yield the core —
    essential when domains outnumber cores. *)

type t

val create : unit -> t

(** One wait step; escalates from pipeline-relax to an OS yield. *)
val once : t -> unit

val reset : t -> unit
