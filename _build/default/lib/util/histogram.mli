(** Log-scale latency histogram: 64 power-of-two nanosecond buckets.
    Single-writer; merge per-thread instances at the end of a run. *)

type t

val create : unit -> t
val record : t -> int -> unit
val merge_into : dst:t -> t -> unit
val count : t -> int
val mean_ns : t -> float

(** Upper bound of the bucket containing the [q]-quantile, [q] in
    [0, 1]. *)
val quantile_ns : t -> float -> int
