(** Mutual-exclusion lock for short critical sections.

    Backed by an OS mutex rather than a pure spin: with more domains
    than cores a spinning waiter burns the timeslice the holder needs.
    The module keeps its historical name; call sites are agnostic. *)

type t

val create : unit -> t
val acquire : t -> unit
val try_acquire : t -> bool
val release : t -> unit

(** Run [f] holding the lock; released on return or raise. *)
val with_lock : t -> (unit -> 'a) -> 'a
