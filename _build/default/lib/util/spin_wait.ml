(* Calibrated busy-wait with nanosecond resolution.

   The NVM latency model charges ~100 ns per write-back; a clock-reading
   loop at that scale would measure mostly its own overhead, so we
   calibrate how many arithmetic iterations one nanosecond costs at
   startup and spin for the requested count.  Calibration uses
   [Unix.gettimeofday] over a long-enough window to be accurate. *)

let clock_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* A side-effecting loop the compiler cannot remove. *)
let sink = ref 0

let burn iterations =
  let acc = ref !sink in
  for i = 1 to iterations do
    acc := (!acc * 0x9E3779B1) + i
  done;
  sink := !acc

let iters_per_ns = ref 0.0

let calibrate () =
  let trial iterations =
    let t0 = clock_ns () in
    burn iterations;
    let t1 = clock_ns () in
    Int64.to_int (Int64.sub t1 t0)
  in
  (* warm up, then average three calibration runs of ~5 ms each *)
  ignore (trial 100_000);
  let iterations = 5_000_000 in
  let total = trial iterations + trial iterations + trial iterations in
  let ns = max 1 (total / 3) in
  iters_per_ns := float_of_int iterations /. float_of_int ns

let () = calibrate ()

let ns n =
  if n > 0 then burn (int_of_float (float_of_int n *. !iters_per_ns))

(* Monotonic-ish wall clock for throughput measurement (microsecond
   resolution is ample for multi-second benchmark windows). *)
let now_ns = clock_ns
let now_s () = Unix.gettimeofday ()
