(** Xoshiro256** pseudo-random generator (Blackman & Vigna):
    deterministic, fast, and splittable, so each benchmark thread gets
    an independent reproducible stream.  Not cryptographic. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Non-negative int in [0, 2^62). *)
val next_int : t -> int

(** Uniform in [0, bound).  @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Derive an independent stream. *)
val split : t -> t
