(** Reader-writer lock (mutex + condition variable; blocking, not
    spinning).  No writer preference. *)

type t

val create : unit -> t
val read_acquire : t -> unit
val read_release : t -> unit
val write_acquire : t -> unit
val write_release : t -> unit
val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a
