(** False-sharing avoidance: logical atomic-int slots spaced far enough
    apart that two threads' hot counters never share a cache line. *)

type counters

val make_counters : int -> counters
val get : counters -> int -> int
val set : counters -> int -> int -> unit
val incr : counters -> int -> unit
val add : counters -> int -> int -> unit
val sum : counters -> int
