(** Zipfian sampler following the YCSB core-workload generator:
    O(1) sampling after an O(n) zeta precomputation, optionally
    scrambled so hot keys scatter across the key space. *)

type t

(** [create ?theta ?scrambled items].  [theta] defaults to YCSB's
    0.99; [scrambled] (default true) FNV-hashes ranks. *)
val create : ?theta:float -> ?scrambled:bool -> int -> t

(** A sample in [0, items). *)
val sample : t -> Xoshiro.t -> int

(** Uniform sampler with the same interface. *)
val uniform : int -> Xoshiro.t -> int
