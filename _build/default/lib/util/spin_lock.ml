(* Mutual-exclusion lock for short critical sections.

   Implemented over an OS mutex rather than a pure TTAS spin: with more
   domains than cores (this container has one core), a spinning waiter
   burns the very timeslice the lock holder needs, stalling every
   structure for milliseconds per preemption.  Blocking in the kernel
   hands the core straight back to the holder.  [try_acquire] keeps the
   one-CAS-equivalent fast path for callers that poll.

   The module keeps its historical name; call sites are agnostic. *)

type t = { mutex : Mutex.t }

let create () = { mutex = Mutex.create () }

let acquire t = Mutex.lock t.mutex
let try_acquire t = Mutex.try_lock t.mutex
let release t = Mutex.unlock t.mutex

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e
