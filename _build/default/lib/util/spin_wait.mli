(** Calibrated busy-wait with nanosecond resolution, used to realize
    the NVM latency model as real elapsed time.  Calibrated once at
    startup. *)

(** Burn approximately [n] nanoseconds of CPU. *)
val ns : int -> unit

(** Wall clock in nanoseconds (microsecond resolution). *)
val now_ns : unit -> int64

(** Wall clock in seconds. *)
val now_s : unit -> float
