lib/util/xoshiro.ml: Int64
