lib/util/spin_lock.ml: Mutex
