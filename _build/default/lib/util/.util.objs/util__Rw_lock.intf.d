lib/util/rw_lock.mli:
