lib/util/backoff.mli:
