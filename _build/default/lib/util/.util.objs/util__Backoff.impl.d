lib/util/backoff.ml: Domain Unix
