lib/util/histogram.mli:
