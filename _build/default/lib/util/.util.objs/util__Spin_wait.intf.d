lib/util/spin_wait.mli:
