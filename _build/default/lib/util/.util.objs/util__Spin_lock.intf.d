lib/util/spin_lock.mli:
