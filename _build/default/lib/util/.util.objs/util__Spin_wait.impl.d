lib/util/spin_wait.ml: Int64 Unix
