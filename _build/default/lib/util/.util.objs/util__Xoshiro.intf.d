lib/util/xoshiro.mli:
