lib/util/padded.mli:
