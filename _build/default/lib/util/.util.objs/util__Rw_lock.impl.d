lib/util/rw_lock.ml: Condition Mutex
