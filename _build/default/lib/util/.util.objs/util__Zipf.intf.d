lib/util/zipf.mli: Xoshiro
