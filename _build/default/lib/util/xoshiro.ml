(* Xoshiro256** pseudo-random generator (Blackman & Vigna).

   Deterministic, fast, and splittable: each benchmark thread derives its
   own stream with [split], so workloads are reproducible regardless of
   scheduling.  Not cryptographic. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64, used to expand a seed into the initial state. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

(* Non-negative int in [0, 2^62). *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound must be positive";
  next_int t mod bound

let float t =
  (* 53 high bits, uniform in [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Derive an independent stream: jump via reseeding through splitmix. *)
let split t =
  let seed = Int64.to_int (next_int64 t) in
  create seed
