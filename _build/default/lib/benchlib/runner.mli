(** Fixed-duration throughput measurement: spawn domains, run the body
    in a loop until the deadline, report aggregate ops/s.  Per-thread
    RNGs make workloads deterministic modulo scheduling. *)

type result = { ops : int; seconds : float; ops_per_sec : float }

(** One timed window. *)
val throughput_once :
  ?seed:int -> threads:int -> duration_s:float -> (tid:int -> rng:Util.Xoshiro.t -> unit) -> result

(** Best of [repeats] windows (default 2): on a shared single-core host
    the minimum-interference run is the faithful one. *)
val throughput :
  ?seed:int ->
  ?repeats:int ->
  threads:int ->
  duration_s:float ->
  (tid:int -> rng:Util.Xoshiro.t -> unit) ->
  result

(** Time a thunk; returns (result, seconds). *)
val time : (unit -> 'a) -> 'a * float
