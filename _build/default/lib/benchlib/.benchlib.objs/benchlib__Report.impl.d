lib/benchlib/report.ml: Float List Printf String
