lib/benchlib/runner.mli: Util
