lib/benchlib/runner.ml: Array Atomic Domain Util
