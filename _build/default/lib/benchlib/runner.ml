(* Fixed-duration throughput measurement.

   [throughput ~threads ~duration_s body] spawns [threads] domains;
   each runs [body ~tid ~rng] in a loop until the deadline, checking
   the clock every [batch] iterations.  A start barrier aligns the
   domains; per-thread RNGs make workloads deterministic modulo
   scheduling.  Returns aggregate operations per second.

   The host has few cores, so thread counts here are *offered
   concurrency*, not parallel speedup — DESIGN.md discusses why the
   cross-system comparison (the paper's claim) survives this. *)

let batch = 32

type result = { ops : int; seconds : float; ops_per_sec : float }

let throughput_once ?(seed = 0xC0FFEE) ~threads ~duration_s body =
  let barrier = Atomic.make threads in
  let totals = Array.make threads 0 in
  let master = Util.Xoshiro.create seed in
  let rngs = Array.init threads (fun _ -> Util.Xoshiro.split master) in
  let started = ref 0.0 in
  let worker tid =
    let rng = rngs.(tid) in
    Atomic.decr barrier;
    while Atomic.get barrier > 0 do
      Domain.cpu_relax ()
    done;
    if tid = 0 then started := Util.Spin_wait.now_s ();
    let deadline = Util.Spin_wait.now_s () +. duration_s in
    let ops = ref 0 in
    let running = ref true in
    while !running do
      for _ = 1 to batch do
        body ~tid ~rng
      done;
      ops := !ops + batch;
      if Util.Spin_wait.now_s () >= deadline then running := false
    done;
    totals.(tid) <- !ops
  in
  if threads = 1 then worker 0
  else begin
    let domains = Array.init threads (fun tid -> Domain.spawn (fun () -> worker tid)) in
    Array.iter Domain.join domains
  end;
  let ops = Array.fold_left ( + ) 0 totals in
  let seconds = duration_s in
  { ops; seconds; ops_per_sec = float_of_int ops /. seconds }

(* Best of [repeats] runs: on a shared, single-core host the minimum-
   interference run is the faithful one. *)
let throughput ?seed ?(repeats = 2) ~threads ~duration_s body =
  let rec go best n =
    if n = 0 then best
    else
      let r = throughput_once ?seed ~threads ~duration_s body in
      go (if r.ops_per_sec > best.ops_per_sec then r else best) (n - 1)
  in
  go (throughput_once ?seed ~threads ~duration_s body) (repeats - 1)

(* Time a single thunk (setup/recovery measurements). *)
let time f =
  let t0 = Util.Spin_wait.now_s () in
  let result = f () in
  (result, Util.Spin_wait.now_s () -. t0)
