lib/nvm/latency.ml: Util
