lib/nvm/region.mli: Latency Util
