lib/nvm/latency.mli:
