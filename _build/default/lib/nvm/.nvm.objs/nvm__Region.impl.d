lib/nvm/region.ml: Array Bytes Char Int32 Int64 Latency Printf String Util
