(* memcached text-protocol codec and connection state machine.

   The paper's memcached variant dispenses with sockets (clients link
   the store directly), but a store that speaks the wire protocol is
   what makes the library adoptable: [feed] consumes raw bytes from any
   transport and produces protocol replies, handling pipelining,
   [noreply], and binary-safe data blocks (which may contain \r\n).

   Supported commands: get/gets, set/add/replace/append/prepend,
   delete, incr/decr, touch, version, verbosity, stats, quit.
   cas is parsed but answered with EXISTS/NOT_FOUND semantics against
   the store's cas ids. *)

type pending = {
  op : storage_op;
  key : string;
  flags : int;
  exptime : int;
  bytes : int;
  noreply : bool;
}

and storage_op = Set | Add | Replace | Append | Prepend | Cas of int

type state = Idle | Awaiting of pending

type conn = {
  store : Store.t;
  tid : int;
  buf : Buffer.t; (* unconsumed input *)
  mutable state : state;
  mutable closed : bool;
}

let create store ~tid = { store; tid; buf = Buffer.create 256; state = Idle; closed = false }
let is_closed c = c.closed

let crlf = "\r\n"

(* ---- command execution ---- *)

let exec_storage c op key flags exptime data =
  let ttl_s =
    (* memcached: 0 = never; <= 30 days is relative seconds *)
    if exptime = 0 then 0.0 else float_of_int exptime
  in
  match op with
  | Set ->
      Store.set c.store ~tid:c.tid ~flags ~ttl_s key data;
      "STORED"
  | Add -> if Store.add c.store ~tid:c.tid ~flags ~ttl_s key data then "STORED" else "NOT_STORED"
  | Replace ->
      if Store.replace c.store ~tid:c.tid ~flags ~ttl_s key data then "STORED" else "NOT_STORED"
  | Append -> (
      match Store.get_full c.store ~tid:c.tid key with
      | Some (old, old_flags, _) ->
          Store.set c.store ~tid:c.tid ~flags:old_flags ~ttl_s key (old ^ data);
          "STORED"
      | None -> "NOT_STORED")
  | Prepend -> (
      match Store.get_full c.store ~tid:c.tid key with
      | Some (old, old_flags, _) ->
          Store.set c.store ~tid:c.tid ~flags:old_flags ~ttl_s key (data ^ old);
          "STORED"
      | None -> "NOT_STORED")
  | Cas expected -> (
      match Store.get_full c.store ~tid:c.tid key with
      | None -> "NOT_FOUND"
      | Some (_, _, cas) when cas <> expected -> "EXISTS"
      | Some _ ->
          Store.set c.store ~tid:c.tid ~flags ~ttl_s key data;
          "STORED")

let exec_get c ~with_cas keys =
  let out = Buffer.create 128 in
  List.iter
    (fun key ->
      match Store.get_full c.store ~tid:c.tid key with
      | Some (data, flags, cas) ->
          if with_cas then
            Buffer.add_string out
              (Printf.sprintf "VALUE %s %d %d %d%s" key flags (String.length data) cas crlf)
          else
            Buffer.add_string out
              (Printf.sprintf "VALUE %s %d %d%s" key flags (String.length data) crlf);
          Buffer.add_string out data;
          Buffer.add_string out crlf
      | None -> ())
    keys;
  Buffer.add_string out "END";
  Buffer.contents out

let exec_stats c =
  let hits, misses, sets, deletes, expired = Store.stats c.store in
  String.concat crlf
    [
      Printf.sprintf "STAT get_hits %d" hits;
      Printf.sprintf "STAT get_misses %d" misses;
      Printf.sprintf "STAT cmd_set %d" sets;
      Printf.sprintf "STAT delete_hits %d" deletes;
      Printf.sprintf "STAT expired_unfetched %d" expired;
      "END";
    ]

(* ---- line parsing ---- *)

let split_words line = String.split_on_char ' ' line |> List.filter (( <> ) "")

(* A storage command consumes a following data block of [bytes] +\r\n. *)
type step =
  | Reply of string option (* None = noreply *)
  | Need_data of pending
  | Close of string option

let int_arg s = int_of_string_opt s

let parse_storage op args =
  (* <key> <flags> <exptime> <bytes> [cas] [noreply] *)
  match args with
  | key :: flags :: exptime :: bytes :: rest -> (
      match (int_arg flags, int_arg exptime, int_arg bytes) with
      | Some flags, Some exptime, Some bytes when bytes >= 0 ->
          let op, rest =
            match (op, rest) with
            | `Cas, cas :: tail -> (
                match int_arg cas with
                | Some c -> (Some (Cas c), tail)
                | None -> (None, rest))
            | `Cas, [] -> (None, [])
            | `Set, _ -> (Some Set, rest)
            | `Add, _ -> (Some Add, rest)
            | `Replace, _ -> (Some Replace, rest)
            | `Append, _ -> (Some Append, rest)
            | `Prepend, _ -> (Some Prepend, rest)
          in
          let noreply = rest = [ "noreply" ] in
          (match op with
          | Some op when rest = [] || noreply -> Some { op; key; flags; exptime; bytes; noreply }
          | _ -> None)
      | _ -> None)
  | _ -> None

let run_command c line =
  match split_words line with
  | [] -> Reply (Some "ERROR")
  | cmd :: args -> (
      match (String.lowercase_ascii cmd, args) with
      | "get", (_ :: _ as keys) -> Reply (Some (exec_get c ~with_cas:false keys))
      | "gets", (_ :: _ as keys) -> Reply (Some (exec_get c ~with_cas:true keys))
      | "set", _ | "add", _ | "replace", _ | "append", _ | "prepend", _ | "cas", _ -> (
          let tag =
            match String.lowercase_ascii cmd with
            | "set" -> `Set
            | "add" -> `Add
            | "replace" -> `Replace
            | "append" -> `Append
            | "prepend" -> `Prepend
            | _ -> `Cas
          in
          match parse_storage tag args with
          | Some pending -> Need_data pending
          | None -> Reply (Some "CLIENT_ERROR bad command line format"))
      | "delete", [ key ] ->
          Reply (Some (if Store.delete c.store ~tid:c.tid key then "DELETED" else "NOT_FOUND"))
      | "delete", [ key; "noreply" ] ->
          ignore (Store.delete c.store ~tid:c.tid key);
          Reply None
      | "incr", [ key; amount ] | "decr", [ key; amount ] -> (
          match int_arg amount with
          | None -> Reply (Some "CLIENT_ERROR invalid numeric delta argument")
          | Some delta ->
              let delta = if String.lowercase_ascii cmd = "decr" then -delta else delta in
              (match Store.incr c.store ~tid:c.tid key delta with
              | Some v -> Reply (Some (string_of_int v))
              | None -> Reply (Some "NOT_FOUND")))
      | "touch", [ key; exptime ] -> (
          match int_arg exptime with
          | None -> Reply (Some "CLIENT_ERROR invalid exptime argument")
          | Some e -> (
              match Store.get_full c.store ~tid:c.tid key with
              | Some (data, flags, _) ->
                  Store.set c.store ~tid:c.tid ~flags ~ttl_s:(float_of_int e) key data;
                  Reply (Some "TOUCHED")
              | None -> Reply (Some "NOT_FOUND")))
      | "stats", [] -> Reply (Some (exec_stats c))
      | "version", [] -> Reply (Some "VERSION montage-ocaml 1.0")
      | "verbosity", _ -> Reply (Some "OK")
      | "quit", [] -> Close None
      | _ -> Reply (Some "ERROR"))

(* ---- streaming state machine ---- *)

let get_state c = c.state
let set_state c s = c.state <- s

(* Find "\r\n" in the buffer starting at [from]. *)
let find_crlf s from =
  let n = String.length s in
  let rec scan i = if i + 1 >= n then None else if s.[i] = '\r' && s.[i + 1] = '\n' then Some i else scan (i + 1) in
  scan from

(* Feed raw bytes; returns the protocol replies generated (in order).
   Incomplete commands/data blocks stay buffered for the next feed. *)
let feed c input =
  if c.closed then []
  else begin
    Buffer.add_string c.buf input;
    let data = Buffer.contents c.buf in
    let replies = ref [] in
    let pos = ref 0 in
    let emit = function Some r -> replies := r :: !replies | None -> () in
    let progressing = ref true in
    while !progressing && not c.closed do
      match get_state c with
      | Idle -> (
          match find_crlf data !pos with
          | None -> progressing := false
          | Some eol ->
              let line = String.sub data !pos (eol - !pos) in
              pos := eol + 2;
              (match run_command c line with
              | Reply r -> emit r
              | Need_data pending -> set_state c (Awaiting pending)
              | Close r ->
                  emit r;
                  c.closed <- true))
      | Awaiting pending ->
          if String.length data - !pos >= pending.bytes + 2 then begin
            let block = String.sub data !pos pending.bytes in
            let terminated =
              String.sub data (!pos + pending.bytes) 2 = crlf
            in
            pos := !pos + pending.bytes + 2;
            set_state c Idle;
            if terminated then begin
              let r = exec_storage c pending.op pending.key pending.flags pending.exptime block in
              if not pending.noreply then emit (Some r)
            end
            else emit (Some "CLIENT_ERROR bad data chunk")
          end
          else progressing := false
    done;
    (* retain the unconsumed tail *)
    Buffer.clear c.buf;
    Buffer.add_substring c.buf data !pos (String.length data - !pos);
    List.rev_map (fun r -> r ^ crlf) !replies
  end
