(* YCSB core-workload generator (Cooper et al., SoCC '10), as used by
   the paper's memcached experiment (§6.2, workload A).

   Keys follow YCSB's convention: "user" + zero-padded decimal of a
   scrambled-zipfian record index.  The operation mix and request
   distribution define the named workloads:

     A: 50% read / 50% update, zipfian
     B: 95% read /  5% update, zipfian
     C: 100% read,             zipfian
     D: 95% read /  5% insert, latest
     F: 50% read / 50% read-modify-write, zipfian (we model the RMW as
        a get followed by a set, as YCSB's client does)

   The generator is deterministic given a seed, so every system in a
   comparison sees an identical request stream. *)

type op = Read of string | Update of string * string | Insert of string * string | Rmw of string * string

type spec = {
  records : int;
  read_pct : float;
  update_pct : float;
  insert_pct : float;
  rmw_pct : float;
  value_size : int;
  zipfian : bool;
}

let workload_a ?(records = 100_000) ?(value_size = 100) () =
  { records; read_pct = 0.5; update_pct = 0.5; insert_pct = 0.0; rmw_pct = 0.0; value_size; zipfian = true }

let workload_b ?(records = 100_000) ?(value_size = 100) () =
  { records; read_pct = 0.95; update_pct = 0.05; insert_pct = 0.0; rmw_pct = 0.0; value_size; zipfian = true }

let workload_c ?(records = 100_000) ?(value_size = 100) () =
  { records; read_pct = 1.0; update_pct = 0.0; insert_pct = 0.0; rmw_pct = 0.0; value_size; zipfian = true }

let workload_f ?(records = 100_000) ?(value_size = 100) () =
  { records; read_pct = 0.5; update_pct = 0.0; insert_pct = 0.0; rmw_pct = 0.5; value_size; zipfian = true }

type t = {
  spec : spec;
  zipf : Util.Zipf.t;
  insert_cursor : int Atomic.t; (* next record id for inserts *)
  value_template : string; (* 2x value_size of random filler *)
}

let create spec =
  let rng = Util.Xoshiro.create 0x59435342 in
  let template =
    String.init (2 * spec.value_size) (fun _ -> Char.chr (97 + Util.Xoshiro.int rng 26))
  in
  {
    spec;
    zipf = Util.Zipf.create spec.records;
    insert_cursor = Atomic.make spec.records;
    value_template = template;
  }

let key_of_record i = Printf.sprintf "user%019d" i

(* memcached-style payload: a random window into the filler template —
   one memcpy, like a real client buffer, not per-byte generation *)
let value_of t rng =
  let off = Util.Xoshiro.int rng t.spec.value_size in
  String.sub t.value_template off t.spec.value_size

let sample_key t rng =
  if t.spec.zipfian then key_of_record (Util.Zipf.sample t.zipf rng)
  else key_of_record (Util.Xoshiro.int rng t.spec.records)

(* Draw the next operation. *)
let next t rng =
  let r = Util.Xoshiro.float rng in
  if r < t.spec.read_pct then Read (sample_key t rng)
  else if r < t.spec.read_pct +. t.spec.update_pct then Update (sample_key t rng, value_of t rng)
  else if r < t.spec.read_pct +. t.spec.update_pct +. t.spec.rmw_pct then
    Rmw (sample_key t rng, value_of t rng)
  else
    let id = Atomic.fetch_and_add t.insert_cursor 1 in
    Insert (key_of_record id, value_of t rng)

(* Preload all records through [set]. *)
let load t ~set rng =
  for i = 0 to t.spec.records - 1 do
    set (key_of_record i) (value_of t rng)
  done

(* Run one drawn operation against a store. *)
let execute t ~tid store op =
  match op with
  | Read key -> ignore (Store.get store ~tid key)
  | Update (key, value) | Insert (key, value) -> Store.set store ~tid key value
  | Rmw (key, value) ->
      ignore (Store.get store ~tid key);
      Store.set store ~tid key value;
      ignore t
