lib/kvstore/protocol.ml: Buffer List Printf Store String
