lib/kvstore/store.mli: Baselines Pstructs
