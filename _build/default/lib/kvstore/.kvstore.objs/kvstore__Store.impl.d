lib/kvstore/store.ml: Atomic Baselines Bytes Int32 Int64 Option Pstructs String Unix Util
