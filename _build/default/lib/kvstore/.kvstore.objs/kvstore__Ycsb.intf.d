lib/kvstore/ycsb.mli: Store Util
