lib/kvstore/ycsb.ml: Atomic Char Printf Store String Util
