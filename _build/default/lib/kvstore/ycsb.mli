(** YCSB core-workload generator (Cooper et al., SoCC '10), as used by
    the paper's memcached experiment (§6.2, workload A).  Deterministic
    given a seed, so every system in a comparison sees an identical
    request stream. *)

type op =
  | Read of string
  | Update of string * string
  | Insert of string * string
  | Rmw of string * string

type spec = {
  records : int;
  read_pct : float;
  update_pct : float;
  insert_pct : float;
  rmw_pct : float;
  value_size : int;
  zipfian : bool;
}

(** The named core workloads.  A: 50r/50u; B: 95r/5u; C: 100r;
    F: 50r/50rmw — all zipfian. *)

val workload_a : ?records:int -> ?value_size:int -> unit -> spec
val workload_b : ?records:int -> ?value_size:int -> unit -> spec
val workload_c : ?records:int -> ?value_size:int -> unit -> spec
val workload_f : ?records:int -> ?value_size:int -> unit -> spec

type t

val create : spec -> t

(** YCSB key convention: "user" + zero-padded record number. *)
val key_of_record : int -> string

(** Draw the next operation (thread-safe given per-thread RNGs). *)
val next : t -> Util.Xoshiro.t -> op

(** Preload all records through [set]. *)
val load : t -> set:(string -> string -> unit) -> Util.Xoshiro.t -> unit

(** Run one drawn operation against a store. *)
val execute : t -> tid:int -> Store.t -> op -> unit
