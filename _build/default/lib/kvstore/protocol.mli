(** memcached text-protocol codec and connection state machine.

    [feed] consumes raw bytes from any transport and produces protocol
    replies, handling pipelining, [noreply], and binary-safe data
    blocks.  Commands: get/gets, set/add/replace/append/prepend/cas,
    delete, incr/decr, touch, stats, version, verbosity, quit. *)

type conn

(** One connection against a store.  [tid] is the worker thread this
    connection's operations run as. *)
val create : Store.t -> tid:int -> conn

(** [true] after the client sent [quit]; further input is ignored. *)
val is_closed : conn -> bool

(** Feed raw bytes; returns the replies generated, in order, each
    terminated with [\r\n].  Incomplete commands and data blocks stay
    buffered for the next feed. *)
val feed : conn -> string -> string list
