(** Nonblocking Montage sorted-list set: Harris-style lock-free list
    with logical deletion marks, whose linearizing CASes are
    epoch-verified so operations linearize in the epoch that labeled
    their payloads (§3.3).  One NVM payload per member key; recovery is
    a sorted rebuild. *)

type t

val create : Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t

(** [true] iff the key was absent and is now a member. *)
val add : t -> tid:int -> string -> bool

(** [true] iff the key was a member and is now removed. *)
val remove : t -> tid:int -> string -> bool

(** Wait-free read-only membership. *)
val contains : t -> string -> bool

(** Members in sorted order (quiescent use). *)
val to_list : t -> string list

val length : t -> int
val recover : Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
