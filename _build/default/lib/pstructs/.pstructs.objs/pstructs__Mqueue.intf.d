lib/pstructs/mqueue.mli: Montage
