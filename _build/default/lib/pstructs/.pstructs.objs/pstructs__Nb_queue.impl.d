lib/pstructs/nb_queue.ml: Array Montage
