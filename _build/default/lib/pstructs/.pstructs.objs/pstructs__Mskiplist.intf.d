lib/pstructs/mskiplist.mli: Montage
