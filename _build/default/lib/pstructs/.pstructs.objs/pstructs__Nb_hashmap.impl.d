lib/pstructs/nb_hashmap.ml: Array Hashtbl List Montage
