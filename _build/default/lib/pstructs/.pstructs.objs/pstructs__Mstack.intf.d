lib/pstructs/mstack.mli: Montage
