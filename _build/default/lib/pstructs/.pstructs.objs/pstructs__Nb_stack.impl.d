lib/pstructs/nb_stack.ml: Array Montage
