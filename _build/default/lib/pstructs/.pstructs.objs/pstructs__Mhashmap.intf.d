lib/pstructs/mhashmap.mli: Montage
