lib/pstructs/mvector.ml: Array List Montage Option Util
