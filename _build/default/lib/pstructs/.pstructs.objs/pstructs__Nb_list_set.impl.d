lib/pstructs/nb_list_set.ml: Array List Montage
