lib/pstructs/mqueue.ml: Array Montage Queue Util
