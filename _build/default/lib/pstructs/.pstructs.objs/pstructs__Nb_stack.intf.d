lib/pstructs/nb_stack.mli: Montage
