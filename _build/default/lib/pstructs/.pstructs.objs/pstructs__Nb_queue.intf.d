lib/pstructs/nb_queue.mli: Montage
