lib/pstructs/mhashmap.ml: Array Atomic Domain Hashtbl Montage String Util
