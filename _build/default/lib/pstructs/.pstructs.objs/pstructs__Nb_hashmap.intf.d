lib/pstructs/nb_hashmap.mli: Montage
