lib/pstructs/mgraph.mli: Montage
