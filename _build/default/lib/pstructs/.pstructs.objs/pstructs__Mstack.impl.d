lib/pstructs/mstack.ml: Array List Montage Util
