lib/pstructs/mskiplist.ml: Array Atomic Domain List Montage Option String Util
