lib/pstructs/mvector.mli: Montage
