lib/pstructs/mgraph.ml: Array Atomic Bytes Domain Hashtbl Int64 Montage Printf String Util
