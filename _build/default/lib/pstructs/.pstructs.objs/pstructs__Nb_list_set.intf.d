lib/pstructs/nb_list_set.mli: Montage
