(** Montage persistent vector: a dynamic array whose elements are NVM
    payloads carrying their index, so recovery places each payload
    directly — no order reconstruction.  Push/pop/set take a structural
    lock; indexed reads are lock-free through the transient slot
    array. *)

type t

val create : ?capacity:int -> Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t
val length : t -> int

(** Append; returns the element's index. *)
val push : t -> tid:int -> string -> int

(** Remove and return the last element. *)
val pop : t -> tid:int -> string option

val get : t -> tid:int -> int -> string option

(** [false] when the index is out of bounds. *)
val set : t -> tid:int -> int -> string -> bool

val to_list : t -> tid:int -> string list
val iteri : t -> tid:int -> (int -> string -> unit) -> unit
val recover : Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
