(** Montage general graph (paper §6.3) — the generality demonstration:
    anything representable as items and relationships fits Montage.

    Abstract state in NVM: one payload per vertex (id + attributes) and
    one per undirected edge (endpoint ids + attributes).  Edge payloads
    name their endpoints but vertex payloads know nothing of their
    edges — the paper's rule against long persistent pointer chains.
    Connectivity lives in a transient adjacency index rebuilt (possibly
    in parallel) on recovery.

    Concurrency: edge operations take a shared pass on a structural
    reader-writer lock plus the two endpoint locks in id order; vertex
    operations take the writer side. *)

type t

(** Vertex ids range over [0, capacity). *)
val create : ?capacity:int -> Montage.Epoch_sys.t -> t

val esys : t -> Montage.Epoch_sys.t
val vertex_count : t -> int
val edge_count : t -> int

(** [false] when the vertex already exists. *)
val add_vertex : t -> tid:int -> int -> string -> bool

(** Remove a vertex and all incident edges (their payloads too). *)
val remove_vertex : t -> tid:int -> int -> bool

val has_vertex : t -> int -> bool
val vertex_attrs : t -> tid:int -> int -> string option

(** [false] for self-edges, missing endpoints, or existing edges. *)
val add_edge : t -> tid:int -> int -> int -> string -> bool

val remove_edge : t -> tid:int -> int -> int -> bool
val has_edge : t -> int -> int -> bool
val edge_attrs : t -> tid:int -> int -> int -> string option
val neighbors : t -> int -> int list
val degree : t -> int -> int

(** Rebuild from recovered payloads: vertices first, then edges, each
    phase parallelized over [threads] domains (Fig. 12's recovery). *)
val recover :
  ?capacity:int -> ?threads:int -> Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
