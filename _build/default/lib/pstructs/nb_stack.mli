(** Nonblocking Montage stack (paper §3.3): a Treiber stack whose
    linearizing CAS is the epoch-verified {!Montage.Everify.cas_verify},
    so every operation linearizes in the epoch that labeled its
    payloads.  Epoch changes mid-attempt roll the operation back and
    restart it — lock-free, not wait-free, exactly as §3.3 describes. *)

type t

val create : Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t
val push : t -> tid:int -> string -> unit
val pop : t -> tid:int -> string option

(** Read-only probes (non-linearizing snapshots). *)

val top_value : t -> string option
val length : t -> int

val recover : Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
