(** Montage queue (paper §3.1): single-lock FIFO whose abstract state —
    items and their order — is captured by sequence-numbered payloads;
    the transient index is an ordinary OCaml queue.  Recovery sorts
    surviving payloads by sequence number. *)

type t

val create : Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t
val length : t -> int
val is_empty : t -> bool
val enqueue : t -> tid:int -> string -> unit
val dequeue : t -> tid:int -> string option

(** Front element without removing it (read-only). *)
val peek : t -> tid:int -> string option

val recover : Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
