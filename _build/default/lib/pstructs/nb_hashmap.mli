(** Nonblocking Montage hashmap: a fixed bucket array of Harris-style
    sorted kv lists whose linearization points are epoch-verified DCSS.
    Like SOFT, no atomic in-place update — [add] is insert-if-absent.
    One NVM payload per pair; recovery rebuilds every bucket chain. *)

type t

val create : ?buckets:int -> Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t

(** Wait-free read. *)
val get : t -> tid:int -> string -> string option

val mem : t -> string -> bool

(** Insert-if-absent; [false] when present. *)
val add : t -> tid:int -> string -> string -> bool

val remove : t -> tid:int -> string -> bool

(** All pairs (quiescent use). *)
val to_alist : t -> tid:int -> (string * string) list

val size : t -> int
val recover : ?buckets:int -> Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
