(** Nonblocking Montage queue: Michael–Scott whose linearization points
    (tail.next append, head swing) are epoch-verified DCSS; the
    auxiliary tail swing uses plain helping CAS.  Sequence numbers are
    rewritten in place on same-epoch retries, so crash recovery yields
    the surviving prefix in FIFO order. *)

type t

val create : Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t
val enqueue : t -> tid:int -> string -> unit
val dequeue : t -> tid:int -> string option

(** Read-only probes (non-linearizing snapshots). *)

val peek : t -> string option
val is_empty : t -> bool
val length : t -> int

val recover : Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
