(** Montage stack: LIFO analog of {!Mqueue} — single lock,
    sequence-numbered payloads, transient list index.  Recovery puts
    the newest surviving push on top. *)

type t

val create : Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t
val length : t -> int
val is_empty : t -> bool
val push : t -> tid:int -> string -> unit
val pop : t -> tid:int -> string option
val top : t -> tid:int -> string option
val recover : Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
