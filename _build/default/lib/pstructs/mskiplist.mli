(** Montage ordered map: a concurrent skip list whose key/value
    payloads live in NVM while the entire tower structure is transient
    and rebuilt on recovery — the repository's representative of the
    paper's "various tree-based maps".

    Mutations take a structural lock; reads are lock-free over the
    transient index and touch NVM only for the final payload. *)

type t

val create : ?seed:int -> Montage.Epoch_sys.t -> t
val esys : t -> Montage.Epoch_sys.t
val size : t -> int
val get : t -> tid:int -> string -> string option

(** Insert or update; returns the previous value. *)
val put : t -> tid:int -> string -> string -> string option

val remove : t -> tid:int -> string -> string option

(** Ordered fold over keys in [lo, hi] — what a hash map cannot give. *)
val fold_range : t -> tid:int -> lo:string -> hi:string -> init:'a -> ('a -> string -> string -> 'a) -> 'a

val min_binding : t -> tid:int -> (string * string) option

(** All pairs in key order (quiescent use). *)
val to_alist : t -> tid:int -> (string * string) list

(** Rebuild from recovered payloads (decode parallelizes over
    [threads]; insertion is ordered). *)
val recover : ?threads:int -> Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
