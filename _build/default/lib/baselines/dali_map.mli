(** Reimplementation of the Dalí hashmap (Nawab et al., DISC '17):
    buffered durable linearizability via append-only bucket record
    lists (updates prepend, removes prepend tombstones), software
    dirty-range tracking, and {e worker-borne} periodic flushes plus
    lazy bucket compaction — the costs Montage's transient index and
    dedicated background advancer eliminate. *)

type t

(** Bucket heads are persistent roots: at most 8128 buckets. *)
val create : ?buckets:int -> ?epoch_length_s:float -> Pmem.t -> t

val size : t -> int
val get : t -> tid:int -> string -> string option
val put : t -> tid:int -> string -> string -> string option
val remove : t -> tid:int -> string -> string option

(** The epoch-boundary pass: write back all dirty ranges, fence, bump
    the persistent epoch.  Called automatically from update operations
    when the epoch elapses; exposed for pacing and tests. *)
val persist_all : t -> tid:int -> unit
