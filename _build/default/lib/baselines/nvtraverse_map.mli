(** NVTraverse-style hashmap (Friedman et al., PLDI '20): the traversal
    prefix runs uninstrumented, but the critical accesses — including
    {e reads} — must write back the nodes they depend on and fence,
    which is why NVTraverse tracks Montage at low thread counts and
    falls behind under write-combining contention in the paper. *)

type t

val create : ?buckets:int -> Pmem.t -> t
val size : t -> int

(** Pays a flush + fence on the matched node before depending on it. *)
val get : t -> tid:int -> string -> string option

val put : t -> tid:int -> string -> string -> string option
val remove : t -> tid:int -> string -> string option
