lib/baselines/mnemosyne.ml: Array Atomic Bytes Hashtbl List Nvm Pmem String Util
