lib/baselines/mod_structs.ml: Array Atomic Buffer Bytes Hashtbl Int32 List Nvm Option Pmem String Util
