lib/baselines/soft_map.ml: Array Atomic Hashtbl Nvm Pmem String Util
