lib/baselines/pmem.mli: Nvm
