lib/baselines/friedman_queue.mli: Pmem
