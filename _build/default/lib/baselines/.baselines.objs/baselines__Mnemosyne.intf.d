lib/baselines/mnemosyne.mli: Nvm
