lib/baselines/pronto.mli: Pmem
