lib/baselines/nvtraverse_map.mli: Pmem
