lib/baselines/mod_structs.mli: Pmem
