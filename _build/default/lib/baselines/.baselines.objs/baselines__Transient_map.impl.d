lib/baselines/transient_map.ml: Array Atomic Bytes Hashtbl Pmem String Util
