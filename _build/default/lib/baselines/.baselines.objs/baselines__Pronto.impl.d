lib/baselines/pronto.ml: Array Atomic Buffer Int32 Nvm Pmem String Transient_map Util
