lib/baselines/transient_graph.mli: Pmem
