lib/baselines/friedman_queue.ml: Array Atomic List Nvm Pmem Queue String
