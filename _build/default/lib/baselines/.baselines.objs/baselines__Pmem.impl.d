lib/baselines/pmem.ml: Nvm Ralloc String
