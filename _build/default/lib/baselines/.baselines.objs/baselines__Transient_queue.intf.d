lib/baselines/transient_queue.mli: Pmem
