lib/baselines/nvtraverse_map.ml: Array Atomic Hashtbl Pmem String Util
