lib/baselines/transient_queue.ml: Bytes Pmem Queue Util
