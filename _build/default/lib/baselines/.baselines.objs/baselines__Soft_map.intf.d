lib/baselines/soft_map.mli: Pmem
