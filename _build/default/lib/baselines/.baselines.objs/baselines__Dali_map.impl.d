lib/baselines/dali_map.ml: Array Atomic Hashtbl List Nvm Pmem String Unix Util
