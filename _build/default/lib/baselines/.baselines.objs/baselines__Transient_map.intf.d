lib/baselines/transient_map.mli: Pmem Util
