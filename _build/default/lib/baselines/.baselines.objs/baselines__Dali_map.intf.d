lib/baselines/dali_map.mli: Pmem
