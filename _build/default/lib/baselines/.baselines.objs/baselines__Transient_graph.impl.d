lib/baselines/transient_graph.ml: Array Atomic Hashtbl Pmem Util
