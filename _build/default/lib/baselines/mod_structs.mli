(** MOD — Minimally Ordered Durable structures (Haria, Hill & Swift,
    ASPLOS '20): purely functional NVM nodes; an update persists the
    rebuilt path and commits with one persisted pointer swing — two
    fences and O(path) fresh nodes per update. *)

module Queue : sig
  (** Okasaki's two-list functional queue; dequeue pays a fully
      persisted reversal when the front empties. *)

  type t

  val create : Pmem.t -> t
  val enqueue : t -> tid:int -> string -> unit
  val dequeue : t -> tid:int -> string option
  val length : t -> int
end

module Map : sig
  (** Per-bucket locking over MOD singly-linked lists, as the Montage
      paper's adaptation does. *)

  type t

  val create : ?buckets:int -> Pmem.t -> t
  val size : t -> int
  val get : t -> tid:int -> string -> string option
  val put : t -> tid:int -> string -> string -> string option
  val remove : t -> tid:int -> string -> string option
end
