(* Transient reference queues (DRAM (T) and NVM (T)): a single-lock
   FIFO with values on the OCaml heap or in unflushed region blocks. *)

type placement = Dram | Nvm of Pmem.t

type entry = { value : string; block : int }

type t = { placement : placement; lock : Util.Spin_lock.t; items : entry Queue.t }

let create placement = { placement; lock = Util.Spin_lock.create (); items = Queue.create () }

let length t = Util.Spin_lock.with_lock t.lock (fun () -> Queue.length t.items)

(* see Transient_map.private_copy: DRAM (T) pays the node memcpy too *)
let private_copy s = Bytes.unsafe_to_string (Bytes.of_string s)

let enqueue t ~tid value =
  Util.Spin_lock.with_lock t.lock (fun () ->
      match t.placement with
      | Dram -> Queue.push { value = private_copy value; block = -1 } t.items
      | Nvm pm -> Queue.push { value = ""; block = Pmem.write_block pm ~tid ~data:value } t.items)

let dequeue t ~tid =
  Util.Spin_lock.with_lock t.lock (fun () ->
      match Queue.take_opt t.items with
      | None -> None
      | Some e -> (
          match t.placement with
          | Dram -> Some e.value
          | Nvm pm ->
              let v = Pmem.read_block pm ~off:e.block in
              Pmem.free pm ~tid e.block;
              Some v))
