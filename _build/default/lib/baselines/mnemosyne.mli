(** Mnemosyne-style persistent STM (Volos, Tack & Swift, ASPLOS '11):
    TinySTM-flavoured word transactions with encounter-time write
    locks, commit-time read validation, and a persistent redo log —
    two fences plus doubled media volume per transaction, and
    instrumentation on every access.

    [Map] and [Queue] build the benchmark structures on top. *)

exception Abort

type t
type tx

(** Region layout: roots | word space | per-thread logs | block heap. *)
val create : ?words:int -> ?log_capacity:int -> ?threads:int -> Nvm.Region.t -> t

val tx_begin : tid:int -> tx

(** Instrumented read of word [addr].
    @raise Abort on validation conflicts (via {!atomically} retry). *)
val tx_read : t -> tx -> int -> int

(** Encounter-time locked write. @raise Abort on lock conflict. *)
val tx_write : t -> tx -> int -> int -> unit

(** Register an out-of-band byte range (key/value block) written by
    this transaction; persisted with the log via the torn-bit path. *)
val tx_track_data : tx -> off:int -> len:int -> unit

val tx_commit : t -> tx -> unit
val tx_abort : tx -> unit

(** Run [f] transactionally with retry-on-abort. *)
val atomically : t -> tid:int -> (tx -> 'a) -> 'a

module Queue : sig
  type q

  val create : t -> q
  val enqueue : q -> tid:int -> string -> unit
  val dequeue : q -> tid:int -> string option
end

module Map : sig
  type m

  val create : ?buckets:int -> t -> m
  val size : m -> int
  val get : m -> tid:int -> string -> string option
  val put : m -> tid:int -> string -> string -> string option
  val remove : m -> tid:int -> string -> string option
end
