(** SOFT-style hashmap (Zuriel et al., OOPSLA '19): persists only the
    semantic data, keeps a full DRAM copy, and reads exclusively from
    DRAM — the fastest read path in the paper's Figure 7 at the cost of
    double memory and no atomic update of an existing key. *)

type t

val create : ?buckets:int -> Pmem.t -> t
val size : t -> int

(** Pure DRAM read. *)
val get : t -> tid:int -> string -> string option

(** Insert-if-absent (one persist before linearizing); [false] when the
    key exists — SOFT does not support atomic update. *)
val put : t -> tid:int -> string -> string -> bool

(** Persists the invalidation before linearizing. *)
val remove : t -> tid:int -> string -> string option
