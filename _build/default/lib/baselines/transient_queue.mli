(** Transient reference queues (DRAM (T) and NVM (T)): a single-lock
    FIFO with values on the OCaml heap or in unflushed region blocks. *)

type placement = Dram | Nvm of Pmem.t

type t

val create : placement -> t
val length : t -> int
val enqueue : t -> tid:int -> string -> unit
val dequeue : t -> tid:int -> string option
