(** Pronto (Memaripour, Izraelevitz & Swanson, ASPLOS '20): persistence
    for volatile structures by high-level operation logging plus
    periodic checkpoints.  Every mutating operation persists a semantic
    log record {e before returning} — the per-operation cost Montage
    removes — and operations on one object are serialized for
    deterministic replay.

    [Sync] fences on the caller; [Full] offloads the drain wait to the
    sister hyperthread (charged as issue + handshake here). *)

type mode = Sync | Full

type t

val opcode_put : int
val opcode_remove : int

val create :
  ?buckets:int -> ?log_capacity:int -> ?ckpt_every:int -> ?threads:int -> mode:mode -> Pmem.t -> t

val size : t -> int
val get : t -> tid:int -> string -> string option
val put : t -> tid:int -> string -> string -> string option
val remove : t -> tid:int -> string -> string option

(** Append one semantic record to the caller's log and persist it.
    Exposed so other structures (e.g. the benchmark's Pronto queue) can
    be persisted through the same logging runtime. *)
val log_op : t -> tid:int -> opcode:int -> key:string -> value:string -> unit

(** Serialize the map into the checkpoint area and truncate the logs. *)
val checkpoint : t -> tid:int -> unit

(** Load the sealed checkpoint and replay the per-thread logs. *)
val recover :
  ?buckets:int -> ?log_capacity:int -> ?ckpt_every:int -> ?threads:int -> mode:mode -> Pmem.t -> t
