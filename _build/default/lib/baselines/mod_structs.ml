(* MOD — Minimally Ordered Durable data structures (Haria, Hill &
   Swift, ASPLOS '20).

   MOD builds structures from purely functional ("history-preserving")
   nodes: an update constructs new NVM nodes for the changed path,
   persists them, and commits with a single pointer swing that is
   itself persisted — two ordering points (fences) per update and
   O(path) fresh NVM nodes, which is what makes MOD one of the faster
   strict systems in the paper yet still well behind Montage.

   - [Queue]: Okasaki's two-list functional queue.  Enqueue conses onto
     the back list (1 new node); dequeue pops the front, paying a full
     reversal (O(n) new nodes, all persisted) when the front empties.
   - [Map]: per-bucket locking over MOD singly-linked lists, as the
     Montage paper's adaptation does: an update copies the list prefix
     up to the modified node into fresh persisted nodes, then swings
     the persisted bucket root.

   Cons-cell layout: [8 next+1 | 4 len | data].  Roots live in the
   region's root area and are persisted on every commit. *)

let cell_next region off = Nvm.Region.get_i64 region ~off - 1

let cell_data region off =
  let len = Nvm.Region.get_i32 region ~off:(off + 8) in
  Nvm.Region.read_string region ~off:(off + 12) ~len

(* Allocate, fill, and write back (unfenced) one cons cell; the commit
   fence covers all cells created by the operation. *)
let write_cell pm ~tid ~next ~data =
  let region = Pmem.region pm in
  let len = String.length data in
  let off = Pmem.alloc pm ~tid ~size:(12 + len) in
  Nvm.Region.set_i64 region ~off (next + 1);
  Nvm.Region.set_i32 region ~off:(off + 8) len;
  Nvm.Region.write_string region ~off:(off + 12) data;
  Pmem.writeback pm ~tid ~off ~len:(12 + len);
  off

(* Persist a root slot: the commit point. *)
let commit_root pm ~tid ~root ~value =
  let region = Pmem.region pm in
  Nvm.Region.set_i64 region ~off:root (value + 1);
  Pmem.persist pm ~tid ~off:root ~len:8

module Queue = struct
  type t = {
    pm : Pmem.t;
    lock : Util.Spin_lock.t;
    front_root : int; (* persisted list roots *)
    back_root : int;
    mutable front : int; (* transient mirrors of the roots *)
    mutable back : int;
    (* transient cache of freed cells is unnecessary: old versions are
       garbage but MOD never reclaims mid-epoch; we free eagerly after
       the commit that obsoletes them *)
  }

  let create pm =
    let front_root = Pmem.root_base and back_root = Pmem.root_base + 8 in
    commit_root pm ~tid:0 ~root:front_root ~value:(-1);
    commit_root pm ~tid:0 ~root:back_root ~value:(-1);
    { pm; lock = Util.Spin_lock.create (); front_root; back_root; front = -1; back = -1 }

  let enqueue t ~tid value =
    Util.Spin_lock.with_lock t.lock (fun () ->
        (* one fresh cell + fence, then the root commit + fence *)
        let cell = write_cell t.pm ~tid ~next:t.back ~data:value in
        Pmem.sfence t.pm ~tid;
        commit_root t.pm ~tid ~root:t.back_root ~value:cell;
        t.back <- cell)

  let dequeue t ~tid =
    Util.Spin_lock.with_lock t.lock (fun () ->
        let region = Pmem.region t.pm in
        if t.front < 0 && t.back < 0 then None
        else begin
          if t.front < 0 then begin
            (* reverse the back list into the front list: every node is
               rewritten and persisted, then both roots commit *)
            let rec reverse src acc =
              if src < 0 then acc
              else
                let data = cell_data region src in
                let cell = write_cell t.pm ~tid ~next:acc ~data in
                reverse (cell_next region src) cell
            in
            let new_front = reverse t.back (-1) in
            Pmem.sfence t.pm ~tid;
            (* free the obsolete back-list cells *)
            let rec free_list off =
              if off >= 0 then begin
                let nxt = cell_next region off in
                Pmem.free t.pm ~tid off;
                free_list nxt
              end
            in
            free_list t.back;
            commit_root t.pm ~tid ~root:t.front_root ~value:new_front;
            commit_root t.pm ~tid ~root:t.back_root ~value:(-1);
            t.front <- new_front;
            t.back <- -1
          end;
          let head = t.front in
          let value = cell_data region head in
          let rest = cell_next region head in
          commit_root t.pm ~tid ~root:t.front_root ~value:rest;
          Pmem.free t.pm ~tid head;
          t.front <- rest;
          Some value
        end)

  let length t =
    Util.Spin_lock.with_lock t.lock (fun () ->
        let region = Pmem.region t.pm in
        let rec count off acc = if off < 0 then acc else count (cell_next region off) (acc + 1) in
        count t.front 0 + count t.back 0)
end

module Map = struct
  (* kv encoding inside a cell: [4 klen | key | value] *)
  let encode_kv key value =
    let b = Buffer.create (4 + String.length key + String.length value) in
    Buffer.add_int32_le b (Int32.of_int (String.length key));
    Buffer.add_string b key;
    Buffer.add_string b value;
    Buffer.contents b

  let decode_kv data =
    let klen = Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string data) 0) in
    (String.sub data 4 klen, String.sub data (4 + klen) (String.length data - 4 - klen))

  type bucket = { lock : Util.Spin_lock.t; root : int; mutable head : int }

  type t = { pm : Pmem.t; buckets : bucket array; size : int Atomic.t }

  let create ?(buckets = 1 lsl 10) pm =
    if Pmem.root_base + (8 * buckets) > Pmem.heap_base then
      invalid_arg "Mod_structs.Map: too many persistent bucket roots";
    let mk i =
      let root = Pmem.root_base + (8 * i) in
      commit_root pm ~tid:0 ~root ~value:(-1);
      { lock = Util.Spin_lock.create (); root; head = -1 }
    in
    { pm; buckets = Array.init buckets mk; size = Atomic.make 0 }

  let bucket_of t key = t.buckets.(Hashtbl.hash key land (Array.length t.buckets - 1))
  let size t = Atomic.get t.size

  let get t ~tid:_ key =
    let region = Pmem.region t.pm in
    let b = bucket_of t key in
    Util.Spin_lock.with_lock b.lock (fun () ->
        let rec find off =
          if off < 0 then None
          else
            let k, v = decode_kv (cell_data region off) in
            if String.equal k key then Some v else find (cell_next region off)
        in
        find b.head)

  (* Functional path copy: rebuild [prefix] (cells before the modified
     position) on top of [tail], newest-first. *)
  let rebuild t ~tid prefix tail =
    List.fold_left
      (fun next data -> write_cell t.pm ~tid ~next ~data)
      tail (List.rev prefix)

  let free_prefix t ~tid ~head ~stop =
    let region = Pmem.region t.pm in
    let rec go off =
      if off >= 0 && off <> stop then begin
        let nxt = cell_next region off in
        Pmem.free t.pm ~tid off;
        go nxt
      end
    in
    go head

  let put t ~tid key value =
    let region = Pmem.region t.pm in
    let b = bucket_of t key in
    Util.Spin_lock.with_lock b.lock (fun () ->
        let rec split off prefix =
          if off < 0 then (List.rev prefix, -1, None)
          else
            let data = cell_data region off in
            let k, v = decode_kv data in
            if String.equal k key then (List.rev prefix, cell_next region off, Some (off, v))
            else split (cell_next region off) (data :: prefix)
        in
        let prefix, tail, found = split b.head [] in
        let new_head =
          rebuild t ~tid (encode_kv key value :: prefix) tail
          (* note: new value goes at the found position's spot; ordering
             within a bucket is immaterial for a map *)
        in
        Pmem.sfence t.pm ~tid;
        commit_root t.pm ~tid ~root:b.root ~value:new_head;
        (match found with
        | Some (off, _) ->
            free_prefix t ~tid ~head:b.head ~stop:(cell_next region off);
            ignore off
        | None ->
            free_prefix t ~tid ~head:b.head ~stop:tail;
            Atomic.incr t.size);
        b.head <- new_head;
        Option.map snd found)

  let remove t ~tid key =
    let region = Pmem.region t.pm in
    let b = bucket_of t key in
    Util.Spin_lock.with_lock b.lock (fun () ->
        let rec split off prefix =
          if off < 0 then (List.rev prefix, -1, None)
          else
            let data = cell_data region off in
            let k, v = decode_kv data in
            if String.equal k key then (List.rev prefix, cell_next region off, Some v)
            else split (cell_next region off) (data :: prefix)
        in
        let prefix, tail, found = split b.head [] in
        match found with
        | None -> None
        | Some v ->
            let new_head = rebuild t ~tid prefix tail in
            Pmem.sfence t.pm ~tid;
            commit_root t.pm ~tid ~root:b.root ~value:new_head;
            free_prefix t ~tid ~head:b.head ~stop:tail;
            b.head <- new_head;
            Atomic.decr t.size;
            Some v)
  end
