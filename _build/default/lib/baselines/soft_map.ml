(* SOFT-style hashmap (Zuriel et al., OOPSLA '19): persist only the
   semantic data, keep a *full copy* in DRAM, and read exclusively from
   DRAM.

   Every insert persists one PNode (key, value, validity bit) with a
   write-back + fence before linearizing; every remove persists the
   invalidation the same way — strict durable linearizability with a
   single fence per update and *zero* NVM traffic on reads.  That is
   why SOFT leads every read path in the paper's Figure 7 and why it
   cannot exploit NVM capacity (the whole data set lives in DRAM too)
   and does not support atomic update of an existing key (the paper's
   benchmark avoids updates for this reason; [put] here is
   insert-if-absent, returning false when the key exists).

   PNode layout: [1 valid | 4 klen | 4 vlen | key | value]. *)

type node = {
  key : string;
  value : string; (* DRAM copy: reads never touch NVM *)
  pnode : int; (* offset of the persistent twin *)
  mutable next : node option;
}

type bucket = { lock : Util.Spin_lock.t; mutable head : node option }

type t = { pm : Pmem.t; buckets : bucket array; size : int Atomic.t }

let create ?(buckets = 1 lsl 16) pm =
  {
    pm;
    buckets = Array.init buckets (fun _ -> { lock = Util.Spin_lock.create (); head = None });
    size = Atomic.make 0;
  }

let bucket_of t key = t.buckets.(Hashtbl.hash key land (Array.length t.buckets - 1))
let size t = Atomic.get t.size

let write_pnode t ~tid ~key ~value =
  let region = Pmem.region t.pm in
  let klen = String.length key and vlen = String.length value in
  let off = Pmem.alloc t.pm ~tid ~size:(9 + klen + vlen) in
  Nvm.Region.set_u8 region ~off 1;
  Nvm.Region.set_i32 region ~off:(off + 1) klen;
  Nvm.Region.set_i32 region ~off:(off + 5) vlen;
  Nvm.Region.write_string region ~off:(off + 9) key;
  Nvm.Region.write_string region ~off:(off + 9 + klen) value;
  (* strict durability: persisted before the insert linearizes *)
  Pmem.persist t.pm ~tid ~off ~len:(9 + klen + vlen);
  off

(* Reads are pure DRAM. *)
let get t ~tid:_ key =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec find = function
        | None -> None
        | Some n when String.equal n.key key -> Some n.value
        | Some n -> find n.next
      in
      find b.head)

(* Insert-if-absent; [false] when the key exists (no atomic update). *)
let put t ~tid key value =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec present = function
        | None -> false
        | Some n when String.equal n.key key -> true
        | Some n -> present n.next
      in
      if present b.head then false
      else begin
        let pnode = write_pnode t ~tid ~key ~value in
        b.head <- Some { key; value; pnode; next = b.head };
        Atomic.incr t.size;
        true
      end)

let remove t ~tid key =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let region = Pmem.region t.pm in
      let rec walk prev curr =
        match curr with
        | None -> None
        | Some n when String.equal n.key key ->
            (* persist the invalidation before linearizing the remove *)
            Nvm.Region.set_u8 region ~off:n.pnode 0;
            Pmem.persist t.pm ~tid ~off:n.pnode ~len:1;
            Pmem.free t.pm ~tid n.pnode;
            (match prev with None -> b.head <- n.next | Some p -> p.next <- n.next);
            Atomic.decr t.size;
            Some n.value
        | Some n -> walk (Some n) n.next
      in
      walk None b.head)
