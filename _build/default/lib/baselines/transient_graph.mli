(** Transient reference graph (DRAM (T) in Figures 11–12): the Montage
    graph's shape — vertex slot array, adjacency tables, structural
    RW lock — with no persistence anywhere. *)

type placement = Dram | Nvm of Pmem.t

type t

val create : ?capacity:int -> placement -> t
val vertex_count : t -> int
val edge_count : t -> int
val add_vertex : t -> tid:int -> int -> string -> bool
val remove_vertex : t -> tid:int -> int -> bool
val add_edge : t -> tid:int -> int -> int -> string -> bool
val remove_edge : t -> tid:int -> int -> int -> bool
val has_edge : t -> int -> int -> bool
