(* Transient reference graph (DRAM (T) in Figures 11–12): the same
   shape as the Montage graph — vertex slot array, per-vertex adjacency
   tables, RW structural lock — with attributes on the OCaml heap or in
   unflushed NVM blocks, and no persistence anywhere. *)

type placement = Dram | Nvm of Pmem.t

type vertex = { id : int; mutable attrs : string; mutable block : int; adj : (int, int) Hashtbl.t }
(* adj maps neighbor id -> edge block offset (-1 under Dram placement) *)

type t = {
  placement : placement;
  capacity : int;
  vertices : vertex option array;
  locks : Util.Spin_lock.t array;
  structure : Util.Rw_lock.t;
  vertex_count : int Atomic.t;
  edge_count : int Atomic.t;
}

let create ?(capacity = 1 lsl 20) placement =
  {
    placement;
    capacity;
    vertices = Array.make capacity None;
    locks = Array.init capacity (fun _ -> Util.Spin_lock.create ());
    structure = Util.Rw_lock.create ();
    vertex_count = Atomic.make 0;
    edge_count = Atomic.make 0;
  }

let vertex_count t = Atomic.get t.vertex_count
let edge_count t = Atomic.get t.edge_count

let store t ~tid data =
  match t.placement with Dram -> -1 | Nvm pm -> Pmem.write_block pm ~tid ~data

let unstore t ~tid block =
  match t.placement with
  | Dram -> ()
  | Nvm pm -> if block >= 0 then Pmem.free pm ~tid block

let lock_pair t u v f =
  let a = min u v and b = max u v in
  Util.Spin_lock.with_lock t.locks.(a) (fun () ->
      if a = b then f () else Util.Spin_lock.with_lock t.locks.(b) f)

let add_vertex t ~tid id attrs =
  Util.Rw_lock.with_write t.structure (fun () ->
      match t.vertices.(id) with
      | Some _ -> false
      | None ->
          t.vertices.(id) <- Some { id; attrs; block = store t ~tid attrs; adj = Hashtbl.create 8 };
          Atomic.incr t.vertex_count;
          true)

let remove_vertex t ~tid id =
  Util.Rw_lock.with_write t.structure (fun () ->
      match t.vertices.(id) with
      | None -> false
      | Some v ->
          Hashtbl.iter
            (fun peer eblock ->
              unstore t ~tid eblock;
              match t.vertices.(peer) with
              | Some pv -> Hashtbl.remove pv.adj id
              | None -> ())
            v.adj;
          unstore t ~tid v.block;
          t.vertices.(id) <- None;
          Atomic.decr t.vertex_count;
          true)

let add_edge t ~tid src dst attrs =
  if src = dst then false
  else
    Util.Rw_lock.with_read t.structure (fun () ->
        lock_pair t src dst (fun () ->
            match (t.vertices.(src), t.vertices.(dst)) with
            | Some u, Some v when not (Hashtbl.mem u.adj dst) ->
                let block = store t ~tid attrs in
                Hashtbl.replace u.adj dst block;
                Hashtbl.replace v.adj src block;
                Atomic.incr t.edge_count;
                true
            | _ -> false))

let remove_edge t ~tid src dst =
  if src = dst then false
  else
    Util.Rw_lock.with_read t.structure (fun () ->
        lock_pair t src dst (fun () ->
            match (t.vertices.(src), t.vertices.(dst)) with
            | Some u, Some v -> (
                match Hashtbl.find_opt u.adj dst with
                | None -> false
                | Some block ->
                    unstore t ~tid block;
                    Hashtbl.remove u.adj dst;
                    Hashtbl.remove v.adj src;
                    Atomic.decr t.edge_count;
                    true)
            | _ -> false))

let has_edge t src dst =
  Util.Rw_lock.with_read t.structure (fun () ->
      match t.vertices.(src) with Some u -> Hashtbl.mem u.adj dst | None -> false)
