(** The durably linearizable lock-free queue of Friedman, Herlihy,
    Marathe & Petrank (PPoPP '18): a Michael–Scott queue with NVM
    nodes, two write-back+fence pairs per enqueue and one per dequeue —
    the strict-persistence cost Montage amortizes away.  Retired
    sentinels are reclaimed with a bounded limbo delay standing in for
    the original's epoch-based reclamation. *)

type t

val create : Pmem.t -> t
val enqueue : t -> tid:int -> string -> unit
val dequeue : t -> tid:int -> string option
val length : t -> int

(** Walk the persisted list from the head root, skipping
    dequeue-marked nodes, and rebuild. *)
val recover : Pmem.t -> t
