(* Persistent payload header, the only metadata Montage keeps in NVM.

   Wire layout (little-endian), one per allocator block:

     +0   u32  magic      "MPLD"
     +4   u8   type       0 = ALLOC, 1 = UPDATE, 2 = DELETE
     +8   i64  epoch      creation / last-modification epoch
     +16  i64  uid        logical identity, shared by all versions of a
                          payload and by its anti-payload
     +24  i32  size       content length in bytes
     +32       content

   Recovery groups blocks by uid, keeps the newest version whose epoch
   is at most (crash epoch − 2), and discards the whole group when that
   version is a DELETE anti-payload. *)

let magic = 0x4D504C44
let header_size = 32

type ptype = Alloc | Update | Delete

let ptype_to_int = function Alloc -> 0 | Update -> 1 | Delete -> 2

let ptype_of_int = function
  | 0 -> Some Alloc
  | 1 -> Some Update
  | 2 -> Some Delete
  | _ -> None

type t = { ptype : ptype; epoch : int; uid : int; size : int }

let write region ~off { ptype; epoch; uid; size } =
  Nvm.Region.set_i32 region ~off magic;
  Nvm.Region.set_u8 region ~off:(off + 4) (ptype_to_int ptype);
  Nvm.Region.set_i64 region ~off:(off + 8) epoch;
  Nvm.Region.set_i64 region ~off:(off + 16) uid;
  Nvm.Region.set_i32 region ~off:(off + 24) size

(* Parse the header at [off]; [None] if the block does not hold a
   payload (never written, scrubbed, or torn). *)
let read region ~off ~block_size =
  if Nvm.Region.get_i32 region ~off <> magic then None
  else
    match ptype_of_int (Nvm.Region.get_u8 region ~off:(off + 4)) with
    | None -> None
    | Some ptype ->
        let epoch = Nvm.Region.get_i64 region ~off:(off + 8) in
        let uid = Nvm.Region.get_i64 region ~off:(off + 16) in
        let size = Nvm.Region.get_i32 region ~off:(off + 24) in
        if size < 0 || header_size + size > block_size || epoch <= 0 || uid <= 0 then None
        else Some { ptype; epoch; uid; size }

(* Erase the magic so the recovery sweep cannot resurrect a reclaimed
   block's stale contents (see "Block-recycling hazard" in DESIGN.md). *)
let scrub region ~off = Nvm.Region.set_i32 region ~off 0

let set_type region ~off ptype = Nvm.Region.set_u8 region ~off:(off + 4) (ptype_to_int ptype)
let set_epoch region ~off epoch = Nvm.Region.set_i64 region ~off:(off + 8) epoch
let content_off off = off + header_size
