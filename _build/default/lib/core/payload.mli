(** Typed payload wrapper — the OCaml analog of the paper's
    GENERATE_FIELD macro.

    A structure describes its payload content once (encode/decode) and
    gets type-safe [pnew]/[get]/[set]/[pdelete] whose handles carry the
    Montage epoch discipline.  [set] may return a {e different} handle
    (a copying update across an epoch boundary); the caller must
    install the returned handle everywhere the old one appeared. *)

module type CONTENT = sig
  type t

  val encode : t -> bytes
  val decode : bytes -> t
end

module Make (C : CONTENT) : sig
  type handle = Epoch_sys.pblk

  val pnew : Epoch_sys.t -> tid:int -> C.t -> handle
  val get : Epoch_sys.t -> tid:int -> handle -> C.t
  val get_unsafe : Epoch_sys.t -> handle -> C.t
  val set : Epoch_sys.t -> tid:int -> handle -> C.t -> handle
  val pdelete : Epoch_sys.t -> tid:int -> handle -> unit

  (** Decode a payload recovered after a crash: [(handle, content)]. *)
  val of_recovered : Epoch_sys.t -> handle -> handle * C.t
end

(** Raw string contents. *)
module String_content : CONTENT with type t = string

(** [(key, value)] pairs — the shape of sets and mappings. *)
module Kv_content : CONTENT with type t = string * string

(** Sequence-numbered items — the shape of queues and stacks, whose
    abstract state is items {e and} their order (paper §3). *)
module Seq_content : CONTENT with type t = int * string
