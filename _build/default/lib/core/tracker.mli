(** Operation tracker (paper §5, Fig. 3): one padded atomic slot per
    thread holding the epoch of that thread's active operation, or [0]
    when idle.  The epoch advancer uses {!wait_all} for the quiescence
    condition before persisting an epoch's payloads. *)

type t

val create : max_threads:int -> t
val register : t -> tid:int -> epoch:int -> unit
val unregister : t -> tid:int -> unit
val active_epoch : t -> tid:int -> int

(** Block until no operation is active in any epoch [<= epoch].  A
    stalled thread delays this arbitrarily — the persistence frontier
    is blockable even though structure operations stay nonblocking. *)
val wait_all : t -> epoch:int -> unit

(** Non-blocking probe: is any operation currently registered in an
    epoch [<= epoch]? *)
val any_active_le : t -> epoch:int -> bool
