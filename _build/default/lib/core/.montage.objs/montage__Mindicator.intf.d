lib/core/mindicator.mli:
