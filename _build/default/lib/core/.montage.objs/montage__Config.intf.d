lib/core/config.mli:
