lib/core/epoch_sys.mli: Config Nvm Ralloc
