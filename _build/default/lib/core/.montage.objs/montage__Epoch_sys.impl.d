lib/core/epoch_sys.ml: Array Atomic Bytes Config Domain Errors Fun Hashtbl List Mindicator Nvm Payload_hdr Persist_buffer Ralloc Tracker Unix Util
