lib/core/persist_buffer.ml: Array Atomic
