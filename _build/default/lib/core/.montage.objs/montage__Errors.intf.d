lib/core/errors.mli:
