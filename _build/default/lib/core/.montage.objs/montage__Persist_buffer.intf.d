lib/core/persist_buffer.mli:
