lib/core/config.ml:
