lib/core/mindicator.ml: Util
