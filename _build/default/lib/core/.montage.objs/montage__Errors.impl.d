lib/core/errors.ml:
