lib/core/everify.ml: Atomic Epoch_sys
