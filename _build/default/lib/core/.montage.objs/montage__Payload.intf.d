lib/core/payload.mli: Epoch_sys
