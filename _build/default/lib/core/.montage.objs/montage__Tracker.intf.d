lib/core/tracker.mli:
