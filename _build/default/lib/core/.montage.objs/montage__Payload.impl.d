lib/core/payload.ml: Bytes Epoch_sys Int32 Int64 String
