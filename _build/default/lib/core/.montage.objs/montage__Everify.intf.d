lib/core/everify.mli: Epoch_sys
