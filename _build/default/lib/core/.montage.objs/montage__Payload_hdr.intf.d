lib/core/payload_hdr.mli: Nvm
