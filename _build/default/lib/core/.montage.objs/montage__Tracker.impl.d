lib/core/tracker.ml: Util
