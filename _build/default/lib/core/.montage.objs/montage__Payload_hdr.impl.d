lib/core/payload_hdr.ml: Nvm
