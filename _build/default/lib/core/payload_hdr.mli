(** Persistent payload header — the only metadata Montage keeps in NVM.

    Wire layout (little-endian), one per allocator block:
    [magic u32 | type u8 | pad | epoch i64 | uid i64 | size i32 | pad |
    content...].  Recovery groups blocks by uid, keeps the newest
    version with epoch [<= crash_epoch - 2], and drops the group when
    that version is a DELETE anti-payload. *)

val magic : int
val header_size : int

type ptype = Alloc | Update | Delete

type t = { ptype : ptype; epoch : int; uid : int; size : int }

val write : Nvm.Region.t -> off:int -> t -> unit

(** Parse the header at [off]; [None] if the block does not hold a
    payload (never written, scrubbed, or torn). *)
val read : Nvm.Region.t -> off:int -> block_size:int -> t option

(** Erase the magic so the recovery sweep cannot resurrect a reclaimed
    block's stale contents (DESIGN.md, block-recycling hazard). *)
val scrub : Nvm.Region.t -> off:int -> unit

val set_type : Nvm.Region.t -> off:int -> ptype -> unit
val set_epoch : Nvm.Region.t -> off:int -> int -> unit

(** Offset of the content area within a block starting at [off]. *)
val content_off : int -> int
