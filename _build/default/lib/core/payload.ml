(* Typed payload wrapper — the OCaml analog of the paper's
   GENERATE_FIELD macro.  A structure describes its payload content
   once (encode/decode), and gets type-safe [pnew]/[get]/[set]/
   [pdelete] whose handles carry the Montage epoch discipline:

   - [get] performs the old-sees-new check; [get_unsafe] skips it;
   - [set] may return a *different* handle (a copying update across an
     epoch boundary); the caller must install the returned handle
     everywhere the old one appeared (well-formedness constraint 4). *)

module type CONTENT = sig
  type t

  val encode : t -> bytes
  val decode : bytes -> t
end

module Make (C : CONTENT) = struct
  type handle = Epoch_sys.pblk

  let pnew esys ~tid v = Epoch_sys.pnew esys ~tid (C.encode v)
  let get esys ~tid h = C.decode (Epoch_sys.pget esys ~tid h)
  let get_unsafe esys h = C.decode (Epoch_sys.pget_unsafe esys h)
  let set esys ~tid h v = Epoch_sys.pset esys ~tid h (C.encode v)
  let pdelete esys ~tid h = Epoch_sys.pdelete esys ~tid h

  (* Decode a payload recovered after a crash. *)
  let of_recovered esys h = (h, get_unsafe esys h)
end

(* Ready-made codecs for common content shapes. *)

module String_content = struct
  type t = string

  let encode = Bytes.of_string
  let decode = Bytes.to_string
end

(* (key, value) pairs, the shape used by sets and mappings:
   [4-byte key length | key | value]. *)
module Kv_content = struct
  type t = string * string

  let encode (k, v) =
    let klen = String.length k in
    let b = Bytes.create (4 + klen + String.length v) in
    Bytes.set_int32_le b 0 (Int32.of_int klen);
    Bytes.blit_string k 0 b 4 klen;
    Bytes.blit_string v 0 b (4 + klen) (String.length v);
    b

  let decode b =
    let klen = Int32.to_int (Bytes.get_int32_le b 0) in
    ( Bytes.sub_string b 4 klen,
      Bytes.sub_string b (4 + klen) (Bytes.length b - 4 - klen) )
end

(* Sequence-numbered items, the shape used by queues: a queue's
   abstract state is its items and their order, so each payload is
   labeled with a consecutive integer (paper §3). *)
module Seq_content = struct
  type t = int * string

  let encode (seq, v) =
    let b = Bytes.create (8 + String.length v) in
    Bytes.set_int64_le b 0 (Int64.of_int seq);
    Bytes.blit_string v 0 b 8 (String.length v);
    b

  let decode b =
    ( Int64.to_int (Bytes.get_int64_le b 0),
      Bytes.sub_string b 8 (Bytes.length b - 8) )
end
