(** Mindicator (Liu, Luchangco & Spear, ICDCS '13): a concurrent
    min-tracking structure.

    Montage uses one to know the oldest epoch for which unpersisted
    payloads might still exist, so [sync] can short-circuit when
    everything is already durable.  The published value is advisory —
    sync verifies by draining. *)

type t

val infinity_epoch : int

val create : max_threads:int -> t

(** Thread [tid] may hold unpersisted payloads from [epoch] onward. *)
val announce : t -> tid:int -> epoch:int -> unit

(** Thread [tid] has nothing unpersisted before [epoch]. *)
val retire : t -> tid:int -> epoch:int -> unit

(** Thread [tid] has nothing unpersisted at all. *)
val clear : t -> tid:int -> unit

(** Oldest epoch with possibly-unpersisted payloads;
    [infinity_epoch] when none. *)
val query : t -> int
