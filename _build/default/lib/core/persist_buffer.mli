(** Per-thread circular write-back buffer (paper §5.2).

    Workers append (offset, length) records of payload ranges that must
    reach NVM by the end of their epoch.  The owner is the only
    producer; consumers (the background advancer, sync helpers, and the
    producer itself on overflow) pop concurrently via CAS on the head.
    Wait-free for the producer, obstruction-free for consumers. *)

type t

val create : capacity:int -> t
val is_empty : t -> bool

(** Owner-only append.  On overflow the oldest entry is consumed and
    handed to [flush] — the paper's incremental write-back. *)
val push : t -> flush:(int -> int -> unit) -> off:int -> len:int -> unit

(** Consume one entry; [None] when empty.  Safe from any thread. *)
val pop : t -> (int * int) option

(** Drain everything currently visible, invoking [f off len] per entry. *)
val drain : t -> (int -> int -> unit) -> unit
