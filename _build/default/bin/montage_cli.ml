(* montage_cli — drive a Montage data structure interactively-ish.

   Subcommands:
     demo      run a put/crash/recover cycle and print the outcome
     workload  run a timed workload against a chosen structure
     torture   randomized crash-consistency check (like the example,
               with knobs)

   This is a developer tool; the benchmark suite is bench/main.exe. *)

open Cmdliner

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let mib = 1024 * 1024

(* ---- demo ---- *)

let demo items =
  let region = Nvm.Region.create ~capacity:(64 * mib) () in
  let esys = E.create region in
  let map = Pstructs.Mhashmap.create esys in
  for i = 1 to items do
    ignore (Pstructs.Mhashmap.put map ~tid:0 (Printf.sprintf "key%d" i) (Printf.sprintf "val%d" i))
  done;
  E.sync esys ~tid:0;
  ignore (Pstructs.Mhashmap.put map ~tid:0 "unsynced" "doomed");
  E.stop_background esys;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover region in
  let map2 = Pstructs.Mhashmap.recover esys2 payloads in
  Printf.printf "inserted %d + 1 unsynced, crashed, recovered %d items\n" items
    (Pstructs.Mhashmap.size map2);
  Printf.printf "unsynced item present: %b\n"
    (Pstructs.Mhashmap.get map2 ~tid:0 "unsynced" <> None);
  E.stop_background esys2;
  if Pstructs.Mhashmap.size map2 = items then `Ok () else `Error (false, "unexpected recovery size")

(* ---- workload ---- *)

let workload structure threads seconds value_size =
  if threads < 1 then `Error (false, "threads must be >= 1")
  else begin
    let region = Nvm.Region.create ~max_threads:(threads + 4) ~capacity:(256 * mib) () in
    let esys = E.create ~config:{ Cfg.default with max_threads = threads + 1 } region in
    let value = String.make value_size 'v' in
    let body =
      match structure with
      | "map" ->
          let m = Pstructs.Mhashmap.create esys in
          fun ~tid ~rng ->
            let key = Printf.sprintf "%024d" (Util.Xoshiro.int rng 100_000) in
            if Util.Xoshiro.bool rng then ignore (Pstructs.Mhashmap.put m ~tid key value)
            else ignore (Pstructs.Mhashmap.remove m ~tid key)
      | "queue" ->
          let q = Pstructs.Mqueue.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Mqueue.enqueue q ~tid value
            else ignore (Pstructs.Mqueue.dequeue q ~tid)
      | "stack" ->
          let s = Pstructs.Mstack.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Mstack.push s ~tid value
            else ignore (Pstructs.Mstack.pop s ~tid)
      | "nb-stack" ->
          let s = Pstructs.Nb_stack.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Nb_stack.push s ~tid value
            else ignore (Pstructs.Nb_stack.pop s ~tid)
      | "nb-queue" ->
          let q = Pstructs.Nb_queue.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Nb_queue.enqueue q ~tid value
            else ignore (Pstructs.Nb_queue.dequeue q ~tid)
      | other -> failwith ("unknown structure: " ^ other)
    in
    match body with
    | exception Failure msg -> `Error (false, msg)
    | body ->
        let r = Benchlib.Runner.throughput ~threads ~duration_s:seconds body in
        let stats = Nvm.Region.stats region in
        Printf.printf "%s: %.0f ops/s over %d thread(s) for %.1fs\n" structure
          r.Benchlib.Runner.ops_per_sec threads seconds;
        Printf.printf "NVM traffic: %d writebacks, %d fences, %d lines persisted\n"
          stats.Nvm.Region.writebacks stats.Nvm.Region.fences stats.Nvm.Region.lines_persisted;
        Printf.printf "epoch advances: %d\n" (E.advance_count esys);
        E.stop_background esys;
        `Ok ()
  end

(* ---- torture ---- *)

let torture rounds seed =
  let rng = Util.Xoshiro.create seed in
  let cfg = { Cfg.testing with max_threads = 2 } in
  let region = Nvm.Region.create ~capacity:(32 * mib) () in
  let esys = ref (E.create ~config:cfg region) in
  let map = ref (Pstructs.Mhashmap.create ~buckets:64 !esys) in
  let model = Hashtbl.create 64 in
  let snapshots = Hashtbl.create 64 in
  let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare in
  let record ~ended = Hashtbl.replace snapshots ended (snapshot ()) in
  record ~ended:(E.current_epoch !esys - 1);
  let ok = ref true in
  (try
     for round = 1 to rounds do
       for _ = 1 to 20 + Util.Xoshiro.int rng 100 do
         let k = Printf.sprintf "key%03d" (Util.Xoshiro.int rng 200) in
         (match Util.Xoshiro.int rng 2 with
         | 0 ->
             let v = Printf.sprintf "r%d" round in
             ignore (Pstructs.Mhashmap.put !map ~tid:0 k v);
             Hashtbl.replace model k v
         | _ ->
             ignore (Pstructs.Mhashmap.remove !map ~tid:0 k);
             Hashtbl.remove model k);
         if Util.Xoshiro.int rng 20 = 0 then begin
           let ended = E.current_epoch !esys in
           E.advance_epoch !esys ~tid:1;
           record ~ended
         end
       done;
       let crash_epoch = E.current_epoch !esys in
       Nvm.Region.crash
         ~persist_unfenced:(Util.Xoshiro.float rng)
         ~evict_dirty:(Util.Xoshiro.float rng) ~rng region;
       let esys2, payloads = E.recover ~config:cfg region in
       let map2 = Pstructs.Mhashmap.recover ~buckets:64 esys2 payloads in
       let expected = ref [] in
       for e = 1 to crash_epoch - 2 do
         match Hashtbl.find_opt snapshots e with Some s -> expected := s | None -> ()
       done;
       let recovered = List.sort compare (Pstructs.Mhashmap.to_alist map2 ~tid:0) in
       if recovered <> !expected then begin
         Printf.printf "round %d: INCONSISTENT RECOVERY\n" round;
         ok := false;
         raise Exit
       end;
       esys := esys2;
       map := map2;
       Hashtbl.reset model;
       List.iter (fun (k, v) -> Hashtbl.replace model k v) recovered;
       Hashtbl.reset snapshots;
       record ~ended:(E.current_epoch !esys - 1)
     done
   with Exit -> ());
  if !ok then begin
    Printf.printf "%d crash/recovery rounds: all consistent\n" rounds;
    `Ok ()
  end
  else `Error (false, "inconsistent recovery detected")

(* ---- command wiring ---- *)

let demo_cmd =
  let items = Arg.(value & opt int 1000 & info [ "items" ] ~doc:"Items to insert before the crash.") in
  Cmd.v (Cmd.info "demo" ~doc:"Insert, sync, crash, recover; verify the prefix.")
    Term.(ret (const demo $ items))

let workload_cmd =
  let structure =
    Arg.(value & pos 0 string "map" & info [] ~docv:"STRUCTURE" ~doc:"map|queue|stack|nb-stack|nb-queue")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads"; "t" ] ~doc:"Worker threads.") in
  let seconds = Arg.(value & opt float 1.0 & info [ "seconds"; "d" ] ~doc:"Duration.") in
  let value_size = Arg.(value & opt int 256 & info [ "value-size" ] ~doc:"Value size in bytes.") in
  Cmd.v (Cmd.info "workload" ~doc:"Timed workload against a Montage structure.")
    Term.(ret (const workload $ structure $ threads $ seconds $ value_size))

let torture_cmd =
  let rounds = Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"Crash/recovery rounds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v (Cmd.info "torture" ~doc:"Randomized crash-consistency check.")
    Term.(ret (const torture $ rounds $ seed))

let () =
  let doc = "Montage buffered-persistence playground" in
  exit (Cmd.eval (Cmd.group (Cmd.info "montage_cli" ~doc) [ demo_cmd; workload_cmd; torture_cmd ]))
