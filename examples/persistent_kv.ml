(* A persistent memcached-style cache that survives restarts.

       dune exec examples/persistent_kv.exe

   This is the paper's §6.2 scenario as an application: a session cache
   with memcached semantics (TTL expiry, counters, stats) whose backing
   store is a Montage hashmap.  The "server" crashes mid-traffic and
   comes back with all acknowledged (synced) sessions intact — no
   serialization layer, no replay, just the pointer-rich structure
   rebuilt from its NVM payloads. *)

module E = Montage.Epoch_sys
module Store = Kvstore.Store

let backend_of_map map = Store.of_mhashmap map

let () =
  let region = Nvm.Region.create ~capacity:(128 * 1024 * 1024) () in
  let esys = E.create region in
  let map = Pstructs.Mhashmap.create esys in
  let cache = Store.create (backend_of_map map) in

  (* a burst of traffic: sessions, a page counter, a short-TTL token *)
  Printf.printf "serving traffic...\n";
  for user = 1 to 1000 do
    Store.set cache ~tid:0
      (Printf.sprintf "session:%04d" user)
      (Printf.sprintf "{user:%d, cart:[...], theme:dark}" user)
  done;
  Store.set cache ~tid:0 "page:hits" "0";
  for _ = 1 to 500 do
    ignore (Store.incr cache ~tid:0 "page:hits" 1)
  done;
  Store.set cache ~tid:0 ~ttl_s:0.05 "token:ephemeral" "expires-fast";

  (* acknowledge the traffic: make it durable *)
  E.sync esys ~tid:0;
  Printf.printf "synced: 1000 sessions + %s page hits acknowledged\n"
    (Option.get (Store.get cache ~tid:0 "page:hits"));

  (* unacknowledged tail, then the machine dies *)
  Store.set cache ~tid:0 "session:9999" "never-acked";
  E.stop_background esys;
  Nvm.Region.crash region;
  Printf.printf "\n*** power failure ***\n\n";

  (* restart *)
  let esys2, payloads = E.recover region in
  let map2 = Pstructs.Mhashmap.recover esys2 payloads in
  let cache2 = Store.create (backend_of_map map2) in
  Printf.printf "restarted: %d items recovered\n" (Pstructs.Mhashmap.size map2);
  Printf.printf "  session:0042     = %s\n"
    (Option.value ~default:"(lost)" (Store.get cache2 ~tid:0 "session:0042"));
  Printf.printf "  page:hits        = %s\n"
    (Option.value ~default:"(lost)" (Store.get cache2 ~tid:0 "page:hits"));
  Printf.printf "  session:9999     = %s  (was never acknowledged)\n"
    (Option.value ~default:"(lost)" (Store.get cache2 ~tid:0 "session:9999"));
  Unix.sleepf 0.06;
  Printf.printf "  token:ephemeral  = %s  (TTL elapsed across the crash)\n"
    (Option.value ~default:"(expired)" (Store.get cache2 ~tid:0 "token:ephemeral"));
  let hits, misses, sets, _, expired = Store.stats cache2 in
  Printf.printf "stats since restart: %d hits, %d misses, %d sets, %d expired\n" hits misses sets
    expired;
  E.stop_background esys2
