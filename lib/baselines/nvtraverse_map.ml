(* NVTraverse-style hashmap (Friedman et al., PLDI '20).

   NVTraverse transforms a "traversal data structure" into a durably
   linearizable one: the traversal prefix runs with no persistence
   instrumentation, but before an operation's critical (linearizing)
   accesses it must write back the nodes it will depend on and fence —
   and this applies to *reads as well as writes*, which is why the
   paper observes NVTraverse keeping pace at low thread counts and
   falling behind once write-combining contention appears.

   Concretely per operation on a chained hashmap:
   - get: flush the matched node, fence, then read it;
   - insert: flush the predecessor, write + flush the new node, fence,
     link;
   - remove: flush predecessor and victim, fence, unlink.

   Node payloads live in NVM; the chain itself is transient (the
   transformation persists the semantic nodes, and our flush accounting
   charges the same critical-path costs). *)

type node = { key : string; block : int; vlen : int; mutable next : node option }

type bucket = { lock : Util.Spin_lock.t; mutable head : node option }

type t = { pm : Pmem.t; buckets : bucket array; size : int Atomic.t }

let create ?(buckets = 1 lsl 16) pm =
  {
    pm;
    buckets = Array.init buckets (fun _ -> { lock = Util.Spin_lock.create (); head = None });
    size = Atomic.make 0;
  }

let bucket_of t key = t.buckets.(Hashtbl.hash key land (Array.length t.buckets - 1))
let size t = Atomic.get t.size

let node_block_len n = 4 + String.length n.key + n.vlen

let get t ~tid key =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec find = function
        | None -> None
        | Some n when String.equal n.key key ->
            (* ensure-persisted before depending on the node (the
               transformation's read-path flush + fence) *)
            Pmem.persist t.pm ~tid ~off:n.block ~len:(node_block_len n);
            Pmem.expect_fenced t.pm ~what:"nvtraverse_map.get: node durable before dependent read"
              ~off:n.block ~len:(node_block_len n);
            Some (Pmem.read_block t.pm ~off:n.block)
        | Some n -> find n.next
      in
      find b.head)

let put t ~tid key value =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec walk prev curr =
        match curr with
        | Some n when String.equal n.key key ->
            let old = Pmem.read_block t.pm ~off:n.block in
            (* flush the node we traversed to, then persist the update *)
            Pmem.persist t.pm ~tid ~off:n.block ~len:(node_block_len n);
            Pmem.free t.pm ~tid n.block;
            let block = Pmem.write_block t.pm ~tid ~data:value in
            Pmem.persist t.pm ~tid ~off:block ~len:(4 + String.length value) |> ignore;
            Pmem.expect_fenced t.pm ~what:"nvtraverse_map.put: updated value durable before link"
              ~off:block ~len:(4 + String.length value);
            let fresh = { key; block; vlen = String.length value; next = n.next } in
            (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
            Some old
        | Some n when n.key > key -> insert prev curr
        | Some n -> walk (Some n) n.next
        | None -> insert prev None
      and insert prev curr =
        (* flush the predecessor's payload (critical traversal suffix) *)
        (match prev with
        | Some p -> Pmem.persist t.pm ~tid ~off:p.block ~len:(node_block_len p)
        | None -> ());
        let block = Pmem.write_block t.pm ~tid ~data:value in
        Pmem.persist t.pm ~tid ~off:block ~len:(4 + String.length value);
        Pmem.expect_fenced t.pm ~what:"nvtraverse_map.put: new node durable before link"
          ~off:block ~len:(4 + String.length value);
        let fresh = { key; block; vlen = String.length value; next = curr } in
        (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
        Atomic.incr t.size;
        None
      in
      walk None b.head)

let remove t ~tid key =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec walk prev curr =
        match curr with
        | Some n when String.equal n.key key ->
            let old = Pmem.read_block t.pm ~off:n.block in
            (match prev with
            | Some p -> Pmem.persist t.pm ~tid ~off:p.block ~len:(node_block_len p)
            | None -> ());
            Pmem.persist t.pm ~tid ~off:n.block ~len:(node_block_len n);
            Pmem.expect_fenced t.pm ~what:"nvtraverse_map.remove: victim durable before unlink"
              ~off:n.block ~len:(node_block_len n);
            Pmem.free t.pm ~tid n.block;
            (match prev with None -> b.head <- n.next | Some p -> p.next <- n.next);
            Atomic.decr t.size;
            Some old
        | Some n when n.key > key -> None
        | Some n -> walk (Some n) n.next
        | None -> None
      in
      walk None b.head)
