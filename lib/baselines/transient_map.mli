(** Transient reference hashmaps — the paper's DRAM (T) and NVM (T):
    the Montage hashmap's shape with no persistence support.  DRAM (T)
    pays the per-operation value memcpy a C structure pays; NVM (T)
    stores values in unflushed region blocks.

    The node/bucket representation is exposed because Pronto's
    checkpointer iterates the whole map under its own locking. *)

type placement = Dram | Nvm of Pmem.t

type node = {
  key : string;
  mutable value : string;  (** Dram placement *)
  mutable block : int;  (** Nvm placement; -1 if unused *)
  mutable next : node option;
}

type bucket = { lock : Util.Spin_lock.t; mutable head : node option }

type t

val create : ?buckets:int -> placement -> t
val size : t -> int

(** For whole-map iteration under the caller's locking discipline. *)
val buckets_of : t -> bucket array

val get : t -> tid:int -> string -> string option
val put : t -> tid:int -> string -> string -> string option

(** Atomic read-modify-write under the bucket lock; [Some v'] stores
    (inserting if absent), [None] leaves the map unchanged.  Returns
    the previous value. *)
val update : t -> tid:int -> string -> (string option -> string option) -> string option

val remove : t -> tid:int -> string -> string option
