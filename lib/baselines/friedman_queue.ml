(* The durably linearizable lock-free queue of Friedman, Herlihy,
   Marathe & Petrank (PPoPP '18).

   A Michael–Scott queue whose nodes live in NVM.  Strict durable
   linearizability requires per-operation persistence:

   - enqueue: persist the new node (value + next) *before* the link CAS,
     then persist the predecessor's next pointer right after — two
     write-back+fence pairs on the critical path;
   - dequeue: persist the dequeue mark on the removed node — one pair —
     so a recovery never re-delivers a consumed item.

   The tail pointer is never persisted (recovery recomputes it by
   walking from the head), exactly as in the original algorithm.  The
   transient linked structure mirrors the NVM image so CAS runs on
   OCaml atomics while every persist touches the region and pays the
   simulated media cost.

   Node wire format: [4 size | value | 8 next_off+1 | 1 deq_mark]. *)

type node = {
  off : int; (* NVM block offset *)
  value : string;
  next : node option Atomic.t;
}

type t = {
  pm : Pmem.t;
  head : node Atomic.t; (* sentinel *)
  tail : node Atomic.t;
  head_root : int; (* root slot holding the persisted head offset *)
  (* Deferred reclamation of retired sentinels, standing in for the
     epoch-based reclamation the original uses: a freed block must not
     be reused while a stalled enqueuer may still be persisting its
     next pointer, so each thread parks retirees and frees them
     [limbo_depth] retirements later. *)
  limbo : (int * int) Queue.t array; (* (offset, total length) *)
}

let limbo_depth = 64

let value_off off = off + 4
let next_field off value_len = off + 4 + value_len
let mark_field off value_len = off + 12 + value_len

let write_node pm ~tid ~value =
  let len = String.length value in
  let off = Pmem.alloc pm ~tid ~size:(4 + len + 9) in
  Nvm.Region.set_i32 (Pmem.region pm) ~off len;
  Nvm.Region.write_string (Pmem.region pm) ~off:(value_off off) value;
  Nvm.Region.set_i64 (Pmem.region pm) ~off:(next_field off len) 0;
  Nvm.Region.set_u8 (Pmem.region pm) ~off:(mark_field off len) 0;
  off

let node_size value = 4 + String.length value + 9

let create pm =
  let off = write_node pm ~tid:0 ~value:"" in
  Pmem.persist pm ~tid:0 ~off ~len:(node_size "");
  let sentinel = { off; value = ""; next = Atomic.make None } in
  let head_root = Pmem.root_base in
  Nvm.Region.set_i64 (Pmem.region pm) ~off:head_root off;
  Pmem.persist pm ~tid:0 ~off:head_root ~len:8;
  {
    pm;
    head = Atomic.make sentinel;
    tail = Atomic.make sentinel;
    head_root;
    limbo = Array.init (Nvm.Region.max_threads (Pmem.region pm)) (fun _ -> Queue.create ());
  }

let retire t ~tid ~off ~len =
  let q = t.limbo.(tid) in
  Queue.push (off, len) q;
  if Queue.length q > limbo_depth then begin
    let off, _ = Queue.pop q in
    Pmem.free t.pm ~tid off
  end

let enqueue t ~tid value =
  let region = Pmem.region t.pm in
  let off = write_node t.pm ~tid ~value in
  (* persist the node before it becomes reachable *)
  Pmem.persist t.pm ~tid ~off ~len:(node_size value);
  Pmem.expect_fenced t.pm ~what:"friedman_queue.enqueue: node durable before link CAS" ~off
    ~len:(node_size value);
  let node = { off; value; next = Atomic.make None } in
  let rec attempt () =
    let tail = Atomic.get t.tail in
    match Atomic.get tail.next with
    | Some successor ->
        ignore (Atomic.compare_and_set t.tail tail successor);
        attempt ()
    | None ->
        if Atomic.compare_and_set tail.next None (Some node) then begin
          (* persist the link that made the enqueue durable *)
          Nvm.Region.set_i64 region ~off:(next_field tail.off (String.length tail.value)) (off + 1);
          Pmem.persist t.pm ~tid ~off:(next_field tail.off (String.length tail.value)) ~len:8;
          Pmem.expect_fenced t.pm ~what:"friedman_queue.enqueue: link durable before return"
            ~off:(next_field tail.off (String.length tail.value)) ~len:8;
          ignore (Atomic.compare_and_set t.tail tail node)
        end
        else attempt ()
  in
  attempt ()

let dequeue t ~tid =
  let region = Pmem.region t.pm in
  let rec attempt () =
    let head = Atomic.get t.head in
    match Atomic.get head.next with
    | None -> None
    | Some node ->
        if Atomic.compare_and_set t.head head node then begin
          (* persist the dequeue mark so recovery skips this node *)
          Nvm.Region.set_u8 region ~off:(mark_field node.off (String.length node.value)) 1;
          Pmem.persist t.pm ~tid ~off:(mark_field node.off (String.length node.value)) ~len:1;
          Pmem.expect_fenced t.pm ~what:"friedman_queue.dequeue: mark durable before return"
            ~off:(mark_field node.off (String.length node.value)) ~len:1;
          (* lazily advance the persisted head root (not fenced: recovery
             tolerates a stale root by skipping marked nodes) *)
          Nvm.Region.set_i64 region ~off:t.head_root node.off;
          (* the outgoing sentinel is garbage once the head has moved *)
          retire t ~tid ~off:head.off ~len:(node_size head.value);
          (* the value lives in the NVM node: read it from there *)
          let len = Nvm.Region.get_i32 region ~off:node.off in
          Some (Nvm.Region.read_string region ~off:(value_off node.off) ~len)
        end
        else attempt ()
  in
  attempt ()

let length t =
  let rec count acc n = match Atomic.get n.next with None -> acc | Some m -> count (acc + 1) m in
  count 0 (Atomic.get t.head)

(* ---- recovery ---- *)

(* Walk the persisted list from the head root, skipping dequeued nodes,
   and rebuild the transient mirror. *)
let recover pm =
  let region = Pmem.region pm in
  let head_root = Pmem.root_base in
  let read_node off =
    let len = Nvm.Region.get_i32 region ~off in
    let value = Nvm.Region.read_string region ~off:(value_off off) ~len in
    let next = Nvm.Region.get_i64 region ~off:(next_field off len) - 1 in
    let marked = Nvm.Region.get_u8 region ~off:(mark_field off len) = 1 in
    (value, next, marked)
  in
  let values =
    Pmem.with_recovery_scan pm (fun () ->
        let start = Nvm.Region.get_i64 region ~off:head_root in
        (* the start node is the sentinel or the last dequeued node: skip
           it, then collect surviving (unmarked) values in order — all
           before any fresh allocation can overwrite the old image *)
        let rec walk off acc =
          if off < 0 then List.rev acc
          else
            let value, next, marked = read_node off in
            walk next (if marked then acc else value :: acc)
        in
        let _, first_next, _ = read_node start in
        walk first_next [])
  in
  let t = create pm in
  List.iter (fun v -> enqueue t ~tid:0 v) values;
  t
