(* Mnemosyne-style persistent STM (Volos, Tack & Swift, ASPLOS '11).

   Mnemosyne runs TinySTM-flavoured word-based transactions over
   persistent memory: reads are instrumented through version metadata,
   writes take encounter-time locks, and commit appends a persistent
   *redo log* of every written word, fences it, applies the writes to
   their NVM home locations, and fences a truncation record.  Two
   fences plus double writes per transaction, and instrumentation on
   every access — the reason Mnemosyne trails every other system by
   one to two orders of magnitude in the paper's figures.

   The word space is an array of versioned cells mirrored at
   [cell_base] in the region; the redo log is a per-thread area.
   [Map] builds the benchmark hashmap on top: bucket heads and list
   links are STM words, keys/values are byte blocks written inside the
   transaction and logged as words would be (we log and persist the
   block ranges alongside).

   Log record: [8 count | (8 addr, 8 value)*]. *)

exception Abort

type cell = {
  addr : int; (* index in the word space *)
  mutable value : int;
  lock : Util.Spin_lock.t;
  mutable version : int;
}

type tx = {
  tid : int;
  mutable reads : (cell * int) list; (* cell, version observed *)
  mutable writes : (cell * int) list; (* cell, pending value *)
  mutable locked : cell list;
  mutable data_ranges : (int * int) list; (* block ranges to log/persist *)
}

type t = {
  pm : Pmem.t;
  cells : cell array;
  cell_base : int;
  log_base : int array;
  log_capacity : int;
  words : int;
}

(* The region is laid out as: roots | word space | per-thread logs |
   block heap (Ralloc), so STM words never collide with allocated
   key/value blocks. *)
let create ?(words = 1 lsl 18) ?(log_capacity = 1 lsl 18) ?(threads = 8) region =
  let region_cap = Nvm.Region.capacity region in
  let cell_base = 65536 in
  let heap_for_blocks = cell_base + (8 * words) + (log_capacity * threads) in
  if heap_for_blocks >= region_cap then invalid_arg "Mnemosyne.create: region too small";
  let pm = Pmem.create ~heap_base:heap_for_blocks region in
  {
    pm;
    cells =
      Array.init words (fun addr ->
          { addr; value = 0; lock = Util.Spin_lock.create (); version = 0 });
    cell_base;
    log_base = Array.init threads (fun i -> cell_base + (8 * words) + (i * log_capacity));
    log_capacity;
    words;
  }

let tx_begin ~tid = { tid; reads = []; writes = []; locked = []; data_ranges = [] }

(* Instrumented read with a small per-access charge, as TinySTM's
   lock-table lookup costs on real hardware. *)
let tx_read t tx addr =
  let c = t.cells.(addr) in
  match List.assq_opt c tx.writes with
  | Some v -> v
  | None ->
      let v = c.value in
      tx.reads <- (c, c.version) :: tx.reads;
      (* per-access instrumentation: TinySTM's lock-table lookup and
         timestamp validation on every transactional load *)
      Util.Spin_wait.ns 40;
      v

(* Encounter-time write locking; lock conflicts abort (caller retries). *)
let tx_write t tx addr value =
  let c = t.cells.(addr) in
  if not (List.memq c tx.locked) then begin
    if not (Util.Spin_lock.try_acquire c.lock) then raise Abort;
    tx.locked <- c :: tx.locked
  end;
  tx.writes <- (c, value) :: List.remove_assq c tx.writes

(* Register an out-of-band byte range (key/value block) written by this
   transaction; it is persisted with the log, modeling Mnemosyne's
   logging of bulk data through its persistent heap. *)
let tx_track_data tx ~off ~len = tx.data_ranges <- (off, len) :: tx.data_ranges

let release_locks tx = List.iter (fun c -> Util.Spin_lock.release c.lock) tx.locked

let tx_abort tx = release_locks tx

let tx_commit t tx =
  let region = Pmem.region t.pm in
  (* commit-time bookkeeping: version management, write-set ordering,
     and Mnemosyne's raw-word log arbitration *)
  Util.Spin_wait.ns 200;
  (* Validate reads against concurrent commits.  Cells we later locked
     are NOT exempt: another transaction may have committed between our
     read and our lock acquisition (versions only change at commit, so
     our own lock never invalidates our own read). *)
  List.iter
    (fun (c, ver) ->
      if c.version <> ver then begin
        release_locks tx;
        raise Abort
      end)
    tx.reads;
  if tx.writes <> [] || tx.data_ranges <> [] then begin
    let base = t.log_base.(tx.tid) in
    let n = List.length tx.writes in
    if 8 + (16 * n) > t.log_capacity then
      (failwith "Mnemosyne: transaction too large" [@montage.allow "R4: simulated-capacity limit of the baseline; intentionally fatal so a benchmark misconfiguration cannot masquerade as a result"]);
    (* 1. write and persist the redo log (first fence) *)
    Nvm.Region.set_i64 region ~off:base n;
    List.iteri
      (fun i (c, v) ->
        Nvm.Region.set_i64 region ~off:(base + 8 + (16 * i)) c.addr;
        Nvm.Region.set_i64 region ~off:(base + 16 + (16 * i)) v)
      tx.writes;
    Pmem.writeback t.pm ~tid:tx.tid ~off:base ~len:(8 + (16 * n));
    (* Bulk data written inside the transaction goes through
       Mnemosyne's word-granular torn-bit log: every 8-byte word is
       instrumented and a full copy lands in the log before the home
       location, doubling the media volume. *)
    let log_data = ref (base + 8 + (16 * n)) in
    List.iter
      (fun (off, len) ->
        let words = (len + 7) / 8 in
        Util.Spin_wait.ns (15 * words);
        if !log_data + len <= base + t.log_capacity then begin
          let tmp = Bytes.create len in
          Nvm.Region.read region ~off ~dst:tmp ~dst_off:0 ~len;
          Nvm.Region.write region ~off:!log_data ~src:tmp ~src_off:0 ~len;
          Pmem.writeback t.pm ~tid:tx.tid ~off:!log_data ~len;
          log_data := !log_data + len
        end;
        Pmem.writeback t.pm ~tid:tx.tid ~off ~len)
      tx.data_ranges;
    Pmem.sfence t.pm ~tid:tx.tid;
    (* 2. apply writes home and persist them (second fence) *)
    List.iter
      (fun (c, v) ->
        c.value <- v;
        c.version <- c.version + 1;
        Nvm.Region.set_i64 region ~off:(t.cell_base + (8 * c.addr)) v;
        Pmem.writeback t.pm ~tid:tx.tid ~off:(t.cell_base + (8 * c.addr)) ~len:8)
      tx.writes;
    (* 3. truncate the log *)
    Nvm.Region.set_i64 region ~off:base 0;
    Pmem.writeback t.pm ~tid:tx.tid ~off:base ~len:8;
    Pmem.sfence t.pm ~tid:tx.tid
  end;
  release_locks tx

(* Run [f tx] with retry-on-abort. *)
let atomically t ~tid f =
  let b = Util.Backoff.create () in
  let rec attempt () =
    let tx = tx_begin ~tid in
    match f tx with
    | result ->
        (try
           tx_commit t tx;
           result
         with Abort ->
           Util.Backoff.once b;
           attempt ())
    | exception Abort ->
        tx_abort tx;
        Util.Backoff.once b;
        attempt ()
  in
  attempt ()

(* ---- queue over the STM ---- *)

module Queue = struct
  (* Word layout: word 0 = head+1, word 1 = tail+1; nodes are 2 words:
     [next+1 | data_block+1], allocated from a bump cursor. *)

  type q = { stm : t; bump : int Atomic.t; free : int list ref array }

  let create stm =
    { stm; bump = Atomic.make 2; free = Array.init (Array.length stm.log_base) (fun _ -> ref []) }

  let alloc_node q ~tid =
    match !(q.free.(tid)) with
    | w :: rest ->
        q.free.(tid) := rest;
        w
    | [] ->
        let w = Atomic.fetch_and_add q.bump 2 in
        if w + 2 > q.stm.words then
          (failwith "Mnemosyne.Queue: word space exhausted" [@montage.allow "R4: simulated-capacity limit of the baseline; intentionally fatal so a benchmark misconfiguration cannot masquerade as a result"]);
        w

  let enqueue q ~tid value =
    (* allocate once outside the retry loop so aborts don't leak *)
    let blk = ref (-1) and node = ref (-1) in
    atomically q.stm ~tid (fun tx ->
        if !node < 0 then node := alloc_node q ~tid;
        let w = !node in
        if !blk < 0 then blk := Pmem.write_block q.stm.pm ~tid ~data:value;
        tx_track_data tx ~off:!blk ~len:(4 + String.length value);
        tx_write q.stm tx w 0;
        tx_write q.stm tx (w + 1) (!blk + 1);
        let tail = tx_read q.stm tx 1 - 1 in
        if tail < 0 then begin
          tx_write q.stm tx 0 (w + 1);
          tx_write q.stm tx 1 (w + 1)
        end
        else begin
          tx_write q.stm tx tail (w + 1);
          tx_write q.stm tx 1 (w + 1)
        end)

  let dequeue q ~tid =
    let result =
      atomically q.stm ~tid (fun tx ->
          let head = tx_read q.stm tx 0 - 1 in
          if head < 0 then None
          else begin
            let next = tx_read q.stm tx head in
            let blk = tx_read q.stm tx (head + 1) - 1 in
            tx_write q.stm tx 0 next;
            if next = 0 then tx_write q.stm tx 1 0;
            Some (head, blk)
          end)
    in
    match result with
    | None -> None
    | Some (w, blk) ->
        let value = Pmem.read_block q.stm.pm ~off:blk in
        Pmem.free q.stm.pm ~tid blk;
        q.free.(tid) := w :: !(q.free.(tid));
        Some value
end

(* ---- hashmap over the STM ---- *)

module Map = struct
  (* Word-space layout: words [0, nbuckets) are bucket heads holding
     (node_word + 1).  Node words are allocated from a bump cursor in
     word space, 3 words per node: [next+1 | key_block+1 | val_block+1].
     Blocks are Pmem string blocks written inside the transaction. *)

  type m = {
    stm : t;
    nbuckets : int;
    bump : int Atomic.t; (* next free word *)
    free_nodes : int list ref array; (* per-thread node free lists *)
    size : int Atomic.t;
  }

  let create ?(buckets = 1 lsl 10) stm =
    {
      stm;
      nbuckets = buckets;
      bump = Atomic.make buckets;
      free_nodes = Array.init (Array.length stm.log_base) (fun _ -> ref []);
      size = Atomic.make 0;
    }

  let size m = Atomic.get m.size
  let bucket_of m key = Hashtbl.hash key land (m.nbuckets - 1)

  let alloc_node m ~tid =
    match !(m.free_nodes.(tid)) with
    | w :: rest ->
        m.free_nodes.(tid) := rest;
        w
    | [] ->
        let w = Atomic.fetch_and_add m.bump 3 in
        if w + 3 > m.stm.words then
          (failwith "Mnemosyne.Map: word space exhausted" [@montage.allow "R4: simulated-capacity limit of the baseline; intentionally fatal so a benchmark misconfiguration cannot masquerade as a result"]);
        w

  let free_node m ~tid w = m.free_nodes.(tid) := w :: !(m.free_nodes.(tid))

  let read_block m off = Pmem.read_block m.stm.pm ~off

  let get m ~tid key =
    atomically m.stm ~tid (fun tx ->
        let rec find w =
          if w < 0 then None
          else
            let kblk = tx_read m.stm tx (w + 1) - 1 in
            if String.equal (read_block m kblk) key then
              Some (read_block m (tx_read m.stm tx (w + 2) - 1))
            else find (tx_read m.stm tx w - 1)
        in
        find (tx_read m.stm tx (bucket_of m key) - 1))

  let put m ~tid key value =
    let outcome =
      atomically m.stm ~tid (fun tx ->
          let b = bucket_of m key in
          let head = tx_read m.stm tx b - 1 in
          let rec find w =
            if w < 0 then None
            else
              let kblk = tx_read m.stm tx (w + 1) - 1 in
              if String.equal (read_block m kblk) key then Some w
              else find (tx_read m.stm tx w - 1)
          in
          match find head with
          | Some w ->
              let old_vblk = tx_read m.stm tx (w + 2) - 1 in
              let old = read_block m old_vblk in
              let vblk = Pmem.write_block m.stm.pm ~tid ~data:value in
              tx_track_data tx ~off:vblk ~len:(4 + String.length value);
              tx_write m.stm tx (w + 2) (vblk + 1);
              `Updated (old, old_vblk)
          | None ->
              let w = alloc_node m ~tid in
              let kblk = Pmem.write_block m.stm.pm ~tid ~data:key in
              let vblk = Pmem.write_block m.stm.pm ~tid ~data:value in
              tx_track_data tx ~off:kblk ~len:(4 + String.length key);
              tx_track_data tx ~off:vblk ~len:(4 + String.length value);
              tx_write m.stm tx w (head + 1);
              tx_write m.stm tx (w + 1) (kblk + 1);
              tx_write m.stm tx (w + 2) (vblk + 1);
              tx_write m.stm tx b (w + 1);
              `Inserted)
    in
    match outcome with
    | `Updated (old, old_vblk) ->
        Pmem.free m.stm.pm ~tid old_vblk;
        Some old
    | `Inserted ->
        Atomic.incr m.size;
        None

  let remove m ~tid key =
    let outcome =
      atomically m.stm ~tid (fun tx ->
          let b = bucket_of m key in
          let rec walk prev w =
            if w < 0 then `Missing
            else
              let kblk = tx_read m.stm tx (w + 1) - 1 in
              if String.equal (read_block m kblk) key then begin
                let next = tx_read m.stm tx w in
                let vblk = tx_read m.stm tx (w + 2) - 1 in
                let old = read_block m vblk in
                (match prev with
                | None -> tx_write m.stm tx b next
                | Some p -> tx_write m.stm tx p next);
                `Removed (old, w, kblk, vblk)
              end
              else walk (Some w) (tx_read m.stm tx w - 1)
          in
          walk None (tx_read m.stm tx b - 1))
    in
    match outcome with
    | `Missing -> None
    | `Removed (old, w, kblk, vblk) ->
        free_node m ~tid w;
        Pmem.free m.stm.pm ~tid kblk;
        Pmem.free m.stm.pm ~tid vblk;
        Atomic.decr m.size;
        Some old
end
