(* Reimplementation of the Dalí hashmap (Nawab et al., DISC '17) in the
   software-dirty-tracking form the Montage paper benchmarks against.

   Dalí is buffered durably linearizable and keeps the *entire*
   structure in NVM.  Each bucket is an append-only list of records:
   an insert or update prepends a fresh record, a remove prepends a
   tombstone, and readers take the first (newest) record for a key.
   Nothing is flushed on the operation path — dirty ranges are tracked
   in software — but at every epoch boundary an application thread
   must (a) write back all dirty lines, fence, and advance the
   persistent epoch, and (b) compact the buckets that accumulated
   shadowed records or tombstones, rewriting the survivors.  This
   worker-borne periodic flush/compaction plus the NVM-resident
   traversals are exactly the costs Montage avoids with its transient
   index and dedicated background advancer, and they are why Dalí
   trails Montage in the paper's Figures 7–8.

   Record layout: [8 next+1 | 8 epoch | 4 klen | 4 vlen | key | value],
   vlen = 0xFFFFFFFF marks a tombstone. *)

let tombstone_vlen = 0xFFFFFFFF

type t = {
  pm : Pmem.t;
  nbuckets : int;
  bucket_base : int; (* region offset of the persistent head array *)
  locks : Util.Spin_lock.t array;
  dirty : (int * int) list ref array; (* per-thread dirty ranges *)
  (* per bucket: epoch in which records became shadowed (0 = clean);
     the bucket is compacted lazily by the next writer after that
     epoch has persisted, as Dalí cleans buckets on access *)
  needs_compaction : int array;
  epoch : int Atomic.t;
  epoch_root : int;
  persist_lock : Util.Spin_lock.t;
  size : int Atomic.t;
  epoch_length_s : float;
  mutable last_persist : float;
  op_count : int Atomic.t;
}

let header_size = 24

let create ?(buckets = 1 lsl 10) ?(epoch_length_s = 0.01) pm =
  let region = Pmem.region pm in
  let epoch_root = Pmem.root_base in
  let bucket_base = Pmem.root_base + 64 in
  if bucket_base + (8 * buckets) > Pmem.heap_base then
    invalid_arg "Dali_map: bucket array exceeds the root area (use <= 8128 buckets)";
  Nvm.Region.set_i64 region ~off:epoch_root 3;
  Nvm.Region.persist region ~tid:0 ~off:epoch_root ~len:8;
  {
    pm;
    nbuckets = buckets;
    bucket_base;
    locks = Array.init buckets (fun _ -> Util.Spin_lock.create ());
    dirty = Array.init (Nvm.Region.max_threads region) (fun _ -> ref []);
    needs_compaction = Array.make buckets 0;
    epoch = Atomic.make 3;
    epoch_root;
    persist_lock = Util.Spin_lock.create ();
    size = Atomic.make 0;
    epoch_length_s;
    last_persist = Unix.gettimeofday ();
    op_count = Atomic.make 0;
  }

let size t = Atomic.get t.size
let bucket_slot t key = Hashtbl.hash key land (t.nbuckets - 1)
let bucket_off t idx = t.bucket_base + (8 * idx)
let mark_dirty t ~tid ~off ~len = t.dirty.(tid) := (off, len) :: !(t.dirty.(tid))

(* record accessors *)
let next_of region off = Nvm.Region.get_i64 region ~off - 1
let klen_of region off = Nvm.Region.get_i32 region ~off:(off + 16)
let vlen_of region off = Nvm.Region.get_i32 region ~off:(off + 20)
let is_tombstone region off = vlen_of region off = tombstone_vlen
let key_of region off = Nvm.Region.read_string region ~off:(off + header_size) ~len:(klen_of region off)

let value_of region off =
  Nvm.Region.read_string region ~off:(off + header_size + klen_of region off) ~len:(vlen_of region off)

let write_record t ~tid ~next ~key ~value ~tomb =
  let region = Pmem.region t.pm in
  let klen = String.length key and vlen = String.length value in
  let total = header_size + klen + vlen in
  let off = Pmem.alloc t.pm ~tid ~size:total in
  Nvm.Region.set_i64 region ~off (next + 1);
  Nvm.Region.set_i64 region ~off:(off + 8) (Atomic.get t.epoch);
  Nvm.Region.set_i32 region ~off:(off + 16) klen;
  Nvm.Region.set_i32 region ~off:(off + 20) (if tomb then tombstone_vlen else vlen);
  Nvm.Region.write_string region ~off:(off + header_size) key;
  if not tomb then Nvm.Region.write_string region ~off:(off + header_size + klen) value;
  mark_dirty t ~tid ~off ~len:total;
  off

(* Rewrite one bucket keeping only visible survivors (newest record per
   key, tombstones dropped).  Caller holds the bucket lock. *)
let compact_bucket t ~tid idx =
  let region = Pmem.region t.pm in
  let head = Nvm.Region.get_i64 region ~off:(bucket_off t idx) - 1 in
  let seen = Hashtbl.create 8 in
  let survivors = ref [] in
  let rec scan off =
    if off >= 0 then begin
      let key = key_of region off in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        if not (is_tombstone region off) then survivors := (key, value_of region off) :: !survivors
      end;
      scan (next_of region off)
    end
  in
  scan head;
  (* rebuild, newest-last ordering is immaterial *)
  let new_head =
    List.fold_left (fun next (key, value) -> write_record t ~tid ~next ~key ~value ~tomb:false) (-1)
      !survivors
  in
  Nvm.Region.set_i64 region ~off:(bucket_off t idx) (new_head + 1);
  mark_dirty t ~tid ~off:(bucket_off t idx) ~len:8;
  (* free the entire old record list *)
  let rec free_list off =
    if off >= 0 then begin
      let nxt = next_of region off in
      Pmem.free t.pm ~tid off;
      free_list nxt
    end
  in
  free_list head;
  t.needs_compaction.(idx) <- 0

(* Epoch boundary: write back all dirty ranges, fence, bump the
   persistent epoch, then compact shadowed buckets.  All charged — an
   application thread performs it. *)
let persist_all t ~tid =
  Util.Spin_lock.with_lock t.persist_lock (fun () ->
      let region = Pmem.region t.pm in
      Array.iter
        (fun cell ->
          let ranges = !cell in
          cell := [];
          List.iter (fun (off, len) -> Nvm.Region.writeback region ~tid ~off ~len) ranges)
        t.dirty;
      let e = Atomic.get t.epoch in
      Nvm.Region.set_i64 region ~off:t.epoch_root (e + 1);
      Nvm.Region.writeback region ~tid ~off:t.epoch_root ~len:8;
      Nvm.Region.sfence region ~tid;
      Pmem.expect_fenced t.pm ~what:"dali_map.persist_all: epoch root durable at boundary"
        ~off:t.epoch_root ~len:8;
      t.last_persist <- Unix.gettimeofday ();
      Atomic.set t.epoch (e + 1))

(* Every 64th update checks whether the epoch elapsed; the thread that
   notices pays for the whole flush + compaction pass. *)
let maybe_persist t ~tid =
  if Atomic.fetch_and_add t.op_count 1 land 63 = 0 then
    if Unix.gettimeofday () -. t.last_persist >= t.epoch_length_s then persist_all t ~tid

(* First (newest) record for the key decides visibility. *)
let find_visible region head key =
  let rec scan off =
    if off < 0 then None
    else if String.equal (key_of region off) key then
      if is_tombstone region off then Some (off, None) else Some (off, Some (value_of region off))
    else scan (next_of region off)
  in
  scan head

let get t ~tid:_ key =
  let idx = bucket_slot t key in
  let region = Pmem.region t.pm in
  Util.Spin_lock.with_lock t.locks.(idx) (fun () ->
      let head = Nvm.Region.get_i64 region ~off:(bucket_off t idx) - 1 in
      match find_visible region head key with Some (_, v) -> v | None -> None)

let put t ~tid key value =
  maybe_persist t ~tid;
  let idx = bucket_slot t key in
  let region = Pmem.region t.pm in
  Util.Spin_lock.with_lock t.locks.(idx) (fun () ->
      let flagged = t.needs_compaction.(idx) in
      if flagged > 0 && Atomic.get t.epoch > flagged then compact_bucket t ~tid idx;
      let head = Nvm.Region.get_i64 region ~off:(bucket_off t idx) - 1 in
      let previous = find_visible region head key in
      let fresh = write_record t ~tid ~next:head ~key ~value ~tomb:false in
      Nvm.Region.set_i64 region ~off:(bucket_off t idx) (fresh + 1);
      mark_dirty t ~tid ~off:(bucket_off t idx) ~len:8;
      match previous with
      | Some (_, Some old) ->
          t.needs_compaction.(idx) <- Atomic.get t.epoch;
          Some old
      | Some (_, None) ->
          (* shadowing a tombstone *)
          t.needs_compaction.(idx) <- Atomic.get t.epoch;
          Atomic.incr t.size;
          None
      | None ->
          Atomic.incr t.size;
          None)

let remove t ~tid key =
  maybe_persist t ~tid;
  let idx = bucket_slot t key in
  let region = Pmem.region t.pm in
  Util.Spin_lock.with_lock t.locks.(idx) (fun () ->
      let flagged = t.needs_compaction.(idx) in
      if flagged > 0 && Atomic.get t.epoch > flagged then compact_bucket t ~tid idx;
      let head = Nvm.Region.get_i64 region ~off:(bucket_off t idx) - 1 in
      match find_visible region head key with
      | None | Some (_, None) -> None
      | Some (_, Some old) ->
          let fresh = write_record t ~tid ~next:head ~key ~value:"" ~tomb:true in
          Nvm.Region.set_i64 region ~off:(bucket_off t idx) (fresh + 1);
          mark_dirty t ~tid ~off:(bucket_off t idx) ~len:8;
          t.needs_compaction.(idx) <- Atomic.get t.epoch;
          Atomic.decr t.size;
          Some old)
