(** Shared plumbing for the baseline persistence systems: a region plus
    a Ralloc instance, with a root area for persistent roots in
    [root_base, heap_base). *)

val root_base : int
val heap_base : int

type t

(** [heap_base] can be raised by systems that reserve extra fixed areas
    (word spaces, logs) between the roots and the block heap. *)
val create : ?heap_base:int -> Nvm.Region.t -> t

val region : t -> Nvm.Region.t
val alloc : t -> tid:int -> size:int -> int
val free : t -> tid:int -> int -> unit

(** Store a [4-byte length | data] block; returns its offset. *)
val write_block : t -> tid:int -> data:string -> int

val read_block : t -> off:int -> string
val persist : t -> tid:int -> off:int -> len:int -> unit
val writeback : t -> tid:int -> off:int -> len:int -> unit
val sfence : t -> tid:int -> unit

(** Declare a flush contract to the persistency checker: the range must
    have reached media since its last store.  No-op without an attached
    checker (see {!Nvm.Region.enable_pcheck}). *)
val expect_fenced : t -> what:string -> off:int -> len:int -> unit

(** Run a recovery scan with the checker's read-after-crash rule
    suspended — the system's recovery contract makes reading
    unfenced-persisted lines sound there. *)
val with_recovery_scan : t -> (unit -> 'a) -> 'a
