(* Shared plumbing for the baseline persistence systems.

   Every baseline owns a region (they are benchmarked in isolation) and
   allocates payload/node blocks from a Ralloc instance.  The first
   64 KB of the region is a root area where a system may keep persistent
   roots (list heads, log cursors, epoch counters); the allocator heap
   starts beyond it — the same layout Montage uses. *)

let root_base = 64 (* byte offset of the first root slot *)
let heap_base = 65536

type t = { region : Nvm.Region.t; alloc : Ralloc.t }

(* [heap_base] can be raised by systems that reserve extra fixed areas
   (word spaces, logs) between the roots and the block heap. *)
let create ?(heap_base = heap_base) region = { region; alloc = Ralloc.create region ~heap_base }

let region t = t.region
let alloc t ~tid ~size = Ralloc.alloc t.alloc ~tid ~size
let free t ~tid off = Ralloc.free t.alloc ~tid off

(* Store (and optionally persist) a string block: [4-byte length | data].
   Returns the block offset. *)
let write_block t ~tid ~data =
  let len = String.length data in
  let off = alloc t ~tid ~size:(4 + len) in
  Nvm.Region.set_i32 t.region ~off len;
  Nvm.Region.write_string t.region ~off:(off + 4) data;
  off

let read_block t ~off =
  let len = Nvm.Region.get_i32 t.region ~off in
  Nvm.Region.read_string t.region ~off:(off + 4) ~len

let persist t ~tid ~off ~len = Nvm.Region.persist t.region ~tid ~off ~len
let writeback t ~tid ~off ~len = Nvm.Region.writeback t.region ~tid ~off ~len
let sfence t ~tid = Nvm.Region.sfence t.region ~tid

(* ---- flush-contract declarations (Pcheck) ---- *)

(* Baselines place [expect_fenced] at the points their per-operation
   flush contract requires durability, so a checker violation names the
   broken contract.  Both are no-ops without an attached checker. *)
let expect_fenced t ~what ~off ~len = Nvm.Region.expect_fenced t.region ~what ~off ~len

(* Bracket a recovery scan: reads inside [f] may touch lines whose
   content persisted without a fence (crash injection); each system's
   recovery contract (epoch cuts, dequeue marks, log headers) makes
   those reads sound, so the checker's read-after-crash rule is
   suspended for the scan. *)
let with_recovery_scan t f =
  match Nvm.Region.checker t.region with
  | None -> f ()
  | Some c ->
      Nvm.Pcheck.set_recovery_scan c true;
      Fun.protect ~finally:(fun () -> Nvm.Pcheck.set_recovery_scan c false) f
