(* Pronto (Memaripour, Izraelevitz & Swanson, ASPLOS '20): persistence
   for volatile data structures by high-level operation logging plus
   periodic checkpoints.

   Every mutating operation appends a semantic log record — opcode,
   key, value — to a per-thread NVM log and *persists it before
   returning*; that per-operation persist is the cost Montage removes.
   Two flavours match the paper's curves:

   - [Sync]: the calling thread write-backs and fences the record
     itself (Pronto-Sync);
   - [Full]: the write-back is issued by the caller but the fence wait
     is offloaded to the sister hyperthread (Pronto-Full).  On this
     one-core simulator we model the overlap by charging the
     write-back but not the fence drain on the critical path.

   A checkpoint (every [ckpt_every] logged ops) serializes the whole
   map into the checkpoint area and resets the logs, bounding recovery
   work.  Recovery = load checkpoint + replay logs.

   The underlying map is a plain transient one — Pronto's whole point
   is persisting unmodified volatile structures.

   Region layout: root: [8 ckpt_len | 8 ckpt_seal]; per-thread log
   areas of fixed size; checkpoint area after the logs. *)

type mode = Sync | Full

type t = {
  pm : Pmem.t;
  mode : mode;
  map : Transient_map.t; (* the volatile structure being persisted *)
  log_base : int array; (* per-thread log area base *)
  log_pos : int array; (* per-thread append cursor *)
  log_capacity : int;
  ckpt_base : int;
  ckpt_capacity : int;
  ckpt_lock : Util.Spin_lock.t;
  ckpt_every : int;
  ops_since_ckpt : int Atomic.t;
  (* Pronto serializes operations on each persistent object so that log
     replay is deterministic — the coarse lock that caps its
     scalability in the paper's Figures 6–7. *)
  op_lock : Util.Spin_lock.t;
}

let opcode_put = 1
let opcode_remove = 2

let create ?(buckets = 1 lsl 16) ?(log_capacity = 1 lsl 22) ?(ckpt_every = 100_000)
    ?(threads = 8) ~mode pm =
  let region_cap = Nvm.Region.capacity (Pmem.region pm) in
  let log_total = log_capacity * threads in
  let ckpt_base = Pmem.heap_base + log_total in
  if ckpt_base + (region_cap / 4) > region_cap then
    invalid_arg "Pronto.create: region too small for logs + checkpoint";
  {
    pm;
    mode;
    map = Transient_map.create ~buckets Transient_map.Dram;
    log_base = Array.init threads (fun i -> Pmem.heap_base + (i * log_capacity));
    log_pos = Array.make threads 0;
    log_capacity;
    ckpt_base;
    ckpt_capacity = region_cap - ckpt_base;
    ckpt_lock = Util.Spin_lock.create ();
    ckpt_every;
    ops_since_ckpt = Atomic.make 0;
    op_lock = Util.Spin_lock.create ();
  }

let size t = Transient_map.size t.map

(* Serialize the whole map into the checkpoint area, persist it, seal
   it, and reset the logs — Pronto's background checkpointing, done
   inline under a lock (the paper's version quiesces similarly). *)
let checkpoint t ~tid =
  Util.Spin_lock.with_lock t.ckpt_lock (fun () ->
      let region = Pmem.region t.pm in
      let buf = Buffer.create 4096 in
      Array.iter
        (fun b ->
          Util.Spin_lock.with_lock b.Transient_map.lock (fun () ->
              let rec chain = function
                | None -> ()
                | Some n ->
                    let v = n.Transient_map.value in
                    Buffer.add_int32_le buf (Int32.of_int (String.length n.Transient_map.key));
                    Buffer.add_string buf n.Transient_map.key;
                    Buffer.add_int32_le buf (Int32.of_int (String.length v));
                    Buffer.add_string buf v;
                    chain n.Transient_map.next
              in
              chain b.Transient_map.head))
        (Transient_map.buckets_of t.map);
      let data = Buffer.contents buf in
      if 16 + String.length data > t.ckpt_capacity then
        (failwith "Pronto: checkpoint area full" [@montage.allow "R4: simulated-capacity limit of the baseline; intentionally fatal so a benchmark misconfiguration cannot masquerade as a result"]);
      Nvm.Region.write_string region ~off:(t.ckpt_base + 16) data;
      Nvm.Region.set_i64 region ~off:t.ckpt_base (String.length data);
      Pmem.writeback t.pm ~tid ~off:t.ckpt_base ~len:(16 + String.length data);
      Pmem.sfence t.pm ~tid;
      (* seal after the data is durable, then persist the seal *)
      Nvm.Region.set_i64 region ~off:(t.ckpt_base + 8) 1;
      Pmem.persist t.pm ~tid ~off:(t.ckpt_base + 8) ~len:8;
      (* truncate the logs: a zero opcode at each base stops replay *)
      Array.iter
        (fun base ->
          Nvm.Region.set_u8 region ~off:base 0;
          Pmem.writeback t.pm ~tid ~off:base ~len:1)
        t.log_base;
      Pmem.sfence t.pm ~tid;
      Array.fill t.log_pos 0 (Array.length t.log_pos) 0;
      Atomic.set t.ops_since_ckpt 0)

(* Append one semantic record to the caller's log and persist it.  The
   trailing valid byte lets recovery detect a torn final record.
   Record: [1 opcode | 4 klen | 4 vlen | key | value | 1 valid]. *)
let log_op t ~tid ~opcode ~key ~value =
  let region = Pmem.region t.pm in
  let klen = String.length key and vlen = String.length value in
  let len = 10 + klen + vlen in
  if t.log_pos.(tid) + len + 1 > t.log_capacity then checkpoint t ~tid;
  let off = t.log_base.(tid) + t.log_pos.(tid) in
  Nvm.Region.set_u8 region ~off opcode;
  Nvm.Region.set_i32 region ~off:(off + 1) klen;
  Nvm.Region.set_i32 region ~off:(off + 5) vlen;
  Nvm.Region.write_string region ~off:(off + 9) key;
  if vlen > 0 then Nvm.Region.write_string region ~off:(off + 9 + klen) value;
  Nvm.Region.set_u8 region ~off:(off + 9 + klen + vlen) 1;
  (* pre-truncate the next slot so replay stops after this record *)
  Nvm.Region.set_u8 region ~off:(off + len) 0;
  t.log_pos.(tid) <- t.log_pos.(tid) + len;
  (* Pronto's logging runtime: op-descriptor construction, ASAP-path
     bookkeeping, and the wait for the record to become durable before
     the operation may return.  The ASPLOS paper reports multi-µs
     per-operation latencies; Full overlaps part of the wait on the
     sister hyperthread. *)
  Util.Spin_wait.ns (match t.mode with Sync -> 2200 | Full -> 1500);
  (match t.mode with
  | Sync -> Pmem.persist t.pm ~tid ~off ~len:(len + 1)
  | Full ->
      (* Pronto-Full offloads the drain wait to the sister hyperthread:
         the caller issues the write-backs, pays the handshake with the
         logger, and the line drain overlaps its next work.  Charged as
         CLWB issue + a fence handshake, without the per-line wait. *)
      Pmem.writeback t.pm ~tid ~off ~len:(len + 1);
      Nvm.Region.sfence_async (Pmem.region t.pm) ~tid);
  if Atomic.fetch_and_add t.ops_since_ckpt 1 >= t.ckpt_every then checkpoint t ~tid

(* ---- recovery ---- *)

(* Rebuild the map from the sealed checkpoint plus the per-thread logs.
   The paper's replay is order-sensitive across threads; Pronto
   timestamps records with a global sequence — we conservatively replay
   thread logs in turn, which is faithful for the benchmark workloads
   (distinct hot keys per thread) and bounded by the same volume. *)
let recover ?(buckets = 1 lsl 16) ?(log_capacity = 1 lsl 22) ?(ckpt_every = 100_000)
    ?(threads = 8) ~mode pm =
  let t = create ~buckets ~log_capacity ~ckpt_every ~threads ~mode pm in
  let region = Pmem.region t.pm in
  (* load the checkpoint when sealed *)
  if Nvm.Region.get_i64 region ~off:(t.ckpt_base + 8) = 1 then begin
    let len = Nvm.Region.get_i64 region ~off:t.ckpt_base in
    let pos = ref 0 in
    while !pos < len do
      let base = t.ckpt_base + 16 + !pos in
      let klen = Nvm.Region.get_i32 region ~off:base in
      let key = Nvm.Region.read_string region ~off:(base + 4) ~len:klen in
      let vlen = Nvm.Region.get_i32 region ~off:(base + 4 + klen) in
      let value = Nvm.Region.read_string region ~off:(base + 8 + klen) ~len:vlen in
      ignore (Transient_map.put t.map ~tid:0 key value);
      pos := !pos + 8 + klen + vlen
    done
  end;
  (* replay each thread's log up to the first invalid record *)
  Array.iter
    (fun base ->
      let pos = ref 0 in
      let continue = ref true in
      while !continue do
        let off = base + !pos in
        let opcode = Nvm.Region.get_u8 region ~off in
        if opcode <> opcode_put && opcode <> opcode_remove then continue := false
        else begin
          let klen = Nvm.Region.get_i32 region ~off:(off + 1) in
          let vlen = Nvm.Region.get_i32 region ~off:(off + 5) in
          if
            klen < 0 || vlen < 0
            || off + 10 + klen + vlen > base + log_capacity
            || Nvm.Region.get_u8 region ~off:(off + 9 + klen + vlen) <> 1
          then continue := false
          else begin
            let key = Nvm.Region.read_string region ~off:(off + 9) ~len:klen in
            if opcode = opcode_put then begin
              let value = Nvm.Region.read_string region ~off:(off + 9 + klen) ~len:vlen in
              ignore (Transient_map.put t.map ~tid:0 key value)
            end
            else ignore (Transient_map.remove t.map ~tid:0 key);
            pos := !pos + 10 + klen + vlen
          end
        end
      done)
    t.log_base;
  t

let get t ~tid key = Transient_map.get t.map ~tid key

let put t ~tid key value =
  Util.Spin_lock.with_lock t.op_lock (fun () ->
      let old = Transient_map.put t.map ~tid key value in
      log_op t ~tid ~opcode:opcode_put ~key ~value;
      old)

let remove t ~tid key =
  Util.Spin_lock.with_lock t.op_lock (fun () ->
      let old = Transient_map.remove t.map ~tid key in
      log_op t ~tid ~opcode:opcode_remove ~key ~value:"";
      old)
