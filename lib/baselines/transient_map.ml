(* Transient reference hashmaps (paper's DRAM (T) and NVM (T)).

   Same shape as the Montage hashmap — lock-per-bucket sorted chains,
   transient index on the OCaml heap — but with no persistence support.
   DRAM (T) keeps values as OCaml strings; NVM (T) stores each value in
   a region block (paying the simulated media costs on reads/writes)
   without any write-back or fencing, which is the paper's performance
   ceiling for a persistent map. *)

type placement = Dram | Nvm of Pmem.t

type node = {
  key : string;
  mutable value : string; (* Dram placement *)
  mutable block : int; (* Nvm placement: block offset, -1 if unused *)
  mutable next : node option;
}

type bucket = { lock : Util.Spin_lock.t; mutable head : node option }

type t = { placement : placement; buckets : bucket array; size : int Atomic.t }

let create ?(buckets = 1 lsl 16) placement =
  {
    placement;
    buckets = Array.init buckets (fun _ -> { lock = Util.Spin_lock.create (); head = None });
    size = Atomic.make 0;
  }

let bucket_of t key = t.buckets.(Hashtbl.hash key land (Array.length t.buckets - 1))
let size t = Atomic.get t.size

(* Expose the bucket array for clients that must iterate the whole map
   under their own locking discipline (Pronto's checkpointer). *)
let buckets_of t = t.buckets

let node_value t n =
  match t.placement with Dram -> n.value | Nvm pm -> Pmem.read_block pm ~off:n.block

(* The DRAM baseline must pay the same per-operation byte copy a C/C++
   structure pays when it memcpys the value into its own node; handing
   out the caller's immutable string would make DRAM (T) artificially
   zero-copy. *)
let private_copy s = Bytes.unsafe_to_string (Bytes.of_string s)

let make_node t ~tid key value next =
  match t.placement with
  | Dram -> { key; value = private_copy value; block = -1; next }
  | Nvm pm -> { key; value = ""; block = Pmem.write_block pm ~tid ~data:value; next }

let set_node_value t ~tid n value =
  match t.placement with
  | Dram -> n.value <- private_copy value
  | Nvm pm ->
      Pmem.free pm ~tid n.block;
      n.block <- Pmem.write_block pm ~tid ~data:value

let free_node t ~tid n = match t.placement with Dram -> () | Nvm pm -> Pmem.free pm ~tid n.block

let get t ~tid:_ key =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec find = function
        | None -> None
        | Some n when String.equal n.key key -> Some (node_value t n)
        | Some n -> find n.next
      in
      find b.head)

let put t ~tid key value =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec walk prev curr =
        match curr with
        | Some n when String.equal n.key key ->
            let old = node_value t n in
            set_node_value t ~tid n value;
            Some old
        | Some n when n.key > key ->
            let fresh = make_node t ~tid key value curr in
            (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
            Atomic.incr t.size;
            None
        | Some n -> walk (Some n) n.next
        | None ->
            let fresh = make_node t ~tid key value None in
            (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
            Atomic.incr t.size;
            None
      in
      walk None b.head)

(* Atomic read-modify-write under the bucket lock, mirroring
   [Mhashmap.update]: [f]'s [Some] result is stored (inserting if the
   key was absent); [None] leaves the map unchanged.  Returns the
   previous value.  Keeps the transient references honest when the
   kvstore benchmarks race add/replace/incr against each other. *)
let update t ~tid key f =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let insert prev curr value =
        let fresh = make_node t ~tid key value curr in
        (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
        Atomic.incr t.size
      in
      let rec walk prev curr =
        match curr with
        | Some n when String.equal n.key key ->
            let old = node_value t n in
            (match f (Some old) with
            | Some value -> set_node_value t ~tid n value
            | None -> ());
            Some old
        | Some n when n.key > key ->
            (match f None with Some value -> insert prev curr value | None -> ());
            None
        | Some n -> walk (Some n) n.next
        | None ->
            (match f None with Some value -> insert prev curr value | None -> ());
            None
      in
      walk None b.head)

let remove t ~tid key =
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec walk prev curr =
        match curr with
        | Some n when String.equal n.key key ->
            let old = node_value t n in
            free_node t ~tid n;
            (match prev with None -> b.head <- n.next | Some p -> p.next <- n.next);
            Atomic.decr t.size;
            Some old
        | Some n when n.key > key -> None
        | Some n -> walk (Some n) n.next
        | None -> None
      in
      walk None b.head)
