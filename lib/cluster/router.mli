(** Consistent-hashing router: one memcached-text-protocol endpoint
    fronting N independent shard processes, each an unmodified
    {!Netserve} instance over its own Montage region.

    The router is a single event-loop domain multiplexed through
    {!Netserve.Poller} (epoll/select): client connections on one side,
    one pipelined upstream connection per shard on the other.  Each
    request is parsed just enough to learn the verb and key(s), then
    forwarded verbatim to the owning shard ({!Ring.lookup}); replies
    are matched FIFO per upstream and released to each client in
    request order, so pipelining works end to end.  Multi-key [get]s
    are split by owning shard and reassembled under a single [END];
    [stats] is fanned to every Up shard and merged (numeric values
    summed) with the router's own [cluster_*] lines; [flush_all] is
    broadcast.

    {b Availability}: a connect or I/O failure marks the shard Down.
    Its keyspace answers [SERVER_ERROR shard down] — ownership never
    migrates, because the data lives in that shard's region and
    nowhere else — while the survivors keep serving theirs.  A Down
    shard is probed every [probe_interval_s]; since a restarting shard
    recovers its region {e before} opening its listening socket, a
    successful probe implies recovery is complete, and the shard is
    marked Up again (the rejoin).  Per-shard epoch clocks never need
    cross-shard synchronization: a key lives on exactly one shard, so
    per-key durable linearizability is exactly that shard's Montage
    guarantee (see DESIGN.md, "Cluster"). *)

type shard_addr = { sid : int; shost : string; sport : int }

type config = {
  host : string;
  port : int;  (** 0 = kernel-assigned; read it back with {!port} *)
  backlog : int;
  max_conns : int;
  read_chunk : int;
  out_hwm : int;  (** pause a client's reads above this much pending output *)
  max_line : int;
  max_value : int;  (** data-block cap, enforced before forwarding *)
  idle_timeout_s : float;  (** 0. = never *)
  tick_s : float;
  vnodes : int;  (** ring points per shard *)
  probe_interval_s : float;  (** Down-shard reconnect cadence *)
  connect_timeout_s : float;  (** nonblocking connect + probe deadline *)
  poller : Netserve.Poller.kind option;
}

val default_config : config

type t

(** Bind the client endpoint and spawn the router domain.  Shards all
    start Down and are probed immediately, so a router may start
    before (or after — the order doesn't matter) its shards; use
    {!wait_up} to block until the fleet is serving. *)
val start : ?config:config -> shard_addr list -> t

val port : t -> int
val poller_kind : t -> Netserve.Poller.kind

(** [(shard id, up?)] snapshot, in ring order. *)
val shard_states : t -> (int * bool) list

(** Block until [n] shards are Up (default: all), polling the state
    snapshot.  Returns [false] on timeout. *)
val wait_up : ?n:int -> t -> timeout_s:float -> bool

type stats = {
  clients_accepted : int;
  bytes_in : int;
  bytes_out : int;
  requests : int;
  shard_down_errors : int;  (** requests answered [SERVER_ERROR shard down] *)
  downs : int;  (** Up→Down transitions observed *)
  rejoins : int;  (** Down→Up transitions (successful probes) *)
}

val stats : t -> stats

(** Stop the event loop, close every client and upstream connection.
    Idempotent.  Shard processes are not touched — they belong to the
    supervisor. *)
val stop : t -> unit
