(** One cluster shard: an unmodified {!Netserve} instance over its own
    Montage region, with a heap file giving the region durability
    across process restarts.

    Lifecycle: if [heap_file] exists, the region is rebuilt from it
    with {!Nvm.Region.of_image} and the store recovered ({e before}
    the listening socket opens, so a router's successful probe implies
    recovery is complete); otherwise a fresh region is created.  On
    SIGTERM/SIGINT the shard drains and epoch-syncs through
    {!Netserve.shutdown} — every acked reply is then inside the
    durable frontier — writes {!Nvm.Region.media_image} atomically
    (tmp + rename) to [heap_file], and returns.

    Crash model: the simulated NVM lives in process DRAM, so the heap
    file stands in for the persistence domain — it holds exactly the
    fenced bytes, the same state {!Nvm.Region.crash} would leave on
    real hardware.  A SIGKILLed shard therefore restarts {e empty}
    (nothing reached the "media"); the kill/recover scenarios use
    SIGTERM, whose image write persists precisely the post-sync crash
    state.  See DESIGN.md, "Cluster". *)

type backend = Bk_montage | Bk_mhamt | Bk_transient

val backend_of_string : string -> backend option

type config = {
  backend : backend;
  host : string;
  port : int;
  workers : int;
  capacity_mib : int;
  heap_file : string;  (** "" = no durability (transient, or throwaway) *)
  poller : Netserve.Poller.kind option;
  seconds : float;  (** 0. = until signaled *)
  drain_timeout_s : float;
      (** shutdown drain bound.  A shard is fronted by a router whose
          persistent upstream connection never disconnects on its own,
          so the drain always runs to this deadline — keep it short
          (default 1 s); in-flight requests are still answered first *)
}

val default_config : config

(** Serve until SIGTERM/SIGINT (or [seconds]); then drain, sync, save
    the heap image and return.  [on_ready] fires once the socket is
    bound (with the actual port).  Installs its own signal handlers —
    call this only from a dedicated shard process. *)
val run : ?on_ready:(port:int -> unit) -> config -> (unit, string) result
