(** Child-process supervision for cluster mode: spawn shard (and
    router) processes with [Unix.create_process], reap exits, restart.

    OCaml 5 never forks after domains exist — children are fresh
    execs of the CLI binary ([Sys.executable_name] from the caller),
    so each shard gets its own runtime, domains and Montage region.
    Restart is what makes the rejoin story real: a killed shard comes
    back with the same argv, reloads its heap file, recovers, listens
    on its fixed port, and the router's next probe finds it. *)

type child

type t

val create : unit -> t

(** Spawn [argv] (argv.(0) = program path) as a supervised child.
    stdin/stdout/stderr are inherited. *)
val add : t -> name:string -> argv:string array -> child

val name : child -> string
val pid : child -> int

(** Stop restarting this child (e.g. before a deliberate stop). *)
val set_restart : child -> bool -> unit

(** Reap any exited children (nonblocking); restart those still marked
    for restart, after calling [on_exit name status].  Returns the
    number of restarts performed. *)
val tick : ?on_exit:(string -> Unix.process_status -> unit) -> t -> int

(** Send [signal] (default SIGTERM) to a running child. *)
val signal : ?signal:int -> child -> unit

(** Wait until the child's current pid exits (reaping it), up to
    [timeout_s]; [false] on timeout.  Does not restart. *)
val wait_exit : child -> timeout_s:float -> bool

val restarts : child -> int

(** SIGTERM every child, wait for each up to [timeout_s] (then
    SIGKILL), reap.  The supervisor is unusable afterwards. *)
val shutdown : ?timeout_s:float -> t -> unit
