(* Shard process body: region (fresh or from the heap file) → store →
   Netserve; on SIGTERM, drain + sync, then persist the media image.
   See shard.mli for the crash model. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

type backend = Bk_montage | Bk_mhamt | Bk_transient

let backend_of_string = function
  | "montage" -> Some Bk_montage
  | "mhamt" -> Some Bk_mhamt
  | "transient" -> Some Bk_transient
  | _ -> None

type config = {
  backend : backend;
  host : string;
  port : int;
  workers : int;
  capacity_mib : int;
  heap_file : string;
  poller : Netserve.Poller.kind option;
  seconds : float;
  drain_timeout_s : float;
}

let default_config =
  {
    backend = Bk_montage;
    host = "127.0.0.1";
    port = 0;
    workers = 1;
    capacity_mib = 64;
    heap_file = "";
    poller = None;
    seconds = 0.0;
    drain_timeout_s = 1.0;
  }

let mib = 1024 * 1024

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

(* tmp + rename: the heap file is either the old image or the new one,
   never a torn mix — the file-system analog of a failure-atomic
   checkpoint *)
let write_file_atomic path bytes =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc bytes);
  Sys.rename tmp path

let run ?(on_ready = fun ~port:_ -> ()) cfg =
  if cfg.workers < 1 then Error "workers must be >= 1"
  else begin
    let image =
      if cfg.heap_file <> "" && Sys.file_exists cfg.heap_file then
        Some (read_file cfg.heap_file)
      else None
    in
    let max_threads = cfg.workers + 4 in
    let ecfg = { Cfg.default with max_threads = cfg.workers + 1 } in
    let build_montage of_struct create recover =
      match image with
      | Some img ->
          let region = Nvm.Region.of_image ~max_threads img in
          let esys, payloads = E.recover ~config:ecfg region in
          (Kvstore.Store.create (of_struct (recover esys payloads)), Some esys, Some region)
      | None ->
          let region =
            Nvm.Region.create ~max_threads ~capacity:(cfg.capacity_mib * mib) ()
          in
          let esys = E.create ~config:ecfg region in
          (Kvstore.Store.create (of_struct (create esys)), Some esys, Some region)
    in
    let store, esys, region =
      match cfg.backend with
      | Bk_montage ->
          build_montage Kvstore.Store.of_mhashmap Pstructs.Mhashmap.create
            (fun esys payloads -> Pstructs.Mhashmap.recover esys payloads)
      | Bk_mhamt ->
          build_montage Kvstore.Store.of_mhamt Pstructs.Mhamt.create (fun esys payloads ->
              Pstructs.Mhamt.recover esys payloads)
      | Bk_transient ->
          let m = Baselines.Transient_map.create Baselines.Transient_map.Dram in
          (Kvstore.Store.create (Kvstore.Store.of_transient_map m), None, None)
    in
    let nconfig =
      {
        Netserve.default_config with
        host = cfg.host;
        port = cfg.port;
        workers = cfg.workers;
        poller = cfg.poller;
        (* the router's persistent upstream never disconnects on its
           own, so the drain always runs to this deadline *)
        drain_timeout_s = cfg.drain_timeout_s;
      }
    in
    let t =
      match esys with
      | Some esys ->
          Netserve.start ~config:nconfig
            ~sync:(fun ~tid -> E.sync esys ~tid)
            ~persisted_epoch:(fun () -> E.persisted_epoch esys)
            store
      | None -> Netserve.start ~config:nconfig store
    in
    on_ready ~port:(Netserve.port t);
    let stop = Atomic.make false in
    let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler;
    let deadline =
      if cfg.seconds <= 0.0 then infinity else Unix.gettimeofday () +. cfg.seconds
    in
    while (not (Atomic.get stop)) && Unix.gettimeofday () < deadline do
      try
        Unix.sleepf 0.05
        [@montage.allow
          "R5: EINTR-tolerant signal wait on the shard process's main \
           thread; the serving event loops run in the netserve worker \
           domains"]
      with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    (* drain + join + epoch sync: everything acked is now durable *)
    let d = Netserve.shutdown t in
    Option.iter E.stop_background esys;
    (* only then is the media image the full acked state *)
    (match region with
    | Some region when cfg.heap_file <> "" ->
        write_file_atomic cfg.heap_file (Nvm.Region.media_image region)
    | _ -> ());
    ignore d;
    Ok ()
  end
