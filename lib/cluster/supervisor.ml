(* create_process-based supervision (no fork: OCaml 5 domains make
   fork unsafe, and a fresh exec is what gives each shard its own
   region anyway). *)

type child = {
  c_name : string;
  c_argv : string array;
  mutable c_pid : int;  (* -1 = not running *)
  mutable c_restart : bool;
  mutable c_restarts : int;
}

type t = { mutable children : child list }

let create () = { children = [] }

let spawn_child c =
  c.c_pid <- Unix.create_process c.c_argv.(0) c.c_argv Unix.stdin Unix.stdout Unix.stderr

let add t ~name ~argv =
  let c = { c_name = name; c_argv = argv; c_pid = -1; c_restart = true; c_restarts = 0 } in
  spawn_child c;
  t.children <- t.children @ [ c ];
  c

let name c = c.c_name
let pid c = c.c_pid
let set_restart c b = c.c_restart <- b
let restarts c = c.c_restarts

let tick ?(on_exit = fun _ _ -> ()) t =
  let restarted = ref 0 in
  List.iter
    (fun c ->
      if c.c_pid > 0 then
        match Unix.waitpid [ Unix.WNOHANG ] c.c_pid with
        | 0, _ -> ()
        | _, status ->
            c.c_pid <- -1;
            on_exit c.c_name status;
            if c.c_restart then begin
              spawn_child c;
              c.c_restarts <- c.c_restarts + 1;
              incr restarted
            end
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> c.c_pid <- -1)
    t.children;
  !restarted

let signal ?(signal = Sys.sigterm) c =
  if c.c_pid > 0 then try Unix.kill c.c_pid signal with Unix.Unix_error _ -> ()

let wait_exit c ~timeout_s =
  if c.c_pid <= 0 then true
  else begin
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      match Unix.waitpid [ Unix.WNOHANG ] c.c_pid with
      | 0, _ ->
          if Unix.gettimeofday () > deadline then false
          else begin
            (try
               Unix.sleepf 0.01
               [@montage.allow
                 "R5: supervision control thread pacing a child-exit \
                  wait; no server or structure code runs here"]
             with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            go ()
          end
      | _, _ ->
          c.c_pid <- -1;
          true
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          c.c_pid <- -1;
          true
    in
    go ()
  end

let shutdown ?(timeout_s = 10.0) t =
  List.iter
    (fun c ->
      c.c_restart <- false;
      signal c)
    t.children;
  List.iter
    (fun c ->
      if not (wait_exit c ~timeout_s) then begin
        signal ~signal:Sys.sigkill c;
        ignore (wait_exit c ~timeout_s:5.0)
      end)
    t.children;
  t.children <- []
