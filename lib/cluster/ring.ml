(* Consistent-hash ring: sorted array of (point, shard) pairs on a
   64-bit circle, binary-search lookup with wraparound. *)

type t = {
  vnodes : int;
  ids : int list;  (* sorted, deduped *)
  points : (int64 * int) array;  (* sorted by point, ties by shard id *)
}

(* FNV-1a, 64-bit.  Unsigned comparison below makes the full circle
   usable even though OCaml int64 is signed. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let hash_key = fnv1a_64

let point_of ~id ~vnode = fnv1a_64 (Printf.sprintf "shard-%d-%d" id vnode)

let ucompare (a : int64) (b : int64) =
  (* unsigned 64-bit compare *)
  Int64.unsigned_compare a b

let build vnodes ids =
  let ids = List.sort_uniq compare ids in
  let points = Array.make (List.length ids * vnodes) (0L, 0) in
  let i = ref 0 in
  List.iter
    (fun id ->
      for v = 0 to vnodes - 1 do
        points.(!i) <- (point_of ~id ~vnode:v, id);
        incr i
      done)
    ids;
  Array.sort
    (fun (p1, s1) (p2, s2) ->
      let c = ucompare p1 p2 in
      if c <> 0 then c else compare s1 s2)
    points;
  { vnodes; ids; points }

let create ?(vnodes = 128) ids =
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be positive";
  build vnodes ids

let vnodes t = t.vnodes
let shards t = t.ids

let lookup t key =
  let n = Array.length t.points in
  if n = 0 then invalid_arg "Ring.lookup: empty ring";
  let h = fnv1a_64 key in
  (* first point with point >= h, wrapping to 0 *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p, _ = t.points.(mid) in
    if ucompare p h < 0 then lo := mid + 1 else hi := mid
  done;
  let idx = if !lo = n then 0 else !lo in
  snd t.points.(idx)

let remove t id =
  if not (List.mem id t.ids) then t else build t.vnodes (List.filter (fun x -> x <> id) t.ids)

let add t id = if List.mem id t.ids then t else build t.vnodes (id :: t.ids)
