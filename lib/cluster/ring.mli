(** Consistent-hash ring mapping keys to shard ids.

    Each shard contributes [vnodes] points on a 64-bit hash circle
    (FNV-1a of ["shard-<id>-<vnode>"]); a key is owned by the first
    point clockwise from its own hash.  Because a shard's points
    depend only on its id and vnode index, removing one shard moves
    exactly that shard's keyspace onto the survivors — every other
    key's assignment is untouched.  That stability is what lets the
    router answer [SERVER_ERROR shard down] for precisely the dead
    shard's keys while the survivors keep serving theirs. *)

type t

(** [create ?vnodes ids] builds a ring over the given shard ids
    (duplicates ignored).  [vnodes] defaults to 128 points per
    shard, enough to bound per-shard load skew to a few percent at
    small cluster sizes (see the qcheck bound in test_cluster). *)
val create : ?vnodes:int -> int list -> t

val vnodes : t -> int
val shards : t -> int list

(** Owning shard id for a key.  Raises [Invalid_argument] on an empty
    ring. *)
val lookup : t -> string -> int

(** Ring with shard [id] removed (no-op if absent). *)
val remove : t -> int -> t

(** Ring with shard [id] added (no-op if present). *)
val add : t -> int -> t

(** The 64-bit FNV-1a key hash (exposed for tests). *)
val hash_key : string -> int64
