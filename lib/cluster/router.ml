(* The cluster router: one event-loop domain bridging memcached-text
   clients to N shard upstreams through a consistent-hash ring.

   Shape of the data path: a client request is parsed just enough to
   learn its verb, key(s) and data-block length, then the raw bytes
   are forwarded to the owning shard's pipelined upstream connection.
   Reply bookkeeping is two nested FIFOs:

   - per client, a queue of reply slots, one per request that expects
     a reply, released strictly in request order;
   - per upstream, a queue of (slot, part) expectations matched
     against decoded reply units ({!Kvstore.Protocol.Client}) in send
     order.

   A slot completes when all its parts have (for a single-shard
   request, one; for a split multi-get or a stats/flush_all
   broadcast, one per shard involved).  Slots completing out of order
   just wait at their queue position, so per-client ordering is
   preserved no matter how shards interleave.

   Down/rejoin: any connect or I/O failure closes the upstream, fails
   its in-flight parts, and marks the shard Down — its keyspace
   answers [SERVER_ERROR shard down] (ownership never moves; the data
   exists only in that shard's region).  A Down shard is re-probed on
   a timer with a nonblocking connect + [version] round trip; the
   shard process recovers its region before it listens, so probe
   success implies recovery is complete and the shard is marked Up. *)

module Poller = Netserve.Poller
module C = Kvstore.Protocol.Client

type shard_addr = { sid : int; shost : string; sport : int }

type config = {
  host : string;
  port : int;
  backlog : int;
  max_conns : int;
  read_chunk : int;
  out_hwm : int;
  max_line : int;
  max_value : int;
  idle_timeout_s : float;
  tick_s : float;
  vnodes : int;
  probe_interval_s : float;
  connect_timeout_s : float;
  poller : Poller.kind option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 11311;
    backlog = 512;
    max_conns = 16384;
    read_chunk = 16384;
    out_hwm = 1 lsl 20;
    max_line = 8192;
    max_value = 1 lsl 20;
    idle_timeout_s = 60.0;
    tick_s = 0.05;
    vnodes = 128;
    probe_interval_s = 0.2;
    connect_timeout_s = 2.0;
    poller = None;
  }

let shard_down_reply = "SERVER_ERROR shard down\r\n"

(* ---- shared counters (router domain writes; readers poll) ---- *)

type counters = {
  accepted : int Atomic.t;
  c_bytes_in : int Atomic.t;
  c_bytes_out : int Atomic.t;
  c_requests : int Atomic.t;
  c_down_errors : int Atomic.t;
  c_downs : int Atomic.t;
  c_rejoins : int Atomic.t;
}

type stats = {
  clients_accepted : int;
  bytes_in : int;
  bytes_out : int;
  requests : int;
  shard_down_errors : int;
  downs : int;
  rejoins : int;
}

type t = {
  cfg : config;
  pkind : Poller.kind;
  ring : Ring.t;
  addrs : shard_addr array;  (* ring order (sorted by sid) *)
  up_flags : bool Atomic.t array;  (* ring order, published by the loop *)
  lfd : Unix.file_descr;
  actual_port : int;
  stopping : bool Atomic.t;
  ctr : counters;
  mutable domain : unit Domain.t option
      [@montage.guarded_by "control thread (start/stop caller)"];
}

let port t = t.actual_port
let poller_kind t = t.pkind

let shard_states t =
  Array.to_list (Array.mapi (fun i a -> (a.sid, Atomic.get t.up_flags.(i))) t.addrs)

let stats t =
  {
    clients_accepted = Atomic.get t.ctr.accepted;
    bytes_in = Atomic.get t.ctr.c_bytes_in;
    bytes_out = Atomic.get t.ctr.c_bytes_out;
    requests = Atomic.get t.ctr.c_requests;
    shard_down_errors = Atomic.get t.ctr.c_down_errors;
    downs = Atomic.get t.ctr.c_downs;
    rejoins = Atomic.get t.ctr.c_rejoins;
  }

let wait_up ?n t ~timeout_s =
  let want = match n with Some n -> n | None -> Array.length t.addrs in
  let deadline = Poller.mono_s () +. timeout_s in
  let up () = Array.fold_left (fun a f -> if Atomic.get f then a + 1 else a) 0 t.up_flags in
  let rec go () =
    if up () >= want then true
    else if Poller.mono_s () > deadline then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* ---- connection-local state (all owned by the router domain) ---- *)

type slot_kind = Verbatim | Multiget | Stats_merge | Flushall

type client = {
  cfd : Unix.file_descr;
  mutable ibuf : Bytes.t;
  mutable cipos : int;  (* consumed frontier *)
  mutable cilen : int;
  mutable ciscan : int;  (* newline-scan frontier, never behind cipos *)
  mutable need : int;  (* >0: storage request, total bytes awaited from cipos *)
  mutable discard : int;  (* oversized data block bytes left to drop *)
  mutable discard_reply : string option;
  pending : slot Queue.t;
  mutable obuf : Bytes.t;
  mutable copos : int;
  mutable colen : int;
  mutable last_active : float;
  mutable want_r : bool;
  mutable want_w : bool;
  mutable cdirty : bool;
  mutable calive : bool;
  mutable closing : bool;  (* saw quit: answer what's pending, then close *)
}

and slot = {
  s_client : client;
  s_kind : slot_kind;
  s_parts : string array;
  mutable s_left : int;
  mutable s_failed : bool;
}

type up_state = Down | Connecting | Probing | Up

type pending_reply = Part of slot * int | Probe

type upstream = {
  u_idx : int;  (* ring-order index *)
  u_id : int;
  u_sockaddr : Unix.sockaddr;
  mutable u_state : up_state;
  mutable u_fd : Unix.file_descr option;
  mutable u_started : float;  (* connect/probe deadline base *)
  mutable u_last_attempt : float;
  u_dec : C.decoder;
  mutable u_ibuf : Bytes.t;
  mutable u_ipos : int;  (* start of the unit being decoded *)
  mutable u_ilen : int;
  u_inflight : pending_reply Queue.t;
  mutable u_obuf : Bytes.t;
  mutable u_opos : int;
  mutable u_olen : int;
  mutable u_want_r : bool;
  mutable u_want_w : bool;
  mutable u_dirty : bool;
}

type entry = Cl of client | Sh of upstream

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* growable [pos, len) output staging, netserve's idiom *)
let buf_room buf pos len n =
  if len + n <= Bytes.length buf then (buf, pos, len)
  else begin
    let live = len - pos in
    if live + n <= Bytes.length buf then begin
      Bytes.blit buf pos buf 0 live;
      (buf, 0, live)
    end
    else begin
      let cap = ref (max 1024 (Bytes.length buf)) in
      while live + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit buf pos nb 0 live;
      (nb, 0, live)
    end
  end

(* ---- the router event loop ---- *)

let run t =
  let cfg = t.cfg in
  let poller = Poller.create ~hint:(min cfg.max_conns 65536) t.pkind in
  let fds : (Unix.file_descr, entry) Hashtbl.t = Hashtbl.create 256 in
  let rbuf = Bytes.create cfg.read_chunk in
  let dirty_cl = ref [] in
  let dirty_up = ref [] in
  let lfd_armed = ref false in
  let lfd_deaf = ref false in
  let nclients = ref 0 in
  let ups =
    Array.mapi
      (fun i a ->
        let addr =
          let ip =
            try Unix.inet_addr_of_string a.shost
            with Failure _ -> (
              try (Unix.gethostbyname a.shost).Unix.h_addr_list.(0)
              with Not_found -> Unix.inet_addr_loopback)
          in
          Unix.ADDR_INET (ip, a.sport)
        in
        {
          u_idx = i;
          u_id = a.sid;
          u_sockaddr = addr;
          u_state = Down;
          u_fd = None;
          u_started = 0.0;
          u_last_attempt = neg_infinity;
          u_dec = C.decoder ();
          u_ibuf = Bytes.create 4096;
          u_ipos = 0;
          u_ilen = 0;
          u_inflight = Queue.create ();
          u_obuf = Bytes.create 4096;
          u_opos = 0;
          u_olen = 0;
          u_want_r = false;
          u_want_w = false;
          u_dirty = false;
        })
      t.addrs
  in
  let up_by_id = Hashtbl.create 8 in
  Array.iter (fun u -> Hashtbl.replace up_by_id u.u_id u) ups;
  let up_count () =
    Array.fold_left (fun n u -> if u.u_state = Up then n + 1 else n) 0 ups
  in

  (* -- client output -- *)
  let cl_out_pending cl = cl.colen - cl.copos in
  let cl_out_add cl s =
    let n = String.length s in
    let buf, pos, len = buf_room cl.obuf cl.copos cl.colen n in
    cl.obuf <- buf;
    cl.copos <- pos;
    cl.colen <- len;
    Bytes.blit_string s 0 cl.obuf cl.colen n;
    cl.colen <- cl.colen + n
  in
  let mark_dirty_cl cl =
    if not cl.cdirty then begin
      cl.cdirty <- true;
      dirty_cl := cl :: !dirty_cl
    end
  in
  let update_interest_cl cl =
    let r =
      cl_out_pending cl <= cfg.out_hwm && (not cl.closing) && cl.discard_reply = None
    in
    let r = r || cl.discard > 0 in
    let w = cl_out_pending cl > 0 in
    if r <> cl.want_r || w <> cl.want_w then begin
      cl.want_r <- r;
      cl.want_w <- w;
      Poller.set poller cl.cfd ~read:r ~write:w
    end
  in
  let close_client cl =
    if cl.calive then begin
      cl.calive <- false;
      Hashtbl.remove fds cl.cfd;
      Poller.remove poller cl.cfd;
      decr nclients;
      close_quietly cl.cfd
    end
  in

  (* -- slot assembly and release -- *)
  let merge_stats parts =
    let order = ref [] in
    let tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun part ->
        String.split_on_char '\n' part
        |> List.iter (fun line ->
               let line =
                 let n = String.length line in
                 if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
               in
               if String.length line > 5 && String.sub line 0 5 = "STAT " then begin
                 let rest = String.sub line 5 (String.length line - 5) in
                 let key, value =
                   match String.index_opt rest ' ' with
                   | Some i ->
                       (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
                   | None -> (rest, "")
                 in
                 match Hashtbl.find_opt tbl key with
                 | None ->
                     order := key :: !order;
                     Hashtbl.replace tbl key value
                 | Some prev -> (
                     (* numeric stats sum across shards; text ones keep
                        the first shard's value *)
                     match (int_of_string_opt prev, int_of_string_opt value) with
                     | Some a, Some b -> Hashtbl.replace tbl key (string_of_int (a + b))
                     | _ -> ())
               end))
      parts;
    let b = Buffer.create 1024 in
    Buffer.add_string b (Printf.sprintf "STAT cluster_shards %d\r\n" (Array.length ups));
    Buffer.add_string b (Printf.sprintf "STAT cluster_up %d\r\n" (up_count ()));
    Buffer.add_string b
      (Printf.sprintf "STAT cluster_downs %d\r\n" (Atomic.get t.ctr.c_downs));
    Buffer.add_string b
      (Printf.sprintf "STAT cluster_rejoins %d\r\n" (Atomic.get t.ctr.c_rejoins));
    Array.iter
      (fun u ->
        Buffer.add_string b
          (Printf.sprintf "STAT shard%d_state %s\r\n" u.u_id
             (if u.u_state = Up then "up" else "down")))
      ups;
    List.iter
      (fun k -> Buffer.add_string b (Printf.sprintf "STAT %s %s\r\n" k (Hashtbl.find tbl k)))
      (List.rev !order);
    Buffer.add_string b "END\r\n";
    Buffer.contents b
  in
  let assemble s =
    match s.s_kind with
    | Verbatim ->
        if s.s_failed then begin
          Atomic.incr t.ctr.c_down_errors;
          shard_down_reply
        end
        else s.s_parts.(0)
    | Multiget ->
        if s.s_failed then begin
          Atomic.incr t.ctr.c_down_errors;
          shard_down_reply
        end
        else begin
          let b = Buffer.create 256 in
          Array.iter
            (fun p ->
              (* each part is a complete get reply; drop its END line *)
              let n = String.length p in
              if n >= 5 then Buffer.add_substring b p 0 (n - 5))
            s.s_parts;
          Buffer.add_string b "END\r\n";
          Buffer.contents b
        end
    | Stats_merge -> merge_stats s.s_parts
    | Flushall ->
        if s.s_failed then begin
          Atomic.incr t.ctr.c_down_errors;
          shard_down_reply
        end
        else "OK\r\n"
  in
  let release_ready cl =
    let progress = ref true in
    while !progress do
      progress := false;
      match Queue.peek_opt cl.pending with
      | Some s when s.s_left = 0 ->
          ignore (Queue.pop cl.pending);
          cl_out_add cl (assemble s);
          mark_dirty_cl cl;
          progress := true
      | _ -> ()
    done
  in
  let part_done s =
    s.s_left <- s.s_left - 1;
    if s.s_left = 0 then release_ready s.s_client
  in
  let fail_part s idx =
    s.s_failed <- true;
    s.s_parts.(idx) <- "";
    part_done s
  in
  let local_reply cl reply =
    let s =
      { s_client = cl; s_kind = Verbatim; s_parts = [| reply |]; s_left = 0; s_failed = false }
    in
    Queue.push s cl.pending;
    release_ready cl
  in

  (* -- upstream output / state -- *)
  let up_out_pending u = u.u_olen - u.u_opos in
  let up_out_add u s =
    let n = String.length s in
    let buf, pos, len = buf_room u.u_obuf u.u_opos u.u_olen n in
    u.u_obuf <- buf;
    u.u_opos <- pos;
    u.u_olen <- len;
    Bytes.blit_string s 0 u.u_obuf u.u_olen n;
    u.u_olen <- u.u_olen + n
  in
  let mark_dirty_up u =
    if not u.u_dirty then begin
      u.u_dirty <- true;
      dirty_up := u :: !dirty_up
    end
  in
  let update_interest_up u =
    match u.u_fd with
    | None -> ()
    | Some fd ->
        let r, w =
          match u.u_state with
          | Connecting -> (false, true)
          | Up | Probing -> (true, up_out_pending u > 0)
          | Down -> (false, false)
        in
        if r <> u.u_want_r || w <> u.u_want_w then begin
          u.u_want_r <- r;
          u.u_want_w <- w;
          Poller.set poller fd ~read:r ~write:w
        end
  in
  let mark_down u reason =
    let was_up = u.u_state = Up in
    (match u.u_fd with
    | Some fd ->
        Hashtbl.remove fds fd;
        Poller.remove poller fd;
        close_quietly fd
    | None -> ());
    u.u_fd <- None;
    u.u_state <- Down;
    u.u_last_attempt <- Poller.mono_s ();
    u.u_want_r <- false;
    u.u_want_w <- false;
    u.u_opos <- 0;
    u.u_olen <- 0;
    u.u_ipos <- 0;
    u.u_ilen <- 0;
    C.reset u.u_dec;
    Atomic.set t.up_flags.(u.u_idx) false;
    if was_up then begin
      Atomic.incr t.ctr.c_downs;
      Printf.eprintf "[cluster] shard %d down (%s)\n%!" u.u_id reason
    end;
    (* every reply still owed by this shard fails now *)
    Queue.iter
      (function Part (s, idx) -> fail_part s idx | Probe -> ())
      u.u_inflight;
    Queue.clear u.u_inflight
  in
  let probe_send u fd =
    u.u_state <- Probing;
    let b = Buffer.create 16 in
    C.encode_version b;
    up_out_add u (Buffer.contents b);
    Queue.push Probe u.u_inflight;
    (match Poller.set poller fd ~read:true ~write:true with
    | () ->
        u.u_want_r <- true;
        u.u_want_w <- true
    | exception Unix.Unix_error (Unix.EINVAL, _, _) -> mark_down u "poller cannot track fd")
  in
  let start_connect u =
    u.u_last_attempt <- Poller.mono_s ();
    u.u_started <- u.u_last_attempt;
    match Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd -> (
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        u.u_fd <- Some fd;
        u.u_want_r <- false;
        u.u_want_w <- false;
        Hashtbl.replace fds fd (Sh u);
        match Unix.connect fd u.u_sockaddr with
        | () -> probe_send u fd
        | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
            u.u_state <- Connecting;
            match Poller.set poller fd ~read:false ~write:true with
            | () -> u.u_want_w <- true
            | exception Unix.Unix_error (Unix.EINVAL, _, _) ->
                mark_down u "poller cannot track fd")
        | exception Unix.Unix_error _ -> mark_down u "connect refused")
  in
  let finish_connect u fd =
    match Unix.getsockopt_error fd with
    | None -> probe_send u fd
    | Some _ -> mark_down u "connect failed"
  in
  let mark_up u =
    u.u_state <- Up;
    Atomic.set t.up_flags.(u.u_idx) true;
    Atomic.incr t.ctr.c_rejoins;
    Printf.eprintf "[cluster] shard %d up\n%!" u.u_id
  in

  (* -- upstream reply decoding -- *)
  let on_unit u unit_bytes (r : C.unit_result) =
    match Queue.take_opt u.u_inflight with
    | None -> mark_down u "unsolicited reply"
    | Some Probe -> if u.u_state = Probing then mark_up u
    | Some (Part (s, idx)) -> (
        match s.s_kind with
        | Verbatim ->
            (* the shard's own reply — errors included — passes through *)
            s.s_parts.(idx) <- unit_bytes;
            part_done s
        | Multiget ->
            if r.C.cls = C.U_ok then begin
              s.s_parts.(idx) <- unit_bytes;
              part_done s
            end
            else fail_part s idx
        | Stats_merge | Flushall ->
            if r.C.cls = C.U_ok then begin
              s.s_parts.(idx) <- unit_bytes;
              part_done s
            end
            else fail_part s idx)
  in
  let decode_up u =
    let progress = ref true in
    while !progress && u.u_fd <> None do
      match C.next_unit u.u_dec u.u_ibuf ~pos:u.u_ipos ~len:(u.u_ilen - u.u_ipos) with
      | Some (endp, r) ->
          let unit_bytes = Bytes.sub_string u.u_ibuf u.u_ipos (endp - u.u_ipos) in
          u.u_ipos <- endp;
          on_unit u unit_bytes r
      | None -> progress := false
    done;
    if u.u_ipos = u.u_ilen then begin
      u.u_ipos <- 0;
      u.u_ilen <- 0
    end
  in
  let read_up u fd =
    let keep = ref true and again = ref true in
    while !again do
      match Unix.read fd rbuf 0 cfg.read_chunk with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          again := false
      | exception Unix.Unix_error _ ->
          keep := false;
          again := false
      | 0 ->
          keep := false;
          again := false
      | n ->
          (* append, compacting/growing around the in-progress unit:
             the decoder's offsets are relative to u_ipos, so sliding
             the unit to the buffer head is safe mid-unit *)
          if u.u_ilen + n > Bytes.length u.u_ibuf then begin
            let live = u.u_ilen - u.u_ipos in
            if u.u_ipos > 0 then Bytes.blit u.u_ibuf u.u_ipos u.u_ibuf 0 live;
            u.u_ipos <- 0;
            u.u_ilen <- live;
            if live + n > Bytes.length u.u_ibuf then begin
              let cap = ref (Bytes.length u.u_ibuf) in
              while live + n > !cap do
                cap := !cap * 2
              done;
              let nb = Bytes.create !cap in
              Bytes.blit u.u_ibuf 0 nb 0 live;
              u.u_ibuf <- nb
            end
          end;
          Bytes.blit rbuf 0 u.u_ibuf u.u_ilen n;
          u.u_ilen <- u.u_ilen + n;
          decode_up u
    done;
    !keep
  in
  let flush_up u fd =
    if up_out_pending u > 0 then begin
      match Unix.write fd u.u_obuf u.u_opos (up_out_pending u) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> true
      | exception Unix.Unix_error _ -> false
      | n ->
          u.u_opos <- u.u_opos + n;
          if up_out_pending u = 0 then begin
            u.u_opos <- 0;
            u.u_olen <- 0
          end;
          true
    end
    else true
  in

  (* -- request dispatch -- *)
  let send_part u raw expect =
    match u.u_state with
    | Up ->
        up_out_add u raw;
        (match expect with
        | Some (s, idx) -> Queue.push (Part (s, idx)) u.u_inflight
        | None -> ());
        mark_dirty_up u
    | Down | Connecting | Probing -> (
        match expect with Some (s, idx) -> fail_part s idx | None -> ())
  in
  let owner key = Hashtbl.find up_by_id (Ring.lookup t.ring key) in
  let route_single cl key raw ~noreply =
    let u = owner key in
    if noreply then send_part u raw None
    else begin
      let s =
        { s_client = cl; s_kind = Verbatim; s_parts = [| "" |]; s_left = 1; s_failed = false }
      in
      Queue.push s cl.pending;
      send_part u raw (Some (s, 0))
    end
  in
  let route_get cl verb keys =
    (* group keys by owning shard, preserving first-appearance order *)
    let groups = ref [] in
    List.iter
      (fun k ->
        let u = owner k in
        match List.assq_opt u !groups with
        | Some l -> l := k :: !l
        | None -> groups := (u, ref [ k ]) :: !groups)
      keys;
    let groups = List.rev_map (fun (u, l) -> (u, List.rev !l)) !groups in
    match groups with
    | [] -> local_reply cl "END\r\n"
    | [ (u, _) ] ->
        (* single owner: forward whole request, reply passes verbatim *)
        let b = Buffer.create 64 in
        (if verb = "gets" then C.encode_gets else C.encode_get) b keys;
        let s =
          { s_client = cl; s_kind = Verbatim; s_parts = [| "" |]; s_left = 1; s_failed = false }
        in
        Queue.push s cl.pending;
        send_part u (Buffer.contents b) (Some (s, 0))
    | _ ->
        let n = List.length groups in
        let s =
          {
            s_client = cl;
            s_kind = Multiget;
            s_parts = Array.make n "";
            s_left = n;
            s_failed = false;
          }
        in
        Queue.push s cl.pending;
        List.iteri
          (fun i (u, ks) ->
            let b = Buffer.create 64 in
            (if verb = "gets" then C.encode_gets else C.encode_get) b ks;
            send_part u (Buffer.contents b) (Some (s, i)))
          groups
  in
  let route_broadcast cl raw kind ~noreply =
    let targets = Array.to_list ups |> List.filter (fun u -> u.u_state = Up) in
    if noreply then List.iter (fun u -> send_part u raw None) targets
    else begin
      let n = List.length targets in
      let s =
        { s_client = cl; s_kind = kind; s_parts = Array.make n ""; s_left = n; s_failed = false }
      in
      Queue.push s cl.pending;
      if n = 0 then release_ready cl
      else List.iteri (fun i u -> send_part u raw (Some (s, i))) targets
    end
  in
  let is_noreply tokens =
    match List.rev tokens with last :: _ -> last = "noreply" | [] -> false
  in
  let dispatch_line cl line raw =
    Atomic.incr t.ctr.c_requests;
    let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    match tokens with
    | [] -> local_reply cl "ERROR\r\n"
    | verb :: rest -> (
        let noreply = is_noreply tokens in
        match verb with
        | "get" | "gets" ->
            if rest = [] then local_reply cl "ERROR\r\n" else route_get cl verb rest
        | "delete" | "incr" | "decr" | "touch" -> (
            match rest with
            | key :: _ -> route_single cl key raw ~noreply
            | [] -> local_reply cl "ERROR\r\n")
        | "stats" -> route_broadcast cl raw Stats_merge ~noreply:false
        | "flush_all" -> route_broadcast cl raw Flushall ~noreply
        | "version" -> local_reply cl "VERSION montage-cluster\r\n"
        | "verbosity" -> if not noreply then local_reply cl "OK\r\n"
        | "quit" -> cl.closing <- true
        | _ -> local_reply cl "ERROR\r\n")
  in
  let dispatch_storage cl raw =
    Atomic.incr t.ctr.c_requests;
    let line_end = match String.index_opt raw '\n' with Some i -> i | None -> 0 in
    let line =
      if line_end > 0 && raw.[line_end - 1] = '\r' then String.sub raw 0 (line_end - 1)
      else String.sub raw 0 line_end
    in
    let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    match tokens with
    | _ :: key :: _ -> route_single cl key raw ~noreply:(is_noreply tokens)
    | _ -> local_reply cl "ERROR\r\n"
  in
  let storage_verbs = [ "set"; "add"; "replace"; "append"; "prepend"; "cas" ] in
  let data_bytes_of tokens =
    (* set/add/replace/append/prepend: <verb> <key> <flags> <exptime> <bytes>
       cas: ... <bytes> <casunique>; bytes is index 4 in both *)
    match tokens with
    | _ :: _ :: _ :: _ :: b :: _ -> int_of_string_opt b
    | _ -> None
  in
  let process_input cl =
    let progress = ref true in
    while !progress && cl.calive && not cl.closing do
      progress := false;
      if cl.discard > 0 then begin
        let avail = cl.cilen - cl.cipos in
        let take = min cl.discard avail in
        cl.cipos <- cl.cipos + take;
        cl.ciscan <- max cl.ciscan cl.cipos;
        cl.discard <- cl.discard - take;
        if cl.discard = 0 then begin
          (match cl.discard_reply with Some r -> local_reply cl r | None -> ());
          cl.discard_reply <- None;
          progress := true
        end
      end
      else if cl.need > 0 then begin
        if cl.cilen - cl.cipos >= cl.need then begin
          let raw = Bytes.sub_string cl.ibuf cl.cipos cl.need in
          cl.cipos <- cl.cipos + cl.need;
          cl.ciscan <- cl.cipos;
          cl.need <- 0;
          dispatch_storage cl raw;
          progress := true
        end
      end
      else begin
        if cl.ciscan < cl.cipos then cl.ciscan <- cl.cipos;
        let i = ref cl.ciscan in
        while !i < cl.cilen && Bytes.get cl.ibuf !i <> '\n' do
          incr i
        done;
        if !i >= cl.cilen then begin
          cl.ciscan <- !i;
          if cl.cilen - cl.cipos > cfg.max_line then begin
            (* oversized command line: answer and hang up rather than
               buffer without bound *)
            cl.cipos <- cl.cilen;
            cl.ciscan <- cl.cilen;
            local_reply cl "CLIENT_ERROR line too long\r\n";
            cl.closing <- true
          end
        end
        else begin
          let nl = !i in
          let raw_line_len = nl + 1 - cl.cipos in
          let line_len =
            let l = nl - cl.cipos in
            if l > 0 && Bytes.get cl.ibuf (nl - 1) = '\r' then l - 1 else l
          in
          let line = Bytes.sub_string cl.ibuf cl.cipos line_len in
          let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
          let verb = match tokens with v :: _ -> v | [] -> "" in
          if List.mem verb storage_verbs then begin
            match data_bytes_of tokens with
            | Some b when b >= 0 && b <= cfg.max_value ->
                cl.need <- raw_line_len + b + 2;
                cl.ciscan <- nl + 1;
                progress := true
            | Some b when b > cfg.max_value ->
                (* consume the line now, swallow the block, then error *)
                cl.cipos <- nl + 1;
                cl.ciscan <- cl.cipos;
                cl.discard <- b + 2;
                cl.discard_reply <-
                  (if is_noreply tokens then None
                   else Some "SERVER_ERROR object too large for cache\r\n");
                progress := true
            | _ ->
                cl.cipos <- nl + 1;
                cl.ciscan <- cl.cipos;
                local_reply cl "CLIENT_ERROR bad command line format\r\n";
                progress := true
          end
          else begin
            cl.cipos <- nl + 1;
            cl.ciscan <- cl.cipos;
            dispatch_line cl line (Bytes.sub_string cl.ibuf (nl + 1 - raw_line_len) raw_line_len);
            progress := true
          end
        end
      end
    done;
    if cl.cipos = cl.cilen && cl.need = 0 then begin
      cl.cipos <- 0;
      cl.cilen <- 0;
      cl.ciscan <- 0
    end
  in

  (* -- client I/O -- *)
  let read_client cl now =
    let keep = ref true and again = ref true in
    while !again do
      match Unix.read cl.cfd rbuf 0 cfg.read_chunk with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          again := false
      | exception Unix.Unix_error _ ->
          keep := false;
          again := false
      | 0 ->
          keep := false;
          again := false
      | n ->
          Atomic.fetch_and_add t.ctr.c_bytes_in n |> ignore;
          cl.last_active <- now;
          if cl.cilen + n > Bytes.length cl.ibuf then begin
            let live = cl.cilen - cl.cipos in
            if cl.cipos > 0 then begin
              Bytes.blit cl.ibuf cl.cipos cl.ibuf 0 live;
              cl.ciscan <- cl.ciscan - cl.cipos;
              cl.cipos <- 0;
              cl.cilen <- live
            end;
            if cl.cilen + n > Bytes.length cl.ibuf then begin
              let cap = ref (Bytes.length cl.ibuf) in
              while cl.cilen + n > !cap do
                cap := !cap * 2
              done;
              let nb = Bytes.create !cap in
              Bytes.blit cl.ibuf 0 nb 0 cl.cilen;
              cl.ibuf <- nb
            end
          end;
          Bytes.blit rbuf 0 cl.ibuf cl.cilen n;
          cl.cilen <- cl.cilen + n;
          process_input cl;
          if cl_out_pending cl > cfg.out_hwm then again := false
    done;
    !keep
  in
  let flush_client cl now =
    if cl_out_pending cl > 0 then begin
      match Unix.write cl.cfd cl.obuf cl.copos (cl_out_pending cl) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> true
      | exception Unix.Unix_error _ -> false
      | n ->
          Atomic.fetch_and_add t.ctr.c_bytes_out n |> ignore;
          cl.copos <- cl.copos + n;
          cl.last_active <- now;
          if cl_out_pending cl = 0 then begin
            cl.copos <- 0;
            cl.colen <- 0
          end;
          true
    end
    else true
  in
  let settle_client cl now =
    if not (flush_client cl now) then close_client cl
    else if cl.closing && Queue.is_empty cl.pending && cl_out_pending cl = 0 then close_client cl
    else update_interest_cl cl
  in
  let accept_new () =
    let again = ref true in
    while !again && !nclients < cfg.max_conns do
      match Unix.accept ~cloexec:true t.lfd with
      | exception
          Unix.Unix_error
            ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR | Unix.EMFILE
              | Unix.ENFILE ),
              _, _ ) ->
          again := false
      | fd, _ -> (
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
          match Poller.set poller fd ~read:true ~write:false with
          | exception Unix.Unix_error (Unix.EINVAL, _, _) -> close_quietly fd
          | () ->
              Atomic.incr t.ctr.accepted;
              incr nclients;
              Hashtbl.replace fds fd
                (Cl
                   {
                     cfd = fd;
                     ibuf = Bytes.create 4096;
                     cipos = 0;
                     cilen = 0;
                     ciscan = 0;
                     need = 0;
                     discard = 0;
                     discard_reply = None;
                     pending = Queue.create ();
                     obuf = Bytes.create 1024;
                     copos = 0;
                     colen = 0;
                     last_active = Poller.mono_s ();
                     want_r = true;
                     want_w = false;
                     cdirty = false;
                     calive = true;
                     closing = false;
                   }))
    done
  in

  (* -- probe timer -- *)
  let tick_probes now =
    Array.iter
      (fun u ->
        match u.u_state with
        | Down -> if now -. u.u_last_attempt >= cfg.probe_interval_s then start_connect u
        | Connecting | Probing ->
            if now -. u.u_started > cfg.connect_timeout_s then mark_down u "probe timeout"
        | Up -> ())
      ups
  in

  (* -- main loop -- *)
  let sweep_period =
    if cfg.idle_timeout_s > 0.0 then Float.min 1.0 (cfg.idle_timeout_s /. 4.0) else 1.0
  in
  let next_sweep = ref (Poller.mono_s () +. sweep_period) in
  while not (Atomic.get t.stopping) do
    let want_accept = (not !lfd_deaf) && !nclients < cfg.max_conns in
    if want_accept <> !lfd_armed then begin
      match Poller.set poller t.lfd ~read:want_accept ~write:false with
      | () -> lfd_armed := want_accept
      | exception Unix.Unix_error (Unix.EINVAL, _, _) ->
          lfd_deaf := true;
          Printf.eprintf "[cluster] listener fd beyond poller reach; not accepting\n%!"
    end;
    ignore
      (Poller.wait poller ~timeout_s:cfg.tick_s (fun fd ~readable ~writable ->
           if fd = t.lfd then begin
             if readable then accept_new ()
           end
           else
             match Hashtbl.find_opt fds fd with
             | None -> ()
             | Some (Cl cl) ->
                 let now = Poller.mono_s () in
                 let ok =
                   ((not writable) || flush_client cl now)
                   && ((not readable) || read_client cl now)
                 in
                 if not ok then close_client cl else settle_client cl now
             | Some (Sh u) ->
                 if u.u_state = Connecting then begin
                   if writable || readable then finish_connect u fd;
                   update_interest_up u
                 end
                 else begin
                   let ok =
                     ((not writable) || flush_up u fd) && ((not readable) || read_up u fd)
                   in
                   if not ok then mark_down u "io error" else update_interest_up u
                 end));
    (* upstream sends first (unblocks shard replies), then client flushes *)
    if !dirty_up <> [] then begin
      List.iter
        (fun u ->
          u.u_dirty <- false;
          match u.u_fd with
          | Some fd when u.u_state = Up || u.u_state = Probing ->
              if not (flush_up u fd) then mark_down u "io error" else update_interest_up u
          | _ -> ())
        !dirty_up;
      dirty_up := []
    end;
    if !dirty_cl <> [] then begin
      let now = Poller.mono_s () in
      List.iter
        (fun cl ->
          cl.cdirty <- false;
          if cl.calive then settle_client cl now)
        !dirty_cl;
      dirty_cl := []
    end;
    let now = Poller.mono_s () in
    tick_probes now;
    if now >= !next_sweep then begin
      next_sweep := now +. sweep_period;
      let reap = ref [] in
      Hashtbl.iter
        (fun _ e ->
          match e with
          | Cl cl ->
              if cl.closing && Queue.is_empty cl.pending && cl_out_pending cl = 0 then
                reap := cl :: !reap
              else if cfg.idle_timeout_s > 0.0 && now -. cl.last_active > cfg.idle_timeout_s
              then reap := cl :: !reap
          | Sh _ -> ())
        fds;
      List.iter close_client !reap
    end
  done;
  (* teardown: close everything this loop owns *)
  Hashtbl.iter
    (fun fd _ ->
      Poller.remove poller fd;
      close_quietly fd)
    fds;
  Hashtbl.reset fds;
  Poller.close poller

(* ---- control surface ---- *)

let start ?(config = default_config) shard_addrs =
  if shard_addrs = [] then invalid_arg "Router.start: no shards";
  let pkind = match config.poller with Some k -> k | None -> Poller.kind_of_env () in
  let ring = Ring.create ~vnodes:config.vnodes (List.map (fun a -> a.sid) shard_addrs) in
  let addrs =
    (* ring order: sorted by shard id, matching Ring.shards *)
    List.map
      (fun id -> List.find (fun a -> a.sid = id) shard_addrs)
      (Ring.shards ring)
    |> Array.of_list
  in
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
  Unix.listen lfd config.backlog;
  Unix.set_nonblock lfd;
  let actual_port =
    match Unix.getsockname lfd with Unix.ADDR_INET (_, p) -> p | _ -> config.port
  in
  let t =
    {
      cfg = config;
      pkind;
      ring;
      addrs;
      up_flags = Array.map (fun _ -> Atomic.make false) addrs;
      lfd;
      actual_port;
      stopping = Atomic.make false;
      ctr =
        {
          accepted = Atomic.make 0;
          c_bytes_in = Atomic.make 0;
          c_bytes_out = Atomic.make 0;
          c_requests = Atomic.make 0;
          c_down_errors = Atomic.make 0;
          c_downs = Atomic.make 0;
          c_rejoins = Atomic.make 0;
        };
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> run t));
  t

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    close_quietly t.lfd
  end
