(* Per-thread circular write-back buffer (paper §5.2).

   Workers append (offset, length) records of payload ranges that must
   reach NVM by the end of their epoch.  The owning worker is the only
   producer; consumers — the background epoch advancer, sync helpers,
   and the producer itself when the ring overflows — pop entries and
   issue the write-backs.  Pops race, so the head is advanced by CAS;
   the tail is owner-written.  A slot is only rewritten once the head
   has passed it, so a consumer that read a stale slot loses the CAS
   and discards its read.  The structure is obstruction-free for
   consumers and wait-free for the producer (overflow pops at most one
   entry per push), preserving the runtime's lock-freedom claim.

   Entries are packed as (offset << 14 | length); payloads are at most
   8 KB so 14 bits of length suffice. *)

type t = {
  slots : int array;
  capacity : int;
  head : int Atomic.t; (* next entry to consume *)
  tail : int Atomic.t; (* next free slot; owner-written *)
}

let length_bits = 14
let length_mask = (1 lsl length_bits) - 1
let max_len = length_mask

let pack ~off ~len =
  (* a silent [land length_mask] here would corrupt the packed offset
     and flush the wrong range — reject out-of-range records loudly *)
  if len < 0 || len > max_len then
    invalid_arg (Printf.sprintf "Persist_buffer.pack: length %d outside [0, %d]" len max_len);
  if off < 0 then invalid_arg (Printf.sprintf "Persist_buffer.pack: negative offset %d" off);
  (off lsl length_bits) lor len
let unpack_off e = e lsr length_bits
let unpack_len e = e land length_mask

let create ~capacity =
  { slots = Array.make (max 2 capacity) 0; capacity = max 2 capacity; head = Atomic.make 0; tail = Atomic.make 0 }

let is_empty t = Atomic.get t.head >= Atomic.get t.tail
[@@montage.allow
  "R2: racy observer; callers that act on the answer (pop/drain) \
   re-check under their own pbuf.* Sched points"]

(* Owner-called: the next push would evict the oldest entry. *)
let is_full t = Atomic.get t.tail - Atomic.get t.head >= t.capacity
[@@montage.allow
  "R2: owner-called observer; tail is owner-private and head only \
   moves forward, so a stale read errs toward an early flush"]

(* Consume one entry; [None] when empty.  Safe to call from any thread. *)
let pop t =
  Util.Sched.yield "pbuf.pop";
  let rec attempt () =
    let head = Atomic.get t.head in
    let tail = Atomic.get t.tail in
    if head >= tail then None
    else
      let entry = t.slots.(head mod t.capacity) in
      if Atomic.compare_and_set t.head head (head + 1) then
        Some (unpack_off entry, unpack_len entry)
      else attempt ()
  in
  attempt ()

(* Owner-only append.  When the ring is full the *owner* writes back the
   oldest entry — the paper's incremental write-back on overflow — via
   [flush], which must issue writeback+fence for the range. *)
let push t ~flush ~off ~len =
  Util.Sched.yield "pbuf.push";
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head >= t.capacity then begin
    match pop t with
    | Some (o, l) -> flush o l
    | None -> () (* a concurrent consumer drained it; slot now free *)
  end;
  t.slots.(tail mod t.capacity) <- pack ~off ~len;
  Atomic.set t.tail (tail + 1)

(* Snapshot drain: consume only entries that were already appended when
   the drain began.  A consumer racing a fast producer must not chase
   the tail — the producer's later records belong to a later epoch and
   will be picked up by that epoch's drain — so the bound is the tail
   observed at entry.  [f] may push new entries (the owner's overflow
   path does); they are left for the next drain. *)
let drain t f =
  let stop = Atomic.get t.tail in
  let rec loop () =
    if Atomic.get t.head < stop then
      match pop t with
      | Some (off, len) ->
          f off len;
          loop ()
      | None -> ()
  in
  loop ()
[@@montage.allow
  "R2: the snapshot bound and progress check are advisory; every \
   consumed entry goes through pop, which yields at pbuf.pop"]

(* Fault injection for the Dsched harness (see DESIGN.md, "Dsched"):
   when set, [drain_all] silently discards its first record instead of
   handing it to [f] — modeling a miscounted drain loop that lets the
   epoch advance believe a buffer was fully written back and persist
   the clock past an unflushed payload.  The durable-linearizability
   explorer must catch this (a completed operation's payload missing
   below the recovery cutoff) and shrink the schedule that exposes it.
   Never set outside tests. *)
let test_drop_first_drain_record = ref false

(* ---- nonblocking publication (the nb-advance drain path) ----

   The blocking drain pops a record before its write-back is fenced,
   which is why the epoch advance must wait out every consumer's
   pop→fence window (the [draining] handshake).  The nonblocking
   protocol never creates that window: [publish] *peeks* — it emits
   every record in [head, tail-at-entry) without consuming any of
   them — and only after the caller has fenced the emitted write-backs
   does [retire_upto] move the head past them.  Until then the records
   stay visible, so any helper (an epoch advance, a sync caller) can
   re-publish and fence them itself; write-backs are idempotent, so
   helping never double-applies anything.  The ring itself is the
   publication descriptor: (head, observed tail) delimits the claimable
   records, and the monotonic CAS on head in [retire_upto] is the
   claim-completion step that concurrent helpers race benignly. *)

(* Planted-bug twin of [test_drop_first_drain_record] for the
   nonblocking arm: while set, every [publish] skips its first record
   but still returns the stop index past it, so [retire_upto] retires a
   record that was never written back — a lost publication the Dsched
   durable-linearizability explorer must detect.  Never set outside
   tests. *)
let test_drop_first_publish_record = ref false

(* Emit every record currently in the ring, oldest first, *without*
   consuming: the publication pass of a nonblocking drain.  Bounded by
   the tail observed at entry (later records belong to a later epoch).
   Returns the exclusive upper index to hand to [retire_upto] once the
   emitted write-backs are fenced.  Safe from any thread: a slot is
   rewritten only after the head passes it, so a racing reader sees
   either the old record (already retired — re-emitting is an
   idempotent write-back of durable data) or the new one (a harmless
   early flush); int-array reads cannot tear. *)
let publish t f =
  Util.Sched.yield "pbuf.publish";
  let stop = Atomic.get t.tail in
  let start = Atomic.get t.head in
  let start = if !test_drop_first_publish_record && start < stop then start + 1 else start in
  for i = start to stop - 1 do
    let entry = t.slots.(i mod t.capacity) in
    f (unpack_off entry) (unpack_len entry)
  done;
  stop

(* Retire published records: advance the head to at least [upto],
   one monotonic CAS step at a time.  Called only after the caller's
   fence covers everything below [upto].  Helpers retiring the same
   prefix cooperate — every CAS failure means another thread moved the
   head forward — so the loop takes at most [upto - head] iterations
   regardless of contention: bounded, hence wait-free. *)
let retire_upto t ~upto =
  Util.Sched.yield "pbuf.retire";
  let rec go () =
    let head = Atomic.get t.head in
    if head < upto then begin
      ignore (Atomic.compare_and_set t.head head (head + 1));
      go ()
    end
  in
  go ()

(* Drain until empty — the owner's quiescent full flush (END_OP drain,
   shutdown), where chasing the tail is the point. *)
let drain_all t f =
  if !test_drop_first_drain_record then ignore (pop t);
  let rec loop () =
    match pop t with
    | Some (off, len) ->
        f off len;
        loop ()
    | None -> ()
  in
  loop ()
