(* Montage exceptions (paper §3.2–§3.3). *)

(* Raised when an operation running in epoch e reads a payload created
   in a later epoch — linearizing after such a read would violate the
   epoch-consistent linearization order.  Callers typically roll back
   and retry in the newer epoch. *)
exception Old_see_new

(* Raised by [check_epoch] when the epoch clock has moved past the
   epoch in which the current operation began.  Nonblocking operations
   use it to restart so their linearizing CAS lands in the epoch that
   labeled their payloads. *)
exception Epoch_changed

(* Raised when a payload handle is used after the payload was deleted
   or superseded by a copying update — a violation of well-formedness
   constraint 4 in §4 (every pointer to the old payload must be
   replaced).  Purely a debugging aid; a real NVM deployment would
   exhibit silent corruption instead. *)
exception Use_after_free

(* Raised when a structure's internal invariants produce a state the
   code declares unreachable — a corruption witness, not a user error.
   [corrupt] centralizes the raise so checker/CI logs carry a message
   naming the structure and invariant instead of a bare [assert false]
   backtrace. *)
exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt
