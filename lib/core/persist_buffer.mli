(** Per-thread circular write-back buffer (paper §5.2).

    Workers append (offset, length) records of payload ranges that must
    reach NVM by the end of their epoch.  The owner is the only
    producer; consumers (the background advancer, sync helpers, and the
    producer itself on overflow) pop concurrently via CAS on the head.
    Wait-free for the producer, obstruction-free for consumers. *)

type t

(** Largest representable record length (payloads are at most 8 KB, so
    the 14-bit packed length field is ample). *)
val max_len : int

val create : capacity:int -> t
val is_empty : t -> bool

(** Owner-called: the next {!push} would evict the oldest entry. *)
val is_full : t -> bool

(** Owner-only append.  On overflow the oldest entry is consumed and
    handed to [flush] — the paper's incremental write-back.
    @raise Invalid_argument when [len] exceeds {!max_len} (or is
    negative, or [off] is negative): packing would corrupt the record. *)
val push : t -> flush:(int -> int -> unit) -> off:int -> len:int -> unit

(** Consume one entry; [None] when empty.  Safe from any thread. *)
val pop : t -> (int * int) option

(** Snapshot drain: consume entries up to the tail observed at entry,
    invoking [f off len] per entry.  Bounded work even against a fast
    producer — records appended during the drain belong to a later
    epoch and are left for that epoch's drain.  [f] may push. *)
val drain : t -> (int -> int -> unit) -> unit

(** Drain until empty: the owner's quiescent full flush (END_OP drain,
    shutdown). *)
val drain_all : t -> (int -> int -> unit) -> unit

(** Fault injection for the Dsched durable-linearizability harness:
    while set, every {!drain_all} silently discards its first record —
    an artificial lost write-back the schedule explorer must detect.
    Test-only; never set in production code. *)
val test_drop_first_drain_record : bool ref

(** {1 Nonblocking publication (the nb-advance drain path)}

    [publish]/[retire_upto] replace pop-based drains under
    [Config.nb_advance]: records are emitted {e without} being
    consumed, stay claimable by concurrent helpers until the emitter's
    fence lands, and are only then retired by a monotonic CAS on the
    head — there is no popped-but-unfenced window for an epoch advance
    to wait out. *)

(** Emit every record in [head, tail-observed-at-entry), oldest first,
    without consuming; returns the exclusive stop index for
    {!retire_upto}.  Safe from any thread; emitting a record another
    thread already retired re-issues an idempotent write-back. *)
val publish : t -> (int -> int -> unit) -> int

(** Advance the head to at least [upto] (monotonic; cooperating CAS
    steps, at most [upto - head] iterations).  Call only after fencing
    the write-backs of everything below [upto]. *)
val retire_upto : t -> upto:int -> unit

(** Planted-bug twin of {!test_drop_first_drain_record} for the
    nonblocking arm: while set, {!publish} skips its first record but
    still returns the stop index past it — a lost publication the
    schedule explorer must detect.  Test-only. *)
val test_drop_first_publish_record : bool ref
