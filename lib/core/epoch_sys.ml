(* The Montage epoch system (paper §3 and §5, Fig. 3).

   Execution is divided into epochs by a global clock.  Every payload
   is labeled with the epoch in which it was created or last modified;
   all payloads of epoch e persist together when the clock ticks from
   e+1 to e+2, and after a crash in epoch e everything labeled e or
   e−1 is discarded.  Data-structure operations bracket their updates
   with [begin_op]/[end_op]; synchronization and lookup structure live
   entirely in transient memory (the OCaml heap), so the only NVM
   traffic is payload writes and the deferred write-backs.

   Region layout: line 0 holds the persistent epoch clock; the
   allocator heap starts at 64 KB. *)

let clock_off = 0
let heap_base = 65536
let initial_epoch = 3 (* ≥ 3 so that epoch − 2 never collides with 0 = "idle" *)

type pblk = {
  mutable off : int; (* block offset in the region *)
  uid : int;
  mutable epoch : int; (* mirror of the persistent header *)
  mutable size : int; (* content bytes *)
  mutable live : bool; (* debugging aid: detect use-after-free *)
}

type per_thread = {
  mutable op_epoch : int; (* 0 = no active operation *)
  mutable last_epoch : int;
  buffer : Persist_buffer.t;
}

type t = {
  region : Nvm.Region.t;
  alloc : Ralloc.t;
  cfg : Config.t;
  curr_epoch : int Atomic.t; (* transient mirror of the persistent clock *)
  tracker : Tracker.t;
  mind : Mindicator.t;
  threads : per_thread array;
  (* to_free.(e mod 4).(tid): blocks freed in epoch e by thread tid,
     reclaimable once the clock reaches e + 2.  Single-owner push; the
     epoch-advance schedule guarantees drain never races a push. *)
  to_free : int list ref array array;
  advance_lock : Util.Spin_lock.t;
  uid_counter : int Atomic.t;
  advances : int Atomic.t; (* statistics *)
  stop_bg : bool Atomic.t;
  mutable bg : unit Domain.t option;
  chk : Nvm.Pcheck.t option; (* persistency-ordering checker, per cfg.pcheck *)
}

let region t = t.region
let allocator t = t.alloc
let config t = t.cfg
let current_epoch t = Atomic.get t.curr_epoch
let op_epoch t ~tid = t.threads.(tid).op_epoch
let advance_count t = Atomic.get t.advances

(* ---- construction ---- *)

(* Thread-id space: workers use 0 .. max_threads − 1; the background
   advancer owns the extra slot max_threads (it needs its own region
   write-pending queue and never runs operations). *)
let advancer_tid cfg = cfg.Config.max_threads

let make_state region cfg =
  if cfg.Config.max_threads + 1 > Nvm.Region.max_threads region then
    invalid_arg "Epoch_sys: region was created with too few thread slots";
  let slots = cfg.Config.max_threads + 1 in
  let alloc = Ralloc.create region ~heap_base in
  let chk =
    match cfg.Config.pcheck with
    | Config.Pcheck_off -> Nvm.Region.checker region (* reuse one enabled out-of-band *)
    | Config.Pcheck_record -> Some (Nvm.Region.enable_pcheck ~mode:Nvm.Pcheck.Record region)
    | Config.Pcheck_enforce -> Some (Nvm.Region.enable_pcheck ~mode:Nvm.Pcheck.Enforce region)
  in
  {
    region;
    alloc;
    cfg;
    curr_epoch = Atomic.make initial_epoch;
    tracker = Tracker.create ~max_threads:slots;
    mind = Mindicator.create ~max_threads:slots;
    threads =
      Array.init slots (fun _ ->
          { op_epoch = 0; last_epoch = 0; buffer = Persist_buffer.create ~capacity:cfg.Config.buffer_size });
    to_free = Array.init 4 (fun _ -> Array.init slots (fun _ -> ref []));
    advance_lock = Util.Spin_lock.create ();
    uid_counter = Atomic.make 1;
    advances = Atomic.make 0;
    stop_bg = Atomic.make false;
    bg = None;
    chk;
  }

let checker t = t.chk

(* ---- write-back plumbing ----

   Cost discipline (see DESIGN.md "Substitutions"): an application
   thread is charged for work it would *wait* on — CLWB issue on its
   own overflow write-backs, and the full drain when it is inside
   [sync].  Deferred work executed by the background advancer is
   semantically identical but uncharged: in the paper's deployment it
   runs on a dedicated core off every application critical path, and
   on this one-core simulator charging it would bill the application
   for exactly the cost Montage exists to hide. *)

(* Synchronous flush: CLWB + committing fence, fully charged.  Used by
   the DirWB reference configuration and by strict callers. *)
let flush_now t ~tid ~off ~len =
  Nvm.Region.writeback t.region ~tid ~off ~len;
  Nvm.Region.sfence t.region ~tid

(* Incremental overflow write-back on a worker: the CLWB issue is
   charged (the worker executes it); completion is asynchronous — the
   worker never waits on a drain. *)
let flush_incremental t ~tid ~off ~len =
  Nvm.Region.writeback t.region ~tid ~off ~len;
  Nvm.Region.sfence_async t.region ~tid

(* Record that [off, off+len) must persist by the end of the current
   epoch.  Policy-dependent: buffered (default), direct (DirWB), or
   elided entirely for Montage (T). *)
let record_persist t ~tid ~off ~len =
  if t.cfg.Config.persist then
    match t.cfg.Config.writeback with
    | Config.Direct -> flush_now t ~tid ~off ~len
    | Config.Buffered ->
        let pt = t.threads.(tid) in
        Mindicator.announce t.mind ~tid ~epoch:pt.op_epoch;
        (* checker obligation: this range must reach media before
           epoch op_epoch + 2 (the buffered-durability contract) *)
        (match t.chk with
        | None -> ()
        | Some c -> Nvm.Pcheck.on_buffer_push c ~tid ~epoch:pt.op_epoch ~off ~len);
        Persist_buffer.push pt.buffer
          ~flush:(fun o l -> flush_incremental t ~tid ~off:o ~len:l)
          ~off ~len

(* Drain one thread's buffer onto the *caller's* region queue.  When
   [charged] the caller pays CLWB issue costs (it is a synchronous
   helper inside sync); otherwise it is the background advancer. *)
let drain_buffer t ~tid ~owner ~charged =
  let wb =
    if charged then Nvm.Region.writeback else Nvm.Region.writeback_uncharged
  in
  Persist_buffer.drain t.threads.(owner).buffer (fun off len -> wb t.region ~tid ~off ~len);
  Mindicator.clear t.mind ~tid:owner

(* ---- reclamation ---- *)

(* Scrub a block's media header, then hand it back to the allocator.
   Scrubbing closes the block-recycling resurrection window (DESIGN.md);
   the write-back is batched on the caller's queue and fenced by the
   caller before the epoch clock moves. *)
let reclaim_block t ~tid ~charged off =
  Payload_hdr.scrub t.region ~off;
  (if charged then Nvm.Region.writeback t.region ~tid ~off ~len:8
   else Nvm.Region.writeback_uncharged t.region ~tid ~off ~len:8);
  Ralloc.free t.alloc ~tid off

let drain_free_slot ?(charged = false) t ~tid ~slot ~owner =
  let cell = t.to_free.(slot).(owner) in
  let blocks = !cell in
  cell := [];
  List.iter (fun off -> reclaim_block t ~tid ~charged off) blocks

(* Worker-local reclamation (+LocalFree in Fig. 4): at begin_op, a
   thread entering epoch e reclaims its own garbage from the epochs
   the paper's window formula proves are ripe — between last_epoch − 1
   and min(last_epoch + 1, e − 2). *)
let reclaim_local t ~tid =
  let pt = t.threads.(tid) in
  if pt.last_epoch > 0 && pt.op_epoch > pt.last_epoch then begin
    let lo = max 1 (pt.last_epoch - 1) and hi = min (pt.last_epoch + 1) (pt.op_epoch - 2) in
    for e = lo to hi do
      (* worker-side reclamation dilates the critical path: charged *)
      drain_free_slot ~charged:true t ~tid ~slot:(e mod 4) ~owner:tid
    done;
    if hi >= lo then Nvm.Region.sfence t.region ~tid
  end

(* ---- operations ---- *)

let begin_op t ~tid =
  let pt = t.threads.(tid) in
  let rec register () =
    let e = Atomic.get t.curr_epoch in
    Tracker.register t.tracker ~tid ~epoch:e;
    if Atomic.get t.curr_epoch <> e then register () else e
  in
  let e = register () in
  pt.op_epoch <- e;
  if t.cfg.Config.persist && t.cfg.Config.reclaim = Config.Workers then reclaim_local t ~tid;
  pt.last_epoch <- e

let end_op t ~tid =
  let pt = t.threads.(tid) in
  if t.cfg.Config.drain_on_end_op && t.cfg.Config.persist then begin
    (* Montage (dw): the worker itself writes back everything at the
       end of each operation — fully charged, it waits for the drain *)
    drain_buffer t ~tid ~owner:tid ~charged:true;
    Nvm.Region.sfence t.region ~tid
  end;
  pt.op_epoch <- 0;
  Tracker.unregister t.tracker ~tid

let with_op t ~tid f =
  begin_op t ~tid;
  Fun.protect ~finally:(fun () -> end_op t ~tid) f

let check_epoch t ~tid =
  if Atomic.get t.curr_epoch <> t.threads.(tid).op_epoch then raise Errors.Epoch_changed

let require_op t ~tid =
  if t.threads.(tid).op_epoch = 0 then
    invalid_arg "Montage: payload mutation outside BEGIN_OP/END_OP"

let osn_check t ~tid p =
  let oe = t.threads.(tid).op_epoch in
  if oe <> 0 && p.epoch > oe then raise Errors.Old_see_new

(* ---- payload lifecycle ---- *)

let fresh_uid t = Atomic.fetch_and_add t.uid_counter 1

let write_payload t ~off ~hdr ~content =
  Payload_hdr.write t.region ~off hdr;
  Nvm.Region.write t.region ~off:(Payload_hdr.content_off off) ~src:content ~src_off:0
    ~len:(Bytes.length content)

let pnew t ~tid content =
  require_op t ~tid;
  let pt = t.threads.(tid) in
  let size = Bytes.length content in
  let uid = fresh_uid t in
  let off = Ralloc.alloc t.alloc ~tid ~size:(Payload_hdr.header_size + size) in
  write_payload t ~off
    ~hdr:{ Payload_hdr.ptype = Alloc; epoch = pt.op_epoch; uid; size }
    ~content;
  record_persist t ~tid ~off ~len:(Payload_hdr.header_size + size);
  { off; uid; epoch = pt.op_epoch; size; live = true }

let check_live p = if not p.live then raise Errors.Use_after_free

let pget t ~tid p =
  check_live p;
  osn_check t ~tid p;
  let buf = Bytes.create p.size in
  Nvm.Region.read t.region ~off:(Payload_hdr.content_off p.off) ~dst:buf ~dst_off:0 ~len:p.size;
  buf

let pget_unsafe t p =
  check_live p;
  let buf = Bytes.create p.size in
  Nvm.Region.read t.region ~off:(Payload_hdr.content_off p.off) ~dst:buf ~dst_off:0 ~len:p.size;
  buf

(* Free a payload bypassing the epoch protocol — used by Montage (T)
   and the DirFree reference configuration, which sacrifice crash
   consistency for a performance ceiling. *)
let free_immediately t ~tid off =
  Payload_hdr.scrub t.region ~off;
  Ralloc.free t.alloc ~tid off

let defer_free t ~tid ~epoch off =
  let cell = t.to_free.(epoch mod 4).(tid) in
  cell := off :: !cell

let block_fits t ~off ~content_len =
  Payload_hdr.header_size + content_len <= Ralloc.block_size t.alloc off

let pset t ~tid p content =
  require_op t ~tid;
  check_live p;
  osn_check t ~tid p;
  let pt = t.threads.(tid) in
  let len = Bytes.length content in
  let in_place_ok =
    block_fits t ~off:p.off ~content_len:len
    && ((not t.cfg.Config.persist) || p.epoch = pt.op_epoch)
  in
  if in_place_ok then begin
    Nvm.Region.set_i32 t.region ~off:(p.off + 24) len;
    Nvm.Region.write t.region ~off:(Payload_hdr.content_off p.off) ~src:content ~src_off:0 ~len;
    p.size <- len;
    record_persist t ~tid ~off:p.off ~len:(Payload_hdr.header_size + len);
    p
  end
  else begin
    (* copying update: new block, same uid, current epoch; the old
       version is reclaimable two epochs from now *)
    let off = Ralloc.alloc t.alloc ~tid ~size:(Payload_hdr.header_size + len) in
    write_payload t ~off
      ~hdr:{ Payload_hdr.ptype = Update; epoch = pt.op_epoch; uid = p.uid; size = len }
      ~content;
    record_persist t ~tid ~off ~len:(Payload_hdr.header_size + len);
    let old_off = p.off in
    p.live <- false;
    if (not t.cfg.Config.persist) || t.cfg.Config.direct_free then free_immediately t ~tid old_off
    else defer_free t ~tid ~epoch:pt.op_epoch old_off;
    { off; uid = p.uid; epoch = pt.op_epoch; size = len; live = true }
  end

let pdelete t ~tid p =
  require_op t ~tid;
  check_live p;
  osn_check t ~tid p;
  let pt = t.threads.(tid) in
  p.live <- false;
  if (not t.cfg.Config.persist) || t.cfg.Config.direct_free then
    free_immediately t ~tid p.off
  else if p.epoch = pt.op_epoch then begin
    match Payload_hdr.read t.region ~off:p.off ~block_size:(Ralloc.block_size t.alloc p.off) with
    | Some { ptype = Alloc; _ } ->
        (* Created this epoch: it was never visible to recovery.  Scrub
           (the scrub line rides the persist buffer in case the create
           was incrementally written back) and free immediately. *)
        Payload_hdr.scrub t.region ~off:p.off;
        record_persist t ~tid ~off:p.off ~len:8;
        Ralloc.free t.alloc ~tid p.off
    | Some _ ->
        (* An UPDATE from this epoch: turn the block into its own
           anti-payload in place; it is reclaimed at op_epoch + 3 like
           any anti-payload.  (The superseded older version is already
           in to_free from the copying update.) *)
        Payload_hdr.set_type t.region ~off:p.off Delete;
        record_persist t ~tid ~off:p.off ~len:8;
        defer_free t ~tid ~epoch:(pt.op_epoch + 1) p.off
    | None -> assert false
  end
  else begin
    (* Deleting a payload from an earlier epoch: publish an anti-payload
       labeled with the current epoch; if the crash cut falls between
       them, recovery sees the original without the anti and keeps it —
       exactly the buffered-durability contract. *)
    let anti = Ralloc.alloc t.alloc ~tid ~size:Payload_hdr.header_size in
    Payload_hdr.write t.region ~off:anti
      { Payload_hdr.ptype = Delete; epoch = pt.op_epoch; uid = p.uid; size = 0 };
    record_persist t ~tid ~off:anti ~len:Payload_hdr.header_size;
    defer_free t ~tid ~epoch:(pt.op_epoch + 1) anti;
    defer_free t ~tid ~epoch:pt.op_epoch p.off
  end

(* ---- epoch advance ---- *)

(* Advance the clock by one epoch.  Serialized by [advance_lock]; the
   caller may be the background domain, a sync helper, or a test.
   Steps follow §3.2: quiesce e−1, reclaim the ripe to_free slot,
   write back everything buffered, fence, then bump and persist the
   clock.  Reclamation scrubs ride the same fence as the payload
   write-backs, so nothing is reused before its supersession record is
   durable. *)
let advance_epoch_charged t ~tid ~charged =
  Util.Spin_lock.with_lock t.advance_lock (fun () ->
      let e = Atomic.get t.curr_epoch in
      Tracker.wait_all t.tracker ~epoch:(e - 1);
      if t.cfg.Config.persist then begin
        if t.cfg.Config.reclaim = Config.Background && not t.cfg.Config.direct_free then
          for owner = 0 to t.cfg.Config.max_threads - 1 do
            drain_free_slot t ~tid ~slot:((e - 2) mod 4) ~owner
          done;
        for owner = 0 to t.cfg.Config.max_threads - 1 do
          drain_buffer t ~tid ~owner ~charged
        done;
        if charged then Nvm.Region.sfence t.region ~tid
        else Nvm.Region.sfence_async t.region ~tid;
        Nvm.Region.set_i64 t.region ~off:clock_off (e + 1);
        Nvm.Region.persist t.region ~tid ~off:clock_off ~len:8
      end;
      Atomic.set t.curr_epoch (e + 1);
      (* epoch e - 1 just retired: the checker audits that every
         persist-buffer range of epochs <= e - 1 reached media *)
      (match t.chk with
      | None -> ()
      | Some c -> Nvm.Pcheck.on_epoch_advance c ~epoch:(e + 1));
      Atomic.incr t.advances)

(* Background/default advance: the advancer's device traffic is not
   billed to application time (dedicated-core assumption). *)
let advance_epoch t ~tid = advance_epoch_charged t ~tid ~charged:false

(* Report a DCSS decision to the checker (called by Everify with the
   clock value the decision was computed from). *)
let note_linearize t ~epoch ~clock ~success =
  match t.chk with
  | None -> ()
  | Some c -> Nvm.Pcheck.on_linearize c ~epoch ~clock ~success

(* Force buffered work durable: everything that completed before this
   call survives any later crash.  Mirrors fsync: two epoch advances
   move the persistence frontier past all completed operations.  The
   caller helps with the writes-back and *waits* for them (paper §5.2),
   so sync is fully charged. *)
let sync t ~tid =
  advance_epoch_charged t ~tid ~charged:true;
  advance_epoch_charged t ~tid ~charged:true

(* ---- background advancer ---- *)

let start_background t =
  if t.bg = None && t.cfg.Config.auto_advance then begin
    Atomic.set t.stop_bg false;
    let period_s = float_of_int t.cfg.Config.epoch_length_ns /. 1e9 in
    let tid = advancer_tid t.cfg in
    t.bg <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get t.stop_bg) do
               Unix.sleepf period_s;
               if not (Atomic.get t.stop_bg) then advance_epoch t ~tid
             done))
  end

let stop_background t =
  match t.bg with
  | None -> ()
  | Some d ->
      Atomic.set t.stop_bg true;
      Domain.join d;
      t.bg <- None

let sync_checker_clock t =
  match t.chk with
  | None -> ()
  | Some c -> Nvm.Pcheck.on_epoch_advance c ~epoch:(Atomic.get t.curr_epoch)

let create ?(config = Config.default) region =
  let t = make_state region config in
  if Nvm.Region.get_i64 region ~off:clock_off = 0 then begin
    Nvm.Region.set_i64 region ~off:clock_off initial_epoch;
    Nvm.Region.persist region ~tid:0 ~off:clock_off ~len:8
  end
  else Atomic.set t.curr_epoch (Nvm.Region.get_i64 region ~off:clock_off);
  sync_checker_clock t;
  start_background t;
  t

(* ---- recovery ---- *)

(* Rebuild an epoch system from a crashed region and return handles to
   every surviving payload.  A payload survives when it is the newest
   version of its uid with epoch ≤ crash_epoch − 2 and that version is
   not an anti-payload.  Dead blocks are scrubbed and returned to the
   allocator.

   [threads] parallelizes both passes over disjoint superblock slices
   (the paper's §6.4 names recovery scalability as future work; the
   heap partitioning makes both the header scan and the sweep
   embarrassingly parallel, with one sequential uid-table merge
   between them). *)
let recover ?(config = Config.default) ?(threads = 1) region =
  let clock = Nvm.Region.get_i64 region ~off:clock_off in
  let cutoff = clock - 2 in
  let t = make_state region config in
  Atomic.set t.curr_epoch (max clock initial_epoch);
  sync_checker_clock t;
  (* The header scan and sweep below read every block, including ones
     whose lines persisted without a fence (injection); the epoch
     cutoff filters those out, so the reads are sound — tell the
     checker this is a declared recovery scan. *)
  (match t.chk with Some c -> Nvm.Pcheck.set_recovery_scan c true | None -> ());
  Ralloc.rescan t.alloc;
  let threads = max 1 (min threads (Nvm.Region.max_threads region)) in
  (* pass 1: newest qualifying version per uid, per slice *)
  let scan_slice slice =
    let local : (int, Payload_hdr.t * int) Hashtbl.t = Hashtbl.create 4096 in
    let max_uid = ref 0 in
    Ralloc.iter_blocks_slice t.alloc ~slice ~slices:threads (fun ~off ~size ->
        match Payload_hdr.read region ~off ~block_size:size with
        | Some hdr when hdr.epoch <= cutoff ->
            if hdr.uid > !max_uid then max_uid := hdr.uid;
            (match Hashtbl.find_opt local hdr.uid with
            | Some (prev, _) when prev.epoch >= hdr.epoch -> ()
            | _ -> Hashtbl.replace local hdr.uid (hdr, off))
        | Some hdr -> if hdr.uid > !max_uid then max_uid := hdr.uid
        | None -> ());
    (local, !max_uid)
  in
  let partials =
    if threads = 1 then [| scan_slice 0 |]
    else Array.init threads (fun s -> Domain.spawn (fun () -> scan_slice s)) |> Array.map Domain.join
  in
  (* sequential merge of the per-slice winners *)
  let best : (int, Payload_hdr.t * int) Hashtbl.t = Hashtbl.create 4096 in
  let max_uid = ref 0 in
  Array.iter
    (fun (local, local_max) ->
      if local_max > !max_uid then max_uid := local_max;
      Hashtbl.iter
        (fun uid entry ->
          match Hashtbl.find_opt best uid with
          | Some (prev, _) when prev.Payload_hdr.epoch >= (fst entry).Payload_hdr.epoch -> ()
          | _ -> Hashtbl.replace best uid entry)
        local)
    partials;
  Atomic.set t.uid_counter (!max_uid + 1);
  (* pass 2: sweep; losers and anti-payloads are scrubbed and freed *)
  let live_off off =
    match Payload_hdr.read region ~off ~block_size:(Ralloc.block_size t.alloc off) with
    | Some hdr -> (
        match Hashtbl.find_opt best hdr.uid with
        | Some (winner, woff) -> woff = off && winner.ptype <> Payload_hdr.Delete
        | None -> false)
    | None -> false
  in
  let sweep_slice slice =
    Ralloc.sweep_slice t.alloc ~slice ~slices:threads ~live:(fun off ->
        let live = live_off off in
        if not live then begin
          Payload_hdr.scrub region ~off;
          Nvm.Region.writeback region ~tid:slice ~off ~len:8
        end;
        live);
    Nvm.Region.sfence region ~tid:slice
  in
  if threads = 1 then sweep_slice 0
  else Array.init threads (fun s -> Domain.spawn (fun () -> sweep_slice s)) |> Array.iter Domain.join;
  (match t.chk with Some c -> Nvm.Pcheck.set_recovery_scan c false | None -> ());
  (* hand surviving payloads back as first-class handles *)
  let survivors = ref [] in
  Hashtbl.iter
    (fun uid (hdr, off) ->
      if hdr.Payload_hdr.ptype <> Payload_hdr.Delete then
        survivors := { off; uid; epoch = hdr.epoch; size = hdr.size; live = true } :: !survivors)
    best;
  let payloads = Array.of_list !survivors in
  start_background t;
  (t, payloads)

(* Split recovered payloads into [k] slices for parallel rebuilding, as
   the paper's recovery API offers (§5.1). *)
let slices payloads ~k =
  let n = Array.length payloads in
  let k = max 1 (min k n) in
  Array.init k (fun i ->
      let lo = i * n / k and hi = (i + 1) * n / k in
      Array.sub payloads lo (hi - lo))
