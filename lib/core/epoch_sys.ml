(* The Montage epoch system (paper §3 and §5, Fig. 3).

   Execution is divided into epochs by a global clock.  Every payload
   is labeled with the epoch in which it was created or last modified;
   all payloads of epoch e persist together when the clock ticks from
   e+1 to e+2, and after a crash in epoch e everything labeled e or
   e−1 is discarded.  Data-structure operations bracket their updates
   with [begin_op]/[end_op]; synchronization and lookup structure live
   entirely in transient memory (the OCaml heap), so the only NVM
   traffic is payload writes and the deferred write-backs.

   Region layout: line 0 holds the persistent epoch clock; the
   allocator heap starts at 64 KB. *)

let clock_off = 0
let heap_base = 65536
let initial_epoch = 3 (* ≥ 3 so that epoch − 2 never collides with 0 = "idle" *)

(* Decoded-value memos ride the handle as an [exn]: each [Payload.Make]
   instance declares its own [exception Memo of C.t], giving a typed
   one-slot cache without adding a type parameter to [pblk].  [No_memo]
   is the empty slot. *)
exception No_memo

(* Ownership of the non-mirror mutable fields follows the paper's §4
   well-formedness contract: a payload is mutated only by the single
   operation that currently owns it (the data structure serializes
   per-payload access), so those writes need no further lock. *)
type pblk = {
  mutable off : int [@montage.guarded_by "owning operation (per-payload exclusion, §4)"];
      (* block offset in the region *)
  uid : int;
  mutable epoch : int [@montage.guarded_by "owning operation (per-payload exclusion, §4)"];
      (* mirror of the persistent header *)
  mutable size : int [@montage.guarded_by "owning operation (per-payload exclusion, §4)"];
      (* content bytes *)
  mutable live : bool [@montage.guarded_by "owning operation (per-payload exclusion, §4)"];
      (* debugging aid: detect use-after-free *)
  (* --- volatile payload mirror (DRAM read cache) ---
     [mirror] holds the content bytes exactly as stored in NVM; a warm
     [pget] returns them without touching the region.  [memo] caches
     the decoded value on top.  Invariants: the memo is only trusted
     while [mirror] is [Some], and it was decoded from exactly the
     resident buffer ([memo_store] requires physical identity with the
     mirror, under the cache lock); eviction and every content mutation
     clear both together.  [mgen] counts mirror transitions (every
     install/release bumps it, under the cache lock): a cold fill
     captures it before reading the region and is rejected if it raced
     a mutation, so a stale read can never be installed over a fresh
     refresh.  Mirror/memo *mutations* go through the cache lock; the
     unchecked hit path only reads [mirror] and sets [mref]. *)
  mutable mirror : Bytes.t option [@montage.guarded_by "mirror_cache.mc_lock"];
  mutable memo : exn [@montage.guarded_by "mirror_cache.mc_lock"];
  mutable mref : bool
      [@montage.guarded_by "none: lock-free clock ref bit, benign race by design"];
      (* clock (second-chance) reference bit *)
  mutable mslot : int [@montage.guarded_by "mirror_cache.mc_lock"];
      (* index in the cache ring; -1 = not resident *)
  mutable mgen : int [@montage.guarded_by "mirror_cache.mc_lock"];
      (* mirror generation; bumped under the cache lock *)
}

(* The mirror cache: a clock (second-chance) ring of resident handles
   under a byte budget.  Population, refresh, drop and eviction are
   serialized by [mc_lock] (they already sit next to an NVM read or
   write charge, so the spin lock is noise); hits are lock-free — they
   read [pblk.mirror] and set the ref bit.  The budget counts mirror
   bytes only; decoded memos are dropped with their mirror, so their
   lifetime is bounded by the same clock. *)
type mirror_cache = {
  budget : int;
  mc_lock : Util.Spin_lock.t;
  mutable ring : pblk option array [@montage.guarded_by "mc_lock"];
      (* grows on demand; [free] lists vacancies *)
  mutable free : int list [@montage.guarded_by "mc_lock"];
  mutable hand : int [@montage.guarded_by "mc_lock"];
  mutable used : int [@montage.guarded_by "mc_lock"];
      (* resident mirror bytes; under [mc_lock] *)
  hits : Util.Padded.counters; (* per tid; the extra slot serves pget_unsafe *)
  misses : Util.Padded.counters;
  evictions : int Atomic.t;
}

type per_thread = {
  mutable op_epoch : int [@montage.thread_local]; (* 0 = no active operation *)
  mutable last_epoch : int [@montage.thread_local];
  buffer : Persist_buffer.t;
  coal : Wb_coalescer.t; (* this thread's line-dedup scratch for drains *)
  draining : bool Atomic.t;
      (* blocking arm only: raised while this thread holds records it
         popped from [buffer] whose write-backs are not yet fenced; the
         blocking epoch advance waits for it before persisting the
         clock.  The nonblocking arm never pops before fencing, so it
         neither raises nor waits on this flag. *)
}

type t = {
  region : Nvm.Region.t;
  alloc : Ralloc.t;
  cfg : Config.t;
  curr_epoch : int Atomic.t; (* transient mirror of the persistent clock *)
  tracker : Tracker.t;
  mind : Mindicator.t;
  threads : per_thread array;
  (* to_free.(tid): (epoch, off, is_anti) triples freed by thread tid,
     each reclaimable once the clock reaches epoch + 2.  The owner
     appends with a CAS loop; a reclaimer claims the whole cell with
     one [Atomic.exchange] — scrub and free are not idempotent, so each
     block must be reclaimed by exactly one helper even when
     nonblocking advances race — filters by the epoch tag, and pushes
     unripe survivors back (see [reclaim_ripe]).  The is_anti flag
     marks anti-payloads, whose scrub must never reach media before the
     scrub of the victim they mask is fenced (see [reclaim_ripe]);
     [pdelete] defers a victim and its anti at the same epoch so one
     exchange always claims them together. *)
  to_free : (int * int * bool) list Atomic.t array;
  advance_lock : Util.Spin_lock.t;
  uid_counter : int Atomic.t;
  advances : int Atomic.t; (* statistics *)
  stop_bg : bool Atomic.t;
  mutable bg : unit Domain.t option
      [@montage.guarded_by "control thread (start/stop_background caller)"];
  chk : Nvm.Pcheck.t option; (* persistency-ordering checker, per cfg.pcheck *)
  mirror : mirror_cache option; (* volatile payload mirrors, per cfg.payload_mirror *)
}

let region t = t.region
let allocator t = t.alloc
let config t = t.cfg

let current_epoch t = Atomic.get t.curr_epoch
[@@montage.allow
  "R2: read-only observer for stats/tests; in-operation clock reads go \
   through check_epoch and the esys.* points"]

let op_epoch t ~tid = t.threads.(tid).op_epoch

let advance_count t = Atomic.get t.advances
[@@montage.allow "R2: read-only statistics observer"]

(* ---- construction ---- *)

(* Thread-id space: workers use 0 .. max_threads − 1; the background
   advancer owns the extra slot max_threads (it needs its own region
   write-pending queue and never runs operations). *)
let advancer_tid cfg = cfg.Config.max_threads

let make_state region cfg =
  if cfg.Config.max_threads + 1 > Nvm.Region.max_threads region then
    invalid_arg "Epoch_sys: region was created with too few thread slots";
  let slots = cfg.Config.max_threads + 1 in
  let alloc = Ralloc.create region ~heap_base in
  let chk =
    match cfg.Config.pcheck with
    | Config.Pcheck_off -> Nvm.Region.checker region (* reuse one enabled out-of-band *)
    | Config.Pcheck_record -> Some (Nvm.Region.enable_pcheck ~mode:Nvm.Pcheck.Record region)
    | Config.Pcheck_enforce -> Some (Nvm.Region.enable_pcheck ~mode:Nvm.Pcheck.Enforce region)
  in
  {
    region;
    alloc;
    cfg;
    curr_epoch = Atomic.make initial_epoch;
    tracker = Tracker.create ~max_threads:slots;
    mind = Mindicator.create ~max_threads:slots;
    threads =
      Array.init slots (fun _ ->
          {
            op_epoch = 0;
            last_epoch = 0;
            buffer = Persist_buffer.create ~capacity:cfg.Config.buffer_size;
            coal = Wb_coalescer.create ();
            draining = Atomic.make false;
          });
    to_free = Array.init slots (fun _ -> Atomic.make []);
    advance_lock = Util.Spin_lock.create ();
    uid_counter = Atomic.make 1;
    advances = Atomic.make 0;
    stop_bg = Atomic.make false;
    bg = None;
    chk;
    mirror =
      (if cfg.Config.payload_mirror && cfg.Config.mirror_max_bytes > 0 then
         Some
           {
             budget = cfg.Config.mirror_max_bytes;
             mc_lock = Util.Spin_lock.create ();
             ring = Array.make 1024 None;
             free = List.init 1024 Fun.id;
             hand = 0;
             used = 0;
             (* one counter slot per worker + advancer, plus a shared
                slot for tid-less [pget_unsafe] readers *)
             hits = Util.Padded.make_counters (slots + 1);
             misses = Util.Padded.make_counters (slots + 1);
             evictions = Atomic.make 0;
           }
       else None);
  }

let checker t = t.chk

(* ---- volatile payload mirrors ---- *)

(* Statistics slot for readers without a tid (recovery decodes,
   read-only probes): the counter array's last cell.  Padded counters
   are atomic, so sharing it across domains is safe. *)
let untracked_slot t = t.cfg.Config.max_threads + 1

(* Drop a handle's mirror and memo and release its ring slot.  Caller
   holds [mc_lock].  Bumps the handle's generation so any in-flight
   cold fill that started before this release is rejected. *)
let mc_release mc (p : pblk) =
  (match p.mirror with
  | Some b ->
      mc.used <- mc.used - Bytes.length b;
      p.mirror <- None
  | None -> ());
  p.memo <- No_memo;
  p.mgen <- p.mgen + 1;
  if p.mslot >= 0 then begin
    mc.ring.(p.mslot) <- None;
    mc.free <- p.mslot :: mc.free;
    p.mslot <- -1
  end

(* Clock sweep: advance the hand, sparing referenced entries once,
   until the budget holds.  Caller holds [mc_lock].  The step bound
   (every entry visited at most twice) keeps the sweep total even if
   the budget is unreachable. *)
let mc_evict_to_budget mc =
  let n = Array.length mc.ring in
  let steps = ref (2 * n) in
  while mc.used > mc.budget && !steps > 0 do
    decr steps;
    (match mc.ring.(mc.hand) with
    | Some p when p.mref -> p.mref <- false
    | Some p ->
        Atomic.incr mc.evictions;
        mc_release mc p
    | None -> ());
    mc.hand <- (mc.hand + 1) mod n
  done
[@@montage.allow
  "R2: the eviction counter is telemetry; the sweep itself runs under \
   mc_lock, whose acquire is the Sched-visible point"]

(* Install [b] as [p]'s mirror (replacing any previous one), charging
   the budget and evicting above it.  [b] is shared, not copied: every
   caller hands over a freshly allocated buffer (an [encode] result or
   a fresh region read) and mirror readers must not mutate what [pget]
   returns.  Payloads larger than the whole budget stay uncached.

   [gen] (the cold-fill path) makes the install conditional: the fill
   captured [p.mgen] before its region read, and if the handle mutated
   since ([pset]/[pdelete]/eviction each bump the generation under this
   lock), installing the bytes it read would publish a stale — possibly
   torn — mirror over the mutation's refresh.  The fill is then simply
   dropped; the reader keeps its private buffer.  Mutators ([pnew]/
   [pset] refresh) install unconditionally. *)
let mc_install ?gen mc (p : pblk) b =
  let len = Bytes.length b in
  Util.Spin_lock.with_lock mc.mc_lock (fun () ->
      match gen with
      | Some g when p.mgen <> g -> ()
      | _ ->
          mc_release mc p;
          if len <= mc.budget then begin
            (match mc.free with
            | s :: rest ->
                mc.free <- rest;
                p.mslot <- s
            | [] ->
                let n = Array.length mc.ring in
                let bigger = Array.make (2 * n) None in
                Array.blit mc.ring 0 bigger 0 n;
                mc.ring <- bigger;
                mc.free <- List.init (n - 1) (fun i -> n + 1 + i);
                p.mslot <- n);
            mc.ring.(p.mslot) <- Some p;
            p.mirror <- Some b;
            p.mref <- true;
            mc.used <- mc.used + len;
            if mc.used > mc.budget then mc_evict_to_budget mc
          end)

let mc_drop mc (p : pblk) = Util.Spin_lock.with_lock mc.mc_lock (fun () -> mc_release mc p)

(* The hit path: return the mirror bytes if resident.  Without a
   checker this is lock-free — one option read and a ref-bit store.
   With a checker attached the read is asserted coherent against the
   store view ([Pcheck.on_mirror_read]); that comparison must not
   straddle an in-flight in-place store, so checked hits revalidate
   under [mc_lock]: mutators drop the mirror (under the same lock)
   *before* touching the region and re-install after, so a mirror
   observed resident while holding the lock implies its range is
   quiescent and matches the store view.  Only checked builds pay the
   serialization. *)
let mirror_hit t ~stat_tid (p : pblk) =
  match t.mirror with
  | None -> None
  | Some mc -> (
      match t.chk with
      | None -> (
          match p.mirror with
          | Some _ as hit ->
              p.mref <- true;
              Util.Padded.incr mc.hits stat_tid;
              hit
          | None -> None)
      | Some _ ->
          Util.Spin_lock.with_lock mc.mc_lock (fun () ->
              match p.mirror with
              | Some b as hit ->
                  p.mref <- true;
                  Util.Padded.incr mc.hits stat_tid;
                  Nvm.Region.note_mirror_read t.region
                    ~off:(Payload_hdr.content_off p.off) ~len:(Bytes.length b) ~data:b;
                  hit
              | None -> None))

let mirror_fill t ~stat_tid ~gen p b =
  match t.mirror with
  | None -> ()
  | Some mc ->
      Util.Padded.incr mc.misses stat_tid;
      mc_install ~gen mc p b

(* Refresh after a content mutation ([pnew]/[pset]): the new encoded
   bytes become the mirror without a miss being charged. *)
let mirror_refresh t p b = match t.mirror with None -> () | Some mc -> mc_install mc p b
let mirror_drop t p = match t.mirror with None -> () | Some mc -> mc_drop mc p

type mirror_stats = { hits : int; misses : int; evictions : int; resident_bytes : int }

let mirror_stats t =
  match t.mirror with
  | None -> { hits = 0; misses = 0; evictions = 0; resident_bytes = 0 }
  | Some mc ->
      {
        hits = Util.Padded.sum mc.hits;
        misses = Util.Padded.sum mc.misses;
        evictions = Atomic.get mc.evictions;
        resident_bytes = mc.used;
      }
[@@montage.allow "R2: read-only statistics observer"]

(* ---- decoded-value memos (used by Payload.Make) ---- *)

(* Return the handle's memo if it can be trusted: the mirror must be
   resident (eviction clears both, so a missing mirror means the memo
   may be stale) and the usual live/old-sees-new discipline applies.
   Counted as a hit.  Like [mirror_hit], checked builds revalidate
   under [mc_lock] so the coherence assertion on the backing bytes
   cannot race an in-flight in-place store. *)
let memo_probe t ~stat_tid (p : pblk) =
  match t.mirror with
  | None -> No_memo
  | Some mc -> (
      match t.chk with
      | None -> (
          match p.mirror with
          | Some _ when p.memo != No_memo ->
              Util.Padded.incr mc.hits stat_tid;
              p.mref <- true;
              p.memo
          | _ -> No_memo)
      | Some _ ->
          Util.Spin_lock.with_lock mc.mc_lock (fun () ->
              match p.mirror with
              | Some b when p.memo != No_memo ->
                  Util.Padded.incr mc.hits stat_tid;
                  p.mref <- true;
                  Nvm.Region.note_mirror_read t.region
                    ~off:(Payload_hdr.content_off p.off) ~len:(Bytes.length b) ~data:b;
                  p.memo
              | _ -> No_memo))

(* ---- write-back plumbing ----

   Cost discipline (see DESIGN.md "Substitutions"): an application
   thread is charged for work it would *wait* on — CLWB issue on its
   own overflow write-backs, and the full drain when it is inside
   [sync].  Deferred work executed by the background advancer is
   semantically identical but uncharged: in the paper's deployment it
   runs on a dedicated core off every application critical path, and
   on this one-core simulator charging it would bill the application
   for exactly the cost Montage exists to hide. *)

(* Synchronous flush: CLWB + committing fence, fully charged.  Used by
   the DirWB reference configuration and by strict callers. *)
let flush_now t ~tid ~off ~len =
  Nvm.Region.writeback t.region ~tid ~off ~len;
  Nvm.Region.sfence t.region ~tid

(* Incremental overflow write-back on a worker: the CLWB issue is
   charged (the worker executes it); completion is asynchronous — the
   worker never waits on a drain. *)
let flush_incremental t ~tid ~off ~len =
  Nvm.Region.writeback t.region ~tid ~off ~len;
  Nvm.Region.sfence_async t.region ~tid

(* Issue everything collected in [coal] as batched line write-backs on
   the caller's queue, then fence once.  The fence is skipped when the
   coalescer is empty (nothing to order — an empty fence is exactly the
   lint the coalesced path exists to remove). *)
let flush_coalesced t ~tid ~charged ~fence coal =
  if not (Wb_coalescer.is_empty coal) then begin
    let wb =
      if charged then Nvm.Region.writeback_lines else Nvm.Region.writeback_lines_uncharged
    in
    let ranges, lines_in, lines_out =
      Wb_coalescer.flush coal ~emit:(fun ~first ~lines -> wb t.region ~tid ~first ~lines)
    in
    Nvm.Region.note_coalesced t.region ~tid ~ranges ~lines_in ~lines_out;
    match fence with
    | `Sync -> Nvm.Region.sfence t.region ~tid
    | `Async -> Nvm.Region.sfence_async t.region ~tid
    | `None -> ()
  end

(* Bracket [f] with [pt.draining]: between popping a record from the
   ring and fencing its write-back the record's range is durable
   nowhere — the ring no longer holds it and media does not yet.  An
   epoch advance that observes the ring empty in that window must not
   persist the clock past the record (its epoch may be the one the tick
   retires), so the advance spins on this flag before the clock store.
   Cleared on exception too: under Pcheck Enforce a violation raised
   mid-flush must not leave the advancer spinning forever. *)
let with_draining pt f =
  Atomic.set pt.draining true;
  match f () with
  | () -> Atomic.set pt.draining false
  | exception e ->
      Atomic.set pt.draining false;
      raise e
[@@montage.allow
  "R2: every caller is a Sched-instrumented drain path \
   (esys.record_persist/end_op/advance), and the advance observes the \
   flag through its own esys.advance.draining await point"]

(* Test-only stall injection: invoked in the middle of every drain's
   vulnerable window — after records have been collected (blocking arm)
   or published (nonblocking arm) but before the fence that makes them
   durable.  The Dsched wait-freedom suites and the stalled-worker
   bench park a thread here to show that the nonblocking advance
   completes without it while the blocking advance waits forever.
   Never set outside tests and benches. *)
let test_stall_in_drain : (unit -> unit) ref = ref (fun () -> ())

(* The nonblocking arm's owner-side full-ring flush: publish the whole
   ring in place (records stay claimable — a concurrent advance that
   observes them simply flushes them too; write-backs of data still in
   the ring are idempotent), fence, and only then retire the published
   prefix.  There is never a moment when a record is out of the ring
   but not yet durable, which is why the nonblocking advance needs no
   [draining] handshake. *)
let publish_own_buffer t ~tid ~fence =
  let pt = t.threads.(tid) in
  let stop =
    if t.cfg.Config.coalesce_writebacks then begin
      let stop =
        Persist_buffer.publish pt.buffer (fun off len -> Wb_coalescer.add pt.coal ~off ~len)
      in
      !test_stall_in_drain ();
      flush_coalesced t ~tid ~charged:true ~fence pt.coal;
      stop
    end
    else begin
      let emitted = ref 0 in
      let stop =
        Persist_buffer.publish pt.buffer (fun off len ->
            incr emitted;
            Nvm.Region.writeback t.region ~tid ~off ~len)
      in
      !test_stall_in_drain ();
      (if !emitted > 0 then
         match fence with
         | `Sync -> Nvm.Region.sfence t.region ~tid
         | `Async -> Nvm.Region.sfence_async t.region ~tid
         | `None -> ());
      stop
    end
  in
  Persist_buffer.retire_upto pt.buffer ~upto:stop;
  if Persist_buffer.is_empty pt.buffer then Mindicator.clear t.mind ~tid

(* Record that [off, off+len) must persist by the end of the current
   epoch.  Policy-dependent: buffered (default), direct (DirWB), or
   elided entirely for Montage (T). *)
let record_persist t ~tid ~off ~len =
  Util.Sched.yield "esys.record_persist";
  if t.cfg.Config.persist then
    match t.cfg.Config.writeback with
    | Config.Direct -> flush_now t ~tid ~off ~len
    | Config.Buffered ->
        let pt = t.threads.(tid) in
        Mindicator.announce t.mind ~tid ~epoch:pt.op_epoch;
        (* checker obligation: this range must reach media before
           epoch op_epoch + 2 (the buffered-durability contract) *)
        (match t.chk with
        | None -> ()
        | Some c -> Nvm.Pcheck.on_buffer_push c ~tid ~epoch:pt.op_epoch ~off ~len);
        if t.cfg.Config.nb_advance then begin
          if Persist_buffer.is_full pt.buffer then
            publish_own_buffer t ~tid ~fence:`Async;
          (* the retire above made room, so the eviction flush cannot
             fire — it would be exactly the popped-but-unfenced window
             the nonblocking arm bans *)
          Persist_buffer.push pt.buffer
            ~flush:(fun o l -> flush_incremental t ~tid ~off:o ~len:l)
            ~off ~len
        end
        else
          with_draining pt (fun () ->
              if t.cfg.Config.coalesce_writebacks && Persist_buffer.is_full pt.buffer then begin
                (* ring full: instead of evicting one record per push with a
                   writeback+fence each (the per-record incremental path),
                   snapshot-drain the whole ring through the coalescer — one
                   batched issue, one fence, each line at most once *)
                Persist_buffer.drain pt.buffer (fun o l -> Wb_coalescer.add pt.coal ~off:o ~len:l);
                !test_stall_in_drain ();
                flush_coalesced t ~tid ~charged:true ~fence:`Async pt.coal
              end;
              Persist_buffer.push pt.buffer
                ~flush:(fun o l -> flush_incremental t ~tid ~off:o ~len:l)
                ~off ~len)

(* Drain one thread's buffer.  With [coal] the records are collected
   for a later batched flush; otherwise each goes straight onto the
   caller's region queue.  When [charged] the caller pays CLWB issue
   costs (it is a synchronous helper inside sync); otherwise it is the
   background advancer.

   This must chase the tail ([drain_all], not the snapshot [drain]): a
   record the owner pushes mid-drain may cover a line whose write-back
   is already queued here, and re-flushing it before our fence is what
   keeps that fence ahead of the owner's store (the Pcheck soundness
   invariant: an epoch advance drains buffers to empty before the
   clock moves).  The snapshot drain is for the owner's own overflow
   batches, where no concurrent producer exists. *)
let drain_buffer ?coal t ~tid ~owner ~charged =
  (match coal with
  | Some coal ->
      Persist_buffer.drain_all t.threads.(owner).buffer (fun off len ->
          Wb_coalescer.add coal ~off ~len)
  | None ->
      let wb =
        if charged then Nvm.Region.writeback else Nvm.Region.writeback_uncharged
      in
      Persist_buffer.drain_all t.threads.(owner).buffer (fun off len -> wb t.region ~tid ~off ~len));
  Mindicator.clear t.mind ~tid:owner

(* ---- reclamation ---- *)

(* Scrub a block's media header, then hand it back to the allocator.
   Scrubbing closes the block-recycling resurrection window (DESIGN.md);
   the write-back is batched on the caller's queue and fenced by the
   caller before the epoch clock moves. *)
let reclaim_block ?coal t ~tid ~charged off =
  Payload_hdr.scrub t.region ~off;
  (match coal with
  | Some coal -> Wb_coalescer.add coal ~off ~len:8
  | None ->
      if charged then Nvm.Region.writeback t.region ~tid ~off ~len:8
      else Nvm.Region.writeback_uncharged t.region ~tid ~off ~len:8);
  Ralloc.free t.alloc ~tid off

(* Claim and reclaim thread [owner]'s deferred frees that are ripe at
   [upto]: every (epoch, off) pair with epoch <= upto, where the caller
   guarantees the clock has reached upto + 2.  The whole cell is
   claimed with a single [Atomic.exchange] — scrub and free are not
   idempotent, so unlike payload write-backs this step must be owned by
   exactly one thread even when nonblocking advances race — and unripe
   survivors are pushed back with a CAS loop against the owner's
   concurrent appends.  [upto] is a fixed epoch, not a clock-relative
   slot index, so a reclaimer delayed arbitrarily long still frees only
   blocks whose two-epoch quarantine had elapsed when it was computed.
   Returns the number of blocks reclaimed (callers skip their fence
   when nothing happened). *)
(* Test-only stall injection for the reclamation scrub window: invoked
   after the ripe plain victims' scrubs have been issued (still
   volatile) but before the fence and the anti-payload scrubs.  A
   reclaimer parked here holds superseded old versions in exactly the
   state the anti-scrub barrier below exists for; the Dsched scrub
   suite crashes in this window and checks recovery never resurrects a
   masked victim.  Never set outside tests. *)
let test_stall_in_reclaim : (unit -> unit) ref = ref (fun () -> ())

let reclaim_ripe ?coal ?(charged = false) t ~tid ~owner ~upto =
  Util.Sched.yield "esys.reclaim";
  let cell = t.to_free.(owner) in
  match Atomic.exchange cell [] with
  | [] -> 0
  | all ->
      let ripe, keep = List.partition (fun (e, _, _) -> e <= upto) all in
      (if keep <> [] then
         let rec put_back () =
           let cur = Atomic.get cell in
           if not (Atomic.compare_and_set cell cur (keep @ cur)) then put_back ()
         in
         put_back ());
      (* Anti-scrub barrier.  An anti-payload masks its still-valid
         victim at recovery, so the anti's scrub must never reach media
         while the victim's scrub is still volatile — otherwise a crash
         resurrects the victim.  [pdelete] defers both at the same
         epoch, so one exchange claims the pair; here we scrub all
         plain victims first, fence, and only then store the anti
         scrubs.  The fence (not mere store order) matters: write-backs
         may complete independently per line, so without it a crash
         could persist the anti's line and drop the victim's. *)
      let antis, plains = List.partition (fun (_, _, anti) -> anti) ripe in
      List.iter (fun (_, off, _) -> reclaim_block ?coal t ~tid ~charged off) plains;
      !test_stall_in_reclaim ();
      if antis <> [] then begin
        (if plains <> [] then
           match coal with
           | Some coal ->
               flush_coalesced t ~tid ~charged ~fence:(if charged then `Sync else `Async) coal
           | None -> Nvm.Region.sfence t.region ~tid);
        List.iter (fun (_, off, _) -> reclaim_block ?coal t ~tid ~charged off) antis
      end;
      List.length ripe

(* Worker-local reclamation (+LocalFree in Fig. 4): at begin_op, a
   thread entering epoch e reclaims its own garbage that is ripe at
   e − 2.  The epoch tags on the deferred list subsume the paper's
   window formula — any entry at least two epochs old is safe. *)
let reclaim_local t ~tid =
  let pt = t.threads.(tid) in
  if pt.last_epoch > 0 && pt.op_epoch > pt.last_epoch then begin
    let upto = pt.op_epoch - 2 in
    (* worker-side reclamation dilates the critical path: charged *)
    if t.cfg.Config.coalesce_writebacks then begin
      ignore (reclaim_ripe ~coal:pt.coal ~charged:true t ~tid ~owner:tid ~upto);
      flush_coalesced t ~tid ~charged:true ~fence:`Sync pt.coal
    end
    else begin
      let n = reclaim_ripe ~charged:true t ~tid ~owner:tid ~upto in
      if n > 0 then Nvm.Region.sfence t.region ~tid
    end
  end

(* ---- operations ---- *)

let begin_op t ~tid =
  Util.Sched.yield "esys.begin_op";
  let pt = t.threads.(tid) in
  let rec register () =
    let e = Atomic.get t.curr_epoch in
    Tracker.register t.tracker ~tid ~epoch:e;
    if Atomic.get t.curr_epoch <> e then register () else e
  in
  let e = register () in
  pt.op_epoch <- e;
  if t.cfg.Config.persist && t.cfg.Config.reclaim = Config.Workers then reclaim_local t ~tid;
  pt.last_epoch <- e

let end_op t ~tid =
  Util.Sched.yield "esys.end_op";
  let pt = t.threads.(tid) in
  if t.cfg.Config.drain_on_end_op && t.cfg.Config.persist then
    if t.cfg.Config.nb_advance then begin
      (* Montage (dw), nonblocking arm: complete the operation *before*
         draining.  Once the records are in the ring any helper can
         claim them, so an epoch advance (or a peer's sync) racing this
         drain finishes it instead of waiting for us — and the tracker
         no longer counts us, so quiescence cannot stall on a thread
         that is merely flushing. *)
      pt.op_epoch <- 0;
      Tracker.unregister t.tracker ~tid;
      publish_own_buffer t ~tid ~fence:`Sync
    end
    else begin
      (* Montage (dw), blocking arm: the worker itself writes back
         everything at the end of each operation — fully charged, it
         waits for the drain *)
      with_draining pt (fun () ->
          if t.cfg.Config.coalesce_writebacks then begin
            Persist_buffer.drain_all pt.buffer (fun off len -> Wb_coalescer.add pt.coal ~off ~len);
            Mindicator.clear t.mind ~tid;
            !test_stall_in_drain ();
            flush_coalesced t ~tid ~charged:true ~fence:`Sync pt.coal
          end
          else begin
            drain_buffer t ~tid ~owner:tid ~charged:true;
            !test_stall_in_drain ();
            Nvm.Region.sfence t.region ~tid
          end);
      pt.op_epoch <- 0;
      Tracker.unregister t.tracker ~tid
    end
  else begin
    pt.op_epoch <- 0;
    Tracker.unregister t.tracker ~tid
  end

let with_op t ~tid f =
  begin_op t ~tid;
  Fun.protect ~finally:(fun () -> end_op t ~tid) f

let check_epoch t ~tid =
  if Atomic.get t.curr_epoch <> t.threads.(tid).op_epoch then raise Errors.Epoch_changed
[@@montage.allow
  "R2: validation read inside an operation; every caller is an op body \
   that opened with a Sched point in begin_op (esys.begin_op)"]

let require_op t ~tid =
  if t.threads.(tid).op_epoch = 0 then
    invalid_arg "Montage: payload mutation outside BEGIN_OP/END_OP"

let osn_check t ~tid p =
  let oe = t.threads.(tid).op_epoch in
  if oe <> 0 && p.epoch > oe then raise Errors.Old_see_new

(* ---- payload lifecycle ---- *)

let fresh_uid t = Atomic.fetch_and_add t.uid_counter 1
[@@montage.allow
  "R2: uid allocation commutes with everything; no interleaving of the \
   fetch-and-add is observable beyond the uid value itself"]

let write_payload t ~off ~hdr ~content =
  Payload_hdr.write t.region ~off hdr;
  Nvm.Region.write t.region ~off:(Payload_hdr.content_off off) ~src:content ~src_off:0
    ~len:(Bytes.length content)

let pnew t ~tid content =
  Util.Sched.yield "esys.pnew";
  require_op t ~tid;
  let pt = t.threads.(tid) in
  let size = Bytes.length content in
  let uid = fresh_uid t in
  let off = Ralloc.alloc t.alloc ~tid ~size:(Payload_hdr.header_size + size) in
  write_payload t ~off
    ~hdr:{ Payload_hdr.ptype = Alloc; epoch = pt.op_epoch; uid; size }
    ~content;
  record_persist t ~tid ~off ~len:(Payload_hdr.header_size + size);
  let p = { off; uid; epoch = pt.op_epoch; size; live = true; mirror = None; memo = No_memo; mref = false; mslot = -1; mgen = 0 } in
  (* a fresh payload is born warm: the encoded content doubles as its
     mirror (shared — the caller encoded it for this call) *)
  mirror_refresh t p content;
  p

let check_live p = if not p.live then raise Errors.Use_after_free

(* Cold read: pay the charged NVM load, then the buffer just read
   becomes the mirror (shared with the caller — [pget]'s contract is
   that returned bytes are never mutated).  The generation captured
   *before* the region read gates the fill: if a mutation (in-place
   [pset], [pdelete], eviction) lands anywhere between the capture and
   the install, [mc_install] rejects the fill rather than publish bytes
   that no longer describe the payload. *)
let pget_cold t ~stat_tid p =
  let gen = p.mgen in
  let buf = Bytes.create p.size in
  Nvm.Region.read t.region ~off:(Payload_hdr.content_off p.off) ~dst:buf ~dst_off:0 ~len:p.size;
  mirror_fill t ~stat_tid ~gen p buf;
  buf

let pget t ~tid p =
  Util.Sched.yield "esys.pget";
  check_live p;
  osn_check t ~tid p;
  match mirror_hit t ~stat_tid:tid p with Some b -> b | None -> pget_cold t ~stat_tid:tid p

let pget_unsafe t p =
  check_live p;
  let stat_tid = untracked_slot t in
  match mirror_hit t ~stat_tid p with Some b -> b | None -> pget_cold t ~stat_tid p

(* ---- decoded-value memo API (the [Payload.Make] fast path) ---- *)

(* [memo_get] returns the handle's memoized decoded value (as the
   caller's own [Memo _] exception) when the mirror is warm, or
   [No_memo]; the caller then decodes via [pget] and calls
   [memo_store].  Both run the same live/old-sees-new discipline as
   [pget]. *)
let memo_get t ~tid p =
  check_live p;
  osn_check t ~tid p;
  memo_probe t ~stat_tid:tid p

let memo_get_unsafe t p =
  check_live p;
  memo_probe t ~stat_tid:(untracked_slot t) p

(* Publish a decoded value on the handle.  [src] is the buffer the
   value was decoded from (a [pget] result or the encode buffer handed
   to [pnew]/[pset]); the memo is honored only if [src] is *physically*
   the resident mirror, checked and stored under [mc_lock] so the test
   cannot race a concurrent install.  Residency alone is not enough: a
   lock-free reader can decode the old bytes, lose the race to an
   in-place [pset] that installs new mirror bytes, and would otherwise
   publish the stale decode against the fresh mirror — served warm on
   every later read with the byte mirror fully current (invisible to
   the checker's byte compare).  Identity with the resident buffer
   pins the memo to exactly the bytes it describes; a mismatched store
   is simply dropped (the next reader re-decodes). *)
let memo_store t (p : pblk) ~src m =
  match t.mirror with
  | None -> ()
  | Some mc ->
      Util.Spin_lock.with_lock mc.mc_lock (fun () ->
          match p.mirror with
          | Some b when b == src -> p.memo <- m
          | _ -> ())

(* Atomic (memo, backing bytes) snapshot, for memo-upgrade paths
   ([Payload.Kv.get] promoting a value-only memo to the full pair):
   taken under [mc_lock], so a memoized fragment can safely be combined
   with the exact mirror bytes it was decoded from and re-published via
   [memo_store ~src] without ever pairing it with a newer version's
   bytes.  Not counted as a hit — callers probe lock-free first and
   only land here on the rare upgrade. *)
let memo_src t ~tid p =
  check_live p;
  osn_check t ~tid p;
  match t.mirror with
  | None -> (No_memo, None)
  | Some mc ->
      Util.Spin_lock.with_lock mc.mc_lock (fun () ->
          match p.mirror with
          | Some b when p.memo != No_memo ->
              (match t.chk with
              | None -> ()
              | Some _ ->
                  Nvm.Region.note_mirror_read t.region
                    ~off:(Payload_hdr.content_off p.off) ~len:(Bytes.length b) ~data:b);
              (p.memo, Some b)
          | _ -> (No_memo, None))

(* Free a payload bypassing the epoch protocol — used by Montage (T)
   and the DirFree reference configuration, which sacrifice crash
   consistency for a performance ceiling. *)
let free_immediately t ~tid off =
  Payload_hdr.scrub t.region ~off;
  Ralloc.free t.alloc ~tid off

(* Defer [off] for reclamation once the clock reaches [epoch] + 2.
   CAS append: the owner is the only pusher, but a reclaimer's
   push-back of unripe survivors ([reclaim_ripe]) can race it.
   [anti] marks anti-payload blocks for [reclaim_ripe]'s scrub
   ordering. *)
let defer_free ?(anti = false) t ~tid ~epoch off =
  Util.Sched.yield "esys.defer_free";
  let cell = t.to_free.(tid) in
  let rec add () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur ((epoch, off, anti) :: cur)) then add ()
  in
  add ()

let block_fits t ~off ~content_len =
  Payload_hdr.header_size + content_len <= Ralloc.block_size t.alloc off

let pset t ~tid p content =
  Util.Sched.yield "esys.pset";
  require_op t ~tid;
  check_live p;
  osn_check t ~tid p;
  let pt = t.threads.(tid) in
  let len = Bytes.length content in
  let in_place_ok =
    block_fits t ~off:p.off ~content_len:len
    && ((not t.cfg.Config.persist) || p.epoch = pt.op_epoch)
  in
  if in_place_ok then begin
    (* Coherence ordering for lock-free readers: drop the mirror
       *before* the stores below, re-install after.  A hit can then
       never compare pre-store mirror bytes against the already-updated
       store view (a spurious Mirror_stale under Enforce for a legal
       racy read); readers in the window fall back to a cold region
       read, whose fill the generation check rejects if it raced this
       store ([mirror_drop] and [mirror_refresh] each bump it). *)
    mirror_drop t p;
    Nvm.Region.set_i32 t.region ~off:(p.off + 24) len;
    Nvm.Region.write t.region ~off:(Payload_hdr.content_off p.off) ~src:content ~src_off:0 ~len;
    p.size <- len;
    record_persist t ~tid ~off:p.off ~len:(Payload_hdr.header_size + len);
    (* refresh the mirror in place: the new encoded bytes replace the
       old ones (the stale decoded memo died with the drop above) *)
    mirror_refresh t p content;
    p
  end
  else begin
    (* copying update: new block, same uid, current epoch; the old
       version is reclaimable two epochs from now *)
    let off = Ralloc.alloc t.alloc ~tid ~size:(Payload_hdr.header_size + len) in
    write_payload t ~off
      ~hdr:{ Payload_hdr.ptype = Update; epoch = pt.op_epoch; uid = p.uid; size = len }
      ~content;
    record_persist t ~tid ~off ~len:(Payload_hdr.header_size + len);
    let old_off = p.off in
    p.live <- false;
    mirror_drop t p;
    if (not t.cfg.Config.persist) || t.cfg.Config.direct_free then free_immediately t ~tid old_off
    else defer_free t ~tid ~epoch:pt.op_epoch old_off;
    let fresh =
      { off; uid = p.uid; epoch = pt.op_epoch; size = len; live = true; mirror = None; memo = No_memo; mref = false; mslot = -1; mgen = 0 }
    in
    (* the warmth carries across the copying update: the fresh handle's
       mirror is the content just written *)
    mirror_refresh t fresh content;
    fresh
  end

let pdelete t ~tid p =
  Util.Sched.yield "esys.pdelete";
  require_op t ~tid;
  check_live p;
  osn_check t ~tid p;
  let pt = t.threads.(tid) in
  p.live <- false;
  mirror_drop t p;
  if (not t.cfg.Config.persist) || t.cfg.Config.direct_free then
    free_immediately t ~tid p.off
  else if p.epoch = pt.op_epoch then begin
    match Payload_hdr.read t.region ~off:p.off ~block_size:(Ralloc.block_size t.alloc p.off) with
    | Some { ptype = Alloc; _ } ->
        (* Created this epoch: it was never visible to recovery.  Scrub
           (the scrub line rides the persist buffer in case the create
           was incrementally written back) and free immediately. *)
        Payload_hdr.scrub t.region ~off:p.off;
        record_persist t ~tid ~off:p.off ~len:8;
        Ralloc.free t.alloc ~tid p.off
    | Some _ ->
        (* An UPDATE from this epoch: turn the block into its own
           anti-payload in place; it is reclaimed at op_epoch + 3 like
           any anti-payload.  (The superseded older version is already
           in to_free from the copying update.) *)
        Payload_hdr.set_type t.region ~off:p.off Delete;
        record_persist t ~tid ~off:p.off ~len:8;
        defer_free ~anti:true t ~tid ~epoch:(pt.op_epoch + 1) p.off
    | None ->
        Errors.corrupt
          "epoch_sys: pdelete: live payload uid=%d at off=%d born this epoch \
           (%d) has an unreadable header"
          p.uid p.off pt.op_epoch
  end
  else begin
    (* Deleting a payload from an earlier epoch: publish an anti-payload
       labeled with the current epoch; if the crash cut falls between
       them, recovery sees the original without the anti and keeps it —
       exactly the buffered-durability contract. *)
    let anti = Ralloc.alloc t.alloc ~tid ~size:Payload_hdr.header_size in
    Payload_hdr.write t.region ~off:anti
      { Payload_hdr.ptype = Delete; epoch = pt.op_epoch; uid = p.uid; size = 0 };
    record_persist t ~tid ~off:anti ~len:Payload_hdr.header_size;
    (* The victim is deferred at the anti's epoch, not its own: the two
       scrubs must be claimed by one [reclaim_ripe] exchange so the
       anti-scrub barrier there can order them.  Under the nonblocking
       advance a reclaimer can stall between its scrub stores and its
       fence while further ticks proceed; if the victim were ripe one
       tick earlier, a later tick could durably scrub the anti while
       the victim's scrub is still volatile in the stalled helper —
       after a crash, recovery would see the victim without its anti
       and resurrect it. *)
    defer_free ~anti:true t ~tid ~epoch:(pt.op_epoch + 1) anti;
    defer_free t ~tid ~epoch:(pt.op_epoch + 1) p.off
  end

(* ---- epoch advance ---- *)

(* Blocking arm: advance the clock by one epoch under [advance_lock];
   the caller may be the background domain, a sync helper, or a test.
   Steps follow §3.2: quiesce e−1, reclaim ripe deferred frees, write
   back everything buffered, fence, then bump and persist the clock.
   Reclamation scrubs ride the same fence as the payload write-backs,
   so nothing is reused before its supersession record is durable. *)
(* Drain the ripe deferred frees (when background reclamation is on;
   [reclaim_upto] is the newest ripe epoch) and the persist buffer of
   each owner in [owners] through [coal] on thread [tid], then flush
   the batch and fence.  One shard of an epoch drain. *)
let drain_shard t ~tid ~reclaim_upto ~charged ~fence coal owners =
  List.iter
    (fun owner ->
      (match reclaim_upto with
      | Some upto -> ignore (reclaim_ripe ~coal ~charged t ~tid ~owner ~upto)
      | None -> ());
      drain_buffer ~coal t ~tid ~owner ~charged)
    owners;
  flush_coalesced t ~tid ~charged ~fence coal

(* Advisory emptiness probe on an owner's deferred-free cell, used only
   to decide whether it is worth visiting in a drain shard. *)
let has_ripe_free t ~owner ~upto =
  List.exists (fun (e, _, _) -> e <= upto) (Atomic.get t.to_free.(owner))
[@@montage.allow
  "R2: read-only probe under the blocking arm's advance lock; the \
   claim itself goes through reclaim_ripe's esys.reclaim point"]

(* The coalesced epoch drain.  Serial by default; the background
   advancer (and only it — worker tids must not be borrowed from under
   running threads) fans the per-owner drains out over up to
   [cfg.drain_domains] worker domains, each with its own coalescer,
   region queue (one of the region's spare thread slots) and trailing
   fence, so the write-back of a large epoch completes before the
   clock ticks rather than serializing on one domain. *)
let drain_all_coalesced t ~tid ~reclaim_upto ~charged =
  let nw = t.cfg.Config.max_threads in
  let owners = ref [] in
  for owner = nw - 1 downto 0 do
    let ripe =
      match reclaim_upto with Some upto -> has_ripe_free t ~owner ~upto | None -> false
    in
    if ripe || not (Persist_buffer.is_empty t.threads.(owner).buffer) then
      owners := owner :: !owners
  done;
  let owners = !owners in
  (* owners with nothing to drain still get their mindicator slot
     cleared, as the unconditional per-owner drain did *)
  for owner = 0 to nw - 1 do
    if not (List.mem owner owners) then Mindicator.clear t.mind ~tid:owner
  done;
  let n = List.length owners in
  (* spare region thread slots beyond the workers and the advancer *)
  let spare = Nvm.Region.max_threads t.region - (nw + 1) in
  let k =
    if charged || tid <> advancer_tid t.cfg then 1
    else if Util.Sched.active () then 1
      (* the deterministic scheduler runs everything as fibers on one
         domain; spawning helper domains would race it *)
    else min t.cfg.Config.drain_domains (min (1 + spare) (max 1 n))
  in
  if k <= 1 then drain_shard t ~tid ~reclaim_upto ~charged ~fence:(if charged then `Sync else `Async)
      t.threads.(tid).coal owners
  else begin
    let shards = Array.make k [] in
    List.iteri (fun i owner -> shards.(i mod k) <- owner :: shards.(i mod k)) owners;
    let run j =
      (* shard 0 reuses the advancer's tid and coalescer; helpers get
         the region's spare slots above the advancer *)
      let stid = if j = 0 then tid else nw + 1 + (j - 1) in
      let coal = if j = 0 then t.threads.(tid).coal else Wb_coalescer.create () in
      drain_shard t ~tid:stid ~reclaim_upto ~charged:false ~fence:`Async coal shards.(j)
    in
    let helpers = Array.init (k - 1) (fun j -> Domain.spawn (fun () -> run (j + 1))) in
    run 0;
    Array.iter Domain.join helpers
  end

let blocking_advance_epoch t ~tid ~charged =
  Util.Sched.yield "esys.advance";
  Util.Spin_lock.with_lock t.advance_lock (fun () ->
      let e = Atomic.get t.curr_epoch in
      Tracker.wait_all t.tracker ~epoch:(e - 1);
      Util.Sched.yield "esys.advance.quiesced";
      if t.cfg.Config.persist then begin
        let reclaim_upto =
          if t.cfg.Config.reclaim = Config.Background && not t.cfg.Config.direct_free then
            Some (e - 2)
          else None
        in
        (if t.cfg.Config.coalesce_writebacks then
           drain_all_coalesced t ~tid ~reclaim_upto ~charged
         else begin
           (match reclaim_upto with
           | Some upto ->
               for owner = 0 to t.cfg.Config.max_threads - 1 do
                 ignore (reclaim_ripe t ~tid ~owner ~upto)
               done
           | None -> ());
           for owner = 0 to t.cfg.Config.max_threads - 1 do
             drain_buffer t ~tid ~owner ~charged
           done;
           if charged then Nvm.Region.sfence t.region ~tid
           else Nvm.Region.sfence_async t.region ~tid
         end);
        (* A worker may at this instant hold records it popped from its
           own ring (overflow batch, end-of-op drain) whose write-backs
           are not yet fenced: the drains above saw its ring empty, but
           the data is durable nowhere, and it can belong to the epoch
           this tick retires.  Wait for every such in-flight flush to
           land before the clock moves — an empty ring is not "drained"
           while its owner is mid-flush. *)
        for w = 0 to t.cfg.Config.max_threads - 1 do
          Util.Sched.await "esys.advance.draining" (fun () ->
              not (Atomic.get t.threads.(w).draining))
        done;
        Util.Sched.yield "esys.advance.clock_store";
        Nvm.Region.set_i64 t.region ~off:clock_off (e + 1);
        Nvm.Region.persist t.region ~tid ~off:clock_off ~len:8
      end;
      Util.Sched.yield "esys.advance.clock_persisted";
      Atomic.set t.curr_epoch (e + 1);
      (* epoch e - 1 just retired: the checker audits that every
         persist-buffer range of epochs <= e - 1 reached media *)
      (match t.chk with
      | None -> ()
      | Some c -> Nvm.Pcheck.on_epoch_advance c ~epoch:(e + 1));
      Atomic.incr t.advances)

(* Nonblocking arm (nbMontage, Cai et al. — PAPERS.md): one helped tick
   e → e+1.  Any number of threads may run this concurrently for the
   same [e]; there is no advance lock and no draining handshake:

     quiesce e−1 → publish + fence every ring → retire the published
     records → CAS the persistent clock e → e+1 → persist it → CAS the
     transient clock (the winner reports to the checker and reclaims)

   Safety: every thread that attempts the clock CAS has *itself*
   written back and fenced all records due at this tick first, so
   whichever attempt wins, the media clock never moves past an
   unflushed payload.  Records pushed after a publication snapshot
   belong to epoch ≥ e (quiescence on e−1 already happened) and are due
   only at e+2.  Helping is idempotent by construction: a publication
   re-issues line write-backs of data still in the ring — never a
   payload store — so two helpers racing over the same ring at worst
   flush a line twice.  The one non-idempotent step, scrub + free of
   deferred blocks, is claimed by a single [Atomic.exchange] inside
   [reclaim_ripe] and performed only by the transient-CAS winner, with
   the conservative bound e−1: ripe at the clock value e+1 the winner
   just installed, and still ripe under any later clock if the winner
   is delayed, so helping never double-frees.

   Liveness: no step waits on another thread except the initial
   quiescence on epochs ≤ e−2 (bounded by operation length, and absent
   entirely for a peer parked *between* ops or inside a drain —
   unregistered threads are invisible to the tracker, and their ring
   records are claimable, so the helper flushes them itself).
   Publication is bounded by ring capacity, retirement by the
   published count, and each clock CAS is one attempt with no retry
   loop. *)
let nb_advance_epoch t ~tid ~charged =
  Util.Sched.yield "esys.advance";
  let e = Atomic.get t.curr_epoch in
  Tracker.wait_all t.tracker ~epoch:(e - 1);
  Util.Sched.yield "esys.advance.quiesced";
  (* a helper may have completed this very tick while we quiesced; the
     caller's contract (clock strictly past the epoch it observed)
     already holds, so do not push it an extra tick *)
  if Atomic.get t.curr_epoch = e then begin
    let nw = t.cfg.Config.max_threads in
    let coal =
      if t.cfg.Config.coalesce_writebacks then Some t.threads.(tid).coal else None
    in
    if t.cfg.Config.persist then begin
      (* publication pass: emit every owner's ring without consuming *)
      let stops = Array.make nw 0 in
      let emitted = ref 0 in
      for owner = 0 to nw - 1 do
        let buf = t.threads.(owner).buffer in
        stops.(owner) <-
          (match coal with
          | Some coal ->
              Persist_buffer.publish buf (fun off len ->
                  incr emitted;
                  Wb_coalescer.add coal ~off ~len)
          | None ->
              let wb =
                if charged then Nvm.Region.writeback else Nvm.Region.writeback_uncharged
              in
              Persist_buffer.publish buf (fun off len ->
                  incr emitted;
                  wb t.region ~tid ~off ~len))
      done;
      !test_stall_in_drain ();
      (* one fence covers every owner's published write-backs *)
      (match coal with
      | Some coal ->
          flush_coalesced t ~tid ~charged ~fence:(if charged then `Sync else `Async) coal
      | None ->
          if !emitted > 0 then
            if charged then Nvm.Region.sfence t.region ~tid
            else Nvm.Region.sfence_async t.region ~tid);
      (* fenced: retire each published prefix and update the owner's
         mindicator leaf — records still in a ring (pushed after our
         snapshot) belong to epoch >= e *)
      for owner = 0 to nw - 1 do
        let buf = t.threads.(owner).buffer in
        Persist_buffer.retire_upto buf ~upto:stops.(owner);
        if Persist_buffer.is_empty buf then Mindicator.clear t.mind ~tid:owner
        else Mindicator.retire t.mind ~tid:owner ~epoch:e
      done;
      Util.Sched.yield "esys.advance.clock_store";
      (* helpers race on the persistent clock; exactly one CAS installs
         e+1 and a stale attempt fails harmlessly (the media clock is
         monotone).  The write-back + fence after it is idempotent and
         issued by *every* attempter, so even if the winner stalls
         right after its CAS, any helper's fence makes the new clock
         durable. *)
      ignore (Nvm.Region.cas_i64 t.region ~off:clock_off ~expected:e ~desired:(e + 1));
      Nvm.Region.persist t.region ~tid ~off:clock_off ~len:8
    end;
    Util.Sched.yield "esys.advance.clock_persisted";
    if Atomic.compare_and_set t.curr_epoch e (e + 1) then begin
      (* transient-CAS winner: report the tick and reclaim ripe frees *)
      (match t.chk with
      | None -> ()
      | Some c -> Nvm.Pcheck.on_epoch_advance c ~epoch:(e + 1));
      Atomic.incr t.advances;
      if
        t.cfg.Config.persist
        && t.cfg.Config.reclaim = Config.Background
        && not t.cfg.Config.direct_free
      then begin
        let reclaimed = ref 0 in
        for owner = 0 to nw - 1 do
          reclaimed := !reclaimed + reclaim_ripe ?coal ~charged t ~tid ~owner ~upto:(e - 1)
        done;
        match coal with
        | Some coal ->
            flush_coalesced t ~tid ~charged ~fence:(if charged then `Sync else `Async) coal
        | None ->
            if !reclaimed > 0 then
              if charged then Nvm.Region.sfence t.region ~tid
              else Nvm.Region.sfence_async t.region ~tid
      end
    end
  end

let advance_epoch_charged t ~tid ~charged =
  if t.cfg.Config.nb_advance then nb_advance_epoch t ~tid ~charged
  else blocking_advance_epoch t ~tid ~charged

(* Background/default advance: the advancer's device traffic is not
   billed to application time (dedicated-core assumption). *)
let advance_epoch t ~tid = advance_epoch_charged t ~tid ~charged:false

(* Report a DCSS decision to the checker (called by Everify with the
   clock value the decision was computed from). *)
let note_linearize t ~epoch ~clock ~success =
  match t.chk with
  | None -> ()
  | Some c -> Nvm.Pcheck.on_linearize c ~epoch ~clock ~success

(* Force buffered work durable: everything that completed before this
   call survives any later crash.  Mirrors fsync: two epoch advances
   move the persistence frontier past all completed operations.  The
   caller helps with the write-backs and *waits* for them (paper §5.2),
   so sync is fully charged.

   Under [Config.nb_advance] this is wait-free with respect to peers
   that are between operations: each helped tick does a bounded amount
   of the caller's own work (publish every ring, fence, one CAS each on
   the persistent and transient clocks) and never waits on a stalled
   peer's drain — the caller flushes the peer's claimable records
   itself.  If the first tick the caller attempts was already completed
   by a concurrent helper, the clock still ends at least two past the
   epoch of every operation completed before this call, which is the
   durability contract.  The only wait is [Tracker.wait_all] on ops
   still *inside* their begin/end window from two epochs back — a
   quiescence condition no sync can soundly skip. *)
let sync t ~tid =
  advance_epoch_charged t ~tid ~charged:true;
  advance_epoch_charged t ~tid ~charged:true

(* The durable frontier: recovery after a crash in epoch e restores
   exactly the payloads of epochs <= e - 2, so that is what is durable
   right now.  [sync] advances twice precisely to push this frontier
   past every already-completed operation. *)
let persisted_epoch t = Atomic.get t.curr_epoch - 2
[@@montage.allow "R2: read-only observer of the durable frontier"]

(* ---- background advancer ---- *)

let start_background t =
  if t.bg = None && t.cfg.Config.auto_advance then begin
    Atomic.set t.stop_bg false;
    let period_s = float_of_int t.cfg.Config.epoch_length_ns /. 1e9 in
    let tid = advancer_tid t.cfg in
    t.bg <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get t.stop_bg) do
               (Unix.sleepf period_s
               [@montage.allow
                 "R5: pacing sleep on the dedicated background-advancer \
                  domain; it never runs inside an operation or under \
                  Dsched"]);
               if not (Atomic.get t.stop_bg) then advance_epoch t ~tid
             done))
  end
[@@montage.allow
  "R2: lifecycle flags for the background advancer domain, which is \
   started from the control thread and never runs under Dsched"]

let stop_background t =
  match t.bg with
  | None -> ()
  | Some d ->
      Atomic.set t.stop_bg true;
      Domain.join d;
      t.bg <- None
[@@montage.allow
  "R2: lifecycle flag handshake with the background advancer domain; \
   control-thread only, never under Dsched"]

let sync_checker_clock t =
  match t.chk with
  | None -> ()
  | Some c -> Nvm.Pcheck.on_epoch_advance c ~epoch:(Atomic.get t.curr_epoch)
[@@montage.allow
  "R2: checker-clock observer; runs at create/advance boundaries, not \
   inside operation bodies"]

let create ?(config = Config.default) region =
  let t = make_state region config in
  if Nvm.Region.get_i64 region ~off:clock_off = 0 then begin
    Nvm.Region.set_i64 region ~off:clock_off initial_epoch;
    Nvm.Region.persist region ~tid:0 ~off:clock_off ~len:8
  end
  else Atomic.set t.curr_epoch (Nvm.Region.get_i64 region ~off:clock_off);
  sync_checker_clock t;
  start_background t;
  t
[@@montage.allow
  "R2: initialization before the instance is shared with any worker"]

(* ---- recovery ---- *)

(* Rebuild an epoch system from a crashed region and return handles to
   every surviving payload.  A payload survives when it is the newest
   version of its uid with epoch ≤ crash_epoch − 2 and that version is
   not an anti-payload.  Dead blocks are scrubbed and returned to the
   allocator.

   [threads] parallelizes both passes over disjoint superblock slices
   (the paper's §6.4 names recovery scalability as future work; the
   heap partitioning makes both the header scan and the sweep
   embarrassingly parallel, with one sequential uid-table merge
   between them). *)
let recover ?(config = Config.default) ?(threads = 1) region =
  let clock = Nvm.Region.get_i64 region ~off:clock_off in
  let cutoff = clock - 2 in
  let t = make_state region config in
  Atomic.set t.curr_epoch (max clock initial_epoch);
  sync_checker_clock t;
  (* The header scan and sweep below read every block, including ones
     whose lines persisted without a fence (injection); the epoch
     cutoff filters those out, so the reads are sound — tell the
     checker this is a declared recovery scan. *)
  (match t.chk with Some c -> Nvm.Pcheck.set_recovery_scan c true | None -> ());
  Ralloc.rescan t.alloc;
  let threads = max 1 (min threads (Nvm.Region.max_threads region)) in
  (* pass 1: newest qualifying version per uid, per slice *)
  let scan_slice slice =
    let local : (int, Payload_hdr.t * int) Hashtbl.t = Hashtbl.create 4096 in
    let max_uid = ref 0 in
    Ralloc.iter_blocks_slice t.alloc ~slice ~slices:threads (fun ~off ~size ->
        match Payload_hdr.read region ~off ~block_size:size with
        | Some hdr when hdr.epoch <= cutoff ->
            if hdr.uid > !max_uid then max_uid := hdr.uid;
            (match Hashtbl.find_opt local hdr.uid with
            | Some (prev, _) when prev.epoch >= hdr.epoch -> ()
            | _ -> Hashtbl.replace local hdr.uid (hdr, off))
        | Some hdr -> if hdr.uid > !max_uid then max_uid := hdr.uid
        | None -> ());
    (local, !max_uid)
  in
  let partials =
    if threads = 1 then [| scan_slice 0 |]
    else Array.init threads (fun s -> Domain.spawn (fun () -> scan_slice s)) |> Array.map Domain.join
  in
  (* sequential merge of the per-slice winners *)
  let best : (int, Payload_hdr.t * int) Hashtbl.t = Hashtbl.create 4096 in
  let max_uid = ref 0 in
  Array.iter
    (fun (local, local_max) ->
      if local_max > !max_uid then max_uid := local_max;
      Hashtbl.iter
        (fun uid entry ->
          match Hashtbl.find_opt best uid with
          | Some (prev, _) when prev.Payload_hdr.epoch >= (fst entry).Payload_hdr.epoch -> ()
          | _ -> Hashtbl.replace best uid entry)
        local)
    partials;
  Atomic.set t.uid_counter (!max_uid + 1);
  (* pass 2: sweep; losers and anti-payloads are scrubbed and freed *)
  let live_off off =
    match Payload_hdr.read region ~off ~block_size:(Ralloc.block_size t.alloc off) with
    | Some hdr -> (
        match Hashtbl.find_opt best hdr.uid with
        | Some (winner, woff) -> woff = off && winner.ptype <> Payload_hdr.Delete
        | None -> false)
    | None -> false
  in
  let sweep_slice slice =
    Ralloc.sweep_slice t.alloc ~slice ~slices:threads ~live:(fun off ->
        let live = live_off off in
        if not live then begin
          Payload_hdr.scrub region ~off;
          Nvm.Region.writeback region ~tid:slice ~off ~len:8
        end;
        live);
    Nvm.Region.sfence region ~tid:slice
  in
  if threads = 1 then sweep_slice 0
  else Array.init threads (fun s -> Domain.spawn (fun () -> sweep_slice s)) |> Array.iter Domain.join;
  (match t.chk with Some c -> Nvm.Pcheck.set_recovery_scan c false | None -> ());
  (* hand surviving payloads back as first-class handles *)
  let survivors = ref [] in
  Hashtbl.iter
    (fun uid (hdr, off) ->
      if hdr.Payload_hdr.ptype <> Payload_hdr.Delete then
        (* recovered handles start cold: no pre-crash mirror can survive
           into the new run — the first decode repopulates from media *)
        survivors :=
          { off; uid; epoch = hdr.epoch; size = hdr.size; live = true; mirror = None; memo = No_memo; mref = false; mslot = -1; mgen = 0 }
          :: !survivors)
    best;
  let payloads = Array.of_list !survivors in
  start_background t;
  (t, payloads)
[@@montage.allow
  "R2: recovery initializes the clock and uid counter before the \
   instance is shared; the parallel sweep domains are joined before \
   return"]

(* Split recovered payloads into [k] slices for parallel rebuilding, as
   the paper's recovery API offers (§5.1). *)
let slices payloads ~k =
  let n = Array.length payloads in
  let k = max 1 (min k n) in
  Array.init k (fun i ->
      let lo = i * n / k and hi = (i + 1) * n / k in
      Array.sub payloads lo (hi - lo))
