(** Typed payload wrapper — the OCaml analog of the paper's
    GENERATE_FIELD macro.

    A structure describes its payload content once (encode/decode) and
    gets type-safe [pnew]/[get]/[set]/[pdelete] whose handles carry the
    Montage epoch discipline.  [set] may return a {e different} handle
    (a copying update across an epoch boundary); the caller must
    install the returned handle everywhere the old one appeared.

    With [Config.payload_mirror] each instantiation also memoizes the
    decoded value on the handle: a warm [get] returns the cached value
    with no NVM load, no decode, and no allocation.  Use the shared
    pre-applied instances {!Str}/{!Kv}/{!Seq} where possible — each
    application of {!Make} owns a distinct memo constructor, so two
    modules reading the same payloads through separate applications
    miss each other's memos. *)

module type CONTENT = sig
  type t

  val encode : t -> bytes
  val decode : bytes -> t
end

module Make (C : CONTENT) : sig
  type handle = Epoch_sys.pblk

  (** The decoded-value memo this instantiation stores on handles (via
      {!Epoch_sys.memo_store}); exposed for tests. *)
  exception Memo of C.t

  val pnew : Epoch_sys.t -> tid:int -> C.t -> handle
  val get : Epoch_sys.t -> tid:int -> handle -> C.t
  val get_unsafe : Epoch_sys.t -> handle -> C.t
  val set : Epoch_sys.t -> tid:int -> handle -> C.t -> handle
  val pdelete : Epoch_sys.t -> tid:int -> handle -> unit

  (** Decode a payload recovered after a crash: [(handle, content)]. *)
  val of_recovered : Epoch_sys.t -> handle -> handle * C.t
end

(** Raw string contents. *)
module String_content : CONTENT with type t = string

(** [(key, value)] pairs — the shape of sets and mappings. *)
module Kv_content : sig
  include CONTENT with type t = string * string

  (** Decode only the value, skipping key materialization — for read
      paths whose DRAM node already caches the key. *)
  val decode_value : bytes -> string

  (** Decode only the key — the complement used by {!Kv.get} to upgrade
      a value-only memo to the full pair. *)
  val decode_key : bytes -> string
end

(** Sequence-numbered items — the shape of queues and stacks, whose
    abstract state is items {e and} their order (paper §3). *)
module Seq_content : CONTENT with type t = int * string

(** {1 Shared pre-applied instances} *)

module Str : sig
  type handle = Epoch_sys.pblk

  exception Memo of string

  val pnew : Epoch_sys.t -> tid:int -> string -> handle
  val get : Epoch_sys.t -> tid:int -> handle -> string
  val get_unsafe : Epoch_sys.t -> handle -> string
  val set : Epoch_sys.t -> tid:int -> handle -> string -> handle
  val pdelete : Epoch_sys.t -> tid:int -> handle -> unit
  val of_recovered : Epoch_sys.t -> handle -> handle * string
end

module Kv : sig
  type handle = Epoch_sys.pblk

  exception Memo of (string * string)
  exception Memo_value of string

  val pnew : Epoch_sys.t -> tid:int -> string * string -> handle
  val get : Epoch_sys.t -> tid:int -> handle -> string * string
  val get_unsafe : Epoch_sys.t -> handle -> string * string
  val set : Epoch_sys.t -> tid:int -> handle -> string * string -> handle
  val pdelete : Epoch_sys.t -> tid:int -> handle -> unit
  val of_recovered : Epoch_sys.t -> handle -> handle * (string * string)

  (** The value of a [(key, value)] payload without materializing the
      key (value-only memo on warm handles).  The two memo shapes share
      the handle's single slot without thrashing: [get_value] is
      satisfied by either, and {!get} upgrades a value-only memo to the
      full pair in place (key-only re-decode of the warm bytes). *)
  val get_value : Epoch_sys.t -> tid:int -> handle -> string
end

module Seq : sig
  type handle = Epoch_sys.pblk

  exception Memo of (int * string)

  val pnew : Epoch_sys.t -> tid:int -> int * string -> handle
  val get : Epoch_sys.t -> tid:int -> handle -> int * string
  val get_unsafe : Epoch_sys.t -> handle -> int * string
  val set : Epoch_sys.t -> tid:int -> handle -> int * string -> handle
  val pdelete : Epoch_sys.t -> tid:int -> handle -> unit
  val of_recovered : Epoch_sys.t -> handle -> handle * (int * string)
end
