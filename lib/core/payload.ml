(* Typed payload wrapper — the OCaml analog of the paper's
   GENERATE_FIELD macro.  A structure describes its payload content
   once (encode/decode), and gets type-safe [pnew]/[get]/[set]/
   [pdelete] whose handles carry the Montage epoch discipline:

   - [get] performs the old-sees-new check; [get_unsafe] skips it;
   - [set] may return a *different* handle (a copying update across an
     epoch boundary); the caller must install the returned handle
     everywhere the old one appeared (well-formedness constraint 4).

   On top of the byte-level mirror in [Epoch_sys], each instantiation
   memoizes the *decoded* value on the handle (via the [Memo]
   exception, typed per functor application): a warm [get] returns the
   cached value without touching NVM, decoding, or allocating.  The
   memo is written by [pnew]/[set]/[get] and trusted only while the
   mirror bytes it was decoded from are resident — [Epoch_sys] clears
   both on every mutation and eviction.

   Structures should use the pre-applied instances below ([Str], [Kv],
   [Seq]) rather than re-applying [Make]: a handle memoized through one
   instantiation reads as a miss through another (each application gets
   its own [Memo] constructor), which wastes the cache when two modules
   share payloads. *)

module type CONTENT = sig
  type t

  val encode : t -> bytes
  val decode : bytes -> t
end

module Make (C : CONTENT) = struct
  type handle = Epoch_sys.pblk

  exception Memo of C.t

  (* Every [memo_store] names the buffer the value was decoded from
     (or encoded into): the store only sticks if that exact buffer is
     still the handle's resident mirror, so a decode that raced a
     concurrent [pset] can never be published against newer bytes. *)

  let pnew esys ~tid v =
    let b = C.encode v in
    let h = Epoch_sys.pnew esys ~tid b in
    Epoch_sys.memo_store esys h ~src:b (Memo v);
    h

  let get esys ~tid h =
    match Epoch_sys.memo_get esys ~tid h with
    | Memo v -> v
    | _ ->
        let b = Epoch_sys.pget esys ~tid h in
        let v = C.decode b in
        Epoch_sys.memo_store esys h ~src:b (Memo v);
        v

  let get_unsafe esys h =
    match Epoch_sys.memo_get_unsafe esys h with
    | Memo v -> v
    | _ ->
        let b = Epoch_sys.pget_unsafe esys h in
        let v = C.decode b in
        Epoch_sys.memo_store esys h ~src:b (Memo v);
        v

  let set esys ~tid h v =
    let b = C.encode v in
    let h' = Epoch_sys.pset esys ~tid h b in
    Epoch_sys.memo_store esys h' ~src:b (Memo v);
    h'

  let pdelete esys ~tid h = Epoch_sys.pdelete esys ~tid h

  (* Decode a payload recovered after a crash. *)
  let of_recovered esys h = (h, get_unsafe esys h)
end

(* Ready-made codecs for common content shapes. *)

module String_content = struct
  type t = string

  let encode = Bytes.of_string
  let decode = Bytes.to_string
end

(* (key, value) pairs, the shape used by sets and mappings:
   [4-byte key length | key | value]. *)
module Kv_content = struct
  type t = string * string

  let encode (k, v) =
    let klen = String.length k in
    let b = Bytes.create (4 + klen + String.length v) in
    Bytes.set_int32_le b 0 (Int32.of_int klen);
    Bytes.blit_string k 0 b 4 klen;
    Bytes.blit_string v 0 b (4 + klen) (String.length v);
    b

  let decode b =
    let klen = Int32.to_int (Bytes.get_int32_le b 0) in
    ( Bytes.sub_string b 4 klen,
      Bytes.sub_string b (4 + klen) (Bytes.length b - 4 - klen) )

  (* Value-only decode: mapping read paths already cache the key in
     their DRAM nodes, so materializing it again is pure waste. *)
  let decode_value b =
    let klen = Int32.to_int (Bytes.get_int32_le b 0) in
    Bytes.sub_string b (4 + klen) (Bytes.length b - 4 - klen)

  (* Key-only decode, the other half: [Kv.get] uses it to upgrade a
     value-only memo to the full pair without re-decoding the value. *)
  let decode_key b =
    let klen = Int32.to_int (Bytes.get_int32_le b 0) in
    Bytes.sub_string b 4 klen
end

(* Sequence-numbered items, the shape used by queues: a queue's
   abstract state is its items and their order, so each payload is
   labeled with a consecutive integer (paper §3). *)
module Seq_content = struct
  type t = int * string

  let encode (seq, v) =
    let b = Bytes.create (8 + String.length v) in
    Bytes.set_int64_le b 0 (Int64.of_int seq);
    Bytes.blit_string v 0 b 8 (String.length v);
    b

  let decode b =
    ( Int64.to_int (Bytes.get_int64_le b 0),
      Bytes.sub_string b 8 (Bytes.length b - 8) )
end

(* Shared pre-applied instances: one [Memo] constructor per codec for
   the whole program, so every structure reading a given payload shape
   hits the same memo. *)

module Str = Make (String_content)

module Kv = struct
  include Make (Kv_content)

  (* A value-only memo for lookup paths that never need the key (the
     key is already in the structure's DRAM node).  Coexists with the
     full-pair [Memo] in the single slot without ping-ponging: [get]
     over a [Memo_value] {e upgrades} the slot to the pair (decoding
     just the key from the warm mirror bytes and reusing the memoized
     value string), and [get_value] is satisfied by either shape — so
     mixed read paths converge on the pair memo instead of overwriting
     each other. *)
  exception Memo_value of string

  let decode_full esys ~tid h =
    let b = Epoch_sys.pget esys ~tid h in
    let kv = Kv_content.decode b in
    Epoch_sys.memo_store esys h ~src:b (Memo kv);
    kv

  let get esys ~tid h =
    match Epoch_sys.memo_get esys ~tid h with
    | Memo kv -> kv
    | Memo_value _ -> (
        (* Upgrade path.  [memo_src] snapshots (memo, mirror bytes)
           atomically, so the reused value string is combined with the
           exact bytes it was decoded from — never a newer version's —
           and [memo_store ~src] drops the publish if a [pset] lands in
           between. *)
        match Epoch_sys.memo_src esys ~tid h with
        | Memo kv, _ -> kv
        | Memo_value v, Some b ->
            let kv = (Kv_content.decode_key b, v) in
            Epoch_sys.memo_store esys h ~src:b (Memo kv);
            kv
        | _ -> decode_full esys ~tid h)
    | _ -> decode_full esys ~tid h

  let get_value esys ~tid h =
    match Epoch_sys.memo_get esys ~tid h with
    | Memo (_, v) -> v
    | Memo_value v -> v
    | _ ->
        let b = Epoch_sys.pget esys ~tid h in
        let v = Kv_content.decode_value b in
        Epoch_sys.memo_store esys h ~src:b (Memo_value v);
        v
end

module Seq = Make (Seq_content)
