(** The Montage epoch system (paper §3 and §5) — the runtime that makes
    data structures buffered durably linearizable.

    Execution is divided into epochs by a global clock.  Every payload
    is labeled with the epoch in which it was created or last modified;
    all payloads of epoch [e] persist together when the clock ticks
    from [e+1] to [e+2]; after a crash in epoch [e], recovery restores
    exactly the payloads of epochs [<= e-2], applying anti-payload and
    version-supersession rules per uid.

    Thread-id convention: workers pass a [tid] in
    [0, config.max_threads); the background advancer internally uses
    the extra slot [config.max_threads], so the region must be created
    with at least [config.max_threads + 2] thread slots. *)

(** The empty decoded-value memo slot (see {!memo_get}). *)
exception No_memo

(** A transient handle to a persistent payload block.  Handles are
    mutable-by-module only; clients treat them as abstract tokens,
    except that [uid] and [epoch] are exposed for introspection and
    tests.

    The [mirror]/[memo]/[mref]/[mslot] fields belong to the volatile
    payload mirror layer (a DRAM read cache of the content bytes plus a
    memoized decoded value); they are managed entirely by this module
    and {!Payload.Make} and must not be written by clients. *)
type pblk = {
  mutable off : int;
  uid : int;  (** logical identity, stable across versions *)
  mutable epoch : int;
  mutable size : int;  (** content bytes *)
  mutable live : bool;
  mutable mirror : Bytes.t option;  (** DRAM copy of the content bytes; [None] = cold *)
  mutable memo : exn;
      (** decoded-value memo ([No_memo] = empty), valid only while the
          buffer it was decoded from is the resident mirror *)
  mutable mref : bool;  (** clock (second-chance) reference bit *)
  mutable mslot : int;  (** mirror-cache ring index; [-1] = not resident *)
  mutable mgen : int;
      (** mirror generation, bumped on every install/release; gates
          racing cold fills (see [epoch_sys.ml]) *)
}

type t

(** {1 Construction and lifecycle} *)

(** Create an epoch system over a fresh (or idempotently re-opened)
    region.  Spawns the background advancer when
    [config.auto_advance]. *)
val create : ?config:Config.t -> Nvm.Region.t -> t

(** Rebuild from a crashed region.  Returns the new system and handles
    to every surviving payload (newest qualifying version per uid,
    anti-payload groups dropped); dead blocks are scrubbed and returned
    to the allocator.  [threads] parallelizes the header scan and the
    sweep over disjoint heap slices. *)
val recover : ?config:Config.t -> ?threads:int -> Nvm.Region.t -> t * pblk array

(** Split recovered payloads into [k] slices for parallel rebuilding
    (§5.1's k-iterator recovery API). *)
val slices : pblk array -> k:int -> pblk array array

val start_background : t -> unit
val stop_background : t -> unit

(** {1 Introspection} *)

val region : t -> Nvm.Region.t
val allocator : t -> Ralloc.t
val config : t -> Config.t
val current_epoch : t -> int

(** Epoch of the thread's active operation; [0] when idle. *)
val op_epoch : t -> tid:int -> int

(** Number of epoch advances performed so far. *)
val advance_count : t -> int

(** Volatile-payload-mirror effectiveness: [hits] are payload reads
    served from DRAM (byte or memo), [misses] are charged NVM loads
    that populated a mirror, [evictions] counts clock victims,
    [resident_bytes] is the current budget use.  All zero when
    mirroring is off. *)
type mirror_stats = { hits : int; misses : int; evictions : int; resident_bytes : int }

val mirror_stats : t -> mirror_stats

(** The persistency-ordering checker attached per [config.pcheck] (or
    enabled on the region out-of-band); [None] on the fast path. *)
val checker : t -> Nvm.Pcheck.t option

(** Report a DCSS decision to the checker: [clock] is the epoch-clock
    value the decision was computed from.  Called by {!Everify};
    exposed so deliberately-buggy test structures can declare
    linearizations too.  No-op without a checker. *)
val note_linearize : t -> epoch:int -> clock:int -> success:bool -> unit

(** {1 Operations (paper Fig. 1/3)} *)

(** BEGIN_OP: register in the current epoch (retrying across ticks) so
    payload mutations below are labeled consistently. *)
val begin_op : t -> tid:int -> unit

(** END_OP.  Under [drain_on_end_op] also writes back this operation's
    payloads synchronously (Montage (dw)). *)
val end_op : t -> tid:int -> unit

(** RAII-style bracket: [begin_op], run, [end_op] (also on raise). *)
val with_op : t -> tid:int -> (unit -> 'a) -> 'a

(** @raise Errors.Epoch_changed if the clock moved past this
    operation's epoch.  Nonblocking operations call it before their
    linearizing CAS. *)
val check_epoch : t -> tid:int -> unit

(** {1 Payload lifecycle} *)

(** PNEW: allocate and fill a payload labeled with the current
    operation's epoch.  Must be inside [begin_op]/[end_op].

    Ownership handover: with [config.payload_mirror] the content buffer
    is adopted {e by reference} as the new handle's DRAM mirror (shared,
    not copied) and may later be returned verbatim by {!pget}.  Callers
    must pass a freshly allocated buffer (e.g. an encoder result built
    for this call) and never mutate it afterwards — reusing or patching
    the buffer silently corrupts mirror coherence in a way only a
    Pcheck-checked run can surface. *)
val pnew : t -> tid:int -> bytes -> pblk

(** Read a payload's content.  Performs the old-sees-new check when an
    operation is active.  With [config.payload_mirror] a warm handle is
    served from its DRAM mirror — no NVM load is charged and nothing is
    allocated; a cold miss pays the load and populates the mirror.  The
    returned bytes may be the mirror itself: callers must not mutate
    them (every in-tree caller only decodes).
    @raise Errors.Old_see_new when the payload is newer than the
    operation's epoch.
    @raise Errors.Use_after_free on a dead handle. *)
val pget : t -> tid:int -> pblk -> bytes

(** Read without the old-sees-new check (paper's [get_unsafe]); also
    the read path for recovered payloads outside any operation.
    Mirror-served like {!pget}. *)
val pget_unsafe : t -> pblk -> bytes

(** {1 Decoded-value memos (the {!Payload.Make} fast path)}

    Each [Payload.Make] instance declares [exception Memo of C.t] and
    stores decoded values on the handle through these; the [exn] slot
    gives a typed one-shot cache without a type parameter on [pblk]. *)

(** The handle's memo when it can be trusted (mirror resident, memo
    set), else {!No_memo}.  Runs {!pget}'s live/old-sees-new checks and
    coherence assertion. *)
val memo_get : t -> tid:int -> pblk -> exn

(** {!memo_get} without the old-sees-new check. *)
val memo_get_unsafe : t -> pblk -> exn

(** Publish a decoded value on the handle.  [src] is the buffer the
    value was decoded from (a {!pget} result, or the buffer handed to
    {!pnew}/{!pset}); the store is honored only if [src] is physically
    the resident mirror, checked atomically against concurrent
    refresh/eviction — a decode that lost a race to an in-place {!pset}
    is silently dropped rather than published stale against the fresh
    mirror bytes. *)
val memo_store : t -> pblk -> src:bytes -> exn -> unit

(** Atomic [(memo, mirror bytes)] snapshot: the memo together with the
    exact buffer it was decoded from, or [(No_memo, None)].  For
    memo-upgrade paths that combine a memoized fragment with a partial
    re-decode of the same bytes ({!Payload.Kv.get}); pass the returned
    buffer back as {!memo_store}'s [src].  Runs {!memo_get}'s checks;
    takes the cache lock, so probe lock-free first. *)
val memo_src : t -> tid:int -> pblk -> exn * Bytes.t option

(** Replace a payload's content.  In place when the payload belongs to
    the current epoch; otherwise a copying update returns a {e fresh}
    handle with the same uid, and the caller must install it everywhere
    the old handle appeared (well-formedness constraint 4).

    The content buffer is adopted as the (in-place or fresh) handle's
    DRAM mirror exactly as in {!pnew}: freshly allocated, never mutated
    by the caller afterwards. *)
val pset : t -> tid:int -> pblk -> bytes -> pblk

(** PDELETE: logically delete.  Same-epoch ALLOCs die instantly;
    otherwise an anti-payload with the same uid is published and both
    blocks are reclaimed after the two-epoch delay. *)
val pdelete : t -> tid:int -> pblk -> unit

(** {1 Persistence control} *)

(** Advance the epoch clock by one: quiesce epoch [e-1], write back all
    buffered payloads, fence, bump and persist the clock, and reclaim
    ripe deferred frees.  Normally driven by the background domain;
    exposed for tests and manual pacing.

    Two arms, selected by [config.nb_advance]:
    {ul
    {- {e nonblocking} (default, nbMontage): lock-free helping protocol
       — concurrent callers publish every thread's persist-buffer ring
       in place (records stay claimable until fenced, so a peer parked
       mid-drain cannot stall the tick), race one CAS each on the
       persistent and transient clocks, and the transient winner
       reclaims.  A call returns as soon as the clock is past the epoch
       it observed, even if a concurrent helper performed the tick.}
    {- {e blocking} (the original §3.2 schedule): serialized by an
       advance lock; waits for every worker's in-flight drain
       ([draining] handshake) before persisting the clock.}} *)
val advance_epoch : t -> tid:int -> unit

(** Force everything that completed before this call durable (two
    charged epoch advances; the caller helps with the write-backs, as
    in §5.2).  Under [config.nb_advance] the helping protocol makes
    this wait-free with respect to peers between operations or parked
    inside a drain: the caller performs a bounded amount of work
    (publish + fence + two CAS attempts per tick) and never waits on
    another thread's progress, except the unavoidable quiescence wait
    on operations still open two epochs back. *)
val sync : t -> tid:int -> unit

(** Test-only stall injection, called inside every drain path between
    collecting/publishing records and the fence that makes them
    durable.  The wait-freedom suites and the stalled-worker bench park
    a thread here; production code never sets it. *)
val test_stall_in_drain : (unit -> unit) ref

(** Test-only stall injection in the reclamation scrub window: after
    the ripe plain victims' scrubs are issued (volatile) but before
    the fence and the anti-payload scrubs.  The Dsched scrub suite
    parks a reclaimer here and crashes; production code never sets
    it. *)
val test_stall_in_reclaim : (unit -> unit) ref

(** The durable frontier: a crash right now loses nothing from epochs
    [<= persisted_epoch t] (= current epoch - 2).  Transports use this
    to report how far the persisted prefix reaches after a
    shutdown-drain {!sync} — every reply acked before the sync is
    covered by the frontier it leaves behind. *)
val persisted_epoch : t -> int
