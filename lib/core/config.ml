(* Montage configuration knobs.

   These correspond to the design-space axes explored in §5.2 and
   Figures 4–5 of the paper: write-back buffer size, epoch length,
   where reclamation runs, and the reference configurations (DirWB,
   Montage(T), DirFree) used for comparison. *)

type reclaim_policy =
  | Background (* the epoch advancer reclaims (paper's default) *)
  | Workers (* workers reclaim their own garbage at begin_op (+LocalFree) *)

type writeback_policy =
  | Buffered (* per-thread circular buffer, drained at epoch advance *)
  | Direct (* write back + fence immediately on every update (DirWB) *)

type pcheck_policy =
  | Pcheck_off (* fast path: no checker attached *)
  | Pcheck_record (* record violations and lints for inspection *)
  | Pcheck_enforce (* additionally raise Nvm.Pcheck.Violation at the detection point *)

type t = {
  max_threads : int;
  buffer_size : int; (* entries in each per-thread write-back ring *)
  epoch_length_ns : int; (* background advance period *)
  reclaim : reclaim_policy;
  writeback : writeback_policy;
  drain_on_end_op : bool; (* Montage (dw) in Fig. 9: flush at END_OP *)
  direct_free : bool; (* reclaim instantly; breaks persistence (reference) *)
  persist : bool; (* false = Montage (T): payloads in NVM, no persistence *)
  auto_advance : bool; (* spawn the background epoch-advancing domain *)
  pcheck : pcheck_policy; (* persistency-ordering checker (Pcheck) *)
  coalesce_writebacks : bool; (* line-granular dedup of drained ranges *)
  drain_domains : int; (* worker domains for the background parallel drain *)
  payload_mirror : bool; (* DRAM read cache of payload bytes (volatile mirrors) *)
  mirror_max_bytes : int; (* mirror-resident byte budget (clock eviction above it) *)
  nb_advance : bool; (* nonblocking (helping) epoch advance + wait-free sync *)
}

(* MONTAGE_PCHECK=1|record  → record; MONTAGE_PCHECK=strict|enforce →
   enforce; anything else (or unset) → off.  Lets any benchmark or CLI
   run double as a flush-redundancy profile without a rebuild. *)
let pcheck_from_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "MONTAGE_PCHECK") with
  | Some ("1" | "record" | "on") -> Pcheck_record
  | Some ("strict" | "enforce") -> Pcheck_enforce
  | _ -> Pcheck_off

(* MONTAGE_COALESCE=0|off|false|no disables write-back coalescing;
   anything else (or unset) leaves it on.  The CI matrix uses this to
   run the whole suite down the uncoalesced per-record path. *)
let coalesce_from_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "MONTAGE_COALESCE") with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

(* MONTAGE_DRAIN_DOMAINS=<n> caps the domains the background advancer
   may fan a drain out over (clamped to >= 1; 1 = serial drain). *)
let drain_domains_from_env () =
  match Option.bind (Sys.getenv_opt "MONTAGE_DRAIN_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 2

(* MONTAGE_MIRROR=0|off|false|no disables the volatile payload
   mirrors; anything else (or unset) leaves them on.  The CI matrix
   uses this to run the whole suite down the uncached read path. *)
let mirror_from_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "MONTAGE_MIRROR") with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

(* MONTAGE_MIRROR_BYTES=<n> bounds the DRAM resident in mirror bytes
   (0 also disables mirroring; default 64 MB). *)
let mirror_bytes_from_env () =
  match Option.bind (Sys.getenv_opt "MONTAGE_MIRROR_BYTES") int_of_string_opt with
  | Some n when n >= 0 -> n
  | _ -> 1 lsl 26

(* MONTAGE_NB_ADVANCE=0|off|false|no selects the original blocking
   epoch advance (advance lock + per-thread draining handshake);
   anything else (or unset) selects the nonblocking advance, where any
   thread helps complete a lagging peer's buffer publication and the
   clock is published by CAS.  The CI matrix runs both arms. *)
let nb_advance_from_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "MONTAGE_NB_ADVANCE") with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let default =
  {
    max_threads = 16;
    buffer_size = 64;
    epoch_length_ns = 10_000_000 (* 10 ms, the paper's sweet spot *);
    reclaim = Background;
    writeback = Buffered;
    drain_on_end_op = false;
    direct_free = false;
    persist = true;
    auto_advance = true;
    pcheck = pcheck_from_env ();
    coalesce_writebacks = coalesce_from_env ();
    drain_domains = drain_domains_from_env ();
    payload_mirror = mirror_from_env ();
    mirror_max_bytes = mirror_bytes_from_env ();
    nb_advance = nb_advance_from_env ();
  }

(* Montage (T): payloads placed in NVM, all persistence elided. *)
let transient = { default with persist = false; auto_advance = false }

(* Unit-test configuration: manual epoch control, no timing dependence.
   The persistency checker runs in enforce mode so every unit test
   doubles as a crash-consistency proof obligation. *)
let testing = { default with auto_advance = false; pcheck = Pcheck_enforce }
