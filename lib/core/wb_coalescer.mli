(** Line-granular write-back coalescer.

    A drain collects the byte ranges of every persist record it is
    about to flush, then {!flush}es: runs are sorted by first 64 B line
    and overlapping or adjacent runs merged, so each line is written
    back at most once per drain regardless of how many buffered records
    covered it.  Single-owner: a coalescer belongs to the draining
    thread or shard; no internal synchronization. *)

type t

val create : ?initial_capacity:int -> unit -> t
val is_empty : t -> bool

(** Queue the lines covering byte range [off, off+len).  [len <= 0] is
    a no-op. *)
val add : t -> off:int -> len:int -> unit

(** Sort, merge, and [emit] each merged line run exactly once (runs
    separated by a gap are never bridged).  Resets the coalescer and
    returns [(ranges, lines_in, lines_out)]: records added, lines they
    covered before merging, lines emitted. *)
val flush : t -> emit:(first:int -> lines:int -> unit) -> int * int * int
