(** Montage configuration.

    These knobs correspond to the design-space axes explored in §5.2
    and Figures 4–5 of the paper: write-back buffer size, epoch length,
    where reclamation runs, and the reference configurations (DirWB,
    Montage(T), DirFree) used for comparison. *)

(** Who reclaims payloads whose two-epoch delay has elapsed. *)
type reclaim_policy =
  | Background  (** the epoch advancer reclaims (paper's default) *)
  | Workers  (** workers reclaim their own garbage at [begin_op] (+LocalFree) *)

(** When payload write-backs are issued. *)
type writeback_policy =
  | Buffered  (** per-thread circular buffer, drained at epoch advance *)
  | Direct  (** write back + fence immediately on every update (DirWB) *)

(** Whether {!Epoch_sys.create} attaches a persistency-ordering checker
    ({!Nvm.Pcheck}) to the region. *)
type pcheck_policy =
  | Pcheck_off  (** fast path: no checker attached *)
  | Pcheck_record  (** record violations and lints for inspection *)
  | Pcheck_enforce  (** additionally raise [Nvm.Pcheck.Violation] at the detection point *)

type t = {
  max_threads : int;  (** worker thread-id space is [0, max_threads) *)
  buffer_size : int;  (** entries in each per-thread write-back ring *)
  epoch_length_ns : int;  (** background advance period *)
  reclaim : reclaim_policy;
  writeback : writeback_policy;
  drain_on_end_op : bool;  (** Montage (dw) in Fig. 9: flush at END_OP *)
  direct_free : bool;  (** reclaim instantly; breaks persistence (reference) *)
  persist : bool;  (** [false] = Montage (T): payloads in NVM, no persistence *)
  auto_advance : bool;  (** spawn the background epoch-advancing domain *)
  pcheck : pcheck_policy;  (** persistency-ordering checker (Pcheck) *)
  coalesce_writebacks : bool;
      (** drain buffered persist records through a line-granular dedup
          layer: sorted-merge overlapping 64 B line runs, issue batched
          write-backs, one trailing fence per drain *)
  drain_domains : int;
      (** max worker domains the background advancer fans an epoch
          drain out over (1 = serial); bounded at run time by the
          region's spare thread slots *)
  payload_mirror : bool;
      (** keep a DRAM-side mirror of each live payload's content bytes
          (and a decoded-value memo via {!Payload.Make}), so warm
          [pget]s never touch NVM; refreshed by [pset], dropped by
          [pdelete], cold after recovery *)
  mirror_max_bytes : int;
      (** byte budget for resident mirrors; clock (second-chance)
          eviction keeps the cache under it.  [0] disables mirroring
          like [payload_mirror = false] *)
  nb_advance : bool;
      (** nonblocking epoch advance (nbMontage): buffered records are
          published in place and stay claimable until fenced, any
          thread helps complete a lagging peer's publication, and the
          clock is installed by CAS — no advance lock, no per-thread
          draining handshake, and {!Epoch_sys.sync} never waits on an
          idle or stalled peer.  [false] restores the original blocking
          advance for ablation *)
}

(** The [MONTAGE_PCHECK] environment variable, decoded:
    ["1"]/["record"]/["on"] → [Pcheck_record],
    ["strict"]/["enforce"] → [Pcheck_enforce], otherwise [Pcheck_off]. *)
val pcheck_from_env : unit -> pcheck_policy

(** The [MONTAGE_COALESCE] environment variable, decoded:
    ["0"]/["off"]/["false"]/["no"] → [false], otherwise [true]. *)
val coalesce_from_env : unit -> bool

(** The [MONTAGE_DRAIN_DOMAINS] environment variable: a positive
    integer, defaulting to [2]. *)
val drain_domains_from_env : unit -> int

(** The [MONTAGE_MIRROR] environment variable, decoded:
    ["0"]/["off"]/["false"]/["no"] → [false], otherwise [true]. *)
val mirror_from_env : unit -> bool

(** The [MONTAGE_MIRROR_BYTES] environment variable: a non-negative
    byte budget, defaulting to 64 MB. *)
val mirror_bytes_from_env : unit -> int

(** The [MONTAGE_NB_ADVANCE] environment variable, decoded:
    ["0"]/["off"]/["false"]/["no"] → [false] (blocking advance),
    otherwise [true] (nonblocking advance, the default). *)
val nb_advance_from_env : unit -> bool

(** The paper's recommended configuration: 10 ms epochs, 64-entry
    write-back buffers, background reclamation.  [pcheck],
    [coalesce_writebacks], [drain_domains] and [nb_advance] follow
    their environment variables (see the [_from_env] decoders above). *)
val default : t

(** Montage (T): payloads placed in NVM, all persistence elided. *)
val transient : t

(** Unit-test configuration: no background domain, so tests control the
    epoch clock deterministically via {!Epoch_sys.advance_epoch}; the
    persistency checker runs in enforce mode so every test doubles as a
    crash-consistency proof obligation. *)
val testing : t
