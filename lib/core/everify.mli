(** Epoch-verified atomic cells (paper §3.2–§3.3): the DCSS of Harris
    et al. specialized to the Montage epoch clock.

    Nonblocking Montage structures must linearize in the epoch that
    labeled their payloads.  {!cas_verify} atomically checks the cell's
    value {e and} the epoch clock before installing; {!load_verify}
    reads without writing unless a DCSS is in flight, in which case it
    helps complete it.  The construction is lock-free; GC-managed
    values mean no ABA. *)

type 'a t

(** A cell holding [v]. *)
val make : 'a -> 'a t

(** Read the cell, helping any in-flight DCSS to completion first.
    Performs no store when none is in progress — read-mostly workloads
    induce no cache-line invalidations. *)
val load_verify : Epoch_sys.t -> 'a t -> 'a

(** Non-helping read: the value the cell reverts to if an in-flight
    DCSS fails.  Monitoring only. *)
val peek : 'a t -> 'a

(** Plain CAS with descriptor helping but no epoch verification — for
    auxiliary pointer swings (e.g. the Michael–Scott tail) that are not
    linearization points.  Physical equality on [expect]. *)
val cas : Epoch_sys.t -> 'a t -> expect:'a -> desired:'a -> bool

(** DCSS(clock, cell): succeeds iff the cell physically held [expect]
    {e and} the clock still equals the calling operation's epoch at the
    decision point.  On epoch-mismatch failure the caller should
    restart its operation in the new epoch.
    @raise Invalid_argument outside a [begin_op]/[end_op] bracket. *)
val cas_verify : Epoch_sys.t -> tid:int -> 'a t -> expect:'a -> desired:'a -> bool

(**/**)

(** Test support only: install an undecided descriptor without helping
    it, freezing the cell until some reader helps — lets unit tests
    drive the helping paths deterministically. *)
val install_pending_for_testing : 'a t -> expect:'a -> desired:'a -> epoch:int -> unit
