(* Mindicator (Liu, Luchangco & Spear, ICDCS '13): a concurrent
   min-tracking structure.  Montage uses one to know the oldest epoch
   for which unpersisted payloads might still exist, so [sync] can
   short-circuit when everything is already durable.

   Each thread owns a leaf; [query] folds a tournament tree of the
   leaves.  At our thread counts (≤ 64) the tree is two levels: leaves
   and root recomputed on demand.  The published value is advisory —
   sync verifies by draining — so relaxed update ordering is fine. *)

let infinity_epoch = max_int

type t = { leaves : Util.Padded.counters; n : int }

let create ~max_threads =
  let t = { leaves = Util.Padded.make_counters max_threads; n = max_threads } in
  for tid = 0 to max_threads - 1 do
    Util.Padded.set t.leaves tid infinity_epoch
  done;
  t

(* Thread [tid] may hold unpersisted payloads from [epoch] onward. *)
let announce t ~tid ~epoch =
  Util.Sched.yield "mindicator.announce";
  if Util.Padded.get t.leaves tid > epoch then Util.Padded.set t.leaves tid epoch

(* Thread [tid] has nothing unpersisted before [epoch].  Unlike
   [clear], this keeps the leaf live when the owner may still hold
   unpersisted records of [epoch] itself — the nonblocking advance uses
   it after retiring a publication it fenced, where later records
   (pushed after the publication's snapshot) can still be pending. *)
let retire t ~tid ~epoch =
  Util.Sched.yield "mindicator.retire";
  if Util.Padded.get t.leaves tid < epoch then Util.Padded.set t.leaves tid epoch

let clear t ~tid = Util.Padded.set t.leaves tid infinity_epoch

(* Oldest epoch with possibly-unpersisted payloads. *)
let query t =
  let m = ref infinity_epoch in
  for tid = 0 to t.n - 1 do
    let v = Util.Padded.get t.leaves tid in
    if v < !m then m := v
  done;
  !m
