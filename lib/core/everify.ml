(* Epoch-verified atomic cells (paper §3.2 and §3.3).

   Nonblocking Montage structures must linearize in the epoch that
   labeled their payloads.  [cas_verify] is the DCSS of Harris et al.
   specialized to the epoch clock: it atomically (a) checks the cell
   holds [expect], (b) checks the clock still equals the caller's
   operation epoch, and (c) installs [desired].  [load_verify] reads a
   cell without writing — unless a DCSS is in flight, in which case it
   helps complete it — so read-mostly workloads induce no cache-line
   invalidations.

   The descriptor state machine: a cell holding [Desc d] is frozen
   until d's outcome is decided (by comparing the clock against
   d.epoch) and the cell is released to either the desired or the
   original value.  Any thread may decide and release, so the
   construction is lock-free.  CAS compares *block identity*: helping
   must always CAS from the physically installed state block, never a
   reconstructed one. *)

type 'a state = Value of 'a | Desc of 'a descriptor

and 'a descriptor = {
  expect : 'a;
  desired : 'a;
  epoch : int; (* the installing operation's epoch *)
  outcome : int Atomic.t; (* 0 = undecided, 1 = success, 2 = failure *)
}

type 'a t = { cell : 'a state Atomic.t }

let make v = { cell = Atomic.make (Value v) }

let decide esys d =
  (* scheduling point between descriptor installation and the clock
     read that decides it: the window where an epoch tick flips the
     verdict *)
  Util.Sched.yield "everify.decide";
  let clock = Epoch_sys.current_epoch esys in
  let verdict = if clock = d.epoch then 1 else 2 in
  if Atomic.compare_and_set d.outcome 0 verdict then
    (* report the deciding observation to the persistency checker: a
       success verdict against clock <> epoch is a DCSS invariant break *)
    Epoch_sys.note_linearize esys ~epoch:d.epoch ~clock ~success:(verdict = 1)

(* Complete an in-flight DCSS.  [state] is the physically installed
   [Desc d] block previously read from the cell. *)
let help esys t state d =
  decide esys d;
  let final = if Atomic.get d.outcome = 1 then Value d.desired else Value d.expect in
  ignore (Atomic.compare_and_set t.cell state final)
[@@montage.allow
  "R2: help opens with decide, which yields at everify.decide; after \
   the verdict is fixed the completing CAS commutes (all helpers \
   install the same final value)"]

(* Read the cell, helping any in-flight DCSS first. *)
let load_verify esys t =
  Util.Sched.yield "everify.load";
  let rec read () =
    match Atomic.get t.cell with
    | Value v -> v
    | Desc d as state ->
        help esys t state d;
        read ()
  in
  read ()

(* Plain read that never helps: returns the value the cell will revert
   to if the in-flight DCSS fails.  For monitoring only. *)
let peek t = match Atomic.get t.cell with Value v -> v | Desc d -> d.expect
[@@montage.allow
  "R2: monitoring-only read that never helps and is never a \
   linearization point"]

(* Plain CAS with descriptor helping but no epoch verification — for
   auxiliary pointer swings (e.g. the Michael-Scott tail) that are not
   linearization points. *)
let rec cas esys t ~expect ~desired =
  Util.Sched.yield "everify.cas";
  match Atomic.get t.cell with
  | Desc d as state ->
      help esys t state d;
      cas esys t ~expect ~desired
  | Value v when v != expect -> false
  | Value _ as seen -> Atomic.compare_and_set t.cell seen (Value desired) || cas esys t ~expect ~desired

(* DCSS(clock, cell): succeeds iff the cell held [expect] and the epoch
   clock still equals the calling operation's epoch at the decision
   point.  On epoch-mismatch failure the caller should restart its
   operation in the new epoch ([Errors.Epoch_changed] discipline). *)
let rec cas_verify esys ~tid t ~expect ~desired =
  let epoch = Epoch_sys.op_epoch esys ~tid in
  if epoch = 0 then invalid_arg "Everify.cas_verify outside an operation";
  match Atomic.get t.cell with
  | Desc d as state ->
      help esys t state d;
      cas_verify esys ~tid t ~expect ~desired
  (* Physical equality, like hardware CAS on a pointer/word.  Montage
     structures store immutable nodes or small ints here, where it is
     the right notion; GC reclamation means no ABA. *)
  | Value v when v != expect -> false
  | Value _ as seen ->
      let d = { expect; desired; epoch; outcome = Atomic.make 0 } in
      let installed = Desc d in
      (* scheduling point between reading [seen] and installing over
         it: a competing CAS landing here makes this install fail *)
      Util.Sched.yield "everify.install";
      if Atomic.compare_and_set t.cell seen installed then begin
        help esys t installed d;
        Atomic.get d.outcome = 1
      end
      else cas_verify esys ~tid t ~expect ~desired

(* Test support: install an undecided descriptor without helping it, so
   unit tests can exercise the helping paths ([peek], [cas],
   [load_verify] with a descriptor in flight) deterministically.  Never
   use outside tests: it freezes the cell until somebody helps. *)
let install_pending_for_testing t ~expect ~desired ~epoch =
  Atomic.set t.cell (Desc { expect; desired; epoch; outcome = Atomic.make 0 })
[@@montage.allow
  "R2: test-only fixture that seeds a pending descriptor from a \
   single thread before the helping paths under test run"]
