(* Operation tracker (paper §5, Fig. 3).

   One padded atomic slot per thread holds the epoch of that thread's
   active operation, or 0 when idle.  The epoch advancer uses
   [wait_all] to wait until no operation is still active in epochs
   ≤ e — the paper's quiescence condition for the *previous* epoch
   (operations in e and e−1 may overlap; e−2 must be quiet). *)

type t = { slots : Util.Padded.counters; n : int }

let create ~max_threads = { slots = Util.Padded.make_counters max_threads; n = max_threads }

let register t ~tid ~epoch = Util.Padded.set t.slots tid epoch
let unregister t ~tid = Util.Padded.set t.slots tid 0
let active_epoch t ~tid = Util.Padded.get t.slots tid

(* Block until no operation is active in any epoch ≤ [epoch].  A
   stalled thread can delay this arbitrarily — the paper accepts that
   the persistence frontier is blockable even though data-structure
   operations remain nonblocking. *)
let wait_all t ~epoch =
  for tid = 0 to t.n - 1 do
    Util.Sched.await "tracker.wait_all" (fun () ->
        let e = Util.Padded.get t.slots tid in
        not (e <> 0 && e <= epoch))
  done

(* True when some operation is currently registered in epoch ≤ [epoch]
   (non-blocking probe, used by tests and the sync fast path). *)
let any_active_le t ~epoch =
  let rec scan tid =
    if tid >= t.n then false
    else
      let e = Util.Padded.get t.slots tid in
      if e <> 0 && e <= epoch then true else scan (tid + 1)
  in
  scan 0
