(* Line-granular write-back coalescer.

   A drain collects the byte ranges of every persist record it is about
   to flush into one of these, then [flush]es: entries are sorted by
   first line and overlapping or adjacent runs are merged, so each 64 B
   line is written back at most once per drain no matter how many
   buffered records covered it.  Montage's buffered ranges overlap
   whenever a payload was rewritten in place within an epoch (a
   same-epoch pset, or a dequeue scrubbing the antagonist's create
   record), so the merge is where the duplicate-flush savings come
   from.

   Entries pack (first_line << count_bits | run_lines).  10 bits of run
   length covers 1023 lines = 64 KB per run; persist-buffer records are
   at most 2^14 - 1 bytes = 256 lines, so a single [add] never needs to
   split, but the splitting loop keeps the packing safe for any input.
   Sorting packed ints with the line index in the high bits orders runs
   by first line directly.

   Single-owner discipline: a coalescer belongs to the draining thread
   (or shard); no synchronization inside. *)

type t = {
  mutable entries : int array [@montage.thread_local];
  mutable len : int [@montage.thread_local];
  mutable ranges : int [@montage.thread_local];
      (* [add] calls since the last flush *)
  mutable lines_in : int [@montage.thread_local];
      (* lines covered before merging *)
}

let count_bits = 10
let count_mask = (1 lsl count_bits) - 1
let max_run = count_mask

let create ?(initial_capacity = 256) () =
  { entries = Array.make (max initial_capacity 16) 0; len = 0; ranges = 0; lines_in = 0 }

let is_empty t = t.len = 0

let ensure_room t needed =
  let cap = Array.length t.entries in
  if t.len + needed > cap then begin
    let cap' = ref (cap * 2) in
    while t.len + needed > !cap' do
      cap' := !cap' * 2
    done;
    let entries' = Array.make !cap' 0 in
    Array.blit t.entries 0 entries' 0 t.len;
    t.entries <- entries'
  end

let push_run t ~first ~lines =
  let rec go first remaining =
    if remaining > 0 then begin
      let run = min remaining max_run in
      ensure_room t 1;
      t.entries.(t.len) <- (first lsl count_bits) lor run;
      t.len <- t.len + 1;
      go (first + run) (remaining - run)
    end
  in
  go first lines

(* Queue the lines covering byte range [off, off+len). *)
let add t ~off ~len =
  if len > 0 then begin
    let first = off asr 6 and last = (off + len - 1) asr 6 in
    let lines = last - first + 1 in
    t.ranges <- t.ranges + 1;
    t.lines_in <- t.lines_in + lines;
    push_run t ~first ~lines
  end

(* Sort, merge overlapping/adjacent runs, emit each merged run once.
   Returns (ranges, lines_in, lines_out) for the round and resets the
   coalescer.  Runs separated by a gap are never bridged: [emit] sees
   exactly the union of the added lines. *)
let flush t ~emit =
  let ranges = t.ranges and lines_in = t.lines_in in
  let lines_out = ref 0 in
  if t.len > 0 then begin
    let entries = Array.sub t.entries 0 t.len in
    Array.sort compare entries;
    let cur_first = ref (entries.(0) lsr count_bits) in
    let cur_last = ref (!cur_first + (entries.(0) land count_mask) - 1) in
    let emit_current () =
      let lines = !cur_last - !cur_first + 1 in
      lines_out := !lines_out + lines;
      emit ~first:!cur_first ~lines
    in
    for i = 1 to Array.length entries - 1 do
      let f = entries.(i) lsr count_bits in
      let l = f + (entries.(i) land count_mask) - 1 in
      if f <= !cur_last + 1 then begin
        (* overlapping or adjacent: extend the current run *)
        if l > !cur_last then cur_last := l
      end
      else begin
        emit_current ();
        cur_first := f;
        cur_last := l
      end
    done;
    emit_current ()
  end;
  t.len <- 0;
  t.ranges <- 0;
  t.lines_in <- 0;
  (ranges, lines_in, !lines_out)
