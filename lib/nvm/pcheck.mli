(** Pcheck — a persistency-ordering checker and durability linter for
    the simulated NVM substrate (PMTest-style assertion checking).

    Attach a checker to a region with {!Region.enable_pcheck}; the
    region and the Montage runtime then feed it the per-line event
    lattice (store → writeback → fence → epoch-advance → crash) and it
    enforces correctness rules online and accumulates performance
    lints.  Disabled, the substrate pays one branch per primitive and
    allocates nothing.

    See DESIGN.md "Pcheck" for the event model and the rule catalog. *)

(** {1 Findings} *)

type violation =
  | Read_unfenced_after_crash of { off : int; len : int; line : int }
      (** a post-crash read touched a line whose media content was
          produced by unfenced persistence, outside a declared
          recovery scan *)
  | Store_flush_race of { tid : int; off : int; len : int; line : int }
      (** a line reached its fence with a store newer than its last
          write-back: the queued CLWB may have completed without that
          data.  Detected at drain time; a re-issued write-back before
          the fence restores coverage and is clean, as does
          re-registering the line with a persist buffer
          ({!on_buffer_push}) — that re-opens the flush contract for
          the new content, enforced by {!Epoch_retired_unflushed}. *)
  | Epoch_retired_unflushed of { tid : int; epoch : int; off : int; len : int; clock : int }
      (** a persist-buffer range missed its two-epoch durability
          deadline *)
  | Linearize_epoch_mismatch of { epoch : int; clock : int }
      (** an epoch-verified DCSS decided success against the wrong
          clock *)
  | Mirror_stale of { off : int; len : int; line : int }
      (** a payload read served from a volatile mirror disagreed with
          the store view of the mirrored range: some mutation bypassed
          the mirror refresh (see {!on_mirror_read}) *)
  | Epoch_clock_regression of { from_ : int; to_ : int }
      (** {!on_epoch_advance} reported an epoch lower than one already
          observed in this pre-crash execution — under the nonblocking
          advance only the winning helper may report its tick, and a
          loser publishing a stale epoch would move recovery cutoffs
          backwards.  The watermark resets on crash (recovery may
          legally resume at a lower clock). *)
  | Contract of { what : string; off : int; len : int; line : int }
      (** an {!expect_fenced} assertion failed *)

val violation_to_string : violation -> string

exception Violation of violation

type lint = Clean_writeback | Empty_fence | Duplicate_flush

val lint_name : lint -> string

(** [Record] accumulates violations for later inspection; [Enforce]
    additionally raises {!Violation} at the detection point.  Lints are
    always only recorded. *)
type mode = Record | Enforce

type t

(** Usually called via {!Region.enable_pcheck}.  [log_events] keeps a
    replayable event log (required by {!explore}); [max_log] bounds it. *)
val create :
  ?mode:mode -> ?log_events:bool -> ?max_log:int -> capacity:int -> max_threads:int -> unit -> t

val mode : t -> mode

(** {1 Hooks} — invoked by [Region] and [Montage.Epoch_sys]; not meant
    for application code (tests may drive them directly). *)

val on_store : t -> off:int -> len:int -> work:Bytes.t -> unit
val on_read : t -> off:int -> len:int -> unit
val on_writeback : t -> tid:int -> off:int -> len:int -> unit
val on_drain : t -> tid:int -> unit
val on_fence : t -> tid:int -> pending:int -> unit
val on_crash : t -> injected:int list -> unit
val on_buffer_push : t -> tid:int -> epoch:int -> off:int -> len:int -> unit
val on_epoch_advance : t -> epoch:int -> unit
val on_linearize : t -> epoch:int -> clock:int -> success:bool -> unit

(** A payload read of [\[off, off+len)] was served from a volatile
    mirror holding [data]: assert [data] equals the store view [work]
    over that range (raising/recording {!Mirror_stale} otherwise).
    Mirrors promise the volatile-store view, not media — media may
    legitimately lag inside the buffered-durability window. *)
val on_mirror_read : t -> off:int -> len:int -> data:Bytes.t -> work:Bytes.t -> unit

(** The runtime's coalescing layer merged [ranges] buffered records
    covering [lines_in] 64 B lines into [lines_out] flushed lines. *)
val on_coalesce : t -> ranges:int -> lines_in:int -> lines_out:int -> unit

(** Cumulative [(ranges, lines_in, lines_out)] reported via
    {!on_coalesce}; the dedup ratio is [lines_in / lines_out]. *)
val coalesce_totals : t -> int * int * int

(** {1 Declared contracts} *)

(** Assert that every line covering [off, off+len) has reached media
    since its last store (not dirty, not write-pending).  Structures
    place these at the points their flush contract requires durability,
    so a violation names the broken contract ([what]). *)
val expect_fenced : t -> what:string -> off:int -> len:int -> unit

(** Recovery code whose design makes reading unfenced-persisted lines
    sound (e.g. Montage's epoch-filtered header scan) brackets the scan
    with [set_recovery_scan true/false] to suppress the
    read-after-crash rule. *)
val set_recovery_scan : t -> bool -> unit

(** {1 Findings access} *)

val violations : t -> violation list
val clear_violations : t -> unit

(** (lint, attributed call site, count), most frequent first. *)
val lint_counts : t -> (lint * string * int) list

val lint_total : t -> int

(** Human-readable digest of violations and per-site lint counts. *)
val summary : t -> string

(** {1 Bounded crash-state enumeration} *)

type explore_report = {
  states : int;  (** media states materialized and checked *)
  failures : int;  (** states on which the predicate returned false *)
  first_failure : string option;
  truncated : bool;  (** log overflowed or the state bound was hit *)
}

(** Replay the event log and assert [predicate] on every
    fence-respecting media state: at each point where durable state
    could change, the fenced prefix plus each subset of
    queued-but-unfenced ranges (every CLWB may independently have
    completed).  [max_states] bounds total predicate calls;
    [max_pending_bits] bounds per-point subset enumeration (beyond it
    only the none/all extremes are checked and the report is marked
    truncated).
    @raise Invalid_argument if the checker was created without
    [~log_events:true]. *)
val explore : ?max_states:int -> ?max_pending_bits:int -> t -> (Bytes.t -> bool) -> explore_report
