(** Simulated byte-addressable persistent memory.

    The region keeps two copies of its contents: [work] — what loads
    and stores observe — and [media] — what survives a crash.  Stores
    mutate work and mark the covered 64 B lines dirty; {!writeback}
    (CLWB analog) queues ranges on the issuing thread's write-pending
    queue; {!sfence} drains that queue into media.  {!crash} discards
    work, so only fenced data survives; injection parameters model
    lines that persisted despite a missing fence or via spontaneous
    eviction, both of which real hardware permits.

    Thread-safety discipline: distinct threads may concurrently access
    disjoint line ranges (the data-structure layer guarantees
    ownership, exactly as on real hardware).  [crash] requires
    quiescence. *)

val line_size : int

type t

(** [create ~capacity ()] — capacity is rounded up to a line multiple.
    [max_threads] sizes the per-thread write-pending queues. *)
val create : ?latency:Latency.t -> ?max_threads:int -> capacity:int -> unit -> t

(** Reconstruct a region from a raw media image (e.g. a crash state
    materialized by {!Pcheck.explore}): both work and media start as
    the image, exactly the post-restart view after that crash. *)
val of_image : ?latency:Latency.t -> ?max_threads:int -> Bytes.t -> t

(** Copy of the current media bytes: the crash state in which no
    unfenced line survived.  Round-trips through {!of_image}, so one
    image can seed any number of independent recoveries. *)
val media_image : t -> Bytes.t

val capacity : t -> int
val latency : t -> Latency.t
val max_threads : t -> int

(** {1 Data access (stores go to work; loads pay read latency)} *)

val write : t -> off:int -> src:bytes -> src_off:int -> len:int -> unit
val write_string : t -> off:int -> string -> unit
val read : t -> off:int -> dst:bytes -> dst_off:int -> len:int -> unit
val read_string : t -> off:int -> len:int -> string

(** Scalar accessors for headers and roots (uncharged: hot metadata). *)

val set_u8 : t -> off:int -> int -> unit
val get_u8 : t -> off:int -> int
val set_i32 : t -> off:int -> int -> unit
val get_i32 : t -> off:int -> int
val set_i64 : t -> off:int -> int -> unit
val get_i64 : t -> off:int -> int

(** Atomic 8-byte compare-and-swap on the store view (the lock-cmpxchg
    analog for a persistent address): when the current value equals
    [expected], stores [desired] — with full store semantics (dirty
    marking, checker notification) — and returns [true]; otherwise
    leaves the cell untouched and returns [false].  Used by the
    nonblocking epoch advance to publish the clock; the caller still
    owns write-back and fence of the line. *)
val cas_i64 : t -> off:int -> expected:int -> desired:int -> bool

(** Transient metadata access: never participates in persistence (no
    dirty marking, no latency).  Allocator free lists use it. *)

val transient_set_i64 : t -> off:int -> int -> unit
val transient_get_i64 : t -> off:int -> int

(** {1 Persistence primitives} *)

(** CLWB analog: queue the lines covering [off, off+len) for
    write-back, charging issue cost. *)
val writeback : t -> tid:int -> off:int -> len:int -> unit

(** Identical semantics, zero charge: work performed by a background
    domain that runs on a dedicated core in the paper's deployment. *)
val writeback_uncharged : t -> tid:int -> off:int -> len:int -> unit

(** Batched line-granular write-back (the coalesced drain path): queue
    [lines] 64 B lines starting at line index [first], charging the
    pipelined per-line batch rate ({!Latency.t.writeback_batch_ns}) —
    back-to-back CLWBs overlap in the store buffer. *)
val writeback_lines : t -> tid:int -> first:int -> lines:int -> unit

val writeback_lines_uncharged : t -> tid:int -> first:int -> lines:int -> unit

(** Record one coalescing round's effectiveness: [ranges] buffered
    records covering [lines_in] lines were merged into [lines_out]
    flushed lines.  Feeds {!stats} and the attached checker. *)
val note_coalesced : t -> tid:int -> ranges:int -> lines_in:int -> lines_out:int -> unit

(** A payload read of [\[off, off+len)] was served from a volatile
    mirror holding [data] instead of touching this region: assert the
    mirror-coherence rule against the attached checker
    ({!Pcheck.on_mirror_read}).  No-op (one branch) without a
    checker. *)
val note_mirror_read : t -> off:int -> len:int -> data:Bytes.t -> unit

(** SFENCE analog: commit this thread's queued ranges to media,
    charging the drain wait. *)
val sfence : t -> tid:int -> unit

(** Commit without the drain charge: a fence whose wait is overlapped
    elsewhere (background advancer, sister hyperthread). *)
val sfence_async : t -> tid:int -> unit

(** [writeback] then [sfence]. *)
val persist : t -> tid:int -> off:int -> len:int -> unit

(** {1 Crash} *)

(** Simulate power failure (requires quiescence): work is reloaded from
    media, queues and dirty state cleared.  With probability
    [persist_unfenced], each queued-but-unfenced line reaches media;
    with probability [evict_dirty], a dirty line persists despite never
    being flushed. *)
val crash : ?persist_unfenced:float -> ?evict_dirty:float -> ?rng:Util.Xoshiro.t -> t -> unit

(** {1 Statistics} *)

(** [writebacks] counts queued lines; [fences] counts fence calls;
    [lines_read] counts 64 B lines whose charged load latency was paid
    (reads served from a volatile mirror never appear here);
    [coalesce_*] aggregate {!note_coalesced} reports (the dedup ratio
    is [coalesce_lines_in / coalesce_lines_out]). *)
type stats = {
  writebacks : int;
  fences : int;
  lines_persisted : int;
  lines_read : int;
  coalesce_ranges : int;
  coalesce_lines_in : int;
  coalesce_lines_out : int;
}

val stats : t -> stats

(** {1 Persistency-ordering checker (Pcheck)} *)

(** Attach a {!Pcheck} checker to this region (idempotent: returns the
    existing checker if one is attached).  Every store, read,
    write-back, fence, drain, and crash is reported to it from then on.
    Without a checker the substrate pays one branch per primitive and
    allocates nothing. *)
val enable_pcheck :
  ?mode:Pcheck.mode -> ?log_events:bool -> ?max_log:int -> t -> Pcheck.t

val checker : t -> Pcheck.t option

(** Assert a flush contract: every line of [off, off+len) has reached
    media since its last store.  No-op when no checker is attached, so
    structures declare their contracts unconditionally. *)
val expect_fenced : t -> what:string -> off:int -> len:int -> unit
