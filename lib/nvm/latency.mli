(** Cost model for the simulated persistent-memory device.

    Costs are realized as calibrated busy-waits on the calling thread
    ({!Util.Spin_wait}), so they consume real time and show up in
    measured throughput.  The paper's performance phenomenon — how much
    write-back, fencing and NVM reading sits on an operation's critical
    path — is charged exactly where the thread would wait. *)

type t = {
  writeback_ns : int;  (** CLWB issue cost *)
  writeback_batch_ns : int;
      (** per-line CLWB issue inside a coalesced batch: back-to-back
          CLWBs pipeline in the store buffer, so the marginal cost is
          below an isolated issue *)
  fence_base_ns : int;  (** SFENCE with pending write-backs *)
  fence_empty_ns : int;  (** SFENCE with nothing pending *)
  fence_per_line_ns : int;  (** drain wait per pending 64 B line *)
  read_per_line_ns : int;  (** NVM load amortized cost per 64 B line *)
}

(** Optane-flavoured defaults; see DESIGN.md "Cost model". *)
val default : t

(** All-zero model for unit tests that only care about semantics. *)
val zero : t

val charge_writeback : t -> unit

(** Issue cost of [lines] pipelined CLWBs in one coalesced batch. *)
val charge_writeback_batch : t -> lines:int -> unit

val charge_fence : t -> lines:int -> unit
val charge_read : t -> lines:int -> unit
