(* Pcheck — a persistency-ordering checker and durability linter for
   the simulated NVM substrate (PMTest-style assertion checking).

   The checker observes the per-line event lattice

       store → writeback → fence/drain → epoch-advance → crash

   through hooks that [Region] and [Montage.Epoch_sys] invoke when a
   checker is attached, and enforces two rule sets online:

   Correctness rules (violations; [Enforce] mode raises):

   - {b read-unfenced-after-crash}: a line whose media content was
     produced by unfenced persistence (a completed-but-unfenced CLWB or
     a spontaneous dirty eviction injected by [Region.crash]) must not
     be read after the crash outside a declared recovery scan.  Montage
     recovery brackets its header scan with {!set_recovery_scan}
     because its epoch filter makes reading such lines sound; any other
     read is a structure silently depending on luck.
   - {b flush/store race}: a line must not reach its fence with a
     store newer than its last write-back — the CLWB may already have
     completed without the new data on real hardware, so the "flushed"
     line is torn at the fence.  A store to a queued line is therefore
     only *provisionally* racy: re-issuing the write-back before the
     fence (as Mnemosyne's word-granular logging does constantly)
     restores coverage and is clean, and so does re-registering the
     line with a persist buffer ({!on_buffer_push}) — the new data's
     flush contract is then open again and enforced by the
     epoch-retired-unflushed rule, which is exactly Montage's buffered
     answer to the same race (a same-epoch in-place rewrite racing the
     background drain's fence is benign: until the epoch retires,
     recovery discards the payload either way).  Only a store that
     reaches the fence with neither a fresh CLWB nor a fresh buffer
     registration is flagged.  The check fires at drain time.
   - {b epoch-retired-unflushed}: a payload range registered with the
     persist buffer in epoch [e] must reach media before the clock
     reaches [e + 2] — the buffered-durability contract of paper §3.
   - {b linearize-epoch-mismatch}: an epoch-verified DCSS must never
     decide success when the clock it observed differs from the
     descriptor's tagged epoch (a tripwire for [Everify] refactors).
   - {b contract}: an {!expect_fenced} assertion placed by a structure
     (the baselines declare their per-operation flush contracts this
     way) found the range dirty or write-pending.

   Performance lints (recorded with per-site counts, never raised):

   - {b clean-writeback}: CLWB of a line with no store since its last
     commit — wasted write-back bandwidth;
   - {b empty-fence}: SFENCE with an empty write-pending queue;
   - {b duplicate-flush}: the same line queued twice within one fence
     interval.

   With [log_events] the checker also keeps a replayable event log;
   {!explore} materializes every fence-respecting media state (bounded
   by [max_states]) and asserts a user recovery predicate on each —
   a small crash-state enumerator for unit tests.

   Concurrency: per-line state follows the same ownership discipline
   as [Region] itself (threads touch disjoint lines; fences are
   per-thread), so it is updated without locks.  Rare shared paths —
   violation/lint recording, range registration, the event log — are
   guarded by a mutex. *)

let line_shift = 6
let line_size = 64

(* ---- violations ---- *)

type violation =
  | Read_unfenced_after_crash of { off : int; len : int; line : int }
  | Store_flush_race of { tid : int; off : int; len : int; line : int }
  | Epoch_retired_unflushed of { tid : int; epoch : int; off : int; len : int; clock : int }
  | Linearize_epoch_mismatch of { epoch : int; clock : int }
  | Mirror_stale of { off : int; len : int; line : int }
  | Epoch_clock_regression of { from_ : int; to_ : int }
  | Contract of { what : string; off : int; len : int; line : int }

let violation_to_string = function
  | Read_unfenced_after_crash { off; len; line } ->
      Printf.sprintf
        "read-unfenced-after-crash: read [%d, %d) touches line %d whose post-crash content was \
         never fenced (persisted by injection)"
        off (off + len) line
  | Store_flush_race { tid; off; len; line } ->
      Printf.sprintf
        "flush/store race: line %d ([%d, %d)) reached tid %d's fence with a store newer than its \
         last write-back — the queued CLWB may have completed without that data"
        line off (off + len) tid
  | Epoch_retired_unflushed { tid; epoch; off; len; clock } ->
      Printf.sprintf
        "epoch-retired-unflushed: payload range [%d, %d) registered by tid %d in epoch %d never \
         reached media before the clock hit %d (must persist by epoch %d)"
        off (off + len) tid epoch clock (epoch + 2)
  | Linearize_epoch_mismatch { epoch; clock } ->
      Printf.sprintf
        "linearize-epoch-mismatch: DCSS decided success for epoch %d while observing clock %d" epoch
        clock
  | Mirror_stale { off; len; line } ->
      Printf.sprintf
        "mirror-stale: volatile mirror of [%d, %d) disagrees with the store view at line %d — a \
         payload mutation bypassed the mirror refresh"
        off (off + len) line
  | Epoch_clock_regression { from_; to_ } ->
      Printf.sprintf
        "epoch-clock-regression: the clock was advanced to %d after the checker observed %d — a \
         racing advance published a stale epoch, so recovery cutoffs could move backwards"
        to_ from_
  | Contract { what; off; len; line } ->
      Printf.sprintf "contract %S: range [%d, %d) expected fenced but line %d is dirty or pending"
        what off (off + len) line

exception Violation of violation

(* ---- lints ---- *)

type lint = Clean_writeback | Empty_fence | Duplicate_flush

let lint_name = function
  | Clean_writeback -> "clean-writeback"
  | Empty_fence -> "empty-fence"
  | Duplicate_flush -> "duplicate-flush"

(* ---- event log ---- *)

type event =
  | Store of { off : int; len : int; data : Bytes.t }
  | Writeback of { tid : int; off : int; len : int }
  | Drain of { tid : int } (* this tid's queued ranges reached media *)
  | Fence of { tid : int }
  | Epoch_advance of { epoch : int }
  | Crash

type mode = Record | Enforce

type t = {
  mode : mode;
  capacity : int;
  line_count : int;
  (* per-line state; ownership discipline as in Region *)
  dirty : Bytes.t; (* stored since last commit *)
  pending_by : int array; (* tid + 1 of the thread whose queue holds the line; 0 = none *)
  stored_after_wb : Bytes.t; (* stored since last writeback while queued: racy unless re-queued *)
  unfenced_media : Bytes.t; (* post-crash: media content came from unfenced persistence *)
  commit_stamp : int array; (* stamp of the last drain that committed this line *)
  stamp : int Atomic.t;
  (* per-thread pending ranges (mirrors the region write-pending queues) *)
  pending : (int * int) list ref array; (* (first_line, lines) *)
  pending_count : int array;
  (* persist-buffer obligations: ranges that must persist before their
     epoch retires by two *)
  mutable obligations : obligation list;
  clock : int Atomic.t;
  recovery_scan : bool Atomic.t;
  (* findings *)
  lock : Mutex.t;
  mutable violations : violation list;
  lints : (lint * string, int ref) Hashtbl.t;
  mutable lint_total : int;
  (* write-back coalescing effectiveness, reported by the runtime's
     dedup layer: persist-buffer records fed in, lines they covered
     before the sorted-range merge, and lines actually flushed *)
  mutable coalesce_ranges : int;
  mutable coalesce_lines_in : int;
  mutable coalesce_lines_out : int;
  (* event log *)
  log_events : bool;
  max_log : int;
  log : event array ref;
  mutable log_len : int;
  mutable log_truncated : bool;
}

and obligation = { ob_tid : int; ob_epoch : int; ob_first : int; ob_lines : int; ob_stamp : int }

let create ?(mode = Record) ?(log_events = false) ?(max_log = 1 lsl 16) ~capacity ~max_threads () =
  let line_count = (capacity + line_size - 1) lsr line_shift in
  {
    mode;
    capacity;
    line_count;
    dirty = Bytes.make line_count '\000';
    pending_by = Array.make line_count 0;
    stored_after_wb = Bytes.make line_count '\000';
    unfenced_media = Bytes.make line_count '\000';
    commit_stamp = Array.make line_count 0;
    stamp = Atomic.make 1;
    pending = Array.init max_threads (fun _ -> ref []);
    pending_count = Array.make max_threads 0;
    obligations = [];
    clock = Atomic.make 0;
    recovery_scan = Atomic.make false;
    lock = Mutex.create ();
    violations = [];
    lints = Hashtbl.create 64;
    lint_total = 0;
    coalesce_ranges = 0;
    coalesce_lines_in = 0;
    coalesce_lines_out = 0;
    log_events;
    max_log;
    log = ref (Array.make (if log_events then 1024 else 0) Crash);
    log_len = 0;
    log_truncated = false;
  }

let mode t = t.mode

(* The checker's own mutex is held only for O(1) bookkeeping appends
   and never across a hook callback or scheduling point; Pcheck runs in
   testing/strict configurations where a short kernel block is
   harmless. *)
[@@@montage.allow
  "R5: checker-internal mutex held for O(1) bookkeeping only, never \
   across user code; Pcheck is a testing facility, not a hot path"]

(* ---- findings plumbing ---- *)

let violate t v =
  Mutex.lock t.lock;
  t.violations <- v :: t.violations;
  Mutex.unlock t.lock;
  if t.mode = Enforce then raise (Violation v)

(* Attribute a lint to the call site that reached the region: the first
   backtrace slot outside the nvm substrate itself.  Requires debug
   info; falls back to "<unknown>". *)
let lint_site () =
  let bt = Printexc.get_callstack 16 in
  match Printexc.backtrace_slots bt with
  | None -> "<unknown>"
  | Some slots ->
      let rec find i =
        if i >= Array.length slots then "<unknown>"
        else
          match Printexc.Slot.location slots.(i) with
          (* skip frames in the substrate itself and in the stdlib
             (stdlib filenames carry no directory component) *)
          | Some { filename; line_number; _ }
            when String.contains filename '/'
                 && not
                      (Filename.check_suffix filename "pcheck.ml"
                      || Filename.check_suffix filename "region.ml") ->
              Printf.sprintf "%s:%d" filename line_number
          | _ -> find (i + 1)
      in
      find 0

let lint t kind =
  let site = lint_site () in
  Mutex.lock t.lock;
  t.lint_total <- t.lint_total + 1;
  (match Hashtbl.find_opt t.lints (kind, site) with
  | Some r -> incr r
  | None -> Hashtbl.add t.lints (kind, site) (ref 1));
  Mutex.unlock t.lock

let record_event t ev =
  if t.log_events then begin
    Mutex.lock t.lock;
    let arr = !(t.log) in
    if t.log_len >= t.max_log then t.log_truncated <- true
    else begin
      if t.log_len >= Array.length arr then begin
        let bigger = Array.make (min t.max_log (2 * Array.length arr)) Crash in
        Array.blit arr 0 bigger 0 t.log_len;
        t.log := bigger
      end;
      !(t.log).(t.log_len) <- ev;
      t.log_len <- t.log_len + 1
    end;
    Mutex.unlock t.lock
  end

let lines_of ~off ~len = (off lsr line_shift, (off + len - 1) lsr line_shift)

(* ---- hooks (called by Region / Epoch_sys) ---- *)

let on_store t ~off ~len ~work =
  if len > 0 then begin
    let first, last = lines_of ~off ~len in
    for line = first to last do
      (* provisionally racy: cleared if the line is written back again
         before the owning queue drains *)
      if t.pending_by.(line) <> 0 then Bytes.unsafe_set t.stored_after_wb line '\001';
      Bytes.unsafe_set t.dirty line '\001';
      Bytes.unsafe_set t.unfenced_media line '\000'
    done;
    if t.log_events then record_event t (Store { off; len; data = Bytes.sub work off len })
  end

let on_read t ~off ~len =
  if len > 0 && not (Atomic.get t.recovery_scan) then begin
    let first, last = lines_of ~off ~len in
    for line = first to last do
      if Bytes.unsafe_get t.unfenced_media line <> '\000' then
        violate t (Read_unfenced_after_crash { off; len; line })
    done
  end

let on_writeback t ~tid ~off ~len =
  if len > 0 then begin
    let first, last = lines_of ~off ~len in
    let clean = ref true and dup = ref false in
    for line = first to last do
      if Bytes.unsafe_get t.dirty line <> '\000' then clean := false;
      if t.pending_by.(line) = tid + 1 then dup := true;
      t.pending_by.(line) <- tid + 1;
      (* the fresh CLWB covers any store since the previous one *)
      Bytes.unsafe_set t.stored_after_wb line '\000'
    done;
    if !clean then lint t Clean_writeback;
    if !dup then lint t Duplicate_flush;
    t.pending.(tid) := (first, last - first + 1) :: !(t.pending.(tid));
    t.pending_count.(tid) <- t.pending_count.(tid) + 1;
    record_event t (Writeback { tid; off; len })
  end

(* The region drained tid's write-pending queue into media (an sfence,
   an async fence, or a queue-overflow stall). *)
let on_drain t ~tid =
  if t.pending_count.(tid) > 0 then begin
    let s = Atomic.fetch_and_add t.stamp 1 + 1 in
    List.iter
      (fun (first, lines) ->
        for line = first to first + lines - 1 do
          if Bytes.unsafe_get t.stored_after_wb line <> '\000' then begin
            Bytes.unsafe_set t.stored_after_wb line '\000';
            violate t
              (Store_flush_race { tid; off = line lsl line_shift; len = line_size; line })
          end;
          if t.pending_by.(line) = tid + 1 then t.pending_by.(line) <- 0;
          Bytes.unsafe_set t.dirty line '\000';
          t.commit_stamp.(line) <- s
        done)
      !(t.pending.(tid));
    t.pending.(tid) := [];
    t.pending_count.(tid) <- 0;
    record_event t (Drain { tid })
  end

let on_fence t ~tid ~pending =
  if pending = 0 then lint t Empty_fence;
  record_event t (Fence { tid })

let on_crash t ~injected =
  Mutex.lock t.lock;
  Bytes.fill t.dirty 0 t.line_count '\000';
  Bytes.fill t.unfenced_media 0 t.line_count '\000';
  Bytes.fill t.stored_after_wb 0 t.line_count '\000';
  Array.fill t.pending_by 0 t.line_count 0;
  Array.iter (fun cell -> cell := []) t.pending;
  Array.fill t.pending_count 0 (Array.length t.pending_count) 0;
  (* outstanding obligations belong to epochs recovery will discard *)
  t.obligations <- [];
  (* clear the monotonicity watermark: a recovery (or a re-used checker
     across [explore] branches) may legally resume at a lower clock *)
  Atomic.set t.clock 0;
  List.iter (fun line -> Bytes.unsafe_set t.unfenced_media line '\001') injected;
  Mutex.unlock t.lock;
  record_event t Crash

(* A payload range was pushed onto a persist buffer: it must reach
   media before its epoch retires by two. *)
let on_buffer_push t ~tid ~epoch ~off ~len =
  if len > 0 then begin
    let first, last = lines_of ~off ~len in
    (* the push re-opens the flush contract for the line's current
       content (checked at retirement), so a CLWB of the older content
       still in flight on some other thread's queue is no longer racy
       — mirrors on_writeback's clearing for the re-CLWB case *)
    for line = first to last do
      Bytes.unsafe_set t.stored_after_wb line '\000'
    done;
    let ob =
      { ob_tid = tid; ob_epoch = epoch; ob_first = first; ob_lines = last - first + 1;
        ob_stamp = Atomic.get t.stamp }
    in
    Mutex.lock t.lock;
    t.obligations <- ob :: t.obligations;
    Mutex.unlock t.lock
  end

let check_obligation t ~clock ob =
  let ok = ref true in
  for line = ob.ob_first to ob.ob_first + ob.ob_lines - 1 do
    if t.commit_stamp.(line) <= ob.ob_stamp then ok := false
  done;
  if not !ok then
    violate t
      (Epoch_retired_unflushed
         {
           tid = ob.ob_tid;
           epoch = ob.ob_epoch;
           off = ob.ob_first lsl line_shift;
           len = ob.ob_lines lsl line_shift;
           clock;
         })

let on_epoch_advance t ~epoch =
  (* The clock must be monotone within one pre-crash execution: under
     the nonblocking advance, helpers race to install e+1, and only the
     winning transient CAS may report the tick — a loser reporting its
     stale epoch would move recovery cutoffs backwards.  (A crash
     resets this watermark: recovery legitimately restarts the clock at
     whatever the media image holds.) *)
  let prev = Atomic.get t.clock in
  if epoch < prev then violate t (Epoch_clock_regression { from_ = prev; to_ = epoch });
  Atomic.set t.clock epoch;
  Mutex.lock t.lock;
  let retired, live = List.partition (fun ob -> ob.ob_epoch <= epoch - 2) t.obligations in
  t.obligations <- live;
  Mutex.unlock t.lock;
  record_event t (Epoch_advance { epoch });
  List.iter (check_obligation t ~clock:epoch) retired

(* The runtime served a payload read from its volatile mirror instead
   of the region: the mirror's bytes must equal the store view ([work])
   of the mirrored range, byte for byte — the coherence rule of the
   mirror layer.  A mismatch means some mutation path (an in-place
   pset, a recycled block, a stray store) changed the payload without
   refreshing or dropping the mirror.

   Compared against [work] rather than media deliberately: mirrors
   promise the *volatile-store* view (media may legitimately lag inside
   the buffered-durability window); crash invalidation is a structural
   property checked separately (mirrors die with the handles). *)
let on_mirror_read t ~off ~len ~data ~work =
  if len > 0 then begin
    let mismatch = ref (-1) in
    let i = ref 0 in
    while !mismatch < 0 && !i < len do
      if Bytes.unsafe_get data !i <> Bytes.unsafe_get work (off + !i) then mismatch := !i;
      incr i
    done;
    if !mismatch >= 0 then violate t (Mirror_stale { off; len; line = (off + !mismatch) lsr line_shift })
  end

(* A DCSS decided [success] for [epoch] having observed [clock]. *)
let on_linearize t ~epoch ~clock ~success =
  if success && clock <> epoch then violate t (Linearize_epoch_mismatch { epoch; clock })

(* The runtime's coalescing layer merged [ranges] buffered records
   covering [lines_in] lines into [lines_out] flushed lines. *)
let on_coalesce t ~ranges ~lines_in ~lines_out =
  Mutex.lock t.lock;
  t.coalesce_ranges <- t.coalesce_ranges + ranges;
  t.coalesce_lines_in <- t.coalesce_lines_in + lines_in;
  t.coalesce_lines_out <- t.coalesce_lines_out + lines_out;
  Mutex.unlock t.lock

let coalesce_totals t =
  Mutex.lock t.lock;
  let r = (t.coalesce_ranges, t.coalesce_lines_in, t.coalesce_lines_out) in
  Mutex.unlock t.lock;
  r

(* ---- declared contracts (PMTest-style isPersist assertion) ---- *)

let expect_fenced t ~what ~off ~len =
  if len > 0 then begin
    let first, last = lines_of ~off ~len in
    let rec scan line =
      if line <= last then
        if Bytes.unsafe_get t.dirty line <> '\000' || t.pending_by.(line) <> 0 then
          violate t (Contract { what; off; len; line })
        else scan (line + 1)
    in
    scan first
  end

let set_recovery_scan t flag = Atomic.set t.recovery_scan flag

(* ---- findings access ---- *)

let violations t =
  Mutex.lock t.lock;
  let v = List.rev t.violations in
  Mutex.unlock t.lock;
  v

let clear_violations t =
  Mutex.lock t.lock;
  t.violations <- [];
  Mutex.unlock t.lock

let lint_counts t =
  Mutex.lock t.lock;
  let out =
    Hashtbl.fold (fun (kind, site) r acc -> (kind, site, !r) :: acc) t.lints []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  Mutex.unlock t.lock;
  out

let lint_total t = t.lint_total

let summary t =
  let buf = Buffer.create 256 in
  let vs = violations t in
  Buffer.add_string buf
    (Printf.sprintf "pcheck: %d violation(s), %d lint event(s)\n" (List.length vs) t.lint_total);
  (let ranges, lines_in, lines_out = coalesce_totals t in
   if ranges > 0 then
     Buffer.add_string buf
       (Printf.sprintf "  coalescing: %d ranges, %d lines -> %d flushed (dedup %.2fx)\n" ranges
          lines_in lines_out
          (if lines_out > 0 then float_of_int lines_in /. float_of_int lines_out else 1.0)));
  List.iter (fun v -> Buffer.add_string buf ("  VIOLATION " ^ violation_to_string v ^ "\n")) vs;
  List.iter
    (fun (kind, site, n) ->
      Buffer.add_string buf (Printf.sprintf "  lint %-16s %6d  at %s\n" (lint_name kind) n site))
    (lint_counts t);
  Buffer.contents buf

(* ---- bounded crash-state enumeration ---- *)

type explore_report = {
  states : int;
  failures : int;
  first_failure : string option;
  truncated : bool;
}

(* Replay the event log; at every point where the media-or-pending
   state changed, materialize each fence-respecting media image: the
   fenced prefix plus every subset of queued-but-unfenced ranges (each
   CLWB may independently have completed), bounded to [max_states]
   predicate calls in total and 2^[max_pending_bits] subsets per point. *)
let explore ?(max_states = 4096) ?(max_pending_bits = 10) t predicate =
  if not t.log_events then invalid_arg "Pcheck.explore: checker created without ~log_events:true";
  let work = Bytes.make t.capacity '\000' in
  let media = Bytes.make t.capacity '\000' in
  let pending : (int * int) list array = Array.make (Array.length t.pending) [] in
  let states = ref 0 and failures = ref 0 and first_failure = ref None and capped = ref false in
  let all_pending () = Array.fold_left (fun acc l -> List.rev_append l acc) [] pending in
  let commit_range m (first, lines) =
    let off = first lsl line_shift in
    Bytes.blit work off m off (lines lsl line_shift)
  in
  let try_state ~at subset =
    if !states >= max_states then capped := true
    else begin
      incr states;
      let m = Bytes.copy media in
      List.iter (commit_range m) subset;
      if not (predicate m) then begin
        incr failures;
        if !first_failure = None then
          first_failure :=
            Some
              (Printf.sprintf "crash after event %d with %d pending range(s) persisted" at
                 (List.length subset))
      end
    end
  in
  let enumerate ~at =
    if !states < max_states then begin
      let ranges = all_pending () in
      let n = List.length ranges in
      if n > max_pending_bits then begin
        capped := true;
        (* extremes only: nothing pending persisted / everything did *)
        try_state ~at [];
        try_state ~at ranges
      end
      else begin
        let arr = Array.of_list ranges in
        for mask = 0 to (1 lsl n) - 1 do
          let subset = ref [] in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
          done;
          try_state ~at !subset
        done
      end
    end
  in
  enumerate ~at:(-1);
  for i = 0 to t.log_len - 1 do
    (match !(t.log).(i) with
    | Store { off; len; data } -> Bytes.blit data 0 work off len
    | Writeback { tid; off; len } ->
        let first, last = lines_of ~off ~len in
        pending.(tid) <- (first, last - first + 1) :: pending.(tid)
    | Drain { tid } ->
        List.iter (commit_range media) (List.rev pending.(tid));
        pending.(tid) <- []
    | Fence _ -> ()
    | Epoch_advance _ -> ()
    | Crash ->
        Bytes.blit media 0 work 0 t.capacity;
        Array.fill pending 0 (Array.length pending) []);
    (match !(t.log).(i) with
    | Store _ | Writeback _ | Drain _ | Crash -> enumerate ~at:i
    | Fence _ | Epoch_advance _ -> ())
  done;
  {
    states = !states;
    failures = !failures;
    first_failure = !first_failure;
    truncated = t.log_truncated || !capped;
  }
