(* Cost model for the simulated persistent-memory device.

   The paper's performance results are driven by how much write-back and
   fencing sits on an operation's critical path, so the simulator
   charges time exactly there:

   - [writeback_ns]: issuing a CLWB (cheap; the store buffer accepts it)
   - [fence_base_ns]: an SFENCE with an empty write-pending queue
   - [fence_per_line_ns]: drain cost per outstanding 64 B line; models
     Optane's per-DIMM write bandwidth (~64 ns per line).  A system that
     flushes and fences on every operation pays base + per-line each
     time, while Montage batches many lines behind a single fence off
     the critical path.

   Costs are realized as calibrated busy-waits (Util.Spin_wait), so they
   consume real time and show up in measured throughput. *)

type t = {
  writeback_ns : int; (* CLWB issue cost *)
  writeback_batch_ns : int; (* per-line CLWB issue inside a coalesced batch *)
  fence_base_ns : int; (* SFENCE with pending write-backs *)
  fence_empty_ns : int; (* SFENCE with nothing pending *)
  fence_per_line_ns : int; (* drain wait per pending 64 B line *)
  read_per_line_ns : int; (* NVM load amortized cost per 64 B line *)
}

(* read_per_line_ns models Optane's ~3x-DRAM read latency amortized
   over cache hits: payload reads pay it, transient-index reads do
   not — the asymmetry that rewards Montage's DRAM lookup structures
   and SOFT's DRAM shadow copies, as in the paper's §6.1. *)
(* writeback_batch_ns models consecutive CLWBs issued back-to-back in a
   coalesced drain: the store buffer pipelines them, so the marginal
   issue cost per line is well below an isolated CLWB (Cohen et al.,
   ASPLOS '19 measure the same effect for in-cache-line log batches). *)
let default =
  {
    writeback_ns = 8;
    writeback_batch_ns = 2;
    fence_base_ns = 100;
    fence_empty_ns = 25;
    fence_per_line_ns = 64;
    read_per_line_ns = 25;
  }

(* A zero-cost model, for unit tests that only care about semantics. *)
let zero =
  {
    writeback_ns = 0;
    writeback_batch_ns = 0;
    fence_base_ns = 0;
    fence_empty_ns = 0;
    fence_per_line_ns = 0;
    read_per_line_ns = 0;
  }

let charge_writeback t = if t.writeback_ns > 0 then Util.Spin_wait.ns t.writeback_ns

let charge_writeback_batch t ~lines =
  if t.writeback_batch_ns > 0 && lines > 0 then Util.Spin_wait.ns (lines * t.writeback_batch_ns)

let charge_read t ~lines = if t.read_per_line_ns > 0 then Util.Spin_wait.ns (lines * t.read_per_line_ns)

let charge_fence t ~lines =
  let cost =
    if lines = 0 then t.fence_empty_ns else t.fence_base_ns + (lines * t.fence_per_line_ns)
  in
  if cost > 0 then Util.Spin_wait.ns cost
