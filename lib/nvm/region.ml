(* Simulated byte-addressable persistent memory.

   The region keeps two copies of its contents:

   - [work]  — what loads and stores observe (the union of CPU caches
               and the device, as running code sees it);
   - [media] — what survives a crash.

   Stores mutate [work] and mark the covered 64 B lines dirty.  A
   [writeback] (CLWB analog) enqueues lines on the *issuing thread's*
   write-pending queue; [sfence] drains that queue into [media].  This
   mirrors x86 semantics, where SFENCE orders only the issuing CPU's
   stores.  [crash] discards [work] (reloading it from [media]) so that
   only fenced data survives; optional injection parameters let tests
   model lines that persisted despite a missing fence (completed CLWBs)
   or spontaneous cache evictions of dirty lines, both of which real
   hardware permits.

   Thread-safety discipline: distinct threads may concurrently access
   *disjoint* line ranges (the data-structure layer guarantees
   ownership, exactly as it must on real hardware).  [crash] and
   [recover_*] require quiescence. *)

let line_size = 64
let line_shift = 6

type t = {
  capacity : int;
  work : Bytes.t;
  media : Bytes.t;
  dirty : Bytes.t; (* one byte per line; 0 = clean *)
  (* per-thread write-pending queues of packed (line_off << 15 | lines)
     ranges: payload flushes are contiguous, so committing a range with
     one blit beats per-line bookkeeping *)
  queues : int array array;
  queue_len : int array;
  queue_lines : int array; (* total pending lines, for fence costing *)
  latency : Latency.t;
  max_threads : int;
  (* statistics, per-thread padded to avoid false sharing *)
  stat_writebacks : Util.Padded.counters;
  stat_fences : Util.Padded.counters;
  stat_lines_persisted : Util.Padded.counters;
  (* write-back coalescing: records fed to the dedup layer, lines they
     covered before merging, lines actually flushed after merging *)
  stat_coalesce_ranges : Util.Padded.counters;
  stat_coalesce_lines_in : Util.Padded.counters;
  stat_coalesce_lines_out : Util.Padded.counters;
  (* lines whose charged load latency was actually paid ([charge_read]
     has no tid, so this is a single shared counter; the add is noise
     next to the 25 ns/line busy-wait it rides on) *)
  stat_lines_read : int Atomic.t;
  (* opt-in persistency-ordering checker; [None] is the fast path (one
     branch per primitive, no allocation).  Written once during test
     setup, before the region is shared with worker domains. *)
  mutable checker : Pcheck.t option
      [@montage.guarded_by "set-up-before-sharing (enable_pcheck precedes domain spawn)"];
  (* serializes [cas_i64]'s read-check-write; see its comment *)
  cas_lock : Mutex.t;
}

let queue_capacity = 4096

let create ?(latency = Latency.default) ?(max_threads = 64) ~capacity () =
  if capacity <= 0 then invalid_arg "Region.create: capacity";
  let capacity = (capacity + line_size - 1) land lnot (line_size - 1) in
  {
    capacity;
    work = Bytes.make capacity '\000';
    media = Bytes.make capacity '\000';
    dirty = Bytes.make (capacity lsr line_shift) '\000';
    queues = Array.init max_threads (fun _ -> Array.make queue_capacity 0);
    queue_len = Array.make max_threads 0;
    queue_lines = Array.make max_threads 0;
    latency;
    max_threads;
    stat_writebacks = Util.Padded.make_counters max_threads;
    stat_fences = Util.Padded.make_counters max_threads;
    stat_lines_persisted = Util.Padded.make_counters max_threads;
    stat_coalesce_ranges = Util.Padded.make_counters max_threads;
    stat_coalesce_lines_in = Util.Padded.make_counters max_threads;
    stat_coalesce_lines_out = Util.Padded.make_counters max_threads;
    stat_lines_read = Atomic.make 0;
    checker = None;
    cas_lock = Mutex.create ();
  }

(* Reconstruct a region from a raw media image (e.g. one of the crash
   states materialized by [Pcheck.explore]): both [work] and [media]
   start as the image — exactly the post-restart view after the crash
   that produced it. *)
let of_image ?(latency = Latency.default) ?(max_threads = 64) image =
  let t = create ~latency ~max_threads ~capacity:(Bytes.length image) () in
  let len = min (Bytes.length image) t.capacity in
  Bytes.blit image 0 t.work 0 len;
  Bytes.blit image 0 t.media 0 len;
  t

(* Snapshot of the current media bytes — the crash state with no
   unfenced survivors.  Feed to [of_image] to restart from this exact
   durable state any number of times (e.g. to compare recoveries at
   different parallelism on one crash image). *)
let media_image t = Bytes.copy t.media

let capacity t = t.capacity
let latency t = t.latency
let max_threads t = t.max_threads

(* ---- checker attachment ---- *)

let checker t = t.checker

let enable_pcheck ?(mode = Pcheck.Record) ?(log_events = false) ?max_log t =
  match t.checker with
  | Some c -> c
  | None ->
      let c =
        Pcheck.create ~mode ~log_events ?max_log ~capacity:t.capacity ~max_threads:t.max_threads ()
      in
      t.checker <- Some c;
      c

(* No-op without a checker, so structures can assert their flush
   contracts unconditionally. *)
let expect_fenced t ~what ~off ~len =
  match t.checker with None -> () | Some c -> Pcheck.expect_fenced c ~what ~off ~len

let check_range t off len =
  if off < 0 || len < 0 || off + len > t.capacity then
    invalid_arg
      (Printf.sprintf "Region: access [%d, %d) outside capacity %d" off (off + len) t.capacity)

let mark_dirty t off len =
  let first = off lsr line_shift and last = (off + len - 1) lsr line_shift in
  for line = first to last do
    Bytes.unsafe_set t.dirty line '\001'
  done

(* ---- data access (stores go to [work]) ---- *)

let note_store t ~off ~len =
  match t.checker with None -> () | Some c -> Pcheck.on_store c ~off ~len ~work:t.work

let note_read t ~off ~len =
  match t.checker with None -> () | Some c -> Pcheck.on_read c ~off ~len

let write t ~off ~src ~src_off ~len =
  check_range t off len;
  Bytes.blit src src_off t.work off len;
  if len > 0 then begin
    mark_dirty t off len;
    note_store t ~off ~len
  end

let write_string t ~off s =
  let len = String.length s in
  check_range t off len;
  Bytes.blit_string s 0 t.work off len;
  if len > 0 then begin
    mark_dirty t off len;
    note_store t ~off ~len
  end

(* Payload reads pay the device's amortized load latency; scalar
   accessors below model hot metadata and stay uncharged. *)
let charge_read t ~off ~len =
  let lines = ((off + len - 1) lsr line_shift) - (off lsr line_shift) + 1 in
  ignore (Atomic.fetch_and_add t.stat_lines_read lines);
  Latency.charge_read t.latency ~lines

let read t ~off ~dst ~dst_off ~len =
  check_range t off len;
  charge_read t ~off ~len;
  note_read t ~off ~len;
  Bytes.blit t.work off dst dst_off len

let read_string t ~off ~len =
  check_range t off len;
  if len > 0 then begin
    charge_read t ~off ~len;
    note_read t ~off ~len
  end;
  Bytes.sub_string t.work off len

let set_u8 t ~off v =
  check_range t off 1;
  Bytes.unsafe_set t.work off (Char.chr (v land 0xFF));
  mark_dirty t off 1;
  note_store t ~off ~len:1

let get_u8 t ~off =
  check_range t off 1;
  note_read t ~off ~len:1;
  Char.code (Bytes.unsafe_get t.work off)

let set_i64 t ~off v =
  check_range t off 8;
  Bytes.set_int64_le t.work off (Int64.of_int v);
  mark_dirty t off 8;
  note_store t ~off ~len:8

let get_i64 t ~off =
  check_range t off 8;
  note_read t ~off ~len:8;
  Int64.to_int (Bytes.get_int64_le t.work off)

(* Atomic 8-byte compare-and-swap on the store view — the lock-cmpxchg
   analog for a persistent address, which the nonblocking epoch advance
   uses to publish the clock (racing helpers install e+1 exactly once;
   a stale attempt fails instead of regressing the clock).  The mutex
   only serializes the read-check-write against other [cas_i64] calls:
   it is O(1), contains no scheduling point, and so behaves as the
   single hardware instruction it models, even under Dsched.  A
   successful swap has store semantics (dirty marking + checker
   [on_store]); the caller still owns write-back and fence. *)
let cas_i64 t ~off ~expected ~desired =
  check_range t off 8;
  Mutex.lock t.cas_lock;
  let cur = Int64.to_int (Bytes.get_int64_le t.work off) in
  let won = cur = expected in
  if won then Bytes.set_int64_le t.work off (Int64.of_int desired);
  Mutex.unlock t.cas_lock;
  if won then begin
    mark_dirty t off 8;
    note_store t ~off ~len:8
  end;
  won
[@@montage.allow
  "R5: models one atomic instruction — the lock is O(1) with no \
   scheduling point or user code inside, like Pcheck's bookkeeping \
   mutex"]

let set_i32 t ~off v =
  check_range t off 4;
  Bytes.set_int32_le t.work off (Int32.of_int v);
  mark_dirty t off 4;
  note_store t ~off ~len:4

let get_i32 t ~off =
  check_range t off 4;
  note_read t ~off ~len:4;
  (* values are sizes/offsets, always < 2^31: zero-extend *)
  Int32.to_int (Bytes.get_int32_le t.work off) land 0xFFFFFFFF

(* Transient metadata access: reads and writes that never participate in
   persistence (no dirty marking).  Allocator free lists thread their
   next pointers through free blocks this way, exactly as Ralloc keeps
   its metadata out of NVM write-back traffic. *)

let transient_set_i64 t ~off v =
  check_range t off 8;
  Bytes.set_int64_le t.work off (Int64.of_int v)

let transient_get_i64 t ~off =
  check_range t off 8;
  Int64.to_int (Bytes.get_int64_le t.work off)

(* ---- persistence primitives ---- *)

(* Entries pack (first_line << 15 | line_count); 15 bits of count covers
   2 MB per entry, and larger ranges are split by [writeback]. *)
let count_bits = 15
let count_mask = (1 lsl count_bits) - 1
let max_entry_lines = count_mask

let commit_entry t entry =
  let first = entry lsr count_bits and lines = entry land count_mask in
  let off = first lsl line_shift in
  Bytes.blit t.work off t.media off (lines lsl line_shift);
  Bytes.fill t.dirty first lines '\000'

let drain_queue t ~tid =
  let q = t.queues.(tid) in
  let n = t.queue_len.(tid) in
  for i = 0 to n - 1 do
    commit_entry t q.(i)
  done;
  let lines = t.queue_lines.(tid) in
  t.queue_len.(tid) <- 0;
  t.queue_lines.(tid) <- 0;
  Util.Padded.add t.stat_lines_persisted tid lines;
  (match t.checker with None -> () | Some c -> Pcheck.on_drain c ~tid);
  lines

let enqueue_range t ~tid ~first ~lines =
  let q = t.queues.(tid) in
  let n = t.queue_len.(tid) in
  if n >= queue_capacity then
    (* queue overflow: hardware would stall the store; drain early *)
    ignore (drain_queue t ~tid);
  let n = t.queue_len.(tid) in
  q.(n) <- (first lsl count_bits) lor lines;
  t.queue_len.(tid) <- n + 1;
  t.queue_lines.(tid) <- t.queue_lines.(tid) + lines

(* Shared core: queue [total] lines from [first] on tid's write-pending
   queue, charging [charge_ns] per line.  Callers pick the per-line
   rate: isolated CLWB issue, pipelined batch issue, or zero. *)
let enqueue_line_run t ~tid ~first ~total ~charge_ns =
  let rec chunks first remaining =
    if remaining > 0 then begin
      let lines = min remaining max_entry_lines in
      enqueue_range t ~tid ~first ~lines;
      chunks (first + lines) (remaining - lines)
    end
  in
  chunks first total;
  (* one batched spin: per-call overhead must not distort small charges *)
  if charge_ns > 0 && total > 0 then Util.Spin_wait.ns (total * charge_ns);
  Util.Padded.add t.stat_writebacks tid total

let enqueue_writeback t ~tid ~off ~len ~charge =
  check_range t off len;
  (match t.checker with None -> () | Some c -> Pcheck.on_writeback c ~tid ~off ~len);
  let first = off lsr line_shift and last = (off + len - 1) lsr line_shift in
  let total = last - first + 1 in
  enqueue_line_run t ~tid ~first ~total
    ~charge_ns:(if charge then t.latency.Latency.writeback_ns else 0)

(* CLWB analog: queue every line covering [off, off+len) for write-back. *)
let writeback t ~tid ~off ~len = if len > 0 then enqueue_writeback t ~tid ~off ~len ~charge:true

(* Uncharged write-back: identical semantics, no latency.  For work
   performed by a background domain that, in the paper's deployment,
   runs on its own core — its device traffic does not consume
   application-thread time.  On this one-core simulator charging it
   would bill the application for bandwidth the paper explicitly moves
   off the critical path. *)
let writeback_uncharged t ~tid ~off ~len =
  if len > 0 then enqueue_writeback t ~tid ~off ~len ~charge:false

(* Batched line-granular write-back (the coalesced drain path): queue
   [lines] 64 B lines starting at line [first], charging the pipelined
   per-line batch rate — consecutive CLWBs issued back to back overlap
   in the store buffer. *)
let writeback_lines t ~tid ~first ~lines =
  if lines > 0 then begin
    let off = first lsl line_shift and len = lines lsl line_shift in
    check_range t off len;
    (match t.checker with None -> () | Some c -> Pcheck.on_writeback c ~tid ~off ~len);
    enqueue_line_run t ~tid ~first ~total:lines ~charge_ns:t.latency.Latency.writeback_batch_ns
  end

let writeback_lines_uncharged t ~tid ~first ~lines =
  if lines > 0 then begin
    let off = first lsl line_shift and len = lines lsl line_shift in
    check_range t off len;
    (match t.checker with None -> () | Some c -> Pcheck.on_writeback c ~tid ~off ~len);
    enqueue_line_run t ~tid ~first ~total:lines ~charge_ns:0
  end

(* Record one coalescing round's effectiveness: [ranges] buffered
   records covering [lines_in] lines were merged into [lines_out]
   flushed lines. *)
let note_coalesced t ~tid ~ranges ~lines_in ~lines_out =
  Util.Padded.add t.stat_coalesce_ranges tid ranges;
  Util.Padded.add t.stat_coalesce_lines_in tid lines_in;
  Util.Padded.add t.stat_coalesce_lines_out tid lines_out;
  match t.checker with
  | None -> ()
  | Some c -> Pcheck.on_coalesce c ~ranges ~lines_in ~lines_out

(* A payload read was served from a volatile mirror holding [data]
   instead of touching this region: hand the coherence assertion to the
   checker (mirror bytes must equal the store view of the range).
   One branch when no checker is attached. *)
let note_mirror_read t ~off ~len ~data =
  match t.checker with
  | None -> ()
  | Some c ->
      check_range t off len;
      Pcheck.on_mirror_read c ~off ~len ~data ~work:t.work

let note_fence t ~tid =
  match t.checker with
  | None -> ()
  | Some c -> Pcheck.on_fence c ~tid ~pending:t.queue_len.(tid)

(* SFENCE analog: commit this thread's queued ranges to media. *)
let sfence t ~tid =
  note_fence t ~tid;
  let lines = drain_queue t ~tid in
  Latency.charge_fence t.latency ~lines;
  Util.Padded.incr t.stat_fences tid

(* Commit the thread's queued ranges without charging the drain latency:
   models a fence whose wait is overlapped on another hardware thread
   (e.g. Pronto-Full's sister-hyperthread write-back).  Semantics are
   identical to [sfence]; only the cost model differs. *)
let sfence_async t ~tid =
  note_fence t ~tid;
  ignore (drain_queue t ~tid);
  Util.Padded.incr t.stat_fences tid

let persist t ~tid ~off ~len =
  writeback t ~tid ~off ~len;
  sfence t ~tid

(* ---- crash and recovery ---- *)

(* Simulate power failure.  Requires quiescence.  With probability
   [persist_unfenced], each queued-but-unfenced line reaches media (its
   CLWB had completed); with probability [evict_dirty], a dirty line is
   spontaneously evicted and persists despite never being flushed. *)
let crash ?(persist_unfenced = 0.0) ?(evict_dirty = 0.0) ?rng t =
  let rng = match rng with Some r -> r | None -> Util.Xoshiro.create 42 in
  (* lines whose media content comes from unfenced persistence, for the
     checker's read-after-crash rule (collected only when attached) *)
  let injected = ref [] in
  let note_injected line = if t.checker <> None then injected := line :: !injected in
  if persist_unfenced > 0.0 then
    for tid = 0 to t.max_threads - 1 do
      let q = t.queues.(tid) in
      for i = 0 to t.queue_len.(tid) - 1 do
        (* each queued line may have completed its write-back *)
        let first = q.(i) lsr count_bits and lines = q.(i) land count_mask in
        for line = first to first + lines - 1 do
          if Util.Xoshiro.float rng < persist_unfenced then begin
            let off = line lsl line_shift in
            Bytes.blit t.work off t.media off line_size;
            note_injected line
          end
        done
      done
    done;
  if evict_dirty > 0.0 then
    for line = 0 to (t.capacity lsr line_shift) - 1 do
      if Bytes.unsafe_get t.dirty line <> '\000' && Util.Xoshiro.float rng < evict_dirty
      then begin
        let off = line lsl line_shift in
        Bytes.blit t.work off t.media off line_size;
        note_injected line
      end
    done;
  (* Power is lost: caches vanish.  The post-restart view is media. *)
  Bytes.blit t.media 0 t.work 0 t.capacity;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  Array.fill t.queue_len 0 t.max_threads 0;
  Array.fill t.queue_lines 0 t.max_threads 0;
  match t.checker with None -> () | Some c -> Pcheck.on_crash c ~injected:!injected

(* ---- statistics ---- *)

type stats = {
  writebacks : int;
  fences : int;
  lines_persisted : int;
  lines_read : int;
  coalesce_ranges : int;
  coalesce_lines_in : int;
  coalesce_lines_out : int;
}

let stats t =
  {
    writebacks = Util.Padded.sum t.stat_writebacks;
    fences = Util.Padded.sum t.stat_fences;
    lines_persisted = Util.Padded.sum t.stat_lines_persisted;
    lines_read = Atomic.get t.stat_lines_read;
    coalesce_ranges = Util.Padded.sum t.stat_coalesce_ranges;
    coalesce_lines_in = Util.Padded.sum t.stat_coalesce_lines_in;
    coalesce_lines_out = Util.Padded.sum t.stat_coalesce_lines_out;
  }
