(** Dsched — a deterministic scheduler and schedule/crash-space
    explorer for the Montage runtime.

    The concurrency-bearing modules mark their interesting points with
    {!Util.Sched.yield}/{!Util.Sched.await}.  In production no hook is
    installed and those are no-ops; here, Dsched installs a hook that
    turns every mark into an effect, runs each logical thread as a
    cooperative fiber on one domain, and decides at every scheduling
    point which fiber runs next — or that the machine loses power right
    there.  A scenario is thus explored over the cross product of
    thread interleavings and crash points, deterministically and
    replayably (see DESIGN.md, "Dsched").

    Three exploration modes:
    - {!Exhaustive}: depth-first over every schedule within a
      context-switch (preemption) bound, optionally branching a crash
      at every scheduling point of every explored prefix;
    - {!Pct}: PCT-style randomized priority schedules with [d] priority
      change points, seeded — a failing run prints its per-run seed,
      and re-running with that seed reproduces it exactly;
    - {!Replay}: follow a recorded (typically shrunk) trace.

    Failing schedules are automatically shrunk to a minimal trace by
    greedy choice deletion with replay validation. *)

(** One scheduling decision: run fiber [i] next, or lose power here. *)
type choice = Run of int | Crash

(** A schedule as executed: the choice taken at each scheduling point. *)
type trace = choice list

(** Compact, stable serialization ("0.0.1.c") for CI logs and replay. *)
val trace_to_string : trace -> string

(** @raise Invalid_argument on malformed input. *)
val trace_of_string : string -> trace

type failure = {
  reason : string;  (** what went wrong (check failed, deadlock, exception) *)
  trace : trace;  (** shrunk to a locally-minimal failing schedule *)
  raw_trace : trace;  (** the originally observed failing schedule *)
  seed : int option;  (** per-run PCT seed, when the mode was {!Pct} *)
}

(** Render a failure with its seed and shrunk trace — the two things
    needed to reproduce it (see README, "Replaying a Dsched failure"). *)
val failure_to_string : failure -> string

type report = {
  schedules : int;  (** completed-run attempts explored *)
  crash_branches : int;  (** crash attempts explored *)
  max_points : int;  (** scheduling points on the longest schedule *)
  failure : failure option;
  truncated : bool;  (** an exploration bound was hit before exhaustion *)
}

(** A scenario under test.  [init] builds a fresh instance per attempt
    (exploration re-executes from scratch for every branch — state must
    be fully reconstructed).  [threads] are the logical threads, run as
    fibers.  [check_crash], when provided, is invoked at injected crash
    points — typically: crash the region, run recovery, validate the
    recovered state — and enables crash branching.  [check_done]
    validates the final state of a completed run.  Both run with the
    scheduler hook uninstalled, so they may freely call instrumented
    code.  Scenario code must be deterministic up to scheduling: no
    wall-clock, no unseeded randomness, no [auto_advance] domains. *)
type 'a scenario = {
  init : unit -> 'a;
  threads : ('a -> unit) array;
  check_crash : ('a -> bool) option;
  check_done : ('a -> bool) option;
}

type mode =
  | Exhaustive of { preemptions : int; max_attempts : int; crashes : bool }
      (** DFS over all schedules with at most [preemptions] involuntary
          context switches; when [crashes] (and [check_crash] is
          provided), additionally branch a crash at every scheduling
          point of every explored prefix.  [max_attempts] bounds total
          attempts (schedules + crash branches); hitting it marks the
          report truncated. *)
  | Pct of { runs : int; seed : int; change_points : int }
      (** [runs] random priority schedules derived from [seed]; each
          run demotes the running fiber at [change_points] random
          points, and (when [check_crash] is provided) crashes at a
          random point on half the runs. *)
  | Replay of trace
      (** Follow [trace]; diverging points (a chosen fiber no longer
          enabled) fall back deterministically, and execution continues
          to completion past the end of the trace. *)

(** Explore the scenario's schedule space.  Stops at the first failure
    (shrinking it before reporting). *)
val explore : mode -> 'a scenario -> report

(** Exploration mode requested by the environment, for the CI legs:
    [MONTAGE_SCHED] = [random]/[pct] (uses [MONTAGE_SCHED_RUNS],
    default 200, and [MONTAGE_SCHED_SEED], default 1),
    [exhaustive] (uses [MONTAGE_SCHED_PREEMPTIONS], default 2), or
    [replay] (uses [MONTAGE_SCHED_TRACE]).  [None] when unset, empty,
    or [off] — callers then use their built-in default mode. *)
val mode_from_env : unit -> mode option
