(** Dlin — durable-linearizability checking against a sequential model.

    Montage's contract is {e buffered} durable linearizability: after a
    crash, the recovered state must be the final state of {e some}
    linearization of a prefix of the pre-crash history, where every
    operation that became durable (its epoch is at or below the
    recovery cutoff) must be included, operations that were still
    buffered may be included or dropped, and at most one in-flight
    operation per thread may take effect with an unconstrained result.

    This module decides that membership question by memoized DFS over
    interleavings of per-thread history prefixes, driven by the same
    sequential [spec] shape the linearizability tests use.  The same
    search with every operation marked durable and no in-flight ops is
    a plain linearizability check for completed runs. *)

type ('st, 'op, 'res) spec = {
  initial : 'st;
  apply : 'st -> 'op -> 'res * 'st;
}

(** One thread's observed history at the cut point, in program order.
    [completed] carries each op, the result the concurrent execution
    returned, and whether the op must have survived the crash
    ([durable] = its observed epoch is at or below the recovery
    cutoff).  [in_flight] is the op the thread was inside, if any. *)
type ('op, 'res) obs = {
  completed : ('op * 'res * bool) list;
  in_flight : 'op option;
}

(** [durably_linearizable spec obs ~accept] holds iff some interleaving
    of per-thread prefixes of [obs] — including every durable op,
    matching every included completed op's model result to its observed
    result, optionally taking in-flight ops with unconstrained results
    — drives the model to a state satisfying [accept] (typically:
    equals the state extracted from the recovered structure).  Model
    states and results are compared structurally, so they should be
    plain data. *)
val durably_linearizable :
  ('st, 'op, 'res) spec -> ('op, 'res) obs array -> accept:('st -> bool) -> bool

(** Plain linearizability of a complete, crash-free run: every op is
    required, results must match, and the final model state must
    satisfy [accept]. *)
val linearizable :
  ('st, 'op, 'res) spec -> ('op * 'res) list array -> accept:('st -> bool) -> bool
