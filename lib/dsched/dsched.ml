(* Dsched engine (see dsched.mli and DESIGN.md, "Dsched").

   Logical threads run as effect-based fibers on one domain.  The hook
   installed into [Util.Sched] turns every yield/await mark in the
   runtime into an effect; the handler parks the fiber's continuation
   and hands control back to the engine loop, which consults the active
   exploration strategy for the next choice.  Every branch re-executes
   the scenario from scratch ([init] builds a fresh instance), so the
   engine itself is stateless across attempts — the classic stateless
   model-checking discipline, which is also what makes traces
   replayable: a schedule is fully described by its choice sequence. *)

type choice = Run of int | Crash
type trace = choice list

let choice_to_string = function Run i -> string_of_int i | Crash -> "c"

let trace_to_string t = String.concat "." (List.map choice_to_string t)

let trace_of_string s =
  if String.trim s = "" then []
  else
    String.split_on_char '.' (String.trim s)
    |> List.map (fun tok ->
           match String.trim tok with
           | "c" | "C" -> Crash
           | tok -> (
               match int_of_string_opt tok with
               | Some i when i >= 0 -> Run i
               | _ -> invalid_arg ("Dsched.trace_of_string: bad token " ^ tok)))

type failure = { reason : string; trace : trace; raw_trace : trace; seed : int option }

let failure_to_string f =
  let seed = match f.seed with None -> "" | Some s -> Printf.sprintf " seed=%d" s in
  Printf.sprintf "%s%s trace=%s (raw %d points)" f.reason seed (trace_to_string f.trace)
    (List.length f.raw_trace)

type report = {
  schedules : int;
  crash_branches : int;
  max_points : int;
  failure : failure option;
  truncated : bool;
}

type 'a scenario = {
  init : unit -> 'a;
  threads : ('a -> unit) array;
  check_crash : ('a -> bool) option;
  check_done : ('a -> bool) option;
}

type mode =
  | Exhaustive of { preemptions : int; max_attempts : int; crashes : bool }
  | Pct of { runs : int; seed : int; change_points : int }
  | Replay of trace

(* ---- fibers ---- *)

type _ Effect.t +=
  | Yield_eff : string -> unit Effect.t
  | Await_eff : (string * (unit -> bool)) -> unit Effect.t

type outcome = Yielded | Exited | Raised of exn

type fiber = { id : int; mutable status : status }

and status =
  | Fresh of (unit -> unit)
  | Suspended of (unit, outcome) Effect.Deep.continuation
  | Waiting of (unit -> bool) * (unit, outcome) Effect.Deep.continuation
  | Finished

let handler fiber =
  let open Effect.Deep in
  {
    retc = (fun () -> Exited);
    exnc = (fun e -> Raised e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Yield_eff _ ->
            Some
              (fun (k : (b, outcome) continuation) ->
                fiber.status <- Suspended k;
                Yielded)
        | Await_eff (_, pred) ->
            Some
              (fun (k : (b, outcome) continuation) ->
                fiber.status <- Waiting (pred, k);
                Yielded)
        | _ -> None);
  }

(* Run the fiber until its next scheduling point; [Some e] when it died
   on an uncaught exception. *)
let run_step f =
  let out =
    match f.status with
    | Fresh body -> Effect.Deep.match_with body () (handler f)
    | Suspended k -> Effect.Deep.continue k ()
    | Waiting (_, k) -> Effect.Deep.continue k ()
    | Finished ->
        Montage.Errors.corrupt
          "dsched: run_step on a finished fiber — the engine's runnable \
           filter should make this unreachable"
  in
  match out with
  | Yielded -> None (* status already parked by the handler *)
  | Exited ->
      f.status <- Finished;
      None
  | Raised e ->
      f.status <- Finished;
      Some e

let runnable f =
  match f.status with
  | Fresh _ | Suspended _ -> true
  | Waiting (pred, _) -> pred ()
  | Finished -> false

let finished f = match f.status with Finished -> true | _ -> false

(* ---- one attempt under a chooser ---- *)

(* The chooser sees the scheduling point index, the fiber that ran
   last, and the ids of the currently runnable fibers (non-empty,
   ascending).  It may return [Crash] only when the engine offered it
   ([can_crash]). *)
type chooser = step:int -> current:int option -> enabled:int list -> can_crash:bool -> choice

type attempt_end =
  | A_pass
  | A_check_failed of string
  | A_deadlock
  | A_exn of int * exn

let hook =
  {
    Util.Sched.yield = (fun tag -> Effect.perform (Yield_eff tag));
    await = (fun tag pred -> if not (pred ()) then Effect.perform (Await_eff (tag, pred)));
  }

let run_attempt scenario (choose : chooser) =
  let st = scenario.init () in
  let fibers =
    Array.mapi (fun i body -> { id = i; status = Fresh (fun () -> body st) }) scenario.threads
  in
  let taken = ref [] in
  let current = ref None in
  let step = ref 0 in
  let can_crash = Option.is_some scenario.check_crash in
  let check name f =
    match f st with
    | true -> A_pass
    | false -> A_check_failed (name ^ " check failed")
    | exception e -> A_check_failed (Printf.sprintf "%s check raised %s" name (Printexc.to_string e))
  in
  let finish r = (r, List.rev !taken) in
  Util.Sched.install hook;
  Fun.protect ~finally:Util.Sched.uninstall (fun () ->
      let rec loop () =
        if Array.for_all finished fibers then begin
          Util.Sched.uninstall ();
          match scenario.check_done with
          | None -> finish A_pass
          | Some f -> finish (check "final-state" f)
        end
        else begin
          let enabled =
            Array.fold_right (fun f acc -> if runnable f then f.id :: acc else acc) fibers []
          in
          if enabled = [] then finish A_deadlock
          else begin
            match choose ~step:!step ~current:!current ~enabled ~can_crash with
            | Crash when can_crash ->
                taken := Crash :: !taken;
                Util.Sched.uninstall ();
                finish (check "crash-recovery" (Option.get scenario.check_crash))
            | Crash -> invalid_arg "Dsched: chooser crashed a scenario without check_crash"
            | Run i ->
                if not (List.mem i enabled) then
                  invalid_arg "Dsched: chooser picked a non-runnable fiber";
                taken := Run i :: !taken;
                current := Some i;
                incr step;
                (match run_step fibers.(i) with
                | Some e -> finish (A_exn (i, e))
                | None -> loop ())
          end
        end
      in
      loop ())

let classify = function
  | A_pass -> None
  | A_check_failed r -> Some r
  | A_deadlock -> Some "deadlock: every live fiber is blocked"
  | A_exn (i, e) -> Some (Printf.sprintf "uncaught exception in fiber %d: %s" i (Printexc.to_string e))

(* ---- replay ---- *)

let fallback ~current ~enabled =
  match current with
  | Some j when List.mem j enabled -> Run j
  | _ -> Run (List.hd enabled)

let replay_chooser tr : chooser =
  let arr = Array.of_list tr in
  fun ~step ~current ~enabled ~can_crash ->
    if step < Array.length arr then
      match arr.(step) with
      | Crash when can_crash -> Crash
      | Run i when List.mem i enabled -> Run i
      | _ -> fallback ~current ~enabled
    else fallback ~current ~enabled

(* ---- shrinking ---- *)

(* Greedy deletion with replay validation: drop one choice at a time,
   keep any candidate that still fails and is no larger (points, then
   context switches).  Replay's divergence fallback makes every
   candidate executable, and we always adopt the trace as executed, so
   the result is a real schedule, not a description of one. *)
let switches tr =
  let rec count prev = function
    | [] -> 0
    | Crash :: rest -> count prev rest
    | Run i :: rest -> (match prev with Some j when j <> i -> 1 | _ -> 0) + count (Some i) rest
  in
  count None tr

let size tr = (List.length tr, switches tr)

let shrink scenario ~budget (reason0, trace0) =
  let attempts = ref 0 in
  let try_replay cand =
    if !attempts >= budget then None
    else begin
      incr attempts;
      let end_, executed = run_attempt scenario (replay_chooser cand) in
      match classify end_ with Some r -> Some (r, executed) | None -> None
    end
  in
  let best = ref (reason0, trace0) in
  let improved = ref true in
  while !improved && !attempts < budget do
    improved := false;
    let _, tr = !best in
    let arr = Array.of_list tr in
    let i = ref 0 in
    while (not !improved) && !i < Array.length arr do
      let cand = List.filteri (fun j _ -> j <> !i) tr in
      (match try_replay cand with
      | Some ((_, executed) as res) when size executed < size tr ->
          best := res;
          improved := true
      | _ -> ());
      incr i
    done
  done;
  !best

(* ---- exhaustive DFS ---- *)

(* A growable stack of decision points; each remembers the ordered
   alternatives computed when the point was first reached and which one
   the current path takes.  Re-execution is deterministic, so replaying
   [taken] prefixes reconstructs the identical state at each point. *)
type dpoint = { alts : choice array; mutable pick : int }

let explore_exhaustive scenario ~preemptions ~max_attempts ~crashes =
  let points : dpoint array ref = ref [||] in
  let len = ref 0 in
  let push p =
    if !len = Array.length !points then begin
      let bigger = Array.make (max 64 (2 * !len)) p in
      Array.blit !points 0 bigger 0 !len;
      points := bigger
    end;
    !points.(!len) <- p;
    incr len
  in
  let schedules = ref 0 and crash_branches = ref 0 and max_points = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  let attempts = ref 0 in
  let continue_dfs = ref true in
  while !continue_dfs do
    (* one attempt following the prefix in [points], extending past it
       with first alternatives *)
    let depth = ref 0 in
    let budget = ref preemptions in
    let chooser ~step:_ ~current ~enabled ~can_crash =
      let d = !depth in
      incr depth;
      let choice =
        if d < !len then !points.(d).alts.(!points.(d).pick)
        else begin
          let runs =
            match current with
            | Some j when List.mem j enabled ->
                if !budget > 0 then Run j :: List.filter_map (fun i -> if i <> j then Some (Run i) else None) enabled
                else [ Run j ]
            | _ -> List.map (fun i -> Run i) enabled
          in
          let alts = if crashes && can_crash then runs @ [ Crash ] else runs in
          push { alts = Array.of_list alts; pick = 0 };
          List.hd alts
        end
      in
      (match (choice, current) with
      | Run i, Some j when i <> j && List.mem j enabled -> decr budget
      | _ -> ());
      choice
    in
    incr attempts;
    let end_, executed = run_attempt scenario chooser in
    if !depth > !max_points then max_points := !depth;
    (match List.rev executed with Crash :: _ -> incr crash_branches | _ -> incr schedules);
    (match classify end_ with
    | Some reason ->
        let reason, tr = shrink scenario ~budget:300 (reason, executed) in
        failure := Some { reason; trace = tr; raw_trace = executed; seed = None };
        continue_dfs := false
    | None ->
        (* backtrack: advance the deepest point with untried alternatives *)
        let rec backtrack () =
          if !len = 0 then false
          else begin
            let p = !points.(!len - 1) in
            if p.pick + 1 < Array.length p.alts then begin
              p.pick <- p.pick + 1;
              true
            end
            else begin
              decr len;
              backtrack ()
            end
          end
        in
        if not (backtrack ()) then continue_dfs := false
        else if !attempts >= max_attempts then begin
          truncated := true;
          continue_dfs := false
        end)
  done;
  {
    schedules = !schedules;
    crash_branches = !crash_branches;
    max_points = !max_points;
    failure = !failure;
    truncated = !truncated;
  }

(* ---- PCT randomized ---- *)

(* Fixed decision horizon: priority change points and the crash point
   are drawn from [0, horizon) so a run's schedule depends only on its
   seed, never on lengths observed in earlier runs — that is what makes
   a printed per-run seed sufficient to reproduce a failure. *)
let pct_horizon = 256

let run_seed ~seed r = if r = 0 then seed else (seed + (r * 0x9E3779B1)) land max_int

let pct_chooser ~seed ~change_points ~can_crash nthreads : chooser =
  let rng = Util.Xoshiro.create seed in
  let prio = Array.init nthreads (fun i -> i) in
  (* Fisher-Yates: prio.(i) = rank of fiber i, higher runs first *)
  for i = nthreads - 1 downto 1 do
    let j = Util.Xoshiro.int rng (i + 1) in
    let t = prio.(i) in
    prio.(i) <- prio.(j);
    prio.(j) <- t
  done;
  let change_at = Array.init change_points (fun _ -> Util.Xoshiro.int rng pct_horizon) in
  let crash_at =
    if can_crash && Util.Xoshiro.bool rng then Some (Util.Xoshiro.int rng pct_horizon) else None
  in
  let floor_prio = ref (-1) in
  fun ~step ~current ~enabled ~can_crash ->
    if can_crash && crash_at = Some step then Crash
    else begin
      if Array.exists (( = ) step) change_at then
        (match current with
        | Some j ->
            prio.(j) <- !floor_prio;
            decr floor_prio
        | None -> ());
      let best =
        List.fold_left
          (fun acc i -> match acc with Some b when prio.(b) >= prio.(i) -> acc | _ -> Some i)
          None enabled
      in
      Run (Option.get best)
    end

let explore_pct scenario ~runs ~seed ~change_points =
  let nthreads = Array.length scenario.threads in
  let schedules = ref 0 and crash_branches = ref 0 and max_points = ref 0 in
  let failure = ref None in
  let r = ref 0 in
  while !failure = None && !r < runs do
    let s = run_seed ~seed !r in
    let chooser =
      pct_chooser ~seed:s ~change_points ~can_crash:(Option.is_some scenario.check_crash) nthreads
    in
    let end_, executed = run_attempt scenario chooser in
    let points = List.length executed in
    if points > !max_points then max_points := points;
    (match List.rev executed with Crash :: _ -> incr crash_branches | _ -> incr schedules);
    (match classify end_ with
    | Some reason ->
        let reason, tr = shrink scenario ~budget:300 (reason, executed) in
        failure := Some { reason; trace = tr; raw_trace = executed; seed = Some s }
    | None -> ());
    incr r
  done;
  {
    schedules = !schedules;
    crash_branches = !crash_branches;
    max_points = !max_points;
    failure = !failure;
    truncated = false;
  }

(* ---- replay mode ---- *)

let explore_replay scenario tr =
  let end_, executed = run_attempt scenario (replay_chooser tr) in
  let points = List.length executed in
  let crashed = match List.rev executed with Crash :: _ -> true | _ -> false in
  let failure =
    match classify end_ with
    | Some reason -> Some { reason; trace = executed; raw_trace = executed; seed = None }
    | None -> None
  in
  {
    schedules = (if crashed then 0 else 1);
    crash_branches = (if crashed then 1 else 0);
    max_points = points;
    failure;
    truncated = false;
  }

let explore mode scenario =
  match mode with
  | Exhaustive { preemptions; max_attempts; crashes } ->
      explore_exhaustive scenario ~preemptions ~max_attempts ~crashes
  | Pct { runs; seed; change_points } -> explore_pct scenario ~runs ~seed ~change_points
  | Replay tr -> explore_replay scenario tr

(* ---- environment ---- *)

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with Some i -> i | None -> default)

let mode_from_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "MONTAGE_SCHED") with
  | None | Some ("" | "off" | "0" | "no") -> None
  | Some ("random" | "pct") ->
      Some
        (Pct
           {
             runs = env_int "MONTAGE_SCHED_RUNS" 200;
             seed = env_int "MONTAGE_SCHED_SEED" 1;
             change_points = env_int "MONTAGE_SCHED_CHANGE_POINTS" 3;
           })
  | Some "exhaustive" ->
      Some
        (Exhaustive
           {
             preemptions = env_int "MONTAGE_SCHED_PREEMPTIONS" 2;
             max_attempts = env_int "MONTAGE_SCHED_MAX_ATTEMPTS" 20_000;
             crashes = true;
           })
  | Some "replay" -> (
      match Sys.getenv_opt "MONTAGE_SCHED_TRACE" with
      | Some t -> Some (Replay (trace_of_string t))
      | None -> None)
  | Some _ -> None
