(* Dlin (see dlin.mli).  Memoized DFS over the product of per-thread
   prefix positions and the model state.  Search nodes are keyed by
   (positions, in-flight flags, state) with structural equality — the
   scripts Dsched drives are a handful of ops per thread, so the state
   space is tiny; memoization only matters because crash checks run on
   every branch of an exhaustive exploration. *)

type ('st, 'op, 'res) spec = {
  initial : 'st;
  apply : 'st -> 'op -> 'res * 'st;
}

type ('op, 'res) obs = {
  completed : ('op * 'res * bool) list;
  in_flight : 'op option;
}

let durably_linearizable spec (obs : ('op, 'res) obs array) ~accept =
  let n = Array.length obs in
  let completed = Array.map (fun o -> Array.of_list o.completed) obs in
  (* shortest prefix admissible for thread i: past its last durable op *)
  let must_len =
    Array.map
      (fun ops ->
        let m = ref 0 in
        Array.iteri (fun j (_, _, durable) -> if durable then m := j + 1) ops;
        !m)
      completed
  in
  let visited = Hashtbl.create 256 in
  let rec go pos taken st =
    let key = (Array.to_list pos, Array.to_list taken, st) in
    if Hashtbl.mem visited key then false
    else begin
      Hashtbl.add visited key ();
      let musts_done = ref true in
      for i = 0 to n - 1 do
        if pos.(i) < must_len.(i) then musts_done := false
      done;
      if !musts_done && accept st then true
      else begin
        let rec try_threads i =
          if i >= n then false
          else
            let advanced =
              if pos.(i) < Array.length completed.(i) then begin
                let op, res, _ = completed.(i).(pos.(i)) in
                let r, st' = spec.apply st op in
                if r = res then begin
                  pos.(i) <- pos.(i) + 1;
                  let ok = go pos taken st' in
                  pos.(i) <- pos.(i) - 1;
                  ok
                end
                else false
              end
              else false
            in
            if advanced then true
            else begin
              let took_inflight =
                if pos.(i) = Array.length completed.(i) && not taken.(i) then
                  match obs.(i).in_flight with
                  | Some op ->
                      let _, st' = spec.apply st op in
                      taken.(i) <- true;
                      let ok = go pos taken st' in
                      taken.(i) <- false;
                      ok
                  | None -> false
                else false
              in
              if took_inflight then true else try_threads (i + 1)
            end
        in
        try_threads 0
      end
    end
  in
  go (Array.make n 0) (Array.make n false) spec.initial

let linearizable spec histories ~accept =
  let obs =
    Array.map
      (fun h -> { completed = List.map (fun (op, res) -> (op, res, true)) h; in_flight = None })
      histories
  in
  durably_linearizable spec obs ~accept
