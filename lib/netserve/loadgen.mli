(** Closed-loop memcached-protocol load generator for {!Netserve}.

    [domains] generator domains each own [conns / domains] blocking
    connections and drive them round-robin: write a [pipeline]-deep
    batch of commands (get with probability [get_frac], else a
    [value_size]-byte set over [keyspace] keys), read every reply,
    record per-command latency into a log-scale histogram.  Closed
    loop — one batch in flight per connection — so latency includes
    the server's batched-flush cycle honestly. *)

type config = {
  host : string;
  port : int;
  conns : int;
  domains : int;
  duration_s : float;
  pipeline : int;
  value_size : int;
  keyspace : int;
  get_frac : float;  (** in [0, 1]; the rest are sets *)
  seed : int;
  key_prefix : string;
}

(** 8 connections over 2 domains, 2 s, pipeline 8, 64-byte values,
    10k keys, 90% gets. *)
val default_config : config

(** The server side of a connection went away mid-run (closed socket,
    reset, short write).  {!run} catches it per generator domain and
    reports it in {!report.disconnects} rather than silently dropping
    the domain's remaining work; {!preload} lets it propagate, since a
    preload cannot meaningfully continue without the connection. *)
exception Connection_lost of string

type report = {
  ops : int;
  errors : int;  (** ERROR/CLIENT_ERROR/SERVER_ERROR replies *)
  hits : int;  (** VALUE blocks returned *)
  seconds : float;
  ops_per_sec : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  disconnects : string list;
      (** one entry per generator domain that lost its connection
          mid-run, with the reason; empty on a clean run *)
}

(** Populate every key in [keyspace] with one pipelined connection, so
    a read-heavy {!run} measures hits rather than misses. *)
val preload : ?config:config -> unit -> unit

(** Run the closed loop for [duration_s] and merge the per-domain
    histograms into one report. *)
val run : ?config:config -> unit -> report

(** Render through {!Benchlib.Report.table}. *)
val print_report : label:string -> report -> unit
