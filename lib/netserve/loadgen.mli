(** Memcached-protocol load generator for {!Netserve}: closed-loop and
    open-loop.

    Closed loop ({!run}): [domains] generator domains each own
    [conns / domains] blocking connections and drive them round-robin:
    write a [pipeline]-deep batch of commands (get with probability
    [get_frac], else a [value_size]-byte set over [keyspace] keys),
    read every reply, record per-command latency into a log-scale
    histogram.  One batch in flight per connection — latency includes
    the server's batched-flush cycle honestly, but offered load
    collapses when the server slows, hiding overload.

    Open loop ({!run_open}): commands arrive on a fixed schedule
    ([rate] ops/s, {!Poisson} or {!Uniform} interarrivals) regardless
    of server speed, over nonblocking connections driven by a
    {!Poller}.  Latency is charged from the {e scheduled} arrival
    time, so server-imposed queueing delay lands in the tail — the
    coordinated-omission fix a closed loop cannot provide.

    Both modes frame replies with {!Kvstore.Protocol.Client} — the same
    reply-unit decoder the cluster router uses on its upstream
    connections — and can spread connections over several [endpoints]
    (routers or shards) with per-endpoint accounting that separates
    endpoint failures (disconnects, abandons) from [SERVER_ERROR shard
    down] replies relayed by a healthy router. *)

type config = {
  host : string;
  port : int;
  endpoints : (string * int) list;
      (** addresses to spread connections over, round-robin; [[]] means
          [[(host, port)]] *)
  conns : int;
  domains : int;
  duration_s : float;
  pipeline : int;  (** closed loop only: commands per batch *)
  value_size : int;
  keyspace : int;
  get_frac : float;  (** in [0, 1]; the rest are sets *)
  seed : int;
  key_prefix : string;
}

(** 8 connections over 2 domains, 2 s, pipeline 8, 64-byte values,
    10k keys, 90% gets. *)
val default_config : config

(** The server side of a connection went away mid-run (closed socket,
    reset, short write).  {!run} catches it per generator domain and
    reports it in {!report.disconnects} rather than silently dropping
    the domain's remaining work; {!preload} lets it propagate, since a
    preload cannot meaningfully continue without the connection.
    Initial connects are retried with bounded backoff on
    [ECONNREFUSED]/[EAGAIN]/[ETIMEDOUT] before giving up, so a listen
    backlog overflow during a connection ramp does not kill the run. *)
exception Connection_lost of string

(** Per-endpoint accounting, in the order of {!config.endpoints} (or
    the single [(host, port)] when that list is empty). *)
type endpoint_stats = {
  ep_host : string;
  ep_port : int;
  ep_ops : int;  (** completed reply units *)
  ep_errors : int;  (** error replies other than shard-down *)
  ep_shard_down : int;  (** [SERVER_ERROR shard down] replies *)
  ep_abandoned : int;  (** open loop: sent, never answered *)
  ep_disconnects : int;
}

type report = {
  ops : int;
  errors : int;  (** ERROR/CLIENT_ERROR/SERVER_ERROR replies, minus shard-down *)
  shard_down_errors : int;
      (** [SERVER_ERROR shard down] replies — the endpoint answered,
          but the owning shard behind it was down *)
  hits : int;  (** VALUE blocks returned *)
  seconds : float;
  ops_per_sec : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  disconnects : string list;
      (** one entry per generator domain that lost its connection
          mid-run, with the reason; empty on a clean run *)
  by_endpoint : endpoint_stats list;
}

(** Populate every key in [keyspace] with one pipelined connection, so
    a read-heavy {!run} measures hits rather than misses. *)
val preload : ?config:config -> unit -> unit

(** Run the closed loop for [duration_s] and merge the per-domain
    histograms into one report. *)
val run : ?config:config -> unit -> report

(** Render through {!Benchlib.Report.table}. *)
val print_report : label:string -> report -> unit

(** {1 Open loop} *)

(** Interarrival distribution for the open-loop schedule: {!Poisson}
    (exponential interarrivals — bursty, like independent clients) or
    {!Uniform} (evenly spaced). *)
type arrival = Poisson | Uniform

val arrival_name : arrival -> string
val arrival_of_string : string -> arrival option

type open_report = {
  offered_rate : float;
  achieved_rate : float;  (** completions / scheduling window *)
  sent : int;
  completed : int;
  abandoned : int;  (** sent but unanswered when the grace period expired *)
  o_errors : int;
  o_shard_down_errors : int;  (** [SERVER_ERROR shard down] replies *)
  o_hits : int;
  o_seconds : float;  (** wall time including the drain grace period *)
  o_mean_us : float;
  o_p50_us : float;
  o_p95_us : float;
  o_p99_us : float;
  o_disconnects : string list;
  o_by_endpoint : endpoint_stats list;
}

(** Offer [rate] ops/s for [duration_s] on the fixed schedule, then
    wait up to [grace_s] (default 1 s) for stragglers.  Requests still
    unanswered after the grace period count as [abandoned].  Latency
    for every completion is measured from its scheduled arrival time
    (coordinated-omission-aware), so under overload the tail reflects
    queueing delay, not just service time. *)
val run_open :
  ?config:config -> ?arrival:arrival -> ?grace_s:float -> rate:float -> unit -> open_report

(** Render through {!Benchlib.Report.table}. *)
val print_open_report : label:string -> open_report -> unit
