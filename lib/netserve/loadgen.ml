(* Memcached-protocol load generator: closed-loop and open-loop.

   Closed loop ([run]): each of [domains] generator domains owns
   [conns / domains] blocking TCP connections and drives them
   round-robin: write a pipeline of [pipeline] commands (mixed get/set
   per [get_frac]), read all the replies, record the batch round-trip
   once per command into a per-domain log-scale histogram.  A
   connection never has more than one batch in flight, so reported
   latency is honest service time including the server's batched-flush
   cycle — but the offered load collapses whenever the server slows
   down, which hides overload.

   Open loop ([run_open]): commands arrive on a fixed schedule (Poisson
   or uniform interarrivals at [rate] ops/s) regardless of how fast the
   server answers, over nonblocking connections driven by a {!Poller}.
   Latency is measured from the {e scheduled} arrival time, not the
   moment the socket write happened, so queueing delay the server
   imposes on a backed-up connection is charged to the request — the
   standard fix for coordinated omission.  Under overload the inflight
   population grows and the tail explodes, which is exactly the signal
   a closed loop cannot produce.

   Reply framing (both modes): a reply "unit" is one line, except
   [VALUE] headers which are followed by <bytes>+2 of data and are
   terminated (with any other VALUE blocks of the same get) by [END].
   Counting units against commands issued keeps the reader in lockstep
   without parsing every verb's reply shape. *)

type config = {
  host : string;
  port : int;
  conns : int;
  domains : int;
  duration_s : float;
  pipeline : int;
  value_size : int;
  keyspace : int;
  get_frac : float;
  seed : int;
  key_prefix : string;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 11211;
    conns = 8;
    domains = 2;
    duration_s = 2.0;
    pipeline = 8;
    value_size = 64;
    keyspace = 10_000;
    get_frac = 0.9;
    seed = 42;
    key_prefix = "lg";
  }

type report = {
  ops : int;
  errors : int;
  hits : int;
  seconds : float;
  ops_per_sec : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  disconnects : string list;
}

exception Connection_lost of string

(* ---------- wire helpers (blocking sockets) ---------- *)

let write_all fd buf len =
  let off = ref 0 in
  while !off < len do
    let n =
      try Unix.write fd buf !off (len - !off)
      with Unix.Unix_error (e, _, _) ->
        raise (Connection_lost (Unix.error_message e))
    in
    if n = 0 then raise (Connection_lost "short write");
    off := !off + n
  done

(* Buffered reader: enough to split reply lines and skip data blocks.
   The reader is owned by the one generator domain driving its
   connection. *)
type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int [@montage.thread_local];
  mutable len : int [@montage.thread_local];
}

let reader fd = { fd; buf = Bytes.create 65536; pos = 0; len = 0 }

let refill r =
  if r.pos = r.len then begin
    r.pos <- 0;
    r.len <-
      (try Unix.read r.fd r.buf 0 (Bytes.length r.buf)
       with Unix.Unix_error (e, _, _) ->
         raise (Connection_lost (Unix.error_message e)));
    if r.len = 0 then raise (Connection_lost "server closed connection")
  end

(* One CRLF-terminated line, CRLF stripped.  Lines longer than the
   buffer would be a server bug; grow-free because server replies are
   short (VALUE data is skipped separately). *)
let read_line r =
  let acc = Buffer.create 64 in
  let rec go () =
    refill r;
    match Bytes.index_from_opt r.buf r.pos '\n' with
    | Some i when i < r.len ->
        Buffer.add_subbytes acc r.buf r.pos (i - r.pos);
        r.pos <- i + 1;
        let s = Buffer.contents acc in
        let n = String.length s in
        if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
    | _ ->
        Buffer.add_subbytes acc r.buf r.pos (r.len - r.pos);
        r.pos <- r.len;
        go ()
  in
  go ()

let skip r n =
  let left = ref n in
  while !left > 0 do
    refill r;
    let take = min !left (r.len - r.pos) in
    r.pos <- r.pos + take;
    left := !left - take
  done

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_error_line line =
  starts_with "ERROR" line || starts_with "CLIENT_ERROR" line
  || starts_with "SERVER_ERROR" line

(* Read one reply unit; returns (was_error, hits). *)
let read_unit r =
  let rec values hits =
    let line = read_line r in
    if starts_with "VALUE " line then begin
      (* VALUE <key> <flags> <bytes> [cas] *)
      let parts = String.split_on_char ' ' line in
      let bytes = match parts with _ :: _ :: _ :: b :: _ -> int_of_string b | _ -> 0 in
      skip r (bytes + 2);
      values (hits + 1)
    end
    else if line = "END" then (false, hits)
    else (is_error_line line, hits)
  in
  values 0

(* ---------- connecting (shared by both modes) ---------- *)

(* Retry the initial connect with bounded exponential backoff: under a
   C10K ramp the listen backlog overflows transiently, and a run that
   dies on the first ECONNREFUSED measures nothing. *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
  | _ -> ()

let connect ?(retries = 60) cfg =
  ignore_sigpipe ();
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
  let rec go attempt backoff =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    (try Unix.setsockopt fd TCP_NODELAY true with _ -> ());
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK
            | Unix.EINTR | Unix.ETIMEDOUT ),
            _,
            _ )
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (Unix.sleepf backoff
        [@montage.allow
          "R5: bounded connect backoff in client tooling; the server \
           under test is not on this thread"]);
        go (attempt + 1) (Float.min 0.25 (backoff *. 2.0))
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go 0 0.005

(* ---------- closed loop: per-domain generator ---------- *)

type domain_result = {
  d_ops : int;
  d_errors : int;
  d_hits : int;
  d_hist : Util.Histogram.t;
  d_disconnect : string option;
}

let run_domain cfg did stop =
  let nconns = max 1 (cfg.conns / max 1 cfg.domains) in
  let fds = Array.init nconns (fun _ -> connect cfg) in
  let readers = Array.map reader fds in
  let rng = Util.Xoshiro.create (cfg.seed + (did * 7919) + 1) in
  let value = String.make cfg.value_size 'v' in
  let hist = Util.Histogram.create () in
  let out = Buffer.create 4096 in
  let ops = ref 0 and errors = ref 0 and hits = ref 0 in
  let key () = Printf.sprintf "%s%06d" cfg.key_prefix (Util.Xoshiro.int rng cfg.keyspace) in
  let disconnect = ref None in
  (try
     while not (Atomic.get stop) do
       Array.iteri
         (fun i fd ->
           Buffer.clear out;
           for _ = 1 to cfg.pipeline do
             if Util.Xoshiro.float rng < cfg.get_frac then
               Buffer.add_string out (Printf.sprintf "get %s\r\n" (key ()))
             else
               Buffer.add_string out
                 (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" (key ()) cfg.value_size value)
           done;
           let t0 = Poller.mono_s () in
           write_all fd (Buffer.to_bytes out) (Buffer.length out);
           for _ = 1 to cfg.pipeline do
             let err, h = read_unit readers.(i) in
             if err then incr errors;
             hits := !hits + h
           done;
           let per_op_ns =
             (Poller.mono_s () -. t0) *. 1e9 /. float_of_int cfg.pipeline
           in
           for _ = 1 to cfg.pipeline do
             Util.Histogram.record hist (int_of_float per_op_ns)
           done;
           ops := !ops + cfg.pipeline)
         fds
     done
   with Connection_lost why -> disconnect := Some why);
  Array.iter
    (fun fd ->
      (try write_all fd (Bytes.of_string "quit\r\n") 6 with Connection_lost _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    fds;
  {
    d_ops = !ops;
    d_errors = !errors;
    d_hits = !hits;
    d_hist = hist;
    d_disconnect = !disconnect;
  }

(* ---------- closed-loop driver ---------- *)

let us hist q = float_of_int (Util.Histogram.quantile_ns hist q) /. 1e3

let run ?(config = default_config) () =
  let cfg = config in
  let stop = Atomic.make false in
  let t0 = Poller.mono_s () in
  let doms =
    Array.init (max 1 cfg.domains) (fun did ->
        Domain.spawn (fun () -> run_domain cfg did stop))
  in
  (Unix.sleepf cfg.duration_s
  [@montage.allow
    "R5: the loadgen driver thread sleeps to pace the measurement \
     window; it is client tooling, not server or structure code"]);
  Atomic.set stop true;
  let results = Array.map Domain.join doms in
  let seconds = Poller.mono_s () -. t0 in
  let hist = Util.Histogram.create () in
  Array.iter (fun r -> Util.Histogram.merge_into ~dst:hist r.d_hist) results;
  let ops = Array.fold_left (fun a r -> a + r.d_ops) 0 results in
  let errors = Array.fold_left (fun a r -> a + r.d_errors) 0 results in
  let hits = Array.fold_left (fun a r -> a + r.d_hits) 0 results in
  let disconnects =
    Array.to_list results |> List.filter_map (fun r -> r.d_disconnect)
  in
  {
    ops;
    errors;
    hits;
    seconds;
    ops_per_sec = float_of_int ops /. seconds;
    mean_us = Util.Histogram.mean_ns hist /. 1e3;
    p50_us = us hist 0.5;
    p95_us = us hist 0.95;
    p99_us = us hist 0.99;
    disconnects;
  }

(* Pre-populate the keyspace so a read-heavy run measures hits, not
   misses.  One blocking connection, pipelined in chunks. *)
let preload ?(config = default_config) () =
  let cfg = config in
  let fd = connect cfg in
  let r = reader fd in
  let value = String.make cfg.value_size 'v' in
  let chunk = 256 in
  let out = Buffer.create (chunk * (cfg.value_size + 48)) in
  let k = ref 0 in
  while !k < cfg.keyspace do
    Buffer.clear out;
    let n = min chunk (cfg.keyspace - !k) in
    for i = 0 to n - 1 do
      Buffer.add_string out
        (Printf.sprintf "set %s%06d 0 0 %d\r\n%s\r\n" cfg.key_prefix (!k + i) cfg.value_size
           value)
    done;
    write_all fd (Buffer.to_bytes out) (Buffer.length out);
    for _ = 1 to n do
      ignore (read_unit r)
    done;
    k := !k + n
  done;
  (try write_all fd (Bytes.of_string "quit\r\n") 6 with _ -> ());
  (try Unix.close fd with _ -> ())

let print_report ~label r =
  Benchlib.Report.heading (Printf.sprintf "loadgen: %s" label);
  Benchlib.Report.table
    ~columns:[ "ops"; "ops/s"; "errors"; "hits"; "mean_us"; "p50_us"; "p95_us"; "p99_us" ]
    ~rows:
      [
        ( label,
          [
            float_of_int r.ops;
            r.ops_per_sec;
            float_of_int r.errors;
            float_of_int r.hits;
            r.mean_us;
            r.p50_us;
            r.p95_us;
            r.p99_us;
          ] );
      ]
    ~unit_label:"closed-loop" ();
  List.iter
    (fun why ->
      Printf.printf "loadgen: %s: generator domain lost its connection: %s\n"
        label why)
    r.disconnects

(* ---------- open loop ---------- *)

type arrival = Poisson | Uniform

type open_report = {
  offered_rate : float;
  achieved_rate : float;  (** completions / scheduling window *)
  sent : int;
  completed : int;
  abandoned : int;  (** sent but unanswered when the grace period expired *)
  o_errors : int;
  o_hits : int;
  o_seconds : float;  (** wall time including the drain grace period *)
  o_mean_us : float;
  o_p50_us : float;
  o_p95_us : float;
  o_p99_us : float;
  o_disconnects : string list;
}

(* One nonblocking open-loop connection.  Owned by the one generator
   domain driving it; the parser is incremental because replies arrive
   whenever the poller says so, not in lockstep with sends. *)
type oconn = {
  ofd : Unix.file_descr;
  inflight : float Queue.t;  (* scheduled arrival times, FIFO per conn *)
  line : Buffer.t;  (* partial reply line across reads *)
  mutable ob : Bytes.t [@montage.thread_local];  (* unsent commands in [opos, olen) *)
  mutable opos : int [@montage.thread_local];
  mutable olen : int [@montage.thread_local];
  mutable skip : int [@montage.thread_local];  (* VALUE data bytes still to discard *)
  mutable want_w : bool [@montage.thread_local];
  mutable oalive : bool [@montage.thread_local];
}

let oconn_pending c = c.olen - c.opos

let oconn_add c s =
  let n = String.length s in
  if c.olen + n > Bytes.length c.ob then begin
    let live = oconn_pending c in
    if live + n <= Bytes.length c.ob then Bytes.blit c.ob c.opos c.ob 0 live
    else begin
      let cap = ref (max 4096 (Bytes.length c.ob)) in
      while live + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit c.ob c.opos nb 0 live;
      c.ob <- nb
    end;
    c.olen <- live;
    c.opos <- 0
  end;
  Bytes.blit_string s 0 c.ob c.olen n;
  c.olen <- c.olen + n

(* Feed [len] bytes into the incremental reply parser.  [on_unit] fires
   once per completed reply unit; [on_hit] once per VALUE block. *)
let oconn_feed c bytes len ~on_unit ~on_hit =
  let pos = ref 0 in
  while !pos < len do
    if c.skip > 0 then begin
      let take = min c.skip (len - !pos) in
      c.skip <- c.skip - take;
      pos := !pos + take
    end
    else begin
      (* bounded newline scan: bytes beyond [len] are stale *)
      let nl = ref (-1) in
      let i = ref !pos in
      while !nl < 0 && !i < len do
        if Bytes.get bytes !i = '\n' then nl := !i;
        incr i
      done;
      if !nl < 0 then begin
        Buffer.add_subbytes c.line bytes !pos (len - !pos);
        pos := len
      end
      else begin
        Buffer.add_subbytes c.line bytes !pos (!nl - !pos);
        pos := !nl + 1;
        let s = Buffer.contents c.line in
        Buffer.clear c.line;
        let n = String.length s in
        let s = if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s in
        if starts_with "VALUE " s then begin
          let parts = String.split_on_char ' ' s in
          let bytes' =
            match parts with _ :: _ :: _ :: b :: _ -> (try int_of_string b with _ -> 0) | _ -> 0
          in
          c.skip <- bytes' + 2;
          on_hit ()
        end
        else if s = "END" then on_unit ~err:false
        else on_unit ~err:(is_error_line s)
      end
    end
  done

type open_domain_result = {
  od_sent : int;
  od_completed : int;
  od_errors : int;
  od_hits : int;
  od_hist : Util.Histogram.t;
  od_disconnects : string list;
}

let run_open_domain cfg ~rate_d ~arrival ~grace_s did =
  let nconns = max 1 (cfg.conns / max 1 cfg.domains) in
  let conns =
    Array.init nconns (fun _ ->
        let fd = connect cfg in
        Unix.set_nonblock fd;
        {
          ofd = fd;
          inflight = Queue.create ();
          line = Buffer.create 64;
          ob = Bytes.create 4096;
          opos = 0;
          olen = 0;
          skip = 0;
          want_w = false;
          oalive = true;
        })
  in
  let poller = Poller.create ~hint:nconns (Poller.kind_of_env ()) in
  Array.iter (fun c -> Poller.set poller c.ofd ~read:true ~write:false) conns;
  let by_fd = Hashtbl.create nconns in
  Array.iter (fun c -> Hashtbl.replace by_fd c.ofd c) conns;
  let rng = Util.Xoshiro.create (cfg.seed + (did * 7919) + 1) in
  let value = String.make cfg.value_size 'v' in
  let hist = Util.Histogram.create () in
  let rbuf = Bytes.create 65536 in
  let sent = ref 0 and completed = ref 0 and errors = ref 0 and hits = ref 0 in
  let disconnects = ref [] in
  let key () = Printf.sprintf "%s%06d" cfg.key_prefix (Util.Xoshiro.int rng cfg.keyspace) in
  let interarrival () =
    match arrival with
    | Uniform -> 1.0 /. rate_d
    | Poisson -> -.Float.log (1.0 -. Util.Xoshiro.float rng) /. rate_d
  in
  let close_conn c why =
    if c.oalive then begin
      c.oalive <- false;
      Poller.remove poller c.ofd;
      Hashtbl.remove by_fd c.ofd;
      (try Unix.close c.ofd with Unix.Unix_error _ -> ());
      disconnects := why :: !disconnects
    end
  in
  let update_interest c =
    if c.oalive then Poller.set poller c.ofd ~read:true ~write:c.want_w
  in
  (* Drain pending output; EAGAIN arms write interest so the poller
     wakes us when the socket has room again. *)
  let try_flush c =
    let again = ref true and ok = ref true in
    while !again && oconn_pending c > 0 do
      match Unix.write c.ofd c.ob c.opos (oconn_pending c) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          c.want_w <- true;
          again := false
      | exception Unix.Unix_error (e, _, _) ->
          ok := false;
          again := false;
          close_conn c (Unix.error_message e)
      | 0 ->
          ok := false;
          again := false;
          close_conn c "short write"
      | n ->
          c.opos <- c.opos + n;
          if oconn_pending c = 0 then begin
            c.opos <- 0;
            c.olen <- 0
          end
    done;
    if !ok && oconn_pending c = 0 then c.want_w <- false;
    if !ok then update_interest c;
    !ok
  in
  let settle_units c now =
    ( (fun ~err ->
        (* latency from the scheduled arrival, not the socket write:
           queueing delay is part of the request's experience *)
        (match Queue.take_opt c.inflight with
        | Some t_sched ->
            incr completed;
            Util.Histogram.record hist (int_of_float ((now -. t_sched) *. 1e9))
        | None -> ());
        if err then incr errors),
      fun () -> incr hits )
  in
  let read_conn c =
    let again = ref true in
    while !again && c.oalive do
      match Unix.read c.ofd rbuf 0 (Bytes.length rbuf) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          again := false
      | exception Unix.Unix_error (e, _, _) ->
          again := false;
          close_conn c (Unix.error_message e)
      | 0 ->
          again := false;
          close_conn c "server closed connection"
      | n ->
          let now = Poller.mono_s () in
          let on_unit, on_hit = settle_units c now in
          oconn_feed c rbuf n ~on_unit ~on_hit
    done
  in
  let t_start = Poller.mono_s () in
  let t_end = t_start +. cfg.duration_s in
  let next = ref (t_start +. interarrival ()) in
  let drain_at = ref infinity in
  let rr = ref 0 in
  let running = ref true in
  while !running do
    let now = Poller.mono_s () in
    (* schedule every arrival that is due, even if we are behind: an
       open loop does not slow down because the server did *)
    if now < t_end then
      while !next <= now do
        let c = conns.(!rr mod nconns) in
        incr rr;
        if c.oalive then begin
          let cmd =
            if Util.Xoshiro.float rng < cfg.get_frac then
              Printf.sprintf "get %s\r\n" (key ())
            else Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" (key ()) cfg.value_size value
          in
          oconn_add c cmd;
          Queue.push !next c.inflight;
          incr sent;
          ignore (try_flush c)
        end;
        next := !next +. interarrival ()
      done
    else if !drain_at = infinity then drain_at := now +. grace_s;
    let tnext = if now < t_end then Float.min !next t_end else !drain_at in
    let timeout = Float.max 0.0 (Float.min 0.05 (tnext -. now)) in
    ignore
      ((Poller.wait poller ~timeout_s:timeout (fun fd ~readable ~writable ->
            match Hashtbl.find_opt by_fd fd with
            | None -> ()
            | Some c ->
                if writable then begin
                  c.want_w <- false;
                  ignore (try_flush c)
                end;
                if readable && c.oalive then read_conn c))
      [@montage.allow
        "R5: open-loop generator readiness wait in client tooling; \
         paced by the arrival schedule, not a server thread"]);
    let now = Poller.mono_s () in
    if now >= t_end then begin
      if !drain_at = infinity then drain_at := now +. grace_s;
      let quiesced =
        Array.for_all
          (fun c -> (not c.oalive) || (Queue.is_empty c.inflight && oconn_pending c = 0))
          conns
      in
      if quiesced || now >= !drain_at then running := false
    end
  done;
  Array.iter
    (fun c ->
      if c.oalive then begin
        Poller.remove poller c.ofd;
        (try Unix.close c.ofd with Unix.Unix_error _ -> ())
      end)
    conns;
  Poller.close poller;
  {
    od_sent = !sent;
    od_completed = !completed;
    od_errors = !errors;
    od_hits = !hits;
    od_hist = hist;
    od_disconnects = !disconnects;
  }

let run_open ?(config = default_config) ?(arrival = Poisson) ?(grace_s = 1.0) ~rate () =
  let cfg = config in
  if rate <= 0.0 then invalid_arg "Loadgen.run_open: rate must be positive";
  let ndomains = max 1 cfg.domains in
  let rate_d = rate /. float_of_int ndomains in
  let t0 = Poller.mono_s () in
  let doms =
    Array.init ndomains (fun did ->
        Domain.spawn (fun () -> run_open_domain cfg ~rate_d ~arrival ~grace_s did))
  in
  let results = Array.map Domain.join doms in
  let seconds = Poller.mono_s () -. t0 in
  let hist = Util.Histogram.create () in
  Array.iter (fun r -> Util.Histogram.merge_into ~dst:hist r.od_hist) results;
  let sum f = Array.fold_left (fun a r -> a + f r) 0 results in
  let sent = sum (fun r -> r.od_sent) in
  let completed = sum (fun r -> r.od_completed) in
  {
    offered_rate = rate;
    achieved_rate = float_of_int completed /. cfg.duration_s;
    sent;
    completed;
    abandoned = sent - completed;
    o_errors = sum (fun r -> r.od_errors);
    o_hits = sum (fun r -> r.od_hits);
    o_seconds = seconds;
    o_mean_us = Util.Histogram.mean_ns hist /. 1e3;
    o_p50_us = us hist 0.5;
    o_p95_us = us hist 0.95;
    o_p99_us = us hist 0.99;
    o_disconnects = List.concat_map (fun r -> r.od_disconnects) (Array.to_list results);
  }

let arrival_name = function Poisson -> "poisson" | Uniform -> "uniform"

let arrival_of_string = function
  | "poisson" -> Some Poisson
  | "uniform" -> Some Uniform
  | _ -> None

let print_open_report ~label r =
  Benchlib.Report.heading (Printf.sprintf "loadgen open-loop: %s" label);
  Benchlib.Report.table
    ~columns:
      [
        "offered/s"; "achieved/s"; "sent"; "done"; "abandoned"; "errors"; "mean_us"; "p50_us";
        "p95_us"; "p99_us";
      ]
    ~rows:
      [
        ( label,
          [
            r.offered_rate;
            r.achieved_rate;
            float_of_int r.sent;
            float_of_int r.completed;
            float_of_int r.abandoned;
            float_of_int r.o_errors;
            r.o_mean_us;
            r.o_p50_us;
            r.o_p95_us;
            r.o_p99_us;
          ] );
      ]
    ~unit_label:"open-loop" ();
  List.iter
    (fun why ->
      Printf.printf "loadgen: %s: open-loop connection lost: %s\n" label why)
    r.o_disconnects
