(* Closed-loop memcached-protocol load generator.

   Each of [domains] generator domains owns [conns / domains]
   blocking TCP connections and drives them round-robin: write a
   pipeline of [pipeline] commands (mixed get/set per [get_frac]),
   read all the replies, record the batch round-trip once per command
   into a per-domain log-scale histogram.  Closed loop — a connection
   never has more than one batch in flight — so reported latency is
   honest service time including the server's batched-flush cycle.

   Reply framing: a reply "unit" is one line, except [VALUE] headers
   which are followed by <bytes>+2 of data and are terminated (with
   any other VALUE blocks of the same get) by [END].  Counting units
   against commands issued keeps the reader in lockstep without
   parsing every verb's reply shape. *)

type config = {
  host : string;
  port : int;
  conns : int;
  domains : int;
  duration_s : float;
  pipeline : int;
  value_size : int;
  keyspace : int;
  get_frac : float;
  seed : int;
  key_prefix : string;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 11211;
    conns = 8;
    domains = 2;
    duration_s = 2.0;
    pipeline = 8;
    value_size = 64;
    keyspace = 10_000;
    get_frac = 0.9;
    seed = 42;
    key_prefix = "lg";
  }

type report = {
  ops : int;
  errors : int;
  hits : int;
  seconds : float;
  ops_per_sec : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  disconnects : string list;
}

exception Connection_lost of string

(* ---------- wire helpers (blocking sockets) ---------- *)

let write_all fd buf len =
  let off = ref 0 in
  while !off < len do
    let n =
      try Unix.write fd buf !off (len - !off)
      with Unix.Unix_error (e, _, _) ->
        raise (Connection_lost (Unix.error_message e))
    in
    if n = 0 then raise (Connection_lost "short write");
    off := !off + n
  done

(* Buffered reader: enough to split reply lines and skip data blocks.
   The reader is owned by the one generator domain driving its
   connection. *)
type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int [@montage.thread_local];
  mutable len : int [@montage.thread_local];
}

let reader fd = { fd; buf = Bytes.create 65536; pos = 0; len = 0 }

let refill r =
  if r.pos = r.len then begin
    r.pos <- 0;
    r.len <-
      (try Unix.read r.fd r.buf 0 (Bytes.length r.buf)
       with Unix.Unix_error (e, _, _) ->
         raise (Connection_lost (Unix.error_message e)));
    if r.len = 0 then raise (Connection_lost "server closed connection")
  end

(* One CRLF-terminated line, CRLF stripped.  Lines longer than the
   buffer would be a server bug; grow-free because server replies are
   short (VALUE data is skipped separately). *)
let read_line r =
  let acc = Buffer.create 64 in
  let rec go () =
    refill r;
    match Bytes.index_from_opt r.buf r.pos '\n' with
    | Some i when i < r.len ->
        Buffer.add_subbytes acc r.buf r.pos (i - r.pos);
        r.pos <- i + 1;
        let s = Buffer.contents acc in
        let n = String.length s in
        if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
    | _ ->
        Buffer.add_subbytes acc r.buf r.pos (r.len - r.pos);
        r.pos <- r.len;
        go ()
  in
  go ()

let skip r n =
  let left = ref n in
  while !left > 0 do
    refill r;
    let take = min !left (r.len - r.pos) in
    r.pos <- r.pos + take;
    left := !left - take
  done

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Read one reply unit; returns (was_error, hits). *)
let read_unit r =
  let rec values hits =
    let line = read_line r in
    if starts_with "VALUE " line then begin
      (* VALUE <key> <flags> <bytes> [cas] *)
      let parts = String.split_on_char ' ' line in
      let bytes = match parts with _ :: _ :: _ :: b :: _ -> int_of_string b | _ -> 0 in
      skip r (bytes + 2);
      values (hits + 1)
    end
    else if line = "END" then (false, hits)
    else
      ( starts_with "ERROR" line || starts_with "CLIENT_ERROR" line
        || starts_with "SERVER_ERROR" line,
        hits )
  in
  values 0

(* ---------- per-domain generator ---------- *)

type domain_result = {
  d_ops : int;
  d_errors : int;
  d_hits : int;
  d_hist : Util.Histogram.t;
  d_disconnect : string option;
}

let connect cfg =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.setsockopt fd TCP_NODELAY true with _ -> ());
  Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  fd

let run_domain cfg did stop =
  let nconns = max 1 (cfg.conns / max 1 cfg.domains) in
  let fds = Array.init nconns (fun _ -> connect cfg) in
  let readers = Array.map reader fds in
  let rng = Util.Xoshiro.create (cfg.seed + (did * 7919) + 1) in
  let value = String.make cfg.value_size 'v' in
  let hist = Util.Histogram.create () in
  let out = Buffer.create 4096 in
  let ops = ref 0 and errors = ref 0 and hits = ref 0 in
  let key () = Printf.sprintf "%s%06d" cfg.key_prefix (Util.Xoshiro.int rng cfg.keyspace) in
  let disconnect = ref None in
  (try
     while not (Atomic.get stop) do
       Array.iteri
         (fun i fd ->
           Buffer.clear out;
           for _ = 1 to cfg.pipeline do
             if Util.Xoshiro.float rng < cfg.get_frac then
               Buffer.add_string out (Printf.sprintf "get %s\r\n" (key ()))
             else
               Buffer.add_string out
                 (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" (key ()) cfg.value_size value)
           done;
           let t0 = Unix.gettimeofday () in
           write_all fd (Buffer.to_bytes out) (Buffer.length out);
           for _ = 1 to cfg.pipeline do
             let err, h = read_unit readers.(i) in
             if err then incr errors;
             hits := !hits + h
           done;
           let per_op_ns =
             (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int cfg.pipeline
           in
           for _ = 1 to cfg.pipeline do
             Util.Histogram.record hist (int_of_float per_op_ns)
           done;
           ops := !ops + cfg.pipeline)
         fds
     done
   with Connection_lost why -> disconnect := Some why);
  Array.iter
    (fun fd ->
      (try write_all fd (Bytes.of_string "quit\r\n") 6 with Connection_lost _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    fds;
  {
    d_ops = !ops;
    d_errors = !errors;
    d_hits = !hits;
    d_hist = hist;
    d_disconnect = !disconnect;
  }

(* ---------- driver ---------- *)

let us hist q = float_of_int (Util.Histogram.quantile_ns hist q) /. 1e3

let run ?(config = default_config) () =
  let cfg = config in
  let stop = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let doms =
    Array.init (max 1 cfg.domains) (fun did ->
        Domain.spawn (fun () -> run_domain cfg did stop))
  in
  (Unix.sleepf cfg.duration_s
  [@montage.allow
    "R5: the loadgen driver thread sleeps to pace the measurement \
     window; it is client tooling, not server or structure code"]);
  Atomic.set stop true;
  let results = Array.map Domain.join doms in
  let seconds = Unix.gettimeofday () -. t0 in
  let hist = Util.Histogram.create () in
  Array.iter (fun r -> Util.Histogram.merge_into ~dst:hist r.d_hist) results;
  let ops = Array.fold_left (fun a r -> a + r.d_ops) 0 results in
  let errors = Array.fold_left (fun a r -> a + r.d_errors) 0 results in
  let hits = Array.fold_left (fun a r -> a + r.d_hits) 0 results in
  let disconnects =
    Array.to_list results |> List.filter_map (fun r -> r.d_disconnect)
  in
  {
    ops;
    errors;
    hits;
    seconds;
    ops_per_sec = float_of_int ops /. seconds;
    mean_us = Util.Histogram.mean_ns hist /. 1e3;
    p50_us = us hist 0.5;
    p95_us = us hist 0.95;
    p99_us = us hist 0.99;
    disconnects;
  }

(* Pre-populate the keyspace so a read-heavy run measures hits, not
   misses.  One blocking connection, pipelined in chunks. *)
let preload ?(config = default_config) () =
  let cfg = config in
  let fd = connect cfg in
  let r = reader fd in
  let value = String.make cfg.value_size 'v' in
  let chunk = 256 in
  let out = Buffer.create (chunk * (cfg.value_size + 48)) in
  let k = ref 0 in
  while !k < cfg.keyspace do
    Buffer.clear out;
    let n = min chunk (cfg.keyspace - !k) in
    for i = 0 to n - 1 do
      Buffer.add_string out
        (Printf.sprintf "set %s%06d 0 0 %d\r\n%s\r\n" cfg.key_prefix (!k + i) cfg.value_size
           value)
    done;
    write_all fd (Buffer.to_bytes out) (Buffer.length out);
    for _ = 1 to n do
      ignore (read_unit r)
    done;
    k := !k + n
  done;
  (try write_all fd (Bytes.of_string "quit\r\n") 6 with _ -> ());
  (try Unix.close fd with _ -> ())

let print_report ~label r =
  Benchlib.Report.heading (Printf.sprintf "loadgen: %s" label);
  Benchlib.Report.table
    ~columns:[ "ops"; "ops/s"; "errors"; "hits"; "mean_us"; "p50_us"; "p95_us"; "p99_us" ]
    ~rows:
      [
        ( label,
          [
            float_of_int r.ops;
            r.ops_per_sec;
            float_of_int r.errors;
            float_of_int r.hits;
            r.mean_us;
            r.p50_us;
            r.p95_us;
            r.p99_us;
          ] );
      ]
    ~unit_label:"closed-loop" ();
  List.iter
    (fun why ->
      Printf.printf "loadgen: %s: generator domain lost its connection: %s\n"
        label why)
    r.disconnects
