(* Memcached-protocol load generator: closed-loop and open-loop.

   Closed loop ([run]): each of [domains] generator domains owns
   [conns / domains] blocking TCP connections and drives them
   round-robin: write a pipeline of [pipeline] commands (mixed get/set
   per [get_frac]), read all the replies, record the batch round-trip
   once per command into a per-domain log-scale histogram.  A
   connection never has more than one batch in flight, so reported
   latency is honest service time including the server's batched-flush
   cycle — but the offered load collapses whenever the server slows
   down, which hides overload.

   Open loop ([run_open]): commands arrive on a fixed schedule (Poisson
   or uniform interarrivals at [rate] ops/s) regardless of how fast the
   server answers, over nonblocking connections driven by a {!Poller}.
   Latency is measured from the {e scheduled} arrival time, not the
   moment the socket write happened, so queueing delay the server
   imposes on a backed-up connection is charged to the request — the
   standard fix for coordinated omission.  Under overload the inflight
   population grows and the tail explodes, which is exactly the signal
   a closed loop cannot produce.

   Reply framing (both modes) is {!Kvstore.Protocol.Client}'s
   reply-unit decoder — the same framer the cluster router's upstream
   connections use.  Counting units against commands issued keeps the
   reader in lockstep without parsing every verb's reply shape.

   Endpoints: [endpoints] spreads connections round-robin over a list
   of addresses (one router, several routers, or raw shards), with
   per-endpoint completion/error/abandon accounting so a cluster
   scenario can tell a refused or dropped connection (the endpoint
   itself failing) from a [SERVER_ERROR shard down] reply (the
   endpoint up, a shard behind it down). *)

module C = Kvstore.Protocol.Client

type config = {
  host : string;
  port : int;
  endpoints : (string * int) list;  (* [] = [(host, port)] *)
  conns : int;
  domains : int;
  duration_s : float;
  pipeline : int;
  value_size : int;
  keyspace : int;
  get_frac : float;
  seed : int;
  key_prefix : string;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 11211;
    endpoints = [];
    conns = 8;
    domains = 2;
    duration_s = 2.0;
    pipeline = 8;
    value_size = 64;
    keyspace = 10_000;
    get_frac = 0.9;
    seed = 42;
    key_prefix = "lg";
  }

let resolved_endpoints cfg =
  match cfg.endpoints with [] -> [ (cfg.host, cfg.port) ] | l -> l

type endpoint_stats = {
  ep_host : string;
  ep_port : int;
  ep_ops : int;  (* completed reply units *)
  ep_errors : int;  (* error replies other than shard-down *)
  ep_shard_down : int;  (* SERVER_ERROR shard down replies *)
  ep_abandoned : int;  (* open loop: sent, never answered *)
  ep_disconnects : int;
}

type report = {
  ops : int;
  errors : int;
  shard_down_errors : int;
  hits : int;
  seconds : float;
  ops_per_sec : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  disconnects : string list;
  by_endpoint : endpoint_stats list;
}

exception Connection_lost of string

(* ---------- wire helpers (blocking sockets) ---------- *)

let write_all fd buf len =
  let off = ref 0 in
  while !off < len do
    let n =
      try Unix.write fd buf !off (len - !off)
      with Unix.Unix_error (e, _, _) ->
        raise (Connection_lost (Unix.error_message e))
    in
    if n = 0 then raise (Connection_lost "short write");
    off := !off + n
  done

(* Buffered reader over the shared {!Kvstore.Protocol.Client} decoder.
   The reader is owned by the one generator domain driving its
   connection; the in-progress reply unit stays contiguous at [upos]
   (the decoder's offsets are unit-relative, so compaction mid-unit is
   fine). *)
type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t [@montage.thread_local];
  mutable upos : int [@montage.thread_local];  (* current unit's start *)
  mutable len : int [@montage.thread_local];
  dec : C.decoder;
}

let reader fd = { fd; buf = Bytes.create 65536; upos = 0; len = 0; dec = C.decoder () }

let refill r =
  if r.len = Bytes.length r.buf then
    if r.upos > 0 then begin
      let live = r.len - r.upos in
      Bytes.blit r.buf r.upos r.buf 0 live;
      r.upos <- 0;
      r.len <- live
    end
    else begin
      let nb = Bytes.create (2 * Bytes.length r.buf) in
      Bytes.blit r.buf 0 nb 0 r.len;
      r.buf <- nb
    end;
  let n =
    try Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len)
    with Unix.Unix_error (e, _, _) -> raise (Connection_lost (Unix.error_message e))
  in
  if n = 0 then raise (Connection_lost "server closed connection");
  r.len <- r.len + n

(* does [buf[pos, stop)] contain "shard down"?  (router's Down marker;
   cheap because it only runs on SERVER_ERROR units) *)
let unit_is_shard_down buf pos stop =
  let needle = "shard down" in
  let nn = String.length needle in
  let rec scan i =
    if i + nn > stop then false
    else if Bytes.sub_string buf i nn = needle then true
    else scan (i + 1)
  in
  scan pos

(* Read one reply unit; returns (result, was_shard_down). *)
let read_unit r =
  let rec go () =
    match C.next_unit r.dec r.buf ~pos:r.upos ~len:(r.len - r.upos) with
    | Some (endp, res) ->
        let sd =
          res.C.cls = C.U_server_error && unit_is_shard_down r.buf r.upos endp
        in
        r.upos <- endp;
        if r.upos = r.len then begin
          r.upos <- 0;
          r.len <- 0
        end;
        (res, sd)
    | None ->
        refill r;
        go ()
  in
  go ()

(* ---------- connecting (shared by both modes) ---------- *)

(* Retry the initial connect with bounded exponential backoff: under a
   C10K ramp the listen backlog overflows transiently, and a run that
   dies on the first ECONNREFUSED measures nothing. *)
let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
  | _ -> ()

let connect ?(retries = 60) (host, port) =
  ignore_sigpipe ();
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let rec go attempt backoff =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    (try Unix.setsockopt fd TCP_NODELAY true with _ -> ());
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK
            | Unix.EINTR | Unix.ETIMEDOUT ),
            _,
            _ )
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (Unix.sleepf backoff
        [@montage.allow
          "R5: bounded connect backoff in client tooling; the server \
           under test is not on this thread"]);
        go (attempt + 1) (Float.min 0.25 (backoff *. 2.0))
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go 0 0.005

(* ---------- closed loop: per-domain generator ---------- *)

type domain_result = {
  d_ops : int;
  d_errors : int;
  d_shard_down : int;
  d_hits : int;
  d_hist : Util.Histogram.t;
  d_disconnect : string option;
  (* per-endpoint, indexed like [resolved_endpoints cfg] *)
  d_ep_ops : int array;
  d_ep_errors : int array;
  d_ep_shard_down : int array;
  d_ep_disconnects : int array;
}

let run_domain cfg did stop =
  let eps = Array.of_list (resolved_endpoints cfg) in
  let neps = Array.length eps in
  let nconns = max 1 (cfg.conns / max 1 cfg.domains) in
  (* global round-robin so each endpoint gets its share even when a
     domain owns fewer connections than there are endpoints *)
  let ep_of = Array.init nconns (fun i -> ((did * nconns) + i) mod neps) in
  let fds = Array.init nconns (fun i -> connect eps.(ep_of.(i))) in
  let readers = Array.map reader fds in
  let rng = Util.Xoshiro.create (cfg.seed + (did * 7919) + 1) in
  let value = String.make cfg.value_size 'v' in
  let hist = Util.Histogram.create () in
  let out = Buffer.create 4096 in
  let ops = ref 0 and errors = ref 0 and shard_down = ref 0 and hits = ref 0 in
  let ep_ops = Array.make neps 0
  and ep_errors = Array.make neps 0
  and ep_shard_down = Array.make neps 0
  and ep_disconnects = Array.make neps 0 in
  let key () = Printf.sprintf "%s%06d" cfg.key_prefix (Util.Xoshiro.int rng cfg.keyspace) in
  let disconnect = ref None in
  let cur_ep = ref 0 in
  (try
     while not (Atomic.get stop) do
       Array.iteri
         (fun i fd ->
           cur_ep := ep_of.(i);
           Buffer.clear out;
           for _ = 1 to cfg.pipeline do
             if Util.Xoshiro.float rng < cfg.get_frac then
               Buffer.add_string out (Printf.sprintf "get %s\r\n" (key ()))
             else
               Buffer.add_string out
                 (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" (key ()) cfg.value_size value)
           done;
           let t0 = Poller.mono_s () in
           write_all fd (Buffer.to_bytes out) (Buffer.length out);
           for _ = 1 to cfg.pipeline do
             let res, sd = read_unit readers.(i) in
             if sd then begin
               incr shard_down;
               ep_shard_down.(!cur_ep) <- ep_shard_down.(!cur_ep) + 1
             end
             else if C.is_err res then begin
               incr errors;
               ep_errors.(!cur_ep) <- ep_errors.(!cur_ep) + 1
             end;
             hits := !hits + res.C.hits
           done;
           let per_op_ns =
             (Poller.mono_s () -. t0) *. 1e9 /. float_of_int cfg.pipeline
           in
           for _ = 1 to cfg.pipeline do
             Util.Histogram.record hist (int_of_float per_op_ns)
           done;
           ops := !ops + cfg.pipeline;
           ep_ops.(!cur_ep) <- ep_ops.(!cur_ep) + cfg.pipeline)
         fds
     done
   with Connection_lost why ->
     disconnect := Some why;
     ep_disconnects.(!cur_ep) <- ep_disconnects.(!cur_ep) + 1);
  Array.iter
    (fun fd ->
      (try write_all fd (Bytes.of_string "quit\r\n") 6 with Connection_lost _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    fds;
  {
    d_ops = !ops;
    d_errors = !errors;
    d_shard_down = !shard_down;
    d_hits = !hits;
    d_hist = hist;
    d_disconnect = !disconnect;
    d_ep_ops = ep_ops;
    d_ep_errors = ep_errors;
    d_ep_shard_down = ep_shard_down;
    d_ep_disconnects = ep_disconnects;
  }

(* ---------- closed-loop driver ---------- *)

let us hist q = float_of_int (Util.Histogram.quantile_ns hist q) /. 1e3

(* Sum per-domain per-endpoint arrays and zip with the address list. *)
let endpoint_rollup eps ~results ~ops ~errors ~shard_down ~abandoned ~disconnects =
  let neps = List.length eps in
  let sum_arr f =
    let acc = Array.make neps 0 in
    Array.iter (fun r -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) (f r)) results;
    acc
  in
  let a_ops = sum_arr ops
  and a_err = sum_arr errors
  and a_sd = sum_arr shard_down
  and a_ab = sum_arr abandoned
  and a_dc = sum_arr disconnects in
  List.mapi
    (fun i (h, p) ->
      {
        ep_host = h;
        ep_port = p;
        ep_ops = a_ops.(i);
        ep_errors = a_err.(i);
        ep_shard_down = a_sd.(i);
        ep_abandoned = a_ab.(i);
        ep_disconnects = a_dc.(i);
      })
    eps

let run ?(config = default_config) () =
  let cfg = config in
  let stop = Atomic.make false in
  let t0 = Poller.mono_s () in
  let doms =
    Array.init (max 1 cfg.domains) (fun did ->
        Domain.spawn (fun () -> run_domain cfg did stop))
  in
  (Unix.sleepf cfg.duration_s
  [@montage.allow
    "R5: the loadgen driver thread sleeps to pace the measurement \
     window; it is client tooling, not server or structure code"]);
  Atomic.set stop true;
  let results = Array.map Domain.join doms in
  let seconds = Poller.mono_s () -. t0 in
  let hist = Util.Histogram.create () in
  Array.iter (fun r -> Util.Histogram.merge_into ~dst:hist r.d_hist) results;
  let ops = Array.fold_left (fun a r -> a + r.d_ops) 0 results in
  let errors = Array.fold_left (fun a r -> a + r.d_errors) 0 results in
  let shard_down_errors = Array.fold_left (fun a r -> a + r.d_shard_down) 0 results in
  let hits = Array.fold_left (fun a r -> a + r.d_hits) 0 results in
  let disconnects =
    Array.to_list results |> List.filter_map (fun r -> r.d_disconnect)
  in
  let neps = List.length (resolved_endpoints cfg) in
  let zeros _ = Array.make neps 0 in
  let by_endpoint =
    endpoint_rollup (resolved_endpoints cfg) ~results ~ops:(fun r -> r.d_ep_ops)
      ~errors:(fun r -> r.d_ep_errors)
      ~shard_down:(fun r -> r.d_ep_shard_down)
      ~abandoned:zeros
      ~disconnects:(fun r -> r.d_ep_disconnects)
  in
  {
    ops;
    errors;
    shard_down_errors;
    hits;
    seconds;
    ops_per_sec = float_of_int ops /. seconds;
    mean_us = Util.Histogram.mean_ns hist /. 1e3;
    p50_us = us hist 0.5;
    p95_us = us hist 0.95;
    p99_us = us hist 0.99;
    disconnects;
    by_endpoint;
  }

(* Pre-populate the keyspace so a read-heavy run measures hits, not
   misses.  One blocking connection, pipelined in chunks. *)
let preload ?(config = default_config) () =
  let cfg = config in
  (* first endpoint is enough: a router fans the keys out by ownership,
     and a single server IS the first endpoint *)
  let fd = connect (List.hd (resolved_endpoints cfg)) in
  let r = reader fd in
  let value = String.make cfg.value_size 'v' in
  let chunk = 256 in
  let out = Buffer.create (chunk * (cfg.value_size + 48)) in
  let k = ref 0 in
  while !k < cfg.keyspace do
    Buffer.clear out;
    let n = min chunk (cfg.keyspace - !k) in
    for i = 0 to n - 1 do
      Buffer.add_string out
        (Printf.sprintf "set %s%06d 0 0 %d\r\n%s\r\n" cfg.key_prefix (!k + i) cfg.value_size
           value)
    done;
    write_all fd (Buffer.to_bytes out) (Buffer.length out);
    for _ = 1 to n do
      ignore (read_unit r)
    done;
    k := !k + n
  done;
  (try write_all fd (Bytes.of_string "quit\r\n") 6 with _ -> ());
  (try Unix.close fd with _ -> ())

let print_endpoint_stats by_endpoint =
  if List.length by_endpoint > 1 then
    Benchlib.Report.table
      ~columns:[ "ops"; "errors"; "shard_down"; "abandoned"; "disconnects" ]
      ~rows:
        (List.map
           (fun e ->
             ( Printf.sprintf "%s:%d" e.ep_host e.ep_port,
               [
                 float_of_int e.ep_ops;
                 float_of_int e.ep_errors;
                 float_of_int e.ep_shard_down;
                 float_of_int e.ep_abandoned;
                 float_of_int e.ep_disconnects;
               ] ))
           by_endpoint)
      ~unit_label:"per-endpoint" ()

let print_report ~label r =
  Benchlib.Report.heading (Printf.sprintf "loadgen: %s" label);
  Benchlib.Report.table
    ~columns:
      [ "ops"; "ops/s"; "errors"; "shard_down"; "hits"; "mean_us"; "p50_us"; "p95_us"; "p99_us" ]
    ~rows:
      [
        ( label,
          [
            float_of_int r.ops;
            r.ops_per_sec;
            float_of_int r.errors;
            float_of_int r.shard_down_errors;
            float_of_int r.hits;
            r.mean_us;
            r.p50_us;
            r.p95_us;
            r.p99_us;
          ] );
      ]
    ~unit_label:"closed-loop" ();
  print_endpoint_stats r.by_endpoint;
  List.iter
    (fun why ->
      Printf.printf "loadgen: %s: generator domain lost its connection: %s\n"
        label why)
    r.disconnects

(* ---------- open loop ---------- *)

type arrival = Poisson | Uniform

type open_report = {
  offered_rate : float;
  achieved_rate : float;  (** completions / scheduling window *)
  sent : int;
  completed : int;
  abandoned : int;  (** sent but unanswered when the grace period expired *)
  o_errors : int;
  o_shard_down_errors : int;
  o_hits : int;
  o_seconds : float;  (** wall time including the drain grace period *)
  o_mean_us : float;
  o_p50_us : float;
  o_p95_us : float;
  o_p99_us : float;
  o_disconnects : string list;
  o_by_endpoint : endpoint_stats list;
}

(* One nonblocking open-loop connection.  Owned by the one generator
   domain driving it; the reply framer is incremental because replies
   arrive whenever the poller says so, not in lockstep with sends. *)
type oconn = {
  ofd : Unix.file_descr;
  ep : int;  (* index into the resolved endpoint list *)
  inflight : float Queue.t;  (* scheduled arrival times, FIFO per conn *)
  dec : C.decoder;
  mutable ib : Bytes.t [@montage.thread_local];  (* replies; current unit at [iupos, ilen) *)
  mutable iupos : int [@montage.thread_local];
  mutable ilen : int [@montage.thread_local];
  mutable ob : Bytes.t [@montage.thread_local];  (* unsent commands in [opos, olen) *)
  mutable opos : int [@montage.thread_local];
  mutable olen : int [@montage.thread_local];
  mutable want_w : bool [@montage.thread_local];
  mutable oalive : bool [@montage.thread_local];
}

let oconn_pending c = c.olen - c.opos

let oconn_add c s =
  let n = String.length s in
  if c.olen + n > Bytes.length c.ob then begin
    let live = oconn_pending c in
    if live + n <= Bytes.length c.ob then Bytes.blit c.ob c.opos c.ob 0 live
    else begin
      let cap = ref (max 4096 (Bytes.length c.ob)) in
      while live + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit c.ob c.opos nb 0 live;
      c.ob <- nb
    end;
    c.olen <- live;
    c.opos <- 0
  end;
  Bytes.blit_string s 0 c.ob c.olen n;
  c.olen <- c.olen + n

(* Drain every complete reply unit buffered on [c].  [on_unit] fires
   once per unit with its class and hit count; consumed units are
   compacted away, a partial unit stays in place for the next read
   (the decoder's offsets are unit-relative, so that is safe). *)
let oconn_drain c ~on_unit =
  let continue = ref true in
  while !continue do
    match C.next_unit c.dec c.ib ~pos:c.iupos ~len:(c.ilen - c.iupos) with
    | Some (endp, res) ->
        let sd =
          res.C.cls = C.U_server_error && unit_is_shard_down c.ib c.iupos endp
        in
        c.iupos <- endp;
        if c.iupos = c.ilen then begin
          c.iupos <- 0;
          c.ilen <- 0
        end;
        on_unit res ~shard_down:sd
    | None -> continue := false
  done

type open_domain_result = {
  od_sent : int;
  od_completed : int;
  od_errors : int;
  od_shard_down : int;
  od_hits : int;
  od_hist : Util.Histogram.t;
  od_disconnects : string list;
  od_ep_ops : int array;
  od_ep_errors : int array;
  od_ep_shard_down : int array;
  od_ep_abandoned : int array;
  od_ep_disconnects : int array;
}

let run_open_domain cfg ~rate_d ~arrival ~grace_s did =
  let eps = Array.of_list (resolved_endpoints cfg) in
  let neps = Array.length eps in
  let nconns = max 1 (cfg.conns / max 1 cfg.domains) in
  let conns =
    Array.init nconns (fun i ->
        let ep = ((did * nconns) + i) mod neps in
        let fd = connect eps.(ep) in
        Unix.set_nonblock fd;
        {
          ofd = fd;
          ep;
          inflight = Queue.create ();
          dec = C.decoder ();
          ib = Bytes.create 65536;
          iupos = 0;
          ilen = 0;
          ob = Bytes.create 4096;
          opos = 0;
          olen = 0;
          want_w = false;
          oalive = true;
        })
  in
  let poller = Poller.create ~hint:nconns (Poller.kind_of_env ()) in
  Array.iter (fun c -> Poller.set poller c.ofd ~read:true ~write:false) conns;
  let by_fd = Hashtbl.create nconns in
  Array.iter (fun c -> Hashtbl.replace by_fd c.ofd c) conns;
  let rng = Util.Xoshiro.create (cfg.seed + (did * 7919) + 1) in
  let value = String.make cfg.value_size 'v' in
  let hist = Util.Histogram.create () in
  let sent = ref 0 and completed = ref 0 and errors = ref 0 and hits = ref 0 in
  let shard_down = ref 0 in
  let ep_ops = Array.make neps 0
  and ep_errors = Array.make neps 0
  and ep_shard_down = Array.make neps 0
  and ep_abandoned = Array.make neps 0
  and ep_disconnects = Array.make neps 0 in
  let disconnects = ref [] in
  let key () = Printf.sprintf "%s%06d" cfg.key_prefix (Util.Xoshiro.int rng cfg.keyspace) in
  let interarrival () =
    match arrival with
    | Uniform -> 1.0 /. rate_d
    | Poisson -> -.Float.log (1.0 -. Util.Xoshiro.float rng) /. rate_d
  in
  let close_conn c why =
    if c.oalive then begin
      c.oalive <- false;
      Poller.remove poller c.ofd;
      Hashtbl.remove by_fd c.ofd;
      (try Unix.close c.ofd with Unix.Unix_error _ -> ());
      (* whatever was still awaiting an answer is lost with the socket *)
      ep_abandoned.(c.ep) <- ep_abandoned.(c.ep) + Queue.length c.inflight;
      Queue.clear c.inflight;
      ep_disconnects.(c.ep) <- ep_disconnects.(c.ep) + 1;
      disconnects := why :: !disconnects
    end
  in
  let update_interest c =
    if c.oalive then Poller.set poller c.ofd ~read:true ~write:c.want_w
  in
  (* Drain pending output; EAGAIN arms write interest so the poller
     wakes us when the socket has room again. *)
  let try_flush c =
    let again = ref true and ok = ref true in
    while !again && oconn_pending c > 0 do
      match Unix.write c.ofd c.ob c.opos (oconn_pending c) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          c.want_w <- true;
          again := false
      | exception Unix.Unix_error (e, _, _) ->
          ok := false;
          again := false;
          close_conn c (Unix.error_message e)
      | 0 ->
          ok := false;
          again := false;
          close_conn c "short write"
      | n ->
          c.opos <- c.opos + n;
          if oconn_pending c = 0 then begin
            c.opos <- 0;
            c.olen <- 0
          end
    done;
    if !ok && oconn_pending c = 0 then c.want_w <- false;
    if !ok then update_interest c;
    !ok
  in
  let settle c now res ~shard_down:sd =
    (* latency from the scheduled arrival, not the socket write:
       queueing delay is part of the request's experience *)
    (match Queue.take_opt c.inflight with
    | Some t_sched ->
        incr completed;
        ep_ops.(c.ep) <- ep_ops.(c.ep) + 1;
        Util.Histogram.record hist (int_of_float ((now -. t_sched) *. 1e9))
    | None -> ());
    if sd then begin
      incr shard_down;
      ep_shard_down.(c.ep) <- ep_shard_down.(c.ep) + 1
    end
    else if C.is_err res then begin
      incr errors;
      ep_errors.(c.ep) <- ep_errors.(c.ep) + 1
    end;
    hits := !hits + res.C.hits
  in
  (* make room to read: compact consumed units first, double only when
     a single reply unit outgrows the buffer *)
  let ib_room c =
    if c.ilen = Bytes.length c.ib then
      if c.iupos > 0 then begin
        let live = c.ilen - c.iupos in
        Bytes.blit c.ib c.iupos c.ib 0 live;
        c.iupos <- 0;
        c.ilen <- live
      end
      else begin
        let nb = Bytes.create (2 * Bytes.length c.ib) in
        Bytes.blit c.ib 0 nb 0 c.ilen;
        c.ib <- nb
      end
  in
  let read_conn c =
    let again = ref true in
    while !again && c.oalive do
      ib_room c;
      match Unix.read c.ofd c.ib c.ilen (Bytes.length c.ib - c.ilen) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          again := false
      | exception Unix.Unix_error (e, _, _) ->
          again := false;
          close_conn c (Unix.error_message e)
      | 0 ->
          again := false;
          close_conn c "server closed connection"
      | n ->
          c.ilen <- c.ilen + n;
          let now = Poller.mono_s () in
          oconn_drain c ~on_unit:(settle c now)
    done
  in
  let t_start = Poller.mono_s () in
  let t_end = t_start +. cfg.duration_s in
  let next = ref (t_start +. interarrival ()) in
  let drain_at = ref infinity in
  let rr = ref 0 in
  let running = ref true in
  while !running do
    let now = Poller.mono_s () in
    (* schedule every arrival that is due, even if we are behind: an
       open loop does not slow down because the server did *)
    if now < t_end then
      while !next <= now do
        let c = conns.(!rr mod nconns) in
        incr rr;
        if c.oalive then begin
          let cmd =
            if Util.Xoshiro.float rng < cfg.get_frac then
              Printf.sprintf "get %s\r\n" (key ())
            else Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" (key ()) cfg.value_size value
          in
          oconn_add c cmd;
          Queue.push !next c.inflight;
          incr sent;
          ignore (try_flush c)
        end;
        next := !next +. interarrival ()
      done
    else if !drain_at = infinity then drain_at := now +. grace_s;
    let tnext = if now < t_end then Float.min !next t_end else !drain_at in
    let timeout = Float.max 0.0 (Float.min 0.05 (tnext -. now)) in
    ignore
      ((Poller.wait poller ~timeout_s:timeout (fun fd ~readable ~writable ->
            match Hashtbl.find_opt by_fd fd with
            | None -> ()
            | Some c ->
                if writable then begin
                  c.want_w <- false;
                  ignore (try_flush c)
                end;
                if readable && c.oalive then read_conn c))
      [@montage.allow
        "R5: open-loop generator readiness wait in client tooling; \
         paced by the arrival schedule, not a server thread"]);
    let now = Poller.mono_s () in
    if now >= t_end then begin
      if !drain_at = infinity then drain_at := now +. grace_s;
      let quiesced =
        Array.for_all
          (fun c -> (not c.oalive) || (Queue.is_empty c.inflight && oconn_pending c = 0))
          conns
      in
      if quiesced || now >= !drain_at then running := false
    end
  done;
  Array.iter
    (fun c ->
      if c.oalive then begin
        Poller.remove poller c.ofd;
        (try Unix.close c.ofd with Unix.Unix_error _ -> ());
        (* drain grace expired with these still unanswered *)
        ep_abandoned.(c.ep) <- ep_abandoned.(c.ep) + Queue.length c.inflight
      end)
    conns;
  Poller.close poller;
  {
    od_sent = !sent;
    od_completed = !completed;
    od_errors = !errors;
    od_shard_down = !shard_down;
    od_hits = !hits;
    od_hist = hist;
    od_disconnects = !disconnects;
    od_ep_ops = ep_ops;
    od_ep_errors = ep_errors;
    od_ep_shard_down = ep_shard_down;
    od_ep_abandoned = ep_abandoned;
    od_ep_disconnects = ep_disconnects;
  }

let run_open ?(config = default_config) ?(arrival = Poisson) ?(grace_s = 1.0) ~rate () =
  let cfg = config in
  if rate <= 0.0 then invalid_arg "Loadgen.run_open: rate must be positive";
  let ndomains = max 1 cfg.domains in
  let rate_d = rate /. float_of_int ndomains in
  let t0 = Poller.mono_s () in
  let doms =
    Array.init ndomains (fun did ->
        Domain.spawn (fun () -> run_open_domain cfg ~rate_d ~arrival ~grace_s did))
  in
  let results = Array.map Domain.join doms in
  let seconds = Poller.mono_s () -. t0 in
  let hist = Util.Histogram.create () in
  Array.iter (fun r -> Util.Histogram.merge_into ~dst:hist r.od_hist) results;
  let sum f = Array.fold_left (fun a r -> a + f r) 0 results in
  let sent = sum (fun r -> r.od_sent) in
  let completed = sum (fun r -> r.od_completed) in
  let o_by_endpoint =
    endpoint_rollup (resolved_endpoints cfg) ~results
      ~ops:(fun r -> r.od_ep_ops)
      ~errors:(fun r -> r.od_ep_errors)
      ~shard_down:(fun r -> r.od_ep_shard_down)
      ~abandoned:(fun r -> r.od_ep_abandoned)
      ~disconnects:(fun r -> r.od_ep_disconnects)
  in
  {
    offered_rate = rate;
    achieved_rate = float_of_int completed /. cfg.duration_s;
    sent;
    completed;
    abandoned = sent - completed;
    o_errors = sum (fun r -> r.od_errors);
    o_shard_down_errors = sum (fun r -> r.od_shard_down);
    o_hits = sum (fun r -> r.od_hits);
    o_seconds = seconds;
    o_mean_us = Util.Histogram.mean_ns hist /. 1e3;
    o_p50_us = us hist 0.5;
    o_p95_us = us hist 0.95;
    o_p99_us = us hist 0.99;
    o_disconnects = List.concat_map (fun r -> r.od_disconnects) (Array.to_list results);
    o_by_endpoint;
  }

let arrival_name = function Poisson -> "poisson" | Uniform -> "uniform"

let arrival_of_string = function
  | "poisson" -> Some Poisson
  | "uniform" -> Some Uniform
  | _ -> None

let print_open_report ~label r =
  Benchlib.Report.heading (Printf.sprintf "loadgen open-loop: %s" label);
  Benchlib.Report.table
    ~columns:
      [
        "offered/s"; "achieved/s"; "sent"; "done"; "abandoned"; "errors"; "shard_down";
        "mean_us"; "p50_us"; "p95_us"; "p99_us";
      ]
    ~rows:
      [
        ( label,
          [
            r.offered_rate;
            r.achieved_rate;
            float_of_int r.sent;
            float_of_int r.completed;
            float_of_int r.abandoned;
            float_of_int r.o_errors;
            float_of_int r.o_shard_down_errors;
            r.o_mean_us;
            r.o_p50_us;
            r.o_p95_us;
            r.o_p99_us;
          ] );
      ]
    ~unit_label:"open-loop" ();
  print_endpoint_stats r.o_by_endpoint;
  List.iter
    (fun why ->
      Printf.printf "loadgen: %s: open-loop connection lost: %s\n" label why)
    r.o_disconnects
