/* C stubs for the netserve readiness backend.
 *
 * Three groups:
 *   - Linux epoll (create/ctl/wait), level-triggered, compiled to
 *     "unavailable" reporters on non-Linux hosts so Poller can fall
 *     back to select at runtime instead of failing the build;
 *   - a CLOCK_MONOTONIC reader, so event-loop timers (idle reaping,
 *     drain deadlines, load-generator latency) are immune to
 *     wall-clock jumps;
 *   - an RLIMIT_NOFILE raiser, so C10K scenarios can lift the soft fd
 *     limit up to the hard cap without shelling out to ulimit.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>
#include <time.h>
#include <sys/resource.h>
#include <sys/time.h>

CAMLprim value montage_mono_s(value unit)
{
  struct timespec ts;
  (void) unit;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
#endif
  {
    /* last-resort fallback for hosts without a monotonic clock */
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double) tv.tv_sec + (double) tv.tv_usec * 1e-6);
  }
}

CAMLprim value montage_rlimit_nofile(value vwant)
{
  struct rlimit rl;
  rlim_t want = (rlim_t) Long_val(vwant);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) uerror("getrlimit", Nothing);
  if (want > rl.rlim_cur) {
    rlim_t target = want;
    if (rl.rlim_max != RLIM_INFINITY && target > rl.rlim_max) target = rl.rlim_max;
    if (target > rl.rlim_cur) {
      struct rlimit nrl;
      nrl.rlim_cur = target;
      nrl.rlim_max = rl.rlim_max;
      if (setrlimit(RLIMIT_NOFILE, &nrl) == 0) rl.rlim_cur = target;
    }
  }
  if (rl.rlim_cur == RLIM_INFINITY) return Val_long(1 << 30);
  return Val_long((long) rl.rlim_cur);
}

#ifdef __linux__

#include <sys/epoll.h>

CAMLprim value montage_epoll_available(value unit)
{
  (void) unit;
  return Val_true;
}

CAMLprim value montage_epoll_create(value unit)
{
  int fd;
  (void) unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

/* op: 0 = add, 1 = mod, 2 = del; events: bit 0 = in, bit 1 = out.
 * Level-triggered on purpose: a ready fd the worker could not fully
 * service in one cycle stays ready, and nothing is re-armed per tick. */
CAMLprim value montage_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  struct epoll_event ev;
  int op, bits;
  memset(&ev, 0, sizeof ev);
  bits = Int_val(vevents);
  ev.events = 0;
  if (bits & 1) ev.events |= EPOLLIN;
  if (bits & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev) == -1)
    uerror("epoll_ctl", Nothing);
  return Val_unit;
}

#define MONTAGE_EPOLL_BATCH 1024

/* Fills [vout] with (fd, flags) pairs — flags bit 0 = readable, bit 1
 * = writable (HUP/ERR surface as both, so the worker's read/write
 * path observes the failure) — and returns the pair count.  EINTR is
 * reported as zero events, like a timeout. */
CAMLprim value montage_epoll_wait(value vep, value vtimeout_ms, value vout)
{
  CAMLparam3(vep, vtimeout_ms, vout);
  struct epoll_event evs[MONTAGE_EPOLL_BATCH];
  int maxevents, n, i;
  maxevents = (int) (Wosize_val(vout) / 2);
  if (maxevents > MONTAGE_EPOLL_BATCH) maxevents = MONTAGE_EPOLL_BATCH;
  if (maxevents < 1) maxevents = 1;
  caml_enter_blocking_section();
  n = epoll_wait(Int_val(vep), evs, maxevents, Int_val(vtimeout_ms));
  caml_leave_blocking_section();
  if (n == -1) {
    if (errno == EINTR) CAMLreturn(Val_int(0));
    uerror("epoll_wait", Nothing);
  }
  for (i = 0; i < n; i++) {
    int flags = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)) flags |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) flags |= 2;
    Field(vout, 2 * i) = Val_int(evs[i].data.fd);
    Field(vout, 2 * i + 1) = Val_int(flags);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__ */

CAMLprim value montage_epoll_available(value unit)
{
  (void) unit;
  return Val_false;
}

CAMLprim value montage_epoll_create(value unit)
{
  (void) unit;
  caml_failwith("epoll is not available on this platform");
}

CAMLprim value montage_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  (void) vep; (void) vop; (void) vfd; (void) vevents;
  caml_failwith("epoll is not available on this platform");
}

CAMLprim value montage_epoll_wait(value vep, value vtimeout_ms, value vout)
{
  (void) vep; (void) vtimeout_ms; (void) vout;
  caml_failwith("epoll is not available on this platform");
}

#endif
