(** Sharded TCP front end serving the memcached text protocol over
    {!Kvstore.Store}.

    [workers] event-loop domains share one nonblocking listening
    socket (kernel-balanced accept sharding); worker [w] owns Montage
    thread id [w], so epoch hooks and per-thread persist buffers stay
    thread-local.  Each worker multiplexes its connections through a
    pluggable readiness backend ({!Poller}: Linux epoll by default,
    [Unix.select] as the portable fallback) and only touches ready
    connections: reads feed the protocol codec, the replies of a
    readiness cycle flush with one batched write per dirty connection
    (O(active), not O(connections)), pending-output high-water marks
    pause reads (backpressure), and idle/slow clients are reaped by a
    periodic monotonic-clock sweep.  Poller interest changes only on
    state transitions, so idle connections cost nothing per tick on
    epoll.

    {!shutdown} drains gracefully — stop accepting, serve until the
    clients disconnect or [drain_timeout_s] passes, join the workers —
    and {e then} runs the epoch-sync hook, so every acked reply is
    inside the durable frontier a post-shutdown crash recovers. *)

type config = {
  host : string;
  port : int;  (** 0 = kernel-assigned; read it back with {!port} *)
  workers : int;
  backlog : int;
  max_conns : int;  (** per worker *)
  read_chunk : int;
  out_hwm : int;  (** pause reads above this many pending output bytes *)
  idle_timeout_s : float;  (** 0. = never *)
  drain_timeout_s : float;
  tick_s : float;  (** poll timeout: stop/timeout poll granularity *)
  max_line : int;  (** protocol command-line cap *)
  max_value : int;  (** protocol data-block cap *)
  poller : Poller.kind option;
      (** [None] = [MONTAGE_POLLER] env var, else epoll when available *)
}

(** Port 11211 on 127.0.0.1, 2 workers, 16384 conns/worker, 1 MiB
    output high-water mark, 60 s idle timeout, 5 s drain timeout,
    auto-detected poller. *)
val default_config : config

type drain_stats = {
  drained_conns : int;  (** connections open when shutdown began *)
  forced_closes : int;  (** still open at the drain deadline *)
  drain_s : float;
  sync_s : float;
  persisted_epoch : int;  (** durable frontier after the sync; -1 without hooks *)
}

type t

(** Bind, listen and spawn the worker domains.  [sync] is called once
    after the workers have joined (graceful shutdown's durability
    barrier — pass [Epoch_sys.sync esys] for a Montage-backed store);
    [persisted_epoch] reports the durable frontier for
    {!drain_stats}.  The store's backend must accept tids
    [0 .. workers-1].
    @raise Unix.Unix_error when the bind fails. *)
val start :
  ?config:config ->
  ?sync:(tid:int -> unit) ->
  ?persisted_epoch:(unit -> int) ->
  Kvstore.Store.t ->
  t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

(** The readiness backend the workers are running on. *)
val poller_kind : t -> Poller.kind

(** Graceful shutdown: stop accepting, drain, join workers, sync.
    Idempotent — later calls return the first result. *)
val shutdown : t -> drain_stats

(** Aggregate lifetime counters across workers:
    [(connections_accepted, bytes_in, bytes_out, commands)]. *)
val totals : t -> int * int * int * int

(** The readiness backend abstraction (select / epoll). *)
module Poller = Poller

(** The companion load generator (closed-loop and open-loop). *)
module Loadgen = Loadgen
