(* Pluggable readiness backend for the netserve event loop.

   Two implementations behind one interest-set API:

   - [Epoll] (Linux, via epoll_stubs.c): the kernel holds the interest
     set, so a wait costs O(ready) regardless of how many tracked
     connections are idle.  Level-triggered — an fd the caller could
     not fully service stays ready — and [set] issues a syscall only
     when the desired interest actually differs from what the kernel
     already holds, so steady-state idle connections cost zero
     bookkeeping per tick.
   - [Select] (portable fallback): the interest set lives in a
     hashtable that every [wait] folds into fd lists for
     [Unix.select].  Inherently O(tracked) per tick and limited to fd
     numbers below FD_SETSIZE (1024); [set] reports [EINVAL] beyond
     that so the caller can refuse the connection instead of dying
     mid-loop.

   The backend is chosen per worker at startup: an explicit
   [config.poller], else [MONTAGE_POLLER=epoll|select], else epoll
   when the platform has it.

   This module also hosts the event loop's clock ([mono_s], immune to
   wall-clock jumps) and the RLIMIT_NOFILE raiser C10K scenarios use. *)

type kind = Select | Epoll

external epoll_available_stub : unit -> bool = "montage_epoll_available"
external epoll_create_stub : unit -> int = "montage_epoll_create"
external epoll_ctl_stub : int -> int -> int -> int -> unit = "montage_epoll_ctl"
external epoll_wait_stub : int -> int -> int array -> int = "montage_epoll_wait"
external mono_s : unit -> float = "montage_mono_s"
external raise_fd_limit : int -> int = "montage_rlimit_nofile"

let epoll_available = epoll_available_stub ()

let kind_name = function Select -> "select" | Epoll -> "epoll"

let kind_of_string = function
  | "select" -> Some Select
  | "epoll" -> Some Epoll
  | _ -> None

(* MONTAGE_POLLER if set (an explicit [epoll] on a platform without it
   fails loudly at [create]); otherwise the best the platform has. *)
let kind_of_env () =
  match Option.bind (Sys.getenv_opt "MONTAGE_POLLER") kind_of_string with
  | Some k -> k
  | None -> if epoll_available then Epoll else Select

(* [Unix.file_descr] is an int on every Unix OCaml port; epoll events
   travel through int arrays, so convert at this one seam. *)
let fd_int : Unix.file_descr -> int = Obj.magic
let int_fd : int -> Unix.file_descr = Obj.magic

let select_fd_limit = 1024

(* Per-wait event batch: (fd, flags) pairs.  Level-triggered pollers
   re-report anything left ready, so a full batch just spills into the
   next wait. *)
let batch = 512

type t =
  | Sel of (Unix.file_descr, int) Hashtbl.t  (* fd -> interest bits *)
  | Ep of { epfd : int; interest : (int, int) Hashtbl.t; buf : int array }

let create ?(hint = 1024) kind =
  match kind with
  | Select -> Sel (Hashtbl.create (min hint select_fd_limit))
  | Epoll ->
      Ep
        {
          epfd = epoll_create_stub ();
          interest = Hashtbl.create hint;
          buf = Array.make (2 * batch) 0;
        }

let kind = function Sel _ -> Select | Ep _ -> Epoll

let bits ~read ~write = (if read then 1 else 0) lor (if write then 2 else 0)

let set t fd ~read ~write =
  let b = bits ~read ~write in
  match t with
  | Sel interest ->
      if fd_int fd >= select_fd_limit then
        raise (Unix.Unix_error (Unix.EINVAL, "select", "fd beyond FD_SETSIZE"));
      if b = 0 then Hashtbl.remove interest fd
      else if Hashtbl.find_opt interest fd <> Some b then Hashtbl.replace interest fd b
  | Ep { epfd; interest; _ } -> (
      let i = fd_int fd in
      match Hashtbl.find_opt interest i with
      | Some cur when cur = b -> ()
      | Some _ ->
          if b = 0 then begin
            epoll_ctl_stub epfd 2 i 0;
            Hashtbl.remove interest i
          end
          else begin
            epoll_ctl_stub epfd 1 i b;
            Hashtbl.replace interest i b
          end
      | None ->
          if b <> 0 then begin
            epoll_ctl_stub epfd 0 i b;
            Hashtbl.replace interest i b
          end)

let remove t fd =
  match t with
  | Sel interest -> Hashtbl.remove interest fd
  | Ep { epfd; interest; _ } ->
      let i = fd_int fd in
      if Hashtbl.mem interest i then begin
        Hashtbl.remove interest i;
        (* tolerate an fd the kernel already dropped (caller closed it
           first, or it was never registered) *)
        try epoll_ctl_stub epfd 2 i 0 with Unix.Unix_error _ | Failure _ -> ()
      end

let tracked = function
  | Sel interest -> Hashtbl.length interest
  | Ep { interest; _ } -> Hashtbl.length interest

let wait t ~timeout_s cb =
  match t with
  | Sel interest -> (
      let rds = ref [] and wrs = ref [] in
      Hashtbl.iter
        (fun fd b ->
          if b land 1 <> 0 then rds := fd :: !rds;
          if b land 2 <> 0 then wrs := fd :: !wrs)
        interest;
      match Unix.select !rds !wrs [] timeout_s with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | readable, writable, _ ->
          (* writables first: pending output drains before fresh reads
             pile more on *)
          List.iter (fun fd -> cb fd ~readable:false ~writable:true) writable;
          List.iter (fun fd -> cb fd ~readable:true ~writable:false) readable;
          List.length readable + List.length writable)
  | Ep { epfd; buf; _ } ->
      let timeout_ms =
        if timeout_s < 0.0 then -1
        else int_of_float (Float.ceil (timeout_s *. 1000.0))
      in
      let n = epoll_wait_stub epfd timeout_ms buf in
      for i = 0 to n - 1 do
        let ev = buf.((2 * i) + 1) in
        cb (int_fd buf.(2 * i)) ~readable:(ev land 1 <> 0) ~writable:(ev land 2 <> 0)
      done;
      n

let close t =
  match t with
  | Sel interest -> Hashtbl.reset interest
  | Ep { epfd; interest; _ } ->
      Hashtbl.reset interest;
      (try Unix.close (int_fd epfd) with Unix.Unix_error _ -> ())
