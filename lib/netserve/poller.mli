(** Pluggable readiness backend for the {!Netserve} event loop: a
    Linux [epoll] implementation (level-triggered, kernel-held
    interest set, O(ready) waits) and a portable [Unix.select]
    fallback (user-held interest set, O(tracked) waits, fd numbers
    below FD_SETSIZE only).

    Interest is an upsert per fd ({!set}); implementations skip the
    syscall when the requested interest matches what is already
    registered, so callers may re-assert interest every cycle and
    steady-state (idle) connections still cost nothing per tick. *)

type kind = Select | Epoll

(** Whether the platform has epoll (Linux). *)
val epoll_available : bool

(** FD_SETSIZE: the select backend cannot track fd numbers at or
    beyond this. *)
val select_fd_limit : int

val kind_name : kind -> string
val kind_of_string : string -> kind option

(** [MONTAGE_POLLER=epoll|select] if set, else {!Epoll} when available,
    else {!Select}.  An explicit [epoll] on a platform without it is
    honored and fails at {!create}. *)
val kind_of_env : unit -> kind

type t

(** [hint] sizes the interest table. *)
val create : ?hint:int -> kind -> t

val kind : t -> kind

(** Upsert the interest for [fd].  [read:false write:false]
    deregisters it.  No-op when the registered interest already
    matches.
    @raise Unix.Unix_error [EINVAL] on the select backend for fd
    numbers at or beyond FD_SETSIZE (1024) — refuse the connection
    rather than poisoning the event loop. *)
val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit

(** Forget [fd] entirely.  Safe on fds never registered or already
    closed. *)
val remove : t -> Unix.file_descr -> unit

(** Number of fds currently registered. *)
val tracked : t -> int

(** Block up to [timeout_s] (negative = forever) and invoke the
    callback once per ready fd event; returns the event count.  The
    select backend may report one fd through two callbacks (readable
    and writable separately).  EINTR returns 0, like a timeout. *)
val wait :
  t ->
  timeout_s:float ->
  (Unix.file_descr -> readable:bool -> writable:bool -> unit) ->
  int

(** Release the backend (the epoll fd, the interest table).  The
    caller owns the registered fds; they are not closed. *)
val close : t -> unit

(** Monotonic clock in seconds (CLOCK_MONOTONIC) — the event loop's
    time base for idle timeouts, drain deadlines and load-generator
    latency, immune to wall-clock jumps. *)
val mono_s : unit -> float

(** [raise_fd_limit n] raises the soft RLIMIT_NOFILE toward [n]
    (clamped to the hard limit) and returns the resulting soft limit.
    Never lowers it. *)
val raise_fd_limit : int -> int
