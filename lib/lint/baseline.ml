(* Baseline file: one finding key per line (see [Rule.key]), '#'
   comments, duplicate lines meaning "this key may occur that many
   times".  The diff is a multiset comparison, so grandfathering three
   occurrences of the same defect does not hide a fourth. *)

type t = (string, int) Hashtbl.t

let load path : t =
  let tbl = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in path in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           Hashtbl.replace tbl line
             (1 + Option.value ~default:0 (Hashtbl.find_opt tbl line))
       done
     with End_of_file -> ());
    close_in ic
  end;
  tbl

let header =
  "# Montalint baseline: pre-existing findings grandfathered so CI fails\n\
   # only on new ones.  One [Rule.key] per line (rule|file|binding|detail);\n\
   # duplicates count occurrences.  Refresh deliberately with:\n\
   #   dune exec bin/montalint.exe -- --update-baseline\n\
   # The goal is to keep this file empty: fix the finding or annotate it\n\
   # with a justified suppression instead of baselining it.\n"

let save path findings =
  let oc = open_out path in
  output_string oc header;
  List.iter
    (fun f -> output_string oc (Rule.key f ^ "\n"))
    (List.sort (fun a b -> compare (Rule.key a) (Rule.key b)) findings);
  close_out oc

(* Partition current findings into (new, grandfathered); also report
   stale baseline keys that no longer occur. *)
let diff (t : t) findings =
  let remaining = Hashtbl.copy t in
  let fresh =
    List.filter
      (fun f ->
        let k = Rule.key f in
        match Hashtbl.find_opt remaining k with
        | Some n when n > 0 ->
            Hashtbl.replace remaining k (n - 1);
            false
        | _ -> true)
      findings
  in
  let stale =
    Hashtbl.fold (fun k n acc -> if n > 0 then (k, n) :: acc else acc) remaining []
    |> List.sort compare
  in
  (fresh, stale)
