(* The Montalint analysis engine: loads a .cmt produced by dune
   (compiler-libs [Cmt_format]) and walks the typedtree with a
   [Tast_iterator], emitting [Rule.finding]s for the five Montage rule
   families.  See DESIGN.md, "Montalint" for the rule semantics; the
   short version of the heuristics encoded here:

   - R1 considers a mutable write "guarded" when it is lexically inside
     the thunk of a with-lock combinator, or when the enclosing
     top-level binding performs a lock acquire anywhere in its body
     (this codebase's idiom is acquire-at-entry), or when the written
     field / ref carries [@montage.guarded_by "lock"] or
     [@montage.thread_local].  Local refs (let-bound inside a function)
     are never flagged; only module-level refs and record fields are.
   - R2 requires the enclosing top-level binding of any direct
     [Atomic.*] access to also contain a [Util.Sched.yield]/[await]/
     [active] call, so the deterministic scheduler sees a scheduling
     point whenever the binding touches shared atomics.
   - R3 flags stores whose value's type mentions [Epoch_sys.pblk] into
     module-level mutable state ([:=] on a toplevel ref, [r.f <- p] on
     a toplevel record, [Hashtbl.add/replace] on a toplevel table).
   - R4 flags [assert false] and [failwith _] literally.
   - R5 flags [Unix.select]/[Unix.sleepf]/[Unix.sleep]/[Mutex.lock].

   Suppressions: [@montage.allow "Rn: justification"] on an expression,
   [@@montage.allow ...] on a value binding, or [@@@montage.allow ...]
   at the top of a file.  A suppression whose payload is not of the
   form "Rn: <non-empty justification>" is itself reported (R0) —
   justifications are mandatory.  [@@@montage.scope "r1 r2 ..."]
   overrides the path-based rule scoping for a file (used by the lint
   fixture corpus, which lives outside lib/). *)

type scope = {
  r1 : bool;
  r2 : bool;
  r3 : bool;
  r4 : bool;
  r5 : bool;
}

let scope_none = { r1 = false; r2 = false; r3 = false; r4 = false; r5 = false }

(* Path-based defaults, mirroring which libraries are domain-shared
   (R1) and Dsched-instrumented (R2).  [file] is the repo-relative
   source path recorded in the .cmt. *)
let default_scope file =
  let has_prefix p = String.length file >= String.length p
                     && String.sub file 0 (String.length p) = p in
  let shared =
    List.exists has_prefix
      [ "lib/core/"; "lib/nvm/"; "lib/pstructs/"; "lib/netserve/" ]
  in
  let sched =
    List.exists has_prefix [ "lib/core/"; "lib/pstructs/"; "lib/util/" ]
  in
  {
    r1 = shared;
    r2 = sched;
    r3 = file <> "lib/core/epoch_sys.ml";
    r4 = has_prefix "lib/";
    (* the server event loops and their readiness backend ARE the
       blocking point by design — netserve's worker loops, the poller,
       and the cluster router's single multiplexed domain; everything
       else must justify one *)
    r5 =
      file <> "lib/netserve/netserve.ml"
      && file <> "lib/netserve/poller.ml"
      && file <> "lib/cluster/router.ml";
  }

(* ---- attribute helpers ---- *)

let attr_payload_string (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let is_attr name (a : Parsetree.attribute) = a.attr_name.txt = name

(* "R4: reason" -> Ok (R4, reason); anything else -> Error message. *)
let parse_allow_payload s =
  match String.index_opt s ':' with
  | Some i when i > 0 ->
      let rule = String.trim (String.sub s 0 i) in
      let just = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      (match Rule.of_string rule with
      | Some r when just <> "" -> Ok (r, just)
      | Some _ -> Error "empty justification"
      | None -> Error (Printf.sprintf "unknown rule %S" rule))
  | _ -> Error "expected \"Rn: justification\""

(* ---- path helpers ---- *)

(* Normalize a [Path.t] into components, splitting dune's mangled unit
   names ("Montage__Epoch_sys" -> ["Montage"; "Epoch_sys"]). *)
let path_components p =
  let split_mangled s =
    let parts = ref [] and start = ref 0 and n = String.length s in
    let i = ref 0 in
    while !i < n - 1 do
      if s.[!i] = '_' && s.[!i + 1] = '_' then begin
        parts := String.sub s !start (!i - !start) :: !parts;
        i := !i + 2;
        start := !i
      end
      else incr i
    done;
    parts := String.sub s !start (n - !start) :: !parts;
    List.filter (fun s -> s <> "") (List.rev !parts)
  in
  String.split_on_char '.' (Path.name p)
  |> List.concat_map split_mangled

let path_ends_with p suffix =
  let comps = path_components p in
  let lc = List.length comps and ls = List.length suffix in
  lc >= ls
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop (lc - ls) comps = suffix

(* ---- type helpers (R3) ---- *)

let rec type_mentions_pblk ty =
  match Types.get_desc ty with
  | Tconstr (p, args, _) ->
      (match List.rev (path_components p) with
      | last :: prev :: _ -> last = "pblk" && prev = "Epoch_sys"
      | _ -> false)
      || List.exists type_mentions_pblk args
  | Tarrow (_, a, b, _) -> type_mentions_pblk a || type_mentions_pblk b
  | Ttuple l -> List.exists type_mentions_pblk l
  | _ -> false

(* ---- recognized call sets ---- *)

let atomic_ops =
  [ "get"; "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr"; "decr" ]

let is_atomic_op p =
  List.exists (fun op -> path_ends_with p [ "Atomic"; op ]) atomic_ops

let is_sched_call p =
  List.exists (fun f -> path_ends_with p [ "Sched"; f ]) [ "yield"; "await"; "active" ]

(* Write-guarding acquires: read-side acquires are deliberately absent
   (a read lock does not license a write). *)
let lock_acquires =
  [
    [ "Spin_lock"; "acquire" ];
    [ "Spin_lock"; "try_acquire" ];
    [ "Spin_lock"; "with_lock" ];
    [ "Mutex"; "lock" ];
    [ "Mutex"; "try_lock" ];
    [ "Rw_lock"; "write_acquire" ];
    [ "Rw_lock"; "with_write" ];
  ]

let is_lock_acquire p = List.exists (path_ends_with p) lock_acquires

(* Combinators whose function argument runs with the lock held. *)
let with_lock_combinators =
  [
    [ "Spin_lock"; "with_lock" ];
    [ "Rw_lock"; "with_write" ];
    [ "Mutex"; "protect" ];
  ]

let is_with_lock p = List.exists (path_ends_with p) with_lock_combinators

let blocking_calls =
  [
    ([ "Unix"; "select" ], "Unix.select");
    ([ "Unix"; "sleepf" ], "Unix.sleepf");
    ([ "Unix"; "sleep" ], "Unix.sleep");
    ([ "Mutex"; "lock" ], "Mutex.lock");
    (* the event-loop readiness wait (select or epoll_wait underneath):
       the one place a netserve worker is allowed to block *)
    ([ "Poller"; "wait" ], "Netserve.Poller.wait");
  ]

let blocking_call p =
  List.find_map
    (fun (suffix, name) -> if path_ends_with p suffix then Some name else None)
    blocking_calls

let hashtbl_stores = [ [ "Hashtbl"; "add" ]; [ "Hashtbl"; "replace" ] ]
let is_hashtbl_store p = List.exists (path_ends_with p) hashtbl_stores

(* ---- analysis state ---- *)

type ctx = {
  file : string;
  scope : scope;
  mutable findings : Rule.finding list;
  (* names of module-level value bindings in this unit, with their
     binding attributes (for refs: thread_local / guarded_by live on
     the let that creates the ref) *)
  toplevel : (string, Parsetree.attributes) Hashtbl.t;
  mutable binding : string;  (* enclosing top-level binding name *)
  mutable binding_has_sched : bool;
  mutable binding_has_lock : bool;
  mutable in_lock : bool;  (* lexically inside a with-lock thunk *)
  mutable suppress : (Rule.id * string) list;  (* active allows *)
  mutable file_suppress : Rule.id list;
}

let emit ctx rule (loc : Location.t) ~detail ~hint =
  let suppressed =
    List.mem rule ctx.file_suppress
    || List.exists (fun (r, _) -> r = rule) ctx.suppress
  in
  if not suppressed then
    ctx.findings <-
      {
        Rule.rule;
        file = ctx.file;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        context = ctx.binding;
        detail;
        hint;
      }
      :: ctx.findings

let enabled ctx = function
  | Rule.R0 -> true
  | R1 -> ctx.scope.r1
  | R2 -> ctx.scope.r2
  | R3 -> ctx.scope.r3
  | R4 -> ctx.scope.r4
  | R5 -> ctx.scope.r5

let check ctx rule loc ~detail ~hint = if enabled ctx rule then emit ctx rule loc ~detail ~hint

(* Validate an annotation and return the suppressions it activates.
   Malformed annotations are themselves findings (R0). *)
let suppressions_of_attrs ctx (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if is_attr "montage.allow" a then
        match attr_payload_string a with
        | Some s -> (
            match parse_allow_payload s with
            | Ok (r, why) -> Some (r, why)
            | Error e ->
                emit ctx R0 a.attr_loc
                  ~detail:(Printf.sprintf "malformed [@montage.allow]: %s" e)
                  ~hint:"write [@montage.allow \"Rn: why this is safe\"]";
                None)
        | None ->
            emit ctx R0 a.attr_loc
              ~detail:"[@montage.allow] without a string payload"
              ~hint:"write [@montage.allow \"Rn: why this is safe\"]";
            None
      else if is_attr "montage.guarded_by" a then (
        (match attr_payload_string a with
        | Some s when String.trim s <> "" -> ()
        | _ ->
            emit ctx R0 a.attr_loc
              ~detail:"[@montage.guarded_by] without a lock name"
              ~hint:"name the guarding lock: [@montage.guarded_by \"t.lock\"]");
        None)
      else None)
    attrs

(* Does a field / binding attribute list mark the target as safely
   owned?  guarded_by must carry a (validated elsewhere) lock name. *)
let owned_attrs (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      is_attr "montage.thread_local" a
      || (is_attr "montage.guarded_by" a
         &&
         match attr_payload_string a with
         | Some s -> String.trim s <> ""
         | None -> false))
    attrs

(* Is [e] a reference to module-level state?  [Pdot] is a value of
   another module; a [Pident] counts when it names one of this unit's
   own top-level bindings. *)
let module_level ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pdot _, _, _) -> true
  | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem ctx.toplevel (Ident.name id)
  | _ -> false

let toplevel_attrs ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      match Hashtbl.find_opt ctx.toplevel (Ident.name id) with
      | Some attrs -> attrs
      | None -> [])
  | _ -> []

let pat_vars (p : Typedtree.pattern) =
  let acc = ref [] in
  let rec go (p : Typedtree.pattern) =
    match p.pat_desc with
    | Tpat_var (id, _) -> acc := Ident.name id :: !acc
    | Tpat_alias (q, id, _) ->
        acc := Ident.name id :: !acc;
        go q
    | Tpat_tuple l -> List.iter go l
    | Tpat_record (fields, _) -> List.iter (fun (_, _, q) -> go q) fields
    | Tpat_construct (_, _, l, _) -> List.iter go l
    | Tpat_array l -> List.iter go l
    | Tpat_or (a, b, _) ->
        go a;
        go b
    | _ -> ()
  in
  go p;
  !acc

(* ---- per-binding pre-scan: does the body contain a Sched hook / a
   lock acquire anywhere? ---- *)

exception Found

let expr_contains pred (e : Typedtree.expression) =
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> if pred p then raise Found
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  try
    it.expr it e;
    false
  with Found -> true

(* ---- the main walk ---- *)

let iterator ctx =
  let open Tast_iterator in
  let check_expr (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_setfield (obj, _, ld, v) ->
        if
          enabled ctx R1
          && (not ctx.in_lock)
          && (not ctx.binding_has_lock)
          && not (owned_attrs ld.lbl_attributes)
        then
          check ctx R1 e.exp_loc
            ~detail:(Printf.sprintf "unguarded write to mutable field %S" ld.lbl_name)
            ~hint:
              "hold the owning lock, or annotate the field \
               [@montage.guarded_by \"lock\"] / [@montage.thread_local]";
        if enabled ctx R3 && module_level ctx obj && type_mentions_pblk v.exp_type
        then
          check ctx R3 e.exp_loc
            ~detail:
              (Printf.sprintf "pblk stored into module-level field %S" ld.lbl_name)
            ~hint:
              "payload handles must not outlive the operation that \
               obtained them; store the encoded bytes or re-resolve the \
               handle per operation"
    | Texp_assert ({ exp_desc = Texp_construct (_, c, _); _ }, _)
      when c.cstr_name = "false" ->
        check ctx R4 e.exp_loc ~detail:"bare assert false"
          ~hint:"raise Errors.corrupt \"<structure>: <violated invariant>\""
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        (* R4: failwith *)
        if path_ends_with p [ "Stdlib"; "failwith" ] then
          check ctx R4 e.exp_loc ~detail:"bare failwith"
            ~hint:"raise Errors.corrupt or a typed exception instead";
        (* R2: direct atomic access *)
        if enabled ctx R2 && is_atomic_op p && not ctx.binding_has_sched then
          check ctx R2 e.exp_loc
            ~detail:
              (Printf.sprintf "Atomic.%s in a binding with no Util.Sched hook"
                 (List.nth (path_components p)
                    (List.length (path_components p) - 1)))
            ~hint:
              "add a Util.Sched.yield/await scheduling point to this \
               binding so Dsched can interleave it, or suppress with a \
               justified [@montage.allow \"R2: ...\"]";
        (* R5: blocking calls *)
        (match blocking_call p with
        | Some name ->
            check ctx R5 e.exp_loc
              ~detail:(Printf.sprintf "blocking call %s" name)
              ~hint:
                "blocking waits belong to the netserve event loop; use \
                 Util.Sched.await / Spin_lock, or suppress with a \
                 justified [@montage.allow \"R5: ...\"]"
        | None -> ());
        (* R1 on refs: x := e / incr x / decr x, module-level x only *)
        let ref_write =
          path_ends_with p [ "Stdlib"; ":=" ]
          || path_ends_with p [ "Stdlib"; "incr" ]
          || path_ends_with p [ "Stdlib"; "decr" ]
        in
        (match (ref_write, args) with
        | true, (_, Some lhs) :: _ when module_level ctx lhs ->
            let name =
              match lhs.exp_desc with
              | Texp_ident (q, _, _) -> Path.last q
              | _ -> "?"
            in
            if
              enabled ctx R1
              && (not ctx.in_lock)
              && (not ctx.binding_has_lock)
              && not (owned_attrs (toplevel_attrs ctx lhs))
            then
              check ctx R1 e.exp_loc
                ~detail:
                  (Printf.sprintf "unguarded write to module-level ref %S" name)
                ~hint:
                  "hold the owning lock, use Atomic, or annotate the \
                   binding [@@montage.guarded_by \"lock\"] / \
                   [@@montage.thread_local]";
            (* R3 on refs: cache := Some pblk *)
            (match args with
            | _ :: (_, Some v) :: _
              when enabled ctx R3
                   && path_ends_with p [ "Stdlib"; ":=" ]
                   && type_mentions_pblk v.exp_type ->
                check ctx R3 e.exp_loc
                  ~detail:
                    (Printf.sprintf "pblk stored into module-level ref %S" name)
                  ~hint:
                    "payload handles must not outlive the operation that \
                     obtained them; store the encoded bytes or re-resolve \
                     the handle per operation"
            | _ -> ())
        | _ -> ());
        (* R3 via Hashtbl.add/replace into a module-level table *)
        match (is_hashtbl_store p, args) with
        | true, (_, Some tbl) :: rest when enabled ctx R3 && module_level ctx tbl ->
            if
              List.exists
                (fun (_, a) ->
                  match a with
                  | Some (v : Typedtree.expression) -> type_mentions_pblk v.exp_type
                  | None -> false)
                rest
            then
              check ctx R3 e.exp_loc
                ~detail:"pblk stored into module-level hash table"
                ~hint:
                  "payload handles must not outlive the operation that \
                   obtained them; key the table by uid/bytes instead"
        | _ -> ())
    | _ -> ()
  in
  let expr sub (e : Typedtree.expression) =
    let saved_suppress = ctx.suppress in
    ctx.suppress <- suppressions_of_attrs ctx e.exp_attributes @ ctx.suppress;
    check_expr e;
    (match e.exp_desc with
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as f), args)
      when is_with_lock p ->
        sub.expr sub f;
        let saved_lock = ctx.in_lock in
        ctx.in_lock <- true;
        List.iter (fun (_, a) -> Option.iter (sub.expr sub) a) args;
        ctx.in_lock <- saved_lock
    | _ -> default_iterator.expr sub e);
    ctx.suppress <- saved_suppress
  in
  let structure_item sub (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let saved_binding = ctx.binding in
            let saved_sched = ctx.binding_has_sched in
            let saved_lock = ctx.binding_has_lock in
            let saved_suppress = ctx.suppress in
            (match pat_vars vb.vb_pat with
            | name :: _ -> ctx.binding <- name
            | [] -> ());
            ctx.binding_has_sched <- expr_contains is_sched_call vb.vb_expr;
            ctx.binding_has_lock <- expr_contains is_lock_acquire vb.vb_expr;
            ctx.suppress <-
              suppressions_of_attrs ctx vb.vb_attributes @ ctx.suppress;
            sub.expr sub vb.vb_expr;
            ctx.binding <- saved_binding;
            ctx.binding_has_sched <- saved_sched;
            ctx.binding_has_lock <- saved_lock;
            ctx.suppress <- saved_suppress)
          vbs
    | _ -> default_iterator.structure_item sub item
  in
  { default_iterator with expr; structure_item }

(* Collect module-level binding names (including inside submodules —
   they are module state too) with their attributes. *)
let rec collect_toplevel ctx (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              List.iter
                (fun name -> Hashtbl.replace ctx.toplevel name vb.vb_attributes)
                (pat_vars vb.vb_pat))
            vbs
      | Tstr_module mb -> collect_toplevel_mod ctx mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun (mb : Typedtree.module_binding) -> collect_toplevel_mod ctx mb.mb_expr) mbs
      | _ -> ())
    str.str_items

and collect_toplevel_mod ctx (m : Typedtree.module_expr) =
  match m.mod_desc with
  | Tmod_structure s -> collect_toplevel ctx s
  | Tmod_constraint (me, _, _, _) -> collect_toplevel_mod ctx me
  | Tmod_functor (_, me) -> collect_toplevel_mod ctx me
  | _ -> ()

(* File-level floating attributes: [@@@montage.allow "..."] and
   [@@@montage.scope "r1 r2"]. *)
let file_directives ctx (str : Typedtree.structure) =
  let scope = ref None in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_attribute a ->
          if is_attr "montage.allow" a then
            ctx.file_suppress <-
              (List.map fst (suppressions_of_attrs ctx [ a ])) @ ctx.file_suppress
          else if is_attr "montage.scope" a then (
            match attr_payload_string a with
            | Some s ->
                let tokens =
                  String.split_on_char ' ' s
                  |> List.concat_map (String.split_on_char ',')
                  |> List.filter (fun t -> t <> "")
                in
                let has t = List.mem t tokens in
                scope :=
                  Some
                    {
                      r1 = has "r1";
                      r2 = has "r2";
                      r3 = has "r3";
                      r4 = has "r4";
                      r5 = has "r5";
                    }
            | None ->
                emit ctx R0 a.attr_loc
                  ~detail:"[@@@montage.scope] without a string payload"
                  ~hint:"write [@@@montage.scope \"r1 r2\"]")
      | _ -> ())
    str.str_items;
  !scope

(* ---- entry points ---- *)

let lint_structure ~file (str : Typedtree.structure) =
  let ctx =
    {
      file;
      scope = default_scope file;
      findings = [];
      toplevel = Hashtbl.create 64;
      binding = "<module>";
      binding_has_sched = false;
      binding_has_lock = false;
      in_lock = false;
      suppress = [];
      file_suppress = [];
    }
  in
  (* Directives first: a [@@@montage.scope] attribute replaces the
     path-based classification for the whole file. *)
  let ctx =
    match file_directives ctx str with
    | Some scope -> { ctx with scope }
    | None -> ctx
  in
  collect_toplevel ctx str;
  let it = iterator ctx in
  it.structure it str;
  List.sort Rule.compare_position ctx.findings

(* Returns [None] for cmts that are not implementations (packs,
   interfaces) or that have no source file recorded. *)
let lint_cmt path =
  let cmt = Cmt_format.read_cmt path in
  match (cmt.cmt_annots, cmt.cmt_sourcefile) with
  | Cmt_format.Implementation str, Some src
    when Filename.check_suffix src ".ml" ->
      Some (src, lint_structure ~file:src str)
  | _ -> None
