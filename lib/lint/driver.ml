(* Directory scanning and reporting for montalint.  The scanner walks
   build trees for the .cmt files dune already produces (both library
   .objs and executable .eobjs), lints each implementation once (keyed
   by source path — a module compiled into both a library and an
   executable is linted once), and diffs the result against the
   checked-in baseline. *)

let rec find_cmts acc dir =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then find_cmts acc path
          else if Filename.check_suffix name ".cmt" then path :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

type result = {
  files : int;  (* implementations linted *)
  findings : Rule.finding list;
}

let scan roots =
  let cmts = List.fold_left find_cmts [] roots |> List.sort compare in
  let seen = Hashtbl.create 64 in
  let files = ref 0 and findings = ref [] in
  List.iter
    (fun path ->
      match Engine.lint_cmt path with
      | Some (src, fs) when not (Hashtbl.mem seen src) ->
          Hashtbl.add seen src ();
          incr files;
          findings := fs @ !findings
      | Some _ | None -> ()
      | exception Cmt_format.Error _ -> ()
      | exception Sys_error _ -> ())
    cmts;
  { files = !files; findings = List.sort Rule.compare_position !findings }

let by_rule findings =
  List.map
    (fun r -> (r, List.length (List.filter (fun f -> f.Rule.rule = r) findings)))
    Rule.all

let summary { files; findings } =
  let counts =
    by_rule findings
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (r, n) -> Printf.sprintf "%s:%d" (Rule.to_string r) n)
  in
  Printf.sprintf "montalint: %d files, %d findings%s" files
    (List.length findings)
    (if counts = [] then "" else " (" ^ String.concat " " counts ^ ")")

(* Run against a baseline; prints new findings and stale baseline
   entries, returns the exit code (0 iff no new findings). *)
let report ?(out = stdout) ~baseline_file result =
  let base = Baseline.load baseline_file in
  let fresh, stale = Baseline.diff base result.findings in
  List.iter (fun f -> output_string out (Rule.render f ^ "\n")) fresh;
  List.iter
    (fun (k, n) ->
      Printf.fprintf out
        "montalint: stale baseline entry (finding no longer occurs%s): %s\n"
        (if n > 1 then Printf.sprintf " x%d" n else "")
        k)
    stale;
  output_string out (summary result ^ "\n");
  if fresh <> [] then begin
    Printf.fprintf out
      "montalint: %d new finding(s) not in %s — fix, annotate with a \
       justified suppression, or refresh the baseline deliberately\n"
      (List.length fresh) baseline_file;
    1
  end
  else 0
