(* Rule identifiers and findings for Montalint (see DESIGN.md,
   "Montalint").  A finding's [key] deliberately omits line/column so
   baseline entries survive unrelated edits above the finding; the
   enclosing binding name plus the detail string is stable enough to
   pin a finding to "the same defect" across refactors. *)

type id =
  | R0  (* malformed suppression: annotation without a justification *)
  | R1  (* shared-mutable: unguarded write to domain-shared mutable state *)
  | R2  (* sched-seam: atomic op in a binding with no Sched hook *)
  | R3  (* payload-handle escape: pblk stored into module-level state *)
  | R4  (* error discipline: bare assert false / failwith in lib/ *)
  | R5  (* blocking call outside the netserve event loop *)

let to_string = function
  | R0 -> "R0"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"

let of_string = function
  | "R0" -> Some R0
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | _ -> None

let all = [ R0; R1; R2; R3; R4; R5 ]

let describe = function
  | R0 -> "suppression without justification"
  | R1 -> "unguarded write to domain-shared mutable state"
  | R2 -> "atomic operation not covered by a Util.Sched hook"
  | R3 -> "Epoch_sys.pblk escapes into module-level state"
  | R4 -> "bare assert false / failwith in lib/"
  | R5 -> "blocking call outside the netserve event loop"

type finding = {
  rule : id;
  file : string;  (* source path as recorded in the .cmt, repo-relative *)
  line : int;
  col : int;
  context : string;  (* enclosing top-level binding, or "<module>" *)
  detail : string;  (* line-number-free description; part of the baseline key *)
  hint : string;  (* fix-it suggestion *)
}

(* Baseline key: everything except position and hint. *)
let key f =
  String.concat "|" [ to_string f.rule; f.file; f.context; f.detail ]

let render f =
  Printf.sprintf "%s:%d:%d: [%s] %s (in %s)\n    hint: %s" f.file f.line
    (f.col + 1) (to_string f.rule) f.detail f.context f.hint

let compare_position a b =
  match compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c
