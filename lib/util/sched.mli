(** Scheduler hook: the seam between production spin/block waits and
    the deterministic scheduler in [lib/dsched].

    Concurrency-bearing code marks its interesting points with
    {!yield} (a pure scheduling point) and {!await} (a scheduling
    point that blocks until a {e pure} predicate holds).  In
    production no hook is installed and both compile down to one
    atomic load and a branch ({!yield}) or an inline spin-then-sleep
    wait ({!await}) — nothing allocates and no behavior changes.  When
    the deterministic scheduler installs a hook, every call becomes a
    point where the scheduler may switch logical threads or inject a
    crash (see DESIGN.md, "Dsched").

    Contract for {!await} predicates: they must be pure observations
    (no side effects), because the scheduler polls them to decide
    runnability; the state they observe cannot change between a
    successful poll and the fiber resuming, since fibers are
    cooperative on a single domain. *)

type hook = {
  yield : string -> unit;
  await : string -> (unit -> bool) -> unit;
}

(** Install/remove the hook.  Only the dsched engine should call
    these, and only while no instrumented code is running. *)
val install : hook -> unit

val uninstall : unit -> unit

(** True when a hook is installed (the scheduler is driving). *)
val active : unit -> bool

(** A named scheduling point; a no-op (one load + branch) without a
    hook.  The tag appears in traces and is never interpreted. *)
val yield : string -> unit

(** Block until [pred ()] holds.  [pred] must be pure.  Without a hook
    this is a spin-then-sleep wait (the historical [Backoff] loop). *)
val await : string -> (unit -> bool) -> unit
