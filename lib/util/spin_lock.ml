(* Mutual-exclusion lock for short critical sections.

   Implemented over an OS mutex rather than a pure TTAS spin: with more
   domains than cores (this container has one core), a spinning waiter
   burns the very timeslice the lock holder needs, stalling every
   structure for milliseconds per preemption.  Blocking in the kernel
   hands the core straight back to the holder.  [try_acquire] keeps the
   one-CAS-equivalent fast path for callers that poll.

   Under the deterministic scheduler ([Sched.active]) the mutex cannot
   be used: every logical thread is a fiber on one domain, so blocking
   in the kernel would wedge the whole engine.  The lock then degrades
   to a plain boolean guarded by [Sched.await] — sound because fibers
   are cooperative (no other fiber runs between a successful
   availability poll and the acquiring store below).  The two
   representations are never mixed: the scheduler only runs while all
   lock-holding code is fiber code.

   The module keeps its historical name; call sites are agnostic. *)

[@@@montage.allow
  "R5: this module is the blocking-lock primitive itself — the kernel \
   block is the documented design above; under the deterministic \
   scheduler [acquire] degrades to the fiber-cooperative flag instead"]

type t = { mutex : Mutex.t; mutable flag : bool }

let create () = { mutex = Mutex.create (); flag = false }

let acquire t =
  if Sched.active () then begin
    let rec loop () =
      Sched.await "spin_lock.acquire" (fun () -> not t.flag);
      if t.flag then loop () else t.flag <- true
    in
    loop ()
  end
  else Mutex.lock t.mutex

let try_acquire t =
  if Sched.active () then begin
    Sched.yield "spin_lock.try_acquire";
    if t.flag then false
    else begin
      t.flag <- true;
      true
    end
  end
  else Mutex.try_lock t.mutex

let release t = if Sched.active () then t.flag <- false else Mutex.unlock t.mutex

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
