(* Scheduler hook (see sched.mli).  The hook cell is an [Atomic] so
   the production fast path is a single load; [None] means no
   scheduler and both entry points degrade to plain waits. *)

[@@@montage.allow
  "R2: this module implements the Sched seam itself; its hook-cell \
   accesses are the mechanism the rule checks for, not instrumentable \
   state"]

[@@@montage.allow
  "R5: the spin-then-sleep escalation below is the production fallback \
   wait that Sched.await degrades to when no scheduler is installed"]

type hook = {
  yield : string -> unit;
  await : string -> (unit -> bool) -> unit;
}

let hook : hook option Atomic.t = Atomic.make None

let install h = Atomic.set hook (Some h)
let uninstall () = Atomic.set hook None
let active () = Atomic.get hook <> None

let yield tag = match Atomic.get hook with None -> () | Some h -> h.yield tag

(* The production fallback inlines the spin-then-sleep escalation of
   [Backoff] rather than depending on it: [Backoff] yields through
   this module when a scheduler is active, and a dependency cycle
   between the two would otherwise follow. *)
let spin_limit = 64

let await tag pred =
  match Atomic.get hook with
  | Some h -> h.await tag pred
  | None ->
      if not (pred ()) then begin
        let spins = ref 0 in
        while not (pred ()) do
          if !spins < spin_limit then begin
            incr spins;
            Domain.cpu_relax ()
          end
          else Unix.sleepf 1e-6
        done
      end
