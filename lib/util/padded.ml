(* False-sharing avoidance for arrays of per-thread counters.

   OCaml boxes each [int Atomic.t] separately, but consecutive
   allocations still land on the same cache lines.  [Padded.int_array]
   spaces logical slots [stride] words apart inside one atomic-int
   array, so two threads' hot counters never share a line. *)

[@@@montage.allow
  "R2: these are relaxed telemetry counters (region write-back/fence \
   stats, kvstore op counts); no control flow observes them, so their \
   interleavings are not scheduler-relevant"]

let stride = 16 (* 16 words = 128 B: a line pair, covering prefetchers *)

type counters = { cells : int Atomic.t array }

let make_counters n =
  { cells = Array.init (n * stride) (fun _ -> Atomic.make 0) }

let get c i = Atomic.get c.cells.(i * stride)
let set c i v = Atomic.set c.cells.(i * stride) v
let incr c i = ignore (Atomic.fetch_and_add c.cells.(i * stride) 1)
let add c i v = ignore (Atomic.fetch_and_add c.cells.(i * stride) v)

let sum c =
  let n = Array.length c.cells / stride in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + get c i
  done;
  !total
