(* Spin-then-yield backoff.

   [Domain.cpu_relax] lowers pipeline pressure but never yields the OS
   thread, so on a machine with fewer cores than domains a pure spin
   loop starves the domain it is waiting on for a full scheduler
   timeslice.  After a short spinning phase we therefore sleep for a
   microsecond, which yields the core.  All spin loops in this
   repository go through here. *)

[@@@montage.allow
  "R5: the microsecond sleep is the production escalation tail of the \
   backoff itself; under the deterministic scheduler [once] yields \
   through Sched instead of ever reaching it"]

type t = { mutable spins : int }

let spin_limit = 64

let create () = { spins = 0 }

let once b =
  if Sched.active () then
    (* under the deterministic scheduler every wait step is a
       scheduling point: sleeping would wedge the single engine domain *)
    Sched.yield "backoff"
  else if b.spins < spin_limit then begin
    b.spins <- b.spins + 1;
    Domain.cpu_relax ()
  end
  else Unix.sleepf 1e-6

let reset b = b.spins <- 0
