(* Reader-writer lock built on a mutex and condition variable.

   Like Spin_lock, this blocks rather than spins: with more domains
   than cores, a spinning writer starves the readers it is waiting out.
   Writer preference is not enforced — at benchmark read/write ratios
   this is immaterial.

   Under the deterministic scheduler ([Sched.active]) the mutex and
   condition cannot be used: every logical thread is a fiber on one
   domain, so [Condition.wait] would wedge the whole engine.  The lock
   then degrades to the bare [readers] count guarded by [Sched.await] —
   sound because fibers are cooperative (nothing runs between a
   successful availability poll and the acquiring store).  As with
   Spin_lock, the two representations are never mixed over a lock's
   lifetime. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable readers : int; (* -1 = writer holds it *)
}

[@@@montage.allow
  "R5: the internal mutex guards O(1) reader-count/condition updates \
   and is never held across user code; the Sched-active arm replaces \
   it entirely under the deterministic scheduler"]

let create () = { mutex = Mutex.create (); cond = Condition.create (); readers = 0 }

let read_acquire t =
  if Sched.active () then begin
    Sched.await "rw_lock.read_acquire" (fun () -> t.readers >= 0);
    t.readers <- t.readers + 1
  end
  else begin
    Mutex.lock t.mutex;
    while t.readers < 0 do
      Condition.wait t.cond t.mutex
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.mutex
  end

let read_release t =
  if Sched.active () then t.readers <- t.readers - 1
  else begin
    Mutex.lock t.mutex;
    t.readers <- t.readers - 1;
    if t.readers = 0 then Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let write_acquire t =
  if Sched.active () then begin
    Sched.await "rw_lock.write_acquire" (fun () -> t.readers = 0);
    t.readers <- -1
  end
  else begin
    Mutex.lock t.mutex;
    while t.readers <> 0 do
      Condition.wait t.cond t.mutex
    done;
    t.readers <- -1;
    Mutex.unlock t.mutex
  end

let write_release t =
  if Sched.active () then t.readers <- 0
  else begin
    Mutex.lock t.mutex;
    t.readers <- 0;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let with_read t f =
  read_acquire t;
  match f () with
  | v ->
      read_release t;
      v
  | exception e ->
      read_release t;
      raise e

let with_write t f =
  write_acquire t;
  match f () with
  | v ->
      write_release t;
      v
  | exception e ->
      write_release t;
      raise e
