(* Table/series rendering for the benchmark harness.

   Each figure prints as a labeled table of series (system → value per
   x-point), in the units the paper uses, plus a one-line "shape"
   verdict where the paper makes an ordering claim.  EXPERIMENTS.md is
   written from the same data. *)

let heading title =
  Printf.printf "\n=== %s ===\n%!" title

let pretty v =
  if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fK" (v /. 1e3)
  else Printf.sprintf "%.1f" v

(* [series]: (name, value per column).  Missing points are [nan].
   [fmt] overrides the human-size formatting (e.g. seconds tables). *)
let table ?(fmt = pretty) ~columns ~rows ~unit_label () =
  let name_width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 12 rows
  in
  Printf.printf "%-*s" (name_width + 2) (Printf.sprintf "(%s)" unit_label);
  List.iter (fun c -> Printf.printf "%12s" c) columns;
  print_newline ();
  List.iter
    (fun (name, values) ->
      Printf.printf "%-*s" (name_width + 2) name;
      List.iter
        (fun v -> if Float.is_nan v then Printf.printf "%12s" "-" else Printf.printf "%12s" (fmt v))
        values;
      print_newline ())
    rows;
  flush stdout

(* Shape assertions: report whether the paper's ordering claim holds in
   this run.  Used for the summary and EXPERIMENTS.md. *)
let verdicts : (string * bool * string) list ref = ref []

let check ~figure ~claim ok =
  verdicts := (figure, ok, claim) :: !verdicts;
  Printf.printf "  [%s] %s: %s\n%!" (if ok then "ok" else "MISS") figure claim

(* One line of write-back accounting — for a single region or an
   aggregate the caller assembled across systems.  [writebacks] counts
   queued cache lines, [fences] ordering points; the coalescer fields
   are zero when it never ran, in which case the dedup tail is
   omitted. *)
let writeback_line ~label ~writebacks ~fences ~ranges ~lines_in ~lines_out =
  Printf.printf "  %-28s %12d wb-lines %10d fences" label writebacks fences;
  if ranges > 0 then
    Printf.printf "   %d ranges, %d->%d lines (dedup %.2fx)" ranges lines_in lines_out
      (float_of_int lines_in /. float_of_int (max 1 lines_out));
  print_newline ();
  flush stdout

(* Persistency-checker digest for a benchmarked region: violation count
   plus the per-site performance-lint table ([Pcheck.lint_counts]), so a
   run under MONTAGE_PCHECK=1 ends with an attributable flush-hygiene
   report.  No-op when the region runs checker-off (the default). *)
let pcheck_summary ?(label = "pcheck") region =
  match Nvm.Region.checker region with
  | None -> ()
  | Some c ->
      heading (Printf.sprintf "%s: persistency report" label);
      let violations = Nvm.Pcheck.violations c in
      Printf.printf "  violations: %d\n" (List.length violations);
      List.iter (fun v -> Printf.printf "    %s\n" (Nvm.Pcheck.violation_to_string v)) violations;
      let lints = Nvm.Pcheck.lint_counts c in
      Printf.printf "  lints: %d total across %d sites\n" (Nvm.Pcheck.lint_total c)
        (List.length lints);
      List.iter
        (fun (lint, site, count) ->
          Printf.printf "    %8d  %-16s %s\n" count (Nvm.Pcheck.lint_name lint) site)
        lints;
      flush stdout

let summary () =
  let all = List.rev !verdicts in
  let good = List.length (List.filter (fun (_, ok, _) -> ok) all) in
  Printf.printf "\n=== shape summary: %d/%d paper claims reproduced ===\n" good (List.length all);
  List.iter
    (fun (fig, ok, claim) -> Printf.printf "  [%s] %s: %s\n" (if ok then "ok" else "MISS") fig claim)
    all;
  flush stdout
