(* Montage queue (paper §3.1, §6.1): a single-lock FIFO queue.

   The abstract state is the items and their order, so each payload
   carries a consecutive sequence number; the transient index is a
   plain OCaml [Queue] of (seq, handle) pairs.  Recovery sorts
   surviving payloads by sequence number — the persisted order is
   exactly the linearization order of the enqueues that survived the
   crash cut. *)

module E = Montage.Epoch_sys
module Seq = Montage.Payload.Seq

type t = {
  esys : E.t;
  lock : Util.Spin_lock.t;
  items : (int * E.pblk) Queue.t;
  mutable next_seq : int;
}

let create esys = { esys; lock = Util.Spin_lock.create (); items = Queue.create (); next_seq = 1 }

let esys t = t.esys
let length t = Util.Spin_lock.with_lock t.lock (fun () -> Queue.length t.items)
let is_empty t = length t = 0

let enqueue t ~tid value =
  Util.Sched.yield "mqueue.enqueue";
  Util.Spin_lock.with_lock t.lock (fun () ->
      E.with_op t.esys ~tid (fun () ->
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          let payload = Seq.pnew t.esys ~tid (seq, value) in
          Queue.push (seq, payload) t.items))

let dequeue t ~tid =
  Util.Sched.yield "mqueue.dequeue";
  Util.Spin_lock.with_lock t.lock (fun () ->
      if Queue.is_empty t.items then None
      else
        E.with_op t.esys ~tid (fun () ->
            let _, payload = Queue.pop t.items in
            let _, value = Seq.get t.esys ~tid payload in
            E.pdelete t.esys ~tid payload;
            Some value))

(* Front element without removing it (read-only, no BEGIN_OP). *)
let peek t ~tid =
  Util.Sched.yield "mqueue.peek";
  Util.Spin_lock.with_lock t.lock (fun () ->
      match Queue.peek_opt t.items with
      | None -> None
      | Some (_, payload) ->
          let _, value = Seq.get t.esys ~tid payload in
          Some value)

(* ---- recovery ---- *)

let recover esys payloads =
  let t = create esys in
  let entries =
    Array.map (fun p -> (fst (Seq.get_unsafe esys p), p)) payloads
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) entries;
  Array.iter (fun (seq, p) -> Queue.push (seq, p) t.items) entries;
  (match Array.length entries with
  | 0 -> ()
  | n -> t.next_seq <- fst entries.(n - 1) + 1);
  t
[@@montage.allow
  "R1: recovery builds the queue before it is shared with any \
   operation; normal next_seq writers hold the queue lock"]
