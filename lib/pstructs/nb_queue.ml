(* Nonblocking Montage queue: Michael–Scott with epoch-verified
   linearizing CASes.

   The linearization points — appending to tail.next (enqueue) and
   swinging head (dequeue) — use [Everify.cas_verify] so each
   operation linearizes in the epoch that labeled its payload; the
   auxiliary tail swing uses the unverified [Everify.cas], since it is
   mere helping and never decides the abstract state.

   Each payload's sequence number is the predecessor's + 1, rewritten
   in place on retry within an epoch; an epoch change mid-attempt
   rolls the operation back (destroying its same-epoch payload) and
   restarts, as §3.3 prescribes. *)

module E = Montage.Epoch_sys
module V = Montage.Everify
module Seq = Montage.Payload.Seq

type node = {
  seq : int;
  payload : E.pblk option; (* None only for the sentinel *)
  value : string;
  next : node option V.t;
}

type t = { esys : E.t; head : node V.t; tail : node V.t }

let sentinel () = { seq = 0; payload = None; value = ""; next = V.make None }

let create esys =
  let s = sentinel () in
  { esys; head = V.make s; tail = V.make s }

let esys t = t.esys

let enqueue t ~tid value =
  Util.Sched.yield "nb_queue.enqueue";
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt None with
    | () -> E.end_op t.esys ~tid
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt payload_opt =
    let tail = V.load_verify t.esys t.tail in
    match V.load_verify t.esys tail.next with
    | Some successor ->
        (* stale tail: help swing it, then retry *)
        ignore (V.cas t.esys t.tail ~expect:tail ~desired:successor);
        attempt payload_opt
    | None ->
        let seq = tail.seq + 1 in
        let payload =
          match payload_opt with
          | None -> Seq.pnew t.esys ~tid (seq, value)
          | Some p -> Seq.set t.esys ~tid p (seq, value)
        in
        let node = { seq; payload = Some payload; value; next = V.make None } in
        if V.cas_verify t.esys ~tid tail.next ~expect:None ~desired:(Some node) then
          ignore (V.cas t.esys t.tail ~expect:tail ~desired:node)
        else begin
          (try E.check_epoch t.esys ~tid
           with Montage.Errors.Epoch_changed ->
             E.pdelete t.esys ~tid payload;
             raise Montage.Errors.Epoch_changed);
          attempt (Some payload)
        end
  in
  restart ()

let dequeue t ~tid =
  Util.Sched.yield "nb_queue.dequeue";
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt () with
    | result -> result
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt () =
    let head = V.load_verify t.esys t.head in
    let tail = V.load_verify t.esys t.tail in
    match V.load_verify t.esys head.next with
    | None ->
        E.end_op t.esys ~tid;
        None
    | Some node ->
        if head == tail then begin
          (* tail lags: help *)
          ignore (V.cas t.esys t.tail ~expect:tail ~desired:node);
          attempt ()
        end
        else if V.cas_verify t.esys ~tid t.head ~expect:head ~desired:node then begin
          (match node.payload with
          | Some p -> E.pdelete t.esys ~tid p
          | None ->
              Montage.Errors.corrupt
                "Nb_queue.dequeue: non-sentinel node seq %d has no payload (only the sentinel may)"
                node.seq);
          E.end_op t.esys ~tid;
          Some node.value
        end
        else begin
          E.check_epoch t.esys ~tid;
          attempt ()
        end
  in
  restart ()

(* Read-only probes. *)
let peek t =
  let head = V.peek t.head in
  match V.peek head.next with None -> None | Some n -> Some n.value

let is_empty t =
  let head = V.peek t.head in
  V.peek head.next = None

let length t =
  let head = V.peek t.head in
  let rec count acc cell =
    match V.peek cell with None -> acc | Some n -> count (acc + 1) n.next
  in
  count 0 head.next

let recover esys payloads =
  let t = create esys in
  let entries = Array.map (fun p -> (fst (Seq.get_unsafe esys p), p)) payloads in
  Array.sort (fun (a, _) (b, _) -> compare a b) entries;
  let head_node = V.peek t.head in
  let last =
    Array.fold_left
      (fun prev (seq, p) ->
        let _, value = Seq.get_unsafe esys p in
        let node = { seq; payload = Some p; value; next = V.make None } in
        ignore (V.cas esys prev.next ~expect:None ~desired:(Some node));
        node)
      head_node entries
  in
  ignore (V.cas esys t.tail ~expect:(V.peek t.tail) ~desired:last);
  t
