(* Montage persistent vector: a dynamic array of values.

   The abstract state is (length, elements-by-index); each element is
   one payload carrying its index, so recovery is "place every payload
   at its index" — no order reconstruction needed.  The paper's related
   work (MOD, Mahapatra et al.) treats vectors as a standard member of
   the persistent-structure menagerie; this is the Montage version:
   transient OCaml array of handles, payloads in NVM, buffered
   durability for free.

   Concurrency: a single structural lock (push/pop/resize move the
   boundary); element reads are lock-free through the transient array.
   set/get on an index follow the Montage discipline. *)

module E = Montage.Epoch_sys
module Seq = Montage.Payload.Seq

type t = {
  esys : E.t;
  lock : Util.Spin_lock.t;
  mutable slots : E.pblk option array;
  mutable length : int;
}

let create ?(capacity = 16) esys =
  { esys; lock = Util.Spin_lock.create (); slots = Array.make (max 1 capacity) None; length = 0 }

let esys t = t.esys
let length t = t.length

let ensure_capacity t n =
  if n > Array.length t.slots then begin
    let fresh = Array.make (max n (2 * Array.length t.slots)) None in
    Array.blit t.slots 0 fresh 0 t.length;
    t.slots <- fresh
  end
[@@montage.allow
  "R1: every caller either holds t.lock (push/set paths) or is \
   recovery running before the structure is shared"]

let push t ~tid value =
  Util.Sched.yield "mvector.push";
  Util.Spin_lock.with_lock t.lock (fun () ->
      E.with_op t.esys ~tid (fun () ->
          let index = t.length in
          ensure_capacity t (index + 1);
          t.slots.(index) <- Some (Seq.pnew t.esys ~tid (index, value));
          t.length <- index + 1;
          index))

let pop t ~tid =
  Util.Sched.yield "mvector.pop";
  Util.Spin_lock.with_lock t.lock (fun () ->
      if t.length = 0 then None
      else
        E.with_op t.esys ~tid (fun () ->
            let index = t.length - 1 in
            let p = Option.get t.slots.(index) in
            let _, value = Seq.get t.esys ~tid p in
            E.pdelete t.esys ~tid p;
            t.slots.(index) <- None;
            t.length <- index;
            Some value))

let get t ~tid index =
  Util.Sched.yield "mvector.get";
  if index < 0 || index >= t.length then None
  else
    match t.slots.(index) with
    | Some p -> Some (snd (Seq.get t.esys ~tid p))
    | None -> None

let set t ~tid index value =
  Util.Sched.yield "mvector.set";
  Util.Spin_lock.with_lock t.lock (fun () ->
      if index < 0 || index >= t.length then false
      else
        E.with_op t.esys ~tid (fun () ->
            let p = Option.get t.slots.(index) in
            t.slots.(index) <- Some (Seq.set t.esys ~tid p (index, value));
            true))

let to_list t ~tid =
  List.init t.length (fun i -> Option.get (get t ~tid i))

let iteri t ~tid f =
  for i = 0 to t.length - 1 do
    match get t ~tid i with Some v -> f i v | None -> ()
  done

(* ---- recovery ---- *)

let recover esys payloads =
  let t = create ~capacity:(max 16 (Array.length payloads)) esys in
  let max_index = ref (-1) in
  Array.iter
    (fun p ->
      let index, _ = Seq.get_unsafe esys p in
      ensure_capacity t (index + 1);
      t.slots.(index) <- Some p;
      if index > !max_index then max_index := index)
    payloads;
  t.length <- !max_index + 1;
  t
[@@montage.allow
  "R1: recovery builds the vector before it is shared with any \
   operation; normal length writers hold the vector lock"]
