(* Nonblocking Montage sorted-list set: a Harris-style linked list with
   logical deletion marks, whose linearizing CASes are epoch-verified
   ([Everify.cas_verify]) so insertions and removals linearize in the
   epoch that labeled their payloads — the paper's §3.3 recipe applied
   to the classic lock-free list.

   Each next-link cell holds an immutable {succ; marked} record; CAS
   compares the physically-read record, and GC prevents ABA.  The
   linearization points are:
   - insert:  pred.next swing to the new node (epoch-verified);
   - remove:  setting the victim's mark (epoch-verified); the physical
     unlink is plain helping.
   Contains is read-only and wait-free over the transient list.

   Abstract state in NVM: one payload per member key.  Recovery is a
   sorted rebuild. *)

module E = Montage.Epoch_sys
module V = Montage.Everify
module Str = Montage.Payload.Str

type node = { key : string; payload : E.pblk option; next : link V.t }
and link = { succ : node option; marked : bool }

type t = { esys : E.t; head : node }

let create esys =
  { esys; head = { key = ""; payload = None; next = V.make { succ = None; marked = false } } }

let esys t = t.esys

(* Find the (pred, pred_link, curr) window for [key], physically
   unlinking marked nodes along the way (plain helping CAS). *)
let rec search t key =
  let rec advance pred pred_link =
    match pred_link.succ with
    | None -> (pred, pred_link, None)
    | Some curr ->
        let curr_link = V.load_verify t.esys curr.next in
        if curr_link.marked then begin
          (* help unlink; restart from pred on contention *)
          let unlinked = { succ = curr_link.succ; marked = false } in
          if V.cas t.esys pred.next ~expect:pred_link ~desired:unlinked then
            advance pred unlinked
          else search t key
        end
        else if curr.key < key then advance curr curr_link
        else (pred, pred_link, Some curr)
  in
  advance t.head (V.load_verify t.esys t.head.next)

(* Wait-free read-only membership: traverses without helping writes. *)
let contains t key =
  Util.Sched.yield "nb_list_set.contains";
  let rec walk cursor =
    match cursor with
    | None -> false
    | Some node ->
        if node.key < key then walk (V.peek node.next).succ
        else node.key = key && not (V.peek node.next).marked
  in
  walk (V.peek t.head.next).succ

let add t ~tid key =
  Util.Sched.yield "nb_list_set.add";
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt None with
    | outcome ->
        E.end_op t.esys ~tid;
        outcome
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt payload_opt =
    let pred, pred_link, curr = search t key in
    match curr with
    | Some node when node.key = key ->
        (* already present: discard any payload from a prior attempt *)
        (match payload_opt with Some p -> E.pdelete t.esys ~tid p | None -> ());
        false
    | _ ->
        let payload =
          match payload_opt with
          | Some p -> p
          | None -> Str.pnew t.esys ~tid key
        in
        let fresh = { key; payload = Some payload; next = V.make { succ = curr; marked = false } } in
        if V.cas_verify t.esys ~tid pred.next ~expect:pred_link ~desired:{ succ = Some fresh; marked = false }
        then true
        else begin
          (try E.check_epoch t.esys ~tid
           with Montage.Errors.Epoch_changed ->
             E.pdelete t.esys ~tid payload;
             raise Montage.Errors.Epoch_changed);
          attempt (Some payload)
        end
  in
  restart ()

let remove t ~tid key =
  Util.Sched.yield "nb_list_set.remove";
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt () with
    | outcome ->
        E.end_op t.esys ~tid;
        outcome
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt () =
    let pred, pred_link, curr = search t key in
    match curr with
    | Some node when node.key = key ->
        let node_link = V.load_verify t.esys node.next in
        if node_link.marked then false
        else if
          (* linearization: epoch-verified marking *)
          V.cas_verify t.esys ~tid node.next ~expect:node_link
            ~desired:{ succ = node_link.succ; marked = true }
        then begin
          (match node.payload with Some p -> E.pdelete t.esys ~tid p | None -> ());
          (* best-effort physical unlink *)
          ignore
            (V.cas t.esys pred.next ~expect:pred_link ~desired:{ succ = node_link.succ; marked = false });
          true
        end
        else begin
          E.check_epoch t.esys ~tid;
          attempt ()
        end
    | _ -> false
  in
  restart ()

(* Quiescent enumeration (tests, verification). *)
let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node ->
        let link = V.peek node.next in
        walk (if link.marked then acc else node.key :: acc) link.succ
  in
  walk [] (V.peek t.head.next).succ

let length t = List.length (to_list t)

(* ---- recovery ---- *)

let recover esys payloads =
  let t = create esys in
  let keys = Array.map (fun p -> (Str.get_unsafe esys p, p)) payloads in
  Array.sort (fun (a, _) (b, _) -> compare b a) keys;
  (* insert descending so each prepend at the head yields sorted order *)
  Array.iter
    (fun (key, p) ->
      let first = V.peek t.head.next in
      let fresh = { key; payload = Some p; next = V.make first } in
      ignore (V.cas esys t.head.next ~expect:first ~desired:{ succ = Some fresh; marked = false }))
    keys;
  t
