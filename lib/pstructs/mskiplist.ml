(* Montage ordered map: a lock-based concurrent skip list.

   The paper's §6.1 mentions "various tree-based maps" built on
   Montage; this is the repository's ordered-map representative.  As
   with every Montage structure, only the key/value payloads live in
   NVM — the entire tower structure is transient and rebuilt on
   recovery, which makes recovery just a sequence of ordered inserts.

   Concurrency: a hand-over-hand-free design with one striped lock per
   key region would complicate the example; since the paper's maps use
   lock-based buckets, we use a single structural lock for mutations
   and lock-free reads via forward pointers that are only ever swung
   from one valid state to another (readers may miss in-flight inserts,
   which is linearizable for a map).  Mutations follow the Montage
   discipline inside begin_op/end_op. *)

module E = Montage.Epoch_sys
module Kv = Montage.Payload.Kv

let max_level = 16

type node = {
  key : string;
  mutable payload : E.pblk option; (* None only for the head sentinel *)
  forward : node option array; (* length = node's level *)
}

type t = {
  esys : E.t;
  head : node;
  lock : Util.Spin_lock.t;
  mutable level : int; (* highest level in use *)
  size : int Atomic.t;
  seed : Util.Xoshiro.t; (* level generator; used under the lock *)
}

let create ?(seed = 0x5EED) esys =
  {
    esys;
    head = { key = ""; payload = None; forward = Array.make max_level None };
    lock = Util.Spin_lock.create ();
    level = 1;
    size = Atomic.make 0;
    seed = Util.Xoshiro.create seed;
  }

let esys t = t.esys

let size t = Atomic.get t.size
[@@montage.allow "R2: read-only statistics observer"]

let random_level t =
  let rec toss level =
    if level < max_level && Util.Xoshiro.bool t.seed then toss (level + 1) else level
  in
  toss 1

(* Walk greater levels first; returns the last node with key < [key]
   at every level, as the classic algorithm does. *)
let find_predecessors t key =
  let preds = Array.make max_level t.head in
  let node = ref t.head in
  for level = t.level - 1 downto 0 do
    let rec walk () =
      match !node.forward.(level) with
      | Some next when next.key < key ->
          node := next;
          walk ()
      | _ -> ()
    in
    walk ();
    preds.(level) <- !node
  done;
  preds

(* Read-only: traverse the transient index; only the final payload read
   touches NVM. *)
let get t ~tid key =
  Util.Sched.yield "mskiplist.get";
  let node = ref t.head in
  for level = t.level - 1 downto 0 do
    let rec walk () =
      match !node.forward.(level) with
      | Some next when next.key < key ->
          node := next;
          walk ()
      | _ -> ()
    in
    walk ()
  done;
  match !node.forward.(0) with
  | Some next when String.equal next.key key -> (
      match next.payload with
      (* value-only read: the node caches the key; a warm handle is
         served from its memo without touching NVM *)
      | Some p -> Some (Kv.get_value t.esys ~tid p)
      | None -> None)
  | _ -> None

let put t ~tid key value =
  Util.Sched.yield "mskiplist.put";
  Util.Spin_lock.with_lock t.lock (fun () ->
      E.with_op t.esys ~tid (fun () ->
          let preds = find_predecessors t key in
          match preds.(0).forward.(0) with
          | Some node when String.equal node.key key ->
              (* update in place (payload may be replaced by pset) *)
              let p = Option.get node.payload in
              let old = Kv.get_value t.esys ~tid p in
              node.payload <- Some (Kv.set t.esys ~tid p (key, value));
              Some old
          | _ ->
              let level = random_level t in
              if level > t.level then begin
                for l = t.level to level - 1 do
                  preds.(l) <- t.head
                done;
                t.level <- level
              end;
              let payload = Kv.pnew t.esys ~tid (key, value) in
              let fresh = { key; payload = Some payload; forward = Array.make level None } in
              for l = 0 to level - 1 do
                fresh.forward.(l) <- preds.(l).forward.(l);
                preds.(l).forward.(l) <- Some fresh
              done;
              Atomic.incr t.size;
              None))

let remove t ~tid key =
  Util.Sched.yield "mskiplist.remove";
  Util.Spin_lock.with_lock t.lock (fun () ->
      let preds = find_predecessors t key in
      match preds.(0).forward.(0) with
      | Some node when String.equal node.key key ->
          E.with_op t.esys ~tid (fun () ->
              let p = Option.get node.payload in
              let old = Kv.get_value t.esys ~tid p in
              E.pdelete t.esys ~tid p;
              for l = 0 to Array.length node.forward - 1 do
                if l < t.level then
                  match preds.(l).forward.(l) with
                  | Some n when n == node -> preds.(l).forward.(l) <- node.forward.(l)
                  | _ -> ()
              done;
              Atomic.decr t.size;
              Some old)
      | _ -> None)

(* Ordered iteration — what a hash map cannot give you. *)
let fold_range t ~tid ~lo ~hi ~init f =
  let node = ref t.head in
  for level = t.level - 1 downto 0 do
    let rec walk () =
      match !node.forward.(level) with
      | Some next when next.key < lo ->
          node := next;
          walk ()
      | _ -> ()
    in
    walk ()
  done;
  let acc = ref init in
  let rec scan cursor =
    match cursor with
    | Some n when n.key <= hi ->
        (match n.payload with
        | Some p ->
            let k, v = Kv.get t.esys ~tid p in
            acc := f !acc k v
        | None -> ());
        scan n.forward.(0)
    | _ -> ()
  in
  scan !node.forward.(0);
  !acc

let min_binding t ~tid =
  match t.head.forward.(0) with
  | Some n ->
      let p = Option.get n.payload in
      Some (Kv.get t.esys ~tid p)
  | None -> None

let to_alist t ~tid =
  let rec scan acc = function
    | Some n ->
        let p = Option.get n.payload in
        scan (Kv.get t.esys ~tid p :: acc) n.forward.(0)
    | None -> List.rev acc
  in
  scan [] t.head.forward.(0)

(* ---- recovery ---- *)

let recover ?(threads = 1) esys payloads =
  let t = create esys in
  if Array.length payloads = 0 then t
  else begin
  (* sort recovered pairs, then bulk-insert without epoch machinery;
     parallel slices contend on the single lock, so recovery is
     sequentialized structurally but slices can decode in parallel *)
  let decoded =
    if threads <= 1 then Array.map (fun p -> (fst (Kv.get_unsafe esys p), p)) payloads
    else begin
      let out = Array.make (Array.length payloads) ("", payloads.(0)) in
      let slices = E.slices payloads ~k:threads in
      let offsets = Array.make (Array.length slices) 0 in
      let pos = ref 0 in
      Array.iteri
        (fun i s ->
          offsets.(i) <- !pos;
          pos := !pos + Array.length s)
        slices;
      let ds =
        Array.mapi
          (fun i s ->
            Domain.spawn (fun () ->
                Array.iteri
                  (fun j p -> out.(offsets.(i) + j) <- (fst (Kv.get_unsafe esys p), p))
                  s))
          slices
      in
      Array.iter Domain.join ds;
      out
    end
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) decoded;
  Array.iter
    (fun (key, p) ->
      let preds = find_predecessors t key in
      let level = random_level t in
      if level > t.level then begin
        for l = t.level to level - 1 do
          preds.(l) <- t.head
        done;
        t.level <- level
      end;
      let fresh = { key; payload = Some p; forward = Array.make level None } in
      for l = 0 to level - 1 do
        fresh.forward.(l) <- preds.(l).forward.(l);
        preds.(l).forward.(l) <- Some fresh
      done;
      Atomic.incr t.size)
    decoded;
    t
  end
[@@montage.allow
  "R1: recovery builds the skiplist before it is shared with any \
   operation; normal level writers hold the structure lock"]
[@@montage.allow
  "R2: recovery-time counter, incremented before the structure is \
   shared with any operation"]
