(* Montage-backed persistent HAMT with O(1) snapshots.

   The abstract state is a bag of [(key, seq, value-or-tombstone)]
   records in NVM payloads; the trie that indexes them is immutable
   transient OCaml-heap data.  Mutations path-copy from the changed
   leaf to the root and publish the new [(version, root)] pair with a
   single atomic store, so a snapshot is one atomic read and every
   published root names an immutable version forever.

   Durability discipline: an overwrite never [pset]s the old payload —
   a snapshot may still be reading it — it [pnew]s a fresh record with
   a larger [seq] and *retires* the old one.  A remove [pnew]s a
   tombstone ([seq], no value) in the same operation that retires the
   removed record, so the abstract remove is durable while the record's
   bytes stay pinned.  Retired payloads (plus their shadowing
   tombstones) reach [pdelete] — and from there the epoch system's
   exchange-claimed reclamation — only once no live snapshot's version
   precedes the retirement, in one op so a crash can't separate them.
   Recovery keeps the largest-[seq] record per key and queues every
   superseded block for the same deferred reclamation path. *)

module E = Montage.Epoch_sys
module Errors = Montage.Errors

(* ---- record payloads: (key, seq, value) / (key, seq, tombstone) ---- *)

module Rec_content = struct
  type t = string * int * string option

  (* [8B seq LE | 1B kind | 4B klen LE | key | value] *)
  let encode (key, seq, value) =
    let klen = String.length key in
    let vlen = match value with None -> 0 | Some v -> String.length v in
    let b = Bytes.create (13 + klen + vlen) in
    Bytes.set_int64_le b 0 (Int64.of_int seq);
    Bytes.set b 8 (match value with None -> '\000' | Some _ -> '\001');
    Bytes.set_int32_le b 9 (Int32.of_int klen);
    Bytes.blit_string key 0 b 13 klen;
    (match value with None -> () | Some v -> Bytes.blit_string v 0 b (13 + klen) vlen);
    b

  let decode b =
    let seq = Int64.to_int (Bytes.get_int64_le b 0) in
    let kind = Bytes.get b 8 in
    let klen = Int32.to_int (Bytes.get_int32_le b 9) in
    let key = Bytes.sub_string b 13 klen in
    let value =
      match kind with
      | '\000' -> None
      | _ -> Some (Bytes.sub_string b (13 + klen) (Bytes.length b - 13 - klen))
    in
    (key, seq, value)
end

module Rec = Montage.Payload.Make (Rec_content)

(* ---- the immutable trie ---- *)

(* 4 bits per level over a 30-bit hash: shifts 0,4,...,28; two keys
   whose masked hashes differ always split at some level, and equal
   masked hashes share one collision [Leaf]. *)
let bits = 4
let fanout = 1 lsl bits
let hash_mask = 0x3FFFFFFF
let max_shift = 28

type entry = { ekey : string; payload : E.pblk }

type node =
  | Leaf of { lhash : int; entries : entry array }
  | Branch of { bitmap : int; children : node array }

let nil = Branch { bitmap = 0; children = [||] }

let popcount16 x =
  let x = (x land 0x5555) + ((x lsr 1) land 0x5555) in
  let x = (x land 0x3333) + ((x lsr 2) land 0x3333) in
  let x = (x land 0x0F0F) + ((x lsr 4) land 0x0F0F) in
  (x + (x lsr 8)) land 0x1F

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i = Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let array_set a i x =
  let b = Array.copy a in
  b.(i) <- x;
  b

let entry_index entries key =
  let n = Array.length entries in
  let rec scan i = if i = n then None else if String.equal entries.(i).ekey key then Some i else scan (i + 1) in
  scan 0

let rec find_entry node h shift key =
  match node with
  | Leaf l -> (
      if l.lhash <> h then None
      else match entry_index l.entries key with None -> None | Some i -> Some l.entries.(i))
  | Branch b ->
      let bit = 1 lsl ((h lsr shift) land (fanout - 1)) in
      if b.bitmap land bit = 0 then None
      else find_entry b.children.(popcount16 (b.bitmap land (bit - 1))) h (shift + bits) key

(* Push two hash-distinct leaves down until their nibbles split. *)
let rec join shift h1 n1 h2 e2 =
  if shift > max_shift then Errors.corrupt "Mhamt.join: equal 30-bit hashes reached a split";
  let i1 = (h1 lsr shift) land (fanout - 1) and i2 = (h2 lsr shift) land (fanout - 1) in
  if i1 = i2 then Branch { bitmap = 1 lsl i1; children = [| join (shift + bits) h1 n1 h2 e2 |] }
  else
    let l2 = Leaf { lhash = h2; entries = [| e2 |] } in
    Branch
      {
        bitmap = (1 lsl i1) lor (1 lsl i2);
        children = (if i1 < i2 then [| n1; l2 |] else [| l2; n1 |]);
      }

(* Path-copying insert/overwrite: the new root plus the displaced entry
   (None on fresh insert). *)
let rec insert node h shift entry =
  match node with
  | Branch b when b.bitmap = 0 -> (Leaf { lhash = h; entries = [| entry |] }, None)
  | Branch b ->
      let idx = (h lsr shift) land (fanout - 1) in
      let bit = 1 lsl idx in
      let pos = popcount16 (b.bitmap land (bit - 1)) in
      if b.bitmap land bit = 0 then
        ( Branch
            {
              bitmap = b.bitmap lor bit;
              children = array_insert b.children pos (Leaf { lhash = h; entries = [| entry |] });
            },
          None )
      else
        let child, old = insert b.children.(pos) h (shift + bits) entry in
        (Branch { bitmap = b.bitmap; children = array_set b.children pos child }, old)
  | Leaf l when l.lhash = h -> (
      match entry_index l.entries entry.ekey with
      | Some i -> (Leaf { lhash = h; entries = array_set l.entries i entry }, Some l.entries.(i))
      | None ->
          (Leaf { lhash = h; entries = array_insert l.entries (Array.length l.entries) entry }, None))
  | Leaf l -> (join shift l.lhash node h entry, None)

(* Path-copying remove: [Some (new_subtree_or_empty, removed)] when the
   key was present.  Single-leaf branches collapse so the trie shape is
   a function of its contents alone. *)
let rec remove_entry node h shift key =
  match node with
  | Leaf l when l.lhash = h -> (
      match entry_index l.entries key with
      | None -> None
      | Some i ->
          let removed = l.entries.(i) in
          let rest =
            if Array.length l.entries = 1 then None
            else Some (Leaf { lhash = h; entries = array_remove l.entries i })
          in
          Some (rest, removed))
  | Leaf _ -> None
  | Branch b -> (
      let idx = (h lsr shift) land (fanout - 1) in
      let bit = 1 lsl idx in
      if b.bitmap land bit = 0 then None
      else
        let pos = popcount16 (b.bitmap land (bit - 1)) in
        match remove_entry b.children.(pos) h (shift + bits) key with
        | None -> None
        | Some (child, removed) ->
            let bitmap, children =
              match child with
              | Some c -> (b.bitmap, array_set b.children pos c)
              | None -> (b.bitmap land lnot bit, array_remove b.children pos)
            in
            let rest =
              if bitmap = 0 then None
              else if Array.length children = 1 then
                match children.(0) with
                | Leaf _ as leaf -> Some leaf
                | Branch _ -> Some (Branch { bitmap; children })
              else Some (Branch { bitmap; children })
            in
            Some (rest, removed))

let rec iter_entries node f =
  match node with
  | Leaf l -> Array.iter f l.entries
  | Branch b -> Array.iter (fun c -> iter_entries c f) b.children

(* ---- the map ---- *)

type retired = { rver : int; rpayload : E.pblk; rtomb : E.pblk option }

type t = {
  esys : E.t;
  hash : string -> int;
  (* one atomic pair so snapshot is a single read *)
  state : (int * node) Atomic.t;
  size : int Atomic.t;
  (* single-writer lock: serializes mutations and guards [retired] *)
  wlock : Util.Spin_lock.t;
  retired : retired Queue.t; [@montage.guarded_by "wlock"]
  (* snapshot registry: view id -> pinned version *)
  slock : Util.Spin_lock.t;
  snaps : (int, int) Hashtbl.t; [@montage.guarded_by "slock"]
  mutable next_snap : int; [@montage.guarded_by "slock"]
}

type view = { v_owner : t; v_root : node; v_version : int; v_id : int; v_released : bool Atomic.t }

let create ?(hash = Hashtbl.hash) esys =
  {
    esys;
    hash;
    state = Atomic.make (0, nil);
    size = Atomic.make 0;
    wlock = Util.Spin_lock.create ();
    retired = Queue.create ();
    slock = Util.Spin_lock.create ();
    snaps = Hashtbl.create 16;
    next_snap = 0;
  }

let esys t = t.esys

let size t = Atomic.get t.size [@@montage.allow "R2: read-only statistics observer"]

let version t = fst (Atomic.get t.state) [@@montage.allow "R2: read-only statistics observer"]

let hkey t key = t.hash key land hash_mask

let value_of t ~tid e =
  match Rec.get t.esys ~tid e.payload with
  | _, _, Some v -> v
  | _, _, None -> Errors.corrupt "Mhamt: tombstone record reached the trie"

(* ---- retirement & reclamation ---- *)

(* Oldest version any live snapshot can still read (max_int if none).
   A payload retired at version r is reachable from snapshot s iff
   s < r, so it is reclaimable once min_live >= r. *)
let min_live_version t =
  Util.Spin_lock.with_lock t.slock (fun () ->
      Hashtbl.fold (fun _ v acc -> if v < acc then v else acc) t.snaps max_int)

(* Caller holds [wlock] and is *outside* any epoch operation.  Retired
   entries are queued in retirement order, so a stopped pop leaves only
   still-pinned (or newer) blocks behind.  The record and its tombstone
   go down in one op: same epoch, so no crash state separates them. *)
let reclaim_locked t ~tid =
  if not (Queue.is_empty t.retired) then begin
    let horizon = min_live_version t in
    let ripe = ref [] in
    let rec pop () =
      match Queue.peek_opt t.retired with
      | Some r when r.rver <= horizon ->
          ignore (Queue.pop t.retired);
          ripe := r :: !ripe;
          pop ()
      | _ -> ()
    in
    pop ();
    match !ripe with
    | [] -> ()
    | ripe ->
        E.with_op t.esys ~tid (fun () ->
            List.iter
              (fun r ->
                E.pdelete t.esys ~tid r.rpayload;
                match r.rtomb with None -> () | Some tomb -> E.pdelete t.esys ~tid tomb)
              ripe)
  end

let pending_reclaim t =
  Util.Sched.yield "mhamt.pending_reclaim";
  Util.Spin_lock.with_lock t.wlock (fun () -> Queue.length t.retired)

(* ---- reads (current version) ---- *)

(* Lock-free and optimistic: between reading the root and decoding the
   payload, a writer may retire *and reclaim* the very record we
   resolved — observable only as [Use_after_free] ([pdelete] marks the
   handle dead before any reuse), in which case the newer root has the
   answer.  Each retry needs another completed mutation, so the loop
   terminates in any finite schedule. *)
let rec get t ~tid key =
  Util.Sched.yield "mhamt.get";
  let _, root = Atomic.get t.state in
  match find_entry root (hkey t key) 0 key with
  | None -> None
  | Some e -> ( try Some (value_of t ~tid e) with Errors.Use_after_free -> get t ~tid key)

let contains t ~tid:_ key =
  Util.Sched.yield "mhamt.contains";
  let _, root = Atomic.get t.state in
  find_entry root (hkey t key) 0 key <> None

(* ---- writes ---- *)

(* All mutations run under [wlock]: the HAMT trades mhashmap's
   per-bucket write concurrency for lock-free reads and O(1) whole-map
   snapshots.  The new pair is published *before* reclamation computes
   the snapshot horizon, so a concurrent [snapshot] either registered
   its version under [slock] first (raising the horizon) or will read
   the new pair — never a root whose blocks this reclamation frees. *)

let put t ~tid key value =
  Util.Sched.yield "mhamt.put";
  Util.Spin_lock.with_lock t.wlock (fun () ->
      let prev =
        E.with_op t.esys ~tid (fun () ->
            let ver, root = Atomic.get t.state in
            let seq = ver + 1 in
            let payload = Rec.pnew t.esys ~tid (key, seq, Some value) in
            let root', old = insert root (hkey t key) 0 { ekey = key; payload } in
            let prev = Option.map (value_of t ~tid) old in
            Atomic.set t.state (seq, root');
            (match old with
            | Some e -> Queue.push { rver = seq; rpayload = e.payload; rtomb = None } t.retired
            | None -> Atomic.incr t.size);
            prev)
      in
      reclaim_locked t ~tid;
      prev)

let put_if_absent t ~tid key value =
  Util.Sched.yield "mhamt.put_if_absent";
  Util.Spin_lock.with_lock t.wlock (fun () ->
      let ver, root = Atomic.get t.state in
      if find_entry root (hkey t key) 0 key <> None then false
      else begin
        E.with_op t.esys ~tid (fun () ->
            let seq = ver + 1 in
            let payload = Rec.pnew t.esys ~tid (key, seq, Some value) in
            let root', _ = insert root (hkey t key) 0 { ekey = key; payload } in
            Atomic.set t.state (seq, root');
            Atomic.incr t.size);
        reclaim_locked t ~tid;
        true
      end)

let remove t ~tid key =
  Util.Sched.yield "mhamt.remove";
  Util.Spin_lock.with_lock t.wlock (fun () ->
      let ver, root = Atomic.get t.state in
      match remove_entry root (hkey t key) 0 key with
      | None -> None
      | Some (rest, removed) ->
          let prev =
            E.with_op t.esys ~tid (fun () ->
                let seq = ver + 1 in
                let prev = value_of t ~tid removed in
                (* the tombstone carries the remove's durability while
                   the removed record's bytes stay pinned by snapshots *)
                let tomb = Rec.pnew t.esys ~tid (key, seq, None) in
                Atomic.set t.state (seq, Option.value rest ~default:nil);
                Queue.push { rver = seq; rpayload = removed.payload; rtomb = Some tomb } t.retired;
                Atomic.decr t.size;
                prev)
          in
          reclaim_locked t ~tid;
          Some prev)

(* Atomic read-modify-write under the writer lock — the primitive the
   kvstore's add/replace/incr/decr/CAS ops build on. *)
let update t ~tid key f =
  Util.Sched.yield "mhamt.update";
  Util.Spin_lock.with_lock t.wlock (fun () ->
      let ver, root = Atomic.get t.state in
      let h = hkey t key in
      let prev =
        match find_entry root h 0 key with
        | Some e -> (
            let old = value_of t ~tid e in
            (match f (Some old) with
            | Some value ->
                E.with_op t.esys ~tid (fun () ->
                    let seq = ver + 1 in
                    let payload = Rec.pnew t.esys ~tid (key, seq, Some value) in
                    let root', _ = insert root h 0 { ekey = key; payload } in
                    Atomic.set t.state (seq, root');
                    Queue.push { rver = seq; rpayload = e.payload; rtomb = None } t.retired)
            | None -> ());
            Some old)
        | None ->
            (match f None with
            | Some value ->
                E.with_op t.esys ~tid (fun () ->
                    let seq = ver + 1 in
                    let payload = Rec.pnew t.esys ~tid (key, seq, Some value) in
                    let root', _ = insert root h 0 { ekey = key; payload } in
                    Atomic.set t.state (seq, root');
                    Atomic.incr t.size)
            | None -> ());
            None
      in
      reclaim_locked t ~tid;
      prev)

(* ---- snapshots ---- *)

let snapshot t =
  Util.Sched.yield "mhamt.snapshot";
  Util.Spin_lock.with_lock t.slock (fun () ->
      let ver, root = Atomic.get t.state in
      let id = t.next_snap in
      t.next_snap <- id + 1;
      Hashtbl.replace t.snaps id ver;
      { v_owner = t; v_root = root; v_version = ver; v_id = id; v_released = Atomic.make false })

let release t v ~tid =
  Util.Sched.yield "mhamt.release";
  if t != v.v_owner then invalid_arg "Mhamt.release: view belongs to a different map";
  if not (Atomic.exchange v.v_released true) then begin
    Util.Spin_lock.with_lock t.slock (fun () -> Hashtbl.remove t.snaps v.v_id);
    (* whatever this view alone was pinning is ripe now *)
    Util.Spin_lock.with_lock t.wlock (fun () -> reclaim_locked t ~tid)
  end

module View = struct
  let live v = if Atomic.get v.v_released then invalid_arg "Mhamt.View: view was released"
  [@@montage.allow "R2: release-flag guard; every View entry point yields before calling it"]

  let version v =
    Util.Sched.yield "mhamt.view_version";
    v.v_version

  (* View reads never race reclamation: an unreleased view's version is
     in the registry, holding the horizon below every payload its root
     reaches — no retry loop needed. *)
  let find v ~tid key =
    Util.Sched.yield "mhamt.view_find";
    live v;
    let t = v.v_owner in
    match find_entry v.v_root (hkey t key) 0 key with
    | None -> None
    | Some e -> Some (value_of t ~tid e)

  let mem v key =
    Util.Sched.yield "mhamt.view_mem";
    live v;
    find_entry v.v_root (hkey v.v_owner key) 0 key <> None

  let iter v ~tid f =
    Util.Sched.yield "mhamt.view_iter";
    live v;
    iter_entries v.v_root (fun e -> f e.ekey (value_of v.v_owner ~tid e))

  let fold v ~tid f acc =
    Util.Sched.yield "mhamt.view_fold";
    live v;
    let acc = ref acc in
    iter_entries v.v_root (fun e -> acc := f !acc e.ekey (value_of v.v_owner ~tid e));
    !acc

  let to_alist v ~tid = fold v ~tid (fun acc k value -> (k, value) :: acc) []

  let cardinal v =
    Util.Sched.yield "mhamt.view_cardinal";
    live v;
    let n = ref 0 in
    iter_entries v.v_root (fun _ -> incr n);
    !n
end

(* Consistent listing of the current version: an internal snapshot,
   released before returning. *)
let to_alist t ~tid =
  Util.Sched.yield "mhamt.to_alist";
  let v = snapshot t in
  Fun.protect ~finally:(fun () -> release t v ~tid) (fun () -> View.to_alist v ~tid)

(* ---- recovery ---- *)

(* Per key the largest-[seq] record wins; a tombstone winner erases the
   key.  Losers and winning tombstones are queued at horizon version 0
   so the first post-recovery mutation (or release) reclaims them —
   recovery itself opens no epoch operation and is idempotent under
   re-crash.  [threads > 1] decodes slices in parallel domains; the
   winner fold and trie build stay sequential (they are cheap relative
   to decode, and the trie is immutable). *)
let recover ?hash ?(threads = 1) esys payloads =
  let decode_slice slice =
    Array.map
      (fun p ->
        let k, s, v = Rec.get_unsafe esys p in
        (k, s, v, p))
      slice
  in
  let decoded =
    if threads <= 1 then decode_slice payloads
    else
      let slices = E.slices payloads ~k:threads in
      let domains = Array.map (fun s -> Domain.spawn (fun () -> decode_slice s)) slices in
      Array.concat (Array.to_list (Array.map Domain.join domains))
  in
  let best : (string, int * string option * E.pblk) Hashtbl.t =
    Hashtbl.create (max 16 (Array.length decoded))
  in
  let superseded = ref [] in
  Array.iter
    (fun (k, s, v, p) ->
      match Hashtbl.find_opt best k with
      | Some (s0, _, _) when s0 >= s -> superseded := p :: !superseded
      | Some (_, _, p0) ->
          superseded := p0 :: !superseded;
          Hashtbl.replace best k (s, v, p)
      | None -> Hashtbl.add best k (s, v, p))
    decoded;
  let t = create ?hash esys in
  let root, max_seq, live_count, tombs =
    Hashtbl.fold
      (fun k (s, v, p) (root, max_seq, live_count, tombs) ->
        let max_seq = max max_seq s in
        match v with
        | Some _ ->
            let root = fst (insert root (hkey t k) 0 { ekey = k; payload = p }) in
            (root, max_seq, live_count + 1, tombs)
        | None -> (root, max_seq, live_count, p :: tombs))
      best (nil, 0, 0, [])
  in
  Atomic.set t.state (max_seq, root);
  Atomic.set t.size live_count;
  List.iter
    (fun p -> Queue.push { rver = 0; rpayload = p; rtomb = None } t.retired)
    (tombs @ !superseded);
  t
[@@montage.allow
  "R2: recovery-time initialization; the map is not shared with any \
   operation until recover returns"]
