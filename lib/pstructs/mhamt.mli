(** Montage-backed persistent HAMT with O(1) snapshots.

    A hash-array-mapped trie (branching factor 16, inlined collision
    leaves) whose abstract state — the bag of key/value records — lives
    in NVM payloads, while the trie itself is {e immutable} transient
    OCaml-heap data: every mutation path-copies the nodes from the
    changed leaf to the root and publishes the new root with one atomic
    store.  A {!snapshot} is therefore a single root read: the returned
    {!view} names an immutable version that {!View.find}/{!View.fold}
    can traverse concurrently with writers, for as long as the caller
    keeps it — long scans and online backups never block the write
    path, and writers never block scans.

    Persistence follows the Montage buffered-durability contract.  Each
    record payload carries [(key, seq, value-or-tombstone)] where [seq]
    is the map's version counter at the mutation: an overwrite writes a
    fresh payload (never [pset] — a snapshot may still be reading the
    old bytes) and a remove writes a tombstone, so recovery keeps, per
    key, the record with the largest [seq] and drops tombstoned keys.
    Superseded payloads are {e retired}, not deleted: a retired payload
    is handed to {!Montage.Epoch_sys.pdelete} (and from there to the
    epoch system's exchange-claimed reclamation) only once no live
    snapshot can still reach it — the tombstone that shadows it is
    deleted in the same operation, keeping every crash state
    prefix-consistent.

    Reads of the {e current} map are lock-free and optimistic: a lookup
    that loses a race against retirement of the very payload it resolved
    (observable only as [Use_after_free]) retries from the newer root.
    View reads need no retry — an unreleased view pins its payloads. *)

type t

type view

(** [hash] defaults to {!Hashtbl.hash}; tests inject degenerate hashes
    to force collision leaves.  Only the low 30 bits are used. *)
val create : ?hash:(string -> int) -> Montage.Epoch_sys.t -> t

val esys : t -> Montage.Epoch_sys.t

(** Number of live keys. *)
val size : t -> int

(** The version counter: total mutations applied (also the [seq]
    stamped into the newest payload). *)
val version : t -> int

(** Retired payloads still pinned by live snapshots (or awaiting the
    next reclamation point).  Reaches 0 once every view is released and
    a mutation or {!release} has run. *)
val pending_reclaim : t -> int

(** Lock-free read of the current version. *)
val get : t -> tid:int -> string -> string option

val contains : t -> tid:int -> string -> bool

(** Insert, or overwrite if present; returns the previous value. *)
val put : t -> tid:int -> string -> string -> string option

(** Insert only if absent; [true] on success. *)
val put_if_absent : t -> tid:int -> string -> string -> bool

(** Atomic read-modify-write under the writer lock: [Some v'] stores
    [v'] (inserting if absent), [None] leaves the map unchanged.
    Returns the previous value. *)
val update : t -> tid:int -> string -> (string option -> string option) -> string option

(** Remove; returns the removed value.  Durability is carried by a
    tombstone payload until the removed record is reclaimed. *)
val remove : t -> tid:int -> string -> string option

(** Consistent listing of the current version (an internal snapshot —
    safe concurrently with writers). *)
val to_alist : t -> tid:int -> (string * string) list

(** {1 Snapshots} *)

(** O(1): one atomic root read plus a registry insert.  The view pins
    every payload reachable from its root until {!release}. *)
val snapshot : t -> view

(** Unpin the view and reclaim whatever it alone was holding.  The
    first call wins; reading a released view raises
    [Invalid_argument]. *)
val release : t -> view -> tid:int -> unit

module View : sig
  (** The map version this view names. *)
  val version : view -> int

  val find : view -> tid:int -> string -> string option
  val mem : view -> string -> bool
  val iter : view -> tid:int -> (string -> string -> unit) -> unit
  val fold : view -> tid:int -> ('a -> string -> string -> 'a) -> 'a -> 'a
  val to_alist : view -> tid:int -> (string * string) list
  val cardinal : view -> int
end

(** {1 Recovery} *)

(** Rebuild from recovered payloads: per key the largest-[seq] record
    wins, tombstone winners erase the key, and every superseded block
    is queued for reclamation at the first post-recovery mutation.
    [threads > 1] decodes payload slices in parallel domains. *)
val recover :
  ?hash:(string -> int) -> ?threads:int -> Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t
