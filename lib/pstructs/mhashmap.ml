(* Montage hashmap (paper Fig. 2): a lock-per-bucket chained map whose
   *abstract* state — the bag of key/value pairs — lives in NVM
   payloads, while the entire lookup structure (bucket array, chain
   nodes, cached keys) is transient OCaml-heap data rebuilt on
   recovery.

   Each chain node caches its key in DRAM so traversal touches NVM only
   to read values.  Updates follow the Montage discipline: [pset] may
   return a fresh handle (a copying update across an epoch boundary),
   which the node — the single transient object indirecting to the
   payload, per well-formedness constraint 4 — reinstalls. *)

module E = Montage.Epoch_sys
module Kv = Montage.Payload.Kv

type node = { key : string; mutable payload : E.pblk; mutable next : node option }

type bucket = { lock : Util.Spin_lock.t; mutable head : node option }

type t = { esys : E.t; buckets : bucket array; size : int Atomic.t }

let create ?(buckets = 1 lsl 16) esys =
  {
    esys;
    buckets = Array.init buckets (fun _ -> { lock = Util.Spin_lock.create (); head = None });
    size = Atomic.make 0;
  }

let bucket_of t key = t.buckets.(Hashtbl.hash key land (Array.length t.buckets - 1))

let size t = Atomic.get t.size
[@@montage.allow "R2: read-only statistics observer"]

let esys t = t.esys

(* Read-only: no BEGIN_OP needed (paper §3.1); the bucket lock is the
   transient synchronization. *)
let get t ~tid key =
  Util.Sched.yield "mhashmap.get";
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec find = function
        | None -> None
        | Some n when String.equal n.key key ->
            (* value-only decode: the node already caches the key, and a
               warm handle returns its memo without touching NVM *)
            Some (Kv.get_value t.esys ~tid n.payload)
        | Some n -> find n.next
      in
      find b.head)

let contains t ~tid:_ key =
  Util.Sched.yield "mhashmap.contains";
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec find = function
        | None -> false
        | Some n when String.equal n.key key -> true
        | Some n -> find n.next
      in
      find b.head)

(* Insert, or update if the key exists; returns the previous value. *)
let put t ~tid key value =
  Util.Sched.yield "mhashmap.put";
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      E.with_op t.esys ~tid (fun () ->
          let rec walk prev curr =
            match curr with
            | Some n when String.equal n.key key ->
                let old = Kv.get_value t.esys ~tid n.payload in
                n.payload <- Kv.set t.esys ~tid n.payload (key, value);
                Some old
            | Some n when n.key > key ->
                let payload = Kv.pnew t.esys ~tid (key, value) in
                let fresh = { key; payload; next = curr } in
                (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
                Atomic.incr t.size;
                None
            | Some n -> walk (Some n) n.next
            | None ->
                let payload = Kv.pnew t.esys ~tid (key, value) in
                let fresh = { key; payload; next = None } in
                (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
                Atomic.incr t.size;
                None
          in
          walk None b.head))

(* Insert only if absent; true on success. *)
let put_if_absent t ~tid key value =
  Util.Sched.yield "mhashmap.put_if_absent";
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec present = function
        | None -> false
        | Some n when String.equal n.key key -> true
        | Some n when n.key > key -> false
        | Some n -> present n.next
      in
      if present b.head then false
      else
        E.with_op t.esys ~tid (fun () ->
            let payload = Kv.pnew t.esys ~tid (key, value) in
            let rec splice prev curr =
              match curr with
              | Some n when n.key < key -> splice (Some n) n.next
              | _ ->
                  let fresh = { key; payload; next = curr } in
                  (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh)
            in
            splice None b.head;
            Atomic.incr t.size;
            true))

(* Atomic read-modify-write: run [f] on the key's current value (None
   if absent) under the bucket lock and store its [Some] result —
   inserting if the key was absent — or leave the map unchanged on
   [None].  Returns the previous value.  This is the primitive the
   kvstore's add/replace/incr/decr/CAS ops build on: get-then-put
   without the lock would lose concurrent updates. *)
let update t ~tid key f =
  Util.Sched.yield "mhashmap.update";
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let insert prev curr value =
        E.with_op t.esys ~tid (fun () ->
            let payload = Kv.pnew t.esys ~tid (key, value) in
            let fresh = { key; payload; next = curr } in
            (match prev with None -> b.head <- Some fresh | Some p -> p.next <- Some fresh);
            Atomic.incr t.size)
      in
      let rec walk prev curr =
        match curr with
        | Some n when String.equal n.key key ->
            let old = Kv.get_value t.esys ~tid n.payload in
            (match f (Some old) with
            | Some value ->
                E.with_op t.esys ~tid (fun () ->
                    n.payload <- Kv.set t.esys ~tid n.payload (key, value))
            | None -> ());
            Some old
        | Some n when n.key > key ->
            (match f None with Some value -> insert prev curr value | None -> ());
            None
        | Some n -> walk (Some n) n.next
        | None ->
            (match f None with Some value -> insert prev curr value | None -> ());
            None
      in
      walk None b.head)

(* Remove; returns the removed value. *)
let remove t ~tid key =
  Util.Sched.yield "mhashmap.remove";
  let b = bucket_of t key in
  Util.Spin_lock.with_lock b.lock (fun () ->
      let rec walk prev curr =
        match curr with
        | Some n when String.equal n.key key ->
            E.with_op t.esys ~tid (fun () ->
                let old = Kv.get_value t.esys ~tid n.payload in
                E.pdelete t.esys ~tid n.payload;
                (match prev with None -> b.head <- n.next | Some p -> p.next <- n.next);
                Atomic.decr t.size;
                Some old)
        | Some n when n.key > key -> None
        | Some n -> walk (Some n) n.next
        | None -> None
      in
      walk None b.head)

(* Snapshot of all pairs (quiescent use only: tests, recovery checks). *)
let to_alist t ~tid =
  Array.fold_left
    (fun acc b ->
      Util.Spin_lock.with_lock b.lock (fun () ->
          let rec collect acc = function
            | None -> acc
            | Some n ->
                let k, v = Kv.get t.esys ~tid n.payload in
                collect ((k, v) :: acc) n.next
          in
          collect acc b.head))
    [] t.buckets

(* ---- recovery ---- *)

(* Rebuild the transient index from recovered payloads.  Single slice:
   the whole map; multiple slices can be inserted by parallel domains
   via [recover_slice] (bucket locks make it safe). *)
let recover_slice t payloads =
  Array.iter
    (fun p ->
      let key, _ = Kv.get_unsafe t.esys p in
      let b = bucket_of t key in
      Util.Spin_lock.with_lock b.lock (fun () ->
          let rec splice prev curr =
            match curr with
            | Some n when n.key < key -> splice (Some n) n.next
            | _ ->
                let fresh = { key; payload = p; next = curr } in
                (match prev with None -> b.head <- Some fresh | Some pr -> pr.next <- Some fresh)
          in
          splice None b.head;
          Atomic.incr t.size))
    payloads
[@@montage.allow
  "R2: recovery-time counter; parallel slices' incrs commute and \
   recovery completes before the map is shared with any operation"]

let recover ?(buckets = 1 lsl 16) ?(threads = 1) esys payloads =
  let t = create ~buckets esys in
  if threads <= 1 then recover_slice t payloads
  else begin
    let slices = E.slices payloads ~k:threads in
    let domains = Array.map (fun s -> Domain.spawn (fun () -> recover_slice t s)) slices in
    Array.iter Domain.join domains
  end;
  t
