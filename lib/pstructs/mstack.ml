(* Montage stack: LIFO analog of the queue — single lock, sequence-
   numbered payloads, transient list index.  Recovery sorts by sequence
   number descending so the newest surviving push is on top. *)

module E = Montage.Epoch_sys
module Seq = Montage.Payload.Seq

type t = {
  esys : E.t;
  lock : Util.Spin_lock.t;
  mutable items : (int * E.pblk) list;
  mutable next_seq : int;
}

let create esys = { esys; lock = Util.Spin_lock.create (); items = []; next_seq = 1 }

let esys t = t.esys
let length t = Util.Spin_lock.with_lock t.lock (fun () -> List.length t.items)
let is_empty t = Util.Spin_lock.with_lock t.lock (fun () -> t.items = [])

let push t ~tid value =
  Util.Sched.yield "mstack.push";
  Util.Spin_lock.with_lock t.lock (fun () ->
      E.with_op t.esys ~tid (fun () ->
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          let payload = Seq.pnew t.esys ~tid (seq, value) in
          t.items <- (seq, payload) :: t.items))

let pop t ~tid =
  Util.Sched.yield "mstack.pop";
  Util.Spin_lock.with_lock t.lock (fun () ->
      match t.items with
      | [] -> None
      | (_, payload) :: rest ->
          E.with_op t.esys ~tid (fun () ->
              let _, value = Seq.get t.esys ~tid payload in
              E.pdelete t.esys ~tid payload;
              t.items <- rest;
              Some value))

let top t ~tid =
  Util.Sched.yield "mstack.top";
  Util.Spin_lock.with_lock t.lock (fun () ->
      match t.items with
      | [] -> None
      | (_, payload) :: _ ->
          let _, value = Seq.get t.esys ~tid payload in
          Some value)

let recover esys payloads =
  let t = create esys in
  let entries = Array.map (fun p -> (fst (Seq.get_unsafe esys p), p)) payloads in
  Array.sort (fun (a, _) (b, _) -> compare b a) entries;
  t.items <- Array.to_list entries;
  (match Array.length entries with
  | 0 -> ()
  | _ -> t.next_seq <- fst entries.(0) + 1);
  t
[@@montage.allow
  "R1: recovery builds the stack before it is shared with any \
   operation; normal items/next_seq writers hold the stack lock"]
