(* Montage general graph (paper §6.3).

   Abstract state in NVM: one payload per vertex (id + attributes) and
   one payload per edge (the two endpoint ids + attributes).  Crucially,
   edge payloads *name* their endpoints but vertex payloads know nothing
   of their edges — the paper's rule against long persistent pointer
   chains.  Connectivity lives in a transient adjacency index
   (per-vertex hash tables on the OCaml heap), rebuilt on recovery.

   Concurrency: edge operations take a shared pass on a global
   reader-writer lock plus the two endpoint locks in id order; vertex
   operations (which restructure adjacency) take the writer side.  This
   matches the paper's observation that AddVertex/RemoveVertex are the
   expensive operations.

   Payload wire format:  'V' id attrs   |   'E' src dst attrs. *)

module E = Montage.Epoch_sys

module Codec = struct
  let encode_vertex ~id ~attrs =
    let b = Bytes.create (9 + String.length attrs) in
    Bytes.set b 0 'V';
    Bytes.set_int64_le b 1 (Int64.of_int id);
    Bytes.blit_string attrs 0 b 9 (String.length attrs);
    b

  let encode_edge ~src ~dst ~attrs =
    let b = Bytes.create (17 + String.length attrs) in
    Bytes.set b 0 'E';
    Bytes.set_int64_le b 1 (Int64.of_int src);
    Bytes.set_int64_le b 9 (Int64.of_int dst);
    Bytes.blit_string attrs 0 b 17 (String.length attrs);
    b

  type decoded =
    | Vertex of { id : int; attrs : string }
    | Edge of { src : int; dst : int; attrs : string }

  let decode b =
    match Bytes.get b 0 with
    | 'V' ->
        Vertex
          {
            id = Int64.to_int (Bytes.get_int64_le b 1);
            attrs = Bytes.sub_string b 9 (Bytes.length b - 9);
          }
    | 'E' ->
        Edge
          {
            src = Int64.to_int (Bytes.get_int64_le b 1);
            dst = Int64.to_int (Bytes.get_int64_le b 9);
            attrs = Bytes.sub_string b 17 (Bytes.length b - 17);
          }
    | c -> invalid_arg (Printf.sprintf "Mgraph.decode: bad tag %C" c)
end

(* Typed payload instance over the tagged codec: warm handles serve
   attribute reads from their decoded memo without touching NVM. *)
module Gp = Montage.Payload.Make (struct
  type t = Codec.decoded

  let encode = function
    | Codec.Vertex { id; attrs } -> Codec.encode_vertex ~id ~attrs
    | Codec.Edge { src; dst; attrs } -> Codec.encode_edge ~src ~dst ~attrs

  let decode = Codec.decode
end)

type vertex = {
  id : int;
  mutable payload : E.pblk;
  (* neighbor id -> edge payload handle; the handle is shared with the
     neighbor's table (one payload per edge) via a mutable box *)
  adj : (int, E.pblk ref) Hashtbl.t;
}

type t = {
  esys : E.t;
  capacity : int;
  vertices : vertex option array;
  locks : Util.Spin_lock.t array;
  structure : Util.Rw_lock.t;
  vertex_count : int Atomic.t;
  edge_count : int Atomic.t;
}

let create ?(capacity = 1 lsl 20) esys =
  {
    esys;
    capacity;
    vertices = Array.make capacity None;
    locks = Array.init capacity (fun _ -> Util.Spin_lock.create ());
    structure = Util.Rw_lock.create ();
    vertex_count = Atomic.make 0;
    edge_count = Atomic.make 0;
  }

let esys t = t.esys
let vertex_count t = Atomic.get t.vertex_count
[@@montage.allow "R2: read-only statistics observer"]

let edge_count t = Atomic.get t.edge_count
[@@montage.allow "R2: read-only statistics observer"]

let check_id t id =
  if id < 0 || id >= t.capacity then invalid_arg (Printf.sprintf "Mgraph: id %d out of range" id)

(* canonical (src, dst) ordering so each undirected edge is stored once *)
let canonical u v = if u <= v then (u, v) else (v, u)

let lock_pair t u v f =
  let a, b = canonical u v in
  Util.Spin_lock.with_lock t.locks.(a) (fun () ->
      if a = b then f ()
      else Util.Spin_lock.with_lock t.locks.(b) f)

(* ---- vertex operations (exclusive structural access) ---- *)

let add_vertex t ~tid id attrs =
  Util.Sched.yield "mgraph.add_vertex";
  check_id t id;
  Util.Rw_lock.with_write t.structure (fun () ->
      match t.vertices.(id) with
      | Some _ -> false
      | None ->
          E.with_op t.esys ~tid (fun () ->
              let payload = Gp.pnew t.esys ~tid (Codec.Vertex { id; attrs }) in
              t.vertices.(id) <- Some { id; payload; adj = Hashtbl.create 8 };
              Atomic.incr t.vertex_count;
              true))

(* Remove a vertex and all incident edges (edge payloads deleted too:
   they name the dead vertex). *)
let remove_vertex t ~tid id =
  Util.Sched.yield "mgraph.remove_vertex";
  check_id t id;
  Util.Rw_lock.with_write t.structure (fun () ->
      match t.vertices.(id) with
      | None -> false
      | Some v ->
          E.with_op t.esys ~tid (fun () ->
              Hashtbl.iter
                (fun peer edge ->
                  E.pdelete t.esys ~tid !edge;
                  (match t.vertices.(peer) with
                  | Some pv -> Hashtbl.remove pv.adj id
                  | None -> ());
                  Atomic.decr t.edge_count)
                v.adj;
              E.pdelete t.esys ~tid v.payload;
              t.vertices.(id) <- None;
              Atomic.decr t.vertex_count;
              true))

let has_vertex t id =
  check_id t id;
  t.vertices.(id) <> None

let vertex_attrs t ~tid:_ id =
  check_id t id;
  Util.Rw_lock.with_read t.structure (fun () ->
      match t.vertices.(id) with
      | None -> None
      | Some v -> (
          match Gp.get_unsafe t.esys v.payload with
          | Codec.Vertex { attrs; _ } -> Some attrs
          | Codec.Edge _ ->
              Montage.Errors.corrupt
                "Mgraph.vertex_attrs: payload uid %d for vertex %d decoded as an edge" v.payload.E.uid
                id))

(* ---- edge operations (shared structural access + endpoint locks) ---- *)

let add_edge t ~tid src dst attrs =
  Util.Sched.yield "mgraph.add_edge";
  check_id t src;
  check_id t dst;
  if src = dst then false
  else
    Util.Rw_lock.with_read t.structure (fun () ->
        lock_pair t src dst (fun () ->
            match (t.vertices.(src), t.vertices.(dst)) with
            | Some u, Some v when not (Hashtbl.mem u.adj dst) ->
                E.with_op t.esys ~tid (fun () ->
                    let s, d = canonical src dst in
                    let payload = Gp.pnew t.esys ~tid (Codec.Edge { src = s; dst = d; attrs }) in
                    let box = ref payload in
                    Hashtbl.replace u.adj dst box;
                    Hashtbl.replace v.adj src box;
                    Atomic.incr t.edge_count;
                    true)
            | _ -> false))

let remove_edge t ~tid src dst =
  Util.Sched.yield "mgraph.remove_edge";
  check_id t src;
  check_id t dst;
  if src = dst then false
  else
    Util.Rw_lock.with_read t.structure (fun () ->
        lock_pair t src dst (fun () ->
            match (t.vertices.(src), t.vertices.(dst)) with
            | Some u, Some v -> (
                match Hashtbl.find_opt u.adj dst with
                | None -> false
                | Some box ->
                    E.with_op t.esys ~tid (fun () ->
                        E.pdelete t.esys ~tid !box;
                        Hashtbl.remove u.adj dst;
                        Hashtbl.remove v.adj src;
                        Atomic.decr t.edge_count;
                        true))
            | _ -> false))

let has_edge t src dst =
  Util.Sched.yield "mgraph.has_edge";
  check_id t src;
  check_id t dst;
  Util.Rw_lock.with_read t.structure (fun () ->
      match t.vertices.(src) with Some u -> Hashtbl.mem u.adj dst | None -> false)

let edge_attrs t ~tid:_ src dst =
  Util.Rw_lock.with_read t.structure (fun () ->
      match t.vertices.(src) with
      | None -> None
      | Some u -> (
          match Hashtbl.find_opt u.adj dst with
          | None -> None
          | Some box -> (
              match Gp.get_unsafe t.esys !box with
              | Codec.Edge { attrs; _ } -> Some attrs
              | Codec.Vertex _ ->
                  Montage.Errors.corrupt
                    "Mgraph.edge_attrs: payload uid %d for edge (%d, %d) decoded as a vertex"
                    !box.E.uid src dst)))

let neighbors t id =
  check_id t id;
  Util.Rw_lock.with_read t.structure (fun () ->
      match t.vertices.(id) with
      | None -> []
      | Some v -> Hashtbl.fold (fun peer _ acc -> peer :: acc) v.adj [])

let degree t id =
  check_id t id;
  match t.vertices.(id) with Some v -> Hashtbl.length v.adj | None -> 0

(* ---- recovery ---- *)

(* Rebuild from recovered payloads: vertices first (slot writes are
   disjoint by id, so parallel slices need no locks), then edges (the
   endpoint locks serialize adjacency updates).  An edge whose endpoint
   did not survive is impossible under the epoch-consistent cut, but we
   drop such edges defensively rather than crash recovery. *)
let recover ?(capacity = 1 lsl 20) ?(threads = 1) esys payloads =
  let t = create ~capacity esys in
  let vertex_phase slice =
    Array.iter
      (fun p ->
        match Gp.get_unsafe esys p with
        | Codec.Vertex { id; _ } ->
            t.vertices.(id) <- Some { id; payload = p; adj = Hashtbl.create 8 };
            Atomic.incr t.vertex_count
        | Codec.Edge _ -> ())
      slice
  in
  let edge_phase slice =
    Array.iter
      (fun p ->
        match Gp.get_unsafe esys p with
        | Codec.Vertex _ -> ()
        | Codec.Edge { src; dst; _ } ->
            lock_pair t src dst (fun () ->
                match (t.vertices.(src), t.vertices.(dst)) with
                | Some u, Some v ->
                    let box = ref p in
                    Hashtbl.replace u.adj dst box;
                    Hashtbl.replace v.adj src box;
                    Atomic.incr t.edge_count
                | _ -> ()))
      slice
  in
  if threads <= 1 then begin
    vertex_phase payloads;
    edge_phase payloads
  end
  else begin
    let slices = E.slices payloads ~k:threads in
    let d1 = Array.map (fun s -> Domain.spawn (fun () -> vertex_phase s)) slices in
    Array.iter Domain.join d1;
    let d2 = Array.map (fun s -> Domain.spawn (fun () -> edge_phase s)) slices in
    Array.iter Domain.join d2
  end;
  t
[@@montage.allow
  "R2: recovery-time counters; the incrs commute and recovery \
   completes (domains joined) before the graph is shared with any \
   operation"]
