(* Nonblocking Montage stack (paper §3.3): a Treiber stack whose
   linearizing CAS is [Everify.cas_verify], so every push/pop
   linearizes in the epoch that labeled its payloads.  When the clock
   advances mid-attempt the operation rolls back (deleting any payload
   it created — a same-epoch ALLOC, reclaimed instantly) and restarts
   in the new epoch, making the structure lock-free rather than
   wait-free, exactly as §3.3 describes.

   Payloads carry sequence numbers assigned from the predecessor, so a
   crash recovers the surviving prefix in LIFO order.  GC-managed nodes
   make ABA impossible. *)

module E = Montage.Epoch_sys
module V = Montage.Everify
module Seq = Montage.Payload.Seq

type node = { seq : int; payload : E.pblk; value : string; next : node option }

type t = { esys : E.t; top : node option V.t }

let create esys = { esys; top = V.make None }

let esys t = t.esys

let push t ~tid value =
  Util.Sched.yield "nb_stack.push";
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt None with
    | () -> E.end_op t.esys ~tid
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt payload_opt =
    let cur = V.load_verify t.esys t.top in
    let seq = match cur with None -> 1 | Some n -> n.seq + 1 in
    let payload =
      match payload_opt with
      | None -> Seq.pnew t.esys ~tid (seq, value)
      | Some p -> Seq.set t.esys ~tid p (seq, value) (* in place: same epoch *)
    in
    let node = { seq; payload; value; next = cur } in
    if V.cas_verify t.esys ~tid t.top ~expect:cur ~desired:(Some node) then ()
    else begin
      (* Either the top moved or the epoch advanced.  The latter makes
         our payload stale-labeled: destroy it and restart the op. *)
      (try E.check_epoch t.esys ~tid
       with Montage.Errors.Epoch_changed ->
         E.pdelete t.esys ~tid payload;
         raise Montage.Errors.Epoch_changed);
      attempt (Some payload)
    end
  in
  restart ()

let pop t ~tid =
  Util.Sched.yield "nb_stack.pop";
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt () with
    | result -> result
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt () =
    match V.load_verify t.esys t.top with
    | None ->
        E.end_op t.esys ~tid;
        None
    | Some node as cur ->
        if V.cas_verify t.esys ~tid t.top ~expect:cur ~desired:node.next then begin
          E.pdelete t.esys ~tid node.payload;
          E.end_op t.esys ~tid;
          Some node.value
        end
        else begin
          E.check_epoch t.esys ~tid;
          attempt ()
        end
  in
  restart ()

(* Read-only; no epoch bracketing needed. *)
let top_value t = match V.peek t.top with None -> None | Some n -> Some n.value

let length t =
  let rec count acc = function None -> acc | Some n -> count (acc + 1) n.next in
  count 0 (V.peek t.top)

let recover esys payloads =
  let t = create esys in
  let entries = Array.map (fun p -> (fst (Seq.get_unsafe esys p), p)) payloads in
  Array.sort (fun (a, _) (b, _) -> compare a b) entries;
  let chain =
    Array.fold_left
      (fun below (seq, p) ->
        let _, value = Seq.get_unsafe esys p in
        Some { seq; payload = p; value; next = below })
      None entries
  in
  ignore (V.cas esys t.top ~expect:(V.peek t.top) ~desired:chain);
  t
