(** Montage hashmap (paper Fig. 2): lock-per-bucket chained map whose
    abstract state — the bag of key/value pairs — lives in NVM
    payloads, while the entire lookup structure is transient OCaml-heap
    data rebuilt on recovery.

    All operations are linearizable; persistence follows the Montage
    buffered-durability contract: a crash rolls the map back to a
    consistent prefix two epochs old (or newer), and
    {!Montage.Epoch_sys.sync} forces the frontier forward. *)

type t

(** [buckets] must be a power of two. *)
val create : ?buckets:int -> Montage.Epoch_sys.t -> t

val esys : t -> Montage.Epoch_sys.t
val size : t -> int

(** Read-only lookup (no epoch bracketing; the bucket lock is the
    transient synchronization). *)
val get : t -> tid:int -> string -> string option

val contains : t -> tid:int -> string -> bool

(** Insert, or update if present; returns the previous value. *)
val put : t -> tid:int -> string -> string -> string option

(** Insert only if absent; [true] on success. *)
val put_if_absent : t -> tid:int -> string -> string -> bool

(** Atomic read-modify-write: [update t ~tid key f] runs [f] on the
    key's current value ([None] if absent) under the bucket lock;
    [Some v'] stores [v'] (inserting if absent), [None] leaves the map
    unchanged.  Returns the previous value.  The primitive behind the
    kvstore's add/replace/incr/decr/CAS operations. *)
val update : t -> tid:int -> string -> (string option -> string option) -> string option

(** Remove; returns the removed value. *)
val remove : t -> tid:int -> string -> string option

(** All pairs (quiescent use: tests, verification). *)
val to_alist : t -> tid:int -> (string * string) list

(** {1 Recovery} *)

(** Rebuild from recovered payloads; [threads > 1] rebuilds slices in
    parallel domains. *)
val recover : ?buckets:int -> ?threads:int -> Montage.Epoch_sys.t -> Montage.Epoch_sys.pblk array -> t

(** Insert one recovered slice into an existing map (parallel callers
    synchronize via the bucket locks). *)
val recover_slice : t -> Montage.Epoch_sys.pblk array -> unit
