(* Nonblocking Montage hashmap: a fixed array of Harris-style sorted
   kv lists (the Nb_list_set construction carrying values), giving the
   lock-free map the paper's §3.3/§6.1 alludes to.

   Like SOFT, atomic in-place update of an existing key is not offered
   — [add] is insert-if-absent and [remove] deletes — because a
   lock-free in-place update would need its own payload-swing protocol;
   the benchmark workloads (and SOFT's) are expressible without it.
   Linearization points are epoch-verified DCSS as in Nb_list_set. *)

module E = Montage.Epoch_sys
module V = Montage.Everify
module Kv = Montage.Payload.Kv

type node = { key : string; payload : E.pblk option; next : link V.t }
and link = { succ : node option; marked : bool }

type t = { esys : E.t; heads : node array }

let sentinel () = { key = ""; payload = None; next = V.make { succ = None; marked = false } }

let create ?(buckets = 1 lsl 12) esys =
  { esys; heads = Array.init buckets (fun _ -> sentinel ()) }

let esys t = t.esys
let bucket_of t key = t.heads.(Hashtbl.hash key land (Array.length t.heads - 1))

let rec search t head key =
  let rec advance pred pred_link =
    match pred_link.succ with
    | None -> (pred, pred_link, None)
    | Some curr ->
        let curr_link = V.load_verify t.esys curr.next in
        if curr_link.marked then begin
          let unlinked = { succ = curr_link.succ; marked = false } in
          if V.cas t.esys pred.next ~expect:pred_link ~desired:unlinked then advance pred unlinked
          else search t head key
        end
        else if curr.key < key then advance curr curr_link
        else (pred, pred_link, Some curr)
  in
  advance head (V.load_verify t.esys head.next)

(* Wait-free read: value of [key], traversing without helping. *)
let get t ~tid key =
  Util.Sched.yield "nb_hashmap.get";
  let head = bucket_of t key in
  let rec walk cursor =
    match cursor with
    | None -> None
    | Some node ->
        if node.key < key then walk (V.peek node.next).succ
        else if node.key = key && not (V.peek node.next).marked then
          match node.payload with
          | Some p -> Some (Kv.get_value t.esys ~tid p)
          | None -> None
        else None
  in
  walk (V.peek head.next).succ

let mem t key =
  let head = bucket_of t key in
  let rec walk cursor =
    match cursor with
    | None -> false
    | Some node ->
        if node.key < key then walk (V.peek node.next).succ
        else node.key = key && not (V.peek node.next).marked
  in
  walk (V.peek head.next).succ

(* Insert-if-absent; [false] when present. *)
let add t ~tid key value =
  Util.Sched.yield "nb_hashmap.add";
  let head = bucket_of t key in
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt None with
    | outcome ->
        E.end_op t.esys ~tid;
        outcome
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt payload_opt =
    let pred, pred_link, curr = search t head key in
    match curr with
    | Some node when node.key = key ->
        (match payload_opt with Some p -> E.pdelete t.esys ~tid p | None -> ());
        false
    | _ ->
        let payload =
          match payload_opt with
          | Some p -> p
          | None -> Kv.pnew t.esys ~tid (key, value)
        in
        let fresh = { key; payload = Some payload; next = V.make { succ = curr; marked = false } } in
        if
          V.cas_verify t.esys ~tid pred.next ~expect:pred_link
            ~desired:{ succ = Some fresh; marked = false }
        then true
        else begin
          (try E.check_epoch t.esys ~tid
           with Montage.Errors.Epoch_changed ->
             E.pdelete t.esys ~tid payload;
             raise Montage.Errors.Epoch_changed);
          attempt (Some payload)
        end
  in
  restart ()

let remove t ~tid key =
  Util.Sched.yield "nb_hashmap.remove";
  let head = bucket_of t key in
  let rec restart () =
    E.begin_op t.esys ~tid;
    match attempt () with
    | outcome ->
        E.end_op t.esys ~tid;
        outcome
    | exception Montage.Errors.Epoch_changed ->
        E.end_op t.esys ~tid;
        restart ()
  and attempt () =
    let pred, pred_link, curr = search t head key in
    match curr with
    | Some node when node.key = key ->
        let node_link = V.load_verify t.esys node.next in
        if node_link.marked then false
        else if
          V.cas_verify t.esys ~tid node.next ~expect:node_link
            ~desired:{ succ = node_link.succ; marked = true }
        then begin
          (match node.payload with Some p -> E.pdelete t.esys ~tid p | None -> ());
          ignore
            (V.cas t.esys pred.next ~expect:pred_link
               ~desired:{ succ = node_link.succ; marked = false });
          true
        end
        else begin
          E.check_epoch t.esys ~tid;
          attempt ()
        end
    | _ -> false
  in
  restart ()

(* Quiescent enumeration. *)
let to_alist t ~tid =
  Array.fold_left
    (fun acc head ->
      let rec walk acc = function
        | None -> acc
        | Some node ->
            let link = V.peek node.next in
            let acc =
              if link.marked then acc
              else
                match node.payload with
                | Some p -> Kv.get t.esys ~tid p :: acc
                | None -> acc
            in
            walk acc link.succ
      in
      walk acc (V.peek head.next).succ)
    [] t.heads

let size t = List.length (to_alist t ~tid:0)

(* ---- recovery ---- *)

let recover ?(buckets = 1 lsl 12) esys payloads =
  let t = create ~buckets esys in
  (* group per bucket, then build each chain sorted *)
  let per_bucket = Array.make buckets [] in
  Array.iter
    (fun p ->
      let key, _ = Kv.get_unsafe esys p in
      let idx = Hashtbl.hash key land (buckets - 1) in
      per_bucket.(idx) <- (key, p) :: per_bucket.(idx))
    payloads;
  Array.iteri
    (fun idx entries ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) entries in
      let chain =
        List.fold_left
          (fun below (key, p) ->
            Some { key; payload = Some p; next = V.make { succ = below; marked = false } })
          None sorted
      in
      let head = t.heads.(idx) in
      ignore (V.cas esys head.next ~expect:(V.peek head.next) ~desired:{ succ = chain; marked = false }))
    per_bucket;
  t
