(** A memcached-like key-value store over a pluggable map backend —
    the paper's §6.2 validation vehicle, reproducing the Kjellqvist et
    al. configuration: a protected-library build that client threads
    call directly, no socket layer.

    Items carry memcached metadata (flags, expiry, CAS id); expiry is
    lazy, as in memcached. *)

(** The map the store persists through: the Montage hashmap for the
    persistent build, a transient map for the DRAM/NVM references. *)
type backend = {
  get : tid:int -> string -> string option;
  put : tid:int -> string -> string -> string option;
  remove : tid:int -> string -> string option;
  update : tid:int -> string -> (string option -> string option) -> string option;
      (** Atomic read-modify-write: [f] runs on the current value under
          the backend's per-key synchronization; its [Some] result is
          stored (inserting if absent), [None] leaves the map
          unchanged; returns the previous value.  All conditional store
          ops (add/replace/incr/decr/cas) go through this hook. *)
}

(** Assemble a backend from bare map operations.  Without [?update],
    the derived read-modify-write is a plain get-then-put — fine for
    single-writer use and reference benchmarks, {e not} linearizable
    under racing conditional ops. *)
val backend :
  get:(tid:int -> string -> string option) ->
  put:(tid:int -> string -> string -> string option) ->
  remove:(tid:int -> string -> string option) ->
  ?update:(tid:int -> string -> (string option -> string option) -> string option) ->
  unit ->
  backend

type t

val create : backend -> t

(** Unconditional store (memcached SET).  [ttl_s <= 0] means never
    expires. *)
val set : t -> tid:int -> ?flags:int -> ?ttl_s:float -> string -> string -> unit

(** Returns (data, flags, cas id); [None] on miss or lazy expiry. *)
val get_full : t -> tid:int -> string -> (string * int * int) option

val get : t -> tid:int -> string -> string option

(** [true] when the key existed. *)
val delete : t -> tid:int -> string -> bool

(** Store only if absent (memcached ADD). *)
val add : t -> tid:int -> ?flags:int -> ?ttl_s:float -> string -> string -> bool

(** Store only if present (memcached REPLACE). *)
val replace : t -> tid:int -> ?flags:int -> ?ttl_s:float -> string -> string -> bool

type cas_outcome =
  | Stored  (** the id matched; the new value is in *)
  | Exists  (** the item changed since the client read it *)
  | Not_found  (** no live item under the key *)

(** Store only if the item's CAS id still equals [cas] — the id a prior
    {!get_full} returned (memcached CAS). *)
val compare_and_set :
  t -> tid:int -> ?flags:int -> ?ttl_s:float -> string -> cas:int -> string -> cas_outcome

(** Arithmetic on a decimal value; [None] if missing or non-numeric.
    DECR saturates at zero, as memcached specifies. *)
val incr : t -> tid:int -> string -> int -> int option

val decr : t -> tid:int -> string -> int -> int option

(** memcached FLUSH_ALL: retire every item currently in the store in
    O(1), with no per-key deletes — a cas-id watermark is published and
    the read path treats older items as lazily expired (removed on
    first touch, counted as [expired]).  With [delay_s > 0] the order
    takes effect that many seconds in the future.  Divergence from
    memcached's time-based rule: items stored {e during} the delay
    window carry ids above the watermark and survive the deadline. *)
val flush_all : t -> ?delay_s:float -> unit -> unit

(** (hits, misses, sets, deletes, expired). *)
val stats : t -> int * int * int * int * int

(** Test hook: replace the wall clock for expiry checks. *)
val set_clock : t -> (unit -> float) -> unit

(** {1 Ready-made backends} *)

val of_mhashmap : Pstructs.Mhashmap.t -> backend
val of_mhamt : Pstructs.Mhamt.t -> backend
val of_transient_map : Baselines.Transient_map.t -> backend
