(* A memcached-like key-value store over a pluggable map backend.

   The paper's §6.2 validates Montage on the Kjellqvist et al. variant
   of memcached: a protected-library build that client threads call
   directly, with no socket layer.  This store reproduces that
   configuration: memcached item semantics (flags, expiry, CAS id,
   incr/decr, stats) over any of the maps in this repository — the
   Montage hashmap for the persistent build, the transient map for the
   DRAM (T) / NVM (T) references.

   Item wire format inside the backend value:
     [4 flags | 8 expiry_unix_s (0 = never) | 8 cas id | data]. *)

type backend = {
  get : tid:int -> string -> string option;
  put : tid:int -> string -> string -> string option;
  remove : tid:int -> string -> string option;
  update : tid:int -> string -> (string option -> string option) -> string option;
      (* atomic read-modify-write: [f] runs on the current value under
         the backend's per-key synchronization; its [Some] result is
         stored (inserting if absent), [None] leaves the map unchanged;
         returns the previous value.  Conditional ops (add/replace/
         incr/decr/cas) go through this hook — composing them from
         [get] + [put] loses updates under concurrency. *)
}

(* Assemble a backend from bare map operations.  When the map exposes
   no atomic read-modify-write, the derived [update] is a plain
   get-then-put: fine for single-writer use and reference benchmarks,
   NOT linearizable under racing conditional ops. *)
let backend ~get ~put ~remove ?update () =
  let update =
    match update with
    | Some u -> u
    | None ->
        fun ~tid key f ->
          let old = get ~tid key in
          (match f old with Some v -> ignore (put ~tid key v) | None -> ());
          old
  in
  { get; put; remove; update }

(* statistic slots in the padded counter block *)
let stat_hits = 0
and stat_misses = 1
and stat_sets = 2
and stat_deletes = 3
and stat_expired = 4

(* One flush_all order: items whose cas id is below [mark] become
   invisible once the wall clock reaches [at].  A single atomic record
   swap makes the whole flush O(1) — no per-key deletes, mirroring how
   the epoch clock retires whole generations at once. *)
type flush_order = { mark : int; at : float }

type t = {
  backend : backend;
  cas_counter : int Atomic.t;
  stats : Util.Padded.counters; (* lock-free, padded: no hot-path lock *)
  flush : flush_order Atomic.t;
  (* test hook: lets expiry tests travel in time *)
  mutable now : unit -> float;
}

let item_header = 20

let encode_item ~flags ~expiry ~cas data =
  let b = Bytes.create (item_header + String.length data) in
  Bytes.set_int32_le b 0 (Int32.of_int flags);
  Bytes.set_int64_le b 4 (Int64.of_float expiry);
  Bytes.set_int64_le b 12 (Int64.of_int cas);
  Bytes.blit_string data 0 b item_header (String.length data);
  Bytes.unsafe_to_string b

let decode_item s =
  let b = Bytes.unsafe_of_string s in
  let flags = Int32.to_int (Bytes.get_int32_le b 0) in
  let expiry = Int64.to_float (Bytes.get_int64_le b 4) in
  let cas = Int64.to_int (Bytes.get_int64_le b 12) in
  (flags, expiry, cas, String.sub s item_header (String.length s - item_header))

let create backend =
  {
    backend;
    cas_counter = Atomic.make 1;
    stats = Util.Padded.make_counters 5;
    flush = Atomic.make { mark = 0; at = 0.0 };
    now = Unix.gettimeofday;
  }

let bump t slot = Util.Padded.incr t.stats slot

(* memcached FLUSH_ALL: retire every current item in one step.  The
   watermark is the cas counter at command time: every existing item has
   a smaller cas id, every later store a larger one, so visibility is a
   single integer compare on the read path.  With [delay_s > 0] the
   order arms in the future; items stored during the delay window carry
   ids above the watermark and survive (memcached's time-based variant
   would also retire those — we document the divergence in the mli). *)
let flush_all t ?(delay_s = 0.0) () =
  let at = if delay_s > 0.0 then t.now () +. delay_s else t.now () in
  let mark = Atomic.get t.cas_counter in
  (* keep the strongest order: a later watermark never retreats, and of
     equal watermarks the earlier deadline wins *)
  let rec install () =
    let cur = Atomic.get t.flush in
    let next =
      if mark > cur.mark then { mark; at }
      else if mark = cur.mark && at < cur.at then { mark; at }
      else cur
    in
    if next != cur && not (Atomic.compare_and_set t.flush cur next) then install ()
  in
  install ()

(* An item is flushed when an armed order's deadline has passed and the
   item predates its watermark. *)
let flushed t ~now cas =
  let o = Atomic.get t.flush in
  o.mark > 0 && cas < o.mark && now >= o.at

(* memcached SET: unconditional store. *)
let set t ~tid ?(flags = 0) ?(ttl_s = 0.0) key data =
  let expiry = if ttl_s > 0.0 then t.now () +. ttl_s else 0.0 in
  let cas = Atomic.fetch_and_add t.cas_counter 1 in
  ignore (t.backend.put ~tid key (encode_item ~flags ~expiry ~cas data));
  bump t stat_sets

(* memcached GET: returns (data, flags, cas). *)
let get_full t ~tid key =
  match t.backend.get ~tid key with
  | None ->
      bump t stat_misses;
      None
  | Some item ->
      let flags, expiry, cas, data = decode_item item in
      let now = t.now () in
      if (expiry > 0.0 && expiry < now) || flushed t ~now cas then begin
        (* lazy expiry, as memcached does; flushed items expire the
           same way on first touch *)
        ignore (t.backend.remove ~tid key);
        bump t stat_misses;
        bump t stat_expired;
        None
      end
      else begin
        bump t stat_hits;
        Some (data, flags, cas)
      end

let get t ~tid key = Option.map (fun (d, _, _) -> d) (get_full t ~tid key)

let delete t ~tid key =
  match t.backend.remove ~tid key with
  | None -> false
  | Some _ ->
      bump t stat_deletes;
      true

(* The conditional ops below run their decision inside [backend.update]
   so the check and the store are one atomic step; a racing writer
   cannot slip between them.  A stored item whose TTL has lapsed counts
   as absent (and is overwritten in place rather than removed first). *)

let live_item t now = function
  | None -> None
  | Some item ->
      let _, expiry, cas, _ = decode_item item in
      if (expiry > 0.0 && expiry < now) || flushed t ~now cas then None else Some item

(* memcached ADD: store only if absent. *)
let add t ~tid ?(flags = 0) ?(ttl_s = 0.0) key data =
  let now = t.now () in
  let expiry = if ttl_s > 0.0 then now +. ttl_s else 0.0 in
  let stored = ref false in
  ignore
    (t.backend.update ~tid key (fun cur ->
         match live_item t now cur with
         | Some _ -> None
         | None ->
             stored := true;
             let cas = Atomic.fetch_and_add t.cas_counter 1 in
             Some (encode_item ~flags ~expiry ~cas data)));
  if !stored then bump t stat_sets;
  !stored

(* memcached REPLACE: store only if present. *)
let replace t ~tid ?(flags = 0) ?(ttl_s = 0.0) key data =
  let now = t.now () in
  let expiry = if ttl_s > 0.0 then now +. ttl_s else 0.0 in
  let stored = ref false in
  ignore
    (t.backend.update ~tid key (fun cur ->
         match live_item t now cur with
         | None -> None
         | Some _ ->
             stored := true;
             let cas = Atomic.fetch_and_add t.cas_counter 1 in
             Some (encode_item ~flags ~expiry ~cas data)));
  if !stored then bump t stat_sets;
  !stored

(* memcached CAS: store only if the item's id matches the one the
   client last read. *)
type cas_outcome = Stored | Exists | Not_found

let compare_and_set t ~tid ?(flags = 0) ?(ttl_s = 0.0) key ~cas data =
  let now = t.now () in
  let expiry = if ttl_s > 0.0 then now +. ttl_s else 0.0 in
  let outcome = ref Not_found in
  ignore
    (t.backend.update ~tid key (fun cur ->
         match live_item t now cur with
         | None -> None
         | Some item ->
             let _, _, id, _ = decode_item item in
             if id <> cas then begin
               outcome := Exists;
               None
             end
             else begin
               outcome := Stored;
               let id' = Atomic.fetch_and_add t.cas_counter 1 in
               Some (encode_item ~flags ~expiry ~cas:id' data)
             end));
  if !outcome = Stored then bump t stat_sets;
  !outcome

(* memcached INCR/DECR on a decimal value; [None] if missing or NaN.
   DECR saturates at zero, as memcached specifies.  Flags and expiry
   survive the arithmetic. *)
let incr t ~tid key delta =
  let now = t.now () in
  let result = ref None in
  ignore
    (t.backend.update ~tid key (fun cur ->
         match live_item t now cur with
         | None -> None
         | Some item -> (
             let flags, expiry, _, data = decode_item item in
             match int_of_string_opt (String.trim data) with
             | None -> None
             | Some v ->
                 let v' = max 0 (v + delta) in
                 result := Some v';
                 let cas = Atomic.fetch_and_add t.cas_counter 1 in
                 Some (encode_item ~flags ~expiry ~cas (string_of_int v')))));
  if !result <> None then bump t stat_sets;
  !result

let decr t ~tid key delta = incr t ~tid key (-delta)

let stats t =
  ( Util.Padded.get t.stats stat_hits,
    Util.Padded.get t.stats stat_misses,
    Util.Padded.get t.stats stat_sets,
    Util.Padded.get t.stats stat_deletes,
    Util.Padded.get t.stats stat_expired )

(* test hook *)
let set_clock t clock = t.now <- clock

(* ---- ready-made backends ---- *)

let of_mhashmap (m : Pstructs.Mhashmap.t) =
  {
    get = (fun ~tid k -> Pstructs.Mhashmap.get m ~tid k);
    put = (fun ~tid k v -> Pstructs.Mhashmap.put m ~tid k v);
    remove = (fun ~tid k -> Pstructs.Mhashmap.remove m ~tid k);
    update = (fun ~tid k f -> Pstructs.Mhashmap.update m ~tid k f);
  }

let of_mhamt (m : Pstructs.Mhamt.t) =
  {
    get = (fun ~tid k -> Pstructs.Mhamt.get m ~tid k);
    put = (fun ~tid k v -> Pstructs.Mhamt.put m ~tid k v);
    remove = (fun ~tid k -> Pstructs.Mhamt.remove m ~tid k);
    update = (fun ~tid k f -> Pstructs.Mhamt.update m ~tid k f);
  }

let of_transient_map (m : Baselines.Transient_map.t) =
  {
    get = (fun ~tid k -> Baselines.Transient_map.get m ~tid k);
    put = (fun ~tid k v -> Baselines.Transient_map.put m ~tid k v);
    remove = (fun ~tid k -> Baselines.Transient_map.remove m ~tid k);
    update = (fun ~tid k f -> Baselines.Transient_map.update m ~tid k f);
  }
