(** memcached text-protocol codec and connection state machine.

    [feed] consumes raw bytes from any transport and produces protocol
    replies, handling pipelining, [noreply], and binary-safe data
    blocks.  Commands: get/gets, set/add/replace/append/prepend/cas,
    delete, incr/decr, touch, flush_all, stats, version, verbosity,
    quit.

    Framing is amortized O(1) per byte: the codec keeps a scan offset
    so input split across many [feed] calls is never re-scanned, and
    both command lines and data blocks are size-capped — oversized
    input is answered with a [CLIENT_ERROR] and drained without being
    buffered. *)

type conn

(** One connection against a store.  [tid] is the worker thread this
    connection's operations run as.

    [max_line] caps the command line (default 8192 bytes) and
    [max_value] the data block (default 1 MiB); both are enforced with
    a [CLIENT_ERROR] reply rather than unbounded buffering.
    [extra_stats] contributes additional [STAT key value] lines to the
    [stats] reply (the transport's per-worker metrics); [on_command]
    observes every dispatched verb, lowercased (the transport's
    ops-by-verb counters). *)
val create :
  ?max_line:int ->
  ?max_value:int ->
  ?extra_stats:(unit -> (string * string) list) ->
  ?on_command:(string -> unit) ->
  Store.t ->
  tid:int ->
  conn

(** [true] after the client sent [quit]; further input is ignored. *)
val is_closed : conn -> bool

(** Feed raw bytes; returns the replies generated, in order, each
    terminated with [\r\n].  Incomplete commands and data blocks stay
    buffered for the next feed. *)
val feed : conn -> string -> string list

(** Client half of the protocol: request encoders and an incremental
    reply-unit decoder, shared by the load generator and the cluster
    router's upstream shard connections.

    A reply {e unit} is the complete answer to one pipelined command:
    either a single terminal line ([STORED], [DELETED], [OK], a
    decimal, [VERSION ...], any error line) or a get/stats reply — any
    number of [VALUE] blocks (binary-safe) or [STAT] lines terminated
    by [END].  Counting completed units against commands issued keeps
    a pipelined client in lockstep without per-verb reply knowledge. *)
module Client : sig
  type unit_class =
    | U_ok  (** normal reply, including misses ([END] with no hits) *)
    | U_error  (** [ERROR] / [CLIENT_ERROR] — the request was rejected *)
    | U_server_error
        (** [SERVER_ERROR] — the server (or, through the router, the
            owning shard) could not serve it *)

  type unit_result = {
    cls : unit_class;
    hits : int;  (** number of [VALUE] blocks in the unit *)
  }

  type decoder

  val decoder : unit -> decoder
  val reset : decoder -> unit

  (** [next_unit d buf ~pos ~len] resumes scanning the reply unit that
      begins at [buf.[pos]], with [len] bytes available from [pos].
      Returns [Some (end_pos, r)] when the unit completes (it occupies
      [pos, end_pos)), or [None] if more bytes are needed — decoder
      state persists, so append bytes and call again with the same
      [pos].  The unit's bytes must remain in place until it completes
      (consumed units may be compacted away); bytes already scanned are
      never re-scanned. *)
  val next_unit : decoder -> Bytes.t -> pos:int -> len:int -> (int * unit_result) option

  val is_err : unit_result -> bool

  (** Encoders append one complete request (CRLF-terminated, data block
      included) to the buffer. *)

  val encode_get : Buffer.t -> string list -> unit
  val encode_gets : Buffer.t -> string list -> unit

  val encode_set :
    Buffer.t -> ?flags:int -> ?exptime:int -> ?noreply:bool -> key:string -> string -> unit

  val encode_delete : Buffer.t -> ?noreply:bool -> string -> unit
  val encode_incr : Buffer.t -> string -> int -> unit
  val encode_decr : Buffer.t -> string -> int -> unit
  val encode_version : Buffer.t -> unit
  val encode_stats : Buffer.t -> unit
  val encode_quit : Buffer.t -> unit
  val encode_flush_all : Buffer.t -> ?delay:int -> unit -> unit
end
