(** memcached text-protocol codec and connection state machine.

    [feed] consumes raw bytes from any transport and produces protocol
    replies, handling pipelining, [noreply], and binary-safe data
    blocks.  Commands: get/gets, set/add/replace/append/prepend/cas,
    delete, incr/decr, touch, flush_all, stats, version, verbosity,
    quit.

    Framing is amortized O(1) per byte: the codec keeps a scan offset
    so input split across many [feed] calls is never re-scanned, and
    both command lines and data blocks are size-capped — oversized
    input is answered with a [CLIENT_ERROR] and drained without being
    buffered. *)

type conn

(** One connection against a store.  [tid] is the worker thread this
    connection's operations run as.

    [max_line] caps the command line (default 8192 bytes) and
    [max_value] the data block (default 1 MiB); both are enforced with
    a [CLIENT_ERROR] reply rather than unbounded buffering.
    [extra_stats] contributes additional [STAT key value] lines to the
    [stats] reply (the transport's per-worker metrics); [on_command]
    observes every dispatched verb, lowercased (the transport's
    ops-by-verb counters). *)
val create :
  ?max_line:int ->
  ?max_value:int ->
  ?extra_stats:(unit -> (string * string) list) ->
  ?on_command:(string -> unit) ->
  Store.t ->
  tid:int ->
  conn

(** [true] after the client sent [quit]; further input is ignored. *)
val is_closed : conn -> bool

(** Feed raw bytes; returns the replies generated, in order, each
    terminated with [\r\n].  Incomplete commands and data blocks stay
    buffered for the next feed. *)
val feed : conn -> string -> string list
