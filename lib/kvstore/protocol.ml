(* memcached text-protocol codec and connection state machine.

   The paper's memcached variant dispenses with sockets (clients link
   the store directly), but a store that speaks the wire protocol is
   what makes the library adoptable: [feed] consumes raw bytes from any
   transport and produces protocol replies, handling pipelining,
   [noreply], and binary-safe data blocks (which may contain \r\n).

   Supported commands: get/gets, set/add/replace/append/prepend/cas,
   delete, incr/decr, touch, flush_all, stats, version, verbosity,
   quit.

   Framing is amortized O(1) per byte: unconsumed input lives in a
   compacting ring ([ibuf], [ipos], [ilen]) and the command-line
   scanner remembers how far it has already looked for \r\n
   ([scanned]), so a data block or long line arriving in many small
   feeds is never re-scanned.  Command lines are capped at [max_line]
   bytes and data blocks at [max_value]; oversized input is answered
   with a CLIENT_ERROR and drained without ever being buffered. *)

type pending = {
  op : storage_op;
  key : string;
  flags : int;
  exptime : int;
  bytes : int;
  noreply : bool;
}

and storage_op = Set | Add | Replace | Append | Prepend | Cas of int

type state =
  | Idle
  | Awaiting of pending  (* command parsed, data block incomplete *)
  | Discarding of int  (* oversized data block: bytes left to drop *)
  | Skipping_line  (* oversized command line: drop until \r\n *)

type conn = {
  store : Store.t;
  tid : int;
  mutable ibuf : Bytes.t; (* unconsumed input lives in [ipos, ilen) *)
  mutable ipos : int;
  mutable ilen : int;
  mutable scanned : int; (* no \r\n starts in [ipos, scanned) *)
  mutable state : state;
  mutable closed : bool;
  max_line : int;
  max_value : int;
  on_command : string -> unit;
  extra_stats : unit -> (string * string) list;
}

let create ?(max_line = 8192) ?(max_value = 1 lsl 20) ?(extra_stats = fun () -> [])
    ?(on_command = fun _ -> ()) store ~tid =
  {
    store;
    tid;
    ibuf = Bytes.create 256;
    ipos = 0;
    ilen = 0;
    scanned = 0;
    state = Idle;
    closed = false;
    max_line;
    max_value;
    extra_stats;
    on_command;
  }

let is_closed c = c.closed

let crlf = "\r\n"

(* ---- command execution ---- *)

let exec_storage c op key flags exptime data =
  let ttl_s =
    (* memcached: 0 = never; <= 30 days is relative seconds *)
    if exptime = 0 then 0.0 else float_of_int exptime
  in
  match op with
  | Set ->
      Store.set c.store ~tid:c.tid ~flags ~ttl_s key data;
      "STORED"
  | Add -> if Store.add c.store ~tid:c.tid ~flags ~ttl_s key data then "STORED" else "NOT_STORED"
  | Replace ->
      if Store.replace c.store ~tid:c.tid ~flags ~ttl_s key data then "STORED" else "NOT_STORED"
  | Append -> (
      match Store.get_full c.store ~tid:c.tid key with
      | Some (old, old_flags, _) ->
          Store.set c.store ~tid:c.tid ~flags:old_flags ~ttl_s key (old ^ data);
          "STORED"
      | None -> "NOT_STORED")
  | Prepend -> (
      match Store.get_full c.store ~tid:c.tid key with
      | Some (old, old_flags, _) ->
          Store.set c.store ~tid:c.tid ~flags:old_flags ~ttl_s key (data ^ old);
          "STORED"
      | None -> "NOT_STORED")
  | Cas expected -> (
      (* one atomic step through the backend's update hook *)
      match Store.compare_and_set c.store ~tid:c.tid ~flags ~ttl_s key ~cas:expected data with
      | Store.Stored -> "STORED"
      | Store.Exists -> "EXISTS"
      | Store.Not_found -> "NOT_FOUND")

let exec_get c ~with_cas keys =
  let out = Buffer.create 128 in
  List.iter
    (fun key ->
      match Store.get_full c.store ~tid:c.tid key with
      | Some (data, flags, cas) ->
          if with_cas then
            Buffer.add_string out
              (Printf.sprintf "VALUE %s %d %d %d%s" key flags (String.length data) cas crlf)
          else
            Buffer.add_string out
              (Printf.sprintf "VALUE %s %d %d%s" key flags (String.length data) crlf);
          Buffer.add_string out data;
          Buffer.add_string out crlf
      | None -> ())
    keys;
  Buffer.add_string out "END";
  Buffer.contents out

let exec_stats c =
  let hits, misses, sets, deletes, expired = Store.stats c.store in
  let base =
    [
      Printf.sprintf "STAT get_hits %d" hits;
      Printf.sprintf "STAT get_misses %d" misses;
      Printf.sprintf "STAT cmd_set %d" sets;
      Printf.sprintf "STAT delete_hits %d" deletes;
      Printf.sprintf "STAT expired_unfetched %d" expired;
    ]
  in
  let extra = List.map (fun (k, v) -> Printf.sprintf "STAT %s %s" k v) (c.extra_stats ()) in
  String.concat crlf (base @ extra @ [ "END" ])

(* ---- line parsing ---- *)

let split_words line = String.split_on_char ' ' line |> List.filter (( <> ) "")

(* A storage command consumes a following data block of [bytes] +\r\n. *)
type step =
  | Reply of string option (* None = noreply *)
  | Need_data of pending
  | Swallow of int * string option (* drop a data block, then reply *)
  | Close of string option

let int_arg s = int_of_string_opt s

let parse_storage op args =
  (* <key> <flags> <exptime> <bytes> [cas] [noreply] *)
  match args with
  | key :: flags :: exptime :: bytes :: rest -> (
      match (int_arg flags, int_arg exptime, int_arg bytes) with
      | Some flags, Some exptime, Some bytes when bytes >= 0 ->
          let op, rest =
            match (op, rest) with
            | `Cas, cas :: tail -> (
                match int_arg cas with
                | Some c -> (Some (Cas c), tail)
                | None -> (None, rest))
            | `Cas, [] -> (None, [])
            | `Set, _ -> (Some Set, rest)
            | `Add, _ -> (Some Add, rest)
            | `Replace, _ -> (Some Replace, rest)
            | `Append, _ -> (Some Append, rest)
            | `Prepend, _ -> (Some Prepend, rest)
          in
          let noreply = rest = [ "noreply" ] in
          (match op with
          | Some op when rest = [] || noreply -> Some { op; key; flags; exptime; bytes; noreply }
          | _ -> None)
      | _ -> None)
  | _ -> None

let run_command c line =
  match split_words line with
  | [] -> Reply (Some "ERROR")
  | cmd :: args -> (
      let cmd = String.lowercase_ascii cmd in
      c.on_command cmd;
      match (cmd, args) with
      | "get", (_ :: _ as keys) -> Reply (Some (exec_get c ~with_cas:false keys))
      | "gets", (_ :: _ as keys) -> Reply (Some (exec_get c ~with_cas:true keys))
      | "set", _ | "add", _ | "replace", _ | "append", _ | "prepend", _ | "cas", _ -> (
          let tag =
            match cmd with
            | "set" -> `Set
            | "add" -> `Add
            | "replace" -> `Replace
            | "append" -> `Append
            | "prepend" -> `Prepend
            | _ -> `Cas
          in
          match parse_storage tag args with
          | Some pending when pending.bytes > c.max_value ->
              (* drain the announced block without buffering it *)
              Swallow
                ( pending.bytes + 2,
                  if pending.noreply then None else Some "CLIENT_ERROR object too large for cache" )
          | Some pending -> Need_data pending
          | None -> Reply (Some "CLIENT_ERROR bad command line format"))
      | "delete", [ key ] ->
          Reply (Some (if Store.delete c.store ~tid:c.tid key then "DELETED" else "NOT_FOUND"))
      | "delete", [ key; "noreply" ] ->
          ignore (Store.delete c.store ~tid:c.tid key);
          Reply None
      | "incr", [ key; amount ] | "decr", [ key; amount ] -> (
          match int_arg amount with
          | None -> Reply (Some "CLIENT_ERROR invalid numeric delta argument")
          | Some delta ->
              let delta = if cmd = "decr" then -delta else delta in
              (match Store.incr c.store ~tid:c.tid key delta with
              | Some v -> Reply (Some (string_of_int v))
              | None -> Reply (Some "NOT_FOUND")))
      | "touch", [ key; exptime ] -> (
          match int_arg exptime with
          | None -> Reply (Some "CLIENT_ERROR invalid exptime argument")
          | Some e -> (
              match Store.get_full c.store ~tid:c.tid key with
              | Some (data, flags, _) ->
                  Store.set c.store ~tid:c.tid ~flags ~ttl_s:(float_of_int e) key data;
                  Reply (Some "TOUCHED")
              | None -> Reply (Some "NOT_FOUND")))
      | "flush_all", args -> (
          let args, noreply =
            match List.rev args with
            | "noreply" :: rest -> (List.rev rest, true)
            | _ -> (args, false)
          in
          match args with
          | [] ->
              Store.flush_all c.store ();
              Reply (if noreply then None else Some "OK")
          | [ delay ] -> (
              match int_arg delay with
              | Some d when d >= 0 ->
                  Store.flush_all c.store ~delay_s:(float_of_int d) ();
                  Reply (if noreply then None else Some "OK")
              | _ -> Reply (Some "CLIENT_ERROR invalid delay argument"))
          | _ -> Reply (Some "CLIENT_ERROR bad command line format"))
      | "stats", [] -> Reply (Some (exec_stats c))
      | "version", [] -> Reply (Some "VERSION montage-ocaml 1.0")
      | "verbosity", _ -> Reply (Some "OK")
      | "quit", [] -> Close None
      | _ -> Reply (Some "ERROR"))

(* ---- streaming state machine ---- *)

let line_too_long = "CLIENT_ERROR line too long"

(* Make room for [n] more bytes: compact in place when the dead prefix
   suffices, otherwise reallocate.  Keeps [scanned] aligned. *)
let ensure_room c n =
  if c.ilen + n > Bytes.length c.ibuf then begin
    let live = c.ilen - c.ipos in
    if live + n <= Bytes.length c.ibuf then Bytes.blit c.ibuf c.ipos c.ibuf 0 live
    else begin
      let cap = ref (max 256 (Bytes.length c.ibuf)) in
      while live + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit c.ibuf c.ipos nb 0 live;
      c.ibuf <- nb
    end;
    c.scanned <- c.scanned - c.ipos;
    c.ilen <- live;
    c.ipos <- 0
  end

(* Find the first "\r\n" starting at or after [scanned]; remembers the
   scan frontier so a line split across feeds is scanned once. *)
let find_crlf c =
  let i = ref (max c.ipos c.scanned) in
  let stop = c.ilen - 1 in
  let found = ref (-1) in
  while !found < 0 && !i < stop do
    if Bytes.get c.ibuf !i = '\r' && Bytes.get c.ibuf (!i + 1) = '\n' then found := !i
    else incr i
  done;
  if !found < 0 then begin
    (* everything up to the last byte (a possible lone \r) is clean *)
    c.scanned <- max c.ipos (c.ilen - 1);
    None
  end
  else Some !found

(* Feed raw bytes; returns the protocol replies generated (in order).
   Incomplete commands/data blocks stay buffered for the next feed. *)
let feed c input =
  if c.closed then []
  else begin
    let n = String.length input in
    ensure_room c n;
    Bytes.blit_string input 0 c.ibuf c.ilen n;
    c.ilen <- c.ilen + n;
    let replies = ref [] in
    let emit = function Some r -> replies := r :: !replies | None -> () in
    let consume_to pos =
      c.ipos <- pos;
      c.scanned <- pos
    in
    let progressing = ref true in
    while !progressing && not c.closed do
      match c.state with
      | Idle -> (
          match find_crlf c with
          | None ->
              (* cap unbounded buffering: a line of L <= max_line bytes
                 occupies at most max_line + 1 bytes without its final
                 \n, so anything longer is already oversized *)
              if c.ilen - c.ipos >= c.max_line + 2 then begin
                emit (Some line_too_long);
                c.state <- Skipping_line
              end
              else progressing := false
          | Some eol ->
              let line = Bytes.sub_string c.ibuf c.ipos (eol - c.ipos) in
              let too_long = String.length line > c.max_line in
              consume_to (eol + 2);
              if too_long then emit (Some line_too_long)
              else begin
                match run_command c line with
                | Reply r -> emit r
                | Need_data pending -> c.state <- Awaiting pending
                | Swallow (bytes, r) ->
                    emit r;
                    c.state <- Discarding bytes
                | Close r ->
                    emit r;
                    c.closed <- true
              end)
      | Awaiting pending ->
          if c.ilen - c.ipos >= pending.bytes + 2 then begin
            let block = Bytes.sub_string c.ibuf c.ipos pending.bytes in
            let terminated =
              Bytes.get c.ibuf (c.ipos + pending.bytes) = '\r'
              && Bytes.get c.ibuf (c.ipos + pending.bytes + 1) = '\n'
            in
            consume_to (c.ipos + pending.bytes + 2);
            c.state <- Idle;
            if terminated then begin
              let r = exec_storage c pending.op pending.key pending.flags pending.exptime block in
              if not pending.noreply then emit (Some r)
            end
            else emit (Some "CLIENT_ERROR bad data chunk")
          end
          else progressing := false
      | Discarding remaining ->
          let take = min (c.ilen - c.ipos) remaining in
          consume_to (c.ipos + take);
          if take = remaining then c.state <- Idle
          else begin
            c.state <- Discarding (remaining - take);
            progressing := false
          end
      | Skipping_line -> (
          (* the error was already sent; drop bytes until \r\n *)
          match find_crlf c with
          | Some eol ->
              consume_to (eol + 2);
              c.state <- Idle
          | None ->
              consume_to (max c.ipos (c.ilen - 1));
              progressing := false)
    done;
    if c.ipos = c.ilen then begin
      c.ipos <- 0;
      c.ilen <- 0;
      c.scanned <- 0
    end;
    List.rev_map (fun r -> r ^ crlf) !replies
  end

(* ---- client side: request encoders + reply-unit decoder ----

   The other half of the wire: what a *client* of this protocol needs.
   Every in-tree client (the loadgen's closed and open loops, the
   cluster router's shard upstreams) used to hand-roll its own reply
   parser; this is the one shared implementation.

   A reply "unit" is the complete answer to one command: a single
   terminal line (STORED, DELETED, OK, a decimal, VERSION ..., any
   ERROR flavor), or a get/stats reply — any number of VALUE blocks
   (header line + <bytes>+2 of binary-safe data) or STAT lines,
   terminated by END.  Counting units against commands issued keeps a
   pipelined client in lockstep without knowing each verb's reply
   shape. *)

module Client = struct
  type unit_class = U_ok | U_error | U_server_error

  type unit_result = { cls : unit_class; hits : int }

  (* Decoder state for the unit that starts at the caller's [pos]:
     [parsed] bytes of it are already consumed, the line being scanned
     (if any) starts at unit-relative offset [line_start], and [skip]
     counts VALUE data bytes (+2 for the trailing CRLF) still to
     discard.  The unit's bytes must stay in place (at [pos]) until the
     unit completes — the scanner re-reads only the current line, never
     earlier bytes, so callers may compact consumed units away. *)
  type decoder = {
    mutable parsed : int;
    mutable line_start : int;
    mutable skip : int;
    mutable d_hits : int;
  }

  let decoder () = { parsed = 0; line_start = 0; skip = 0; d_hits = 0 }

  let reset d =
    d.parsed <- 0;
    d.line_start <- 0;
    d.skip <- 0;
    d.d_hits <- 0

  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p

  (* VALUE <key> <flags> <bytes> [cas] *)
  let value_bytes line =
    match String.split_on_char ' ' line with
    | _ :: _ :: _ :: b :: _ -> ( match int_of_string_opt b with Some n when n >= 0 -> n | _ -> 0)
    | _ -> 0

  (* Resume scanning the unit starting at [pos]; [pos + len) bounds the
     bytes available.  Returns [Some (end_pos, result)] when the unit
     completes — it occupies [pos, end_pos) — or [None] when more bytes
     are needed (state is kept; append bytes and call again). *)
  let next_unit d buf ~pos ~len =
    let limit = pos + len in
    let result = ref None in
    let continue = ref true in
    while !continue && !result = None do
      if d.skip > 0 then begin
        let take = min d.skip (limit - (pos + d.parsed)) in
        d.skip <- d.skip - take;
        d.parsed <- d.parsed + take;
        if d.skip > 0 then continue := false else d.line_start <- d.parsed
      end
      else begin
        (* scan for the next newline from the parse frontier *)
        let i = ref (pos + d.parsed) in
        while !i < limit && Bytes.get buf !i <> '\n' do
          incr i
        done;
        if !i >= limit then begin
          d.parsed <- !i - pos;
          continue := false
        end
        else begin
          let line_len = !i - (pos + d.line_start) in
          let line_len =
            if line_len > 0 && Bytes.get buf (!i - 1) = '\r' then line_len - 1 else line_len
          in
          let line = Bytes.sub_string buf (pos + d.line_start) line_len in
          d.parsed <- !i - pos + 1;
          d.line_start <- d.parsed;
          if has_prefix "VALUE " line then begin
            d.d_hits <- d.d_hits + 1;
            d.skip <- value_bytes line + 2
          end
          else if has_prefix "STAT " line then ()  (* stats body: continue to END *)
          else begin
            let cls =
              if line = "END" then U_ok
              else if has_prefix "SERVER_ERROR" line then U_server_error
              else if has_prefix "ERROR" line || has_prefix "CLIENT_ERROR" line then U_error
              else U_ok
            in
            let r = { cls; hits = d.d_hits } in
            let e = d.parsed in
            reset d;
            result := Some (pos + e, r)
          end
        end
      end
    done;
    !result

  let is_err r = r.cls <> U_ok

  (* -- request encoders (append to [Buffer.t], CRLF included) -- *)

  let encode_get out keys =
    Buffer.add_string out "get";
    List.iter
      (fun k ->
        Buffer.add_char out ' ';
        Buffer.add_string out k)
      keys;
    Buffer.add_string out crlf

  let encode_gets out keys =
    Buffer.add_string out "gets";
    List.iter
      (fun k ->
        Buffer.add_char out ' ';
        Buffer.add_string out k)
      keys;
    Buffer.add_string out crlf

  let encode_set out ?(flags = 0) ?(exptime = 0) ?(noreply = false) ~key value =
    Buffer.add_string out
      (Printf.sprintf "set %s %d %d %d%s%s" key flags exptime (String.length value)
         (if noreply then " noreply" else "")
         crlf);
    Buffer.add_string out value;
    Buffer.add_string out crlf

  let encode_delete out ?(noreply = false) key =
    Buffer.add_string out
      (Printf.sprintf "delete %s%s%s" key (if noreply then " noreply" else "") crlf)

  let encode_incr out key delta = Buffer.add_string out (Printf.sprintf "incr %s %d%s" key delta crlf)
  let encode_decr out key delta = Buffer.add_string out (Printf.sprintf "decr %s %d%s" key delta crlf)
  let encode_version out = Buffer.add_string out ("version" ^ crlf)
  let encode_stats out = Buffer.add_string out ("stats" ^ crlf)
  let encode_quit out = Buffer.add_string out ("quit" ^ crlf)

  let encode_flush_all out ?delay () =
    match delay with
    | None -> Buffer.add_string out ("flush_all" ^ crlf)
    | Some d -> Buffer.add_string out (Printf.sprintf "flush_all %d%s" d crlf)
end
