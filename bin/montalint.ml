(* montalint — the Montage static analyzer (see DESIGN.md, "Montalint").

   Scans dune-produced .cmt files for the five Montage rule families
   and diffs findings against the checked-in baseline.  Run through
   the build alias:

     dune build @lint

   or directly, from the repo root, after a build:

     dune exec bin/montalint.exe --            # report vs baseline
     dune exec bin/montalint.exe -- --update-baseline

   With no roots given, scans _build/default/{lib,bin} when run from
   the repo root, or ./{lib,bin} when already inside the build tree
   (as the @lint alias does). *)

let () =
  let baseline = ref "montalint.baseline" in
  let update = ref false in
  let no_baseline = ref false in
  let roots = ref [] in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline, "FILE baseline file (default montalint.baseline)");
      ("--update-baseline", Arg.Set update, " rewrite the baseline from current findings");
      ("--no-baseline", Arg.Set no_baseline, " report every finding, ignoring the baseline");
    ]
  in
  Arg.parse spec
    (fun r -> roots := r :: !roots)
    "montalint [options] [root dirs]";
  let roots =
    match List.rev !roots with
    | [] ->
        if Sys.file_exists "_build/default/lib" then
          [ "_build/default/lib"; "_build/default/bin" ]
        else [ "lib"; "bin" ]
    | rs -> rs
  in
  let result = Lint.Driver.scan roots in
  if result.files = 0 then begin
    prerr_endline
      "montalint: no .cmt files found — run `dune build` first (or use \
       `dune build @lint`)";
    exit 2
  end;
  if !update then begin
    Lint.Baseline.save !baseline result.findings;
    Printf.printf "%s\nmontalint: wrote %d finding(s) to %s\n"
      (Lint.Driver.summary result)
      (List.length result.findings) !baseline
  end
  else if !no_baseline then begin
    List.iter (fun f -> print_endline (Lint.Rule.render f)) result.findings;
    print_endline (Lint.Driver.summary result);
    if result.findings <> [] then exit 1
  end
  else exit (Lint.Driver.report ~baseline_file:!baseline result)
