(* montage_cli — drive a Montage data structure interactively-ish.

   Subcommands:
     demo      run a put/crash/recover cycle and print the outcome
     workload  run a timed workload against a chosen structure
     torture   randomized crash-consistency check (like the example,
               with knobs)
     serve     run the netserve memcached front end over the KV store
     loadgen   load generator against a running server (closed loop,
               or open loop with --rate)
     c10k      in-process C10K scenario: idle connection census + busy
               burst, every idle connection verified live afterwards
     stallbench
               sync latency past a worker parked in its drain window,
               blocking vs nonblocking advance
     netsmoke  in-process server smoke test (used by CI)
     shard     one cluster shard: netserve over its own region, heap
               file for durability across restarts
     cluster   consistent-hashing router fronting N supervised shard
               processes
     clustersmoke
               kill/recover/rejoin scenario under open-loop load
               (used by CI)

   This is a developer tool; the benchmark suite is bench/main.exe. *)

open Cmdliner

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let mib = 1024 * 1024

(* ---- demo ---- *)

let demo items =
  let region = Nvm.Region.create ~capacity:(64 * mib) () in
  let esys = E.create region in
  let map = Pstructs.Mhashmap.create esys in
  for i = 1 to items do
    ignore (Pstructs.Mhashmap.put map ~tid:0 (Printf.sprintf "key%d" i) (Printf.sprintf "val%d" i))
  done;
  E.sync esys ~tid:0;
  ignore (Pstructs.Mhashmap.put map ~tid:0 "unsynced" "doomed");
  E.stop_background esys;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover region in
  let map2 = Pstructs.Mhashmap.recover esys2 payloads in
  Printf.printf "inserted %d + 1 unsynced, crashed, recovered %d items\n" items
    (Pstructs.Mhashmap.size map2);
  Printf.printf "unsynced item present: %b\n"
    (Pstructs.Mhashmap.get map2 ~tid:0 "unsynced" <> None);
  E.stop_background esys2;
  if Pstructs.Mhashmap.size map2 = items then `Ok () else `Error (false, "unexpected recovery size")

(* ---- workload ---- *)

let workload structure threads seconds value_size =
  if threads < 1 then `Error (false, "threads must be >= 1")
  else begin
    let region = Nvm.Region.create ~max_threads:(threads + 4) ~capacity:(256 * mib) () in
    let esys = E.create ~config:{ Cfg.default with max_threads = threads + 1 } region in
    let value = String.make value_size 'v' in
    let body =
      match structure with
      | "map" ->
          let m = Pstructs.Mhashmap.create esys in
          fun ~tid ~rng ->
            let key = Printf.sprintf "%024d" (Util.Xoshiro.int rng 100_000) in
            if Util.Xoshiro.bool rng then ignore (Pstructs.Mhashmap.put m ~tid key value)
            else ignore (Pstructs.Mhashmap.remove m ~tid key)
      | "queue" ->
          let q = Pstructs.Mqueue.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Mqueue.enqueue q ~tid value
            else ignore (Pstructs.Mqueue.dequeue q ~tid)
      | "stack" ->
          let s = Pstructs.Mstack.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Mstack.push s ~tid value
            else ignore (Pstructs.Mstack.pop s ~tid)
      | "nb-stack" ->
          let s = Pstructs.Nb_stack.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Nb_stack.push s ~tid value
            else ignore (Pstructs.Nb_stack.pop s ~tid)
      | "nb-queue" ->
          let q = Pstructs.Nb_queue.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Nb_queue.enqueue q ~tid value
            else ignore (Pstructs.Nb_queue.dequeue q ~tid)
      | other -> failwith ("unknown structure: " ^ other)
    in
    match body with
    | exception Failure msg -> `Error (false, msg)
    | body ->
        let r = Benchlib.Runner.throughput ~threads ~duration_s:seconds body in
        let stats = Nvm.Region.stats region in
        Printf.printf "%s: %.0f ops/s over %d thread(s) for %.1fs\n" structure
          r.Benchlib.Runner.ops_per_sec threads seconds;
        Printf.printf "NVM traffic: %d writebacks, %d fences, %d lines persisted\n"
          stats.Nvm.Region.writebacks stats.Nvm.Region.fences stats.Nvm.Region.lines_persisted;
        Printf.printf "epoch advances: %d\n" (E.advance_count esys);
        E.stop_background esys;
        `Ok ()
  end

(* ---- torture ---- *)

let torture rounds seed =
  let rng = Util.Xoshiro.create seed in
  let cfg = { Cfg.testing with max_threads = 2 } in
  let region = Nvm.Region.create ~capacity:(32 * mib) () in
  let esys = ref (E.create ~config:cfg region) in
  let map = ref (Pstructs.Mhashmap.create ~buckets:64 !esys) in
  let model = Hashtbl.create 64 in
  let snapshots = Hashtbl.create 64 in
  let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare in
  let record ~ended = Hashtbl.replace snapshots ended (snapshot ()) in
  record ~ended:(E.current_epoch !esys - 1);
  let ok = ref true in
  (try
     for round = 1 to rounds do
       for _ = 1 to 20 + Util.Xoshiro.int rng 100 do
         let k = Printf.sprintf "key%03d" (Util.Xoshiro.int rng 200) in
         (match Util.Xoshiro.int rng 2 with
         | 0 ->
             let v = Printf.sprintf "r%d" round in
             ignore (Pstructs.Mhashmap.put !map ~tid:0 k v);
             Hashtbl.replace model k v
         | _ ->
             ignore (Pstructs.Mhashmap.remove !map ~tid:0 k);
             Hashtbl.remove model k);
         if Util.Xoshiro.int rng 20 = 0 then begin
           let ended = E.current_epoch !esys in
           E.advance_epoch !esys ~tid:1;
           record ~ended
         end
       done;
       let crash_epoch = E.current_epoch !esys in
       Nvm.Region.crash
         ~persist_unfenced:(Util.Xoshiro.float rng)
         ~evict_dirty:(Util.Xoshiro.float rng) ~rng region;
       let esys2, payloads = E.recover ~config:cfg region in
       let map2 = Pstructs.Mhashmap.recover ~buckets:64 esys2 payloads in
       let expected = ref [] in
       for e = 1 to crash_epoch - 2 do
         match Hashtbl.find_opt snapshots e with Some s -> expected := s | None -> ()
       done;
       let recovered = List.sort compare (Pstructs.Mhashmap.to_alist map2 ~tid:0) in
       if recovered <> !expected then begin
         Printf.printf "round %d: INCONSISTENT RECOVERY\n" round;
         ok := false;
         raise Exit
       end;
       esys := esys2;
       map := map2;
       Hashtbl.reset model;
       List.iter (fun (k, v) -> Hashtbl.replace model k v) recovered;
       Hashtbl.reset snapshots;
       record ~ended:(E.current_epoch !esys - 1)
     done
   with Exit -> ());
  if !ok then begin
    Printf.printf "%d crash/recovery rounds: all consistent\n" rounds;
    `Ok ()
  end
  else `Error (false, "inconsistent recovery detected")

(* ---- stallbench ---- *)

(* Real-time ablation for the nonblocking advance: park one worker
   inside its END_OP drain window (the [test_stall_in_drain] hook) and
   measure how long a concurrent [sync] takes under each advance arm.
   The blocking arm's advance waits out the stall in the draining
   handshake; the nonblocking arm claims the parked worker's published
   records itself and completes without it. *)
let stallbench stall_ms warmup_ops =
  let stall_s = float_of_int stall_ms /. 1000. in
  let run nb =
    let cfg =
      {
        Cfg.default with
        max_threads = 2;
        auto_advance = false;
        drain_on_end_op = true;
        nb_advance = nb;
      }
    in
    let region = Nvm.Region.create ~max_threads:4 ~capacity:(64 * mib) () in
    let esys = E.create ~config:cfg region in
    let armed = Atomic.make false and stalled = Atomic.make false in
    let saved = !E.test_stall_in_drain in
    (E.test_stall_in_drain :=
       fun () ->
         if Atomic.compare_and_set armed true false then begin
           Atomic.set stalled true;
           Unix.sleepf stall_s
         end);
    let go = Atomic.make false in
    let worker =
      Domain.spawn (fun () ->
          for _ = 1 to warmup_ops do
            E.with_op esys ~tid:0 (fun () -> ignore (E.pnew esys ~tid:0 (Bytes.make 64 'x')))
          done;
          while not (Atomic.get go) do
            Domain.cpu_relax ()
          done;
          (* this op's END_OP drain parks in the armed hook *)
          E.with_op esys ~tid:0 (fun () -> ignore (E.pnew esys ~tid:0 (Bytes.make 64 'y'))))
    in
    Atomic.set armed true;
    Atomic.set go true;
    while not (Atomic.get stalled) do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    E.sync esys ~tid:1;
    let dt = Unix.gettimeofday () -. t0 in
    Domain.join worker;
    E.test_stall_in_drain := saved;
    E.stop_background esys;
    (dt, E.advance_count esys)
  in
  let dt_b, adv_b = run false in
  let dt_nb, adv_nb = run true in
  Printf.printf "one worker parked %d ms inside its END_OP drain window\n" stall_ms;
  Printf.printf "%-12s %15s %9s\n" "advance arm" "sync latency" "advances";
  Printf.printf "%-12s %12.3f ms %9d\n" "blocking" (dt_b *. 1000.) adv_b;
  Printf.printf "%-12s %12.3f ms %9d\n" "nonblocking" (dt_nb *. 1000.) adv_nb;
  Printf.printf "sync speedup under the stall: %.0fx\n" (dt_b /. dt_nb);
  `Ok ()
[@@montage.allow
  "R5: the sleep IS the benchmark — it models a worker descheduled \
   mid-drain for a fixed wall-clock interval; the measurement needs \
   real time, not a scheduler seam"]

(* ---- serve ---- *)

(* MONTAGE_BACKEND picks the default store so CI legs can swap backends
   without touching the command line. *)
let default_backend = Option.value (Sys.getenv_opt "MONTAGE_BACKEND") ~default:"montage"

(* Build the store for the requested backend.  The Montage build sizes
   the epoch system for [workers] server tids plus the advancer slot,
   and hands netserve the sync/frontier hooks its shutdown drain uses
   as the durability barrier. *)
let make_backend backend workers capacity_mib =
  match backend with
  | "montage" ->
      let region = Nvm.Region.create ~max_threads:(workers + 4) ~capacity:(capacity_mib * mib) () in
      let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } region in
      let map = Pstructs.Mhashmap.create esys in
      Some (Kvstore.Store.create (Kvstore.Store.of_mhashmap map), Some esys)
  | "mhamt" ->
      let region = Nvm.Region.create ~max_threads:(workers + 4) ~capacity:(capacity_mib * mib) () in
      let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } region in
      let map = Pstructs.Mhamt.create esys in
      Some (Kvstore.Store.create (Kvstore.Store.of_mhamt map), Some esys)
  | "transient" ->
      let m = Baselines.Transient_map.create Baselines.Transient_map.Dram in
      Some (Kvstore.Store.create (Kvstore.Store.of_transient_map m), None)
  | _ -> None

let start_server ~config store esys =
  match esys with
  | Some esys ->
      Netserve.start ~config
        ~sync:(fun ~tid -> E.sync esys ~tid)
        ~persisted_epoch:(fun () -> E.persisted_epoch esys)
        store
  | None -> Netserve.start ~config store

(* "auto" = leave the choice to MONTAGE_POLLER / platform detection. *)
let parse_poller = function
  | "auto" -> Ok None
  | s -> (
      match Netserve.Poller.kind_of_string s with
      | Some k -> Ok (Some k)
      | None -> Error "poller must be auto|select|epoll")

let serve backend host port workers seconds capacity_mib poller_s =
  match parse_poller poller_s with
  | Error e -> `Error (false, e)
  | Ok poller -> (
  if workers < 1 then `Error (false, "workers must be >= 1")
  else
    match make_backend backend workers capacity_mib with
    | None -> `Error (false, "backend must be montage|mhamt|transient")
    | Some (store, esys) ->
        let config = { Netserve.default_config with host; port; workers; poller } in
        let t = start_server ~config store esys in
        Printf.printf "netserve: %s backend, %d worker(s) on %s:%d (%s poller)\n%!" backend
          workers host (Netserve.port t)
          (Netserve.Poller.kind_name (Netserve.poller_kind t));
        let stop = Atomic.make false in
        let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
        Sys.set_signal Sys.sigint handler;
        Sys.set_signal Sys.sigterm handler;
        let deadline = if seconds <= 0.0 then infinity else Unix.gettimeofday () +. seconds in
        while (not (Atomic.get stop)) && Unix.gettimeofday () < deadline do
          try
            Unix.sleepf 0.2
            [@montage.allow
              "R5: EINTR-tolerant wait loop on the CLI driver thread \
               pacing the serve deadline; not server or structure code"]
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        let d = Netserve.shutdown t in
        let accepted, bytes_in, bytes_out, cmds = Netserve.totals t in
        Printf.printf "shutdown: drained %d conn(s), %d forced, %.3fs drain + %.3fs sync" d.drained_conns
          d.forced_closes d.drain_s d.sync_s;
        if d.persisted_epoch >= 0 then Printf.printf ", persisted epoch %d" d.persisted_epoch;
        print_newline ();
        Printf.printf "totals: %d connection(s), %d command(s), %d bytes in, %d bytes out\n" accepted
          cmds bytes_in bytes_out;
        Option.iter E.stop_background esys;
        `Ok ())

(* ---- loadgen ---- *)

(* "host:port,host:port,..." -> endpoint list; a bare "port" keeps the
   default host *)
let parse_endpoints host s =
  let ep tok =
    match String.rindex_opt tok ':' with
    | Some i ->
        let h = String.sub tok 0 i in
        let p = String.sub tok (i + 1) (String.length tok - i - 1) in
        (match int_of_string_opt p with Some p -> Some (h, p) | None -> None)
    | None -> ( match int_of_string_opt tok with Some p -> Some (host, p) | None -> None)
  in
  let toks = String.split_on_char ',' s |> List.filter (( <> ) "") in
  let eps = List.filter_map ep toks in
  if List.length eps = List.length toks then Ok eps
  else Error (Printf.sprintf "bad endpoint list %S (want host:port,host:port,...)" s)

let loadgen host port conns domains seconds pipeline value_size keyspace get_frac seed no_preload
    rate arrival_s grace_s endpoints_s =
  match (if endpoints_s = "" then Ok [] else parse_endpoints host endpoints_s) with
  | Error e -> `Error (false, e)
  | Ok endpoints ->
  let config =
    {
      Netserve.Loadgen.default_config with
      host;
      port;
      conns;
      domains;
      duration_s = seconds;
      pipeline;
      value_size;
      keyspace;
      get_frac;
      seed;
      endpoints;
    }
  in
  let label =
    if endpoints = [] then Printf.sprintf "%s:%d" host port
    else
      String.concat ","
        (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) endpoints)
  in
  if rate > 0.0 then
    (* open loop: fixed arrival schedule, latency charged from it *)
    match Netserve.Loadgen.arrival_of_string arrival_s with
    | None -> `Error (false, "arrival must be poisson|uniform")
    | Some arrival -> (
        match
          if not no_preload then Netserve.Loadgen.preload ~config ();
          Netserve.Loadgen.run_open ~config ~arrival ~grace_s ~rate ()
        with
        | exception ((Unix.Unix_error _ | Failure _) as e) ->
            `Error
              ( false,
                Printf.sprintf "cannot drive server at %s:%d (%s)" host port
                  (Printexc.to_string e) )
        | r ->
            Netserve.Loadgen.print_open_report ~label r;
            if r.completed = 0 then `Error (false, "no operations completed") else `Ok ())
  else
    match
      if not no_preload then Netserve.Loadgen.preload ~config ();
      Netserve.Loadgen.run ~config ()
    with
    | exception ((Unix.Unix_error _ | Failure _) as e) ->
        `Error
          ( false,
            Printf.sprintf "cannot drive server at %s:%d (%s)" host port
              (Printexc.to_string e) )
    | r ->
        Netserve.Loadgen.print_report ~label r;
        if r.ops = 0 then `Error (false, "no operations completed") else `Ok ()

(* ---- c10k ---- *)

(* Single-point C10K scenario, in-process: raise the fd limit, open
   [conns] idle connections (the census), run a closed-loop burst over
   [active] busy connections through the same workers, then prove every
   idle connection is still served by round-tripping a [version]
   command on each.  Exits nonzero if any connection was refused,
   dropped, or went unanswered. *)
let c10k backend conns workers seconds active value_size capacity_mib poller_s target_port =
  match parse_poller poller_s with
  | Error e -> `Error (false, e)
  | Ok poller -> (
      if workers < 1 then `Error (false, "workers must be >= 1")
      else
        (* [--port] drives an already-running server (started with
           [serve] in another process) instead of an in-process one:
           each connection then costs this process one fd, not two, so
           the census can go past half the RLIMIT_NOFILE cap. *)
        let be =
          if target_port > 0 then Some None
          else
            match make_backend backend workers capacity_mib with
            | None -> None
            | Some b -> Some (Some b)
        in
        match be with
        | None -> `Error (false, "backend must be montage|mhamt|transient")
        | Some be ->
            let fds_per_conn = if be = None then 1 else 2 in
            let soft =
              Netserve.Poller.raise_fd_limit ((fds_per_conn * (conns + active)) + 512)
            in
            let budget = max 16 ((soft - 256 - (fds_per_conn * active)) / fds_per_conn) in
            let conns =
              if conns > budget then begin
                Printf.printf
                  "c10k: RLIMIT_NOFILE soft limit %d: clamping %d -> %d idle connections\n%!"
                  soft conns budget;
                budget
              end
              else conns
            in
            let t =
              Option.map
                (fun (store, esys) ->
                  let config =
                    {
                      Netserve.default_config with
                      host = "127.0.0.1";
                      port = 0;
                      workers;
                      poller;
                      max_conns = conns + active + 64;
                      backlog = 1024;
                      idle_timeout_s = 0.0;
                      tick_s = 0.01;
                    }
                  in
                  start_server ~config store esys)
                be
            in
            let port = match t with Some t -> Netserve.port t | None -> target_port in
            let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
            let connect_retry () =
              let rec go attempt backoff =
                let fd = Unix.socket PF_INET SOCK_STREAM 0 in
                match Unix.connect fd addr with
                | () -> Some fd
                | exception
                    Unix.Unix_error
                      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EAGAIN
                        | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ETIMEDOUT ),
                        _,
                        _ )
                  when attempt < 100 ->
                    (try Unix.close fd with Unix.Unix_error _ -> ());
                    (Unix.sleepf backoff
                    [@montage.allow
                      "R5: bounded connect backoff in the c10k driver; \
                       client tooling, not server code"]);
                    go (attempt + 1) (Float.min 0.2 (backoff *. 2.0))
                | exception Unix.Unix_error _ ->
                    (try Unix.close fd with Unix.Unix_error _ -> ());
                    None
              in
              go 0 0.002
            in
            let t0 = Netserve.Poller.mono_s () in
            let idle = Array.init conns (fun _ -> connect_retry ()) in
            let established = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 idle in
            let ramp_s = Netserve.Poller.mono_s () -. t0 in
            (match t with
            | Some t ->
                Printf.printf
                  "c10k: %d/%d idle connection(s) up in %.2fs (%s poller, %d worker(s))\n%!"
                  established conns ramp_s
                  (Netserve.Poller.kind_name (Netserve.poller_kind t))
                  workers
            | None ->
                Printf.printf
                  "c10k: %d/%d idle connection(s) up in %.2fs (external server :%d)\n%!"
                  established conns ramp_s port);
            (* throughput burst over a small busy subset while the idle
               census sits registered in the pollers *)
            let lg =
              {
                Netserve.Loadgen.default_config with
                port;
                conns = active;
                domains = min 4 (max 1 (active / 8));
                duration_s = seconds;
                value_size;
                keyspace = 4096;
                key_prefix = "c10k";
              }
            in
            let burst =
              try
                Netserve.Loadgen.preload ~config:lg ();
                Some (Netserve.Loadgen.run ~config:lg ())
              with
              | Netserve.Loadgen.Connection_lost why ->
                  Printf.printf "c10k: busy burst failed: connection lost (%s)\n%!" why;
                  None
              | Unix.Unix_error (e, fn, _) ->
                  Printf.printf "c10k: busy burst failed: %s in %s\n%!"
                    (Unix.error_message e) fn;
                  None
            in
            Option.iter
              (Netserve.Loadgen.print_report
                 ~label:(Printf.sprintf "%d idle + %d active" established active))
              burst;
            (* liveness sweep: every idle connection still answers *)
            let buf = Bytes.create 64 in
            let answered = ref 0 in
            Array.iter
              (function
                | None -> ()
                | Some fd -> (
                    try
                      Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
                      ignore (Unix.write_substring fd "version\r\n" 0 9)
                    with Unix.Unix_error _ -> ()))
              idle;
            Array.iter
              (function
                | None -> ()
                | Some fd ->
                    let rec rd acc =
                      if String.contains acc '\n' then acc
                      else
                        match Unix.read fd buf 0 (Bytes.length buf) with
                        | 0 -> acc
                        | n -> rd (acc ^ Bytes.sub_string buf 0 n)
                        | exception Unix.Unix_error _ -> acc
                    in
                    let reply = rd "" in
                    if String.length reply >= 7 && String.sub reply 0 7 = "VERSION" then
                      incr answered)
              idle;
            Printf.printf "c10k: %d/%d idle connection(s) answered after the burst\n%!" !answered
              established;
            Array.iter
              (function
                | None -> () | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
              idle;
            (match t with
            | Some t ->
                let d = Netserve.shutdown t in
                let _, _, _, cmds = Netserve.totals t in
                (match burst with
                | Some r ->
                    Printf.printf
                      "c10k: throughput %.0f ops/s, p99 %.0f us, %d command(s) total, \
                       drain %.3fs\n%!"
                      r.ops_per_sec r.p99_us cmds d.drain_s
                | None ->
                    Printf.printf "c10k: %d command(s) total, drain %.3fs\n%!" cmds d.drain_s)
            | None ->
                Option.iter
                  (fun r ->
                    Printf.printf "c10k: throughput %.0f ops/s, p99 %.0f us\n%!"
                      r.Netserve.Loadgen.ops_per_sec r.Netserve.Loadgen.p99_us)
                  burst);
            Option.iter (fun (_, esys) -> Option.iter E.stop_background esys) be;
            let problems =
              (if established < conns then
                 [ Printf.sprintf "only %d/%d connections established" established conns ]
               else [])
              @ (if !answered < established then
                   [ Printf.sprintf "only %d/%d idle connections answered" !answered established ]
                 else [])
              @
              match burst with
              | None -> [ "busy burst failed" ]
              | Some r ->
                  (if r.ops = 0 then [ "no operations completed" ] else [])
                  @ (if r.errors > 0 then
                       [ Printf.sprintf "%d protocol errors" r.errors ]
                     else [])
                  @ (match r.disconnects with
                    | [] -> []
                    | ds ->
                        [ Printf.sprintf "%d loadgen disconnect(s): %s" (List.length ds)
                            (List.hd ds) ])
            in
            if problems = [] then `Ok ()
            else `Error (false, "c10k failed: " ^ String.concat "; " problems))

(* ---- netsmoke ---- *)

(* In-process end-to-end smoke: start a Montage-backed server on an
   ephemeral port, run a byte-exact pipelined session and a seeded
   loadgen burst, read stats, shut down gracefully, crash the region,
   and verify every acked STORED key survives recovery.  CI runs this
   in every matrix leg; MONTAGE_BACKEND=mhamt swaps the persistent map
   for the snapshot-capable HAMT so the same byte-exact script drives
   both structures. *)
let netsmoke () =
  let failures = ref [] in
  let check name ok =
    Printf.printf "  [%s] %s\n%!" (if ok then "ok" else "FAIL") name;
    if not ok then failures := name :: !failures
  in
  let workers = 4 in
  let smoke_backend = if default_backend = "mhamt" then `Mhamt else `Mhashmap in
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:(workers + 4) ~capacity:(64 * mib) () in
  let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } region in
  let store =
    match smoke_backend with
    | `Mhamt -> Kvstore.Store.create (Kvstore.Store.of_mhamt (Pstructs.Mhamt.create esys))
    | `Mhashmap -> Kvstore.Store.create (Kvstore.Store.of_mhashmap (Pstructs.Mhashmap.create esys))
  in
  let config = { Netserve.default_config with host = "127.0.0.1"; port = 0; workers } in
  let t = start_server ~config store (Some esys) in
  Printf.printf "netsmoke: %s backend, %s poller\n%!"
    (match smoke_backend with `Mhamt -> "mhamt" | `Mhashmap -> "montage")
    (Netserve.Poller.kind_name (Netserve.poller_kind t));
  let port = Netserve.port t in
  let connect () =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
    fd
  in
  let send fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  let recv_exact fd n =
    let buf = Bytes.create n in
    let off = ref 0 in
    (try
       while !off < n do
         let k = Unix.read fd buf !off (n - !off) in
         if k = 0 then raise Exit;
         off := !off + k
       done
     with Exit | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    Bytes.sub_string buf 0 !off
  in
  let recv_until fd suffix =
    let acc = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let ends_with () =
      let s = Buffer.contents acc in
      String.length s >= String.length suffix
      && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
    in
    (try
       while not (ends_with ()) do
         let k = Unix.read fd chunk 0 (Bytes.length chunk) in
         if k = 0 then raise Exit;
         Buffer.add_subbytes acc chunk 0 k
       done
     with Exit | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    Buffer.contents acc
  in
  (* 1. byte-exact pipelined session on one connection *)
  let fd = connect () in
  send fd
    "set a 5 0 3\r\nfoo\r\nget a\r\nset n 0 0 1\r\n7\r\nincr n 3\r\nadd a 0 0 1\r\nx\r\ndelete missing\r\nget a n\r\n";
  let expected =
    "STORED\r\nVALUE a 5 3\r\nfoo\r\nEND\r\nSTORED\r\n10\r\nNOT_STORED\r\nNOT_FOUND\r\n\
     VALUE a 5 3\r\nfoo\r\nVALUE n 0 2\r\n10\r\nEND\r\n"
  in
  let got = recv_exact fd (String.length expected) in
  check "pipelined session byte-exact" (got = expected);
  if got <> expected then Printf.printf "    got: %S\n" got;
  (* 2. flush_all wipes, later sets survive *)
  send fd "flush_all\r\nget a\r\nset b 0 0 2\r\nhi\r\nget b\r\n";
  let expected2 = "OK\r\nEND\r\nSTORED\r\nVALUE b 0 2\r\nhi\r\nEND\r\n" in
  let got2 = recv_exact fd (String.length expected2) in
  check "flush_all epoch-style invalidation" (got2 = expected2);
  (* 3. seeded loadgen burst through benchlib reporting *)
  let lg =
    {
      Netserve.Loadgen.default_config with
      port;
      conns = 8;
      domains = 2;
      duration_s = 0.5;
      keyspace = 500;
      key_prefix = "sm";
    }
  in
  Netserve.Loadgen.preload ~config:lg ();
  let r = Netserve.Loadgen.run ~config:lg () in
  Netserve.Loadgen.print_report ~label:"netsmoke" r;
  check "loadgen completed ops" (r.ops > 0);
  check "loadgen error-free" (r.errors = 0);
  check "loadgen hit path exercised" (r.hits > 0);
  check "loadgen percentiles ordered" (r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
  (* 4. stats over the wire: server section present and plausible *)
  send fd "stats\r\n";
  let stats = recv_until fd "END\r\n" in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "stats: worker threads reported" (contains stats "STAT threads 4");
  check "stats: get counter present" (contains stats "STAT cmd_get ");
  check "stats: connection counter present" (contains stats "STAT total_connections ");
  check "stats: pipeline depth tracked" (contains stats "STAT max_pipeline_depth ");
  (* 5. acked STORED keys survive graceful shutdown + crash *)
  let dur = 20 in
  let buf = Buffer.create 512 in
  for i = 0 to dur - 1 do
    Buffer.add_string buf (Printf.sprintf "set dur%02d 0 0 4\r\nv%03d\r\n" i i)
  done;
  send fd (Buffer.contents buf);
  let acks = recv_exact fd (dur * 8) in
  check "durability keys acked" (acks = String.concat "" (List.init dur (fun _ -> "STORED\r\n")));
  send fd "quit\r\n";
  Unix.close fd;
  let d = Netserve.shutdown t in
  check "graceful drain (no forced closes)" (d.forced_closes = 0);
  check "shutdown advanced the durable frontier" (d.persisted_epoch >= 1);
  E.stop_background esys;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:{ Cfg.default with max_threads = workers + 1 } region in
  let store2 =
    match smoke_backend with
    | `Mhamt -> Kvstore.Store.create (Kvstore.Store.of_mhamt (Pstructs.Mhamt.recover esys2 payloads))
    | `Mhashmap ->
        Kvstore.Store.create (Kvstore.Store.of_mhashmap (Pstructs.Mhashmap.recover esys2 payloads))
  in
  let missing = ref 0 in
  for i = 0 to dur - 1 do
    match Kvstore.Store.get store2 ~tid:0 (Printf.sprintf "dur%02d" i) with
    | Some v when v = Printf.sprintf "v%03d" i -> ()
    | _ -> incr missing
  done;
  check "every acked key recovered after crash" (!missing = 0);
  E.stop_background esys2;
  match !failures with
  | [] ->
      Printf.printf "netsmoke: all checks passed\n";
      `Ok ()
  | fs -> `Error (false, Printf.sprintf "netsmoke failed: %s" (String.concat "; " (List.rev fs)))

(* ---- shard ---- *)

let backend_name = function
  | Cluster.Shard.Bk_montage -> "montage"
  | Cluster.Shard.Bk_mhamt -> "mhamt"
  | Cluster.Shard.Bk_transient -> "transient"

let shard backend host port workers capacity_mib heap_file poller_s seconds drain_timeout_s =
  match parse_poller poller_s with
  | Error e -> `Error (false, e)
  | Ok poller -> (
      match Cluster.Shard.backend_of_string backend with
      | None -> `Error (false, "backend must be montage|mhamt|transient")
      | Some backend -> (
          let cfg =
            {
              Cluster.Shard.backend;
              host;
              port;
              workers;
              capacity_mib;
              heap_file;
              poller;
              seconds;
              drain_timeout_s;
            }
          in
          match
            Cluster.Shard.run
              ~on_ready:(fun ~port ->
                Printf.printf "shard: %s backend on %s:%d (heap %s)\n%!" (backend_name backend)
                  host port
                  (if heap_file = "" then "none" else heap_file))
              cfg
          with
          | Ok () -> `Ok ()
          | Error e -> `Error (false, e)))

(* ---- cluster ---- *)

(* Shard children are fresh execs of this binary: OCaml 5 cannot fork
   once domains exist, and a separate process is what gives each shard
   its own region, epoch clock and crash domain anyway. *)
let shard_argv ~exe ~backend ~host ~port ~workers ~capacity_mib ~heap_file ~poller_s
    ~drain_timeout_s =
  [|
    exe; "shard"; backend;
    "--host"; host;
    "--port"; string_of_int port;
    "--workers"; string_of_int workers;
    "--capacity-mib"; string_of_int capacity_mib;
    "--heap-file"; heap_file;
    "--poller"; poller_s;
    "--drain-timeout"; string_of_float drain_timeout_s;
  |]

let status_name = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n

let cluster backend host port shards shard_port_base workers capacity_mib heap_dir poller_s
    seconds =
  match parse_poller poller_s with
  | Error e -> `Error (false, e)
  | Ok poller ->
      if shards < 1 then `Error (false, "shards must be >= 1")
      else if Cluster.Shard.backend_of_string backend = None then
        `Error (false, "backend must be montage|mhamt|transient")
      else begin
        (try Unix.mkdir heap_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let exe = Sys.executable_name in
        let sup = Cluster.Supervisor.create () in
        let addrs =
          List.init shards (fun i ->
              let sport = shard_port_base + i in
              let heap_file = Filename.concat heap_dir (Printf.sprintf "shard-%d.heap" i) in
              ignore
                (Cluster.Supervisor.add sup
                   ~name:(Printf.sprintf "shard-%d" i)
                   ~argv:
                     (shard_argv ~exe ~backend ~host ~port:sport ~workers ~capacity_mib
                        ~heap_file ~poller_s ~drain_timeout_s:1.0));
              { Cluster.Router.sid = i; shost = host; sport })
        in
        let rconfig = { Cluster.Router.default_config with host; port; poller } in
        let r = Cluster.Router.start ~config:rconfig addrs in
        Printf.printf "cluster: router on %s:%d fronting %d shard(s) on ports %d-%d (%s poller)\n%!"
          host (Cluster.Router.port r) shards shard_port_base
          (shard_port_base + shards - 1)
          (Netserve.Poller.kind_name (Cluster.Router.poller_kind r));
        if Cluster.Router.wait_up r ~timeout_s:30.0 then
          Printf.printf "cluster: all %d shard(s) up\n%!" shards
        else
          Printf.printf "cluster: WARNING: not all shards up after 30s: %s\n%!"
            (String.concat ", "
               (List.map
                  (fun (sid, up) -> Printf.sprintf "%d:%s" sid (if up then "up" else "down"))
                  (Cluster.Router.shard_states r)));
        let stop = Atomic.make false in
        let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
        Sys.set_signal Sys.sigint handler;
        Sys.set_signal Sys.sigterm handler;
        let deadline = if seconds <= 0.0 then infinity else Unix.gettimeofday () +. seconds in
        while (not (Atomic.get stop)) && Unix.gettimeofday () < deadline do
          ignore
            (Cluster.Supervisor.tick sup ~on_exit:(fun name st ->
                 Printf.printf "cluster: %s exited (%s), restarting\n%!" name (status_name st)));
          try
            Unix.sleepf 0.2
            [@montage.allow
              "R5: EINTR-tolerant wait loop on the CLI driver thread \
               pacing supervision ticks; not server or structure code"]
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        let s = Cluster.Router.stats r in
        Cluster.Router.stop r;
        Cluster.Supervisor.shutdown sup;
        Printf.printf
          "cluster: %d client(s), %d request(s), %d shard-down error(s), %d down(s), %d \
           rejoin(s)\n"
          s.clients_accepted s.requests s.shard_down_errors s.downs s.rejoins;
        `Ok ()
      end

(* ---- clustersmoke ---- *)

(* Kill/recover/rejoin scenario, end to end over real processes:
   3 supervised montage shards with heap files + an in-process router;
   open-loop load at the router; SIGTERM one shard mid-run; assert
   (a) the load generator never loses a request — every send is
   answered, the only errors are [SERVER_ERROR shard down] for the
   victim's keyspace while it is away — and (b) every key acked by the
   victim before the kill is served again after its restart recovers
   the heap image and the ring reconverges to 3/3 Up. *)
let clustersmoke poller_s seconds rate =
  match parse_poller poller_s with
  | Error e -> `Error (false, e)
  | Ok poller ->
      let failures = ref [] in
      let check name ok =
        Printf.printf "  [%s] %s\n%!" (if ok then "ok" else "FAIL") name;
        if not ok then failures := name :: !failures
      in
      let shards = 3 in
      let exe = Sys.executable_name in
      let tmp =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "clustersmoke-%d" (Unix.getpid ()))
      in
      (try Unix.mkdir tmp 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let free_port () =
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        Unix.setsockopt fd SO_REUSEADDR true;
        Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, 0));
        let port =
          match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> -1
        in
        Unix.close fd;
        port
      in
      let ports = Array.init shards (fun _ -> free_port ()) in
      let sup = Cluster.Supervisor.create () in
      let children =
        Array.init shards (fun i ->
            Cluster.Supervisor.add sup
              ~name:(Printf.sprintf "shard-%d" i)
              ~argv:
                (shard_argv ~exe ~backend:"montage" ~host:"127.0.0.1" ~port:ports.(i)
                   ~workers:2 ~capacity_mib:64
                   ~heap_file:(Filename.concat tmp (Printf.sprintf "shard-%d.heap" i))
                   ~poller_s ~drain_timeout_s:0.5))
      in
      let addrs =
        List.init shards (fun i ->
            { Cluster.Router.sid = i; shost = "127.0.0.1"; sport = ports.(i) })
      in
      let rconfig =
        {
          Cluster.Router.default_config with
          host = "127.0.0.1";
          port = 0;
          tick_s = 0.01;
          probe_interval_s = 0.05;
          poller;
        }
      in
      let r = Cluster.Router.start ~config:rconfig addrs in
      let tick_sup () =
        ignore
          (Cluster.Supervisor.tick sup ~on_exit:(fun name st ->
               Printf.printf "clustersmoke: %s exited (%s), restarting\n%!" name
                 (status_name st)))
      in
      (* wait_up while still ticking the supervisor, so a shard that
         dies on startup gets respawned rather than stranding the wait *)
      let wait_up_ticking ~timeout_s =
        let deadline = Netserve.Poller.mono_s () +. timeout_s in
        let rec go () =
          tick_sup ();
          if Cluster.Router.wait_up r ~timeout_s:0.25 then true
          else if Netserve.Poller.mono_s () > deadline then false
          else go ()
        in
        go ()
      in
      check "initial ring convergence (3/3 up)" (wait_up_ticking ~timeout_s:30.0);
      let rport = Cluster.Router.port r in
      Printf.printf "clustersmoke: router on :%d, shards on %s (%s poller)\n%!" rport
        (String.concat ", " (Array.to_list (Array.map string_of_int ports)))
        (Netserve.Poller.kind_name (Cluster.Router.poller_kind r));
      (* --- phase 1: ack a batch of keys owned by the victim shard --- *)
      let ring = Cluster.Ring.create ~vnodes:rconfig.vnodes (List.init shards Fun.id) in
      let victim = 1 in
      let victim_keys =
        let acc = ref [] and i = ref 0 in
        while List.length !acc < 40 do
          let k = Printf.sprintf "acked-%d" !i in
          if Cluster.Ring.lookup ring k = victim then acc := k :: !acc;
          incr i
        done;
        List.rev !acc
      in
      let connect_router () =
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, rport));
        Unix.setsockopt_float fd SO_RCVTIMEO 10.0;
        fd
      in
      let send fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
      let recv_exact fd n =
        let buf = Bytes.create n in
        let off = ref 0 in
        (try
           while !off < n do
             let k = Unix.read fd buf !off (n - !off) in
             if k = 0 then raise Exit;
             off := !off + k
           done
         with Exit | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
        Bytes.sub_string buf 0 !off
      in
      let recv_until fd suffix =
        let acc = Buffer.create 256 in
        let chunk = Bytes.create 4096 in
        let ends_with () =
          let s = Buffer.contents acc in
          String.length s >= String.length suffix
          && String.sub s (String.length s - String.length suffix) (String.length suffix)
             = suffix
        in
        (try
           while not (ends_with ()) do
             let k = Unix.read fd chunk 0 (Bytes.length chunk) in
             if k = 0 then raise Exit;
             Buffer.add_subbytes acc chunk 0 k
           done
         with Exit | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
        Buffer.contents acc
      in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      let fd = connect_router () in
      let out = Buffer.create 4096 in
      List.iter
        (fun k ->
          let v = "durable-" ^ k in
          Buffer.add_string out (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" k (String.length v) v))
        victim_keys;
      send fd (Buffer.contents out);
      let acks = recv_exact fd (8 * List.length victim_keys) in
      check "victim-owned keys acked before the kill"
        (acks = String.concat "" (List.map (fun _ -> "STORED\r\n") victim_keys));
      (* --- phase 2: open-loop load; SIGTERM the victim mid-run --- *)
      let lg =
        {
          Netserve.Loadgen.default_config with
          port = rport;
          conns = 12;
          domains = 2;
          duration_s = seconds;
          value_size = 64;
          keyspace = 3000;
          get_frac = 0.8;
          key_prefix = "cs";
        }
      in
      Netserve.Loadgen.preload ~config:lg ();
      let lg_done = Atomic.make false in
      let lg_dom =
        Domain.spawn (fun () ->
            let rep = Netserve.Loadgen.run_open ~config:lg ~grace_s:5.0 ~rate () in
            Atomic.set lg_done true;
            rep)
      in
      let kill_at = Netserve.Poller.mono_s () +. (seconds *. 0.25) in
      let killed = ref false in
      while not (Atomic.get lg_done) do
        tick_sup ();
        if (not !killed) && Netserve.Poller.mono_s () >= kill_at then begin
          Printf.printf "clustersmoke: SIGTERM shard-%d (graceful drain + heap image)\n%!" victim;
          Cluster.Supervisor.signal children.(victim);
          killed := true
        end;
        (Unix.sleepf 0.02
        [@montage.allow
          "R5: smoke-test driver thread pacing supervision ticks around \
           the kill; client tooling, not server or structure code"])
      done;
      let rep = Domain.join lg_dom in
      Netserve.Loadgen.print_open_report ~label:"clustersmoke" rep;
      (* the availability contract: every request answered; the only
         errors are shard-down for the victim's keyspace *)
      check "no request abandoned during the outage" (rep.abandoned = 0);
      check "no loadgen disconnect (router stayed up)" (rep.o_disconnects = []);
      check "no errors beyond SERVER_ERROR shard down" (rep.o_errors = 0);
      check "load made progress" (rep.completed > 0);
      check "victim was killed mid-run" !killed;
      (* --- phase 3: restart recovers, ring reconverges, keys live --- *)
      (* the victim's graceful exit (drain + sync + image write) may
         outlast the load window; keep ticking until it is reaped *)
      let restart_deadline = Netserve.Poller.mono_s () +. 30.0 in
      while
        Cluster.Supervisor.restarts children.(victim) < 1
        && Netserve.Poller.mono_s () < restart_deadline
      do
        tick_sup ();
        (Unix.sleepf 0.02
        [@montage.allow
          "R5: smoke-test driver thread pacing supervision ticks while \
           waiting for the victim's graceful exit; client tooling"])
      done;
      check "supervisor restarted the victim" (Cluster.Supervisor.restarts children.(victim) >= 1);
      check "ring reconverged (3/3 up)" (wait_up_ticking ~timeout_s:30.0);
      let s = Cluster.Router.stats r in
      check "router observed the down" (s.downs >= 1);
      check "router observed the rejoin" (s.rejoins >= shards + 1);
      let recovered =
        List.for_all
          (fun k ->
            send fd (Printf.sprintf "get %s\r\n" k);
            let reply = recv_until fd "END\r\n" in
            contains reply (Printf.sprintf "VALUE %s 0 " k) && contains reply ("durable-" ^ k))
          victim_keys
      in
      check "every acked key recovered after the restart" recovered;
      send fd "quit\r\n";
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Cluster.Router.stop r;
      Cluster.Supervisor.shutdown sup;
      Array.iteri
        (fun i _ ->
          try Unix.unlink (Filename.concat tmp (Printf.sprintf "shard-%d.heap" i))
          with Unix.Unix_error _ -> ())
        ports;
      (try Unix.rmdir tmp with Unix.Unix_error _ -> ());
      (match !failures with
      | [] ->
          Printf.printf "clustersmoke: all checks passed\n";
          `Ok ()
      | fs ->
          `Error (false, Printf.sprintf "clustersmoke failed: %s" (String.concat "; " (List.rev fs))))

(* ---- command wiring ---- *)

let demo_cmd =
  let items = Arg.(value & opt int 1000 & info [ "items" ] ~doc:"Items to insert before the crash.") in
  Cmd.v (Cmd.info "demo" ~doc:"Insert, sync, crash, recover; verify the prefix.")
    Term.(ret (const demo $ items))

let workload_cmd =
  let structure =
    Arg.(value & pos 0 string "map" & info [] ~docv:"STRUCTURE" ~doc:"map|queue|stack|nb-stack|nb-queue")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads"; "t" ] ~doc:"Worker threads.") in
  let seconds = Arg.(value & opt float 1.0 & info [ "seconds"; "d" ] ~doc:"Duration.") in
  let value_size = Arg.(value & opt int 256 & info [ "value-size" ] ~doc:"Value size in bytes.") in
  Cmd.v (Cmd.info "workload" ~doc:"Timed workload against a Montage structure.")
    Term.(ret (const workload $ structure $ threads $ seconds $ value_size))

let torture_cmd =
  let rounds = Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"Crash/recovery rounds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v (Cmd.info "torture" ~doc:"Randomized crash-consistency check.")
    Term.(ret (const torture $ rounds $ seed))

let host_arg = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Bind/connect address.")

let poller_arg =
  Arg.(
    value & opt string "auto"
    & info [ "poller" ] ~doc:"Readiness backend: auto|select|epoll (auto = MONTAGE_POLLER or platform default).")

let serve_cmd =
  let backend =
    Arg.(value & pos 0 string default_backend & info [] ~docv:"BACKEND" ~doc:"montage|mhamt|transient")
  in
  let port = Arg.(value & opt int 11211 & info [ "port"; "p" ] ~doc:"TCP port (0 = ephemeral).") in
  let workers = Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"Event-loop domains.") in
  let seconds =
    Arg.(value & opt float 0.0 & info [ "seconds"; "d" ] ~doc:"Run time; 0 = until SIGINT/SIGTERM.")
  in
  let capacity = Arg.(value & opt int 256 & info [ "capacity-mib" ] ~doc:"NVM region size (MiB).") in
  Cmd.v (Cmd.info "serve" ~doc:"Serve the memcached text protocol over the KV store.")
    Term.(ret (const serve $ backend $ host_arg $ port $ workers $ seconds $ capacity $ poller_arg))

let loadgen_cmd =
  let port = Arg.(value & opt int 11211 & info [ "port"; "p" ] ~doc:"Server port.") in
  let conns = Arg.(value & opt int 8 & info [ "conns"; "c" ] ~doc:"Total connections.") in
  let domains = Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Generator domains.") in
  let seconds = Arg.(value & opt float 2.0 & info [ "seconds"; "d" ] ~doc:"Duration.") in
  let pipeline = Arg.(value & opt int 8 & info [ "pipeline" ] ~doc:"Commands per batch.") in
  let value_size = Arg.(value & opt int 64 & info [ "value-size" ] ~doc:"Value size in bytes.") in
  let keyspace = Arg.(value & opt int 10_000 & info [ "keys" ] ~doc:"Keyspace size.") in
  let get_frac = Arg.(value & opt float 0.9 & info [ "get-frac" ] ~doc:"Fraction of gets.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let no_preload = Arg.(value & flag & info [ "no-preload" ] ~doc:"Skip keyspace preload.") in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~doc:"Open-loop offered load in ops/s (0 = closed loop).")
  in
  let arrival =
    Arg.(
      value & opt string "poisson"
      & info [ "arrival" ] ~doc:"Open-loop interarrival distribution: poisson|uniform.")
  in
  let grace =
    Arg.(
      value & opt float 1.0
      & info [ "grace" ] ~doc:"Open-loop drain grace period in seconds after the schedule ends.")
  in
  let endpoints =
    Arg.(
      value & opt string ""
      & info [ "endpoints" ]
          ~doc:
            "Comma-separated host:port list to spread connections over \
             (e.g. shard addresses), overriding --host/--port; the report \
             breaks ops/errors/abandons down per endpoint.")
  in
  Cmd.v (Cmd.info "loadgen" ~doc:"Memcached load generator (closed loop, or open loop with --rate).")
    Term.(
      ret
        (const loadgen $ host_arg $ port $ conns $ domains $ seconds $ pipeline $ value_size
       $ keyspace $ get_frac $ seed $ no_preload $ rate $ arrival $ grace $ endpoints))

let c10k_cmd =
  let backend =
    Arg.(value & pos 0 string default_backend & info [] ~docv:"BACKEND" ~doc:"montage|mhamt|transient")
  in
  let conns = Arg.(value & opt int 10_000 & info [ "conns"; "c" ] ~doc:"Idle connection census size.") in
  let workers = Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"Event-loop domains.") in
  let seconds = Arg.(value & opt float 2.0 & info [ "seconds"; "d" ] ~doc:"Busy-burst duration.") in
  let active = Arg.(value & opt int 32 & info [ "active" ] ~doc:"Busy connections for the burst.") in
  let value_size = Arg.(value & opt int 64 & info [ "value-size" ] ~doc:"Value size in bytes.") in
  let capacity = Arg.(value & opt int 256 & info [ "capacity-mib" ] ~doc:"NVM region size (MiB).") in
  let target_port =
    Arg.(
      value & opt int 0
      & info [ "port"; "p" ]
          ~doc:
            "Drive an already-running server on this port instead of starting one in-process \
             (one fd per connection, so the census can exceed half the fd limit).")
  in
  Cmd.v
    (Cmd.info "c10k"
       ~doc:"In-process C10K scenario: N idle connections + a busy burst; verify every idle \
             connection is still served.")
    Term.(
      ret
        (const c10k $ backend $ conns $ workers $ seconds $ active $ value_size $ capacity
       $ poller_arg $ target_port))

let stallbench_cmd =
  let stall_ms =
    Arg.(value & opt int 200 & info [ "stall-ms" ] ~doc:"How long the worker parks in its drain.")
  in
  let warmup =
    Arg.(value & opt int 100 & info [ "warmup-ops" ] ~doc:"Operations before the stalled one.")
  in
  Cmd.v
    (Cmd.info "stallbench" ~doc:"Sync latency past a stalled worker, blocking vs nonblocking.")
    Term.(ret (const stallbench $ stall_ms $ warmup))

let netsmoke_cmd =
  Cmd.v (Cmd.info "netsmoke" ~doc:"In-process server smoke test (CI).")
    Term.(ret (const netsmoke $ const ()))

let shard_cmd =
  let backend =
    Arg.(value & pos 0 string default_backend & info [] ~docv:"BACKEND" ~doc:"montage|mhamt|transient")
  in
  let port = Arg.(value & opt int 11411 & info [ "port"; "p" ] ~doc:"TCP port (0 = ephemeral).") in
  let workers = Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"Event-loop domains.") in
  let capacity = Arg.(value & opt int 256 & info [ "capacity-mib" ] ~doc:"NVM region size (MiB).") in
  let heap_file =
    Arg.(
      value & opt string ""
      & info [ "heap-file" ]
          ~doc:
            "Heap image path: loaded (and recovered from) at startup if present, written \
             atomically at graceful shutdown.  Empty = no durability across restarts.")
  in
  let seconds =
    Arg.(value & opt float 0.0 & info [ "seconds"; "d" ] ~doc:"Run time; 0 = until SIGINT/SIGTERM.")
  in
  let drain_timeout =
    Arg.(
      value & opt float 1.0
      & info [ "drain-timeout" ]
          ~doc:
            "Shutdown drain bound in seconds.  A router's upstream connection never disconnects \
             on its own, so a shard's drain always runs to this deadline; in-flight requests \
             are answered first.")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"One cluster shard: netserve over its own Montage region, with a heap file for \
             durability across restarts.")
    Term.(
      ret
        (const shard $ backend $ host_arg $ port $ workers $ capacity $ heap_file $ poller_arg
       $ seconds $ drain_timeout))

let cluster_cmd =
  let backend =
    Arg.(value & pos 0 string default_backend & info [] ~docv:"BACKEND" ~doc:"montage|mhamt|transient")
  in
  let port = Arg.(value & opt int 11311 & info [ "port"; "p" ] ~doc:"Router TCP port.") in
  let shards = Arg.(value & opt int 3 & info [ "shards"; "n" ] ~doc:"Number of shard processes.") in
  let base =
    Arg.(value & opt int 11411 & info [ "shard-port-base" ] ~doc:"Shard i listens on base + i.")
  in
  let workers = Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"Event-loop domains per shard.") in
  let capacity =
    Arg.(value & opt int 256 & info [ "capacity-mib" ] ~doc:"NVM region size per shard (MiB).")
  in
  let heap_dir =
    Arg.(
      value & opt string "cluster-data"
      & info [ "heap-dir" ] ~doc:"Directory for per-shard heap images (created if missing).")
  in
  let seconds =
    Arg.(value & opt float 0.0 & info [ "seconds"; "d" ] ~doc:"Run time; 0 = until SIGINT/SIGTERM.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Run a consistent-hashing router fronting N supervised shard processes \
             (restart-on-exit).")
    Term.(
      ret
        (const cluster $ backend $ host_arg $ port $ shards $ base $ workers $ capacity
       $ heap_dir $ poller_arg $ seconds))

let clustersmoke_cmd =
  let seconds =
    Arg.(value & opt float 4.0 & info [ "seconds"; "d" ] ~doc:"Open-loop schedule length.")
  in
  let rate = Arg.(value & opt float 2000.0 & info [ "rate" ] ~doc:"Open-loop offered load (ops/s).") in
  Cmd.v
    (Cmd.info "clustersmoke"
       ~doc:"Kill/recover/rejoin scenario: 3 shards under open-loop load, SIGTERM one \
             mid-run, assert availability and durability (CI).")
    Term.(ret (const clustersmoke $ poller_arg $ seconds $ rate))

let () =
  let doc = "Montage buffered-persistence playground" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "montage_cli" ~doc)
          [
            demo_cmd;
            workload_cmd;
            torture_cmd;
            serve_cmd;
            loadgen_cmd;
            c10k_cmd;
            stallbench_cmd;
            netsmoke_cmd;
            shard_cmd;
            cluster_cmd;
            clustersmoke_cmd;
          ]))
