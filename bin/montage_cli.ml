(* montage_cli — drive a Montage data structure interactively-ish.

   Subcommands:
     demo      run a put/crash/recover cycle and print the outcome
     workload  run a timed workload against a chosen structure
     torture   randomized crash-consistency check (like the example,
               with knobs)
     serve     run the netserve memcached front end over the KV store
     loadgen   closed-loop load generator against a running server
     stallbench
               sync latency past a worker parked in its drain window,
               blocking vs nonblocking advance
     netsmoke  in-process server smoke test (used by CI)

   This is a developer tool; the benchmark suite is bench/main.exe. *)

open Cmdliner

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let mib = 1024 * 1024

(* ---- demo ---- *)

let demo items =
  let region = Nvm.Region.create ~capacity:(64 * mib) () in
  let esys = E.create region in
  let map = Pstructs.Mhashmap.create esys in
  for i = 1 to items do
    ignore (Pstructs.Mhashmap.put map ~tid:0 (Printf.sprintf "key%d" i) (Printf.sprintf "val%d" i))
  done;
  E.sync esys ~tid:0;
  ignore (Pstructs.Mhashmap.put map ~tid:0 "unsynced" "doomed");
  E.stop_background esys;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover region in
  let map2 = Pstructs.Mhashmap.recover esys2 payloads in
  Printf.printf "inserted %d + 1 unsynced, crashed, recovered %d items\n" items
    (Pstructs.Mhashmap.size map2);
  Printf.printf "unsynced item present: %b\n"
    (Pstructs.Mhashmap.get map2 ~tid:0 "unsynced" <> None);
  E.stop_background esys2;
  if Pstructs.Mhashmap.size map2 = items then `Ok () else `Error (false, "unexpected recovery size")

(* ---- workload ---- *)

let workload structure threads seconds value_size =
  if threads < 1 then `Error (false, "threads must be >= 1")
  else begin
    let region = Nvm.Region.create ~max_threads:(threads + 4) ~capacity:(256 * mib) () in
    let esys = E.create ~config:{ Cfg.default with max_threads = threads + 1 } region in
    let value = String.make value_size 'v' in
    let body =
      match structure with
      | "map" ->
          let m = Pstructs.Mhashmap.create esys in
          fun ~tid ~rng ->
            let key = Printf.sprintf "%024d" (Util.Xoshiro.int rng 100_000) in
            if Util.Xoshiro.bool rng then ignore (Pstructs.Mhashmap.put m ~tid key value)
            else ignore (Pstructs.Mhashmap.remove m ~tid key)
      | "queue" ->
          let q = Pstructs.Mqueue.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Mqueue.enqueue q ~tid value
            else ignore (Pstructs.Mqueue.dequeue q ~tid)
      | "stack" ->
          let s = Pstructs.Mstack.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Mstack.push s ~tid value
            else ignore (Pstructs.Mstack.pop s ~tid)
      | "nb-stack" ->
          let s = Pstructs.Nb_stack.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Nb_stack.push s ~tid value
            else ignore (Pstructs.Nb_stack.pop s ~tid)
      | "nb-queue" ->
          let q = Pstructs.Nb_queue.create esys in
          fun ~tid ~rng ->
            if Util.Xoshiro.bool rng then Pstructs.Nb_queue.enqueue q ~tid value
            else ignore (Pstructs.Nb_queue.dequeue q ~tid)
      | other -> failwith ("unknown structure: " ^ other)
    in
    match body with
    | exception Failure msg -> `Error (false, msg)
    | body ->
        let r = Benchlib.Runner.throughput ~threads ~duration_s:seconds body in
        let stats = Nvm.Region.stats region in
        Printf.printf "%s: %.0f ops/s over %d thread(s) for %.1fs\n" structure
          r.Benchlib.Runner.ops_per_sec threads seconds;
        Printf.printf "NVM traffic: %d writebacks, %d fences, %d lines persisted\n"
          stats.Nvm.Region.writebacks stats.Nvm.Region.fences stats.Nvm.Region.lines_persisted;
        Printf.printf "epoch advances: %d\n" (E.advance_count esys);
        E.stop_background esys;
        `Ok ()
  end

(* ---- torture ---- *)

let torture rounds seed =
  let rng = Util.Xoshiro.create seed in
  let cfg = { Cfg.testing with max_threads = 2 } in
  let region = Nvm.Region.create ~capacity:(32 * mib) () in
  let esys = ref (E.create ~config:cfg region) in
  let map = ref (Pstructs.Mhashmap.create ~buckets:64 !esys) in
  let model = Hashtbl.create 64 in
  let snapshots = Hashtbl.create 64 in
  let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare in
  let record ~ended = Hashtbl.replace snapshots ended (snapshot ()) in
  record ~ended:(E.current_epoch !esys - 1);
  let ok = ref true in
  (try
     for round = 1 to rounds do
       for _ = 1 to 20 + Util.Xoshiro.int rng 100 do
         let k = Printf.sprintf "key%03d" (Util.Xoshiro.int rng 200) in
         (match Util.Xoshiro.int rng 2 with
         | 0 ->
             let v = Printf.sprintf "r%d" round in
             ignore (Pstructs.Mhashmap.put !map ~tid:0 k v);
             Hashtbl.replace model k v
         | _ ->
             ignore (Pstructs.Mhashmap.remove !map ~tid:0 k);
             Hashtbl.remove model k);
         if Util.Xoshiro.int rng 20 = 0 then begin
           let ended = E.current_epoch !esys in
           E.advance_epoch !esys ~tid:1;
           record ~ended
         end
       done;
       let crash_epoch = E.current_epoch !esys in
       Nvm.Region.crash
         ~persist_unfenced:(Util.Xoshiro.float rng)
         ~evict_dirty:(Util.Xoshiro.float rng) ~rng region;
       let esys2, payloads = E.recover ~config:cfg region in
       let map2 = Pstructs.Mhashmap.recover ~buckets:64 esys2 payloads in
       let expected = ref [] in
       for e = 1 to crash_epoch - 2 do
         match Hashtbl.find_opt snapshots e with Some s -> expected := s | None -> ()
       done;
       let recovered = List.sort compare (Pstructs.Mhashmap.to_alist map2 ~tid:0) in
       if recovered <> !expected then begin
         Printf.printf "round %d: INCONSISTENT RECOVERY\n" round;
         ok := false;
         raise Exit
       end;
       esys := esys2;
       map := map2;
       Hashtbl.reset model;
       List.iter (fun (k, v) -> Hashtbl.replace model k v) recovered;
       Hashtbl.reset snapshots;
       record ~ended:(E.current_epoch !esys - 1)
     done
   with Exit -> ());
  if !ok then begin
    Printf.printf "%d crash/recovery rounds: all consistent\n" rounds;
    `Ok ()
  end
  else `Error (false, "inconsistent recovery detected")

(* ---- stallbench ---- *)

(* Real-time ablation for the nonblocking advance: park one worker
   inside its END_OP drain window (the [test_stall_in_drain] hook) and
   measure how long a concurrent [sync] takes under each advance arm.
   The blocking arm's advance waits out the stall in the draining
   handshake; the nonblocking arm claims the parked worker's published
   records itself and completes without it. *)
let stallbench stall_ms warmup_ops =
  let stall_s = float_of_int stall_ms /. 1000. in
  let run nb =
    let cfg =
      {
        Cfg.default with
        max_threads = 2;
        auto_advance = false;
        drain_on_end_op = true;
        nb_advance = nb;
      }
    in
    let region = Nvm.Region.create ~max_threads:4 ~capacity:(64 * mib) () in
    let esys = E.create ~config:cfg region in
    let armed = Atomic.make false and stalled = Atomic.make false in
    let saved = !E.test_stall_in_drain in
    (E.test_stall_in_drain :=
       fun () ->
         if Atomic.compare_and_set armed true false then begin
           Atomic.set stalled true;
           Unix.sleepf stall_s
         end);
    let go = Atomic.make false in
    let worker =
      Domain.spawn (fun () ->
          for _ = 1 to warmup_ops do
            E.with_op esys ~tid:0 (fun () -> ignore (E.pnew esys ~tid:0 (Bytes.make 64 'x')))
          done;
          while not (Atomic.get go) do
            Domain.cpu_relax ()
          done;
          (* this op's END_OP drain parks in the armed hook *)
          E.with_op esys ~tid:0 (fun () -> ignore (E.pnew esys ~tid:0 (Bytes.make 64 'y'))))
    in
    Atomic.set armed true;
    Atomic.set go true;
    while not (Atomic.get stalled) do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    E.sync esys ~tid:1;
    let dt = Unix.gettimeofday () -. t0 in
    Domain.join worker;
    E.test_stall_in_drain := saved;
    E.stop_background esys;
    (dt, E.advance_count esys)
  in
  let dt_b, adv_b = run false in
  let dt_nb, adv_nb = run true in
  Printf.printf "one worker parked %d ms inside its END_OP drain window\n" stall_ms;
  Printf.printf "%-12s %15s %9s\n" "advance arm" "sync latency" "advances";
  Printf.printf "%-12s %12.3f ms %9d\n" "blocking" (dt_b *. 1000.) adv_b;
  Printf.printf "%-12s %12.3f ms %9d\n" "nonblocking" (dt_nb *. 1000.) adv_nb;
  Printf.printf "sync speedup under the stall: %.0fx\n" (dt_b /. dt_nb);
  `Ok ()
[@@montage.allow
  "R5: the sleep IS the benchmark — it models a worker descheduled \
   mid-drain for a fixed wall-clock interval; the measurement needs \
   real time, not a scheduler seam"]

(* ---- serve ---- *)

(* Build the store for the requested backend.  The Montage build sizes
   the epoch system for [workers] server tids plus the advancer slot,
   and hands netserve the sync/frontier hooks its shutdown drain uses
   as the durability barrier. *)
let make_backend backend workers capacity_mib =
  match backend with
  | "montage" ->
      let region = Nvm.Region.create ~max_threads:(workers + 4) ~capacity:(capacity_mib * mib) () in
      let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } region in
      let map = Pstructs.Mhashmap.create esys in
      Some (Kvstore.Store.create (Kvstore.Store.of_mhashmap map), Some esys)
  | "transient" ->
      let m = Baselines.Transient_map.create Baselines.Transient_map.Dram in
      Some (Kvstore.Store.create (Kvstore.Store.of_transient_map m), None)
  | _ -> None

let start_server ~host ~port ~workers store esys =
  let config = { Netserve.default_config with host; port; workers } in
  match esys with
  | Some esys ->
      Netserve.start ~config
        ~sync:(fun ~tid -> E.sync esys ~tid)
        ~persisted_epoch:(fun () -> E.persisted_epoch esys)
        store
  | None -> Netserve.start ~config store

let serve backend host port workers seconds capacity_mib =
  if workers < 1 then `Error (false, "workers must be >= 1")
  else
    match make_backend backend workers capacity_mib with
    | None -> `Error (false, "backend must be montage|transient")
    | Some (store, esys) ->
        let t = start_server ~host ~port ~workers store esys in
        Printf.printf "netserve: %s backend, %d worker(s) on %s:%d\n%!" backend workers host
          (Netserve.port t);
        let stop = Atomic.make false in
        let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
        Sys.set_signal Sys.sigint handler;
        Sys.set_signal Sys.sigterm handler;
        let deadline = if seconds <= 0.0 then infinity else Unix.gettimeofday () +. seconds in
        while (not (Atomic.get stop)) && Unix.gettimeofday () < deadline do
          try
            Unix.sleepf 0.2
            [@montage.allow
              "R5: EINTR-tolerant wait loop on the CLI driver thread \
               pacing the serve deadline; not server or structure code"]
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        let d = Netserve.shutdown t in
        let accepted, bytes_in, bytes_out, cmds = Netserve.totals t in
        Printf.printf "shutdown: drained %d conn(s), %d forced, %.3fs drain + %.3fs sync" d.drained_conns
          d.forced_closes d.drain_s d.sync_s;
        if d.persisted_epoch >= 0 then Printf.printf ", persisted epoch %d" d.persisted_epoch;
        print_newline ();
        Printf.printf "totals: %d connection(s), %d command(s), %d bytes in, %d bytes out\n" accepted
          cmds bytes_in bytes_out;
        Option.iter E.stop_background esys;
        `Ok ()

(* ---- loadgen ---- *)

let loadgen host port conns domains seconds pipeline value_size keyspace get_frac seed no_preload =
  let config =
    {
      Netserve.Loadgen.default_config with
      host;
      port;
      conns;
      domains;
      duration_s = seconds;
      pipeline;
      value_size;
      keyspace;
      get_frac;
      seed;
    }
  in
  match
    if not no_preload then Netserve.Loadgen.preload ~config ();
    Netserve.Loadgen.run ~config ()
  with
  | exception (Unix.Unix_error _ | Failure _) ->
      `Error (false, Printf.sprintf "cannot drive server at %s:%d" host port)
  | r ->
      Netserve.Loadgen.print_report ~label:(Printf.sprintf "%s:%d" host port) r;
      if r.ops = 0 then `Error (false, "no operations completed") else `Ok ()

(* ---- netsmoke ---- *)

(* In-process end-to-end smoke: start a Montage-backed server on an
   ephemeral port, run a byte-exact pipelined session and a seeded
   loadgen burst, read stats, shut down gracefully, crash the region,
   and verify every acked STORED key survives recovery.  CI runs this
   in every matrix leg. *)
let netsmoke () =
  let failures = ref [] in
  let check name ok =
    Printf.printf "  [%s] %s\n%!" (if ok then "ok" else "FAIL") name;
    if not ok then failures := name :: !failures
  in
  let workers = 4 in
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:(workers + 4) ~capacity:(64 * mib) () in
  let esys = E.create ~config:{ Cfg.default with max_threads = workers + 1 } region in
  let map = Pstructs.Mhashmap.create esys in
  let store = Kvstore.Store.create (Kvstore.Store.of_mhashmap map) in
  let t = start_server ~host:"127.0.0.1" ~port:0 ~workers store (Some esys) in
  let port = Netserve.port t in
  let connect () =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
    fd
  in
  let send fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  let recv_exact fd n =
    let buf = Bytes.create n in
    let off = ref 0 in
    (try
       while !off < n do
         let k = Unix.read fd buf !off (n - !off) in
         if k = 0 then raise Exit;
         off := !off + k
       done
     with Exit | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    Bytes.sub_string buf 0 !off
  in
  let recv_until fd suffix =
    let acc = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let ends_with () =
      let s = Buffer.contents acc in
      String.length s >= String.length suffix
      && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
    in
    (try
       while not (ends_with ()) do
         let k = Unix.read fd chunk 0 (Bytes.length chunk) in
         if k = 0 then raise Exit;
         Buffer.add_subbytes acc chunk 0 k
       done
     with Exit | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    Buffer.contents acc
  in
  (* 1. byte-exact pipelined session on one connection *)
  let fd = connect () in
  send fd
    "set a 5 0 3\r\nfoo\r\nget a\r\nset n 0 0 1\r\n7\r\nincr n 3\r\nadd a 0 0 1\r\nx\r\ndelete missing\r\nget a n\r\n";
  let expected =
    "STORED\r\nVALUE a 5 3\r\nfoo\r\nEND\r\nSTORED\r\n10\r\nNOT_STORED\r\nNOT_FOUND\r\n\
     VALUE a 5 3\r\nfoo\r\nVALUE n 0 2\r\n10\r\nEND\r\n"
  in
  let got = recv_exact fd (String.length expected) in
  check "pipelined session byte-exact" (got = expected);
  if got <> expected then Printf.printf "    got: %S\n" got;
  (* 2. flush_all wipes, later sets survive *)
  send fd "flush_all\r\nget a\r\nset b 0 0 2\r\nhi\r\nget b\r\n";
  let expected2 = "OK\r\nEND\r\nSTORED\r\nVALUE b 0 2\r\nhi\r\nEND\r\n" in
  let got2 = recv_exact fd (String.length expected2) in
  check "flush_all epoch-style invalidation" (got2 = expected2);
  (* 3. seeded loadgen burst through benchlib reporting *)
  let lg =
    {
      Netserve.Loadgen.default_config with
      port;
      conns = 8;
      domains = 2;
      duration_s = 0.5;
      keyspace = 500;
      key_prefix = "sm";
    }
  in
  Netserve.Loadgen.preload ~config:lg ();
  let r = Netserve.Loadgen.run ~config:lg () in
  Netserve.Loadgen.print_report ~label:"netsmoke" r;
  check "loadgen completed ops" (r.ops > 0);
  check "loadgen error-free" (r.errors = 0);
  check "loadgen hit path exercised" (r.hits > 0);
  check "loadgen percentiles ordered" (r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
  (* 4. stats over the wire: server section present and plausible *)
  send fd "stats\r\n";
  let stats = recv_until fd "END\r\n" in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "stats: worker threads reported" (contains stats "STAT threads 4");
  check "stats: get counter present" (contains stats "STAT cmd_get ");
  check "stats: connection counter present" (contains stats "STAT total_connections ");
  check "stats: pipeline depth tracked" (contains stats "STAT max_pipeline_depth ");
  (* 5. acked STORED keys survive graceful shutdown + crash *)
  let dur = 20 in
  let buf = Buffer.create 512 in
  for i = 0 to dur - 1 do
    Buffer.add_string buf (Printf.sprintf "set dur%02d 0 0 4\r\nv%03d\r\n" i i)
  done;
  send fd (Buffer.contents buf);
  let acks = recv_exact fd (dur * 8) in
  check "durability keys acked" (acks = String.concat "" (List.init dur (fun _ -> "STORED\r\n")));
  send fd "quit\r\n";
  Unix.close fd;
  let d = Netserve.shutdown t in
  check "graceful drain (no forced closes)" (d.forced_closes = 0);
  check "shutdown advanced the durable frontier" (d.persisted_epoch >= 1);
  E.stop_background esys;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:{ Cfg.default with max_threads = workers + 1 } region in
  let map2 = Pstructs.Mhashmap.recover esys2 payloads in
  let store2 = Kvstore.Store.create (Kvstore.Store.of_mhashmap map2) in
  let missing = ref 0 in
  for i = 0 to dur - 1 do
    match Kvstore.Store.get store2 ~tid:0 (Printf.sprintf "dur%02d" i) with
    | Some v when v = Printf.sprintf "v%03d" i -> ()
    | _ -> incr missing
  done;
  check "every acked key recovered after crash" (!missing = 0);
  E.stop_background esys2;
  match !failures with
  | [] ->
      Printf.printf "netsmoke: all checks passed\n";
      `Ok ()
  | fs -> `Error (false, Printf.sprintf "netsmoke failed: %s" (String.concat "; " (List.rev fs)))

(* ---- command wiring ---- *)

let demo_cmd =
  let items = Arg.(value & opt int 1000 & info [ "items" ] ~doc:"Items to insert before the crash.") in
  Cmd.v (Cmd.info "demo" ~doc:"Insert, sync, crash, recover; verify the prefix.")
    Term.(ret (const demo $ items))

let workload_cmd =
  let structure =
    Arg.(value & pos 0 string "map" & info [] ~docv:"STRUCTURE" ~doc:"map|queue|stack|nb-stack|nb-queue")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads"; "t" ] ~doc:"Worker threads.") in
  let seconds = Arg.(value & opt float 1.0 & info [ "seconds"; "d" ] ~doc:"Duration.") in
  let value_size = Arg.(value & opt int 256 & info [ "value-size" ] ~doc:"Value size in bytes.") in
  Cmd.v (Cmd.info "workload" ~doc:"Timed workload against a Montage structure.")
    Term.(ret (const workload $ structure $ threads $ seconds $ value_size))

let torture_cmd =
  let rounds = Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"Crash/recovery rounds.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v (Cmd.info "torture" ~doc:"Randomized crash-consistency check.")
    Term.(ret (const torture $ rounds $ seed))

let host_arg = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Bind/connect address.")

let serve_cmd =
  let backend =
    Arg.(value & pos 0 string "montage" & info [] ~docv:"BACKEND" ~doc:"montage|transient")
  in
  let port = Arg.(value & opt int 11211 & info [ "port"; "p" ] ~doc:"TCP port (0 = ephemeral).") in
  let workers = Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"Event-loop domains.") in
  let seconds =
    Arg.(value & opt float 0.0 & info [ "seconds"; "d" ] ~doc:"Run time; 0 = until SIGINT/SIGTERM.")
  in
  let capacity = Arg.(value & opt int 256 & info [ "capacity-mib" ] ~doc:"NVM region size (MiB).") in
  Cmd.v (Cmd.info "serve" ~doc:"Serve the memcached text protocol over the KV store.")
    Term.(ret (const serve $ backend $ host_arg $ port $ workers $ seconds $ capacity))

let loadgen_cmd =
  let port = Arg.(value & opt int 11211 & info [ "port"; "p" ] ~doc:"Server port.") in
  let conns = Arg.(value & opt int 8 & info [ "conns"; "c" ] ~doc:"Total connections.") in
  let domains = Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Generator domains.") in
  let seconds = Arg.(value & opt float 2.0 & info [ "seconds"; "d" ] ~doc:"Duration.") in
  let pipeline = Arg.(value & opt int 8 & info [ "pipeline" ] ~doc:"Commands per batch.") in
  let value_size = Arg.(value & opt int 64 & info [ "value-size" ] ~doc:"Value size in bytes.") in
  let keyspace = Arg.(value & opt int 10_000 & info [ "keys" ] ~doc:"Keyspace size.") in
  let get_frac = Arg.(value & opt float 0.9 & info [ "get-frac" ] ~doc:"Fraction of gets.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let no_preload = Arg.(value & flag & info [ "no-preload" ] ~doc:"Skip keyspace preload.") in
  Cmd.v (Cmd.info "loadgen" ~doc:"Closed-loop memcached load generator.")
    Term.(
      ret
        (const loadgen $ host_arg $ port $ conns $ domains $ seconds $ pipeline $ value_size
       $ keyspace $ get_frac $ seed $ no_preload))

let stallbench_cmd =
  let stall_ms =
    Arg.(value & opt int 200 & info [ "stall-ms" ] ~doc:"How long the worker parks in its drain.")
  in
  let warmup =
    Arg.(value & opt int 100 & info [ "warmup-ops" ] ~doc:"Operations before the stalled one.")
  in
  Cmd.v
    (Cmd.info "stallbench" ~doc:"Sync latency past a stalled worker, blocking vs nonblocking.")
    Term.(ret (const stallbench $ stall_ms $ warmup))

let netsmoke_cmd =
  Cmd.v (Cmd.info "netsmoke" ~doc:"In-process server smoke test (CI).")
    Term.(ret (const netsmoke $ const ()))

let () =
  let doc = "Montage buffered-persistence playground" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "montage_cli" ~doc)
          [
            demo_cmd;
            workload_cmd;
            torture_cmd;
            serve_cmd;
            loadgen_cmd;
            stallbench_cmd;
            netsmoke_cmd;
          ]))
